#pragma once
// Application builders: the paper's benchmark programs (Fig. 13 caption)
// plus the extension demos. Each returns a fresh application graph wired
// from library kernels; compile() then buffers/aligns/parallelizes it.
//
// Benchmarks (paper numbering):
//   1 / 1F  Bayer demosaicing, baseline and faster input rate
//   2 / 2F  image histogram, baseline and faster input rate
//   3       parallel buffer test (storage-bound buffer forces §IV-C split)
//   4       multiple convolutions test
//   SS/SF/BS/BF  the Fig. 1(b)/Fig. 11 image-processing example at
//                small/big input sizes and slow/fast input rates
//   5       the Fig. 1(b) application at its baseline configuration

#include <string>
#include <vector>

#include "core/graph.h"
#include "core/tile.h"

namespace bpp::apps {

/// Normalized 5x5 binomial blur coefficients.
[[nodiscard]] Tile blur_coeff5x5();
/// Normalized 3x3 binomial blur coefficients.
[[nodiscard]] Tile blur_coeff3x3();
/// Histogram bin upper bounds for the Fig. 1 difference image.
[[nodiscard]] std::vector<double> diff_bins(int bins);

/// The Fig. 1(b) application: 3x3 median and 5x5 convolution of the input,
/// per-pixel difference, histogram with explicitly serial merge (data
/// dependency edge from the input). Sink kernel is named "result".
[[nodiscard]] Graph figure1_app(Size2 frame, double rate_hz, int frames,
                                int bins = 32);

/// Benchmark 1/1F: Bayer demosaicing.
[[nodiscard]] Graph bayer_app(Size2 frame, double rate_hz, int frames);

/// Benchmark 2/2F: whole-image histogram with serial merge.
[[nodiscard]] Graph histogram_app(Size2 frame, double rate_hz, int frames,
                                  int bins = 32);

/// Benchmark 3: parallel buffer test — a 9x9 convolution whose input
/// buffer exceeds one PE's storage and must be column-split.
[[nodiscard]] Graph parallel_buffer_app(Size2 frame, double rate_hz, int frames);

/// Benchmark 4: multiple convolutions test — a three-stage convolution
/// chain, each stage with its own replicated coefficient input.
[[nodiscard]] Graph multi_convolution_app(Size2 frame, double rate_hz,
                                          int frames);

/// Dependency-edged pipeline (paper §IV-B): two equal-cost stages chained
/// by data-dependency edges so the compiler replicates whole pipelines
/// (lane connections) instead of splitting between the stages.
[[nodiscard]] Graph pipeline_app(Size2 frame, double rate_hz, int frames,
                                 long stage_cycles = 60);

/// Feedback extension (§III-D): per-pixel temporal IIR filter
/// y_t = alpha x_t + (1-alpha) y_{t-1}, primed by an initial-value kernel.
[[nodiscard]] Graph feedback_app(Size2 frame, double rate_hz, int frames,
                                 double alpha);

/// Edge-detect example: Sobel magnitude followed by a threshold.
[[nodiscard]] Graph sobel_app(Size2 frame, double rate_hz, int frames,
                              double threshold);

/// Fractional-offset example: 2x block downsample then 3x3 convolution.
[[nodiscard]] Graph downsample_app(Size2 frame, double rate_hz, int frames);

/// Separable 5x5 blur as a (5x1) then (1x5) convolution pipeline —
/// exercises non-square windows; equals the full blur_coeff5x5() filter.
[[nodiscard]] Graph separable_blur_app(Size2 frame, double rate_hz, int frames);

/// Motion estimation over 4x4 blocks (the dynamic-resource extension from
/// the paper's conclusions). bound_cycles <= 0 uses the worst case.
[[nodiscard]] Graph motion_app(Size2 frame, double rate_hz, int frames,
                               int radius = 2, long bound_cycles = 0);

/// One-dimensional radio-style chain (§II-A's 1-D claim): lowpass FIR with
/// 4x decimation, magnitude, then a moving-average envelope. The "frame"
/// is a samples x 1 block at the block rate.
[[nodiscard]] Graph radio_app(int samples, double block_rate_hz, int blocks);

/// Flagship composition: a video-analytics front end using most of the
/// library. Temporal IIR denoising (feedback loop), separable 5x5 blur,
/// Sobel + threshold edge map cleaned by a 3x3 dilate, and a per-frame
/// histogram of the blurred image with serial merge. Two sinks:
/// "edges" (the cleaned edge map) and "stats" (the histogram).
[[nodiscard]] Graph analytics_app(Size2 frame, double rate_hz, int frames,
                                  double alpha = 0.4, double edge_level = 120.0,
                                  int bins = 16);

/// Build a bundled application by its CLI name ("fig1", "bayer",
/// "histogram", "parallel-buffer", "multi-conv", "pipeline", "sobel",
/// "downsample", "separable", "motion", "feedback", "radio", "analytics").
/// Shared by the bpc driver and the bpd service's tenant submissions.
/// Throws GraphError for an unknown name.
[[nodiscard]] Graph named_app(const std::string& name, Size2 frame,
                              double rate_hz, int frames, int bins = 32);

/// Fig. 11 configurations of the Fig. 1(b) example.
struct Fig11Config {
  const char* tag;
  Size2 frame;
  double rate_hz;
};
[[nodiscard]] std::vector<Fig11Config> fig11_configs();

}  // namespace bpp::apps
