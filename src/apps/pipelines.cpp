#include "apps/pipelines.h"

#include "core/error.h"
#include "kernels/kernels.h"

namespace bpp::apps {

Tile blur_coeff5x5() {
  // Outer product of the binomial row (1 4 6 4 1)/16.
  const double row[5] = {1 / 16.0, 4 / 16.0, 6 / 16.0, 4 / 16.0, 1 / 16.0};
  Tile t(5, 5);
  for (int y = 0; y < 5; ++y)
    for (int x = 0; x < 5; ++x) t.at(x, y) = row[x] * row[y];
  return t;
}

Tile blur_coeff3x3() {
  const double row[3] = {1 / 4.0, 2 / 4.0, 1 / 4.0};
  Tile t(3, 3);
  for (int y = 0; y < 3; ++y)
    for (int x = 0; x < 3; ++x) t.at(x, y) = row[x] * row[y];
  return t;
}

std::vector<double> diff_bins(int bins) {
  // The median-minus-blur difference concentrates near zero.
  std::vector<double> uppers(static_cast<size_t>(bins));
  for (int i = 0; i < bins; ++i)
    uppers[static_cast<size_t>(i)] = -128.0 + 256.0 * (i + 1) / bins;
  return uppers;
}

namespace {

Tile bins_tile(const std::vector<double>& uppers) {
  Tile t(static_cast<int>(uppers.size()), 1);
  for (size_t i = 0; i < uppers.size(); ++i)
    t.at(static_cast<int>(i), 0) = uppers[i];
  return t;
}

}  // namespace

Graph figure1_app(Size2 frame, double rate_hz, int frames, int bins) {
  Graph g;
  auto& input = g.add<InputKernel>("input", frame, rate_hz, frames);
  auto& med = g.add<MedianKernel>("median3x3", 3, 3);
  auto& conv = g.add<ConvolutionKernel>("conv5x5", 5, 5);
  auto& coeff = g.add<ConstSource>("coeff5x5", blur_coeff5x5());
  Kernel& sub = g.add_kernel(make_subtract("subtract"));
  auto& hist = g.add<HistogramKernel>("histogram", bins);
  auto& hbins = g.add<ConstSource>("histBins", bins_tile(diff_bins(bins)));
  auto& merge = g.add<HistogramMergeKernel>("merge", bins);
  auto& out = g.add<OutputKernel>("result", Size2{bins, 1});

  g.connect(input, "out", med, "in");
  g.connect(input, "out", conv, "in");
  g.connect(coeff, "out", conv, "coeff");
  g.connect(med, "out", sub, "in0");
  g.connect(conv, "out", sub, "in1");
  g.connect(sub, "out", hist, "in");
  g.connect(hbins, "out", hist, "bins");
  g.connect(hist, "out", merge, "partial");
  g.connect(merge, "out", out, "in");

  // The histogram's final combination is serial, once per frame: a data
  // dependency edge from the input bounds the merge kernel (Fig. 1(b)).
  g.add_dependency(input, merge);
  return g;
}

Graph bayer_app(Size2 frame, double rate_hz, int frames) {
  Graph g;
  auto& input = g.add<InputKernel>("input", frame, rate_hz, frames);
  auto& demosaic = g.add<BayerDemosaicKernel>("demosaic");
  auto& out = g.add<OutputKernel>("result", Size2{2, 2});
  g.connect(input, "out", demosaic, "in");
  g.connect(demosaic, "out", out, "in");
  return g;
}

Graph histogram_app(Size2 frame, double rate_hz, int frames, int bins) {
  Graph g;
  auto& input = g.add<InputKernel>("input", frame, rate_hz, frames);
  auto& hist = g.add<HistogramKernel>("histogram", bins);
  auto& hbins = g.add<ConstSource>(
      "histBins", HistogramKernel::uniform_bins(bins, 0.0, 256.0));
  auto& merge = g.add<HistogramMergeKernel>("merge", bins);
  auto& out = g.add<OutputKernel>("result", Size2{bins, 1});
  g.connect(input, "out", hist, "in");
  g.connect(hbins, "out", hist, "bins");
  g.connect(hist, "out", merge, "partial");
  g.connect(merge, "out", out, "in");
  g.add_dependency(input, merge);
  return g;
}

Graph parallel_buffer_app(Size2 frame, double rate_hz, int frames) {
  Graph g;
  auto& input = g.add<InputKernel>("input", frame, rate_hz, frames);
  auto& conv = g.add<ConvolutionKernel>("conv9x9", 9, 9);
  Tile coeff(Size2{9, 9}, 1.0 / 81.0);
  auto& csrc = g.add<ConstSource>("coeff9x9", coeff);
  auto& out = g.add<OutputKernel>("result");
  g.connect(input, "out", conv, "in");
  g.connect(csrc, "out", conv, "coeff");
  g.connect(conv, "out", out, "in");
  return g;
}

Graph multi_convolution_app(Size2 frame, double rate_hz, int frames) {
  Graph g;
  auto& input = g.add<InputKernel>("input", frame, rate_hz, frames);
  auto& c1 = g.add<ConvolutionKernel>("convA", 3, 3);
  auto& s1 = g.add<ConstSource>("coeffA", blur_coeff3x3());
  auto& c2 = g.add<ConvolutionKernel>("convB", 3, 3);
  auto& s2 = g.add<ConstSource>("coeffB", blur_coeff3x3());
  auto& c3 = g.add<ConvolutionKernel>("convC", 5, 5);
  auto& s3 = g.add<ConstSource>("coeffC", blur_coeff5x5());
  auto& out = g.add<OutputKernel>("result");
  g.connect(input, "out", c1, "in");
  g.connect(s1, "out", c1, "coeff");
  g.connect(c1, "out", c2, "in");
  g.connect(s2, "out", c2, "coeff");
  g.connect(c2, "out", c3, "in");
  g.connect(s3, "out", c3, "coeff");
  g.connect(c3, "out", out, "in");
  return g;
}

Graph pipeline_app(Size2 frame, double rate_hz, int frames, long stage_cycles) {
  Graph g;
  auto& input = g.add<InputKernel>("input", frame, rate_hz, frames);
  auto stage1 = std::make_unique<UnaryOpKernel>(
      "stage1", [](double v) { return 0.5 * v + 1.0; }, stage_cycles);
  auto stage2 = std::make_unique<UnaryOpKernel>(
      "stage2", [](double v) { return v > 64.0 ? v : 0.0; }, stage_cycles);
  Kernel& s1 = g.add_kernel(std::move(stage1));
  Kernel& s2 = g.add_kernel(std::move(stage2));
  auto& out = g.add<OutputKernel>("result");
  g.connect(input, "out", s1, "in");
  g.connect(s1, "out", s2, "in");
  g.connect(s2, "out", out, "in");
  // Identical loads plus a dependency edge: the compiler replicates the
  // whole pipeline with lane connections (§IV-B).
  g.add_dependency(s1, s2);
  return g;
}

Graph feedback_app(Size2 frame, double rate_hz, int frames, double alpha) {
  Graph g;
  auto& input = g.add<InputKernel>("input", frame, rate_hz, frames);
  auto& mix = g.add<TemporalMixKernel>("mix", alpha);
  auto& init = g.add<InitialValueKernel>("loopInit", frame, rate_hz, 0.0);
  auto& out = g.add<OutputKernel>("result");
  g.connect(input, "out", mix, "x");
  g.connect(init, "out", mix, "prev");
  g.connect(mix, "out", init, "in");
  g.connect(mix, "out", out, "in");
  return g;
}

Graph sobel_app(Size2 frame, double rate_hz, int frames, double threshold) {
  Graph g;
  auto& input = g.add<InputKernel>("input", frame, rate_hz, frames);
  auto& sob = g.add<SobelKernel>("sobel");
  Kernel& th = g.add_kernel(make_threshold("threshold", threshold));
  auto& out = g.add<OutputKernel>("result");
  g.connect(input, "out", sob, "in");
  g.connect(sob, "out", th, "in");
  g.connect(th, "out", out, "in");
  return g;
}

Graph downsample_app(Size2 frame, double rate_hz, int frames) {
  Graph g;
  auto& input = g.add<InputKernel>("input", frame, rate_hz, frames);
  auto& down = g.add<DownsampleKernel>("down2", 2);
  auto& conv = g.add<ConvolutionKernel>("conv3x3", 3, 3);
  auto& csrc = g.add<ConstSource>("coeff3x3", blur_coeff3x3());
  auto& out = g.add<OutputKernel>("result");
  g.connect(input, "out", down, "in");
  g.connect(down, "out", conv, "in");
  g.connect(csrc, "out", conv, "coeff");
  g.connect(conv, "out", out, "in");
  return g;
}

namespace {

Tile binomial_row5() {
  const double row[5] = {1 / 16.0, 4 / 16.0, 6 / 16.0, 4 / 16.0, 1 / 16.0};
  Tile t(5, 1);
  for (int x = 0; x < 5; ++x) t.at(x, 0) = row[x];
  return t;
}

Tile binomial_col5() {
  const double row[5] = {1 / 16.0, 4 / 16.0, 6 / 16.0, 4 / 16.0, 1 / 16.0};
  Tile t(1, 5);
  for (int y = 0; y < 5; ++y) t.at(0, y) = row[y];
  return t;
}

}  // namespace

Graph separable_blur_app(Size2 frame, double rate_hz, int frames) {
  Graph g;
  auto& input = g.add<InputKernel>("input", frame, rate_hz, frames);
  auto& horiz = g.add<ConvolutionKernel>("blurH", 5, 1);
  auto& hcoeff = g.add<ConstSource>("coeffH", binomial_row5());
  auto& vert = g.add<ConvolutionKernel>("blurV", 1, 5);
  auto& vcoeff = g.add<ConstSource>("coeffV", binomial_col5());
  auto& out = g.add<OutputKernel>("result");
  g.connect(input, "out", horiz, "in");
  g.connect(hcoeff, "out", horiz, "coeff");
  g.connect(horiz, "out", vert, "in");
  g.connect(vcoeff, "out", vert, "coeff");
  g.connect(vert, "out", out, "in");
  return g;
}

Graph motion_app(Size2 frame, double rate_hz, int frames, int radius,
                 long bound_cycles) {
  Graph g;
  auto& input = g.add<InputKernel>("input", frame, rate_hz, frames);
  auto& blocks = g.add<BufferKernel>("blocks", Size2{1, 1}, Size2{4, 4},
                                     Step2{4, 4}, frame);
  auto& motion = g.add<MotionEstimateKernel>("motion", frame, radius,
                                             bound_cycles);
  auto& out = g.add<OutputKernel>("result");
  g.connect(input, "out", blocks, "in");
  g.connect(blocks, "out", motion, "in");
  g.connect(motion, "out", out, "in");
  return g;
}

Graph analytics_app(Size2 frame, double rate_hz, int frames, double alpha,
                    double edge_level, int bins) {
  Graph g;
  auto& input = g.add<InputKernel>("input", frame, rate_hz, frames);

  // Temporal denoise: y_t = alpha x_t + (1-alpha) y_{t-1} (§III-D loop).
  auto& mix = g.add<TemporalMixKernel>("denoise", alpha);
  auto& init = g.add<InitialValueKernel>("loopInit", frame, rate_hz, 0.0);
  g.connect(input, "out", mix, "x");
  g.connect(init, "out", mix, "prev");
  g.connect(mix, "out", init, "in");

  // Separable 5x5 blur of the denoised stream.
  auto& blurH = g.add<ConvolutionKernel>("blurH", 5, 1);
  auto& cH = g.add<ConstSource>("coeffH", binomial_row5());
  auto& blurV = g.add<ConvolutionKernel>("blurV", 1, 5);
  auto& cV = g.add<ConstSource>("coeffV", binomial_col5());
  g.connect(mix, "out", blurH, "in");
  g.connect(cH, "out", blurH, "coeff");
  g.connect(blurH, "out", blurV, "in");
  g.connect(cV, "out", blurV, "coeff");

  // Edge branch: sobel -> threshold -> dilate (close small gaps).
  auto& sob = g.add<SobelKernel>("sobel");
  Kernel& th = g.add_kernel(make_threshold("edgeThresh", edge_level));
  auto& dil = g.add<MorphologyKernel>("clean", MorphologyKernel::Op::Dilate, 3, 3);
  auto& edges = g.add<OutputKernel>("edges");
  g.connect(blurV, "out", sob, "in");
  g.connect(sob, "out", th, "in");
  g.connect(th, "out", dil, "in");
  g.connect(dil, "out", edges, "in");

  // Statistics branch: per-frame histogram of the blurred image with the
  // explicitly serial merge of Fig. 1(b).
  auto& hist = g.add<HistogramKernel>("histogram", bins);
  auto& hbins = g.add<ConstSource>(
      "histBins", HistogramKernel::uniform_bins(bins, 0.0, 256.0));
  auto& merge = g.add<HistogramMergeKernel>("merge", bins);
  auto& stats = g.add<OutputKernel>("stats", Size2{bins, 1});
  g.connect(blurV, "out", hist, "in");
  g.connect(hbins, "out", hist, "bins");
  g.connect(hist, "out", merge, "partial");
  g.connect(merge, "out", stats, "in");
  g.add_dependency(input, merge);
  return g;
}

Graph radio_app(int samples, double block_rate_hz, int blocks) {
  Graph g;
  auto& input = g.add<InputKernel>("input", Size2{samples, 1}, block_rate_hz,
                                   blocks);
  auto& lp = g.add<FirDecimateKernel>("lowpass", lowpass_taps(16, 0.1), 4);
  Kernel& mag = g.add_kernel(make_abs("magnitude"));
  auto& env = g.add<FirDecimateKernel>("envelope", moving_average_taps(8), 1);
  auto& out = g.add<OutputKernel>("result");
  g.connect(input, "out", lp, "in");
  g.connect(lp, "out", mag, "in");
  g.connect(mag, "out", env, "in");
  g.connect(env, "out", out, "in");
  return g;
}

Graph named_app(const std::string& name, Size2 frame, double rate_hz,
                int frames, int bins) {
  if (name == "fig1") return figure1_app(frame, rate_hz, frames, bins);
  if (name == "bayer") return bayer_app(frame, rate_hz, frames);
  if (name == "histogram") return histogram_app(frame, rate_hz, frames, bins);
  if (name == "parallel-buffer")
    return parallel_buffer_app(frame, rate_hz, frames);
  if (name == "multi-conv") return multi_convolution_app(frame, rate_hz, frames);
  if (name == "pipeline") return pipeline_app(frame, rate_hz, frames);
  if (name == "sobel") return sobel_app(frame, rate_hz, frames, 100.0);
  if (name == "downsample") return downsample_app(frame, rate_hz, frames);
  if (name == "separable") return separable_blur_app(frame, rate_hz, frames);
  if (name == "motion") return motion_app(frame, rate_hz, frames);
  if (name == "feedback") return feedback_app(frame, rate_hz, frames, 0.3);
  if (name == "radio") return radio_app(frame.w, rate_hz, frames);
  if (name == "analytics") return analytics_app(frame, rate_hz, frames);
  throw GraphError("unknown application '" + name + "'");
}

std::vector<Fig11Config> fig11_configs() {
  // Tuned against the default embedded machine so the replication pattern
  // follows Fig. 11: slow rates parallelize the filters ~2x, fast rates
  // 4-5x with a second histogram, and the big input's buffers exceed one
  // PE's storage and column-split.
  return {
      {"SS", {48, 36}, 180.0},  // small / slow
      {"BS", {96, 72}, 60.0},   // big / slow
      {"SF", {48, 36}, 420.0},  // small / fast
      {"BF", {96, 72}, 130.0},  // big / fast
  };
}

}  // namespace bpp::apps
