#include "placement/placement.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/error.h"

namespace bpp {

namespace {

std::uint64_t splitmix64(std::uint64_t& s) {
  s += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = s;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

double uniform01(std::uint64_t& s) {
  return static_cast<double>(splitmix64(s) >> 11) * 0x1.0p-53;
}

int manhattan(int a, int b, int w) {
  return std::abs(a % w - b % w) + std::abs(a / w - b / w);
}

}  // namespace

MeshSpec mesh_for(int cores) {
  int w = 1;
  while (w * w < cores) ++w;
  const int h = (cores + w - 1) / w;
  return {w, h};
}

std::vector<double> channel_traffic(const Graph& g, const LoadMap& loads) {
  std::vector<double> traffic(static_cast<size_t>(g.channel_count()), 0.0);
  for (int c = 0; c < g.channel_count(); ++c) {
    const Channel& ch = g.channel(c);
    if (!ch.alive) continue;
    const int fanout =
        std::max<size_t>(1, g.out_channels(ch.src_kernel).size());
    traffic[static_cast<size_t>(c)] =
        loads.of(ch.src_kernel).write_words_per_second / fanout;
  }
  return traffic;
}

double placement_cost(const Graph& g, const Mapping& mapping,
                      const std::vector<double>& traffic, const Placement& p) {
  double cost = 0.0;
  for (int c = 0; c < g.channel_count(); ++c) {
    const Channel& ch = g.channel(c);
    if (!ch.alive) continue;
    const int ca = mapping.core_of[static_cast<size_t>(ch.src_kernel)];
    const int cb = mapping.core_of[static_cast<size_t>(ch.dst_kernel)];
    if (ca == cb) continue;
    cost += traffic[static_cast<size_t>(c)] *
            manhattan(p.tile_of_core[static_cast<size_t>(ca)],
                      p.tile_of_core[static_cast<size_t>(cb)], p.mesh.width);
  }
  return cost;
}

Placement place_row_major(const Graph& g, const Mapping& mapping,
                          const LoadMap& loads, MeshSpec mesh) {
  if (mesh.tiles() < mapping.cores)
    throw AnalysisError("mesh too small for mapping");
  Placement p;
  p.mesh = mesh;
  p.tile_of_core.resize(static_cast<size_t>(mapping.cores));
  std::iota(p.tile_of_core.begin(), p.tile_of_core.end(), 0);
  p.cost = placement_cost(g, mapping, channel_traffic(g, loads), p);
  return p;
}

Placement place_annealed(const Graph& g, const Mapping& mapping,
                         const LoadMap& loads, MeshSpec mesh,
                         std::uint64_t seed, int iterations) {
  Placement p = place_row_major(g, mapping, loads, mesh);
  const std::vector<double> traffic = channel_traffic(g, loads);

  // Tile occupancy (tiles beyond `cores` stay empty and can host swaps).
  std::vector<int> core_at(static_cast<size_t>(mesh.tiles()), -1);
  for (int c = 0; c < mapping.cores; ++c)
    core_at[static_cast<size_t>(p.tile_of_core[static_cast<size_t>(c)])] = c;

  double cost = p.cost;
  double temp = std::max(1.0, cost / 10.0);
  const double cool = std::pow(1e-4, 1.0 / std::max(1, iterations));
  std::uint64_t rng = seed * 0x9e3779b97f4a7c15ULL + 1;

  for (int it = 0; it < iterations; ++it) {
    const int ta = static_cast<int>(splitmix64(rng) % static_cast<std::uint64_t>(mesh.tiles()));
    const int tb = static_cast<int>(splitmix64(rng) % static_cast<std::uint64_t>(mesh.tiles()));
    if (ta == tb) continue;
    const int ca = core_at[static_cast<size_t>(ta)];
    const int cb = core_at[static_cast<size_t>(tb)];
    if (ca < 0 && cb < 0) continue;

    // Apply the swap tentatively.
    if (ca >= 0) p.tile_of_core[static_cast<size_t>(ca)] = tb;
    if (cb >= 0) p.tile_of_core[static_cast<size_t>(cb)] = ta;
    const double next = placement_cost(g, mapping, traffic, p);
    const double delta = next - cost;
    if (delta <= 0.0 || uniform01(rng) < std::exp(-delta / temp)) {
      core_at[static_cast<size_t>(ta)] = cb;
      core_at[static_cast<size_t>(tb)] = ca;
      cost = next;
    } else {
      if (ca >= 0) p.tile_of_core[static_cast<size_t>(ca)] = ta;
      if (cb >= 0) p.tile_of_core[static_cast<size_t>(cb)] = tb;
    }
    temp *= cool;
  }
  p.cost = cost;
  return p;
}

}  // namespace bpp
