#pragma once
// Simulated-annealing placement (paper §IV-D).
//
// The paper reports: "A simulated annealing approach to placement has been
// implemented, but not integrated within the simulator." This module is
// that standalone component: it assigns the cores of a mapping to tiles of
// a 2-D mesh, minimizing total communication cost = sum over channels of
// (channel traffic x Manhattan distance between the endpoint tiles).
// Cross-core channels only; intra-core channels are free.

#include <cstdint>
#include <utility>
#include <vector>

#include "compiler/loads.h"
#include "compiler/multiplex.h"
#include "core/graph.h"

namespace bpp {

struct MeshSpec {
  int width = 0;
  int height = 0;
  [[nodiscard]] int tiles() const { return width * height; }
  friend constexpr bool operator==(const MeshSpec&, const MeshSpec&) = default;
};

/// Smallest near-square mesh with at least `cores` tiles.
[[nodiscard]] MeshSpec mesh_for(int cores);

struct Placement {
  MeshSpec mesh;
  /// core id -> tile index (y * mesh.width + x).
  std::vector<int> tile_of_core;
  double cost = 0.0;
};

/// Words/second crossing each channel (traffic weights for the cost).
[[nodiscard]] std::vector<double> channel_traffic(const Graph& g,
                                                  const LoadMap& loads);

/// Total weighted Manhattan communication cost of a placement.
[[nodiscard]] double placement_cost(const Graph& g, const Mapping& mapping,
                                    const std::vector<double>& traffic,
                                    const Placement& p);

/// Baseline: cores laid out in index order, row-major.
[[nodiscard]] Placement place_row_major(const Graph& g, const Mapping& mapping,
                                        const LoadMap& loads, MeshSpec mesh);

/// Simulated annealing from the row-major start. Deterministic in `seed`.
[[nodiscard]] Placement place_annealed(const Graph& g, const Mapping& mapping,
                                       const LoadMap& loads, MeshSpec mesh,
                                       std::uint64_t seed = 1,
                                       int iterations = 20000);

}  // namespace bpp
