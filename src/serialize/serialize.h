#pragma once
// Application-graph serialization.
//
// Saves and loads *source* application graphs (the programmer-facing
// description: library kernels, channels, dependency edges) as a
// line-oriented text format, so applications can be authored, versioned,
// and fed to the `bpc` driver without recompiling C++.
//
//   bpp-graph 1
//   kernel input Input frame=48x36 rate=180 frames=2
//   kernel blur Convolution w=3 h=3
//   kernel coeff Const tile=3x3:0.0625,0.125,...
//   kernel out Output item=1x1
//   channel input.out -> blur.in
//   channel coeff.out -> blur.coeff
//   channel blur.out -> out.in
//   dependency input -> out        # (optional)
//
// Scope: the library's kernel vocabulary (sources, sinks, filters,
// histogram, FIR, events, motion, feedback, named element-wise ops).
// Ad-hoc lambda kernels and compiled-graph infrastructure (buffers,
// splits) are intentionally out of scope — serialize the source graph and
// re-run compile().

#include <iosfwd>
#include <string>

#include "core/graph.h"

namespace bpp {

/// Serialize `g` as bpp-graph text. Throws GraphError for kernels outside
/// the serializable vocabulary (e.g. ad-hoc lambdas, compiled buffers).
void write_graph_text(const Graph& g, std::ostream& os);
[[nodiscard]] std::string graph_to_text(const Graph& g);

/// Parse a bpp-graph text back into an application graph.
[[nodiscard]] Graph read_graph_text(std::istream& is);
[[nodiscard]] Graph graph_from_text(const std::string& text);

}  // namespace bpp
