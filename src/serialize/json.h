#pragma once
// Minimal JSON document model: parse and write the subset of JSON the
// project's serialized artifacts use (objects, arrays, numbers, strings,
// booleans, null). Exists so configuration files like fault plans
// (src/fault/plan.h) can be authored as ordinary .json without pulling in
// an external dependency; it is not a general-purpose JSON library (no
// \uXXXX escapes beyond pass-through, numbers parsed as double).

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/error.h"

namespace bpp::json {

class Value;
using Array = std::vector<Value>;
/// std::map keeps object keys sorted, so writing is deterministic.
using Object = std::map<std::string, Value>;

enum class Kind { Null, Bool, Number, String, Array, Object };

class Value {
 public:
  Value() = default;
  Value(bool b) : kind_(Kind::Bool), bool_(b) {}  // NOLINT
  Value(double n) : kind_(Kind::Number), num_(n) {}  // NOLINT
  Value(int n) : kind_(Kind::Number), num_(n) {}  // NOLINT
  Value(long n) : kind_(Kind::Number), num_(static_cast<double>(n)) {}  // NOLINT
  Value(const char* s) : kind_(Kind::String), str_(s) {}  // NOLINT
  Value(std::string s) : kind_(Kind::String), str_(std::move(s)) {}  // NOLINT
  Value(Array a) : kind_(Kind::Array),  // NOLINT
                   arr_(std::make_shared<Array>(std::move(a))) {}
  Value(Object o) : kind_(Kind::Object),  // NOLINT
                    obj_(std::make_shared<Object>(std::move(o))) {}

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::Null; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::Number; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::String; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::Array; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::Object; }

  /// Typed accessors throw Error when the value has a different kind.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;

  /// Object member lookup; nullptr when absent (or not an object).
  [[nodiscard]] const Value* find(const std::string& key) const;
  /// Member with a default for scalars.
  [[nodiscard]] double number_or(const std::string& key, double dflt) const;
  [[nodiscard]] std::string string_or(const std::string& key,
                                      const std::string& dflt) const;

 private:
  Kind kind_ = Kind::Null;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::shared_ptr<Array> arr_;
  std::shared_ptr<Object> obj_;
};

/// Parse one JSON document (throws bpp::Error with position info on
/// malformed input; trailing garbage after the document is an error).
[[nodiscard]] Value parse(const std::string& text);

/// Serialize with deterministic member order (objects are sorted maps).
[[nodiscard]] std::string write(const Value& v);

}  // namespace bpp::json
