#include "serialize/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace bpp::json {

namespace {

[[noreturn]] void kind_error(const char* want, Kind got) {
  const char* names[] = {"null", "bool", "number", "string", "array",
                         "object"};
  throw Error(std::string("json: expected ") + want + ", have " +
              names[static_cast<int>(got)]);
}

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  Value document() {
    Value v = value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    std::size_t line = 1, col = 1;
    for (std::size_t i = 0; i < pos_ && i < s_.size(); ++i) {
      if (s_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    std::ostringstream os;
    os << "json: " << why << " at line " << line << ", column " << col;
    throw Error(os.str());
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r'))
      ++pos_;
  }

  [[nodiscard]] char peek() {
    skip_ws();
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool literal(const char* word) {
    const std::size_t n = std::string(word).size();
    if (s_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  Value value() {
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return Value(string());
      case 't':
        if (literal("true")) return Value(true);
        fail("invalid literal");
      case 'f':
        if (literal("false")) return Value(false);
        fail("invalid literal");
      case 'n':
        if (literal("null")) return Value();
        fail("invalid literal");
      default: return number();
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= s_.size()) fail("unterminated escape");
        const char e = s_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          default: fail("unsupported escape");
        }
      } else {
        out += c;
      }
    }
  }

  Value number() {
    skip_ws();
    const std::size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    bool digits = false;
    auto eat_digits = [&] {
      while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        ++pos_;
        digits = true;
      }
    };
    eat_digits();
    if (pos_ < s_.size() && s_[pos_] == '.') {
      ++pos_;
      eat_digits();
    }
    if (digits && pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
      const bool had = digits;
      digits = false;
      eat_digits();
      digits = digits && had;
    }
    if (!digits) fail("invalid number");
    return Value(std::strtod(s_.c_str() + start, nullptr));
  }

  Value array() {
    expect('[');
    Array out;
    if (peek() == ']') {
      ++pos_;
      return Value(std::move(out));
    }
    while (true) {
      out.push_back(value());
      const char c = peek();
      ++pos_;
      if (c == ']') return Value(std::move(out));
      if (c != ',') fail("expected ',' or ']'");
    }
  }

  Value object() {
    expect('{');
    Object out;
    if (peek() == '}') {
      ++pos_;
      return Value(std::move(out));
    }
    while (true) {
      skip_ws();
      std::string key = string();
      expect(':');
      out[std::move(key)] = value();
      const char c = peek();
      ++pos_;
      if (c == '}') return Value(std::move(out));
      if (c != ',') fail("expected ',' or '}'");
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

void write_value(const Value& v, std::string& out) {
  switch (v.kind()) {
    case Kind::Null:
      out += "null";
      break;
    case Kind::Bool:
      out += v.as_bool() ? "true" : "false";
      break;
    case Kind::Number: {
      const double n = v.as_number();
      if (!std::isfinite(n)) {
        out += "null";  // JSON has no inf/nan
        break;
      }
      char buf[40];
      if (n == std::floor(n) && std::fabs(n) < 1e15)
        std::snprintf(buf, sizeof buf, "%.0f", n);
      else
        std::snprintf(buf, sizeof buf, "%.17g", n);
      out += buf;
      break;
    }
    case Kind::String: {
      out += '"';
      for (const char c : v.as_string()) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
              char buf[8];
              std::snprintf(buf, sizeof buf, "\\u%04x", c);
              out += buf;
            } else {
              out += c;
            }
        }
      }
      out += '"';
      break;
    }
    case Kind::Array: {
      out += '[';
      bool first = true;
      for (const Value& e : v.as_array()) {
        if (!first) out += ',';
        first = false;
        write_value(e, out);
      }
      out += ']';
      break;
    }
    case Kind::Object: {
      out += '{';
      bool first = true;
      for (const auto& [k, e] : v.as_object()) {
        if (!first) out += ',';
        first = false;
        write_value(Value(k), out);
        out += ':';
        write_value(e, out);
      }
      out += '}';
      break;
    }
  }
}

}  // namespace

bool Value::as_bool() const {
  if (kind_ != Kind::Bool) kind_error("bool", kind_);
  return bool_;
}

double Value::as_number() const {
  if (kind_ != Kind::Number) kind_error("number", kind_);
  return num_;
}

const std::string& Value::as_string() const {
  if (kind_ != Kind::String) kind_error("string", kind_);
  return str_;
}

const Array& Value::as_array() const {
  if (kind_ != Kind::Array) kind_error("array", kind_);
  return *arr_;
}

const Object& Value::as_object() const {
  if (kind_ != Kind::Object) kind_error("object", kind_);
  return *obj_;
}

const Value* Value::find(const std::string& key) const {
  if (kind_ != Kind::Object) return nullptr;
  const auto it = obj_->find(key);
  return it == obj_->end() ? nullptr : &it->second;
}

double Value::number_or(const std::string& key, double dflt) const {
  const Value* v = find(key);
  return v ? v->as_number() : dflt;
}

std::string Value::string_or(const std::string& key,
                             const std::string& dflt) const {
  const Value* v = find(key);
  return v ? v->as_string() : dflt;
}

Value parse(const std::string& text) { return Parser(text).document(); }

std::string write(const Value& v) {
  std::string out;
  write_value(v, out);
  return out;
}

}  // namespace bpp::json
