#include "serialize/serialize.h"

#include <algorithm>
#include <iomanip>
#include <map>
#include <sstream>
#include <vector>

#include "kernels/kernels.h"

namespace bpp {

namespace {

// ----------------------------------------------------------- formatting

std::string fmt_double(double v) {
  std::ostringstream os;
  os << std::setprecision(17) << v;
  return os.str();
}

std::string fmt_size(Size2 s) {
  return std::to_string(s.w) + "x" + std::to_string(s.h);
}

std::string fmt_tile(const Tile& t) {
  std::string out = fmt_size(t.size()) + ":";
  for (long i = 0; i < t.words(); ++i) {
    if (i) out += ',';
    out += fmt_double(t.data()[static_cast<size_t>(i)]);
  }
  return out;
}

std::string fmt_taps(const std::vector<double>& taps) {
  std::string out;
  for (size_t i = 0; i < taps.size(); ++i) {
    if (i) out += ',';
    out += fmt_double(taps[i]);
  }
  return out;
}

// -------------------------------------------------------------- writing

std::string describe_kernel(const Kernel& k) {
  std::ostringstream os;
  os << "kernel " << k.name() << ' ';
  if (const auto* p = dynamic_cast<const InputKernel*>(&k)) {
    os << "Input frame=" << fmt_size(p->frame()) << " rate=" << fmt_double(p->rate_hz())
       << " frames=" << p->frames();
  } else if (const auto* p = dynamic_cast<const ConstSource*>(&k)) {
    os << "Const tile=" << fmt_tile(p->payload());
  } else if (const auto* p = dynamic_cast<const OutputKernel*>(&k)) {
    os << "Output item=" << fmt_size(p->inputs().front().spec.window);
  } else if (const auto* p = dynamic_cast<const ConvolutionKernel*>(&k)) {
    os << "Convolution w=" << p->kwidth() << " h=" << p->kheight();
  } else if (const auto* p = dynamic_cast<const MedianKernel*>(&k)) {
    os << "Median w=" << p->inputs().front().spec.window.w
       << " h=" << p->inputs().front().spec.window.h;
  } else if (const auto* p = dynamic_cast<const MorphologyKernel*>(&k)) {
    os << (p->op() == MorphologyKernel::Op::Erode ? "Erode" : "Dilate")
       << " w=" << p->inputs().front().spec.window.w
       << " h=" << p->inputs().front().spec.window.h;
  } else if (dynamic_cast<const SobelKernel*>(&k)) {
    os << "Sobel";
  } else if (dynamic_cast<const BayerDemosaicKernel*>(&k)) {
    os << "Bayer";
  } else if (const auto* p = dynamic_cast<const DownsampleKernel*>(&k)) {
    os << "Downsample factor=" << p->factor();
  } else if (const auto* p = dynamic_cast<const UpsampleKernel*>(&k)) {
    os << "Upsample factor=" << p->factor();
  } else if (const auto* p = dynamic_cast<const HistogramKernel*>(&k)) {
    os << "Histogram bins=" << p->bins();
  } else if (const auto* p = dynamic_cast<const HistogramMergeKernel*>(&k)) {
    os << "HistogramMerge bins=" << p->inputs().front().spec.window.w;
  } else if (const auto* p = dynamic_cast<const FirDecimateKernel*>(&k)) {
    os << "Fir decimate=" << p->decimation() << " taps=" << fmt_taps(p->tap_values());
  } else if (const auto* p = dynamic_cast<const BinaryOpKernel*>(&k)) {
    if (p->op_tag().empty())
      throw GraphError(k.name() + ": ad-hoc binary op is not serializable");
    os << "Binary op=" << p->op_tag();
  } else if (const auto* p = dynamic_cast<const UnaryOpKernel*>(&k)) {
    if (p->op_tag().empty())
      throw GraphError(k.name() + ": ad-hoc unary op is not serializable");
    os << "Unary op=" << p->op_tag() << " p0=" << fmt_double(p->param0())
       << " p1=" << fmt_double(p->param1());
  } else {
    throw GraphError(k.name() + ": kernel type is not serializable (compiled "
                     "infrastructure and ad-hoc kernels are out of scope)");
  }
  return os.str();
}

// -------------------------------------------------------------- reading

using Params = std::map<std::string, std::string>;

Size2 parse_size(const std::string& v) {
  Size2 s;
  if (std::sscanf(v.c_str(), "%dx%d", &s.w, &s.h) != 2)
    throw GraphError("bad size '" + v + "'");
  return s;
}

std::vector<double> parse_list(const std::string& v) {
  std::vector<double> out;
  std::istringstream is(v);
  std::string tok;
  while (std::getline(is, tok, ',')) out.push_back(std::stod(tok));
  return out;
}

Tile parse_tile(const std::string& v) {
  const size_t colon = v.find(':');
  if (colon == std::string::npos) throw GraphError("bad tile '" + v + "'");
  const Size2 s = parse_size(v.substr(0, colon));
  const std::vector<double> vals = parse_list(v.substr(colon + 1));
  if (static_cast<long>(vals.size()) != s.area())
    throw GraphError("tile value count mismatch in '" + v + "'");
  Tile t(s);
  std::copy(vals.begin(), vals.end(), t.data());
  return t;
}

const std::string& req(const Params& p, const std::string& key) {
  auto it = p.find(key);
  if (it == p.end()) throw GraphError("missing parameter '" + key + "'");
  return it->second;
}

std::unique_ptr<Kernel> make_kernel(const std::string& name,
                                    const std::string& type, const Params& p) {
  if (type == "Input")
    return std::make_unique<InputKernel>(name, parse_size(req(p, "frame")),
                                         std::stod(req(p, "rate")),
                                         std::stoi(req(p, "frames")));
  if (type == "Const")
    return std::make_unique<ConstSource>(name, parse_tile(req(p, "tile")));
  if (type == "Output") {
    Size2 item{1, 1};
    if (p.count("item")) item = parse_size(p.at("item"));
    return std::make_unique<OutputKernel>(name, item);
  }
  if (type == "Convolution")
    return std::make_unique<ConvolutionKernel>(name, std::stoi(req(p, "w")),
                                               std::stoi(req(p, "h")));
  if (type == "Median")
    return std::make_unique<MedianKernel>(name, std::stoi(req(p, "w")),
                                          std::stoi(req(p, "h")));
  if (type == "Erode")
    return std::make_unique<MorphologyKernel>(name, MorphologyKernel::Op::Erode,
                                              std::stoi(req(p, "w")),
                                              std::stoi(req(p, "h")));
  if (type == "Dilate")
    return std::make_unique<MorphologyKernel>(name, MorphologyKernel::Op::Dilate,
                                              std::stoi(req(p, "w")),
                                              std::stoi(req(p, "h")));
  if (type == "Sobel") return std::make_unique<SobelKernel>(name);
  if (type == "Bayer") return std::make_unique<BayerDemosaicKernel>(name);
  if (type == "Downsample")
    return std::make_unique<DownsampleKernel>(name, std::stoi(req(p, "factor")));
  if (type == "Upsample")
    return std::make_unique<UpsampleKernel>(name, std::stoi(req(p, "factor")));
  if (type == "Histogram")
    return std::make_unique<HistogramKernel>(name, std::stoi(req(p, "bins")));
  if (type == "HistogramMerge")
    return std::make_unique<HistogramMergeKernel>(name, std::stoi(req(p, "bins")));
  if (type == "Fir")
    return std::make_unique<FirDecimateKernel>(name, parse_list(req(p, "taps")),
                                               std::stoi(req(p, "decimate")));
  if (type == "Binary") {
    const std::string& op = req(p, "op");
    if (op == "subtract") return make_subtract(name);
    if (op == "add") return make_add(name);
    if (op == "absdiff") return make_absdiff(name);
    if (op == "multiply") return make_multiply(name);
    throw GraphError("unknown binary op '" + op + "'");
  }
  if (type == "Unary") {
    const std::string& op = req(p, "op");
    const double p0 = p.count("p0") ? std::stod(p.at("p0")) : 0.0;
    const double p1 = p.count("p1") ? std::stod(p.at("p1")) : 0.0;
    if (op == "abs") return make_abs(name);
    if (op == "scale") return make_scale(name, p0, p1);
    if (op == "threshold") return make_threshold(name, p0);
    if (op == "clamp") return make_clamp(name, p0, p1);
    throw GraphError("unknown unary op '" + op + "'");
  }
  throw GraphError("unknown kernel type '" + type + "'");
}

}  // namespace

void write_graph_text(const Graph& g, std::ostream& os) {
  os << "bpp-graph 1\n";
  for (int k = 0; k < g.kernel_count(); ++k)
    os << describe_kernel(g.kernel(k)) << '\n';
  for (int c = 0; c < g.channel_count(); ++c) {
    const Channel& ch = g.channel(c);
    if (!ch.alive) continue;
    os << "channel " << g.kernel(ch.src_kernel).name() << '.'
       << g.kernel(ch.src_kernel).output(ch.src_port).spec.name << " -> "
       << g.kernel(ch.dst_kernel).name() << '.'
       << g.kernel(ch.dst_kernel).input(ch.dst_port).spec.name << '\n';
  }
  for (const DepEdge& d : g.dependencies())
    os << "dependency " << g.kernel(d.src).name() << " -> "
       << g.kernel(d.dst).name() << '\n';
}

std::string graph_to_text(const Graph& g) {
  std::ostringstream os;
  write_graph_text(g, os);
  return os.str();
}

Graph read_graph_text(std::istream& is) {
  Graph g;
  std::string line;
  int lineno = 0;
  bool header = false;

  auto fail = [&](const std::string& why) {
    throw GraphError("bpp-graph line " + std::to_string(lineno) + ": " + why);
  };

  while (std::getline(is, line)) {
    ++lineno;
    // Strip comments and whitespace-only lines.
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::string word;
    if (!(ls >> word)) continue;

    if (!header) {
      std::string version;
      if (word != "bpp-graph" || !(ls >> version) || version != "1")
        fail("expected header 'bpp-graph 1'");
      header = true;
      continue;
    }

    if (word == "kernel") {
      std::string name, type;
      if (!(ls >> name >> type)) fail("kernel needs a name and type");
      Params params;
      std::string kv;
      while (ls >> kv) {
        const size_t eq = kv.find('=');
        if (eq == std::string::npos) fail("expected key=value, got '" + kv + "'");
        params[kv.substr(0, eq)] = kv.substr(eq + 1);
      }
      try {
        g.add_kernel(make_kernel(name, type, params));
      } catch (const std::exception& e) {
        fail(e.what());
      }
    } else if (word == "channel" || word == "dependency") {
      std::string lhs, arrow, rhs;
      if (!(ls >> lhs >> arrow >> rhs) || arrow != "->")
        fail("expected '<src> -> <dst>'");
      if (word == "dependency") {
        const KernelId s = g.find(lhs);
        const KernelId d = g.find(rhs);
        if (s < 0 || d < 0) fail("unknown kernel in dependency");
        g.add_dependency(s, d);
        continue;
      }
      auto split_ref = [&](const std::string& r) {
        const size_t dot = r.rfind('.');
        if (dot == std::string::npos) fail("expected kernel.port, got '" + r + "'");
        return std::pair<std::string, std::string>{r.substr(0, dot),
                                                   r.substr(dot + 1)};
      };
      const auto [sk, sp] = split_ref(lhs);
      const auto [dk, dp] = split_ref(rhs);
      if (g.find(sk) < 0 || g.find(dk) < 0) fail("unknown kernel in channel");
      try {
        g.connect(g.by_name(sk), sp, g.by_name(dk), dp);
      } catch (const std::exception& e) {
        fail(e.what());
      }
    } else {
      fail("unknown directive '" + word + "'");
    }
  }
  if (!header) throw GraphError("bpp-graph: empty input");
  return g;
}

Graph graph_from_text(const std::string& text) {
  std::istringstream is(text);
  return read_graph_text(is);
}

}  // namespace bpp
