#include "sim/simulator.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <deque>
#include <queue>
#include <limits>
#include <memory>
#include <sstream>
#include <string>

#include "core/error.h"
#include "core/firing.h"
#include "fault/injector.h"
#include "obs/recorder.h"

namespace bpp {

double SimResult::avg_utilization(const MachineSpec& m) const {
  if (sim_seconds <= 0.0) return 0.0;
  const double capacity = m.clock_hz * sim_seconds;
  double sum = 0.0;
  int n = 0;
  for (const CoreStats& c : cores) {
    if (c.source_only) continue;
    sum += c.busy_cycles() / capacity;
    ++n;
  }
  return n > 0 ? sum / n : 0.0;
}

CoreStats SimResult::totals() const {
  CoreStats t;
  t.source_only = false;
  for (const CoreStats& c : cores) {
    if (c.source_only) continue;
    t.run_cycles += c.run_cycles;
    t.read_cycles += c.read_cycles;
    t.write_cycles += c.write_cycles;
    t.switch_cycles += c.switch_cycles;
    t.firings += c.firings;
  }
  return t;
}

namespace {

struct TimedItem {
  Item item;
  double avail = 0.0;
  long charge = 0;  ///< words transferred (reuse links charge less)
};

struct ChannelState {
  std::deque<TimedItem> q;
};

struct KernelState {
  std::deque<Emission> pending;
  std::vector<int> connected_inputs;
  std::vector<ChannelId> in_channel_of_port;            // -1 if none
  std::vector<std::vector<ChannelId>> out_channels_of_port;
  bool is_sink = false;
  int sink_index = -1;  ///< into SimResult::sink_frame_times
};

struct SourceState {
  KernelId id = -1;
  bool exhausted = false;
  bool have_next = false;
  SourceEmission next;
  /// Frame tracking: the next data release starts a new frame.
  bool at_frame_start = true;
  std::int64_t frame_idx = 0;
  /// Items released so far (the injector's firing index for sources).
  std::int64_t released = 0;
};

struct CoreState {
  std::vector<KernelId> kernels;  // non-source kernels mapped here
  double busy_until = 0.0;
  size_t rr = 0;
};

class Sim {
 public:
  Sim(Graph& g, const Mapping& mapping, const SimOptions& opt)
      : g_(g), opt_(opt) {
    const int n = g.kernel_count();
    channels_.resize(static_cast<size_t>(g.channel_count()));
    kstate_.resize(static_cast<size_t>(n));
    core_of_ = mapping.core_of;
    cores_.resize(static_cast<size_t>(mapping.cores));
    res_.cores.resize(static_cast<size_t>(mapping.cores));

    for (KernelId k = 0; k < n; ++k) {
      Kernel& kn = g.kernel(k);
      KernelState& st = kstate_[static_cast<size_t>(k)];
      st.in_channel_of_port.assign(kn.inputs().size(), -1);
      for (size_t i = 0; i < kn.inputs().size(); ++i) {
        auto c = g.in_channel(k, static_cast<int>(i));
        if (c) {
          st.in_channel_of_port[i] = *c;
          st.connected_inputs.push_back(static_cast<int>(i));
        }
      }
      st.out_channels_of_port.resize(kn.outputs().size());
      for (size_t o = 0; o < kn.outputs().size(); ++o)
        st.out_channels_of_port[o] = g.out_channels(k, static_cast<int>(o));

      if (kn.is_source()) {
        SourceState ss;
        ss.id = k;
        sources_.push_back(ss);
        auto spec = kn.source_spec(0);
        if (spec && spec->rate_hz > 0.0) {
          pixel_period_ = std::min(
              pixel_period_, 1.0 / (spec->rate_hz * spec->frame.area()));
          res_.input_span_seconds = std::max(
              res_.input_span_seconds, spec->frames / spec->rate_hz);
        }
      } else {
        const int core = core_of_[static_cast<size_t>(k)];
        cores_[static_cast<size_t>(core)].kernels.push_back(k);
        res_.cores[static_cast<size_t>(core)].source_only = false;
      }
      if (!kn.is_source() && g.out_channels(k).empty()) {
        st.is_sink = true;
        st.sink_index = static_cast<int>(res_.sink_frame_times.size());
        res_.sink_frame_times.emplace_back(k, std::vector<double>{});
      }
      kn.init();
      for (Emission& e : kn.initial_emissions())
        st.pending.push_back(std::move(e));
    }
    res_.kernel_activity.assign(static_cast<size_t>(n), {0L, 0.0});

    // Observability: an external recorder gets the full event stream; the
    // trace_limit adapter alone gets an internal recorder sized to exactly
    // the requested firing count (the ring keeps the oldest events, which
    // is the "first N firings" semantic).
    if (obs::kCompiledIn && (opt.recorder || opt.trace_limit > 0)) {
      rec_ = opt.recorder;
      if (!rec_) {
        obs::RecorderOptions ro;
        ro.ring_capacity =
            static_cast<std::size_t>(std::max<long>(opt.trace_limit, 1));
        own_rec_ = std::make_unique<obs::Recorder>(ro);
        rec_ = own_rec_.get();
      }
      std::vector<std::string> names;
      names.reserve(static_cast<size_t>(n));
      for (KernelId k = 0; k < n; ++k) names.push_back(g.kernel(k).name());
      rec_->begin_session(obs::TraceClock::kModeled, opt.machine.clock_hz,
                          mapping.cores, std::move(names));
      // The simulator is single-threaded: everything goes through ring 0,
      // which also keeps events chronological without sorting.
      ring_ = mapping.cores > 0 ? rec_->ring(0) : nullptr;
      detail_ = opt.recorder ? ring_ : nullptr;
      if (detail_) chan_hw_.assign(channels_.size(), 0);
    }

    // Fault injection: copy + re-bind so the caller's injector can be
    // reused across runs of different graphs.
    if (opt.injector != nullptr) {
      inj_ = *opt.injector;
      inj_.bind(g, core_of_);
      faults_ = inj_.active();
    }
  }

  SimResult run() {
    for (SourceState& s : sources_) advance_source(s);

    std::priority_queue<double, std::vector<double>, std::greater<>> wake;
    wake.push(0.0);
    double now = 0.0;

    while (!wake.empty()) {
      now = wake.top();
      while (!wake.empty() && wake.top() <= now + 1e-15) wake.pop();

      // Keep an external recorder's ring drained so sessions longer than
      // its capacity keep every event (single-threaded: we are both the
      // producer and the collector). The internal trace_limit adapter is
      // deliberately not polled — its full ring is the "first N" cutoff.
      if (obs::kCompiledIn && detail_ && opt_.recorder) opt_.recorder->poll();

      bool acted = true;
      while (acted) {
        acted = false;
        // Application inputs release on their schedule; a blocked release
        // is retried and its lag recorded (the camera cannot wait).
        for (SourceState& s : sources_) {
          while (s.have_next && s.next.release_seconds <= now + 1e-15) {
            if (!push_source(s, now)) break;
            acted = true;
          }
          if (s.have_next && s.next.release_seconds > now)
            wake.push(s.next.release_seconds);
        }
        // One action per idle core per settling pass.
        for (size_t c = 0; c < cores_.size(); ++c) {
          CoreState& core = cores_[c];
          if (core.busy_until > now + 1e-15 || core.kernels.empty()) continue;
          const double dur = core_action(static_cast<int>(c), now);
          if (dur > 0.0) {
            core.busy_until = now + dur;
            wake.push(core.busy_until);
            acted = true;
          }
        }
        if (res_.total_firings > opt_.max_firings) {
          res_.diagnostics = "aborted: firing limit exceeded";
          finish(now);
          return std::move(res_);
        }
      }
      // Delivery-delayed items become visible at instants no core/source
      // wake covers; queue them so consumers retry then (after settling —
      // a future avail cannot enable anything now).
      for (const double t : pending_wakes_)
        if (t > now + 1e-15) wake.push(t);
      pending_wakes_.clear();
    }
    finish(now);
    return std::move(res_);
  }

 private:
  [[nodiscard]] bool channel_has_space(ChannelId c) const {
    return static_cast<int>(channels_[static_cast<size_t>(c)].q.size()) <
           opt_.channel_capacity;
  }

  [[nodiscard]] bool all_have_space(const std::vector<ChannelId>& cs) const {
    return std::all_of(cs.begin(), cs.end(),
                       [&](ChannelId c) { return channel_has_space(c); });
  }

  void advance_source(SourceState& s) {
    s.have_next = g_.kernel(s.id).source_poll(s.next);
    if (!s.have_next) s.exhausted = true;
  }

  bool push_source(SourceState& s, double now) {
    const KernelState& st = kstate_[static_cast<size_t>(s.id)];
    const auto& outs = st.out_channels_of_port[static_cast<size_t>(s.next.port)];
    if (!all_have_space(outs)) return false;
    const double lag = now - s.next.release_seconds;
    if (lag > 1e-12) {
      ++res_.delayed_releases;
      res_.max_input_lag_seconds = std::max(res_.max_input_lag_seconds, lag);
    }
    // Sources only feel delivery faults (a camera cannot run slow, but its
    // link can): matching items land in the channel late.
    double avail = now;
    if (faults_) {
      const fault::Perturbation pert = inj_.perturb(s.id, s.released);
      if (!pert.identity()) {
        ++res_.faults_injected;
        record_fault(s.id, -1, now, pert);
      }
      if (pert.delivery_delay_seconds > 0.0) {
        avail = now + pert.delivery_delay_seconds;
        pending_wakes_.push_back(avail);
      }
    }
    ++s.released;
    for (ChannelId c : outs) {
      channels_[static_cast<size_t>(c)].q.push_back(
          TimedItem{s.next.item, avail, item_words(s.next.item)});
      record_push(c, now);
    }
    if (obs::kCompiledIn && detail_) {
      obs::TraceEvent e;
      e.kind = obs::EventKind::kSourceRelease;
      e.t0 = e.t1 = now;
      e.kernel = s.id;
      e.core = -1;  // input releases happen off-core ("sources" track)
      e.aux0 = static_cast<float>(lag > 0.0 ? lag : 0.0);
      e.aux1 =
          lag > opt_.lag_tolerance_periods * pixel_period_ + 1e-12 ? 1.0f
                                                                   : 0.0f;
      detail_->emit(e);
    }
    // Frame tracking: the first pixel after an end-of-frame token opens
    // frame N; the token itself advances the source's frame cursor.
    if (is_data(s.next.item)) {
      if (s.at_frame_start) {
        s.at_frame_start = false;
        if (obs::kCompiledIn && detail_) {
          obs::TraceEvent e;
          e.kind = obs::EventKind::kFrameStart;
          e.t0 = e.t1 = now;
          e.kernel = s.id;
          e.core = -1;
          e.method = static_cast<std::int32_t>(s.frame_idx);
          detail_->emit(e);
        }
      }
    } else if (as_token(s.next.item).cls == tok::kEndOfFrame) {
      ++s.frame_idx;
      s.at_frame_start = true;
    }
    advance_source(s);
    return true;
  }

  /// Detail events (external recorder only): channel occupancy sample
  /// after a push or pop.
  void record_push(ChannelId c, double now) {
    if (!obs::kCompiledIn || !detail_) return;
    const auto occ =
        static_cast<long>(channels_[static_cast<size_t>(c)].q.size());
    if (occ > chan_hw_[static_cast<size_t>(c)])
      chan_hw_[static_cast<size_t>(c)] = occ;
    obs::TraceEvent e;
    e.kind = obs::EventKind::kChannelPush;
    e.t0 = e.t1 = now;
    e.channel = c;
    e.core = -1;
    e.aux0 = static_cast<float>(occ);
    detail_->emit(e);
  }

  /// Instant marking a perturbed firing/release (external recorder only).
  void record_fault(KernelId k, int core, double now,
                    const fault::Perturbation& p) {
    if (!obs::kCompiledIn || !detail_) return;
    obs::TraceEvent e;
    e.kind = obs::EventKind::kFaultInject;
    e.t0 = e.t1 = now;
    e.kernel = k;
    e.core = core;
    e.aux0 = static_cast<float>(p.time_scale);
    e.aux1 = static_cast<float>(p.stall_seconds);
    e.aux2 = static_cast<float>(p.delivery_delay_seconds);
    detail_->emit(e);
  }

  void record_pop(ChannelId c, int core, double now) {
    if (!obs::kCompiledIn || !detail_) return;
    obs::TraceEvent e;
    e.kind = obs::EventKind::kChannelPop;
    e.t0 = e.t1 = now;
    e.channel = c;
    e.core = core;
    e.aux0 = static_cast<float>(channels_[static_cast<size_t>(c)].q.size());
    detail_->emit(e);
  }

  /// Move as many pending emissions of kernel `k` to channels as fit,
  /// marking them with a provisional +inf availability that retime_recent
  /// replaces with the action's end time. Returns words written.
  long drain_pending(KernelId k, double now) {
    constexpr double kProvisional = std::numeric_limits<double>::infinity();
    KernelState& st = kstate_[static_cast<size_t>(k)];
    long words = 0;
    while (!st.pending.empty()) {
      const Emission& e = st.pending.front();
      const auto& outs = st.out_channels_of_port[static_cast<size_t>(e.port)];
      if (!all_have_space(outs)) break;
      const long charge =
          e.charge_words >= 0 ? e.charge_words : item_words(e.item);
      for (ChannelId c : outs) {
        channels_[static_cast<size_t>(c)].q.push_back(
            TimedItem{e.item, kProvisional, charge});
        words += charge;
        record_push(c, now);
      }
      st.pending.pop_front();
    }
    return words;
  }

  /// Attempt one action on core `c` at time `now`; returns its duration in
  /// seconds (0 = nothing to do).
  double core_action(int c, double now) {
    CoreState& core = cores_[static_cast<size_t>(c)];
    CoreStats& stats = res_.cores[static_cast<size_t>(c)];
    const size_t n = core.kernels.size();
    for (size_t off = 0; off < n; ++off) {
      const size_t idx = (core.rr + off) % n;
      const KernelId k = core.kernels[idx];
      KernelState& st = kstate_[static_cast<size_t>(k)];
      Kernel& kn = g_.kernel(k);

      // Deliver back-pressured output first; a kernel may keep firing
      // while its undelivered items fit its modeled output buffering.
      if (!st.pending.empty()) {
        const long words = drain_pending(k, now);
        if (words > 0) {
          const double cycles = words * opt_.machine.write_cost;
          const double dur = cycles / opt_.machine.clock_hz;
          retime_recent(k, now + dur);
          stats.write_cycles += cycles;
          if (obs::kCompiledIn && detail_) {
            obs::TraceEvent e;
            e.kind = obs::EventKind::kWrite;
            e.t0 = now;
            e.t1 = now + dur;
            e.aux2 = static_cast<float>(cycles);
            e.kernel = k;
            e.core = c;
            detail_->emit(e);
          }
          core.rr = (idx + 1) % n;
          last_action_ = std::max(last_action_, now + dur);
          return dur;
        }
        if (static_cast<long>(st.pending.size()) >= kn.pending_capacity())
          continue;  // stalled on insufficient output buffering (Fig. 9(b))
      }

      FireDecision& d = fire_scratch_;
      decide_fire_into(
          kn, st.connected_inputs,
          [&](int port) -> const Item* {
            const ChannelId ch = st.in_channel_of_port[static_cast<size_t>(port)];
            if (ch < 0) return nullptr;
            const auto& q = channels_[static_cast<size_t>(ch)].q;
            if (q.empty() || q.front().avail > now + 1e-15) return nullptr;
            return &q.front().item;
          },
          d);
      if (!d.fires()) continue;

      // Pop the consumed items.
      ExecContext ctx;
      std::vector<Item> popped;
      popped.reserve(d.pop_inputs.size());
      long read_words = 0;
      for (int p : d.pop_inputs) {
        const ChannelId ch = st.in_channel_of_port[static_cast<size_t>(p)];
        auto& q = channels_[static_cast<size_t>(ch)].q;
        read_words += q.front().charge;
        popped.push_back(std::move(q.front().item));
        q.pop_front();
        record_pop(ch, c, now);
      }
      for (size_t i = 0; i < d.pop_inputs.size(); ++i)
        ctx.bind_input(d.pop_inputs[static_cast<size_t>(i)], &popped[i]);

      long run_cycles = 0;
      if (d.kind == FireDecision::Kind::Method) {
        if (d.token >= 0) ctx.set_trigger_token(d.token, d.payload);
        kn.invoke(d.method, ctx);
        run_cycles = kn.methods()[static_cast<size_t>(d.method)].res.cycles;
        if (ctx.has_dynamic_cycles()) {
          // Dynamic-resource extension: time the firing with the reported
          // cycles; the declared count is the allocated bound.
          const long bound = run_cycles;
          run_cycles = ctx.dynamic_cycles();
          if (run_cycles > bound) {
            ++res_.resource_exception_count;
            if (res_.resource_exceptions.size() < 64)
              res_.resource_exceptions.push_back(ResourceException{
                  kn.name(), kn.methods()[static_cast<size_t>(d.method)].name,
                  run_cycles, bound, now});
          }
        }
      } else {
        for (int o : d.forward_outputs)
          ctx.emit(o, ControlToken{d.token, d.payload});
        run_cycles = 2;  // token forwarding FSM step
      }

      for (Emission& e : ctx.emissions()) st.pending.push_back(std::move(e));

      const double base_cycles = opt_.machine.context_switch +
                                 read_words * opt_.machine.read_cost +
                                 static_cast<double>(run_cycles);
      const long write_words = drain_pending(k, now);  // retimed below
      const double cycles =
          base_cycles + write_words * opt_.machine.write_cost;

      // Fault injection: jitter/overrun/throttle scale the firing, stalls
      // prepend dead time, delivery delay pushes output availability past
      // the firing's end. Keyed on the kernel's firing index, so the host
      // runtime perturbs the same firings.
      fault::Perturbation pert;
      double fault_cycles = 0.0;
      if (faults_) {
        pert = inj_.perturb(
            k, res_.kernel_activity[static_cast<size_t>(k)].first);
        if (!pert.identity()) {
          ++res_.faults_injected;
          record_fault(k, c, now, pert);
        }
        fault_cycles = cycles * (pert.time_scale - 1.0) +
                       pert.stall_seconds * opt_.machine.clock_hz;
      }
      const double dur = (cycles + fault_cycles) / opt_.machine.clock_hz;
      retime_recent(k, now + dur + pert.delivery_delay_seconds);
      if (pert.delivery_delay_seconds > 0.0)
        pending_wakes_.push_back(now + dur + pert.delivery_delay_seconds);

      stats.switch_cycles += opt_.machine.context_switch;
      stats.read_cycles += read_words * opt_.machine.read_cost;
      // Induced overrun/stall time counts as run: it occupies the core.
      stats.run_cycles += static_cast<double>(run_cycles) + fault_cycles;
      stats.write_cycles += write_words * opt_.machine.write_cost;
      ++stats.firings;
      ++res_.total_firings;
      res_.kernel_activity[static_cast<size_t>(k)].first += 1;
      res_.kernel_activity[static_cast<size_t>(k)].second +=
          cycles + fault_cycles;
      if (st.is_sink)
        for (const Item& it : popped)
          if (is_token(it) && as_token(it).cls == tok::kEndOfFrame) {
            res_.sink_frame_times[static_cast<size_t>(st.sink_index)]
                .second.push_back(now + dur);
            if (obs::kCompiledIn && detail_) {
              obs::TraceEvent e;
              e.kind = obs::EventKind::kFrameEnd;
              e.t0 = e.t1 = now + dur;
              e.kernel = k;
              e.core = c;
              e.method = static_cast<std::int32_t>(as_token(it).payload);
              detail_->emit(e);
            }
          }
      if (obs::kCompiledIn && ring_) {
        obs::TraceEvent e;
        e.kind = obs::EventKind::kFiring;
        e.t0 = now;
        e.t1 = now + dur;
        e.aux0 = static_cast<float>(run_cycles);
        e.aux1 = static_cast<float>(read_words * opt_.machine.read_cost);
        e.aux2 = static_cast<float>(write_words * opt_.machine.write_cost);
        e.kernel = k;
        e.core = c;
        e.method = d.kind == FireDecision::Kind::Method ? d.method : -1;
        ring_->emit(e);
      }
      core.rr = (idx + 1) % n;
      last_action_ = std::max(last_action_, now + dur);
      return dur;
    }
    return 0.0;
  }

  /// Items just pushed with a provisional +inf availability get the final
  /// action-end time (they sit at the back of their queues).
  void retime_recent(KernelId k, double avail) {
    const KernelState& st = kstate_[static_cast<size_t>(k)];
    for (const auto& outs : st.out_channels_of_port)
      for (ChannelId c : outs) {
        auto& q = channels_[static_cast<size_t>(c)].q;
        for (auto it = q.rbegin();
             it != q.rend() && std::isinf(it->avail); ++it)
          it->avail = avail;
      }
  }

  void finish(double now) {
    res_.sim_seconds = std::max(last_action_, now);
    bool exhausted = true;
    for (const SourceState& s : sources_) exhausted = exhausted && s.exhausted;
    long leftover = 0;
    for (const ChannelState& cs : channels_) leftover += static_cast<long>(cs.q.size());
    for (const KernelState& ks : kstate_) leftover += static_cast<long>(ks.pending.size());
    res_.completed = exhausted;
    res_.deadlocked = !exhausted;
    if (leftover > 0 && res_.diagnostics.empty()) {
      std::ostringstream os;
      os << leftover << " items left in flight";
      res_.diagnostics = os.str();
    }
    const double tolerance = opt_.lag_tolerance_periods * pixel_period_;
    res_.realtime_met = res_.completed &&
                        res_.max_input_lag_seconds <= tolerance + 1e-12;

    if (obs::kCompiledIn && rec_) {
      const obs::Trace& t = rec_->finish_session(res_.sim_seconds);
      // trace_limit adapter: the legacy FiringRecord timeline is the first
      // N firing spans of the obs trace.
      if (opt_.trace_limit > 0) {
        for (const obs::TraceEvent& e : t.events) {
          if (e.kind != obs::EventKind::kFiring) continue;
          if (static_cast<long>(res_.trace.size()) >= opt_.trace_limit)
            break;
          res_.trace.push_back(
              FiringRecord{e.t0, e.t1 - e.t0, e.core, e.kernel, e.method});
        }
      }
      obs::MetricsRegistry& m = rec_->metrics();
      m.gauge("sim.seconds").set(res_.sim_seconds);
      m.counter("sim.total_firings").add(res_.total_firings);
      m.counter("sim.delayed_releases").add(res_.delayed_releases);
      m.gauge("sim.max_input_lag_seconds").set(res_.max_input_lag_seconds);
      m.gauge("sim.realtime_met").set(res_.realtime_met ? 1.0 : 0.0);
      if (faults_) m.counter("sim.faults_injected").add(res_.faults_injected);
      for (std::size_t c = 0; c < chan_hw_.size(); ++c)
        if (chan_hw_[c] > 0)
          m.high_water("sim.channel." + std::to_string(c) + ".occupancy")
              .update(static_cast<double>(chan_hw_[c]));
    }
  }

  Graph& g_;
  SimOptions opt_;
  SimResult res_;
  std::vector<ChannelState> channels_;
  std::vector<KernelState> kstate_;
  std::vector<SourceState> sources_;
  std::vector<CoreState> cores_;
  std::vector<int> core_of_;
  double pixel_period_ = 1.0;
  double last_action_ = 0.0;
  FireDecision fire_scratch_;  // reused across steps; see decide_fire_into

  /// Fault injection (see ctor): a bound copy of the caller's injector.
  fault::Injector inj_;
  bool faults_ = false;
  /// Wake instants for delivery-delayed items (drained by run()).
  std::vector<double> pending_wakes_;

  /// Observability (see ctor): rec_ is the session sink (external or the
  /// internal trace_limit adapter); ring_ receives firing spans; detail_
  /// is non-null only for an external recorder and additionally receives
  /// write spans, releases, and channel occupancy samples.
  obs::Recorder* rec_ = nullptr;
  std::unique_ptr<obs::Recorder> own_rec_;
  obs::EventRing* ring_ = nullptr;
  obs::EventRing* detail_ = nullptr;
  std::vector<long> chan_hw_;
};

}  // namespace

SimResult simulate(Graph& g, const Mapping& mapping, const SimOptions& options) {
  if (static_cast<int>(mapping.core_of.size()) != g.kernel_count())
    throw ExecutionError("simulate: mapping does not cover the graph");
  return Sim(g, mapping, options).run();
}

}  // namespace bpp
