#include "sim/simulator.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <queue>
#include <limits>
#include <sstream>

#include "core/error.h"
#include "core/firing.h"

namespace bpp {

double SimResult::avg_utilization(const MachineSpec& m) const {
  if (sim_seconds <= 0.0) return 0.0;
  const double capacity = m.clock_hz * sim_seconds;
  double sum = 0.0;
  int n = 0;
  for (const CoreStats& c : cores) {
    if (c.source_only) continue;
    sum += c.busy_cycles() / capacity;
    ++n;
  }
  return n > 0 ? sum / n : 0.0;
}

CoreStats SimResult::totals() const {
  CoreStats t;
  t.source_only = false;
  for (const CoreStats& c : cores) {
    if (c.source_only) continue;
    t.run_cycles += c.run_cycles;
    t.read_cycles += c.read_cycles;
    t.write_cycles += c.write_cycles;
    t.switch_cycles += c.switch_cycles;
    t.firings += c.firings;
  }
  return t;
}

namespace {

struct TimedItem {
  Item item;
  double avail = 0.0;
  long charge = 0;  ///< words transferred (reuse links charge less)
};

struct ChannelState {
  std::deque<TimedItem> q;
};

struct KernelState {
  std::deque<Emission> pending;
  std::vector<int> connected_inputs;
  std::vector<ChannelId> in_channel_of_port;            // -1 if none
  std::vector<std::vector<ChannelId>> out_channels_of_port;
  bool is_sink = false;
  int sink_index = -1;  ///< into SimResult::sink_frame_times
};

struct SourceState {
  KernelId id = -1;
  bool exhausted = false;
  bool have_next = false;
  SourceEmission next;
};

struct CoreState {
  std::vector<KernelId> kernels;  // non-source kernels mapped here
  double busy_until = 0.0;
  size_t rr = 0;
};

class Sim {
 public:
  Sim(Graph& g, const Mapping& mapping, const SimOptions& opt)
      : g_(g), opt_(opt) {
    const int n = g.kernel_count();
    channels_.resize(static_cast<size_t>(g.channel_count()));
    kstate_.resize(static_cast<size_t>(n));
    core_of_ = mapping.core_of;
    cores_.resize(static_cast<size_t>(mapping.cores));
    res_.cores.resize(static_cast<size_t>(mapping.cores));

    for (KernelId k = 0; k < n; ++k) {
      Kernel& kn = g.kernel(k);
      KernelState& st = kstate_[static_cast<size_t>(k)];
      st.in_channel_of_port.assign(kn.inputs().size(), -1);
      for (size_t i = 0; i < kn.inputs().size(); ++i) {
        auto c = g.in_channel(k, static_cast<int>(i));
        if (c) {
          st.in_channel_of_port[i] = *c;
          st.connected_inputs.push_back(static_cast<int>(i));
        }
      }
      st.out_channels_of_port.resize(kn.outputs().size());
      for (size_t o = 0; o < kn.outputs().size(); ++o)
        st.out_channels_of_port[o] = g.out_channels(k, static_cast<int>(o));

      if (kn.is_source()) {
        SourceState ss;
        ss.id = k;
        sources_.push_back(ss);
        auto spec = kn.source_spec(0);
        if (spec && spec->rate_hz > 0.0) {
          pixel_period_ = std::min(
              pixel_period_, 1.0 / (spec->rate_hz * spec->frame.area()));
          res_.input_span_seconds = std::max(
              res_.input_span_seconds, spec->frames / spec->rate_hz);
        }
      } else {
        const int core = core_of_[static_cast<size_t>(k)];
        cores_[static_cast<size_t>(core)].kernels.push_back(k);
        res_.cores[static_cast<size_t>(core)].source_only = false;
      }
      if (!kn.is_source() && g.out_channels(k).empty()) {
        st.is_sink = true;
        st.sink_index = static_cast<int>(res_.sink_frame_times.size());
        res_.sink_frame_times.emplace_back(k, std::vector<double>{});
      }
      kn.init();
      for (Emission& e : kn.initial_emissions())
        st.pending.push_back(std::move(e));
    }
    res_.kernel_activity.assign(static_cast<size_t>(n), {0L, 0.0});
  }

  SimResult run() {
    for (SourceState& s : sources_) advance_source(s);

    std::priority_queue<double, std::vector<double>, std::greater<>> wake;
    wake.push(0.0);
    double now = 0.0;

    while (!wake.empty()) {
      now = wake.top();
      while (!wake.empty() && wake.top() <= now + 1e-15) wake.pop();

      bool acted = true;
      while (acted) {
        acted = false;
        // Application inputs release on their schedule; a blocked release
        // is retried and its lag recorded (the camera cannot wait).
        for (SourceState& s : sources_) {
          while (s.have_next && s.next.release_seconds <= now + 1e-15) {
            if (!push_source(s, now)) break;
            acted = true;
          }
          if (s.have_next && s.next.release_seconds > now)
            wake.push(s.next.release_seconds);
        }
        // One action per idle core per settling pass.
        for (size_t c = 0; c < cores_.size(); ++c) {
          CoreState& core = cores_[c];
          if (core.busy_until > now + 1e-15 || core.kernels.empty()) continue;
          const double dur = core_action(static_cast<int>(c), now);
          if (dur > 0.0) {
            core.busy_until = now + dur;
            wake.push(core.busy_until);
            acted = true;
          }
        }
        if (res_.total_firings > opt_.max_firings) {
          res_.diagnostics = "aborted: firing limit exceeded";
          finish(now);
          return std::move(res_);
        }
      }
    }
    finish(now);
    return std::move(res_);
  }

 private:
  [[nodiscard]] bool channel_has_space(ChannelId c) const {
    return static_cast<int>(channels_[static_cast<size_t>(c)].q.size()) <
           opt_.channel_capacity;
  }

  [[nodiscard]] bool all_have_space(const std::vector<ChannelId>& cs) const {
    return std::all_of(cs.begin(), cs.end(),
                       [&](ChannelId c) { return channel_has_space(c); });
  }

  void advance_source(SourceState& s) {
    s.have_next = g_.kernel(s.id).source_poll(s.next);
    if (!s.have_next) s.exhausted = true;
  }

  bool push_source(SourceState& s, double now) {
    const KernelState& st = kstate_[static_cast<size_t>(s.id)];
    const auto& outs = st.out_channels_of_port[static_cast<size_t>(s.next.port)];
    if (!all_have_space(outs)) return false;
    const double lag = now - s.next.release_seconds;
    if (lag > 1e-12) {
      ++res_.delayed_releases;
      res_.max_input_lag_seconds = std::max(res_.max_input_lag_seconds, lag);
    }
    for (ChannelId c : outs)
      channels_[static_cast<size_t>(c)].q.push_back(
          TimedItem{s.next.item, now, item_words(s.next.item)});
    advance_source(s);
    return true;
  }

  /// Move as many pending emissions of kernel `k` to channels as fit,
  /// marking them with a provisional +inf availability that retime_recent
  /// replaces with the action's end time. Returns words written.
  long drain_pending(KernelId k) {
    constexpr double kProvisional = std::numeric_limits<double>::infinity();
    KernelState& st = kstate_[static_cast<size_t>(k)];
    long words = 0;
    while (!st.pending.empty()) {
      const Emission& e = st.pending.front();
      const auto& outs = st.out_channels_of_port[static_cast<size_t>(e.port)];
      if (!all_have_space(outs)) break;
      const long charge =
          e.charge_words >= 0 ? e.charge_words : item_words(e.item);
      for (ChannelId c : outs) {
        channels_[static_cast<size_t>(c)].q.push_back(
            TimedItem{e.item, kProvisional, charge});
        words += charge;
      }
      st.pending.pop_front();
    }
    return words;
  }

  /// Attempt one action on core `c` at time `now`; returns its duration in
  /// seconds (0 = nothing to do).
  double core_action(int c, double now) {
    CoreState& core = cores_[static_cast<size_t>(c)];
    CoreStats& stats = res_.cores[static_cast<size_t>(c)];
    const size_t n = core.kernels.size();
    for (size_t off = 0; off < n; ++off) {
      const size_t idx = (core.rr + off) % n;
      const KernelId k = core.kernels[idx];
      KernelState& st = kstate_[static_cast<size_t>(k)];
      Kernel& kn = g_.kernel(k);

      // Deliver back-pressured output first; a kernel may keep firing
      // while its undelivered items fit its modeled output buffering.
      if (!st.pending.empty()) {
        const long words = drain_pending(k);
        if (words > 0) {
          const double cycles = words * opt_.machine.write_cost;
          const double dur = cycles / opt_.machine.clock_hz;
          retime_recent(k, now + dur);
          stats.write_cycles += cycles;
          core.rr = (idx + 1) % n;
          last_action_ = std::max(last_action_, now + dur);
          return dur;
        }
        if (static_cast<long>(st.pending.size()) >= kn.pending_capacity())
          continue;  // stalled on insufficient output buffering (Fig. 9(b))
      }

      FireDecision& d = fire_scratch_;
      decide_fire_into(
          kn, st.connected_inputs,
          [&](int port) -> const Item* {
            const ChannelId ch = st.in_channel_of_port[static_cast<size_t>(port)];
            if (ch < 0) return nullptr;
            const auto& q = channels_[static_cast<size_t>(ch)].q;
            if (q.empty() || q.front().avail > now + 1e-15) return nullptr;
            return &q.front().item;
          },
          d);
      if (!d.fires()) continue;

      // Pop the consumed items.
      ExecContext ctx;
      std::vector<Item> popped;
      popped.reserve(d.pop_inputs.size());
      long read_words = 0;
      for (int p : d.pop_inputs) {
        const ChannelId ch = st.in_channel_of_port[static_cast<size_t>(p)];
        auto& q = channels_[static_cast<size_t>(ch)].q;
        read_words += q.front().charge;
        popped.push_back(std::move(q.front().item));
        q.pop_front();
      }
      for (size_t i = 0; i < d.pop_inputs.size(); ++i)
        ctx.bind_input(d.pop_inputs[static_cast<size_t>(i)], &popped[i]);

      long run_cycles = 0;
      if (d.kind == FireDecision::Kind::Method) {
        if (d.token >= 0) ctx.set_trigger_token(d.token, d.payload);
        kn.invoke(d.method, ctx);
        run_cycles = kn.methods()[static_cast<size_t>(d.method)].res.cycles;
        if (ctx.has_dynamic_cycles()) {
          // Dynamic-resource extension: time the firing with the reported
          // cycles; the declared count is the allocated bound.
          const long bound = run_cycles;
          run_cycles = ctx.dynamic_cycles();
          if (run_cycles > bound) {
            ++res_.resource_exception_count;
            if (res_.resource_exceptions.size() < 64)
              res_.resource_exceptions.push_back(ResourceException{
                  kn.name(), kn.methods()[static_cast<size_t>(d.method)].name,
                  run_cycles, bound, now});
          }
        }
      } else {
        for (int o : d.forward_outputs)
          ctx.emit(o, ControlToken{d.token, d.payload});
        run_cycles = 2;  // token forwarding FSM step
      }

      for (Emission& e : ctx.emissions()) st.pending.push_back(std::move(e));

      const double base_cycles = opt_.machine.context_switch +
                                 read_words * opt_.machine.read_cost +
                                 static_cast<double>(run_cycles);
      const long write_words = drain_pending(k);  // retimed below
      const double cycles =
          base_cycles + write_words * opt_.machine.write_cost;
      const double dur = cycles / opt_.machine.clock_hz;
      retime_recent(k, now + dur);

      stats.switch_cycles += opt_.machine.context_switch;
      stats.read_cycles += read_words * opt_.machine.read_cost;
      stats.run_cycles += static_cast<double>(run_cycles);
      stats.write_cycles += write_words * opt_.machine.write_cost;
      ++stats.firings;
      ++res_.total_firings;
      res_.kernel_activity[static_cast<size_t>(k)].first += 1;
      res_.kernel_activity[static_cast<size_t>(k)].second += cycles;
      if (st.is_sink)
        for (const Item& it : popped)
          if (is_token(it) && as_token(it).cls == tok::kEndOfFrame)
            res_.sink_frame_times[static_cast<size_t>(st.sink_index)]
                .second.push_back(now + dur);
      if (static_cast<long>(res_.trace.size()) < opt_.trace_limit)
        res_.trace.push_back(FiringRecord{
            now, dur, c, k,
            d.kind == FireDecision::Kind::Method ? d.method : -1});
      core.rr = (idx + 1) % n;
      last_action_ = std::max(last_action_, now + dur);
      return dur;
    }
    return 0.0;
  }

  /// Items just pushed with a provisional +inf availability get the final
  /// action-end time (they sit at the back of their queues).
  void retime_recent(KernelId k, double avail) {
    const KernelState& st = kstate_[static_cast<size_t>(k)];
    for (const auto& outs : st.out_channels_of_port)
      for (ChannelId c : outs) {
        auto& q = channels_[static_cast<size_t>(c)].q;
        for (auto it = q.rbegin();
             it != q.rend() && std::isinf(it->avail); ++it)
          it->avail = avail;
      }
  }

  void finish(double now) {
    res_.sim_seconds = std::max(last_action_, now);
    bool exhausted = true;
    for (const SourceState& s : sources_) exhausted = exhausted && s.exhausted;
    long leftover = 0;
    for (const ChannelState& cs : channels_) leftover += static_cast<long>(cs.q.size());
    for (const KernelState& ks : kstate_) leftover += static_cast<long>(ks.pending.size());
    res_.completed = exhausted;
    res_.deadlocked = !exhausted;
    if (leftover > 0 && res_.diagnostics.empty()) {
      std::ostringstream os;
      os << leftover << " items left in flight";
      res_.diagnostics = os.str();
    }
    const double tolerance = opt_.lag_tolerance_periods * pixel_period_;
    res_.realtime_met = res_.completed &&
                        res_.max_input_lag_seconds <= tolerance + 1e-12;
  }

  Graph& g_;
  SimOptions opt_;
  SimResult res_;
  std::vector<ChannelState> channels_;
  std::vector<KernelState> kstate_;
  std::vector<SourceState> sources_;
  std::vector<CoreState> cores_;
  std::vector<int> core_of_;
  double pixel_period_ = 1.0;
  double last_action_ = 0.0;
  FireDecision fire_scratch_;  // reused across steps; see decide_fire_into
};

}  // namespace

SimResult simulate(Graph& g, const Mapping& mapping, const SimOptions& options) {
  if (static_cast<int>(mapping.core_of.size()) != g.kernel_count())
    throw ExecutionError("simulate: mapping does not cover the graph");
  return Sim(g, mapping, options).run();
}

}  // namespace bpp
