#pragma once
// Timing-accurate functional simulator (paper §IV-D, §V).
//
// Matches the paper's evaluation vehicle: it accounts for kernel execution
// time, data access (read/write) time, buffer transfer, and the scheduling
// of time-multiplexed kernels on shared cores — but not placement or
// communication latency ("a reasonable simplification for a
// throughput-based application"). Kernels execute functionally, so outputs
// can be checked against golden references while timing is measured.
//
// Application inputs release items on their real-time schedule; if the
// downstream graph cannot accept an item when it is released the lag is
// recorded — a camera cannot wait, so any lag beyond the configured
// tolerance is a real-time violation.

#include <string>
#include <vector>

#include "compiler/machine.h"
#include "compiler/multiplex.h"
#include "core/graph.h"

namespace bpp {

namespace obs {
class Recorder;
}  // namespace obs

namespace fault {
class Injector;
}  // namespace fault

struct SimOptions {
  MachineSpec machine;
  /// Items of slack per channel (the paper's one-iteration implicit buffer
  /// on each side of a channel, plus transfer double-buffering).
  int channel_capacity = 4;
  /// Real-time tolerance for input release lag, as a multiple of the input
  /// pixel period.
  double lag_tolerance_periods = 1.0;
  /// Abort after this many simulated firings (runaway guard).
  long max_firings = 500'000'000;
  /// Record the first `trace_limit` firings (0 = off) into
  /// SimResult::trace. A thin adapter over the obs trace layer: the
  /// simulator spins up an internal Recorder sized to `trace_limit` and
  /// converts its firing spans back to FiringRecords after the run.
  long trace_limit = 0;
  /// Observability sink (see obs/recorder.h). Null = tracing off. When
  /// set, every firing/write span (with its modeled run/read/write cycle
  /// breakdown), input release, and channel push/pop lands in the
  /// recorder on the modeled clock, and `trace_limit` converts from it.
  obs::Recorder* recorder = nullptr;
  /// Fault injection (see fault/injector.h). Null = no faults. The sim
  /// copies and re-binds the injector against this run's graph/placement,
  /// then perturbs every firing deterministically: execution time scaling
  /// (jitter/overrun/throttle) and stalls stretch the modeled duration,
  /// delivery delay pushes output availability past the firing's end.
  /// Faults never touch values, only the clock.
  const fault::Injector* injector = nullptr;
};

/// One traced firing: when, where, what (for timeline inspection).
struct FiringRecord {
  double start_seconds = 0.0;
  double duration_seconds = 0.0;
  int core = -1;
  KernelId kernel = -1;
  int method = -1;  ///< -1 for token forwards and pending drains
};

/// Per-core activity breakdown (the run/read/write bars of Fig. 13).
struct CoreStats {
  double run_cycles = 0.0;
  double read_cycles = 0.0;
  double write_cycles = 0.0;
  double switch_cycles = 0.0;
  long firings = 0;
  bool source_only = true;  ///< core hosts only source kernels

  [[nodiscard]] double busy_cycles() const {
    return run_cycles + read_cycles + write_cycles + switch_cycles;
  }
};

/// A kernel firing that exceeded its declared cycle bound (the
/// dynamic-resource extension from the paper's conclusions: "runtime
/// exceptions to indicate when a kernel has exceeded its allocated
/// resources").
struct ResourceException {
  std::string kernel;
  std::string method;
  long used_cycles = 0;
  long bound_cycles = 0;
  double at_seconds = 0.0;
};

struct SimResult {
  bool completed = false;   ///< sources drained and graph quiescent
  bool deadlocked = false;  ///< items remained but nothing could fire
  bool realtime_met = false;
  double sim_seconds = 0.0;       ///< time of the last action
  double input_span_seconds = 0.0;  ///< scheduled duration of the input
  double max_input_lag_seconds = 0.0;
  long delayed_releases = 0;  ///< input items pushed later than scheduled
  long total_firings = 0;
  /// Firings (or source releases) the fault injector perturbed.
  long faults_injected = 0;
  std::vector<CoreStats> cores;
  std::string diagnostics;
  /// Firings that blew their declared cycle bound (first 64 recorded).
  long resource_exception_count = 0;
  std::vector<ResourceException> resource_exceptions;
  /// Firing timeline, when SimOptions::trace_limit > 0.
  std::vector<FiringRecord> trace;

  /// End-of-frame arrival times at each sink kernel (kernels with no
  /// outputs), in order — the throughput measurement of §IV-D: in the
  /// steady state consecutive completions must be one frame period apart.
  std::vector<std::pair<KernelId, std::vector<double>>> sink_frame_times;
  /// Completion times of one sink (the first, if several).
  [[nodiscard]] const std::vector<double>* frame_times(KernelId sink = -1) const {
    for (const auto& [k, v] : sink_frame_times)
      if (sink < 0 || k == sink) return &v;
    return nullptr;
  }
  /// First-output latency and steady-state period of a sink's frames.
  /// Communication/placement delay "will only increase the latency for
  /// the first output, but will not impact the throughput" (§IV-D).
  [[nodiscard]] double first_frame_latency(KernelId sink = -1) const {
    const auto* t = frame_times(sink);
    return t && !t->empty() ? t->front() : 0.0;
  }
  [[nodiscard]] double steady_frame_period(KernelId sink = -1) const {
    const auto* t = frame_times(sink);
    if (!t || t->size() < 2) return 0.0;
    return (t->back() - t->front()) / static_cast<double>(t->size() - 1);
  }

  /// Per-kernel activity (indexed by KernelId): firings and busy cycles.
  std::vector<std::pair<long, double>> kernel_activity;

  /// Average utilization over non-source cores (Fig. 13 bar height):
  /// mean of busy_cycles / (clock * sim_seconds).
  [[nodiscard]] double avg_utilization(const MachineSpec& m) const;
  /// Aggregate cycles over non-source cores (for run/read/write splits).
  [[nodiscard]] CoreStats totals() const;
};

/// Simulate `g` (kernels mutate!) under `mapping` until quiescent.
[[nodiscard]] SimResult simulate(Graph& g, const Mapping& mapping,
                                 const SimOptions& options = {});

}  // namespace bpp
