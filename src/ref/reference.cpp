#include "ref/reference.h"

#include <algorithm>
#include <cmath>

#include "kernels/bayer.h"
#include "kernels/sobel.h"

namespace bpp::ref {

Tile make_frame(Size2 size, int f, const PixelFn& fn) {
  Tile t(size);
  for (int y = 0; y < size.h; ++y)
    for (int x = 0; x < size.w; ++x) t.at(x, y) = fn(f, x, y);
  return t;
}

Tile convolve(const Tile& img, const Tile& coeff) {
  const int kw = coeff.width();
  const int kh = coeff.height();
  Tile out(img.width() - kw + 1, img.height() - kh + 1);
  for (int oy = 0; oy < out.height(); ++oy)
    for (int ox = 0; ox < out.width(); ++ox) {
      double acc = 0.0;
      for (int x = 0; x < kw; ++x)
        for (int y = 0; y < kh; ++y)
          acc += img.at(ox + x, oy + y) * coeff.at(kw - x - 1, kh - y - 1);
      out.at(ox, oy) = acc;
    }
  return out;
}

Tile median(const Tile& img, int w, int h) {
  Tile out(img.width() - w + 1, img.height() - h + 1);
  std::vector<double> win(static_cast<size_t>(w) * h);
  for (int oy = 0; oy < out.height(); ++oy)
    for (int ox = 0; ox < out.width(); ++ox) {
      size_t i = 0;
      // Window values in the kernel's (x-major) order; median is
      // order-insensitive but keep it identical for clarity.
      for (int y = 0; y < h; ++y)
        for (int x = 0; x < w; ++x) win[i++] = img.at(ox + x, oy + y);
      auto mid = win.begin() + static_cast<std::ptrdiff_t>(win.size() / 2);
      std::nth_element(win.begin(), mid, win.end());
      out.at(ox, oy) = *mid;
    }
  return out;
}

Tile subtract(const Tile& a, const Tile& b) {
  Tile out(a.size());
  for (int y = 0; y < a.height(); ++y)
    for (int x = 0; x < a.width(); ++x) out.at(x, y) = a.at(x, y) - b.at(x, y);
  return out;
}

std::vector<long> histogram(const Tile& img, const std::vector<double>& uppers) {
  std::vector<long> counts(uppers.size(), 0);
  const int bins = static_cast<int>(uppers.size());
  for (int y = 0; y < img.height(); ++y)
    for (int x = 0; x < img.width(); ++x) {
      const double v = img.at(x, y);
      int b = bins - 1;
      for (int i = 0; i < bins - 1; ++i)
        if (v < uppers[static_cast<size_t>(i)]) {
          b = i;
          break;
        }
      ++counts[static_cast<size_t>(b)];
    }
  return counts;
}

namespace {
Tile morph(const Tile& img, int w, int h, bool erode_op) {
  Tile out(img.width() - w + 1, img.height() - h + 1);
  for (int oy = 0; oy < out.height(); ++oy)
    for (int ox = 0; ox < out.width(); ++ox) {
      double v = img.at(ox, oy);
      for (int y = 0; y < h; ++y)
        for (int x = 0; x < w; ++x)
          v = erode_op ? std::min(v, img.at(ox + x, oy + y))
                       : std::max(v, img.at(ox + x, oy + y));
      out.at(ox, oy) = v;
    }
  return out;
}
}  // namespace

Tile erode(const Tile& img, int w, int h) { return morph(img, w, h, true); }
Tile dilate(const Tile& img, int w, int h) { return morph(img, w, h, false); }

Tile crop(const Tile& img, const Border& b) {
  return img.crop(b.left, b.top, {img.width() - b.left - b.right,
                                  img.height() - b.top - b.bottom});
}

Tile pad(const Tile& img, const Border& b) { return img.padded(b, false); }

Tile sobel(const Tile& img) {
  Tile out(img.width() - 2, img.height() - 2);
  for (int oy = 0; oy < out.height(); ++oy)
    for (int ox = 0; ox < out.width(); ++ox)
      out.at(ox, oy) =
          SobelKernel::gradient_magnitude(img.crop(ox, oy, {3, 3}));
  return out;
}

Tile bayer_demosaic(const Tile& mosaic) {
  const Size2 it = iteration_count(mosaic.size(), {4, 4}, {2, 2});
  Tile out(it.w * 2, it.h * 2);
  for (int wy = 0; wy < it.h; ++wy)
    for (int wx = 0; wx < it.w; ++wx) {
      const Tile cell = BayerDemosaicKernel::demosaic_window(
          mosaic.crop(wx * 2, wy * 2, {4, 4}));
      for (int j = 0; j < 2; ++j)
        for (int i = 0; i < 2; ++i) out.at(wx * 2 + i, wy * 2 + j) = cell.at(i, j);
    }
  return out;
}

Tile downsample(const Tile& img, int factor) {
  Tile out(img.width() / factor, img.height() / factor);
  for (int oy = 0; oy < out.height(); ++oy)
    for (int ox = 0; ox < out.width(); ++ox) {
      double sum = 0.0;
      for (int y = 0; y < factor; ++y)
        for (int x = 0; x < factor; ++x)
          sum += img.at(ox * factor + x, oy * factor + y);
      out.at(ox, oy) = sum / (factor * factor);
    }
  return out;
}

Tile upsample(const Tile& img, int factor) {
  Tile out(img.width() * factor, img.height() * factor);
  for (int y = 0; y < out.height(); ++y)
    for (int x = 0; x < out.width(); ++x)
      out.at(x, y) = img.at(x / factor, y / factor);
  return out;
}

std::vector<long> figure1_histogram(const Tile& frame, const Tile& coeff5x5,
                                    const std::vector<double>& uppers) {
  const Tile med = median(frame, 3, 3);               // inset 1, frame-2
  const Tile conv = convolve(frame, coeff5x5);        // inset 2, frame-4
  const Tile med_trimmed = crop(med, {1, 1, 1, 1});   // align to inset 2
  const Tile diff = subtract(med_trimmed, conv);
  return histogram(diff, uppers);
}

Tile mirror_pad(const Tile& img, const Border& b) { return img.padded(b, true); }

std::vector<long> figure1_histogram_mirror_padded(
    const Tile& frame, const Tile& coeff5x5, const std::vector<double>& uppers) {
  const Tile med = median(frame, 3, 3);
  const Tile conv = convolve(mirror_pad(frame, {1, 1, 1, 1}), coeff5x5);
  return histogram(subtract(med, conv), uppers);
}

std::vector<long> figure1_histogram_padded(const Tile& frame,
                                           const Tile& coeff5x5,
                                           const std::vector<double>& uppers) {
  const Tile med = median(frame, 3, 3);  // inset 1
  const Tile conv =
      convolve(pad(frame, {1, 1, 1, 1}), coeff5x5);  // grown to inset 1
  const Tile diff = subtract(med, conv);
  return histogram(diff, uppers);
}

}  // namespace bpp::ref
