#include "ref/reference.h"

#include <algorithm>
#include <cmath>

#include "kernels/bayer.h"
#include "kernels/simd/simd.h"

namespace bpp::ref {

Tile make_frame(Size2 size, int f, const PixelFn& fn) {
  Tile t(size);
  for (int y = 0; y < size.h; ++y) {
    double* row = t.row_ptr(y);
    for (int x = 0; x < size.w; ++x) row[x] = fn(f, x, y);
  }
  return t;
}

Tile convolve(const Tile& img, const Tile& coeff) {
  const int kw = coeff.width();
  const int kh = coeff.height();
  Tile out(img.width() - kw + 1, img.height() - kh + 1);
  // Flipping both axes of a row-major array is a full reversal; the
  // dispatched conv2d then walks the window row-major, the same
  // accumulation order the convolution kernel uses.
  const long n = coeff.words();
  std::vector<double> kflip(static_cast<size_t>(n));
  for (long i = 0; i < n; ++i)
    kflip[static_cast<size_t>(i)] = coeff.data()[n - 1 - i];
  simd::ops().conv2d(img.data(), img.stride(), kflip.data(), kw, kh,
                     out.data(), out.stride(), out.width(), out.height());
  return out;
}

Tile median(const Tile& img, int w, int h) {
  Tile out(img.width() - w + 1, img.height() - h + 1);
  if (w == 3 && h == 3) {
    simd::ops().median3x3_2d(img.data(), img.stride(), out.data(),
                             out.stride(), out.width(), out.height());
    return out;
  }
  std::vector<double> win(static_cast<size_t>(w) * h);
  for (int oy = 0; oy < out.height(); ++oy) {
    double* orow = out.row_ptr(oy);
    for (int ox = 0; ox < out.width(); ++ox) {
      size_t i = 0;
      for (int y = 0; y < h; ++y) {
        const double* row = img.row_ptr(oy + y) + ox;
        for (int x = 0; x < w; ++x) win[i++] = row[x];
      }
      auto mid = win.begin() + static_cast<std::ptrdiff_t>(win.size() / 2);
      std::nth_element(win.begin(), mid, win.end());
      orow[ox] = *mid;
    }
  }
  return out;
}

Tile subtract(const Tile& a, const Tile& b) {
  Tile out(a.size());
  simd::ops().sub(a.data(), b.data(), out.data(), static_cast<int>(a.words()));
  return out;
}

std::vector<long> histogram(const Tile& img, const std::vector<double>& uppers) {
  std::vector<long> counts(uppers.size(), 0);
  simd::ops().histogram2d(img.data(), img.stride(), img.width(), img.height(),
                          uppers.data(), static_cast<int>(uppers.size()),
                          counts.data());
  return counts;
}

namespace {
Tile morph(const Tile& img, int w, int h, bool erode_op) {
  Tile out(img.width() - w + 1, img.height() - h + 1);
  const auto fn = erode_op ? simd::ops().erode2d : simd::ops().dilate2d;
  fn(img.data(), img.stride(), w, h, out.data(), out.stride(), out.width(),
     out.height());
  return out;
}
}  // namespace

Tile erode(const Tile& img, int w, int h) { return morph(img, w, h, true); }
Tile dilate(const Tile& img, int w, int h) { return morph(img, w, h, false); }

Tile crop(const Tile& img, const Border& b) {
  return img.crop(b.left, b.top, {img.width() - b.left - b.right,
                                  img.height() - b.top - b.bottom});
}

Tile pad(const Tile& img, const Border& b) { return img.padded(b, false); }

Tile sobel(const Tile& img) {
  Tile out(img.width() - 2, img.height() - 2);
  simd::ops().sobel2d(img.data(), img.stride(), out.data(), out.stride(),
                      out.width(), out.height());
  return out;
}

Tile bayer_demosaic(const Tile& mosaic) {
  const Size2 it = iteration_count(mosaic.size(), {4, 4}, {2, 2});
  Tile out(it.w * 2, it.h * 2);
  for (int wy = 0; wy < it.h; ++wy)
    for (int wx = 0; wx < it.w; ++wx) {
      const Tile cell = BayerDemosaicKernel::demosaic_window(
          mosaic.crop(wx * 2, wy * 2, {4, 4}));
      for (int j = 0; j < 2; ++j)
        for (int i = 0; i < 2; ++i) out.at(wx * 2 + i, wy * 2 + j) = cell.at(i, j);
    }
  return out;
}

Tile downsample(const Tile& img, int factor) {
  Tile out(img.width() / factor, img.height() / factor);
  for (int oy = 0; oy < out.height(); ++oy) {
    double* orow = out.row_ptr(oy);
    for (int ox = 0; ox < out.width(); ++ox) {
      double sum = 0.0;
      for (int y = 0; y < factor; ++y) {
        const double* row = img.row_ptr(oy * factor + y) + ox * factor;
        for (int x = 0; x < factor; ++x) sum += row[x];
      }
      orow[ox] = sum / (factor * factor);
    }
  }
  return out;
}

Tile upsample(const Tile& img, int factor) {
  Tile out(img.width() * factor, img.height() * factor);
  for (int y = 0; y < out.height(); ++y) {
    const double* irow = img.row_ptr(y / factor);
    double* orow = out.row_ptr(y);
    for (int x = 0; x < out.width(); ++x) orow[x] = irow[x / factor];
  }
  return out;
}

std::vector<long> figure1_histogram(const Tile& frame, const Tile& coeff5x5,
                                    const std::vector<double>& uppers) {
  const Tile med = median(frame, 3, 3);               // inset 1, frame-2
  const Tile conv = convolve(frame, coeff5x5);        // inset 2, frame-4
  const Tile med_trimmed = crop(med, {1, 1, 1, 1});   // align to inset 2
  const Tile diff = subtract(med_trimmed, conv);
  return histogram(diff, uppers);
}

Tile mirror_pad(const Tile& img, const Border& b) { return img.padded(b, true); }

std::vector<long> figure1_histogram_mirror_padded(
    const Tile& frame, const Tile& coeff5x5, const std::vector<double>& uppers) {
  const Tile med = median(frame, 3, 3);
  const Tile conv = convolve(mirror_pad(frame, {1, 1, 1, 1}), coeff5x5);
  return histogram(subtract(med, conv), uppers);
}

std::vector<long> figure1_histogram_padded(const Tile& frame,
                                           const Tile& coeff5x5,
                                           const std::vector<double>& uppers) {
  const Tile med = median(frame, 3, 3);  // inset 1
  const Tile conv =
      convolve(pad(frame, {1, 1, 1, 1}), coeff5x5);  // grown to inset 1
  const Tile diff = subtract(med, conv);
  return histogram(diff, uppers);
}

}  // namespace bpp::ref
