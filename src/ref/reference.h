#pragma once
// Golden scalar references.
//
// Straight-line implementations of every operation the kernel library
// performs, operating on whole frames. Tests and benchmarks compare the
// streaming system's output (through compilation, parallelization, and
// multiplexing) against these — the transformations must be semantics
// preserving.

#include <vector>

#include "core/tile.h"
#include "kernels/input.h"

namespace bpp::ref {

/// Generate frame `f` of an input stream.
[[nodiscard]] Tile make_frame(Size2 size, int f, const PixelFn& fn);

/// Valid-mode convolution with the paper's coefficient flip
/// (out(o) = sum in(o+x,o+y) * coeff(w-1-x, h-1-y)).
[[nodiscard]] Tile convolve(const Tile& img, const Tile& coeff);

/// Valid-mode windowed median.
[[nodiscard]] Tile median(const Tile& img, int w, int h);

/// Per-pixel difference (frames must be the same size).
[[nodiscard]] Tile subtract(const Tile& a, const Tile& b);

/// Histogram with per-bin upper bounds (last bin catches the rest).
[[nodiscard]] std::vector<long> histogram(const Tile& img,
                                          const std::vector<double>& uppers);

/// Crop `b` pixels from each side.
[[nodiscard]] Tile crop(const Tile& img, const Border& b);

/// Zero-pad by `b` pixels on each side.
[[nodiscard]] Tile pad(const Tile& img, const Border& b);

/// Valid-mode windowed min/max (morphological erode/dilate).
[[nodiscard]] Tile erode(const Tile& img, int w, int h);
[[nodiscard]] Tile dilate(const Tile& img, int w, int h);

/// Valid-mode Sobel gradient magnitude (|gx| + |gy|).
[[nodiscard]] Tile sobel(const Tile& img);

/// Bayer RGGB demosaic to luminance via the kernel's shared window rule.
[[nodiscard]] Tile bayer_demosaic(const Tile& mosaic);

/// Block average / nearest-neighbor resampling.
[[nodiscard]] Tile downsample(const Tile& img, int factor);
[[nodiscard]] Tile upsample(const Tile& img, int factor);

/// The complete Fig. 1(b) pipeline under the Trim policy: median3x3 and
/// conv5x5 of the frame, aligned by trimming the median result, per-pixel
/// difference, then histogram. Returns the per-frame bin counts.
[[nodiscard]] std::vector<long> figure1_histogram(const Tile& frame,
                                                  const Tile& coeff5x5,
                                                  const std::vector<double>& uppers);

/// The same pipeline under the Pad policy: the convolution input is
/// zero-padded by one pixel per side, so its output matches the median's.
[[nodiscard]] std::vector<long> figure1_histogram_padded(
    const Tile& frame, const Tile& coeff5x5, const std::vector<double>& uppers);

/// Mirror-pad by `b` pixels on each side (edge-excluding reflection).
[[nodiscard]] Tile mirror_pad(const Tile& img, const Border& b);

/// The pipeline under the MirrorPad policy.
[[nodiscard]] std::vector<long> figure1_histogram_mirror_padded(
    const Tile& frame, const Tile& coeff5x5, const std::vector<double>& uppers);

}  // namespace bpp::ref
