#include "predict/predict.h"

#include <algorithm>
#include <cmath>

#include "core/token.h"

namespace bpp::predict {

namespace {

/// Does the stored analysis still describe this graph? Parallelization
/// adds kernels and channels after the final analyze() pass, so matching
/// counts mean no structural edits happened (ids are append-only).
bool analysis_current(const CompiledApp& app) {
  return app.graph.kernel_count() ==
             static_cast<int>(app.analysis.kernel.size()) &&
         app.graph.channel_count() ==
             static_cast<int>(app.analysis.channel.size());
}

/// Control-token traffic of one framed stream, per frame: end-of-line
/// tokens (one per grid row) plus one end-of-frame. End-of-stream happens
/// once per run, not per frame, so it is not part of steady state.
double tokens_per_frame(const StreamInfo& si) {
  if (si.rate_hz <= 0.0) return 0.0;  // untimed parameter stream
  return static_cast<double>(si.grid.h) + 1.0;
}

/// Exact-tier composition of one kernel's per-frame demand. The stored
/// analysis already counts every method firing (data- and token-triggered)
/// with its reads and cycles; what it does not count is
///  * write traffic per *channel* (it charges per output port once, but a
///    port fanning out writes one copy per channel — simulator.cpp
///    drain_pending), and
///  * token-forward firings: a control token no method handles costs a
///    context switch, a 2-cycle FSM step, one read word per popped input,
///    and one written word per forwarded copy (simulator.cpp core_action).
/// Both are recomposed here from the graph topology and channel streams.
void compose_exact(const CompiledApp& app, KernelId k, KernelPrediction& p) {
  const Graph& g = app.graph;
  const Kernel& kn = g.kernel(k);
  const KernelAnalysis& a = app.analysis.kernel[static_cast<size_t>(k)];

  p.exact = true;
  p.rate_hz = a.rate_hz;
  p.firings = static_cast<double>(a.firings_per_frame);
  p.run_cycles = static_cast<double>(a.cycles_per_frame);
  p.read_words = static_cast<double>(a.read_words_per_frame);

  // Write traffic, per out-channel: data items plus the control tokens the
  // kernel emits or forwards downstream (grid.h end-of-lines + 1
  // end-of-frame per frame, plus declared user tokens).
  p.write_words = 0.0;
  for (ChannelId c : g.out_channels(k)) {
    const StreamInfo& si = app.analysis.channel[static_cast<size_t>(c)];
    if (si.rate_hz <= 0.0) continue;  // untimed: emitted once, not per frame
    p.write_words +=
        static_cast<double>(si.items_per_frame) *
            static_cast<double>(si.item.area()) +
        tokens_per_frame(si);
    for (const auto& tr : si.token_rates) p.write_words += tr.second;
  }

  // Token forwards: for every data-triggered method, tokens arriving on
  // its trigger inputs that no token method of this kernel handles are
  // forwarded — one firing per token instance, popping every input of the
  // method (the subtract-kernel rule: the class must head all of them).
  for (size_t m = 0; m < kn.methods().size(); ++m) {
    const MethodDef& md = kn.methods()[m];
    if (md.token_triggered() || md.inputs.empty()) continue;
    // Live trigger inputs of this method and the framed stream they carry.
    int live_inputs = 0;
    const StreamInfo* si = nullptr;
    for (int port : md.inputs) {
      const auto ch = g.in_channel(k, port);
      if (!ch) continue;
      ++live_inputs;
      const StreamInfo& s = app.analysis.channel[static_cast<size_t>(*ch)];
      if (s.rate_hz > 0.0) si = &s;
    }
    if (live_inputs == 0 || !si) continue;
    const int port0 = md.inputs.front();
    double forwards = 0.0;
    if (kn.token_method_of_input(port0, tok::kEndOfLine) < 0)
      forwards += static_cast<double>(si->grid.h);
    if (kn.token_method_of_input(port0, tok::kEndOfFrame) < 0) forwards += 1.0;
    for (const auto& tr : si->token_rates)
      if (kn.token_method_of_input(port0, tr.first) < 0) forwards += tr.second;
    if (forwards <= 0.0) continue;
    p.forwards += forwards;
    p.firings += forwards;
    p.run_cycles += 2.0 * forwards;  // token forwarding FSM step
    p.read_words += forwards * static_cast<double>(live_inputs);
  }
}

/// Approximate-tier composition from the LoadMap (per-second demand
/// maintained through every compiler pass, including the analytic
/// forwarding estimates for parallelize-inserted split/join kernels).
void compose_from_loads(const CompiledApp& app, KernelId k, double input_rate,
                        KernelPrediction& p) {
  const LoadModel& lm = app.loads.of(k);
  p.exact = false;
  p.rate_hz = input_rate;
  const double frames = input_rate > 0.0 ? input_rate : 1.0;
  p.firings = lm.firings_per_second / frames;
  p.run_cycles = lm.cycles_per_second / frames;
  p.read_words = lm.read_words_per_second / frames;
  p.write_words = lm.write_words_per_second / frames;
}

}  // namespace

Prediction predict(const CompiledApp& app, const PredictOptions& options) {
  const Graph& g = app.graph;
  const MachineSpec& m = app.options.machine;

  Prediction out;
  out.machine = m;

  // Input schedule: the fastest source frame rate paces the pipeline.
  for (KernelId s : g.sources()) {
    const Kernel& kn = g.kernel(s);
    for (int port = 0; port < static_cast<int>(kn.outputs().size()); ++port) {
      const auto spec = kn.source_spec(port);
      if (!spec || spec->rate_hz <= 0.0) continue;
      if (spec->rate_hz > out.input_rate_hz) {
        out.input_rate_hz = spec->rate_hz;
        out.frames = spec->frames;
      }
    }
  }
  if (out.input_rate_hz > 0.0)
    out.input_period_seconds = 1.0 / out.input_rate_hz;

  const bool exact_tier = analysis_current(app);
  out.exact = exact_tier;

  // Per-kernel composition.
  out.kernels.resize(static_cast<size_t>(g.kernel_count()));
  for (KernelId k = 0; k < g.kernel_count(); ++k) {
    KernelPrediction& p = out.kernels[static_cast<size_t>(k)];
    p.kernel = k;
    p.name = g.kernel(k).name();
    p.is_source = g.kernel(k).is_source();
    if (p.is_source) continue;  // releases off-core, zero modeled demand
    const bool resolved =
        exact_tier && app.analysis.kernel[static_cast<size_t>(k)].resolved;
    if (resolved)
      compose_exact(app, k, p);
    else
      compose_from_loads(app, k, out.input_rate_hz, p);
    if (!p.exact) out.exact = false;

    if (!options.costs.empty()) {
      const double cycles = options.costs.cycles_for(p.name);
      if (cycles >= 0.0) {
        // Replace modeled method cycles with the measured per-firing cost;
        // forwarding FSM steps stay modeled.
        p.run_cycles = cycles * (p.firings - p.forwards) + 2.0 * p.forwards;
        p.calibrated = true;
      }
    }

    p.busy_cycles = m.context_switch * p.firings +
                    m.read_cost * p.read_words + p.run_cycles +
                    m.write_cost * p.write_words;
    if (p.rate_hz > 0.0 && m.clock_hz > 0.0)
      p.utilization = p.busy_cycles * p.rate_hz / m.clock_hz;
  }

  // Compose through the placement.
  out.cores.resize(static_cast<size_t>(std::max(0, app.mapping.cores)));
  for (int c = 0; c < app.mapping.cores; ++c)
    out.cores[static_cast<size_t>(c)].core = c;
  for (KernelId k = 0; k < g.kernel_count(); ++k) {
    const int c = app.mapping.core_of[static_cast<size_t>(k)];
    if (c < 0 || c >= app.mapping.cores) continue;
    CorePrediction& core = out.cores[static_cast<size_t>(c)];
    const KernelPrediction& p = out.kernels[static_cast<size_t>(k)];
    if (p.is_source) continue;
    core.source_only = false;
    ++core.kernels;
    core.utilization += p.utilization;
    // Per input frame. When the kernel runs at the input rate (the usual
    // case) this is a plain cycle sum, which keeps it bit-comparable to
    // the simulator's per-core cycle counters; re-rated kernels are
    // frequency-scaled.
    if (p.rate_hz == out.input_rate_hz || out.input_rate_hz <= 0.0)
      core.busy_cycles_per_frame += p.busy_cycles;
    else
      core.busy_cycles_per_frame +=
          p.busy_cycles * p.rate_hz * out.input_period_seconds;
  }

  // Verdict: the bottleneck non-source core sets the steady cadence.
  int busy_cores = 0;
  for (const CorePrediction& core : out.cores) {
    if (core.source_only) continue;
    ++busy_cores;
    out.avg_utilization += core.utilization;
    if (core.utilization > out.bottleneck_utilization) {
      out.bottleneck_utilization = core.utilization;
      out.bottleneck_core = core.core;
    }
  }
  if (busy_cores > 0) out.avg_utilization /= busy_cores;
  out.meets_realtime = out.bottleneck_utilization <= 1.0;
  if (out.input_rate_hz > 0.0)
    out.steady_period_seconds =
        out.meets_realtime
            ? out.input_period_seconds
            : out.input_period_seconds * out.bottleneck_utilization;

  // Critical path: longest source-to-sink chain of per-frame busy time,
  // after the input frame has been delivered. Channels entering feedback
  // kernels are loop back-edges (same rule as Graph::topo_order).
  std::vector<double> dist(static_cast<size_t>(g.kernel_count()), 0.0);
  double longest = 0.0;
  for (KernelId k : g.topo_order()) {
    const KernelPrediction& p = out.kernels[static_cast<size_t>(k)];
    double in_dist = 0.0;
    if (!g.kernel(k).is_feedback())
      for (ChannelId c : g.in_channels(k))
        in_dist = std::max(in_dist, dist[static_cast<size_t>(g.channel(c).src_kernel)]);
    const double node =
        p.is_source || m.clock_hz <= 0.0 ? 0.0 : p.busy_cycles / m.clock_hz;
    dist[static_cast<size_t>(k)] = in_dist + node;
    longest = std::max(longest, dist[static_cast<size_t>(k)]);
  }
  out.critical_path_seconds = out.input_period_seconds + longest;

  return out;
}

}  // namespace bpp::predict
