#include "predict/report.h"

#include <sstream>

#include "compiler/report.h"

namespace bpp::predict {

void write_prediction(const Prediction& p, std::ostream& os) {
  os << "performance prediction ("
     << (p.exact ? "exact composition" : "approximate: LoadMap composition")
     << "):\n";
  os << "  input " << TextTable::num(p.input_rate_hz, 1) << " Hz ("
     << TextTable::num(p.input_period_seconds * 1e6, 1) << " us/frame";
  if (p.frames > 0) os << ", " << p.frames << " frames";
  os << ")\n";

  TextTable t;
  t.column("core", TextTable::Align::Left);
  t.column("kernels");
  t.column("busy cyc/frame");
  t.column("utilization");
  for (const CorePrediction& c : p.cores) {
    std::string label = "core " + std::to_string(c.core);
    if (c.source_only) {
      t.row({std::move(label), "sources", "-", "-"});
      continue;
    }
    t.row({std::move(label), std::to_string(c.kernels),
           TextTable::num(c.busy_cycles_per_frame, 2),
           TextTable::num(100.0 * c.utilization, 1) + "%"});
  }
  t.write(os);

  os << "  bottleneck core " << p.bottleneck_core << " at "
     << TextTable::num(100.0 * p.bottleneck_utilization, 1) << "% (avg "
     << TextTable::num(100.0 * p.avg_utilization, 1) << "%)\n";
  os << "  predicted steady period "
     << TextTable::num(p.steady_period_seconds * 1e6, 2) << " us/frame";
  if (!p.meets_realtime)
    os << " (input period stretched by the bottleneck)";
  os << '\n';
  os << "  critical-path latency estimate "
     << TextTable::num(p.critical_path_seconds * 1e6, 2) << " us\n";
  os << "  verdict: "
     << (p.meets_realtime ? "meets real time at the input rate"
                          : "CANNOT meet real time at the input rate")
     << '\n';
}

std::string prediction_string(const Prediction& p) {
  std::ostringstream os;
  write_prediction(p, os);
  return os.str();
}

}  // namespace bpp::predict
