#pragma once
// Microbench-calibrated kernel cost table.
//
// The modeled per-method cycle counts are the paper's declared resources:
// good for sizing, but uniform across ISAs. The kernel microbench suite
// (`bpp_bench_kernels --benchmark_format=json`, checked in as
// BENCH_kernels.json) measures what each kernel family actually costs per
// firing on the host, per SIMD backend. A CostTable turns those
// measurements into per-firing run-cycle overrides the predictor can
// substitute for the declared counts — "calibrated" prediction.
//
// Matching is by name: a table entry keyed `conv2d_3x3` applies to any
// kernel whose name contains that key (longest matching key wins), which
// is how benchmark families map onto graph kernels named e.g.
// "blur_conv2d_3x3_1".

#include <map>
#include <string>

namespace bpp::predict {

class CostTable {
 public:
  /// Register `cycles` per firing for kernels matching `key`.
  void set(const std::string& key, double cycles);

  /// Per-firing cycles for kernel `name`: the entry with the longest key
  /// contained in `name`, or a negative value when nothing matches.
  [[nodiscard]] double cycles_for(const std::string& name) const;

  [[nodiscard]] bool empty() const { return cycles_.empty(); }
  [[nodiscard]] size_t size() const { return cycles_.size(); }
  [[nodiscard]] const std::map<std::string, double>& entries() const {
    return cycles_;
  }

 private:
  std::map<std::string, double> cycles_;
};

/// Build a cost table from Google-benchmark JSON (the BENCH_kernels.json
/// schema): every benchmark named `family/isa` whose isa segment equals
/// `isa` contributes family -> measured_seconds * clock_hz cycles per
/// firing (real_time is per iteration, honoring time_unit). Unmatched or
/// malformed entries are skipped; malformed JSON throws bpp::Error.
[[nodiscard]] CostTable parse_bench_costs(const std::string& json_text,
                                          const std::string& isa,
                                          double clock_hz);

}  // namespace bpp::predict
