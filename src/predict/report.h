#pragma once
// Human-readable rendering of a Prediction (bpc --predict): fidelity
// banner, per-core utilization table, bottleneck, steady period, critical
// path, and the real-time verdict. Columns come from the shared TextTable
// formatter in compiler/report.h.

#include <ostream>
#include <string>

#include "predict/predict.h"

namespace bpp::predict {

void write_prediction(const Prediction& p, std::ostream& os);
[[nodiscard]] std::string prediction_string(const Prediction& p);

}  // namespace bpp::predict
