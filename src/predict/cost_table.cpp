#include "predict/cost_table.h"

#include "serialize/json.h"

namespace bpp::predict {

void CostTable::set(const std::string& key, double cycles) {
  cycles_[key] = cycles;
}

double CostTable::cycles_for(const std::string& name) const {
  const std::string* best = nullptr;
  double cycles = -1.0;
  for (const auto& [key, c] : cycles_) {
    if (name.find(key) == std::string::npos) continue;
    if (!best || key.size() > best->size()) {
      best = &key;
      cycles = c;
    }
  }
  return best ? cycles : -1.0;
}

namespace {

double unit_seconds(const std::string& unit) {
  if (unit == "ns") return 1e-9;
  if (unit == "us") return 1e-6;
  if (unit == "ms") return 1e-3;
  if (unit == "s") return 1.0;
  return 1e-9;  // google-benchmark's default
}

}  // namespace

CostTable parse_bench_costs(const std::string& json_text,
                            const std::string& isa, double clock_hz) {
  const json::Value doc = json::parse(json_text);
  CostTable table;
  const json::Value* benches = doc.find("benchmarks");
  if (!benches || !benches->is_array()) return table;
  for (const json::Value& b : benches->as_array()) {
    const json::Value* name = b.find("name");
    const json::Value* real = b.find("real_time");
    if (!name || !name->is_string() || !real || !real->is_number()) continue;
    const std::string& n = name->as_string();
    const size_t slash = n.find('/');
    if (slash == std::string::npos || n.substr(slash + 1) != isa) continue;
    const double secs =
        real->as_number() * unit_seconds(b.string_or("time_unit", "ns"));
    if (secs <= 0.0) continue;
    table.set(n.substr(0, slash), secs * clock_hz);
  }
  return table;
}

}  // namespace bpp::predict
