#pragma once
// Compositional performance prediction (paper §IV-D, without running
// anything).
//
// The simulator answers "does this pipeline meet real time?" by executing
// the compiled graph against the machine's timing model. This module
// answers the same question analytically: it walks the compiled graph and
// composes per-kernel cost models — method cycles, per-word channel
// traffic, context switches, and the control-token forwarding the firing
// rules imply — through the placement's core assignment, and emits
// per-core utilization, the steady-state frame period, a critical-path
// latency estimate, and a meets-deadline verdict.
//
// Two fidelity tiers, reported via Prediction::exact:
//
//  * Exact: when the compiled graph is structurally identical to the one
//    the stored data-flow analysis describes (no parallelization edits),
//    every kernel's per-frame demand is composed from the analysis plus an
//    explicit model of token-forward firings (which the analysis omits but
//    the engines execute). On such graphs the predicted steady period and
//    per-core per-frame busy cycles reproduce the simulator bit for bit —
//    tests/test_predict.cpp holds this to ==, not a tolerance.
//
//  * Approximate: parallelized graphs contain split/join kernels whose
//    LoadMap entries are the compiler's analytic forwarding estimates, and
//    whose data-dependent routing the stream calculus does not model. The
//    predictor then composes the LoadMap through the mapping; accuracy
//    against the simulator is documented (and CI-gated) in EXPERIMENTS.md.
//
// Kernels with dynamic (input-dependent) cycle counts are predicted at
// their declared bound in both tiers, so the prediction is an upper bound
// for them.

#include <string>
#include <vector>

#include "compiler/pipeline.h"
#include "predict/cost_table.h"

namespace bpp::predict {

/// Per-kernel steady-state demand, per frame of that kernel's stream.
/// Sources release on their schedule off-core and carry zero demand.
struct KernelPrediction {
  KernelId kernel = -1;
  std::string name;
  bool is_source = false;
  bool exact = false;       ///< composed from resolved analysis (else LoadMap)
  bool calibrated = false;  ///< run cycles replaced from the cost table
  double rate_hz = 0.0;     ///< frames per second seen by this kernel
  double firings = 0.0;     ///< method firings + token forwards, per frame
  double forwards = 0.0;    ///< token-forward firings included in `firings`
  double run_cycles = 0.0;  ///< method cycles + forwarding FSM steps
  double read_words = 0.0;  ///< popped item charges, incl. forwarded tokens
  double write_words = 0.0; ///< per out-channel: data + control tokens
  /// context_switch * firings + read/write word costs + run cycles.
  double busy_cycles = 0.0;
  /// busy_cycles * rate_hz / clock_hz: fraction of one PE this kernel uses.
  double utilization = 0.0;
};

/// Steady-state projection of one core of the placement.
struct CorePrediction {
  int core = -1;
  bool source_only = true;  ///< hosts only sources (excluded from verdicts)
  int kernels = 0;          ///< non-source kernels mapped here
  /// Modeled busy cycles this core spends per input frame.
  double busy_cycles_per_frame = 0.0;
  double utilization = 0.0;  ///< sum of its kernels' utilizations
};

struct Prediction {
  MachineSpec machine;
  bool exact = false;  ///< every non-source kernel composed exactly
  /// Input frame rate (max over sources) and its period.
  double input_rate_hz = 0.0;
  double input_period_seconds = 0.0;
  int frames = 0;  ///< declared finite run length (0 = unbounded)

  std::vector<KernelPrediction> kernels;  ///< indexed by KernelId
  std::vector<CorePrediction> cores;      ///< indexed by core

  int bottleneck_core = -1;
  double bottleneck_utilization = 0.0;  ///< max over non-source cores
  double avg_utilization = 0.0;         ///< mean over non-source cores
  /// Predicted steady-state sink frame period: the input period when the
  /// bottleneck core keeps up, stretched by its utilization when it
  /// cannot (the camera cannot wait, so the pipe paces at the bottleneck).
  double steady_period_seconds = 0.0;
  /// First-output latency estimate: one input frame span plus the modeled
  /// per-frame busy time of every kernel on the longest source-to-sink
  /// path. An estimate, not a bound — §IV-D only ties throughput, not
  /// latency, to the model.
  double critical_path_seconds = 0.0;
  /// True when every (non-source) core's demand fits one PE, i.e. the
  /// predicted steady period equals the input period.
  bool meets_realtime = false;

  /// Deadline verdict: does the predicted completion cadence hold
  /// `period` (seconds per frame)?
  [[nodiscard]] bool meets_deadline(double period) const {
    return steady_period_seconds <= period + 1e-12;
  }
};

struct PredictOptions {
  /// Optional microbench-measured per-firing run-cycle overrides
  /// (see predict/cost_table.h). Empty = declared method cycles.
  CostTable costs;
};

/// Predict the steady-state behavior of a compiled app on its compile-time
/// machine and mapping. Pure function of the CompiledApp: nothing runs.
[[nodiscard]] Prediction predict(const CompiledApp& app,
                                 const PredictOptions& options = {});

}  // namespace bpp::predict
