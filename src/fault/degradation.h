#pragma once
// Graceful degradation: frame shedding driven by deadline-miss feedback.
//
// The paper promises hard real-time from static analysis; when a fault
// plan (or reality) breaks the model, the runtime can degrade instead of
// drifting arbitrarily late. Policy: when a sink completes a frame past
// its anchored deadline (obs::DeadlineMonitor schedule), the controller
// arms a shed request; the *source* claims it at its next frame boundary
// and drops that entire upcoming frame — data, end-of-line and
// end-of-frame tokens — never mid-frame, so every downstream kernel still
// sees scan-line-consistent streams and surviving frames are bit-exact.
// Catch-up is bounded: at most `max_pending_sheds` sheds may be armed at
// once, and after claiming one the controller ignores further misses for
// `cooldown_frames` completions, giving the pipeline time to drain.
//
// The controller is shared by sink workers (miss feedback) and source
// workers (shed claims); calls are frame-granularity, so a plain mutex is
// fine. The DegradationReport rolls its accounting together with the
// critical-path walk ("which kernel's overruns cost you those frames").

#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "obs/critical_path.h"
#include "obs/deadline.h"

namespace bpp::fault {

struct DegradationPolicy {
  /// Master switch: arm shedding (off = observe misses only).
  bool shed = false;
  /// Declared frame rate the deadline schedule derives from.
  double rate_hz = 0.0;
  /// Grace added to every deadline (wall-clock scheduler jitter).
  double slack_seconds = 0.0;
  /// Bound on armed-but-unclaimed shed requests.
  int max_pending_sheds = 1;
  /// Completed frames to ignore misses for after claiming a shed.
  int cooldown_frames = 2;
};

/// Shared shed/recovery state machine. Sinks feed frame completions in,
/// sources claim shed requests out; everything is mutex-guarded (calls
/// happen once per frame, not per pixel).
class DegradationController {
 public:
  explicit DegradationController(DegradationPolicy policy,
                                 obs::MetricsRegistry* metrics = nullptr);

  /// A frame is complete once `sinks` sinks consumed its end-of-frame
  /// token (default 1). Call before the run starts.
  void attach_sinks(int sinks);

  struct Completion {
    bool completed = false;      ///< all sinks have now seen this frame
    bool missed = false;         ///< completed past its deadline
    bool shed_requested = false;  ///< this miss armed a new shed request
  };

  /// Sink side: one sink consumed frame `frame`'s end-of-frame token at
  /// `t_seconds` (wall seconds since run start).
  Completion on_frame_end(std::int64_t frame, double t_seconds);

  /// Source side: claim an armed shed request at a frame boundary.
  /// Returns true at most `max_pending_sheds` times per arming window;
  /// the caller must then drop the whole upcoming frame.
  [[nodiscard]] bool should_shed();

  /// Source side: the claimed shed of `frame` finished (its end-of-frame
  /// token was dropped; the source is back at a frame boundary).
  void on_shed_complete(std::int64_t frame);

  [[nodiscard]] const DegradationPolicy& policy() const { return policy_; }
  [[nodiscard]] long frames_completed() const;
  [[nodiscard]] long misses() const;
  [[nodiscard]] long frames_shed() const;
  [[nodiscard]] long pending_sheds() const;
  [[nodiscard]] std::vector<std::int64_t> shed_frames() const;
  [[nodiscard]] std::vector<obs::FrameVerdict> verdicts() const;

 private:
  mutable std::mutex mu_;
  DegradationPolicy policy_;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::DeadlineMonitor monitor_;
  int sinks_needed_ = 1;
  std::map<std::int64_t, int> eof_counts_;  ///< partial sink completions
  int pending_sheds_ = 0;
  int cooldown_left_ = 0;
  std::vector<std::int64_t> shed_frames_;
};

/// Frames shed vs. late vs. on-time, plus per-kernel overrun attribution
/// from the critical-path walk.
struct DegradationReport {
  long frames_on_time = 0;
  long frames_late = 0;
  long frames_shed = 0;
  double rate_hz = 0.0;
  double slack_seconds = 0.0;
  double max_lateness_seconds = 0.0;
  std::vector<std::int64_t> shed_frames;

  struct Attribution {
    std::string kernel;
    double busy_seconds = 0.0;
    double wait_seconds = 0.0;
    double share = 0.0;  ///< of the summed critical-chain latency
  };
  /// Ranked by descending share; empty when no critical path was run.
  std::vector<Attribution> attribution;
  std::string bottleneck;  ///< empty when unattributed
};

/// Build from raw verdicts + sheds (the simulator path: no controller,
/// sheds empty). `cp`/`trace` optional — they add the attribution table.
[[nodiscard]] DegradationReport build_degradation_report(
    const std::vector<obs::FrameVerdict>& verdicts,
    const std::vector<std::int64_t>& shed_frames, double rate_hz,
    double slack_seconds, const obs::CriticalPathReport* cp = nullptr,
    const obs::Trace* trace = nullptr);

/// Build from a live controller (the runtime path).
[[nodiscard]] DegradationReport build_degradation_report(
    const DegradationController& c, const obs::CriticalPathReport* cp = nullptr,
    const obs::Trace* trace = nullptr);

/// Human-readable summary (bpc --analyze).
void write_degradation(const DegradationReport& r, std::ostream& os);

/// JSON form (deterministic key order).
[[nodiscard]] std::string write_degradation_json(const DegradationReport& r);

}  // namespace bpp::fault
