#include "fault/degradation.h"

#include <algorithm>
#include <ostream>

#include "serialize/json.h"

namespace bpp::fault {

DegradationController::DegradationController(DegradationPolicy policy,
                                             obs::MetricsRegistry* metrics)
    : policy_(policy),
      metrics_(metrics),
      monitor_(obs::DeadlineOptions{policy.rate_hz, policy.slack_seconds},
               metrics) {}

void DegradationController::attach_sinks(int sinks) {
  std::lock_guard<std::mutex> lk(mu_);
  sinks_needed_ = sinks > 0 ? sinks : 1;
}

DegradationController::Completion DegradationController::on_frame_end(
    std::int64_t frame, double t_seconds) {
  std::lock_guard<std::mutex> lk(mu_);
  Completion out;
  if (++eof_counts_[frame] < sinks_needed_) return out;  // partial
  eof_counts_.erase(frame);
  out.completed = true;
  const obs::FrameVerdict& v = monitor_.observe_frame(frame, t_seconds);
  out.missed = v.missed;
  const bool cooling = cooldown_left_ > 0;
  if (cooling) --cooldown_left_;
  if (out.missed && policy_.shed && !cooling &&
      pending_sheds_ < policy_.max_pending_sheds) {
    ++pending_sheds_;
    out.shed_requested = true;
  }
  return out;
}

bool DegradationController::should_shed() {
  std::lock_guard<std::mutex> lk(mu_);
  if (pending_sheds_ == 0) return false;
  --pending_sheds_;
  cooldown_left_ = policy_.cooldown_frames;
  return true;
}

void DegradationController::on_shed_complete(std::int64_t frame) {
  std::lock_guard<std::mutex> lk(mu_);
  shed_frames_.push_back(frame);
  if (metrics_ != nullptr)
    metrics_->counter("degradation.frames_shed").add(1);
}

long DegradationController::frames_completed() const {
  std::lock_guard<std::mutex> lk(mu_);
  return monitor_.frames();
}

long DegradationController::misses() const {
  std::lock_guard<std::mutex> lk(mu_);
  return monitor_.misses();
}

long DegradationController::frames_shed() const {
  std::lock_guard<std::mutex> lk(mu_);
  return static_cast<long>(shed_frames_.size());
}

long DegradationController::pending_sheds() const {
  std::lock_guard<std::mutex> lk(mu_);
  return pending_sheds_;
}

std::vector<std::int64_t> DegradationController::shed_frames() const {
  std::lock_guard<std::mutex> lk(mu_);
  return shed_frames_;
}

std::vector<obs::FrameVerdict> DegradationController::verdicts() const {
  std::lock_guard<std::mutex> lk(mu_);
  return monitor_.verdicts();
}

DegradationReport build_degradation_report(
    const std::vector<obs::FrameVerdict>& verdicts,
    const std::vector<std::int64_t>& shed_frames, double rate_hz,
    double slack_seconds, const obs::CriticalPathReport* cp,
    const obs::Trace* trace) {
  DegradationReport r;
  r.rate_hz = rate_hz;
  r.slack_seconds = slack_seconds;
  r.shed_frames = shed_frames;
  std::sort(r.shed_frames.begin(), r.shed_frames.end());
  r.frames_shed = static_cast<long>(r.shed_frames.size());
  for (const obs::FrameVerdict& v : verdicts) {
    if (v.missed)
      ++r.frames_late;
    else
      ++r.frames_on_time;
    r.max_lateness_seconds = std::max(r.max_lateness_seconds,
                                      v.lateness_seconds);
  }
  if (cp != nullptr && trace != nullptr && cp->latency_seconds > 0.0) {
    for (const obs::PathContribution& c : cp->ranked()) {
      DegradationReport::Attribution a;
      a.kernel = trace->kernel_name(c.kernel);
      a.busy_seconds = c.busy_seconds;
      a.wait_seconds = c.wait_seconds;
      a.share = c.total_seconds() / cp->latency_seconds;
      r.attribution.push_back(std::move(a));
    }
    if (cp->bottleneck >= 0) r.bottleneck = trace->kernel_name(cp->bottleneck);
  }
  return r;
}

DegradationReport build_degradation_report(const DegradationController& c,
                                           const obs::CriticalPathReport* cp,
                                           const obs::Trace* trace) {
  return build_degradation_report(c.verdicts(), c.shed_frames(),
                                  c.policy().rate_hz,
                                  c.policy().slack_seconds, cp, trace);
}

void write_degradation(const DegradationReport& r, std::ostream& os) {
  const long delivered = r.frames_on_time + r.frames_late;
  os << "degradation: " << r.frames_on_time << " on-time, " << r.frames_late
     << " late, " << r.frames_shed << " shed ("
     << (delivered + r.frames_shed) << " frames offered";
  if (r.rate_hz > 0.0) os << " @ " << r.rate_hz << " Hz";
  os << ")\n";
  if (r.max_lateness_seconds > 0.0)
    os << "  max lateness: " << r.max_lateness_seconds * 1e3 << " ms (slack "
       << r.slack_seconds * 1e3 << " ms)\n";
  if (!r.shed_frames.empty()) {
    os << "  shed frames:";
    for (std::int64_t f : r.shed_frames) os << ' ' << f;
    os << '\n';
  }
  if (!r.attribution.empty()) {
    os << "  overrun attribution (critical-chain share):\n";
    for (const auto& a : r.attribution)
      os << "    " << a.kernel << ": " << a.share * 100.0 << "% (busy "
         << a.busy_seconds * 1e3 << " ms, wait " << a.wait_seconds * 1e3
         << " ms)" << (a.kernel == r.bottleneck ? "  <- bottleneck" : "")
         << '\n';
  }
}

std::string write_degradation_json(const DegradationReport& r) {
  json::Object doc;
  doc["frames_on_time"] = static_cast<double>(r.frames_on_time);
  doc["frames_late"] = static_cast<double>(r.frames_late);
  doc["frames_shed"] = static_cast<double>(r.frames_shed);
  doc["rate_hz"] = r.rate_hz;
  doc["slack_seconds"] = r.slack_seconds;
  doc["max_lateness_seconds"] = r.max_lateness_seconds;
  json::Array shed;
  for (std::int64_t f : r.shed_frames) shed.emplace_back(static_cast<double>(f));
  doc["shed_frames"] = std::move(shed);
  json::Array attribution;
  for (const auto& a : r.attribution) {
    json::Object o;
    o["kernel"] = a.kernel;
    o["busy_seconds"] = a.busy_seconds;
    o["wait_seconds"] = a.wait_seconds;
    o["share"] = a.share;
    attribution.emplace_back(std::move(o));
  }
  doc["attribution"] = std::move(attribution);
  doc["bottleneck"] = r.bottleneck;
  return json::write(json::Value(std::move(doc)));
}

}  // namespace bpp::fault
