#pragma once
// FaultPlan: a serializable description of the perturbations to inject into
// one run — per-kernel execution-time jitter and overrun distributions,
// transient kernel stalls, slow-core throttling, and channel-delivery delay.
// A plan is pure data; src/fault/injector.h turns (plan, seed, graph) into
// deterministic per-firing perturbations shared by the timing simulator and
// the host runtime.
//
// On disk a plan is JSON (see examples/faults/):
//   {
//     "seed": 7,
//     "kernels": [
//       {"match": "conv*", "jitter": 0.2,
//        "overrun_prob": 0.05, "overrun_factor": 8.0,
//        "stall_prob": 0.01, "stall_seconds": 2e-4,
//        "throw_prob": 0.0, "wedge_prob": 0.0}
//     ],
//     "cores": [{"core": 1, "throttle": 2.0}],
//     "delivery": [{"match": "*", "prob": 0.02, "delay_seconds": 5e-5}]
//   }
// "match" is a glob over kernel names (* and ? only); the first matching
// rule wins. "seed" is a default and is overridden by --fault-seed.
//
// Two fault kinds exist for exercising the service-layer recovery paths
// (DESIGN.md §8) rather than timing: "throw_prob" makes the firing raise
// fault::InjectedFault (kThrow — the program fails, the worker pool
// survives), and "wedge_prob" makes the kernel permanently stop firing
// (kWedge — the program stops making progress and trips the supervisor's
// stall watchdog). The timing simulator has no failure semantics and
// ignores both kinds; plans carrying them are meaningful to the host
// runtime and the bpd supervisor.

#include <cstdint>
#include <string>
#include <vector>

namespace bpp::fault {

/// Per-kernel timing perturbation rule.
struct KernelRule {
  std::string match = "*";      ///< glob over kernel names; first match wins
  double jitter = 0.0;          ///< uniform relative jitter: scale in [1-j, 1+j]
  double overrun_prob = 0.0;    ///< chance a firing overruns
  double overrun_factor = 1.0;  ///< multiplier applied on overrun
  double stall_prob = 0.0;      ///< chance a firing stalls before running
  double stall_seconds = 0.0;   ///< stall duration (wall/model time)
  double throw_prob = 0.0;      ///< chance a firing raises (kThrow)
  double wedge_prob = 0.0;      ///< chance the kernel wedges for good (kWedge)
};

/// Slow-core throttling: every firing placed on `core` runs `throttle`x
/// slower (models thermal throttling or a busy neighbour).
struct CoreRule {
  int core = 0;
  double throttle = 1.0;
};

/// Channel-delivery delay: outputs of kernels matching `match` become
/// visible to consumers `delay_seconds` late with probability `prob`.
struct DeliveryRule {
  std::string match = "*";
  double prob = 0.0;
  double delay_seconds = 0.0;
};

struct FaultPlan {
  std::uint64_t seed = 0;  ///< default seed; --fault-seed overrides
  std::vector<KernelRule> kernels;
  std::vector<CoreRule> cores;
  std::vector<DeliveryRule> delivery;

  [[nodiscard]] bool empty() const {
    return kernels.empty() && cores.empty() && delivery.empty();
  }
};

/// Glob match with '*' and '?' only (no character classes).
[[nodiscard]] bool glob_match(const std::string& pattern,
                              const std::string& name);

/// Parse a plan from JSON text. Throws bpp::Error on malformed JSON,
/// unknown keys, or out-of-range values (probabilities outside [0,1],
/// negative durations, throttle/overrun factors < 1).
[[nodiscard]] FaultPlan parse_plan(const std::string& json_text);

/// Load a plan from a file (throws bpp::Error if unreadable).
[[nodiscard]] FaultPlan load_plan(const std::string& path);

/// Serialize back to JSON. parse_plan(write_plan(p)) reproduces p.
[[nodiscard]] std::string write_plan(const FaultPlan& plan);

}  // namespace bpp::fault
