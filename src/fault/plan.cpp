#include "fault/plan.h"

#include <fstream>
#include <sstream>

#include "core/error.h"
#include "serialize/json.h"

namespace bpp::fault {

namespace {

void check_prob(double p, const char* what) {
  if (!(p >= 0.0 && p <= 1.0))
    throw Error(std::string("fault plan: ") + what +
                " must be a probability in [0, 1]");
}

void check_nonneg(double v, const char* what) {
  if (!(v >= 0.0))
    throw Error(std::string("fault plan: ") + what + " must be >= 0");
}

void check_factor(double v, const char* what) {
  if (!(v >= 1.0))
    throw Error(std::string("fault plan: ") + what + " must be >= 1");
}

void check_keys(const json::Object& obj,
                std::initializer_list<const char*> allowed,
                const char* where) {
  for (const auto& [key, value] : obj) {
    bool ok = false;
    for (const char* a : allowed) ok = ok || key == a;
    if (!ok)
      throw Error(std::string("fault plan: unknown key \"") + key + "\" in " +
                  where);
  }
}

KernelRule parse_kernel_rule(const json::Value& v) {
  check_keys(v.as_object(),
             {"match", "jitter", "overrun_prob", "overrun_factor",
              "stall_prob", "stall_seconds", "throw_prob", "wedge_prob"},
             "kernels[] entry");
  KernelRule r;
  r.match = v.string_or("match", "*");
  r.jitter = v.number_or("jitter", 0.0);
  r.overrun_prob = v.number_or("overrun_prob", 0.0);
  r.overrun_factor = v.number_or("overrun_factor", 1.0);
  r.stall_prob = v.number_or("stall_prob", 0.0);
  r.stall_seconds = v.number_or("stall_seconds", 0.0);
  r.throw_prob = v.number_or("throw_prob", 0.0);
  r.wedge_prob = v.number_or("wedge_prob", 0.0);
  if (!(r.jitter >= 0.0 && r.jitter < 1.0))
    throw Error("fault plan: jitter must be in [0, 1)");
  check_prob(r.overrun_prob, "overrun_prob");
  check_factor(r.overrun_factor, "overrun_factor");
  check_prob(r.stall_prob, "stall_prob");
  check_nonneg(r.stall_seconds, "stall_seconds");
  check_prob(r.throw_prob, "throw_prob");
  check_prob(r.wedge_prob, "wedge_prob");
  return r;
}

CoreRule parse_core_rule(const json::Value& v) {
  check_keys(v.as_object(), {"core", "throttle"}, "cores[] entry");
  CoreRule r;
  const double core = v.number_or("core", 0.0);
  if (core < 0.0)
    throw Error("fault plan: core index must be >= 0");
  r.core = static_cast<int>(core);
  r.throttle = v.number_or("throttle", 1.0);
  check_factor(r.throttle, "throttle");
  return r;
}

DeliveryRule parse_delivery_rule(const json::Value& v) {
  check_keys(v.as_object(), {"match", "prob", "delay_seconds"},
             "delivery[] entry");
  DeliveryRule r;
  r.match = v.string_or("match", "*");
  r.prob = v.number_or("prob", 0.0);
  r.delay_seconds = v.number_or("delay_seconds", 0.0);
  check_prob(r.prob, "delivery prob");
  check_nonneg(r.delay_seconds, "delay_seconds");
  return r;
}

}  // namespace

bool glob_match(const std::string& pattern, const std::string& name) {
  // Iterative glob with single-star backtracking.
  std::size_t p = 0, n = 0;
  std::size_t star = std::string::npos, mark = 0;
  while (n < name.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '?' || pattern[p] == name[n])) {
      ++p;
      ++n;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      mark = n;
    } else if (star != std::string::npos) {
      p = star + 1;
      n = ++mark;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

FaultPlan parse_plan(const std::string& json_text) {
  const json::Value doc = json::parse(json_text);
  if (!doc.is_object())
    throw Error("fault plan: top-level JSON value must be an object");
  check_keys(doc.as_object(), {"seed", "kernels", "cores", "delivery"},
             "plan");

  FaultPlan plan;
  const double seed = doc.number_or("seed", 0.0);
  if (seed < 0.0) throw Error("fault plan: seed must be >= 0");
  plan.seed = static_cast<std::uint64_t>(seed);

  if (const json::Value* ks = doc.find("kernels"))
    for (const json::Value& v : ks->as_array())
      plan.kernels.push_back(parse_kernel_rule(v));
  if (const json::Value* cs = doc.find("cores"))
    for (const json::Value& v : cs->as_array())
      plan.cores.push_back(parse_core_rule(v));
  if (const json::Value* ds = doc.find("delivery"))
    for (const json::Value& v : ds->as_array())
      plan.delivery.push_back(parse_delivery_rule(v));
  return plan;
}

FaultPlan load_plan(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("fault plan: cannot open " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return parse_plan(text.str());
}

std::string write_plan(const FaultPlan& plan) {
  json::Object doc;
  doc["seed"] = static_cast<double>(plan.seed);
  json::Array kernels;
  for (const KernelRule& r : plan.kernels) {
    json::Object o;
    o["match"] = r.match;
    o["jitter"] = r.jitter;
    o["overrun_prob"] = r.overrun_prob;
    o["overrun_factor"] = r.overrun_factor;
    o["stall_prob"] = r.stall_prob;
    o["stall_seconds"] = r.stall_seconds;
    o["throw_prob"] = r.throw_prob;
    o["wedge_prob"] = r.wedge_prob;
    kernels.emplace_back(std::move(o));
  }
  if (!kernels.empty()) doc["kernels"] = std::move(kernels);
  json::Array cores;
  for (const CoreRule& r : plan.cores) {
    json::Object o;
    o["core"] = r.core;
    o["throttle"] = r.throttle;
    cores.emplace_back(std::move(o));
  }
  if (!cores.empty()) doc["cores"] = std::move(cores);
  json::Array delivery;
  for (const DeliveryRule& r : plan.delivery) {
    json::Object o;
    o["match"] = r.match;
    o["prob"] = r.prob;
    o["delay_seconds"] = r.delay_seconds;
    delivery.emplace_back(std::move(o));
  }
  if (!delivery.empty()) doc["delivery"] = std::move(delivery);
  return json::write(json::Value(std::move(doc)));
}

}  // namespace bpp::fault
