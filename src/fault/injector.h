#pragma once
// Injector: turns a FaultPlan into deterministic per-firing perturbations.
//
// Determinism is the whole point: both engines must be replayable under a
// fixed (plan, seed), and the host runtime must be replayable regardless of
// thread interleaving. The injector therefore draws nothing from shared
// RNG state — every decision is a pure counter-based hash of
// (seed, kernel id, firing index, salt). Each kernel is owned by exactly
// one worker in the runtime, so a per-kernel firing counter is free of
// races, and the simulator uses the same counters; faulted firing N of
// kernel K sees the same Perturbation in both engines.
//
// Timing faults perturb *timing only* (scale, stall, delivery delay);
// values are never touched, so bit-exactness against the scalar reference
// must hold under any plan (asserted by the fuzz harness and
// test_random_pipelines). The recovery fault kinds (throw/wedge) are the
// exception: they abort or halt the firing instead of retiming it, exist to
// exercise the supervision layer (DESIGN.md §8), and are ignored by the
// timing simulator.

#include <cstdint>
#include <vector>

#include "core/error.h"
#include "fault/plan.h"

namespace bpp {
class Graph;
}

namespace bpp::fault {

/// Raised by the host runtime when a firing draws a throw fault. Derives
/// from Error so existing catch sites treat it like any kernel failure.
class InjectedFault : public Error {
 public:
  using Error::Error;
};

/// The perturbation applied to a single firing.
struct Perturbation {
  double time_scale = 1.0;      ///< multiply execution time/cycles by this
  double stall_seconds = 0.0;   ///< stall before the firing runs
  double delivery_delay_seconds = 0.0;  ///< outputs become visible this late
  bool throw_fault = false;  ///< the firing raises InjectedFault (kThrow)
  bool wedge = false;        ///< the kernel stops firing for good (kWedge)

  [[nodiscard]] bool identity() const {
    return time_scale == 1.0 && stall_seconds == 0.0 &&
           delivery_delay_seconds == 0.0 && !throw_fault && !wedge;
  }
};

/// Deterministic, thread-safe (const after bind) fault source.
class Injector {
 public:
  Injector() = default;
  Injector(FaultPlan plan, std::uint64_t seed)
      : plan_(std::move(plan)), seed_(seed) {}

  /// Resolve glob rules against the graph's kernel names and the placement
  /// (core_of[kernel] = core index, or empty when unplaced: core rules are
  /// then ignored). Must be called before perturb(); may be re-bound.
  void bind(const Graph& graph, const std::vector<int>& core_of);

  [[nodiscard]] bool bound() const { return bound_; }
  [[nodiscard]] bool active() const { return bound_ && !plan_.empty(); }
  [[nodiscard]] std::uint64_t seed() const { return seed_; }
  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

  /// Perturbation for firing `firing_index` (0-based, per kernel) of
  /// kernel `kernel_id`. Pure function of (seed, kernel, firing).
  [[nodiscard]] Perturbation perturb(int kernel_id,
                                     std::int64_t firing_index) const;

 private:
  struct Resolved {
    const KernelRule* kernel = nullptr;      ///< first matching rule or null
    const DeliveryRule* delivery = nullptr;  ///< first matching rule or null
    double core_throttle = 1.0;              ///< from CoreRule on its core
  };

  /// Uniform double in [0, 1) from the firing-scoped hash stream.
  [[nodiscard]] double u01(int kernel_id, std::int64_t firing_index,
                           std::uint64_t salt) const;

  FaultPlan plan_;
  std::uint64_t seed_ = 0;
  std::vector<Resolved> resolved_;
  bool bound_ = false;
};

/// Busy-wait for `seconds` (host runtime's way of physically realizing a
/// stall; the simulator adds model time instead). Spins on steady_clock —
/// sleeping would park the worker and under-represent the induced load.
void spin_for(double seconds);

}  // namespace bpp::fault
