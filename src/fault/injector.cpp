#include "fault/injector.h"

#include <chrono>

#include "core/graph.h"

namespace bpp::fault {

namespace {

/// splitmix64 finalizer: the standard 64-bit avalanche mix.
[[nodiscard]] std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

void Injector::bind(const Graph& graph, const std::vector<int>& core_of) {
  resolved_.assign(static_cast<std::size_t>(graph.kernel_count()), Resolved{});
  for (int k = 0; k < graph.kernel_count(); ++k) {
    Resolved& r = resolved_[static_cast<std::size_t>(k)];
    const std::string& name = graph.kernel(k).name();
    for (const KernelRule& rule : plan_.kernels) {
      if (glob_match(rule.match, name)) {
        r.kernel = &rule;
        break;
      }
    }
    for (const DeliveryRule& rule : plan_.delivery) {
      if (glob_match(rule.match, name)) {
        r.delivery = &rule;
        break;
      }
    }
    if (k < static_cast<int>(core_of.size())) {
      const int core = core_of[static_cast<std::size_t>(k)];
      for (const CoreRule& rule : plan_.cores)
        if (rule.core == core) r.core_throttle = rule.throttle;
    }
  }
  bound_ = true;
}

double Injector::u01(int kernel_id, std::int64_t firing_index,
                     std::uint64_t salt) const {
  std::uint64_t h = seed_;
  h = mix64(h ^ (static_cast<std::uint64_t>(kernel_id) + 1));
  h = mix64(h ^ static_cast<std::uint64_t>(firing_index));
  h = mix64(h ^ salt);
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

Perturbation Injector::perturb(int kernel_id,
                               std::int64_t firing_index) const {
  Perturbation p;
  if (!bound_ || kernel_id < 0 ||
      kernel_id >= static_cast<int>(resolved_.size()))
    return p;
  const Resolved& r = resolved_[static_cast<std::size_t>(kernel_id)];
  p.time_scale = r.core_throttle;
  if (r.kernel != nullptr) {
    const KernelRule& rule = *r.kernel;
    if (rule.jitter > 0.0)
      p.time_scale *=
          1.0 + rule.jitter * (2.0 * u01(kernel_id, firing_index, 1) - 1.0);
    if (rule.overrun_prob > 0.0 &&
        u01(kernel_id, firing_index, 2) < rule.overrun_prob)
      p.time_scale *= rule.overrun_factor;
    if (rule.stall_prob > 0.0 &&
        u01(kernel_id, firing_index, 3) < rule.stall_prob)
      p.stall_seconds = rule.stall_seconds;
    if (rule.throw_prob > 0.0 &&
        u01(kernel_id, firing_index, 5) < rule.throw_prob)
      p.throw_fault = true;
    if (rule.wedge_prob > 0.0 &&
        u01(kernel_id, firing_index, 6) < rule.wedge_prob)
      p.wedge = true;
  }
  if (r.delivery != nullptr && r.delivery->prob > 0.0 &&
      u01(kernel_id, firing_index, 4) < r.delivery->prob)
    p.delivery_delay_seconds = r.delivery->delay_seconds;
  return p;
}

void spin_for(double seconds) {
  if (seconds <= 0.0) return;
  const auto until =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(seconds));
  while (std::chrono::steady_clock::now() < until) {
    // busy-wait: the point is to occupy the core like a real overrun
  }
}

}  // namespace bpp::fault
