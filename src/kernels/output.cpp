#include "kernels/output.h"

#include <algorithm>

namespace bpp {

OutputKernel::OutputKernel(std::string name, Size2 item)
    : Kernel(std::move(name)), item_(item) {}

void OutputKernel::configure() {
  create_input("in", item_, {item_.w, item_.h});
  auto& collect = register_method("collect", Resources{5 + item_.area(), 64},
                                  &OutputKernel::collect);
  method_input(collect, "in");
  auto& eol = register_method("eol", Resources{2, 0}, &OutputKernel::on_eol);
  method_input(eol, "in", tok::kEndOfLine);
  auto& eof = register_method("eof", Resources{4, 0}, &OutputKernel::on_eof);
  method_input(eof, "in", tok::kEndOfFrame);
  auto& eos = register_method("eos", Resources{2, 0}, &OutputKernel::on_eos);
  method_input(eos, "in", tok::kEndOfStream);
}

void OutputKernel::init() {
  tiles_.clear();
  frames_.clear();
  rows_.clear();
  band_.clear();
  eol_count_ = eof_count_ = eos_count_ = 0;
  finished_ = false;
}

void OutputKernel::collect() {
  const Tile& t = read_input("in");
  tiles_.push_back(t);
  // Build up the current band of item_.h pixel rows for 2-D reassembly
  // (items of height > 1 tile the frame band by band).
  if (band_.size() < static_cast<size_t>(t.height()))
    band_.resize(static_cast<size_t>(t.height()));
  for (int y = 0; y < t.height(); ++y) {
    const double* row = t.row_ptr(y);
    band_[static_cast<size_t>(y)].insert(band_[static_cast<size_t>(y)].end(),
                                         row, row + t.width());
  }
}

void OutputKernel::on_eol() {
  ++eol_count_;
  for (auto& row : band_) rows_.push_back(std::move(row));
  band_.clear();
}

void OutputKernel::on_eof() {
  ++eof_count_;
  for (auto& row : band_)  // stream without EOL tokens: flush the band
    if (!row.empty()) rows_.push_back(std::move(row));
  band_.clear();
  if (rows_.empty()) return;
  const size_t w = rows_.front().size();
  bool rect = true;
  for (const auto& r : rows_) rect = rect && r.size() == w;
  if (rect && w > 0) {
    Tile frame(static_cast<int>(w), static_cast<int>(rows_.size()));
    for (size_t y = 0; y < rows_.size(); ++y)
      std::copy(rows_[y].begin(), rows_[y].end(),
                frame.row_ptr(static_cast<int>(y)));
    frames_.push_back(std::move(frame));
  }
  rows_.clear();
}

void OutputKernel::on_eos() {
  ++eos_count_;
  finished_ = true;
}

long OutputKernel::tokens_seen(TokenClass cls) const {
  switch (cls) {
    case tok::kEndOfLine:
      return eol_count_;
    case tok::kEndOfFrame:
      return eof_count_;
    case tok::kEndOfStream:
      return eos_count_;
    default:
      return 0;
  }
}

}  // namespace bpp
