#pragma once
// Resampling kernels. Downsampling uses a fractional input->output offset
// (paper §II-A footnote 2): the output sample of a 2x2 average sits half a
// pixel from the window origin.

#include <string>

#include "core/kernel.h"

namespace bpp {

/// factor x factor block average; output is 1/factor the input extent.
class DownsampleKernel final : public Kernel {
 public:
  DownsampleKernel(std::string name, int factor);

  void configure() override;
  [[nodiscard]] std::unique_ptr<Kernel> clone() const override {
    return std::make_unique<DownsampleKernel>(*this);
  }

  [[nodiscard]] int factor() const { return factor_; }

 private:
  void run();

  int factor_;
};

/// Nearest-neighbor upsampling: each input pixel becomes factor x factor.
class UpsampleKernel final : public Kernel {
 public:
  UpsampleKernel(std::string name, int factor);

  void configure() override;
  [[nodiscard]] std::unique_ptr<Kernel> clone() const override {
    return std::make_unique<UpsampleKernel>(*this);
  }

  [[nodiscard]] int factor() const { return factor_; }

 private:
  void run();

  int factor_;
};

}  // namespace bpp
