// Single-source vector implementations of the Ops table, instantiated
// once per ISA translation unit. The including TU must define, before
// including this file, a struct named `VT` with:
//
//   static constexpr int W;            // lanes (doubles per register)
//   using reg = ...;                   // vector register type
//   static reg  loadu(const double*);  // unaligned load of W doubles
//   static void storeu(double*, reg);
//   static reg  bcast(double);
//   static reg  zero();
//   static reg  add(reg, reg), sub(reg, reg), mul(reg, reg);
//   static reg  min(reg, reg), max(reg, reg);
//   static reg  fmadd(reg a, reg b, reg acc);   // a*b + acc (fused ok)
//   static reg  abs(reg);
//   static reg  cmp_gt(reg a, reg b);  // lanewise a > b ? ~0 : 0
//   static reg  cmp_lt(reg a, reg b);  // lanewise a < b ? ~0 : 0
//   static reg  select(reg mask, reg x, reg y);  // mask ? x : y
//   static int  movemask(reg);         // lane sign bits, bit i = lane i
//   static double lane(reg, int i);    // extract lane i
//
// and BPP_SIMD_ISA_ENUM / BPP_SIMD_ISA_NAME / BPP_SIMD_TABLE_FN macros.
//
// Reduction-order policy: dot/conv2d use FMA and multiple accumulators
// (ULP-bounded vs scalar); everything else reproduces the scalar table's
// operations lane-parallel and is bit-exact. Input spans may be over-read
// by one vector width per the Tile padding contract, except where noted;
// outputs are never over-written (scalar tails).

#include <bit>

namespace bpp::simd {
namespace {

using R = typename VT::reg;
constexpr int W = VT::W;

// Sequential in-order sum of the lanes (deterministic reduction order).
inline double hsum_inorder(R v) {
  double s = VT::lane(v, 0);
  for (int i = 1; i < W; ++i) s += VT::lane(v, i);
  return s;
}

double dot_vec(const double* a, const double* b, int n) {
  R acc0 = VT::zero();
  R acc1 = VT::zero();
  int i = 0;
  for (; i + 2 * W <= n; i += 2 * W) {
    acc0 = VT::fmadd(VT::loadu(a + i), VT::loadu(b + i), acc0);
    acc1 = VT::fmadd(VT::loadu(a + i + W), VT::loadu(b + i + W), acc1);
  }
  for (; i + W <= n; i += W)
    acc0 = VT::fmadd(VT::loadu(a + i), VT::loadu(b + i), acc0);
  double s = hsum_inorder(VT::add(acc0, acc1));
  for (; i < n; ++i) s += a[i] * b[i];
  return s;
}

double conv_tail_scalar(const double* in, int in_stride, const double* kflip,
                        int kw, int kh) {
  double acc = 0.0;
  for (int ky = 0; ky < kh; ++ky) {
    const double* row = in + static_cast<long>(ky) * in_stride;
    const double* krow = kflip + static_cast<long>(ky) * kw;
    for (int kx = 0; kx < kw; ++kx) acc += row[kx] * krow[kx];
  }
  return acc;
}

void conv2d_vec(const double* in, int in_stride, const double* kflip, int kw,
                int kh, double* out, int out_stride, int out_w, int out_h) {
  for (int oy = 0; oy < out_h; ++oy) {
    double* orow = out + static_cast<long>(oy) * out_stride;
    int ox = 0;
    // W outputs at a time: broadcast each kernel coefficient against W
    // shifted input pixels. Loads may overhang the row by up to W-1
    // doubles (covered by the Tile padding contract).
    for (; ox + W <= out_w; ox += W) {
      R acc = VT::zero();
      for (int ky = 0; ky < kh; ++ky) {
        const double* row = in + static_cast<long>(oy + ky) * in_stride + ox;
        const double* krow = kflip + static_cast<long>(ky) * kw;
        for (int kx = 0; kx < kw; ++kx)
          acc = VT::fmadd(VT::loadu(row + kx), VT::bcast(krow[kx]), acc);
      }
      VT::storeu(orow + ox, acc);
    }
    for (; ox < out_w; ++ox)
      orow[ox] = conv_tail_scalar(in + static_cast<long>(oy) * in_stride + ox,
                                  in_stride, kflip, kw, kh);
  }
}

double reduce_min_vec(const double* p, int n) {
  if (n < 2 * W) {
    double v = p[0];
    for (int i = 1; i < n; ++i) v = std::min(v, p[i]);
    return v;
  }
  R acc = VT::loadu(p);
  int i = W;
  for (; i + W <= n; i += W) acc = VT::min(acc, VT::loadu(p + i));
  double v = VT::lane(acc, 0);
  for (int l = 1; l < W; ++l) v = std::min(v, VT::lane(acc, l));
  for (; i < n; ++i) v = std::min(v, p[i]);
  return v;
}

double reduce_max_vec(const double* p, int n) {
  if (n < 2 * W) {
    double v = p[0];
    for (int i = 1; i < n; ++i) v = std::max(v, p[i]);
    return v;
  }
  R acc = VT::loadu(p);
  int i = W;
  for (; i + W <= n; i += W) acc = VT::max(acc, VT::loadu(p + i));
  double v = VT::lane(acc, 0);
  for (int l = 1; l < W; ++l) v = std::max(v, VT::lane(acc, l));
  for (; i < n; ++i) v = std::max(v, p[i]);
  return v;
}

template <bool kErode>
void morph2d_vec(const double* in, int in_stride, int kw, int kh, double* out,
                 int out_stride, int out_w, int out_h) {
  for (int oy = 0; oy < out_h; ++oy) {
    double* orow = out + static_cast<long>(oy) * out_stride;
    int ox = 0;
    for (; ox + W <= out_w; ox += W) {
      R acc = VT::loadu(in + static_cast<long>(oy) * in_stride + ox);
      for (int ky = 0; ky < kh; ++ky) {
        const double* row = in + static_cast<long>(oy + ky) * in_stride + ox;
        for (int kx = 0; kx < kw; ++kx) {
          const R v = VT::loadu(row + kx);
          acc = kErode ? VT::min(acc, v) : VT::max(acc, v);
        }
      }
      VT::storeu(orow + ox, acc);
    }
    for (; ox < out_w; ++ox) {
      double v = in[static_cast<long>(oy) * in_stride + ox];
      for (int ky = 0; ky < kh; ++ky) {
        const double* row = in + static_cast<long>(oy + ky) * in_stride + ox;
        for (int kx = 0; kx < kw; ++kx)
          v = kErode ? std::min(v, row[kx]) : std::max(v, row[kx]);
      }
      orow[ox] = v;
    }
  }
}

void erode2d_vec(const double* in, int in_stride, int kw, int kh, double* out,
                 int out_stride, int out_w, int out_h) {
  morph2d_vec<true>(in, in_stride, kw, kh, out, out_stride, out_w, out_h);
}

void dilate2d_vec(const double* in, int in_stride, int kw, int kh, double* out,
                  int out_stride, int out_w, int out_h) {
  morph2d_vec<false>(in, in_stride, kw, kh, out, out_stride, out_w, out_h);
}

inline void vsort2(R& a, R& b) {
  const R lo = VT::min(a, b);
  b = VT::max(a, b);
  a = lo;
}

// The scalar table's 19-exchange network, lane-parallel.
template <class Reg>
inline Reg median9_net(Reg v0, Reg v1, Reg v2, Reg v3, Reg v4, Reg v5, Reg v6,
                       Reg v7, Reg v8) {
  vsort2(v1, v2);
  vsort2(v4, v5);
  vsort2(v7, v8);
  vsort2(v0, v1);
  vsort2(v3, v4);
  vsort2(v6, v7);
  vsort2(v1, v2);
  vsort2(v4, v5);
  vsort2(v7, v8);
  vsort2(v0, v3);
  vsort2(v5, v8);
  vsort2(v4, v7);
  vsort2(v3, v6);
  vsort2(v1, v4);
  vsort2(v2, v5);
  vsort2(v4, v7);
  vsort2(v4, v2);
  vsort2(v6, v4);
  vsort2(v4, v2);
  return v4;
}

inline void ssort2(double& a, double& b) {
  const double lo = std::min(a, b);
  b = std::max(a, b);
  a = lo;
}

double median9_one(const double* p) {
  double v0 = p[0], v1 = p[1], v2 = p[2], v3 = p[3], v4 = p[4], v5 = p[5],
         v6 = p[6], v7 = p[7], v8 = p[8];
  ssort2(v1, v2);
  ssort2(v4, v5);
  ssort2(v7, v8);
  ssort2(v0, v1);
  ssort2(v3, v4);
  ssort2(v6, v7);
  ssort2(v1, v2);
  ssort2(v4, v5);
  ssort2(v7, v8);
  ssort2(v0, v3);
  ssort2(v5, v8);
  ssort2(v4, v7);
  ssort2(v3, v6);
  ssort2(v1, v4);
  ssort2(v2, v5);
  ssort2(v4, v7);
  ssort2(v4, v2);
  ssort2(v6, v4);
  ssort2(v4, v2);
  return v4;
}

void median3x3_2d_vec(const double* in, int in_stride, double* out,
                      int out_stride, int out_w, int out_h) {
  for (int oy = 0; oy < out_h; ++oy) {
    const double* r0 = in + static_cast<long>(oy) * in_stride;
    const double* r1 = r0 + in_stride;
    const double* r2 = r1 + in_stride;
    double* orow = out + static_cast<long>(oy) * out_stride;
    int ox = 0;
    for (; ox + W <= out_w; ox += W) {
      const R m = median9_net(VT::loadu(r0 + ox), VT::loadu(r0 + ox + 1),
                              VT::loadu(r0 + ox + 2), VT::loadu(r1 + ox),
                              VT::loadu(r1 + ox + 1), VT::loadu(r1 + ox + 2),
                              VT::loadu(r2 + ox), VT::loadu(r2 + ox + 1),
                              VT::loadu(r2 + ox + 2));
      VT::storeu(orow + ox, m);
    }
    for (; ox < out_w; ++ox) {
      const double win[9] = {r0[ox], r0[ox + 1], r0[ox + 2],
                             r1[ox], r1[ox + 1], r1[ox + 2],
                             r2[ox], r2[ox + 1], r2[ox + 2]};
      orow[ox] = median9_one(win);
    }
  }
}

void sobel2d_vec(const double* in, int in_stride, double* out, int out_stride,
                 int out_w, int out_h) {
  const R two = VT::bcast(2.0);
  for (int oy = 0; oy < out_h; ++oy) {
    const double* r0 = in + static_cast<long>(oy) * in_stride;
    const double* r1 = r0 + in_stride;
    const double* r2 = r1 + in_stride;
    double* orow = out + static_cast<long>(oy) * out_stride;
    int ox = 0;
    for (; ox + W <= out_w; ox += W) {
      // Column sums T(c) = (r0[c] + 2*r1[c]) + r2[c]: explicit mul+add,
      // same association as the scalar table (bit-exact, no FMA).
      const R t0 = VT::add(VT::add(VT::loadu(r0 + ox),
                                   VT::mul(two, VT::loadu(r1 + ox))),
                           VT::loadu(r2 + ox));
      const R t2 = VT::add(VT::add(VT::loadu(r0 + ox + 2),
                                   VT::mul(two, VT::loadu(r1 + ox + 2))),
                           VT::loadu(r2 + ox + 2));
      const R gx = VT::sub(t2, t0);
      // Row sums U(r) = (r[ox] + 2*r[ox+1]) + r[ox+2].
      const R u0 = VT::add(VT::add(VT::loadu(r0 + ox),
                                   VT::mul(two, VT::loadu(r0 + ox + 1))),
                           VT::loadu(r0 + ox + 2));
      const R u2 = VT::add(VT::add(VT::loadu(r2 + ox),
                                   VT::mul(two, VT::loadu(r2 + ox + 1))),
                           VT::loadu(r2 + ox + 2));
      const R gy = VT::sub(u2, u0);
      VT::storeu(orow + ox, VT::add(VT::abs(gx), VT::abs(gy)));
    }
    for (; ox < out_w; ++ox) {
      const double gx = (r0[ox + 2] + 2 * r1[ox + 2] + r2[ox + 2]) -
                        (r0[ox] + 2 * r1[ox] + r2[ox]);
      const double gy = (r2[ox] + 2 * r2[ox + 1] + r2[ox + 2]) -
                        (r0[ox] + 2 * r0[ox + 1] + r0[ox + 2]);
      orow[ox] = std::abs(gx) + std::abs(gy);
    }
  }
}

void add_vec(const double* a, const double* b, double* out, int n) {
  int i = 0;
  for (; i + W <= n; i += W)
    VT::storeu(out + i, VT::add(VT::loadu(a + i), VT::loadu(b + i)));
  for (; i < n; ++i) out[i] = a[i] + b[i];
}

void sub_vec(const double* a, const double* b, double* out, int n) {
  int i = 0;
  for (; i + W <= n; i += W)
    VT::storeu(out + i, VT::sub(VT::loadu(a + i), VT::loadu(b + i)));
  for (; i < n; ++i) out[i] = a[i] - b[i];
}

void mul_vec(const double* a, const double* b, double* out, int n) {
  int i = 0;
  for (; i + W <= n; i += W)
    VT::storeu(out + i, VT::mul(VT::loadu(a + i), VT::loadu(b + i)));
  for (; i < n; ++i) out[i] = a[i] * b[i];
}

void absdiff_vec(const double* a, const double* b, double* out, int n) {
  int i = 0;
  for (; i + W <= n; i += W)
    VT::storeu(out + i,
               VT::abs(VT::sub(VT::loadu(a + i), VT::loadu(b + i))));
  for (; i < n; ++i) out[i] = std::abs(a[i] - b[i]);
}

void abs1_vec(const double* a, double* out, int n) {
  int i = 0;
  for (; i + W <= n; i += W) VT::storeu(out + i, VT::abs(VT::loadu(a + i)));
  for (; i < n; ++i) out[i] = std::abs(a[i]);
}

void scale_vec(const double* a, double* out, int n, double s, double b) {
  const R vs = VT::bcast(s);
  const R vb = VT::bcast(b);
  int i = 0;
  // mul then add (not fmadd): matches the scalar s*v + b under
  // -ffp-contract=off bitwise.
  for (; i + W <= n; i += W)
    VT::storeu(out + i, VT::add(VT::mul(vs, VT::loadu(a + i)), vb));
  for (; i < n; ++i) out[i] = s * a[i] + b;
}

void threshold_vec(const double* a, double* out, int n, double level) {
  const R vl = VT::bcast(level);
  const R one = VT::bcast(1.0);
  const R zero = VT::zero();
  int i = 0;
  for (; i + W <= n; i += W)
    VT::storeu(out + i,
               VT::select(VT::cmp_gt(VT::loadu(a + i), vl), one, zero));
  for (; i < n; ++i) out[i] = a[i] > level ? 1.0 : 0.0;
}

void clamp_vec(const double* a, double* out, int n, double lo, double hi) {
  const R vlo = VT::bcast(lo);
  const R vhi = VT::bcast(hi);
  int i = 0;
  // Branch-for-branch std::clamp (v < lo ? lo : v > hi ? hi : v), so even
  // signed-zero cases match the scalar table bitwise.
  for (; i + W <= n; i += W) {
    const R v = VT::loadu(a + i);
    const R r = VT::select(VT::cmp_lt(v, vlo), vlo,
                           VT::select(VT::cmp_gt(v, vhi), vhi, v));
    VT::storeu(out + i, r);
  }
  for (; i < n; ++i) out[i] = std::clamp(a[i], lo, hi);
}

int find_bin_vec(double v, const double* uppers, int bins) {
  const R vv = VT::bcast(v);
  const int search = bins - 1;  // last bin catches the rest
  int i = 0;
  // First-match semantics even for unsorted bounds: scan W bounds per
  // step, take the lowest set lane. Never reads past uppers[bins-1].
  for (; i + W <= search; i += W) {
    const int m = VT::movemask(VT::cmp_lt(vv, VT::loadu(uppers + i)));
    if (m) {
      int lane = 0;
      while (!(m >> lane & 1)) ++lane;
      return i + lane;
    }
  }
  for (; i < search; ++i)
    if (v < uppers[i]) return i;
  return bins - 1;
}

int find_bin_sorted_vec(double v, const double* uppers, int bins) {
  const R vv = VT::bcast(v);
  const int search = bins - 1;
  constexpr unsigned kLanes = (1u << W) - 1u;
  int idx = 0;
  int i = 0;
  // Branchless count of bounds not above v — valid only for sorted
  // bounds, where it equals the first-match index. Complementing the
  // v < bound mask (instead of comparing bound <= v) sends NaN values
  // to bins-1 like the early-exit scan.
  for (; i + W <= search; i += W)
    idx += std::popcount(~static_cast<unsigned>(VT::movemask(
                             VT::cmp_lt(vv, VT::loadu(uppers + i)))) &
                         kLanes);
  for (; i < search; ++i) idx += v < uppers[i] ? 0 : 1;
  return idx;
}

void histogram2d_vec(const double* in, int in_stride, int w, int h,
                     const double* uppers, int bins, long* counts) {
  for (int y = 0; y < h; ++y) {
    const double* row = in + static_cast<long>(y) * in_stride;
    for (int x = 0; x < w; ++x) ++counts[find_bin_vec(row[x], uppers, bins)];
  }
}

}  // namespace

const Ops* BPP_SIMD_TABLE_FN() {
  static const Ops table = {
      BPP_SIMD_ISA_ENUM,
      BPP_SIMD_ISA_NAME,
      dot_vec,
      conv2d_vec,
      reduce_min_vec,
      reduce_max_vec,
      erode2d_vec,
      dilate2d_vec,
      median9_one,
      median3x3_2d_vec,
      sobel2d_vec,
      add_vec,
      sub_vec,
      mul_vec,
      absdiff_vec,
      abs1_vec,
      scale_vec,
      threshold_vec,
      clamp_vec,
      find_bin_vec,
      // The early-exit scan is also correct for sorted bounds, so each
      // ISA installs its measured winner here: the branchless popcount
      // pass pays off at 4 lanes (2.5x on AVX2) but loses to the scan at
      // 2 (SSE2/NEON W=2 popcounts too few bounds per step to beat
      // stopping halfway) — see EXPERIMENTS.md.
      W >= 4 ? find_bin_sorted_vec : find_bin_vec,
      histogram2d_vec,
  };
  return &table;
}

}  // namespace bpp::simd
