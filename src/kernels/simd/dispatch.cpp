// Runtime CPU dispatch: pick the widest supported table at startup,
// honor the BPP_ISA environment variable, and let tools (bpc --isa,
// bpp_fuzz --isa) re-select for A/B testing.

#include "kernels/simd/simd.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace bpp::simd {

const Ops* ops_table_scalar();
#if defined(__x86_64__) || defined(_M_X64)
const Ops* ops_table_sse2();
const Ops* ops_table_avx2();
#endif
#if defined(__aarch64__)
const Ops* ops_table_neon();
#endif

bool supported(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return true;
#if defined(__x86_64__) || defined(_M_X64)
    case Isa::kSse2:
      return true;  // x86-64 baseline
    case Isa::kAvx2:
#if defined(__GNUC__) || defined(__clang__)
      return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
      return false;
#endif
    case Isa::kNeon:
      return false;
#elif defined(__aarch64__)
    case Isa::kNeon:
      return true;  // aarch64 baseline
    case Isa::kSse2:
    case Isa::kAvx2:
      return false;
#else
    default:
      return false;
#endif
  }
  return false;
}

Isa detect_best() {
#if defined(__x86_64__) || defined(_M_X64)
  if (supported(Isa::kAvx2)) return Isa::kAvx2;
  return Isa::kSse2;
#elif defined(__aarch64__)
  return Isa::kNeon;
#else
  return Isa::kScalar;
#endif
}

const Ops& ops_for(Isa isa) {
  switch (isa) {
#if defined(__x86_64__) || defined(_M_X64)
    case Isa::kSse2:
      return *ops_table_sse2();
    case Isa::kAvx2:
      return *ops_table_avx2();
#endif
#if defined(__aarch64__)
    case Isa::kNeon:
      return *ops_table_neon();
#endif
    default:
      return *ops_table_scalar();
  }
}

const char* isa_name(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kSse2:
      return "sse2";
    case Isa::kAvx2:
      return "avx2";
    case Isa::kNeon:
      return "neon";
  }
  return "scalar";
}

std::optional<Isa> isa_from_name(std::string_view name) {
  if (name == "scalar") return Isa::kScalar;
  if (name == "sse2") return Isa::kSse2;
  if (name == "avx2") return Isa::kAvx2;
  if (name == "neon") return Isa::kNeon;
  if (name == "native") return detect_best();
  return std::nullopt;
}

namespace {

const Ops* initial_table() {
  if (const char* env = std::getenv("BPP_ISA")) {
    const std::optional<Isa> isa = isa_from_name(env);
    if (isa && supported(*isa)) return &ops_for(*isa);
    std::fprintf(stderr,
                 "bpp: BPP_ISA=%s is %s on this machine; using %s\n", env,
                 isa ? "not supported" : "not a known ISA",
                 isa_name(detect_best()));
  }
  return &ops_for(detect_best());
}

std::atomic<const Ops*>& active_slot() {
  static std::atomic<const Ops*> slot{initial_table()};
  return slot;
}

}  // namespace

const Ops& ops() { return *active_slot().load(std::memory_order_relaxed); }

Isa active_isa() { return ops().isa; }

bool set_isa(Isa isa) {
  if (!supported(isa)) return false;
  active_slot().store(&ops_for(isa), std::memory_order_relaxed);
  return true;
}

}  // namespace bpp::simd
