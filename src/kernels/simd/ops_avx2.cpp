// AVX2+FMA backend: 4 doubles per lane. This TU is compiled with
// -mavx2 -mfma (see CMakeLists.txt) and is only ever *executed* after
// runtime detection confirms the host supports both.

#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

#include <algorithm>
#include <cmath>

#include "kernels/simd/simd.h"

namespace bpp::simd {
namespace {

struct VT {
  static constexpr int W = 4;
  using reg = __m256d;
  static reg loadu(const double* p) { return _mm256_loadu_pd(p); }
  static void storeu(double* p, reg v) { _mm256_storeu_pd(p, v); }
  static reg bcast(double x) { return _mm256_set1_pd(x); }
  static reg zero() { return _mm256_setzero_pd(); }
  static reg add(reg a, reg b) { return _mm256_add_pd(a, b); }
  static reg sub(reg a, reg b) { return _mm256_sub_pd(a, b); }
  static reg mul(reg a, reg b) { return _mm256_mul_pd(a, b); }
  static reg min(reg a, reg b) { return _mm256_min_pd(a, b); }
  static reg max(reg a, reg b) { return _mm256_max_pd(a, b); }
  static reg fmadd(reg a, reg b, reg acc) { return _mm256_fmadd_pd(a, b, acc); }
  static reg abs(reg v) {
    return _mm256_andnot_pd(_mm256_set1_pd(-0.0), v);
  }
  static reg cmp_gt(reg a, reg b) { return _mm256_cmp_pd(a, b, _CMP_GT_OQ); }
  static reg cmp_lt(reg a, reg b) { return _mm256_cmp_pd(a, b, _CMP_LT_OQ); }
  static reg select(reg mask, reg x, reg y) {
    return _mm256_blendv_pd(y, x, mask);
  }
  static int movemask(reg v) { return _mm256_movemask_pd(v); }
  static double lane(reg v, int i) {
    alignas(32) double t[4];
    _mm256_store_pd(t, v);
    return t[i];
  }
};

}  // namespace
}  // namespace bpp::simd

#define BPP_SIMD_ISA_ENUM Isa::kAvx2
#define BPP_SIMD_ISA_NAME "avx2"
#define BPP_SIMD_TABLE_FN ops_table_avx2

#include "kernels/simd/vec_ops.inl"

#endif  // x86-64
