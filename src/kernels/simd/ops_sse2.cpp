// SSE2 backend: 2 doubles per lane. SSE2 is part of the x86-64 baseline,
// so this TU needs no special compile flags and is always executable on
// x86-64 hosts — it is the portable "some SIMD" floor the AVX2 table
// falls back to.

#if defined(__x86_64__) || defined(_M_X64)

#include <emmintrin.h>

#include <algorithm>
#include <cmath>

#include "kernels/simd/simd.h"

namespace bpp::simd {
namespace {

struct VT {
  static constexpr int W = 2;
  using reg = __m128d;
  static reg loadu(const double* p) { return _mm_loadu_pd(p); }
  static void storeu(double* p, reg v) { _mm_storeu_pd(p, v); }
  static reg bcast(double x) { return _mm_set1_pd(x); }
  static reg zero() { return _mm_setzero_pd(); }
  static reg add(reg a, reg b) { return _mm_add_pd(a, b); }
  static reg sub(reg a, reg b) { return _mm_sub_pd(a, b); }
  static reg mul(reg a, reg b) { return _mm_mul_pd(a, b); }
  static reg min(reg a, reg b) { return _mm_min_pd(a, b); }
  static reg max(reg a, reg b) { return _mm_max_pd(a, b); }
  // No FMA below AVX2: plain mul + add (still reassociates the dot
  // reduction, hence the shared ULP bound).
  static reg fmadd(reg a, reg b, reg acc) {
    return _mm_add_pd(_mm_mul_pd(a, b), acc);
  }
  static reg abs(reg v) { return _mm_andnot_pd(_mm_set1_pd(-0.0), v); }
  static reg cmp_gt(reg a, reg b) { return _mm_cmpgt_pd(a, b); }
  static reg cmp_lt(reg a, reg b) { return _mm_cmplt_pd(a, b); }
  static reg select(reg mask, reg x, reg y) {
    return _mm_or_pd(_mm_and_pd(mask, x), _mm_andnot_pd(mask, y));
  }
  static int movemask(reg v) { return _mm_movemask_pd(v); }
  static double lane(reg v, int i) {
    alignas(16) double t[2];
    _mm_store_pd(t, v);
    return t[i];
  }
};

}  // namespace
}  // namespace bpp::simd

#define BPP_SIMD_ISA_ENUM Isa::kSse2
#define BPP_SIMD_ISA_NAME "sse2"
#define BPP_SIMD_TABLE_FN ops_table_sse2

#include "kernels/simd/vec_ops.inl"

#endif  // x86-64
