// Scalar table: portable straight-line implementations of every
// primitive, in the exact accumulation order the paired equivalence tests
// and the fuzz harness treat as ground truth. Compiled unconditionally on
// every architecture.

#include <algorithm>
#include <cmath>

#include "kernels/simd/simd.h"

namespace bpp::simd {
namespace {

double dot_scalar(const double* a, const double* b, int n) {
  double acc = 0.0;
  for (int i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

void conv2d_scalar(const double* in, int in_stride, const double* kflip,
                   int kw, int kh, double* out, int out_stride, int out_w,
                   int out_h) {
  for (int oy = 0; oy < out_h; ++oy)
    for (int ox = 0; ox < out_w; ++ox) {
      double acc = 0.0;
      for (int ky = 0; ky < kh; ++ky) {
        const double* row = in + static_cast<long>(oy + ky) * in_stride + ox;
        const double* krow = kflip + static_cast<long>(ky) * kw;
        for (int kx = 0; kx < kw; ++kx) acc += row[kx] * krow[kx];
      }
      out[static_cast<long>(oy) * out_stride + ox] = acc;
    }
}

double reduce_min_scalar(const double* p, int n) {
  double v = p[0];
  for (int i = 1; i < n; ++i) v = std::min(v, p[i]);
  return v;
}

double reduce_max_scalar(const double* p, int n) {
  double v = p[0];
  for (int i = 1; i < n; ++i) v = std::max(v, p[i]);
  return v;
}

template <bool kErode>
void morph2d_scalar(const double* in, int in_stride, int kw, int kh,
                    double* out, int out_stride, int out_w, int out_h) {
  for (int oy = 0; oy < out_h; ++oy)
    for (int ox = 0; ox < out_w; ++ox) {
      double v = in[static_cast<long>(oy) * in_stride + ox];
      for (int ky = 0; ky < kh; ++ky) {
        const double* row = in + static_cast<long>(oy + ky) * in_stride + ox;
        for (int kx = 0; kx < kw; ++kx)
          v = kErode ? std::min(v, row[kx]) : std::max(v, row[kx]);
      }
      out[static_cast<long>(oy) * out_stride + ox] = v;
    }
}

void erode2d_scalar(const double* in, int in_stride, int kw, int kh,
                    double* out, int out_stride, int out_w, int out_h) {
  morph2d_scalar<true>(in, in_stride, kw, kh, out, out_stride, out_w, out_h);
}

void dilate2d_scalar(const double* in, int in_stride, int kw, int kh,
                     double* out, int out_stride, int out_w, int out_h) {
  morph2d_scalar<false>(in, in_stride, kw, kh, out, out_stride, out_w, out_h);
}

inline void sort2(double& a, double& b) {
  const double lo = std::min(a, b);
  b = std::max(a, b);
  a = lo;
}

// Median of 9 in 19 compare-exchanges (the classic median-selection
// network). The same exchange sequence runs lane-parallel in the vector
// backends, so scalar and SIMD agree bitwise.
double median9_scalar(const double* p) {
  double v0 = p[0], v1 = p[1], v2 = p[2], v3 = p[3], v4 = p[4], v5 = p[5],
         v6 = p[6], v7 = p[7], v8 = p[8];
  sort2(v1, v2);
  sort2(v4, v5);
  sort2(v7, v8);
  sort2(v0, v1);
  sort2(v3, v4);
  sort2(v6, v7);
  sort2(v1, v2);
  sort2(v4, v5);
  sort2(v7, v8);
  sort2(v0, v3);
  sort2(v5, v8);
  sort2(v4, v7);
  sort2(v3, v6);
  sort2(v1, v4);
  sort2(v2, v5);
  sort2(v4, v7);
  sort2(v4, v2);
  sort2(v6, v4);
  sort2(v4, v2);
  return v4;
}

void median3x3_2d_scalar(const double* in, int in_stride, double* out,
                         int out_stride, int out_w, int out_h) {
  for (int oy = 0; oy < out_h; ++oy)
    for (int ox = 0; ox < out_w; ++ox) {
      const double* r0 = in + static_cast<long>(oy) * in_stride + ox;
      const double* r1 = r0 + in_stride;
      const double* r2 = r1 + in_stride;
      const double win[9] = {r0[0], r0[1], r0[2], r1[0], r1[1],
                             r1[2], r2[0], r2[1], r2[2]};
      out[static_cast<long>(oy) * out_stride + ox] = median9_scalar(win);
    }
}

void sobel2d_scalar(const double* in, int in_stride, double* out,
                    int out_stride, int out_w, int out_h) {
  for (int oy = 0; oy < out_h; ++oy) {
    const double* r0 = in + static_cast<long>(oy) * in_stride;
    const double* r1 = r0 + in_stride;
    const double* r2 = r1 + in_stride;
    for (int ox = 0; ox < out_w; ++ox) {
      // Column sums T(c) = ((r0[c] + 2*r1[c]) + r2[c]) and row sums
      // U(r) = ((r[ox] + 2*r[ox+1]) + r[ox+2]) in the same association as
      // SobelKernel::gradient_magnitude.
      const double gx = (r0[ox + 2] + 2 * r1[ox + 2] + r2[ox + 2]) -
                        (r0[ox] + 2 * r1[ox] + r2[ox]);
      const double gy = (r2[ox] + 2 * r2[ox + 1] + r2[ox + 2]) -
                        (r0[ox] + 2 * r0[ox + 1] + r0[ox + 2]);
      out[static_cast<long>(oy) * out_stride + ox] =
          std::abs(gx) + std::abs(gy);
    }
  }
}

void add_scalar(const double* a, const double* b, double* out, int n) {
  for (int i = 0; i < n; ++i) out[i] = a[i] + b[i];
}
void sub_scalar(const double* a, const double* b, double* out, int n) {
  for (int i = 0; i < n; ++i) out[i] = a[i] - b[i];
}
void mul_scalar(const double* a, const double* b, double* out, int n) {
  for (int i = 0; i < n; ++i) out[i] = a[i] * b[i];
}
void absdiff_scalar(const double* a, const double* b, double* out, int n) {
  for (int i = 0; i < n; ++i) out[i] = std::abs(a[i] - b[i]);
}
void abs1_scalar(const double* a, double* out, int n) {
  for (int i = 0; i < n; ++i) out[i] = std::abs(a[i]);
}
void scale_scalar(const double* a, double* out, int n, double s, double b) {
  for (int i = 0; i < n; ++i) out[i] = s * a[i] + b;
}
void threshold_scalar(const double* a, double* out, int n, double level) {
  for (int i = 0; i < n; ++i) out[i] = a[i] > level ? 1.0 : 0.0;
}
void clamp_scalar(const double* a, double* out, int n, double lo, double hi) {
  for (int i = 0; i < n; ++i) out[i] = std::clamp(a[i], lo, hi);
}

int find_bin_scalar(double v, const double* uppers, int bins) {
  for (int i = 0; i < bins - 1; ++i)
    if (v < uppers[i]) return i;
  return bins - 1;
}


void histogram2d_scalar(const double* in, int in_stride, int w, int h,
                        const double* uppers, int bins, long* counts) {
  for (int y = 0; y < h; ++y) {
    const double* row = in + static_cast<long>(y) * in_stride;
    for (int x = 0; x < w; ++x)
      ++counts[find_bin_scalar(row[x], uppers, bins)];
  }
}

}  // namespace

const Ops* ops_table_scalar() {
  static const Ops table = {
      Isa::kScalar,
      "scalar",
      dot_scalar,
      conv2d_scalar,
      reduce_min_scalar,
      reduce_max_scalar,
      erode2d_scalar,
      dilate2d_scalar,
      median9_scalar,
      median3x3_2d_scalar,
      sobel2d_scalar,
      add_scalar,
      sub_scalar,
      mul_scalar,
      absdiff_scalar,
      abs1_scalar,
      scale_scalar,
      threshold_scalar,
      clamp_scalar,
      find_bin_scalar,
      // Sorted entry: the early-exit scan also wins here — without wide
      // compares, stopping halfway beats a branchless pass over every
      // bound (measured 58 vs 49 Msamples/s; see EXPERIMENTS.md).
      find_bin_scalar,
      histogram2d_scalar,
  };
  return &table;
}

}  // namespace bpp::simd
