#pragma once
// Runtime-dispatched SIMD backend for the hot kernel inner loops.
//
// The kernel library calls through a per-ISA table of raw-pointer
// primitives (`ops()`), selected once at startup by CPU detection and
// overridable for A/B testing with the BPP_ISA environment variable or
// `bpc --isa`. The scalar table is always compiled and is the golden
// reference: every vectorized primitive is either bit-exact against it
// (min/max, elementwise, sorting networks, histograms) or ULP-bounded
// where summation reassociation is unavoidable (dot products and
// convolution — the bound is asserted in tests/test_simd.cpp).
//
// Pointer contract: `in`/`a`/`b` spans may be *read* up to one vector
// width (8 doubles, Tile::kPadDoubles) past their end — Tile's padded
// allocation guarantees this for tile rows. Output spans are never
// written past their end; vector tails fall back to scalar code.

#include <optional>
#include <string_view>

namespace bpp::simd {

enum class Isa {
  kScalar = 0,  ///< portable straight-line loops (always available)
  kSse2,        ///< x86-64 baseline, 2 doubles/lane
  kAvx2,        ///< AVX2+FMA, 4 doubles/lane
  kNeon,        ///< aarch64 baseline, 2 doubles/lane
};

/// Per-ISA primitive table. All geometry parameters are in doubles
/// (elements), not bytes; strides are row-to-row element counts.
struct Ops {
  Isa isa;
  const char* name;

  // --- dot products (ULP-bounded under SIMD: partial accumulators and
  // FMA reassociate the reduction) ---

  /// sum_i a[i] * b[i].
  double (*dot)(const double* a, const double* b, int n);
  /// Valid-mode 2-D correlation with a pre-flipped kernel: for each output
  /// (ox, oy), sum over (kx, ky) of in[(oy+ky)*in_stride + ox+kx] *
  /// kflip[ky*kw + kx]. Row-major accumulation order in the scalar table.
  void (*conv2d)(const double* in, int in_stride, const double* kflip, int kw,
                 int kh, double* out, int out_stride, int out_w, int out_h);

  // --- bit-exact window reductions ---

  double (*reduce_min)(const double* p, int n);
  double (*reduce_max)(const double* p, int n);
  /// Valid-mode sliding-window min/max (morphological erode/dilate).
  void (*erode2d)(const double* in, int in_stride, int kw, int kh, double* out,
                  int out_stride, int out_w, int out_h);
  void (*dilate2d)(const double* in, int in_stride, int kw, int kh,
                   double* out, int out_stride, int out_w, int out_h);
  /// Median of 9 contiguous values (19-exchange sorting network).
  double (*median9)(const double* p);
  /// Valid-mode 3x3 median over a frame (sorting network per output).
  void (*median3x3_2d)(const double* in, int in_stride, double* out,
                       int out_stride, int out_w, int out_h);
  /// Valid-mode Sobel |gx| + |gy| (SobelKernel::gradient_magnitude).
  void (*sobel2d)(const double* in, int in_stride, double* out, int out_stride,
                  int out_w, int out_h);

  // --- bit-exact elementwise over contiguous spans ---

  void (*add)(const double* a, const double* b, double* out, int n);
  void (*sub)(const double* a, const double* b, double* out, int n);
  void (*mul)(const double* a, const double* b, double* out, int n);
  void (*absdiff)(const double* a, const double* b, double* out, int n);
  void (*abs1)(const double* a, double* out, int n);
  /// out[i] = s * a[i] + b — explicit mul-then-add, never fused, so the
  /// result matches the scalar expression under -ffp-contract=off.
  void (*scale)(const double* a, double* out, int n, double s, double b);
  void (*threshold)(const double* a, double* out, int n, double level);
  void (*clamp)(const double* a, double* out, int n, double lo, double hi);

  // --- histogram (bit-exact: first-match semantics, integer counts) ---

  /// First i in [0, bins-1) with v < uppers[i], else bins-1. Exact
  /// first-match even for unsorted bin bounds. Never reads past
  /// uppers[bins-1].
  int (*find_bin)(double v, const double* uppers, int bins);
  /// Bin index for *sorted* (non-decreasing) bounds: a branchless count
  /// of bounds not above v, instead of find_bin's first-match scan.
  /// Equals find_bin() whenever uppers[0..bins-2] is sorted; unspecified
  /// for unsorted bounds. NaN values land in bins-1, matching find_bin.
  int (*find_bin_sorted)(double v, const double* uppers, int bins);
  /// Bin counts over a w x h region (counts must hold `bins` zeros or
  /// running totals; increments only).
  void (*histogram2d)(const double* in, int in_stride, int w, int h,
                      const double* uppers, int bins, long* counts);
};

/// True when this machine can execute `isa`.
[[nodiscard]] bool supported(Isa isa);

/// The widest ISA this machine supports (cpuid-style detection).
[[nodiscard]] Isa detect_best();

/// Table for a specific ISA; `isa` must be supported().
[[nodiscard]] const Ops& ops_for(Isa isa);

/// The active table: detect_best() at startup, unless the BPP_ISA
/// environment variable (scalar|sse2|avx2|neon|native) or set_isa()
/// overrides it. Safe to call from any thread.
[[nodiscard]] const Ops& ops();
[[nodiscard]] Isa active_isa();

/// Select the active table. Returns false (and changes nothing) when the
/// ISA is not supported on this machine.
bool set_isa(Isa isa);

/// Parse an ISA name ("scalar", "sse2", "avx2", "neon", or "native" for
/// detect_best()). Returns nullopt for unknown names.
[[nodiscard]] std::optional<Isa> isa_from_name(std::string_view name);
[[nodiscard]] const char* isa_name(Isa isa);

}  // namespace bpp::simd
