// NEON backend: 2 doubles per lane. Advanced SIMD with double-precision
// arithmetic is part of the aarch64 baseline, so no special compile flags
// and always executable on aarch64 hosts.

#if defined(__aarch64__)

#include <arm_neon.h>

#include <algorithm>
#include <cmath>

#include "kernels/simd/simd.h"

namespace bpp::simd {
namespace {

struct VT {
  static constexpr int W = 2;
  using reg = float64x2_t;
  static reg loadu(const double* p) { return vld1q_f64(p); }
  static void storeu(double* p, reg v) { vst1q_f64(p, v); }
  static reg bcast(double x) { return vdupq_n_f64(x); }
  static reg zero() { return vdupq_n_f64(0.0); }
  static reg add(reg a, reg b) { return vaddq_f64(a, b); }
  static reg sub(reg a, reg b) { return vsubq_f64(a, b); }
  static reg mul(reg a, reg b) { return vmulq_f64(a, b); }
  static reg min(reg a, reg b) { return vminq_f64(a, b); }
  static reg max(reg a, reg b) { return vmaxq_f64(a, b); }
  static reg fmadd(reg a, reg b, reg acc) { return vfmaq_f64(acc, a, b); }
  static reg abs(reg v) { return vabsq_f64(v); }
  static reg cmp_gt(reg a, reg b) {
    return vreinterpretq_f64_u64(vcgtq_f64(a, b));
  }
  static reg cmp_lt(reg a, reg b) {
    return vreinterpretq_f64_u64(vcltq_f64(a, b));
  }
  static reg select(reg mask, reg x, reg y) {
    return vbslq_f64(vreinterpretq_u64_f64(mask), x, y);
  }
  static int movemask(reg v) {
    const uint64x2_t m = vreinterpretq_u64_f64(v);
    return static_cast<int>(vgetq_lane_u64(m, 0) >> 63) |
           static_cast<int>((vgetq_lane_u64(m, 1) >> 63) << 1);
  }
  static double lane(reg v, int i) {
    return i == 0 ? vgetq_lane_f64(v, 0) : vgetq_lane_f64(v, 1);
  }
};

}  // namespace
}  // namespace bpp::simd

#define BPP_SIMD_ISA_ENUM Isa::kNeon
#define BPP_SIMD_ISA_NAME "neon"
#define BPP_SIMD_TABLE_FN ops_table_neon

#include "kernels/simd/vec_ops.inl"

#endif  // aarch64
