#include "kernels/inset.h"

namespace bpp {

InsetKernel::InsetKernel(std::string name, Border border, Size2 frame)
    : Kernel(std::move(name)), border_(border), frame_(frame) {
  if (border.left < 0 || border.top < 0 || border.right < 0 || border.bottom < 0)
    throw GraphError(this->name() + ": negative trim");
  if (!out_frame().positive())
    throw GraphError(this->name() + ": trim leaves an empty frame");
}

void InsetKernel::configure() {
  create_input("in", {1, 1}, {1, 1}, {0.0, 0.0});
  create_output("out", {1, 1});
  auto& pass = register_method("pass", Resources{4, 8}, &InsetKernel::pass);
  method_input(pass, "in");
  method_output(pass, "out");
  auto& eol = register_method("eol", Resources{3, 0}, &InsetKernel::on_eol);
  method_input(eol, "in", tok::kEndOfLine);
  method_output(eol, "out");
  auto& eof = register_method("eof", Resources{3, 0}, &InsetKernel::on_eof);
  method_input(eof, "in", tok::kEndOfFrame);
  method_output(eof, "out");
  auto& eos = register_method("eos", Resources{2, 0}, &InsetKernel::on_eos);
  method_input(eos, "in", tok::kEndOfStream);
  method_output(eos, "out");
}

void InsetKernel::init() { x_ = y_ = 0; }

void InsetKernel::pass() {
  const bool keep_row = y_ >= border_.top && y_ < frame_.h - border_.bottom;
  const bool keep_col = x_ >= border_.left && x_ < frame_.w - border_.right;
  if (keep_row && keep_col) write_output("out", read_input("in"));
  ++x_;
}

void InsetKernel::on_eol() {
  if (y_ >= border_.top && y_ < frame_.h - border_.bottom)
    emit_token("out", tok::kEndOfLine, y_ - border_.top);
  x_ = 0;
  ++y_;
}

void InsetKernel::on_eof() {
  emit_token("out", tok::kEndOfFrame, trigger_payload());
  x_ = y_ = 0;
}

void InsetKernel::on_eos() {
  emit_token("out", tok::kEndOfStream, trigger_payload());
  x_ = y_ = 0;
}

PadKernel::PadKernel(std::string name, Border border, Size2 frame)
    : Kernel(std::move(name)), border_(border), frame_(frame) {
  if (border.left < 0 || border.top < 0 || border.right < 0 || border.bottom < 0)
    throw GraphError(this->name() + ": negative pad");
}

void PadKernel::configure() {
  create_input("in", {1, 1}, {1, 1}, {0.0, 0.0});
  create_output("out", {1, 1});
  auto& pass = register_method("pass", Resources{5, 8}, &PadKernel::pass);
  method_input(pass, "in");
  method_output(pass, "out");
  auto& eol = register_method("eol", Resources{4, 0}, &PadKernel::on_eol);
  method_input(eol, "in", tok::kEndOfLine);
  method_output(eol, "out");
  auto& eof = register_method("eof", Resources{4, 0}, &PadKernel::on_eof);
  method_input(eof, "in", tok::kEndOfFrame);
  method_output(eof, "out");
  auto& eos = register_method("eos", Resources{2, 0}, &PadKernel::on_eos);
  method_input(eos, "in", tok::kEndOfStream);
  method_output(eos, "out");
}

void PadKernel::init() { x_ = y_ = 0; }

void PadKernel::emit_zero_row() {
  for (int x = 0; x < out_frame().w; ++x) write_output("out", Tile({1, 1}, 0.0));
}

void PadKernel::pass() {
  if (x_ == 0 && y_ == 0) {
    // Top border rows, each a full padded-width row of zeros.
    for (int r = 0; r < border_.top; ++r) {
      emit_zero_row();
      emit_token("out", tok::kEndOfLine, r);
    }
  }
  if (x_ == 0)
    for (int p = 0; p < border_.left; ++p) write_output("out", Tile({1, 1}, 0.0));
  write_output("out", read_input("in"));
  ++x_;
}

void PadKernel::on_eol() {
  for (int p = 0; p < border_.right; ++p) write_output("out", Tile({1, 1}, 0.0));
  emit_token("out", tok::kEndOfLine, border_.top + y_);
  x_ = 0;
  ++y_;
}

void PadKernel::on_eof() {
  for (int r = 0; r < border_.bottom; ++r) {
    emit_zero_row();
    emit_token("out", tok::kEndOfLine, border_.top + frame_.h + r);
  }
  emit_token("out", tok::kEndOfFrame, trigger_payload());
  x_ = y_ = 0;
}

void PadKernel::on_eos() {
  emit_token("out", tok::kEndOfStream, trigger_payload());
  x_ = y_ = 0;
}

}  // namespace bpp
