#pragma once
// Histogram kernel and its serial merge step (paper Fig. 1(b), Fig. 7).
//
// HistogramKernel counts values into bins (method `count`), emits the bin
// counts once per frame when the end-of-frame token arrives (method
// `finishCount`), and reloads bin boundaries from the replicated "bins"
// input (method `configureBins`). It is data-parallel: replicas build
// partial histograms.
//
// HistogramMergeKernel is the explicitly serial reduction: it accumulates
// the partial histograms of one frame — `expected()` of them, set by the
// parallelization pass via on_upstream_parallelized — and emits the total.
// Its parallelism is bounded by a data-dependency edge from the
// application input (Fig. 1(b)).

#include <string>
#include <vector>

#include "core/kernel.h"

namespace bpp {

class HistogramKernel final : public Kernel {
 public:
  HistogramKernel(std::string name, int bins);

  void configure() override;
  [[nodiscard]] std::unique_ptr<Kernel> clone() const override {
    return std::make_unique<HistogramKernel>(*this);
  }
  void init() override;

  [[nodiscard]] int bins() const { return bins_; }
  [[nodiscard]] const std::vector<double>& bin_uppers() const { return uppers_; }

  /// Hold data until the bin boundaries have arrived on "bins" (same
  /// start-up race as convolution coefficients).
  [[nodiscard]] std::optional<FireDecision> decide_custom(
      const std::vector<int>& connected, const HeadFn& head) const override;

  /// Uniform bin boundaries over [lo, hi) packed as a (bins x 1) tile,
  /// suitable as a ConstSource payload for the "bins" input.
  [[nodiscard]] static Tile uniform_bins(int bins, double lo, double hi);

 private:
  void count();
  void finish_count();
  void configure_bins();
  void on_eos();
  [[nodiscard]] int find_bin(double v) const;

  int bins_;
  std::vector<double> uppers_;  ///< upper (exclusive) bound of each bin
  std::vector<long> counts_;
  bool ranges_loaded_ = false;
  /// Searched bounds (all but the catch-all last) are non-decreasing, so
  /// count() may use the branchless sorted bin search. True for
  /// uniform_bins; recomputed when configureBins loads custom bounds.
  bool sorted_ = true;
};

class HistogramMergeKernel final : public Kernel {
 public:
  HistogramMergeKernel(std::string name, int bins);

  void configure() override;
  [[nodiscard]] std::unique_ptr<Kernel> clone() const override {
    return std::make_unique<HistogramMergeKernel>(*this);
  }
  void init() override;

  [[nodiscard]] ParKind parallel_kind() const override { return ParKind::Serial; }
  void on_upstream_parallelized(int input_idx, int factor) override;

  [[nodiscard]] int expected() const { return expected_; }

 private:
  void merge();

  int bins_;
  int expected_ = 1;
  int received_ = 0;
  std::vector<double> acc_;
};

}  // namespace bpp
