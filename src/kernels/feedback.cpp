#include "kernels/feedback.h"

namespace bpp {

InitialValueKernel::InitialValueKernel(std::string name, Size2 frame,
                                       double rate_hz, double initial)
    : Kernel(std::move(name)), frame_(frame), rate_hz_(rate_hz), initial_(initial) {
  if (!frame.positive()) throw GraphError(this->name() + ": empty loop frame");
}

void InitialValueKernel::configure() {
  create_input("in", {1, 1}, {1, 1}, {0.0, 0.0});
  create_output("out", {1, 1});
  auto& pass = register_method("pass", Resources{4, 8}, &InitialValueKernel::pass);
  method_input(pass, "in");
  method_output(pass, "out");
}

std::optional<SourceStreamSpec> InitialValueKernel::feedback_spec() const {
  SourceStreamSpec s;
  s.frame = frame_;
  s.granularity = {1, 1};
  s.rate_hz = rate_hz_;
  s.pixel_space = true;
  s.frames = 0;  // loop-carried: run length follows the external input
  return s;
}

std::vector<Emission> InitialValueKernel::initial_emissions() const {
  std::vector<Emission> out;
  out.reserve(static_cast<size_t>(frame_.area()) + frame_.h + 1);
  for (int y = 0; y < frame_.h; ++y) {
    for (int x = 0; x < frame_.w; ++x)
      out.push_back(Emission{0, Tile({1, 1}, initial_)});
    out.push_back(Emission{0, ControlToken{tok::kEndOfLine, y}});
  }
  out.push_back(Emission{0, ControlToken{tok::kEndOfFrame, -1}});
  return out;
}

void InitialValueKernel::pass() { write_output("out", read_input("in")); }

TemporalMixKernel::TemporalMixKernel(std::string name, double alpha)
    : Kernel(std::move(name)), alpha_(alpha) {
  if (alpha < 0.0 || alpha > 1.0)
    throw GraphError(this->name() + ": alpha must be in [0, 1]");
}

void TemporalMixKernel::configure() {
  create_input("x", {1, 1}, {1, 1}, {0.0, 0.0});
  create_input("prev", {1, 1}, {1, 1}, {0.0, 0.0});
  create_output("out", {1, 1});
  auto& mix = register_method("mix", Resources{10, 4}, &TemporalMixKernel::mix);
  method_input(mix, "x");
  method_input(mix, "prev");
  method_output(mix, "out");

  // End-of-stream arrives on the external input only; the loop-carried
  // branch is one frame behind and would deadlock a paired forward.
  auto& eos = register_method("eos", Resources{2, 0}, &TemporalMixKernel::on_eos);
  method_input(eos, "x", tok::kEndOfStream);
  method_output(eos, "out");
}

void TemporalMixKernel::mix() {
  const double x = read_input("x").at(0, 0);
  const double prev = read_input("prev").at(0, 0);
  Tile out(1, 1);
  out.at(0, 0) = alpha_ * x + (1.0 - alpha_) * prev;
  write_output("out", std::move(out));
}

void TemporalMixKernel::on_eos() {
  emit_token("out", tok::kEndOfStream, trigger_payload());
}

}  // namespace bpp
