#pragma once
// Application output sink.
//
// Collects everything arriving on its input. Pixel streams (1x1 tiles with
// EOL/EOF tokens) are reassembled into 2-D frames; other tile streams
// (e.g. per-frame histograms) are collected as raw tiles. Used by tests to
// compare against golden references and by examples to write images.

#include <string>
#include <vector>

#include "core/kernel.h"

namespace bpp {

class OutputKernel final : public Kernel {
 public:
  /// @param item the tile shape expected per arrival (defaults to pixels)
  explicit OutputKernel(std::string name, Size2 item = {1, 1});

  void configure() override;
  [[nodiscard]] std::unique_ptr<Kernel> clone() const override {
    return std::make_unique<OutputKernel>(*this);
  }
  void init() override;

  [[nodiscard]] ParKind parallel_kind() const override { return ParKind::Serial; }

  /// Completed 2-D frames (pixel streams reassembled via EOL/EOF).
  [[nodiscard]] const std::vector<Tile>& frames() const { return frames_; }
  /// Every data tile received, in arrival order.
  [[nodiscard]] const std::vector<Tile>& tiles() const { return tiles_; }
  [[nodiscard]] bool finished() const { return finished_; }
  [[nodiscard]] long tokens_seen(TokenClass cls) const;

 private:
  void collect();
  void on_eol();
  void on_eof();
  void on_eos();

  Size2 item_;
  std::vector<Tile> tiles_;
  std::vector<Tile> frames_;
  std::vector<std::vector<double>> rows_;  // completed rows of current frame
  std::vector<std::vector<double>> band_;  // in-progress rows (item_.h high)
  long eol_count_ = 0, eof_count_ = 0, eos_count_ = 0;
  bool finished_ = false;
};

}  // namespace bpp
