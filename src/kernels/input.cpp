#include "kernels/input.h"

#include <cstdint>

namespace bpp {

namespace {

/// SplitMix64 — cheap deterministic hash for synthetic pixel noise.
std::uint64_t splitmix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

PixelFn default_pixel_fn() {
  return [](int frame, int x, int y) {
    const double gradient = (x * 7 + y * 13 + frame * 3) % 256;
    const std::uint64_t h = splitmix64(
        (static_cast<std::uint64_t>(frame) << 40) ^
        (static_cast<std::uint64_t>(x) << 20) ^ static_cast<std::uint64_t>(y));
    const double noise = static_cast<double>(h % 64);
    double v = 0.75 * gradient + noise;
    return v < 256.0 ? v : v - 256.0;
  };
}

InputKernel::InputKernel(std::string name, Size2 frame, double rate_hz,
                         int frames, PixelFn fn)
    : Kernel(std::move(name)),
      frame_(frame),
      rate_hz_(rate_hz),
      frames_(frames),
      fn_(std::move(fn)) {
  if (!frame.positive()) throw GraphError(this->name() + ": empty input frame");
  if (rate_hz <= 0) throw GraphError(this->name() + ": input rate must be positive");
  if (frames <= 0) throw GraphError(this->name() + ": input must emit >= 1 frame");
}

void InputKernel::configure() { create_output("out", {1, 1}); }

void InputKernel::init() {
  phase_ = Phase::Pixel;
  f_ = x_ = y_ = 0;
  emitted_pixels_ = 0;
}

std::optional<SourceStreamSpec> InputKernel::source_spec(int port) const {
  if (port != 0) return std::nullopt;
  SourceStreamSpec s;
  s.frame = frame_;
  s.granularity = {1, 1};
  s.rate_hz = rate_hz_;
  s.pixel_space = true;
  s.frames = frames_;
  return s;
}

bool InputKernel::source_poll(SourceEmission& out) {
  out.port = 0;
  out.cycles = 1;
  // Tokens piggyback on the preceding pixel's release time.
  out.release_seconds = emitted_pixels_ > 0
                            ? (emitted_pixels_ - 1) * pixel_period()
                            : 0.0;
  switch (phase_) {
    case Phase::Pixel: {
      Tile t(1, 1);
      t.at(0, 0) = fn_(f_, x_, y_);
      out.item = std::move(t);
      out.release_seconds = emitted_pixels_ * pixel_period();
      ++emitted_pixels_;
      if (++x_ == frame_.w) {
        x_ = 0;
        phase_ = Phase::Eol;
      }
      return true;
    }
    case Phase::Eol:
      out.item = ControlToken{tok::kEndOfLine, y_};
      phase_ = (++y_ == frame_.h) ? Phase::Eof : Phase::Pixel;
      return true;
    case Phase::Eof:
      out.item = ControlToken{tok::kEndOfFrame, f_};
      y_ = 0;
      phase_ = (++f_ == frames_) ? Phase::Eos : Phase::Pixel;
      return true;
    case Phase::Eos:
      out.item = ControlToken{tok::kEndOfStream, frames_};
      phase_ = Phase::Done;
      return true;
    case Phase::Done:
      return false;
  }
  return false;
}

}  // namespace bpp
