#include "kernels/const_source.h"

namespace bpp {

ConstSource::ConstSource(std::string name, Tile payload)
    : Kernel(std::move(name)), payload_(std::move(payload)) {
  if (payload_.empty()) throw GraphError(this->name() + ": empty payload tile");
}

void ConstSource::configure() {
  create_output("out", payload_.size(), {payload_.width(), payload_.height()});
}

std::optional<SourceStreamSpec> ConstSource::source_spec(int port) const {
  if (port != 0) return std::nullopt;
  SourceStreamSpec s;
  s.frame = payload_.size();
  s.granularity = payload_.size();
  s.rate_hz = 0.0;       // untimed: available immediately
  s.pixel_space = false;  // not part of inset/alignment analysis
  s.frames = 1;
  return s;
}

bool ConstSource::source_poll(SourceEmission& out) {
  out.port = 0;
  out.release_seconds = 0.0;
  out.cycles = payload_.words();
  if (emitted_ == 0) {
    out.item = payload_;
    emitted_ = 1;
    return true;
  }
  if (emitted_ == 1) {
    out.item = ControlToken{tok::kEndOfStream, 0};
    emitted_ = 2;
    return true;
  }
  return false;
}

}  // namespace bpp
