#pragma once
// Bayer demosaicing kernel — benchmark 1/1F of the paper's Fig. 13.
//
// Consumes an RGGB mosaic as a (4x4)[2,2] windowed stream and produces the
// luminance of the center 2x2 mosaic cell per iteration, with bilinear
// interpolation of the missing color samples from the window neighborhood.

#include <string>

#include "core/kernel.h"

namespace bpp {

class BayerDemosaicKernel final : public Kernel {
 public:
  explicit BayerDemosaicKernel(std::string name);

  void configure() override;
  [[nodiscard]] std::unique_ptr<Kernel> clone() const override {
    return std::make_unique<BayerDemosaicKernel>(*this);
  }

  /// Demosaic the center 2x2 cell of a 4x4 RGGB window (window origin at
  /// even mosaic coordinates). Shared with the golden reference.
  [[nodiscard]] static Tile demosaic_window(const Tile& win);

  [[nodiscard]] static long run_cycles() { return 10 + 3L * 16; }

 private:
  void run();
};

}  // namespace bpp
