#pragma once
// Constant-tile source: feeds replicated parameter inputs such as
// convolution coefficients ("5x5 Coeff") and histogram bin boundaries
// ("Hist Bins") — see Fig. 2. Emits its payload once at start-up, followed
// by end-of-stream.

#include <string>

#include "core/kernel.h"

namespace bpp {

class ConstSource final : public Kernel {
 public:
  ConstSource(std::string name, Tile payload);

  void configure() override;
  [[nodiscard]] std::unique_ptr<Kernel> clone() const override {
    return std::make_unique<ConstSource>(*this);
  }
  void init() override { emitted_ = 0; }

  [[nodiscard]] bool is_source() const override { return true; }
  [[nodiscard]] ParKind parallel_kind() const override { return ParKind::Serial; }
  [[nodiscard]] std::optional<SourceStreamSpec> source_spec(int port) const override;
  bool source_poll(SourceEmission& out) override;

  [[nodiscard]] const Tile& payload() const { return payload_; }

 private:
  Tile payload_;
  int emitted_ = 0;  // 0: payload pending, 1: EOS pending, 2: done
};

}  // namespace bpp
