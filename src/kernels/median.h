#pragma once
// Windowed median filter (the "3x3 Median" of Fig. 1).

#include <string>

#include "core/kernel.h"

namespace bpp {

class MedianKernel final : public Kernel {
 public:
  MedianKernel(std::string name, int width, int height);

  void configure() override;
  [[nodiscard]] std::unique_ptr<Kernel> clone() const override {
    return std::make_unique<MedianKernel>(*this);
  }

  [[nodiscard]] static long run_cycles(int w, int h) { return 10 + 6L * w * h; }

 private:
  void run_median();

  int width_;
  int height_;
};

}  // namespace bpp
