#include "kernels/convolution.h"

#include <algorithm>

#include "kernels/simd/simd.h"

namespace bpp {

ConvolutionKernel::ConvolutionKernel(std::string name, int width, int height)
    : Kernel(std::move(name)), width_(width), height_(height) {
  if (width < 1 || height < 1)
    throw GraphError(this->name() + ": convolution window must be >= 1x1");
}

void ConvolutionKernel::configure() {
  // Window offsets are integer half-widths; no float round-trip.
  const Offset2 center{static_cast<double>(width_ / 2),
                       static_cast<double>(height_ / 2)};
  create_input("in", {width_, height_}, {1, 1}, center);
  create_output("out", {1, 1});
  create_input("coeff", {width_, height_}, {width_, height_}, center);
  set_replicated("coeff");

  // Registered before runConvolve: when both inputs are ready, a pending
  // coefficient reload wins.
  auto& load = register_method("loadCoeff",
                               Resources{10 + 2L * width_ * height_,
                                         static_cast<long>(width_) * height_},
                               &ConvolutionKernel::load_coeff);
  method_input(load, "coeff");

  auto& run = register_method("runConvolve",
                              Resources{run_cycles(width_, height_), 10},
                              &ConvolutionKernel::run_convolve);
  method_input(run, "in");
  method_output(run, "out");

  init();
}

std::optional<FireDecision> ConvolutionKernel::decide_custom(
    const std::vector<int>& connected, const HeadFn& head) const {
  if (loaded_) return std::nullopt;
  const int ci = input_index("coeff");
  const bool coeff_connected =
      std::find(connected.begin(), connected.end(), ci) != connected.end();
  if (!coeff_connected) return std::nullopt;  // free-running (tests only)
  const Item* c = head(ci);
  if (c && is_data(*c)) return std::nullopt;  // loadCoeff fires first anyway
  const Item* in = head(input_index("in"));
  if (in && is_data(*in)) return FireDecision{};  // hold data until loaded
  return std::nullopt;
}

void ConvolutionKernel::init() {
  // Until coefficients arrive the kernel behaves as an identity (delta)
  // filter so that start-up races cannot produce garbage.
  coeff_ = Tile(width_, height_);
  coeff_.at(width_ / 2, height_ / 2) = 1.0;
  flip_coeff();
  loaded_ = false;
}

void ConvolutionKernel::flip_coeff() {
  // The paper's coefficient flip, pre-applied once per (re)load: flipping
  // both axes of a row-major array is a full reversal, so runConvolve is
  // a straight dot product over the contiguous window.
  const long n = coeff_.words();
  coeff_flipped_.resize(static_cast<size_t>(n));
  const double* c = coeff_.data();
  for (long i = 0; i < n; ++i)
    coeff_flipped_[static_cast<size_t>(i)] = c[n - 1 - i];
}

void ConvolutionKernel::run_convolve() {
  const Tile& in = read_input("in");
  Tile result(1, 1);
  // Row-major accumulation; the SIMD backends reassociate the reduction
  // within the dot (ULP-bounded vs the scalar table, tests/test_simd.cpp).
  result.at(0, 0) = simd::ops().dot(in.data(), coeff_flipped_.data(),
                                    static_cast<int>(in.words()));
  write_output("out", std::move(result));
}

void ConvolutionKernel::load_coeff() {
  coeff_ = read_input("coeff");
  flip_coeff();
  loaded_ = true;
}

}  // namespace bpp
