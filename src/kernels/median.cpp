#include "kernels/median.h"

#include <algorithm>
#include <vector>

#include "kernels/simd/simd.h"

namespace bpp {

MedianKernel::MedianKernel(std::string name, int width, int height)
    : Kernel(std::move(name)), width_(width), height_(height) {
  if (width < 1 || height < 1)
    throw GraphError(this->name() + ": median window must be >= 1x1");
}

void MedianKernel::configure() {
  create_input("in", {width_, height_}, {1, 1},
               {static_cast<double>(width_ / 2), static_cast<double>(height_ / 2)});
  create_output("out", {1, 1});
  auto& run = register_method("runMedian",
                              Resources{run_cycles(width_, height_),
                                        static_cast<long>(width_) * height_ + 8},
                              &MedianKernel::run_median);
  method_input(run, "in");
  method_output(run, "out");
}

void MedianKernel::run_median() {
  const Tile& in = read_input("in");
  Tile result(1, 1);
  if (in.words() == 9) {
    // 3x3 is the common case: 19-exchange sorting network, same exchange
    // sequence in every backend, so the result is bit-identical everywhere.
    result.at(0, 0) = simd::ops().median9(in.data());
  } else {
    std::vector<double> v(in.data(), in.data() + in.words());
    auto mid = v.begin() + static_cast<std::ptrdiff_t>(v.size() / 2);
    std::nth_element(v.begin(), mid, v.end());
    result.at(0, 0) = *mid;
  }
  write_output("out", std::move(result));
}

}  // namespace bpp
