#include "kernels/median.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace bpp {

MedianKernel::MedianKernel(std::string name, int width, int height)
    : Kernel(std::move(name)), width_(width), height_(height) {
  if (width < 1 || height < 1)
    throw GraphError(this->name() + ": median window must be >= 1x1");
}

void MedianKernel::configure() {
  create_input("in", {width_, height_}, {1, 1},
               {std::floor(width_ / 2.0), std::floor(height_ / 2.0)});
  create_output("out", {1, 1});
  auto& run = register_method("runMedian",
                              Resources{run_cycles(width_, height_),
                                        static_cast<long>(width_) * height_ + 8},
                              &MedianKernel::run_median);
  method_input(run, "in");
  method_output(run, "out");
}

void MedianKernel::run_median() {
  const Tile& in = read_input("in");
  std::vector<double> v(in.raw());
  auto mid = v.begin() + static_cast<std::ptrdiff_t>(v.size() / 2);
  std::nth_element(v.begin(), mid, v.end());
  Tile result(1, 1);
  result.at(0, 0) = *mid;
  write_output("out", std::move(result));
}

}  // namespace bpp
