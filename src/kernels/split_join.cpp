#include "kernels/split_join.h"

#include <algorithm>

namespace bpp {

namespace {

std::string branch_name(const char* base, int i) {
  return std::string(base) + std::to_string(i);
}

}  // namespace

// ---------------------------------------------------------------- Split

SplitKernel::SplitKernel(std::string name, int n, Size2 item, Step2 step)
    : Kernel(std::move(name)),
      mode_(Mode::RoundRobin),
      n_(n),
      item_(item),
      step_(step) {
  if (n < 1) throw GraphError(this->name() + ": split needs >= 1 branch");
}

SplitKernel::SplitKernel(std::string name,
                         std::vector<std::pair<int, int>> ranges,
                         int items_per_line, Size2 item, Step2 step)
    : Kernel(std::move(name)),
      mode_(Mode::ColumnRanges),
      n_(static_cast<int>(ranges.size())),
      item_(item),
      step_(step),
      ranges_(std::move(ranges)),
      items_per_line_(items_per_line) {
  if (n_ < 1) throw GraphError(this->name() + ": split needs >= 1 range");
  for (const auto& [a, b] : ranges_)
    if (a < 0 || b <= a || b > items_per_line_)
      throw GraphError(this->name() + ": bad column range [" + std::to_string(a) +
                       ", " + std::to_string(b) + ")");
}

void SplitKernel::configure() {
  create_input("in", item_, step_, {0.0, 0.0});
  auto& route = register_method("route", Resources{8, 8},
                                &SplitKernel::route);
  method_input(route, "in");
  for (int i = 0; i < n_; ++i) {
    create_output(branch_name("out", i), item_, step_);
    method_output(route, branch_name("out", i));
  }
  auto& eol = register_method("eol", Resources{2 + n_, 0}, &SplitKernel::on_eol);
  method_input(eol, "in", tok::kEndOfLine);
  auto& eof = register_method("eof", Resources{2 + n_, 0}, &SplitKernel::on_eof);
  method_input(eof, "in", tok::kEndOfFrame);
  auto& eos = register_method("eos", Resources{2 + n_, 0}, &SplitKernel::on_eos);
  method_input(eos, "in", tok::kEndOfStream);
  for (int i = 0; i < n_; ++i) {
    method_output(eol, branch_name("out", i));
    method_output(eof, branch_name("out", i));
    method_output(eos, branch_name("out", i));
  }
}

void SplitKernel::init() {
  rr_ = 0;
  x_ = 0;
}

void SplitKernel::route() {
  const Tile& t = read_input("in");
  if (mode_ == Mode::RoundRobin) {
    write_output(branch_name("out", rr_), t);
    rr_ = (rr_ + 1) % n_;
  } else {
    for (int i = 0; i < n_; ++i)
      if (x_ >= ranges_[static_cast<size_t>(i)].first &&
          x_ < ranges_[static_cast<size_t>(i)].second)
        write_output(branch_name("out", i), t);
    if (++x_ == items_per_line_) x_ = 0;
  }
}

void SplitKernel::broadcast(TokenClass cls) {
  for (int i = 0; i < n_; ++i)
    emit_token(branch_name("out", i), cls, trigger_payload());
}

void SplitKernel::on_eol() {
  x_ = 0;
  broadcast(tok::kEndOfLine);
}

void SplitKernel::on_eof() {
  rr_ = 0;
  x_ = 0;
  broadcast(tok::kEndOfFrame);
}

void SplitKernel::on_eos() {
  rr_ = 0;
  x_ = 0;
  broadcast(tok::kEndOfStream);
}

// ----------------------------------------------------------------- Join

JoinKernel::JoinKernel(std::string name, int n, Size2 item, Step2 step)
    : Kernel(std::move(name)),
      mode_(Mode::RoundRobin),
      n_(n),
      item_(item),
      step_(step) {
  if (n < 1) throw GraphError(this->name() + ": join needs >= 1 branch");
}

JoinKernel::JoinKernel(std::string name, std::vector<int> runs, Size2 item,
                       Step2 step)
    : Kernel(std::move(name)),
      mode_(Mode::RunLength),
      n_(static_cast<int>(runs.size())),
      item_(item),
      step_(step),
      runs_(std::move(runs)) {
  if (n_ < 1) throw GraphError(this->name() + ": join needs >= 1 run");
  for (int r : runs_)
    if (r < 0) throw GraphError(this->name() + ": negative run length");
}

void JoinKernel::configure() {
  auto& take = register_method("take", Resources{8, 8},
                               &JoinKernel::take);
  for (int i = 0; i < n_; ++i) {
    create_input(branch_name("in", i), item_, step_, {0.0, 0.0});
    method_input(take, branch_name("in", i));
  }
  create_output("out", item_, step_);
  method_output(take, "out");

  auto& eol = register_method("eol", Resources{3, 0}, &JoinKernel::on_eol);
  auto& eof = register_method("eof", Resources{3, 0}, &JoinKernel::on_eof);
  auto& eos = register_method("eos", Resources{3, 0}, &JoinKernel::on_eos);
  for (int i = 0; i < n_; ++i) {
    method_input(eol, branch_name("in", i), tok::kEndOfLine);
    method_input(eof, branch_name("in", i), tok::kEndOfFrame);
    method_input(eos, branch_name("in", i), tok::kEndOfStream);
  }
  method_output(eol, "out");
  method_output(eof, "out");
  method_output(eos, "out");

  init();
}

void JoinKernel::init() {
  cur_ = 0;
  taken_ = 0;
  if (mode_ == Mode::RunLength) reset_line();
}

void JoinKernel::reset_line() {
  cur_ = 0;
  taken_ = 0;
  // Skip branches that contribute nothing to a line.
  while (mode_ == Mode::RunLength && cur_ < n_ &&
         runs_[static_cast<size_t>(cur_)] == 0)
    ++cur_;
}

std::optional<FireDecision> JoinKernel::decide_custom(
    const std::vector<int>& connected, const HeadFn& head) const {
  // Data: consume from the current branch only.
  if (cur_ < n_) {
    const Item* h = head(cur_);
    if (h && is_data(*h)) {
      FireDecision d;
      d.kind = FireDecision::Kind::Method;
      d.method = 0;  // take() is registered first
      d.pop_inputs = {cur_};
      return d;
    }
  }
  // Tokens: require the same class at the head of every branch, then run
  // the registered handler (which resets the FSM and forwards one copy).
  const Item* first = nullptr;
  for (int i : connected) {
    const Item* h = head(i);
    if (!h || !is_token(*h)) return FireDecision{};
    if (!first)
      first = h;
    else if (as_token(*h).cls != as_token(*first).cls)
      return FireDecision{};
  }
  if (!first || static_cast<int>(connected.size()) != n_) return FireDecision{};
  const TokenClass cls = as_token(*first).cls;
  const int m = token_method_of_input(0, cls);
  FireDecision d;
  d.pop_inputs = connected;
  d.token = cls;
  d.payload = as_token(*first).payload;
  if (m >= 0) {
    d.kind = FireDecision::Kind::Method;
    d.method = m;
  } else {
    d.kind = FireDecision::Kind::Forward;
    d.forward_outputs = {0};
  }
  return d;
}

void JoinKernel::take() {
  write_output("out", read_input(branch_name("in", cur_)));
  advance();
}

void JoinKernel::advance() {
  if (mode_ == Mode::RoundRobin) {
    cur_ = (cur_ + 1) % n_;
    return;
  }
  if (++taken_ >= runs_[static_cast<size_t>(cur_)]) {
    taken_ = 0;
    ++cur_;
    while (cur_ < n_ && runs_[static_cast<size_t>(cur_)] == 0) ++cur_;
    // cur_ == n_ means the line is exhausted; the next EOL resets it.
  }
}

void JoinKernel::on_eol() {
  if (mode_ == Mode::RunLength) reset_line();
  emit_token("out", tok::kEndOfLine, trigger_payload());
}

void JoinKernel::on_eof() {
  if (mode_ == Mode::RunLength)
    reset_line();
  else
    cur_ = 0;
  emit_token("out", tok::kEndOfFrame, trigger_payload());
}

void JoinKernel::on_eos() {
  if (mode_ == Mode::RunLength)
    reset_line();
  else
    cur_ = 0;
  emit_token("out", tok::kEndOfStream, trigger_payload());
}

// ------------------------------------------------------------ Replicate

ReplicateKernel::ReplicateKernel(std::string name, int n, Size2 item, Step2 step)
    : Kernel(std::move(name)), n_(n), item_(item), step_(step) {
  if (n < 1) throw GraphError(this->name() + ": replicate needs >= 1 branch");
}

void ReplicateKernel::configure() {
  create_input("in", item_, step_, {0.0, 0.0});
  auto& copy = register_method("copy", Resources{4 + n_ * item_.area(), 8},
                               &ReplicateKernel::copy_all);
  method_input(copy, "in");
  for (int i = 0; i < n_; ++i) {
    create_output(branch_name("out", i), item_, step_);
    method_output(copy, branch_name("out", i));
  }
}

void ReplicateKernel::copy_all() {
  const Tile& t = read_input("in");
  for (int i = 0; i < n_; ++i) write_output(branch_name("out", i), t);
}

}  // namespace bpp
