#pragma once
// Sobel gradient-magnitude kernel (|gx| + |gy| over a 3x3 window).

#include <string>

#include "core/kernel.h"

namespace bpp {

class SobelKernel final : public Kernel {
 public:
  explicit SobelKernel(std::string name);

  void configure() override;
  [[nodiscard]] std::unique_ptr<Kernel> clone() const override {
    return std::make_unique<SobelKernel>(*this);
  }

  /// Shared with the golden reference.
  [[nodiscard]] static double gradient_magnitude(const Tile& win3x3);

 private:
  void run();
};

}  // namespace bpp
