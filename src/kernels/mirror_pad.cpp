#include "kernels/mirror_pad.h"

namespace bpp {

MirrorPadKernel::MirrorPadKernel(std::string name, Border border, Size2 frame)
    : Kernel(std::move(name)), border_(border), frame_(frame) {
  if (border.left < 0 || border.top < 0 || border.right < 0 || border.bottom < 0)
    throw GraphError(this->name() + ": negative pad");
  // Reflection about the edge needs the reflected samples to exist.
  if (border.left >= frame.w || border.right >= frame.w ||
      border.top >= frame.h || border.bottom >= frame.h)
    throw GraphError(this->name() + ": mirror pad must be smaller than the frame");
}

void MirrorPadKernel::configure() {
  create_input("in", {1, 1}, {1, 1}, {0.0, 0.0});
  create_output("out", {1, 1});
  auto& a = register_method(
      "absorb", Resources{6, static_cast<long>(border_.top + 2) * frame_.w + 16},
      &MirrorPadKernel::absorb);
  method_input(a, "in");
  method_output(a, "out");
  auto& eol = register_method("eol", Resources{4, 0}, &MirrorPadKernel::on_eol);
  method_input(eol, "in", tok::kEndOfLine);
  method_output(eol, "out");
  auto& eof = register_method("eof", Resources{4, 0}, &MirrorPadKernel::on_eof);
  method_input(eof, "in", tok::kEndOfFrame);
  method_output(eof, "out");
  auto& eos = register_method("eos", Resources{2, 0}, &MirrorPadKernel::on_eos);
  method_input(eos, "in", tok::kEndOfStream);
  method_output(eos, "out");
}

void MirrorPadKernel::init() {
  rows_.clear();
  cur_.clear();
  next_out_ = 0;
}

int MirrorPadKernel::reflect(int v, int n) {
  if (n == 1) return 0;
  while (v < 0 || v >= n) {
    if (v < 0) v = -v;
    if (v >= n) v = 2 * n - 2 - v;
  }
  return v;
}

void MirrorPadKernel::absorb() { cur_.push_back(read_input("in").at(0, 0)); }

void MirrorPadKernel::emit_row(int out_row) {
  const int src = reflect(out_row - border_.top, frame_.h);
  const std::vector<double>& row = rows_[static_cast<size_t>(src)];
  for (int x = 0; x < out_frame().w; ++x) {
    Tile px(1, 1);
    px.at(0, 0) = row[static_cast<size_t>(reflect(x - border_.left, frame_.w))];
    write_output("out", std::move(px));
  }
  emit_token("out", tok::kEndOfLine, out_row);
}

void MirrorPadKernel::emit_ready_rows() {
  while (next_out_ < out_frame().h) {
    const int src = reflect(next_out_ - border_.top, frame_.h);
    if (src >= static_cast<int>(rows_.size())) return;
    emit_row(next_out_++);
  }
}

void MirrorPadKernel::on_eol() {
  if (static_cast<int>(cur_.size()) != frame_.w)
    throw ExecutionError(name() + ": row of " + std::to_string(cur_.size()) +
                         " pixels, expected " + std::to_string(frame_.w));
  rows_.push_back(std::move(cur_));
  cur_.clear();
  emit_ready_rows();
}

void MirrorPadKernel::on_eof() {
  if (static_cast<int>(rows_.size()) != frame_.h)
    throw ExecutionError(name() + ": end-of-frame after " +
                         std::to_string(rows_.size()) + " of " +
                         std::to_string(frame_.h) + " rows");
  emit_ready_rows();  // bottom border: all sources now available
  if (next_out_ != out_frame().h)
    throw ExecutionError(name() + ": frame ended with unemitted rows");
  emit_token("out", tok::kEndOfFrame, trigger_payload());
  rows_.clear();
  next_out_ = 0;
}

void MirrorPadKernel::on_eos() {
  emit_token("out", tok::kEndOfStream, trigger_payload());
  rows_.clear();
  cur_.clear();
  next_out_ = 0;
}

}  // namespace bpp
