#include "kernels/elementwise.h"

#include <algorithm>
#include <cmath>

namespace bpp {

BinaryOpKernel::BinaryOpKernel(std::string name, Fn fn, long cycles,
                               std::string op_tag)
    : Kernel(std::move(name)),
      fn_(std::move(fn)),
      cycles_(cycles),
      op_tag_(std::move(op_tag)) {}

void BinaryOpKernel::configure() {
  create_input("in0", {1, 1}, {1, 1}, {0.0, 0.0});
  create_input("in1", {1, 1}, {1, 1}, {0.0, 0.0});
  create_output("out", {1, 1});
  auto& run = register_method("run", Resources{cycles_, 4}, &BinaryOpKernel::run);
  method_input(run, "in0");
  method_input(run, "in1");
  method_output(run, "out");
}

void BinaryOpKernel::run() {
  const Tile& a = read_input("in0");
  const Tile& b = read_input("in1");
  Tile result(1, 1);
  result.at(0, 0) = fn_(a.at(0, 0), b.at(0, 0));
  write_output("out", std::move(result));
}

UnaryOpKernel::UnaryOpKernel(std::string name, Fn fn, long cycles,
                             std::string op_tag, double p0, double p1)
    : Kernel(std::move(name)),
      fn_(std::move(fn)),
      cycles_(cycles),
      op_tag_(std::move(op_tag)),
      p0_(p0),
      p1_(p1) {}

void UnaryOpKernel::configure() {
  create_input("in", {1, 1}, {1, 1}, {0.0, 0.0});
  create_output("out", {1, 1});
  auto& run = register_method("run", Resources{cycles_, 2}, &UnaryOpKernel::run);
  method_input(run, "in");
  method_output(run, "out");
}

void UnaryOpKernel::run() {
  Tile result(1, 1);
  result.at(0, 0) = fn_(read_input("in").at(0, 0));
  write_output("out", std::move(result));
}

std::unique_ptr<BinaryOpKernel> make_subtract(std::string name) {
  return std::make_unique<BinaryOpKernel>(
      std::move(name), [](double a, double b) { return a - b; }, 8, "subtract");
}

std::unique_ptr<BinaryOpKernel> make_add(std::string name) {
  return std::make_unique<BinaryOpKernel>(
      std::move(name), [](double a, double b) { return a + b; }, 8, "add");
}

std::unique_ptr<BinaryOpKernel> make_absdiff(std::string name) {
  return std::make_unique<BinaryOpKernel>(
      std::move(name), [](double a, double b) { return std::abs(a - b); }, 8,
      "absdiff");
}

std::unique_ptr<BinaryOpKernel> make_multiply(std::string name) {
  return std::make_unique<BinaryOpKernel>(
      std::move(name), [](double a, double b) { return a * b; }, 8, "multiply");
}

std::unique_ptr<UnaryOpKernel> make_abs(std::string name) {
  return std::make_unique<UnaryOpKernel>(
      std::move(name), [](double v) { return std::abs(v); }, 6, "abs");
}

std::unique_ptr<UnaryOpKernel> make_scale(std::string name, double a, double b) {
  return std::make_unique<UnaryOpKernel>(
      std::move(name), [a, b](double v) { return a * v + b; }, 6, "scale", a, b);
}

std::unique_ptr<UnaryOpKernel> make_threshold(std::string name, double level) {
  return std::make_unique<UnaryOpKernel>(
      std::move(name), [level](double v) { return v > level ? 1.0 : 0.0; }, 6,
      "threshold", level);
}

std::unique_ptr<UnaryOpKernel> make_clamp(std::string name, double lo, double hi) {
  return std::make_unique<UnaryOpKernel>(
      std::move(name), [lo, hi](double v) { return std::clamp(v, lo, hi); }, 6,
      "clamp", lo, hi);
}

}  // namespace bpp
