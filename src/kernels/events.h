#pragma once
// User-defined control tokens (paper §II-C).
//
// "Kernels are free to define their own control tokens as long as they
// specify the maximum rate at which they can be generated, which is
// necessary to allow the compilation system to allocate sufficient
// resources to guarantee real-time execution. ... This allows programmers
// to write methods that handle the control signals that do more than
// simply set local flags, as the time and resources spent in them are
// appropriately accounted for."
//
// EventDetectKernel passes its pixel stream through and emits a
// `kThresholdEvent` token in-stream whenever the value crosses a level —
// bounded to the declared maximum per frame (excess crossings are counted
// but suppressed, preserving the static contract).
//
// EventHandlerKernel is a downstream consumer with a genuinely expensive
// handler method for that token class, demonstrating that the handler's
// resource cost is planned for by the data-flow analysis.

#include <string>

#include "core/kernel.h"

namespace bpp {

namespace tok {
/// Demo user token: the stream value crossed the detector's level.
inline constexpr TokenClass kThresholdEvent = kFirstUser;
}  // namespace tok

class EventDetectKernel final : public Kernel {
 public:
  /// @param level          crossing level (rising edges only)
  /// @param max_per_frame  declared §II-C rate bound for the event token
  EventDetectKernel(std::string name, double level, double max_per_frame);

  void configure() override;
  [[nodiscard]] std::unique_ptr<Kernel> clone() const override {
    return std::make_unique<EventDetectKernel>(*this);
  }
  void init() override;

  /// Scan-order edge detection state forbids replication.
  [[nodiscard]] ParKind parallel_kind() const override { return ParKind::Serial; }

  [[nodiscard]] long events_emitted() const { return emitted_total_; }
  [[nodiscard]] long events_suppressed() const { return suppressed_total_; }

 private:
  void detect();
  void on_eof();

  double level_;
  double max_per_frame_;
  bool above_ = false;
  long emitted_this_frame_ = 0;
  long emitted_total_ = 0;
  long suppressed_total_ = 0;
};

class EventHandlerKernel final : public Kernel {
 public:
  /// @param handler_cycles cost of one event handling (accounted in §III-A)
  EventHandlerKernel(std::string name, long handler_cycles = 500);

  void configure() override;
  [[nodiscard]] std::unique_ptr<Kernel> clone() const override {
    return std::make_unique<EventHandlerKernel>(*this);
  }
  void init() override;

  [[nodiscard]] ParKind parallel_kind() const override { return ParKind::Serial; }

  [[nodiscard]] long events_handled() const { return handled_; }
  /// Value of the (expensive) per-event recalibration this kernel models.
  [[nodiscard]] double gain() const { return gain_; }

 private:
  void pass();
  void on_event();

  long handler_cycles_;
  long handled_ = 0;
  double gain_ = 1.0;
};

}  // namespace bpp
