#include "kernels/motion.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace bpp {

MotionEstimateKernel::MotionEstimateKernel(std::string name, Size2 frame,
                                           int radius, long bound_cycles)
    : Kernel(std::move(name)), frame_(frame), radius_(radius) {
  if (frame.w % block != 0 || frame.h % block != 0)
    throw GraphError(this->name() + ": frame must be a multiple of 4x4 blocks");
  if (radius < 1) throw GraphError(this->name() + ": radius must be >= 1");
  bound_ = bound_cycles > 0 ? bound_cycles : worst_case_cycles();
}

void MotionEstimateKernel::configure() {
  create_input("in", {block, block}, {block, block}, {1.5, 1.5});
  create_output("out", {1, 1});
  auto& est = register_method("estimate", Resources{bound_, frame_.area() + 64},
                              &MotionEstimateKernel::estimate);
  method_input(est, "in");
  method_output(est, "out");
  auto& eof = register_method("eof", Resources{6, 0},
                              &MotionEstimateKernel::on_eof);
  method_input(eof, "in", tok::kEndOfFrame);
  method_output(eof, "out");
  auto& eos = register_method("eos", Resources{2, 0},
                              &MotionEstimateKernel::on_eos);
  method_input(eos, "in", tok::kEndOfStream);
  method_output(eos, "out");
  init();
}

void MotionEstimateKernel::init() {
  prev_ = Tile(frame_);
  cur_ = Tile(frame_);
  have_prev_ = false;
  bx_ = by_ = 0;
}

void MotionEstimateKernel::estimate() {
  const Tile& blk = read_input("in");
  const int px = bx_ * block;
  const int py = by_ * block;
  for (int y = 0; y < block; ++y) {
    const double* src = blk.row_ptr(y);
    std::copy(src, src + block, cur_.row_ptr(py + y) + px);
  }

  long cycles = 20;
  double best = std::numeric_limits<double>::infinity();
  int best_dx = 0, best_dy = 0;
  if (have_prev_) {
    // Spiral-free raster search with early exit: work depends on how fast
    // a good match is found -- genuinely input-dependent cycles.
    for (int dy = -radius_; dy <= radius_ && best > 1e-9; ++dy) {
      for (int dx = -radius_; dx <= radius_ && best > 1e-9; ++dx) {
        const int ox = px + dx;
        const int oy = py + dy;
        if (ox < 0 || oy < 0 || ox + block > frame_.w || oy + block > frame_.h)
          continue;
        cycles += candidate_cycles();
        double sad = 0.0;
        for (int y = 0; y < block && sad < best; ++y) {
          const double* b = blk.row_ptr(y);
          const double* p = prev_.row_ptr(oy + y) + ox;
          for (int x = 0; x < block; ++x) sad += std::abs(b[x] - p[x]);
        }
        if (sad < best) {
          best = sad;
          best_dx = dx;
          best_dy = dy;
        }
      }
    }
  }
  report_cycles(cycles);  // actual work; the declared cycles are the bound

  Tile out(1, 1);
  out.at(0, 0) = std::sqrt(static_cast<double>(best_dx * best_dx +
                                               best_dy * best_dy));
  write_output("out", std::move(out));

  if (++bx_ == frame_.w / block) {
    bx_ = 0;
    ++by_;
  }
}

void MotionEstimateKernel::on_eof() {
  prev_ = cur_;
  have_prev_ = true;
  by_ = 0;
  emit_token("out", tok::kEndOfFrame, trigger_payload());
}

void MotionEstimateKernel::on_eos() {
  emit_token("out", tok::kEndOfStream, trigger_payload());
}

}  // namespace bpp
