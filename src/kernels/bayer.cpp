#include "kernels/bayer.h"

namespace bpp {

BayerDemosaicKernel::BayerDemosaicKernel(std::string name)
    : Kernel(std::move(name)) {}

void BayerDemosaicKernel::configure() {
  create_input("in", {4, 4}, {2, 2}, {1.0, 1.0});
  create_output("out", {2, 2}, {2, 2});
  auto& run = register_method("demosaic", Resources{run_cycles(), 24},
                              &BayerDemosaicKernel::run);
  method_input(run, "in");
  method_output(run, "out");
}

Tile BayerDemosaicKernel::demosaic_window(const Tile& win) {
  // Window origin sits at even mosaic coordinates, so parity inside the
  // window is fixed: (even,even)=R, (odd,even)=G, (even,odd)=G, (odd,odd)=B.
  auto avg_parity = [&](int cx, int cy, int px, int py) {
    double sum = 0.0;
    int n = 0;
    for (int y = std::max(0, cy - 1); y <= std::min(3, cy + 1); ++y)
      for (int x = std::max(0, cx - 1); x <= std::min(3, cx + 1); ++x)
        if ((x & 1) == px && (y & 1) == py) {
          sum += win.at(x, y);
          ++n;
        }
    return n > 0 ? sum / n : 0.0;
  };
  auto avg_green = [&](int cx, int cy) {
    double sum = 0.0;
    int n = 0;
    for (int y = std::max(0, cy - 1); y <= std::min(3, cy + 1); ++y)
      for (int x = std::max(0, cx - 1); x <= std::min(3, cx + 1); ++x)
        if (((x & 1) ^ (y & 1)) == 1) {
          sum += win.at(x, y);
          ++n;
        }
    return n > 0 ? sum / n : 0.0;
  };

  Tile out(2, 2);
  for (int j = 0; j < 2; ++j) {
    for (int i = 0; i < 2; ++i) {
      const int cx = 1 + i;  // center cell pixels are (1,1)..(2,2)
      const int cy = 1 + j;
      const double r = avg_parity(cx, cy, 0, 0);
      const double g = avg_green(cx, cy);
      const double b = avg_parity(cx, cy, 1, 1);
      out.at(i, j) = 0.299 * r + 0.587 * g + 0.114 * b;
    }
  }
  return out;
}

void BayerDemosaicKernel::run() {
  write_output("out", demosaic_window(read_input("in")));
}

}  // namespace bpp
