#pragma once
// One-dimensional signal processing (paper §II-A: the 2-D parameterization
// addresses image processing "without inhibiting one-dimensional signal
// handling"). A 1-D stream is a frame of height 1; this decimating FIR
// filter consumes a (taps x 1) window stepping by the decimation factor.

#include <string>
#include <vector>

#include "core/kernel.h"

namespace bpp {

class FirDecimateKernel final : public Kernel {
 public:
  /// @param taps     filter coefficients (applied newest-last, like the
  ///                 convolution kernel's flipped indexing)
  /// @param decimate output one sample per `decimate` inputs
  FirDecimateKernel(std::string name, std::vector<double> taps, int decimate = 1);

  void configure() override;
  [[nodiscard]] std::unique_ptr<Kernel> clone() const override {
    return std::make_unique<FirDecimateKernel>(*this);
  }

  [[nodiscard]] int taps() const { return static_cast<int>(taps_.size()); }
  [[nodiscard]] const std::vector<double>& tap_values() const { return taps_; }
  [[nodiscard]] int decimation() const { return decimate_; }

  [[nodiscard]] static long run_cycles(int taps) { return 8 + 2L * taps; }

 private:
  void run();

  std::vector<double> taps_;
  std::vector<double> taps_rev_;  ///< taps_ reversed: run() is a plain dot
  int decimate_;
};

/// Simple windowed designs for tests and apps.
[[nodiscard]] std::vector<double> moving_average_taps(int n);
[[nodiscard]] std::vector<double> lowpass_taps(int n, double cutoff);

}  // namespace bpp
