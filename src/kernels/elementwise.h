#pragma once
// Element-wise kernels: per-pixel binary operations (subtract, add,
// absolute difference, multiply) and unary operations (scale, threshold,
// clamp). The binary kernels are the paper's "Subtract" (Fig. 1): one
// method triggered by data on both inputs, so control tokens are forwarded
// only when the same class heads both inputs (§II-C).

#include <functional>
#include <string>

#include "core/kernel.h"

namespace bpp {

class BinaryOpKernel final : public Kernel {
 public:
  using Fn = std::function<double(double, double)>;

  BinaryOpKernel(std::string name, Fn fn, long cycles = 8,
                 std::string op_tag = "");

  void configure() override;
  [[nodiscard]] std::unique_ptr<Kernel> clone() const override {
    return std::make_unique<BinaryOpKernel>(*this);
  }

  /// Name of the factory op ("subtract", ...); empty for ad-hoc lambdas.
  /// Used by graph serialization, which cannot persist arbitrary code.
  [[nodiscard]] const std::string& op_tag() const { return op_tag_; }
  [[nodiscard]] long cycles() const { return cycles_; }

 private:
  void run();

  Fn fn_;
  long cycles_;
  std::string op_tag_;
};

class UnaryOpKernel final : public Kernel {
 public:
  using Fn = std::function<double(double)>;

  UnaryOpKernel(std::string name, Fn fn, long cycles = 6,
                std::string op_tag = "", double p0 = 0.0, double p1 = 0.0);

  void configure() override;
  [[nodiscard]] std::unique_ptr<Kernel> clone() const override {
    return std::make_unique<UnaryOpKernel>(*this);
  }

  [[nodiscard]] const std::string& op_tag() const { return op_tag_; }
  [[nodiscard]] long cycles() const { return cycles_; }
  [[nodiscard]] double param0() const { return p0_; }
  [[nodiscard]] double param1() const { return p1_; }

 private:
  void run();

  Fn fn_;
  long cycles_;
  std::string op_tag_;
  double p0_ = 0.0, p1_ = 0.0;
};

// Convenience factories matching the paper's kernel vocabulary.
[[nodiscard]] std::unique_ptr<BinaryOpKernel> make_subtract(std::string name);
[[nodiscard]] std::unique_ptr<BinaryOpKernel> make_add(std::string name);
[[nodiscard]] std::unique_ptr<BinaryOpKernel> make_absdiff(std::string name);
[[nodiscard]] std::unique_ptr<BinaryOpKernel> make_multiply(std::string name);
[[nodiscard]] std::unique_ptr<UnaryOpKernel> make_abs(std::string name);
[[nodiscard]] std::unique_ptr<UnaryOpKernel> make_scale(std::string name, double a,
                                                        double b);
[[nodiscard]] std::unique_ptr<UnaryOpKernel> make_threshold(std::string name,
                                                            double level);
[[nodiscard]] std::unique_ptr<UnaryOpKernel> make_clamp(std::string name, double lo,
                                                        double hi);

}  // namespace bpp
