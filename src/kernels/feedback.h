#pragma once
// Feedback support (paper §III-D) — implemented here as the extension the
// paper sketches: "breaking the feedback loops in the graph using special
// feedback kernels ... providing the initial values for a feedback loop
// can be accomplished by using an initialization kernel which outputs the
// initial values once and then passes on its input values thereafter."
//
// InitialValueKernel is that initialization kernel: it primes the loop
// with one frame of initial pixels (plus the matching EOL/EOF tokens) via
// initial_emissions(), then forwards its input unchanged. It reports
// is_feedback() so the data-flow analysis and topological sort treat its
// incoming channel as a loop back-edge, and it declares its output stream
// statically via feedback_spec().
//
// TemporalMixKernel is a loop body for the canonical use: a per-pixel
// temporal IIR filter y_t = alpha*x_t + (1-alpha)*y_{t-1}. It terminates
// the loop cleanly by forwarding end-of-stream from the external input
// alone (the loop-carried branch would otherwise deadlock shutdown).

#include <string>

#include "core/kernel.h"

namespace bpp {

class InitialValueKernel final : public Kernel {
 public:
  /// @param frame   loop-carried frame extent
  /// @param rate_hz loop-carried frame rate (matches the external input)
  /// @param initial value the primed frame is filled with
  InitialValueKernel(std::string name, Size2 frame, double rate_hz,
                     double initial = 0.0);

  void configure() override;
  [[nodiscard]] std::unique_ptr<Kernel> clone() const override {
    return std::make_unique<InitialValueKernel>(*this);
  }

  [[nodiscard]] bool is_feedback() const override { return true; }
  [[nodiscard]] ParKind parallel_kind() const override { return ParKind::Serial; }
  [[nodiscard]] std::optional<SourceStreamSpec> feedback_spec() const override;
  [[nodiscard]] std::vector<Emission> initial_emissions() const override;

  /// The initialization kernel is the loop's delay element: it must be
  /// able to hold one whole frame of loop-carried data (plus its tokens)
  /// or the cycle deadlocks on channel capacity.
  [[nodiscard]] long pending_capacity() const override {
    return static_cast<long>(frame_.area()) + frame_.h + 4;
  }

 private:
  void pass();

  Size2 frame_;
  double rate_hz_;
  double initial_;
};

class TemporalMixKernel final : public Kernel {
 public:
  TemporalMixKernel(std::string name, double alpha);

  void configure() override;
  [[nodiscard]] std::unique_ptr<Kernel> clone() const override {
    return std::make_unique<TemporalMixKernel>(*this);
  }

  /// Serial: the loop-carried state forbids replication.
  [[nodiscard]] ParKind parallel_kind() const override { return ParKind::Serial; }

 private:
  void mix();
  void on_eos();

  double alpha_;
};

}  // namespace bpp
