#pragma once
// Mirror padding (paper §III-C: "The compiler can then choose to either
// zero-pad or mirror the input...").
//
// Unlike zero padding, mirroring needs lookahead: the first output row
// reflects input row `top`, so emission lags `top` rows behind the input.
// The kernel buffers incoming rows and streams padded rows out in scan
// order as their reflected sources arrive; the bottom border drains at
// end-of-frame. Reflection excludes the edge sample (like Tile::padded
// with mirror=true): out(-1) = in(1).

#include <string>
#include <vector>

#include "core/kernel.h"

namespace bpp {

class MirrorPadKernel final : public Kernel {
 public:
  MirrorPadKernel(std::string name, Border border, Size2 frame);

  void configure() override;
  [[nodiscard]] std::unique_ptr<Kernel> clone() const override {
    return std::make_unique<MirrorPadKernel>(*this);
  }
  void init() override;

  [[nodiscard]] std::string dot_shape() const override { return "invhouse"; }
  [[nodiscard]] ParKind parallel_kind() const override { return ParKind::Serial; }

  [[nodiscard]] Border border() const { return border_; }
  [[nodiscard]] Size2 in_frame() const { return frame_; }
  [[nodiscard]] Size2 out_frame() const {
    return {frame_.w + border_.left + border_.right,
            frame_.h + border_.top + border_.bottom};
  }

  [[nodiscard]] std::optional<StreamInfo> custom_output_stream(
      int out_port, const StreamInfo& in) const override {
    if (out_port != 0) return std::nullopt;
    StreamInfo out = in;
    out.frame = out_frame();
    out.items_per_frame = out.frame.area();
    out.grid = out.frame;
    out.inset.x -= border_.left * in.scale.x;
    out.inset.y -= border_.top * in.scale.y;
    return out;
  }

  /// Row bursts: when input row `top` completes, top+1 padded rows drain.
  [[nodiscard]] long pending_capacity() const override {
    return static_cast<long>(border_.top + 2) * (out_frame().w + 1) + 8;
  }

 private:
  void absorb();
  void on_eol();
  void on_eof();
  void on_eos();

  void emit_ready_rows();
  void emit_row(int out_row);
  [[nodiscard]] static int reflect(int v, int n);

  Border border_;
  Size2 frame_;
  std::vector<std::vector<double>> rows_;  // received input rows this frame
  std::vector<double> cur_;
  int next_out_ = 0;  // next output row to emit
};

}  // namespace bpp
