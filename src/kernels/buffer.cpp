#include "kernels/buffer.h"

#include <algorithm>
#include <sstream>

namespace bpp {

BufferKernel::BufferKernel(std::string name, Size2 in_gran, Size2 out_win,
                           Step2 out_step, Size2 frame)
    : Kernel(std::move(name)),
      in_gran_(in_gran),
      out_win_(out_win),
      out_step_(out_step),
      frame_(frame) {
  if (!in_gran.positive() || !out_win.positive() || !out_step.positive() ||
      !frame.positive())
    throw GraphError(this->name() + ": buffer geometry must be positive");
  if (frame.w % in_gran.w != 0 || frame.h % in_gran.h != 0)
    throw GraphError(this->name() + ": input granularity " + to_string(in_gran) +
                     " does not tile frame " + to_string(frame));
  if (out_win.w > frame.w || out_win.h > frame.h)
    throw GraphError(this->name() + ": output window " + to_string(out_win) +
                     " exceeds frame " + to_string(frame));
  iters_ = iteration_count(frame, out_win, out_step);
  output_slack_ = std::max<long>(8, 2L * iters_.w);
}

std::string BufferKernel::size_annotation() const {
  std::ostringstream os;
  os << '[' << frame_.w << 'x' << ring_rows() << ']';
  return os.str();
}

void BufferKernel::reshape(Size2 new_frame) {
  if (!new_frame.positive() || new_frame.w % in_gran_.w != 0 ||
      new_frame.h % in_gran_.h != 0 || out_win_.w > new_frame.w ||
      out_win_.h > new_frame.h)
    throw GraphError(name() + ": invalid reshape to " + to_string(new_frame));
  frame_ = new_frame;
  iters_ = iteration_count(frame_, out_win_, out_step_);
  output_slack_ = std::max<long>(8, 2L * iters_.w);
  if (configured())
    method_mut("absorb").res.memory_words = storage_words() + 16;
  init();
}

void BufferKernel::configure() {
  create_input("in", in_gran_, {in_gran_.w, in_gran_.h}, {0.0, 0.0});
  create_output("out", out_win_, out_step_);

  auto& absorb = register_method(
      "absorb", Resources{4 + 2L * in_gran_.area(), storage_words() + 16},
      &BufferKernel::absorb);
  method_input(absorb, "in");
  method_output(absorb, "out");

  auto& eol = register_method("eol", Resources{2, 0}, &BufferKernel::on_eol);
  method_input(eol, "in", tok::kEndOfLine);
  auto& eof = register_method("eof", Resources{4, 0}, &BufferKernel::on_eof);
  method_input(eof, "in", tok::kEndOfFrame);
  method_output(eof, "out");
  auto& eos = register_method("eos", Resources{2, 0}, &BufferKernel::on_eos);
  method_input(eos, "in", tok::kEndOfStream);
  method_output(eos, "out");

  init();
}

void BufferKernel::init() {
  ring_.assign(static_cast<size_t>(frame_.w) * ring_rows(), 0.0);
  in_x_ = in_y_ = ex_ = ey_ = 0;
}

double& BufferKernel::cell(int x, int y) {
  return ring_[static_cast<size_t>(y % ring_rows()) * frame_.w + x];
}

double BufferKernel::cell(int x, int y) const {
  return ring_[static_cast<size_t>(y % ring_rows()) * frame_.w + x];
}

bool BufferKernel::pixel_received(int px, int py) const {
  // Rows strictly below the current granule band are complete; within the
  // band, columns left of the write cursor are complete.
  if (py < in_y_) return true;
  if (py >= in_y_ + in_gran_.h) return false;
  return px < in_x_;
}

void BufferKernel::absorb() {
  const Tile& t = read_input("in");
  for (int y = 0; y < in_gran_.h; ++y) {
    const double* src = t.row_ptr(y);
    std::copy(src, src + in_gran_.w, &cell(in_x_, in_y_ + y));
  }
  in_x_ += in_gran_.w;
  if (in_x_ >= frame_.w) {
    in_x_ = 0;
    in_y_ += in_gran_.h;
  }
  emit_ready_windows();
}

void BufferKernel::emit_ready_windows() {
  while (ey_ < iters_.h) {
    const int px = ex_ * out_step_.x;
    const int py = ey_ * out_step_.y;
    if (!pixel_received(px + out_win_.w - 1, py + out_win_.h - 1)) return;
    Tile win(out_win_);
    for (int y = 0; y < out_win_.h; ++y) {
      const double* src = &cell(px, py + y);  // ring rows are contiguous
      std::copy(src, src + out_win_.w, win.row_ptr(y));
    }
    write_output_charged("out", std::move(win), window_charge(ex_, ey_));
    if (++ex_ == iters_.w) {
      ex_ = 0;
      ++ey_;
      emit_token("out", tok::kEndOfLine, ey_ - 1);
    }
  }
}

void BufferKernel::on_eol() {
  if (in_x_ != 0)
    throw ExecutionError(name() + ": end-of-line token arrived mid-row (x=" +
                         std::to_string(in_x_) + ")");
}

void BufferKernel::on_eof() {
  if (in_y_ < frame_.h)
    throw ExecutionError(name() + ": end-of-frame after only " +
                         std::to_string(in_y_) + " of " + std::to_string(frame_.h) +
                         " rows");
  if (ey_ != iters_.h)
    throw ExecutionError(name() + ": frame ended with unemitted windows");
  emit_token("out", tok::kEndOfFrame, trigger_payload());
  in_x_ = in_y_ = ex_ = ey_ = 0;
}

void BufferKernel::on_eos() {
  emit_token("out", tok::kEndOfStream, trigger_payload());
  in_x_ = in_y_ = ex_ = ey_ = 0;
}

}  // namespace bpp
