#pragma once
// Inset (trim) and pad kernels (paper §III-C, Fig. 3, Fig. 8).
//
// When two differently-haloed streams meet at one kernel (median output is
// one pixel larger per side than convolution output), the compiler either
// trims the larger stream (InsetKernel) or zero-pads the smaller one's
// source (PadKernel). The choice is the programmer's policy; the insertion
// and sizing are automatic. Both operate on 1x1 pixel streams and rewrite
// EOL/EOF tokens to the new geometry.

#include <string>

#include "core/kernel.h"

namespace bpp {

/// Drops `border` pixels from each side of a (1x1)-granularity stream.
/// The Fig. 3 annotation "Inset (0,0)[1,1,1,1]" is border {1,1,1,1}.
class InsetKernel final : public Kernel {
 public:
  /// @param frame extent of the incoming stream
  InsetKernel(std::string name, Border border, Size2 frame);

  void configure() override;
  [[nodiscard]] std::unique_ptr<Kernel> clone() const override {
    return std::make_unique<InsetKernel>(*this);
  }
  void init() override;

  [[nodiscard]] std::string dot_shape() const override { return "invhouse"; }
  /// Scan-order FSM: replication would break the position tracking.
  [[nodiscard]] ParKind parallel_kind() const override { return ParKind::Serial; }

  [[nodiscard]] Border border() const { return border_; }
  [[nodiscard]] Size2 in_frame() const { return frame_; }
  [[nodiscard]] Size2 out_frame() const {
    return {frame_.w - border_.left - border_.right,
            frame_.h - border_.top - border_.bottom};
  }

  [[nodiscard]] std::optional<StreamInfo> custom_output_stream(
      int out_port, const StreamInfo& in) const override {
    if (out_port != 0) return std::nullopt;
    StreamInfo out = in;
    out.frame = out_frame();
    out.items_per_frame = out.frame.area();
    out.grid = out.frame;
    out.inset.x += border_.left * in.scale.x;
    out.inset.y += border_.top * in.scale.y;
    return out;
  }

 private:
  void pass();
  void on_eol();
  void on_eof();
  void on_eos();

  Border border_;
  Size2 frame_;
  int x_ = 0, y_ = 0;
};

/// Surrounds a (1x1)-granularity stream with a zero border.
class PadKernel final : public Kernel {
 public:
  PadKernel(std::string name, Border border, Size2 frame);

  void configure() override;
  [[nodiscard]] std::unique_ptr<Kernel> clone() const override {
    return std::make_unique<PadKernel>(*this);
  }
  void init() override;

  [[nodiscard]] std::string dot_shape() const override { return "invhouse"; }
  /// Scan-order FSM: replication would break the position tracking.
  [[nodiscard]] ParKind parallel_kind() const override { return ParKind::Serial; }

  [[nodiscard]] Border border() const { return border_; }
  [[nodiscard]] Size2 in_frame() const { return frame_; }
  [[nodiscard]] Size2 out_frame() const {
    return {frame_.w + border_.left + border_.right,
            frame_.h + border_.top + border_.bottom};
  }

  [[nodiscard]] std::optional<StreamInfo> custom_output_stream(
      int out_port, const StreamInfo& in) const override {
    if (out_port != 0) return std::nullopt;
    StreamInfo out = in;
    out.frame = out_frame();
    out.items_per_frame = out.frame.area();
    out.grid = out.frame;
    out.inset.x -= border_.left * in.scale.x;
    out.inset.y -= border_.top * in.scale.y;
    return out;
  }

  /// Pad bursts (top/bottom border rows) need room for whole rows.
  [[nodiscard]] long pending_capacity() const override {
    return 2L * out_frame().w + 8;
  }

 private:
  void pass();
  void on_eol();
  void on_eof();
  void on_eos();

  void emit_zero_row();

  Border border_;
  Size2 frame_;
  int x_ = 0, y_ = 0;
};

}  // namespace bpp
