#include "kernels/events.h"

namespace bpp {

EventDetectKernel::EventDetectKernel(std::string name, double level,
                                     double max_per_frame)
    : Kernel(std::move(name)), level_(level), max_per_frame_(max_per_frame) {
  if (max_per_frame <= 0.0)
    throw GraphError(this->name() + ": event rate bound must be positive");
}

void EventDetectKernel::configure() {
  create_input("in", {1, 1}, {1, 1}, {0.0, 0.0});
  create_output("out", {1, 1});
  auto& det = register_method("detect", Resources{8, 8},
                              &EventDetectKernel::detect);
  method_input(det, "in");
  method_output(det, "out");
  // §II-C: the user token is declared together with its maximum rate.
  method_token_output(det, "out", tok::kThresholdEvent, max_per_frame_);

  auto& eof = register_method("eof", Resources{3, 0}, &EventDetectKernel::on_eof);
  method_input(eof, "in", tok::kEndOfFrame);
  method_output(eof, "out");
}

void EventDetectKernel::init() {
  above_ = false;
  emitted_this_frame_ = 0;
  emitted_total_ = 0;
  suppressed_total_ = 0;
}

void EventDetectKernel::detect() {
  const Tile& t = read_input("in");
  const bool now_above = t.at(0, 0) > level_;
  if (now_above && !above_) {
    if (emitted_this_frame_ < static_cast<long>(max_per_frame_)) {
      // In order with the data: token follows the crossing pixel.
      write_output("out", t);
      emit_token("out", tok::kThresholdEvent, ++emitted_total_);
      ++emitted_this_frame_;
      above_ = now_above;
      return;
    }
    ++suppressed_total_;  // contract kept: excess crossings are dropped
  }
  above_ = now_above;
  write_output("out", t);
}

void EventDetectKernel::on_eof() {
  emitted_this_frame_ = 0;
  above_ = false;
  emit_token("out", tok::kEndOfFrame, trigger_payload());
}

EventHandlerKernel::EventHandlerKernel(std::string name, long handler_cycles)
    : Kernel(std::move(name)), handler_cycles_(handler_cycles) {}

void EventHandlerKernel::configure() {
  create_input("in", {1, 1}, {1, 1}, {0.0, 0.0});
  create_output("out", {1, 1});
  auto& pass = register_method("pass", Resources{6, 4},
                               &EventHandlerKernel::pass);
  method_input(pass, "in");
  method_output(pass, "out");
  // The paper's point: this handler can do real work because its cost is
  // budgeted from the emitter's declared rate.
  auto& ev = register_method("onEvent", Resources{handler_cycles_, 16},
                             &EventHandlerKernel::on_event);
  method_input(ev, "in", tok::kThresholdEvent);
}

void EventHandlerKernel::init() {
  handled_ = 0;
  gain_ = 1.0;
}

void EventHandlerKernel::pass() {
  Tile out(1, 1);
  out.at(0, 0) = gain_ * read_input("in").at(0, 0);
  write_output("out", out);
}

void EventHandlerKernel::on_event() {
  ++handled_;
  // Model a recalibration: events nudge the gain down.
  gain_ *= 0.99;
}

}  // namespace bpp
