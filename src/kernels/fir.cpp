#include "kernels/fir.h"

#include <cmath>

#include "kernels/simd/simd.h"

namespace bpp {

FirDecimateKernel::FirDecimateKernel(std::string name, std::vector<double> taps,
                                     int decimate)
    : Kernel(std::move(name)),
      taps_(std::move(taps)),
      taps_rev_(taps_.rbegin(), taps_.rend()),
      decimate_(decimate) {
  if (taps_.empty()) throw GraphError(this->name() + ": FIR needs taps");
  if (decimate < 1) throw GraphError(this->name() + ": decimation must be >= 1");
}

void FirDecimateKernel::configure() {
  const int t = taps();
  // Fractional offsets appear naturally for decimating filters
  // (§II-A footnote 2): the output sample sits at the window center in
  // input coordinates, (t-1)/2, scaled by 1/decimate in output space.
  create_input("in", {t, 1}, {decimate_, 1},
               {(t - 1) / 2.0, 0.0});
  create_output("out", {1, 1});
  auto& run = register_method("runFir", Resources{run_cycles(t), t + 6},
                              &FirDecimateKernel::run);
  method_input(run, "in");
  method_output(run, "out");
}

void FirDecimateKernel::run() {
  const Tile& in = read_input("in");
  Tile out(1, 1);
  out.at(0, 0) = simd::ops().dot(in.data(), taps_rev_.data(), taps());
  write_output("out", std::move(out));
}

std::vector<double> moving_average_taps(int n) {
  return std::vector<double>(static_cast<size_t>(n), 1.0 / n);
}

std::vector<double> lowpass_taps(int n, double cutoff) {
  // Hamming-windowed sinc.
  std::vector<double> taps(static_cast<size_t>(n));
  const double mid = (n - 1) / 2.0;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = i - mid;
    const double sinc =
        x == 0.0 ? 2.0 * cutoff : std::sin(2.0 * M_PI * cutoff * x) / (M_PI * x);
    const double win = 0.54 - 0.46 * std::cos(2.0 * M_PI * i / (n - 1));
    taps[static_cast<size_t>(i)] = sinc * win;
    sum += taps[static_cast<size_t>(i)];
  }
  for (double& t : taps) t /= sum;  // unity DC gain
  return taps;
}

}  // namespace bpp
