#pragma once
// Parameterized buffer kernel (paper §III-B).
//
// A buffer is a regular computation kernel implementing a two-dimensional
// circular buffer. It adapts the producer's emission granularity (e.g.
// 1x1 pixels from the application input) to the consumer's windowed access
// pattern (e.g. (5x5)[1,1] for a convolution), emitting one window tile
// per consumer iteration in scan-line order together with regenerated
// end-of-line/end-of-frame tokens. Buffers are sized to double-buffer the
// larger of input or output: `frame_width x 2*max(window_h, granule_h)`
// rows — the `Buffer [20x10]` annotations of Fig. 3/4.
//
// Buffers are inserted automatically by the buffering pass; their
// parallelization is the custom column-split of §IV-C (Fig. 10).

#include <string>
#include <vector>

#include "core/kernel.h"

namespace bpp {

class BufferKernel final : public Kernel {
 public:
  /// @param in_gran granularity of arriving tiles (tiles the frame exactly)
  /// @param out_win window emitted per consumer iteration
  /// @param out_step window advance per iteration
  /// @param frame   extent of the stream this buffer adapts
  BufferKernel(std::string name, Size2 in_gran, Size2 out_win, Step2 out_step,
               Size2 frame);

  void configure() override;
  [[nodiscard]] std::unique_ptr<Kernel> clone() const override {
    return std::make_unique<BufferKernel>(*this);
  }
  void init() override;

  [[nodiscard]] ParKind parallel_kind() const override { return ParKind::Custom; }
  [[nodiscard]] std::string dot_shape() const override { return "parallelogram"; }

  [[nodiscard]] std::optional<StreamInfo> custom_output_stream(
      int out_port, const StreamInfo& in) const override {
    if (out_port != 0) return std::nullopt;
    StreamInfo out = in;  // same frame, rate, inset: only regranulated
    out.item = out_win_;
    out.item_step = out_step_;
    out.items_per_frame = iters_.area();
    out.grid = iters_;
    return out;
  }

  [[nodiscard]] Size2 frame() const { return frame_; }
  [[nodiscard]] Size2 in_granularity() const { return in_gran_; }
  [[nodiscard]] Size2 out_window() const { return out_win_; }
  [[nodiscard]] Step2 out_step() const { return out_step_; }

  /// Ring height in rows (double-buffers the larger of input/output).
  [[nodiscard]] int ring_rows() const {
    return 2 * std::max(out_win_.h, in_gran_.h);
  }
  /// Modeled storage requirement in words: width x ring rows (the paper's
  /// `Buffer [WxR]` annotation).
  [[nodiscard]] long storage_words() const {
    return static_cast<long>(frame_.w) * ring_rows();
  }
  /// Paper-style size annotation, e.g. "[20x10]".
  [[nodiscard]] std::string size_annotation() const;

  /// Re-target this buffer to a narrower frame (used when the buffer-split
  /// pass turns it into the first column slice, §IV-C). Ports are
  /// unchanged; storage and iteration bookkeeping are rebuilt.
  void reshape(Size2 new_frame);

  /// Output-side slack: the double-buffered half of the storage holds two
  /// window-rows of completed windows while downstream is busy. The Fig. 9
  /// reuse experiments shrink this to demonstrate stalls from insufficient
  /// output buffering.
  [[nodiscard]] long pending_capacity() const override { return output_slack_; }
  void set_output_slack(long items) { output_slack_ = std::max(1L, items); }

  /// Reuse-optimized link (Fig. 9): the consumer keeps the overlapping
  /// part of consecutive windows, so only the fresh columns/rows are
  /// charged as transfer. Enabled by the reuse-optimization pass when this
  /// buffer feeds exactly one windowed kernel in stripe order.
  void set_reuse_link(bool on) { reuse_link_ = on; }
  [[nodiscard]] bool reuse_link() const { return reuse_link_; }
  /// Transfer charge for window (wx, wy) under the reuse link model.
  [[nodiscard]] long window_charge(int wx, int wy) const {
    if (!reuse_link_) return out_win_.area();
    if (wx == 0 && wy == 0) return out_win_.area();       // cold start
    if (wx == 0) return out_win_.w * out_step_.y;          // fresh rows
    return out_win_.h * out_step_.x;                       // fresh columns
  }

 private:
  void absorb();   // data arrival: place granule, emit completed windows
  void on_eol();   // producer row boundary: position check only
  void on_eof();   // frame boundary: forward EOF, reset cursors
  void on_eos();   // stream end: forward EOS, reset

  void emit_ready_windows();
  [[nodiscard]] bool pixel_received(int px, int py) const;
  [[nodiscard]] double& cell(int x, int y);
  [[nodiscard]] double cell(int x, int y) const;

  Size2 in_gran_;
  Size2 out_win_;
  Step2 out_step_;
  Size2 frame_;
  Size2 iters_{0, 0};  ///< windows per frame

  // Circular row storage.
  std::vector<double> ring_;
  int in_x_ = 0, in_y_ = 0;  ///< next granule position (pixels)
  int ex_ = 0, ey_ = 0;      ///< next window to emit (window coords)
  long output_slack_ = 8;
  bool reuse_link_ = false;
};

}  // namespace bpp
