#pragma once
// Split, join, and replicate kernels (paper §IV-A, §IV-C, Fig. 10).
//
// Split and join are regular kernels implementing finite state machines
// for distributing data to — and collecting results from — parallelized
// kernel instances:
//  * RoundRobin: one item per branch in turn (data-parallel kernels).
//    The FSM resets at end-of-frame so frames start aligned.
//  * ColumnRanges (split): per scan line, item x goes to every branch
//    whose column range contains x; ranges overlap by the window halo so
//    shared data is replicated to both buffer halves (Fig. 10).
//  * RunLength (join): per scan line, take runs[i] consecutive items from
//    branch i — the collection order for column-split buffers.
// Control tokens are broadcast by split (every branch must see frame
// boundaries) and collapsed to one copy by join.
//
// Replicate copies every item to all branches; it feeds replicated inputs
// (coefficients, bin boundaries) of parallelized kernels.

#include <string>
#include <utility>
#include <vector>

#include "core/kernel.h"

namespace bpp {

class SplitKernel final : public Kernel {
 public:
  enum class Mode { RoundRobin, ColumnRanges };

  /// Round-robin split into `n` branches of `item`-granularity data.
  SplitKernel(std::string name, int n, Size2 item, Step2 step);

  /// Column-range split: per line of `items_per_line` items, item x is
  /// copied to every branch i with ranges[i].first <= x < ranges[i].second.
  SplitKernel(std::string name, std::vector<std::pair<int, int>> ranges,
              int items_per_line, Size2 item, Step2 step);

  void configure() override;
  [[nodiscard]] std::unique_ptr<Kernel> clone() const override {
    return std::make_unique<SplitKernel>(*this);
  }
  void init() override;

  [[nodiscard]] ParKind parallel_kind() const override { return ParKind::Serial; }
  [[nodiscard]] std::string dot_shape() const override { return "diamond"; }

  [[nodiscard]] Mode mode() const { return mode_; }
  [[nodiscard]] int branches() const { return n_; }
  [[nodiscard]] const std::vector<std::pair<int, int>>& ranges() const {
    return ranges_;
  }

 private:
  void route();
  void on_eol();
  void on_eof();
  void on_eos();
  void broadcast(TokenClass cls);

  Mode mode_;
  int n_;
  Size2 item_;
  Step2 step_;
  std::vector<std::pair<int, int>> ranges_;
  int items_per_line_ = 0;

  int rr_ = 0;  ///< next branch (RoundRobin)
  int x_ = 0;   ///< position in line (ColumnRanges)
};

class JoinKernel final : public Kernel {
 public:
  enum class Mode { RoundRobin, RunLength };

  /// Round-robin join from `n` branches.
  JoinKernel(std::string name, int n, Size2 item, Step2 step);

  /// Run-length join: per line, take runs[i] consecutive items from branch
  /// i in order (collects column-split buffer output back in scan order).
  JoinKernel(std::string name, std::vector<int> runs, Size2 item, Step2 step);

  void configure() override;
  [[nodiscard]] std::unique_ptr<Kernel> clone() const override {
    return std::make_unique<JoinKernel>(*this);
  }
  void init() override;

  [[nodiscard]] ParKind parallel_kind() const override { return ParKind::Serial; }
  [[nodiscard]] std::string dot_shape() const override { return "diamond"; }

  [[nodiscard]] std::optional<FireDecision> decide_custom(
      const std::vector<int>& connected, const HeadFn& head) const override;

  [[nodiscard]] Mode mode() const { return mode_; }
  [[nodiscard]] int branches() const { return n_; }
  [[nodiscard]] const std::vector<int>& runs() const { return runs_; }

 private:
  void take();
  void on_eol();
  void on_eof();
  void on_eos();
  void advance();
  void reset_line();

  Mode mode_;
  int n_;
  Size2 item_;
  Step2 step_;
  std::vector<int> runs_;

  int cur_ = 0;    ///< branch currently being drained
  int taken_ = 0;  ///< items taken from cur_ in this run (RunLength)
};

class ReplicateKernel final : public Kernel {
 public:
  ReplicateKernel(std::string name, int n, Size2 item, Step2 step);

  void configure() override;
  [[nodiscard]] std::unique_ptr<Kernel> clone() const override {
    return std::make_unique<ReplicateKernel>(*this);
  }

  [[nodiscard]] ParKind parallel_kind() const override { return ParKind::Serial; }
  [[nodiscard]] std::string dot_shape() const override { return "diamond"; }

  [[nodiscard]] int branches() const { return n_; }

 private:
  void copy_all();

  int n_;
  Size2 item_;
  Step2 step_;
};

}  // namespace bpp
