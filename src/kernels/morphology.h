#pragma once
// Grayscale morphology: windowed minimum (erode) and maximum (dilate),
// the other classic non-linear neighborhood filters beside the median.

#include <string>

#include "core/kernel.h"

namespace bpp {

class MorphologyKernel final : public Kernel {
 public:
  enum class Op { Erode, Dilate };

  MorphologyKernel(std::string name, Op op, int width, int height);

  void configure() override;
  [[nodiscard]] std::unique_ptr<Kernel> clone() const override {
    return std::make_unique<MorphologyKernel>(*this);
  }

  [[nodiscard]] Op op() const { return op_; }

  [[nodiscard]] static long run_cycles(int w, int h) { return 8 + 2L * w * h; }

 private:
  void run();

  Op op_;
  int width_;
  int height_;
};

}  // namespace bpp
