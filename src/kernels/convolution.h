#pragma once
// Convolution kernel — the paper's running example (Fig. 5, Fig. 6).
//
// Two methods: runConvolve fires on each data window; loadCoeff fires when
// a new coefficient tile arrives on the replicated "coeff" input. The two
// methods share the kernel-private coefficient array, which is how control
// (coefficient reload) and data processing communicate.

#include <string>

#include "core/kernel.h"

namespace bpp {

class ConvolutionKernel final : public Kernel {
 public:
  ConvolutionKernel(std::string name, int width, int height);

  void configure() override;
  [[nodiscard]] std::unique_ptr<Kernel> clone() const override {
    return std::make_unique<ConvolutionKernel>(*this);
  }
  void init() override;

  [[nodiscard]] int kwidth() const { return width_; }
  [[nodiscard]] int kheight() const { return height_; }
  [[nodiscard]] bool coeff_loaded() const { return loaded_; }

  /// Until the first coefficients arrive, data windows wait: engines may
  /// deliver the replicated "coeff" stream after the first windows, and
  /// convolving with the placeholder filter would be wrong.
  [[nodiscard]] std::optional<FireDecision> decide_custom(
      const std::vector<int>& connected, const HeadFn& head) const override;

  /// Cycle cost of one runConvolve execution (paper Fig. 6 formula).
  [[nodiscard]] static long run_cycles(int w, int h) { return 10 + 3L * w * h; }

 private:
  void run_convolve();
  void load_coeff();
  void flip_coeff();

  int width_;
  int height_;
  Tile coeff_;
  std::vector<double> coeff_flipped_;  ///< contiguous, both axes reversed
  bool loaded_ = false;
};

}  // namespace bpp
