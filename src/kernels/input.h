#pragma once
// Application input source (paper §II-A, §II-C).
//
// Emits frames pixel-by-pixel in scan-line order at a fixed rate — the
// real-time constraint the compiler must meet — and automatically
// generates end-of-line and end-of-frame control tokens in order with the
// data. A finite run of frames is terminated by one end-of-stream token.

#include <functional>
#include <string>

#include "core/kernel.h"

namespace bpp {

/// Deterministic pixel generator: (frame, x, y) -> value.
using PixelFn = std::function<double(int frame, int x, int y)>;

/// Default generator: smooth gradient plus hash noise, values in [0, 256).
[[nodiscard]] PixelFn default_pixel_fn();

class InputKernel final : public Kernel {
 public:
  /// @param frame   logical frame extent in pixels
  /// @param rate_hz frames per second (the hard real-time constraint)
  /// @param frames  number of frames emitted per execution run
  InputKernel(std::string name, Size2 frame, double rate_hz, int frames,
              PixelFn fn = default_pixel_fn());

  void configure() override;
  [[nodiscard]] std::unique_ptr<Kernel> clone() const override {
    return std::make_unique<InputKernel>(*this);
  }
  void init() override;

  [[nodiscard]] bool is_source() const override { return true; }
  [[nodiscard]] ParKind parallel_kind() const override { return ParKind::Serial; }
  [[nodiscard]] std::optional<SourceStreamSpec> source_spec(int port) const override;
  bool source_poll(SourceEmission& out) override;

  [[nodiscard]] Size2 frame() const { return frame_; }
  [[nodiscard]] double rate_hz() const { return rate_hz_; }
  [[nodiscard]] int frames() const { return frames_; }
  [[nodiscard]] const PixelFn& pixel_fn() const { return fn_; }

  /// Seconds between consecutive pixel emissions.
  [[nodiscard]] double pixel_period() const {
    return 1.0 / (rate_hz_ * frame_.area());
  }

 private:
  enum class Phase { Pixel, Eol, Eof, Eos, Done };

  Size2 frame_;
  double rate_hz_;
  int frames_;
  PixelFn fn_;

  // Emission cursor.
  Phase phase_ = Phase::Pixel;
  int f_ = 0, x_ = 0, y_ = 0;
  long emitted_pixels_ = 0;
};

}  // namespace bpp
