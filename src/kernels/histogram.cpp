#include "kernels/histogram.h"

#include <algorithm>

#include "kernels/simd/simd.h"

namespace bpp {

HistogramKernel::HistogramKernel(std::string name, int bins)
    : Kernel(std::move(name)), bins_(bins) {
  if (bins < 1) throw GraphError(this->name() + ": need >= 1 bin");
}

void HistogramKernel::configure() {
  create_input("in", {1, 1}, {1, 1}, {0.0, 0.0});
  create_output("out", {bins_, 1}, {bins_, 1});
  create_input("bins", {bins_, 1}, {bins_, 1}, {0.0, 0.0});
  set_replicated("bins");
  auto& cfg = register_method("configureBins", Resources{2L * bins_ + 3, bins_},
                              &HistogramKernel::configure_bins);
  method_input(cfg, "bins");

  // count() runs when data arrives; on average the bin search goes half
  // way, so the run time is ~bins/2 (paper Fig. 7).
  auto& cnt = register_method("count", Resources{bins_ / 2 + 5, 0},
                              &HistogramKernel::count);
  method_input(cnt, "in");

  // finishCount() runs when an end-of-frame token is received.
  auto& fin = register_method("finishCount", Resources{3L * bins_ + 3, 2L * bins_ + 3},
                              &HistogramKernel::finish_count);
  method_input(fin, "in", tok::kEndOfFrame);
  method_output(fin, "out");

  // The kernel's only output is token-paced (finishCount), so end-of-stream
  // must be forwarded explicitly for downstream kernels to terminate.
  auto& eos = register_method("eos", Resources{2, 0}, &HistogramKernel::on_eos);
  method_input(eos, "in", tok::kEndOfStream);
  method_output(eos, "out");

  init();
}

void HistogramKernel::init() {
  uppers_.assign(static_cast<size_t>(bins_), 0.0);
  for (int i = 0; i < bins_; ++i)
    uppers_[static_cast<size_t>(i)] = 256.0 * (i + 1) / bins_;
  counts_.assign(static_cast<size_t>(bins_), 0);
  ranges_loaded_ = false;
  sorted_ = true;  // the default uniform bounds are ascending
}

std::optional<FireDecision> HistogramKernel::decide_custom(
    const std::vector<int>& connected, const HeadFn& head) const {
  if (ranges_loaded_) return std::nullopt;
  const int bi = input_index("bins");
  const bool bins_connected =
      std::find(connected.begin(), connected.end(), bi) != connected.end();
  if (!bins_connected) return std::nullopt;  // default uniform ranges apply
  const Item* b = head(bi);
  if (b && is_data(*b)) return std::nullopt;  // configureBins can fire
  const Item* in = head(input_index("in"));
  if (in) return FireDecision{};  // hold data and frame tokens until ranges load
  return std::nullopt;
}

Tile HistogramKernel::uniform_bins(int bins, double lo, double hi) {
  Tile t(bins, 1);
  for (int i = 0; i < bins; ++i) t.at(i, 0) = lo + (hi - lo) * (i + 1) / bins;
  return t;
}

int HistogramKernel::find_bin(double v) const {
  const simd::Ops& o = simd::ops();
  return sorted_ ? o.find_bin_sorted(v, uppers_.data(), bins_)
                 : o.find_bin(v, uppers_.data(), bins_);
}

void HistogramKernel::count() {
  const double value = read_input("in").at(0, 0);
  ++counts_[static_cast<size_t>(find_bin(value))];
}

void HistogramKernel::finish_count() {
  Tile out(bins_, 1);
  for (int i = 0; i < bins_; ++i) {
    out.at(i, 0) = static_cast<double>(counts_[static_cast<size_t>(i)]);
    counts_[static_cast<size_t>(i)] = 0;
  }
  write_output("out", std::move(out));
  // The per-frame result keeps its frame boundary: downstream kernels
  // (and throughput measurement) see where each frame's counts end.
  emit_token("out", tok::kEndOfFrame, trigger_payload());
}

void HistogramKernel::on_eos() {
  emit_token("out", tok::kEndOfStream, trigger_payload());
}

void HistogramKernel::configure_bins() {
  const Tile& b = read_input("bins");
  for (int i = 0; i < bins_; ++i) {
    uppers_[static_cast<size_t>(i)] = b.at(i, 0);
    counts_[static_cast<size_t>(i)] = 0;
  }
  // Only the searched bounds matter: the last bin catches the rest.
  sorted_ = std::is_sorted(uppers_.begin(),
                           uppers_.begin() + std::max(bins_ - 1, 0));
  ranges_loaded_ = true;
}

HistogramMergeKernel::HistogramMergeKernel(std::string name, int bins)
    : Kernel(std::move(name)), bins_(bins) {
  if (bins < 1) throw GraphError(this->name() + ": need >= 1 bin");
}

void HistogramMergeKernel::configure() {
  create_input("partial", {bins_, 1}, {bins_, 1}, {0.0, 0.0});
  create_output("out", {bins_, 1}, {bins_, 1});
  auto& m = register_method("merge", Resources{2L * bins_ + 5, 2L * bins_},
                            &HistogramMergeKernel::merge);
  method_input(m, "partial");
  method_output(m, "out");
  init();
}

void HistogramMergeKernel::init() {
  received_ = 0;
  acc_.assign(static_cast<size_t>(bins_), 0.0);
}

void HistogramMergeKernel::on_upstream_parallelized(int input_idx, int factor) {
  if (input_idx == input_index("partial") && factor >= 1) expected_ = factor;
}

void HistogramMergeKernel::merge() {
  const Tile& p = read_input("partial");
  simd::ops().add(acc_.data(), p.data(), acc_.data(), bins_);
  if (++received_ < expected_) return;
  Tile out(bins_, 1);
  for (int i = 0; i < bins_; ++i) {
    out.at(i, 0) = acc_[static_cast<size_t>(i)];
    acc_[static_cast<size_t>(i)] = 0.0;
  }
  received_ = 0;
  write_output("out", std::move(out));
}

}  // namespace bpp
