#pragma once
// Variable-work kernel (the paper's canonical future-work case): "a motion
// vector search, where ... the processing time per motion vector var[ies]
// from frame to frame. Incorporating such a kernel into this framework
// requires extending the system to support bounds on real-time processing
// requirements and runtime exceptions to indicate when a kernel has
// exceeded its allocated resources."
//
// MotionEstimateKernel consumes 4x4 blocks, holds the previous frame
// internally, and runs an early-exit SAD search over a +-radius window in
// the previous frame. Each firing reports its actual cycles via
// report_cycles(); the declared method cycles are the bound the compiler
// budgets, and the simulator raises resource exceptions past it.

#include <string>
#include <vector>

#include "core/kernel.h"

namespace bpp {

class MotionEstimateKernel final : public Kernel {
 public:
  /// @param frame        pixel extent of the stream (multiple of 4)
  /// @param radius       search radius in pixels
  /// @param bound_cycles declared per-block cycle budget; <=0 derives the
  ///                     full-search worst case automatically
  MotionEstimateKernel(std::string name, Size2 frame, int radius,
                       long bound_cycles = 0);

  void configure() override;
  [[nodiscard]] std::unique_ptr<Kernel> clone() const override {
    return std::make_unique<MotionEstimateKernel>(*this);
  }
  void init() override;

  /// Previous-frame state makes replication incorrect.
  [[nodiscard]] ParKind parallel_kind() const override { return ParKind::Serial; }

  static constexpr int block = 4;
  /// Cycle model: per candidate one SAD of 16 pixels (~3 cycles each).
  [[nodiscard]] static long candidate_cycles() { return 16 * 3; }
  [[nodiscard]] long worst_case_cycles() const {
    const long cands = (2L * radius_ + 1) * (2L * radius_ + 1);
    return 20 + cands * candidate_cycles();
  }

 private:
  void estimate();
  void on_eof();
  void on_eos();

  Size2 frame_;
  int radius_;
  long bound_;
  Tile prev_;
  Tile cur_;
  bool have_prev_ = false;
  int bx_ = 0, by_ = 0;  // block cursor
};

}  // namespace bpp
