#include "kernels/morphology.h"

#include "kernels/simd/simd.h"

namespace bpp {

MorphologyKernel::MorphologyKernel(std::string name, Op op, int width,
                                   int height)
    : Kernel(std::move(name)), op_(op), width_(width), height_(height) {
  if (width < 1 || height < 1)
    throw GraphError(this->name() + ": morphology window must be >= 1x1");
}

void MorphologyKernel::configure() {
  create_input("in", {width_, height_}, {1, 1},
               {static_cast<double>(width_ / 2), static_cast<double>(height_ / 2)});
  create_output("out", {1, 1});
  auto& run = register_method(op_ == Op::Erode ? "erode" : "dilate",
                              Resources{run_cycles(width_, height_), 8},
                              &MorphologyKernel::run);
  method_input(run, "in");
  method_output(run, "out");
}

void MorphologyKernel::run() {
  const Tile& in = read_input("in");
  const int n = static_cast<int>(in.words());
  Tile out(1, 1);
  out.at(0, 0) = op_ == Op::Erode ? simd::ops().reduce_min(in.data(), n)
                                  : simd::ops().reduce_max(in.data(), n);
  write_output("out", std::move(out));
}

}  // namespace bpp
