#include "kernels/morphology.h"

#include <algorithm>
#include <cmath>

namespace bpp {

MorphologyKernel::MorphologyKernel(std::string name, Op op, int width,
                                   int height)
    : Kernel(std::move(name)), op_(op), width_(width), height_(height) {
  if (width < 1 || height < 1)
    throw GraphError(this->name() + ": morphology window must be >= 1x1");
}

void MorphologyKernel::configure() {
  create_input("in", {width_, height_}, {1, 1},
               {std::floor(width_ / 2.0), std::floor(height_ / 2.0)});
  create_output("out", {1, 1});
  auto& run = register_method(op_ == Op::Erode ? "erode" : "dilate",
                              Resources{run_cycles(width_, height_), 8},
                              &MorphologyKernel::run);
  method_input(run, "in");
  method_output(run, "out");
}

void MorphologyKernel::run() {
  const Tile& in = read_input("in");
  double v = in.at(0, 0);
  for (int y = 0; y < height_; ++y)
    for (int x = 0; x < width_; ++x)
      v = op_ == Op::Erode ? std::min(v, in.at(x, y)) : std::max(v, in.at(x, y));
  Tile out(1, 1);
  out.at(0, 0) = v;
  write_output("out", std::move(out));
}

}  // namespace bpp
