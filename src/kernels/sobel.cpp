#include "kernels/sobel.h"

#include <cmath>

namespace bpp {

SobelKernel::SobelKernel(std::string name) : Kernel(std::move(name)) {}

void SobelKernel::configure() {
  create_input("in", {3, 3}, {1, 1}, {1.0, 1.0});
  create_output("out", {1, 1});
  auto& run = register_method("sobel", Resources{10 + 4L * 9, 8}, &SobelKernel::run);
  method_input(run, "in");
  method_output(run, "out");
}

double SobelKernel::gradient_magnitude(const Tile& w) {
  const double gx = (w.at(2, 0) + 2 * w.at(2, 1) + w.at(2, 2)) -
                    (w.at(0, 0) + 2 * w.at(0, 1) + w.at(0, 2));
  const double gy = (w.at(0, 2) + 2 * w.at(1, 2) + w.at(2, 2)) -
                    (w.at(0, 0) + 2 * w.at(1, 0) + w.at(2, 0));
  return std::abs(gx) + std::abs(gy);
}

void SobelKernel::run() {
  Tile out(1, 1);
  out.at(0, 0) = gradient_magnitude(read_input("in"));
  write_output("out", std::move(out));
}

}  // namespace bpp
