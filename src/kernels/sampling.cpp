#include "kernels/sampling.h"

namespace bpp {

DownsampleKernel::DownsampleKernel(std::string name, int factor)
    : Kernel(std::move(name)), factor_(factor) {
  if (factor < 1) throw GraphError(this->name() + ": factor must be >= 1");
}

void DownsampleKernel::configure() {
  // The averaged sample logically sits at the window centroid, a
  // fractional (f-1)/2 offset from the window origin.
  const double c = (factor_ - 1) / 2.0;
  create_input("in", {factor_, factor_}, {factor_, factor_}, {c, c});
  create_output("out", {1, 1});
  auto& run = register_method("run", Resources{5 + 2L * factor_ * factor_, 4},
                              &DownsampleKernel::run);
  method_input(run, "in");
  method_output(run, "out");
}

void DownsampleKernel::run() {
  const Tile& in = read_input("in");
  double sum = 0.0;
  for (int y = 0; y < factor_; ++y) {
    const double* row = in.row_ptr(y);
    for (int x = 0; x < factor_; ++x) sum += row[x];
  }
  Tile out(1, 1);
  out.at(0, 0) = sum / (factor_ * factor_);
  write_output("out", std::move(out));
}

UpsampleKernel::UpsampleKernel(std::string name, int factor)
    : Kernel(std::move(name)), factor_(factor) {
  if (factor < 1) throw GraphError(this->name() + ": factor must be >= 1");
}

void UpsampleKernel::configure() {
  create_input("in", {1, 1}, {1, 1}, {0.0, 0.0});
  create_output("out", {factor_, factor_}, {factor_, factor_});
  auto& run = register_method("run", Resources{5 + 2L * factor_ * factor_, 4},
                              &UpsampleKernel::run);
  method_input(run, "in");
  method_output(run, "out");
}

void UpsampleKernel::run() {
  const double v = read_input("in").at(0, 0);
  write_output("out", Tile({factor_, factor_}, v));
}

}  // namespace bpp
