#pragma once
// Error types thrown by graph construction, analysis, and execution.

#include <stdexcept>
#include <string>

namespace bpp {

/// Base class for all errors raised by the block-parallel framework.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when an application graph is structurally invalid (dangling
/// ports, duplicate names, cycles without feedback kernels, ...).
class GraphError : public Error {
 public:
  using Error::Error;
};

/// Raised when a compiler analysis fails (window larger than frame,
/// inconsistent iteration counts, unalignable inputs, ...).
class AnalysisError : public Error {
 public:
  using Error::Error;
};

/// Raised when kernel code misuses the runtime API (reading an input the
/// triggering method is not registered on, writing a wrongly-sized tile).
class ExecutionError : public Error {
 public:
  using Error::Error;
};

}  // namespace bpp
