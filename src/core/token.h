#pragma once
// Control tokens (paper §II-C).
//
// Tokens travel in-order with the data on stream channels. The application
// inputs automatically generate end-of-line and end-of-frame tokens; an
// end-of-stream token is appended by sources when a finite run completes so
// that executions terminate cleanly. Kernels may define further token
// classes, but must declare the maximum rate at which they generate them so
// the compiler can account for the resources consumed handling them.

#include <cstdint>
#include <string>
#include <variant>

#include "core/tile.h"

namespace bpp {

/// Identifier of a control-token class. Values below kFirstUserToken are
/// reserved for the framework.
using TokenClass = int;

namespace tok {
inline constexpr TokenClass kEndOfLine = 0;    ///< emitted after each input row
inline constexpr TokenClass kEndOfFrame = 1;   ///< emitted after each input frame
inline constexpr TokenClass kEndOfStream = 2;  ///< emitted once when a finite input run ends
inline constexpr TokenClass kFirstUser = 8;    ///< first id available to applications
}  // namespace tok

[[nodiscard]] std::string token_class_name(TokenClass cls);

/// A control token instance moving through a channel.
struct ControlToken {
  TokenClass cls = tok::kEndOfFrame;
  /// Optional small payload (e.g. the index of the frame just completed).
  std::int64_t payload = 0;

  friend bool operator==(const ControlToken&, const ControlToken&) = default;
};

/// A channel item: either a data tile or a control token, in FIFO order.
using Item = std::variant<Tile, ControlToken>;

[[nodiscard]] inline bool is_data(const Item& it) {
  return std::holds_alternative<Tile>(it);
}
[[nodiscard]] inline bool is_token(const Item& it) {
  return std::holds_alternative<ControlToken>(it);
}
[[nodiscard]] inline const Tile& as_tile(const Item& it) {
  return std::get<Tile>(it);
}
[[nodiscard]] inline const ControlToken& as_token(const Item& it) {
  return std::get<ControlToken>(it);
}

/// Number of machine words an item occupies when read or written, used by
/// the timing model. Control tokens cost one word.
[[nodiscard]] inline long item_words(const Item& it) {
  return is_data(it) ? as_tile(it).words() : 1;
}

}  // namespace bpp
