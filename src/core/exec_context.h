#pragma once
// Execution context: the engine<->kernel interface for one method firing.
//
// Both the timing-accurate simulator (src/sim) and the threaded host
// runtime (src/runtime) drive kernels through this structure: they place
// the triggering items here, invoke the method, and collect the emissions
// the method produced. Emissions are drained to channels by the engine as
// space allows, which is what models output back-pressure (Fig. 9(b)).

#include <utility>
#include <vector>

#include "core/token.h"

namespace bpp {

struct Emission {
  int port = -1;  ///< output-port index on the emitting kernel
  Item item;
  /// Words actually transferred for this item; -1 means the full item.
  /// Reuse-optimized buffer links (Fig. 9) emit whole windows but only
  /// transfer the columns the consumer has not already seen.
  long charge_words = -1;
};

class ExecContext {
 public:
  /// Engine side: bind the item consumed from input port `port`.
  void bind_input(int port, const Item* item) {
    if (port >= static_cast<int>(inputs_.size())) inputs_.resize(port + 1, nullptr);
    inputs_[static_cast<size_t>(port)] = item;
  }

  /// Engine side: the token class that triggered a token method, or -1.
  void set_trigger_token(TokenClass cls, std::int64_t payload = 0) {
    trigger_token_ = cls;
    trigger_payload_ = payload;
  }

  [[nodiscard]] const Item* input(int port) const {
    if (port < 0 || port >= static_cast<int>(inputs_.size())) return nullptr;
    return inputs_[static_cast<size_t>(port)];
  }

  [[nodiscard]] TokenClass trigger_token() const { return trigger_token_; }
  [[nodiscard]] std::int64_t trigger_payload() const { return trigger_payload_; }

  void emit(int port, Item item, long charge_words = -1) {
    emissions_.push_back({port, std::move(item), charge_words});
  }

  [[nodiscard]] std::vector<Emission>& emissions() { return emissions_; }
  [[nodiscard]] const std::vector<Emission>& emissions() const { return emissions_; }

  /// Dynamic-resource extension (the paper's conclusion): a method with
  /// input-dependent work reports its actual cycles here; the declared
  /// Resources::cycles become its *bound*. The simulator times the firing
  /// with the reported value and raises a runtime resource exception when
  /// the bound is exceeded.
  void report_dynamic_cycles(long cycles) { dynamic_cycles_ = cycles; }
  [[nodiscard]] long dynamic_cycles() const { return dynamic_cycles_; }
  [[nodiscard]] bool has_dynamic_cycles() const { return dynamic_cycles_ >= 0; }

  void reset() {
    inputs_.clear();
    emissions_.clear();
    trigger_token_ = -1;
    trigger_payload_ = 0;
    dynamic_cycles_ = -1;
  }

 private:
  std::vector<const Item*> inputs_;
  std::vector<Emission> emissions_;
  TokenClass trigger_token_ = -1;
  std::int64_t trigger_payload_ = 0;
  long dynamic_cycles_ = -1;
};

}  // namespace bpp
