#pragma once
// Structural validation of application graphs, run before any analysis.

#include <string>
#include <vector>

#include "core/graph.h"

namespace bpp {

/// Returns a list of human-readable problems; empty means the graph is
/// structurally sound (all inputs connected and feeding a method, all
/// outputs connected, sources well-specified, no unbroken cycles).
[[nodiscard]] std::vector<std::string> validate(const Graph& g);

/// Throws GraphError listing every problem found.
void validate_or_throw(const Graph& g);

}  // namespace bpp
