#pragma once
// Application graph (paper §II): kernels connected by FIFO stream channels,
// plus data-dependency edges that bound parallelism (§IV-B).
//
// The graph is the single IR shared by the programmer-facing DSL, every
// compiler pass, and both execution engines. Compiler passes mutate it by
// adding kernels and rewiring channels; kernel ids stay stable and
// disconnected channels are tombstoned so that analysis results keyed by id
// survive across passes.

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/kernel.h"

namespace bpp {

using KernelId = int;
using ChannelId = int;

struct Channel {
  KernelId src_kernel = -1;
  int src_port = -1;  ///< output-port index on src_kernel
  KernelId dst_kernel = -1;
  int dst_port = -1;  ///< input-port index on dst_kernel
  bool alive = true;
};

/// A data-dependency edge: the parallelism of `dst` may not exceed the
/// parallelism chosen for `src` (paper §IV-B, Fig. 1(b)).
struct DepEdge {
  KernelId src = -1;
  KernelId dst = -1;
};

class Graph {
 public:
  Graph() = default;
  Graph(Graph&&) = default;
  Graph& operator=(Graph&&) = default;

  /// Construct a kernel in place, configure it, and add it to the graph.
  template <class K, class... Args>
  K& add(Args&&... args) {
    auto k = std::make_unique<K>(std::forward<Args>(args)...);
    K& ref = *k;
    add_kernel(std::move(k));
    return ref;
  }

  /// Add a pre-built kernel (configures it if needed). Names must be unique.
  Kernel& add_kernel(std::unique_ptr<Kernel> k);

  /// Connect output `out` of `src` to input `in` of `dst`. Outputs may fan
  /// out to several channels; each input accepts exactly one live channel.
  ChannelId connect(const Kernel& src, const std::string& out, const Kernel& dst,
                    const std::string& in);
  ChannelId connect(KernelId src, int out_port, KernelId dst, int in_port);

  /// Tombstone a channel (used when passes splice kernels into an edge).
  void disconnect(ChannelId c);

  /// Add a data-dependency edge limiting dst's parallelism to src's.
  void add_dependency(const Kernel& src, const Kernel& dst);
  void add_dependency(KernelId src, KernelId dst);

  // ---- Lookup ----

  [[nodiscard]] int kernel_count() const { return static_cast<int>(kernels_.size()); }
  [[nodiscard]] Kernel& kernel(KernelId id) { return *kernels_.at(static_cast<size_t>(id)); }
  [[nodiscard]] const Kernel& kernel(KernelId id) const {
    return *kernels_.at(static_cast<size_t>(id));
  }
  [[nodiscard]] KernelId id_of(const Kernel& k) const;
  [[nodiscard]] KernelId find(const std::string& name) const;  ///< -1 if absent
  [[nodiscard]] Kernel& by_name(const std::string& name);
  [[nodiscard]] const Kernel& by_name(const std::string& name) const {
    return const_cast<Graph*>(this)->by_name(name);
  }

  [[nodiscard]] int channel_count() const { return static_cast<int>(channels_.size()); }
  [[nodiscard]] const Channel& channel(ChannelId c) const {
    return channels_.at(static_cast<size_t>(c));
  }
  [[nodiscard]] const std::vector<Channel>& channels() const { return channels_; }
  [[nodiscard]] const std::vector<DepEdge>& dependencies() const { return dep_edges_; }

  /// Live channels leaving (kernel, output port).
  [[nodiscard]] std::vector<ChannelId> out_channels(KernelId k, int port) const;
  /// All live channels leaving any output of `k`.
  [[nodiscard]] std::vector<ChannelId> out_channels(KernelId k) const;
  /// The live channel feeding (kernel, input port), or nullopt.
  [[nodiscard]] std::optional<ChannelId> in_channel(KernelId k, int port) const;
  /// All live channels entering any input of `k`.
  [[nodiscard]] std::vector<ChannelId> in_channels(KernelId k) const;

  /// Kernel ids of all sources (is_source() == true).
  [[nodiscard]] std::vector<KernelId> sources() const;
  /// Kernel ids with no live outgoing channels (application outputs).
  [[nodiscard]] std::vector<KernelId> sinks() const;

  /// Topological order over live channels. Channels entering feedback
  /// kernels are ignored so that feedback loops (§III-D) do not prevent
  /// ordering. Throws GraphError on any other cycle.
  [[nodiscard]] std::vector<KernelId> topo_order() const;

  /// Generate a fresh kernel name based on `base` (base, base_1, base_2...).
  [[nodiscard]] std::string unique_name(const std::string& base) const;

  /// Deep copy: clones every kernel (including its current configuration
  /// and private state) and duplicates channels and dependency edges with
  /// identical ids. Lets benchmarks compile one application under several
  /// policies.
  [[nodiscard]] Graph clone() const;

 private:
  std::vector<std::unique_ptr<Kernel>> kernels_;
  std::vector<Channel> channels_;
  std::vector<DepEdge> dep_edges_;
};

}  // namespace bpp
