#pragma once
// Kernel methods (paper §II-B).
//
// A kernel can register several computation methods, each triggered either
// by data arriving on a disjoint set of inputs or by a control token of a
// given class (§II-C). Methods share the kernel's private state, which is
// how control handling (e.g. histogram finishCount) communicates with data
// processing (count). Each method declares the resources one execution
// consumes so the compiler can size the parallelization (§IV).

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/token.h"

namespace bpp {

class Kernel;

/// Resources consumed by one execution of a method.
struct Resources {
  long cycles = 0;        ///< compute cycles per invocation
  long memory_words = 0;  ///< state memory held while the kernel is resident

  friend constexpr bool operator==(const Resources&, const Resources&) = default;
};

/// The body of a method. It receives the kernel instance so that clones of
/// a kernel (made during parallelization) re-bind automatically.
using MethodBody = std::function<void(Kernel&)>;

/// A declared control-token emission (paper §II-C): kernels may define
/// their own token classes "as long as they specify the maximum rate at
/// which they can be generated", so the compiler can allocate resources
/// for the methods that handle them.
struct TokenEmission {
  int port = -1;
  TokenClass cls = 0;
  double max_per_frame = 0.0;
};

struct MethodDef {
  std::string name;
  Resources res;
  /// Input-port indices whose data (or token) triggers this method.
  std::vector<int> inputs;
  /// If set, the method fires on this token class instead of on data.
  std::optional<TokenClass> trigger_token;
  /// Output-port indices this method may write.
  std::vector<int> outputs;
  /// User control tokens this method may emit, with their rate bounds.
  std::vector<TokenEmission> token_outputs;
  MethodBody body;

  [[nodiscard]] bool token_triggered() const { return trigger_token.has_value(); }
};

}  // namespace bpp
