#pragma once
// Tile: the unit of data moved over stream channels.
//
// A tile is a dense 2-D array of doubles in row-major order. After the
// buffering pass every channel carries exactly one tile of the consumer's
// declared window size per iteration, so the tile shape on a channel is an
// invariant checked at execution time.

#include <cassert>
#include <cstddef>
#include <vector>

#include "core/geometry.h"

namespace bpp {

class Tile {
 public:
  Tile() = default;
  Tile(int w, int h) : size_{w, h}, data_(static_cast<size_t>(w) * h, 0.0) {
    assert(w >= 0 && h >= 0);
  }
  explicit Tile(Size2 s) : Tile(s.w, s.h) {}
  Tile(Size2 s, double fill)
      : size_(s), data_(static_cast<size_t>(s.w) * s.h, fill) {}

  [[nodiscard]] Size2 size() const { return size_; }
  [[nodiscard]] int width() const { return size_.w; }
  [[nodiscard]] int height() const { return size_.h; }
  [[nodiscard]] long words() const { return size_.area(); }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  [[nodiscard]] double& at(int x, int y) {
    assert(x >= 0 && x < size_.w && y >= 0 && y < size_.h);
    return data_[static_cast<size_t>(y) * size_.w + x];
  }
  [[nodiscard]] double at(int x, int y) const {
    assert(x >= 0 && x < size_.w && y >= 0 && y < size_.h);
    return data_[static_cast<size_t>(y) * size_.w + x];
  }

  [[nodiscard]] double* data() { return data_.data(); }
  [[nodiscard]] const double* data() const { return data_.data(); }

  [[nodiscard]] std::vector<double>& raw() { return data_; }
  [[nodiscard]] const std::vector<double>& raw() const { return data_; }

  /// Copies the sub-rectangle [x0, x0+s.w) x [y0, y0+s.h) into a new tile.
  [[nodiscard]] Tile crop(int x0, int y0, Size2 s) const {
    assert(x0 >= 0 && y0 >= 0 && x0 + s.w <= size_.w && y0 + s.h <= size_.h);
    Tile out(s);
    for (int y = 0; y < s.h; ++y)
      for (int x = 0; x < s.w; ++x) out.at(x, y) = at(x0 + x, y0 + y);
    return out;
  }

  /// Returns a copy of this tile surrounded by a zero (or mirrored) border.
  [[nodiscard]] Tile padded(const Border& b, bool mirror = false) const {
    Tile out(size_.w + b.left + b.right, size_.h + b.top + b.bottom);
    for (int y = 0; y < out.height(); ++y) {
      for (int x = 0; x < out.width(); ++x) {
        int sx = x - b.left;
        int sy = y - b.top;
        if (mirror) {
          sx = reflect(sx, size_.w);
          sy = reflect(sy, size_.h);
          out.at(x, y) = at(sx, sy);
        } else if (sx >= 0 && sx < size_.w && sy >= 0 && sy < size_.h) {
          out.at(x, y) = at(sx, sy);
        }
      }
    }
    return out;
  }

  friend bool operator==(const Tile& a, const Tile& b) {
    return a.size_ == b.size_ && a.data_ == b.data_;
  }

 private:
  static int reflect(int v, int n) {
    if (n == 1) return 0;
    while (v < 0 || v >= n) {
      if (v < 0) v = -v;
      if (v >= n) v = 2 * n - 2 - v;
    }
    return v;
  }

  Size2 size_{0, 0};
  std::vector<double> data_;
};

}  // namespace bpp
