#pragma once
// Tile: the unit of data moved over stream channels.
//
// A tile is a dense 2-D array of doubles in row-major order. After the
// buffering pass every channel carries exactly one tile of the consumer's
// declared window size per iteration, so the tile shape on a channel is an
// invariant checked at execution time.
//
// Storage contract (the SIMD backend relies on this):
//   - data() is aligned to kAlignBytes (one cache line, enough for any
//     vector width up to AVX-512);
//   - the allocation extends kPadDoubles zero-initialized doubles past the
//     last element, so a row pointer may be *read* up to one vector width
//     beyond the row end (the over-read lands in the next row or in the
//     tail pad, never outside the allocation). Writes past a row end are
//     never allowed;
//   - rows are contiguous with stride() == width() doubles (no inter-row
//     padding), so the whole tile is also one contiguous span of words().

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstring>
#include <new>
#include <vector>

#include "core/geometry.h"

namespace bpp {

class Tile {
 public:
  /// Doubles of readable (zeroed) slack past the last element.
  static constexpr int kPadDoubles = 8;
  /// Alignment of data() in bytes.
  static constexpr std::size_t kAlignBytes = 64;

  Tile() = default;
  Tile(int w, int h) : size_{w, h} {
    assert(w >= 0 && h >= 0);
    if (area() > 0) allocate(0.0);
  }
  explicit Tile(Size2 s) : Tile(s.w, s.h) {}
  Tile(Size2 s, double fill) : size_(s) {
    if (area() > 0) allocate(fill);
  }

  Tile(const Tile& o) : size_(o.size_) {
    if (o.data_) {
      allocate_raw();
      std::memcpy(data_, o.data_, (area() + kPadDoubles) * sizeof(double));
    }
  }
  Tile(Tile&& o) noexcept : size_(o.size_), data_(o.data_) {
    o.size_ = {0, 0};
    o.data_ = nullptr;
  }
  Tile& operator=(const Tile& o) {
    if (this != &o) {
      Tile tmp(o);
      swap(tmp);
    }
    return *this;
  }
  Tile& operator=(Tile&& o) noexcept {
    if (this != &o) {
      release();
      size_ = o.size_;
      data_ = o.data_;
      o.size_ = {0, 0};
      o.data_ = nullptr;
    }
    return *this;
  }
  ~Tile() { release(); }

  void swap(Tile& o) noexcept {
    std::swap(size_, o.size_);
    std::swap(data_, o.data_);
  }

  [[nodiscard]] Size2 size() const { return size_; }
  [[nodiscard]] int width() const { return size_.w; }
  [[nodiscard]] int height() const { return size_.h; }
  [[nodiscard]] long words() const { return size_.area(); }
  [[nodiscard]] bool empty() const { return data_ == nullptr; }

  [[nodiscard]] double& at(int x, int y) {
    assert(x >= 0 && x < size_.w && y >= 0 && y < size_.h);
    return data_[static_cast<std::size_t>(y) * size_.w + x];
  }
  [[nodiscard]] double at(int x, int y) const {
    assert(x >= 0 && x < size_.w && y >= 0 && y < size_.h);
    return data_[static_cast<std::size_t>(y) * size_.w + x];
  }

  [[nodiscard]] double* data() { return data_; }
  [[nodiscard]] const double* data() const { return data_; }

  /// First element of row `y`; rows are contiguous, stride() apart.
  [[nodiscard]] double* row_ptr(int y) {
    assert(y >= 0 && y < size_.h);
    return data_ + static_cast<std::size_t>(y) * size_.w;
  }
  [[nodiscard]] const double* row_ptr(int y) const {
    assert(y >= 0 && y < size_.h);
    return data_ + static_cast<std::size_t>(y) * size_.w;
  }
  /// Doubles between consecutive row starts (== width(): rows are dense).
  [[nodiscard]] int stride() const { return size_.w; }

  /// Contents as a vector (copy) — convenience for tests and serialization.
  [[nodiscard]] std::vector<double> to_vector() const {
    return {data_, data_ + area()};
  }

  /// Copies the sub-rectangle [x0, x0+s.w) x [y0, y0+s.h) into a new tile.
  [[nodiscard]] Tile crop(int x0, int y0, Size2 s) const {
    assert(x0 >= 0 && y0 >= 0 && x0 + s.w <= size_.w && y0 + s.h <= size_.h);
    Tile out(s);
    for (int y = 0; y < s.h; ++y)
      std::memcpy(out.row_ptr(y), row_ptr(y0 + y) + x0,
                  static_cast<std::size_t>(s.w) * sizeof(double));
    return out;
  }

  /// Returns a copy of this tile surrounded by a zero (or mirrored) border.
  [[nodiscard]] Tile padded(const Border& b, bool mirror = false) const {
    Tile out(size_.w + b.left + b.right, size_.h + b.top + b.bottom);
    for (int y = 0; y < out.height(); ++y) {
      double* orow = out.row_ptr(y);
      const int sy = y - b.top;
      if (mirror) {
        const double* srow = row_ptr(reflect(sy, size_.h));
        for (int x = 0; x < out.width(); ++x)
          orow[x] = srow[reflect(x - b.left, size_.w)];
      } else if (sy >= 0 && sy < size_.h) {
        std::memcpy(orow + b.left, row_ptr(sy),
                    static_cast<std::size_t>(size_.w) * sizeof(double));
      }
    }
    return out;
  }

  friend bool operator==(const Tile& a, const Tile& b) {
    if (a.size_ != b.size_) return false;
    // Element-wise double comparison (not memcmp): -0.0 == 0.0 compares
    // equal, NaN != NaN, matching the previous std::vector semantics.
    return std::equal(a.data_, a.data_ + a.area(), b.data_);
  }

 private:
  [[nodiscard]] std::size_t area() const {
    return static_cast<std::size_t>(size_.area());
  }

  static int reflect(int v, int n) {
    if (n == 1) return 0;
    while (v < 0 || v >= n) {
      if (v < 0) v = -v;
      if (v >= n) v = 2 * n - 2 - v;
    }
    return v;
  }

  void allocate_raw() {
    data_ = static_cast<double*>(::operator new(
        (area() + kPadDoubles) * sizeof(double), std::align_val_t{kAlignBytes}));
  }
  void allocate(double fill) {
    allocate_raw();
    std::fill_n(data_, area(), fill);
    std::fill_n(data_ + area(), kPadDoubles, 0.0);  // deterministic over-reads
  }
  void release() {
    if (data_) ::operator delete(data_, std::align_val_t{kAlignBytes});
    data_ = nullptr;
  }

  Size2 size_{0, 0};
  double* data_ = nullptr;
};

}  // namespace bpp
