#include "core/dot_export.h"

#include <sstream>

namespace bpp {

namespace {

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

void write_dot(const Graph& g, std::ostream& os) {
  os << "digraph application {\n"
     << "  rankdir=LR;\n"
     << "  node [fontname=\"Helvetica\", fontsize=10];\n";

  for (int k = 0; k < g.kernel_count(); ++k) {
    const Kernel& kn = g.kernel(k);
    os << "  k" << k << " [label=\"" << escape(kn.name()) << "\", shape="
       << kn.dot_shape() << "];\n";
  }

  for (int c = 0; c < g.channel_count(); ++c) {
    const Channel& ch = g.channel(c);
    if (!ch.alive) continue;
    const Kernel& src = g.kernel(ch.src_kernel);
    const Kernel& dst = g.kernel(ch.dst_kernel);
    const PortSpec& out = src.output(ch.src_port).spec;
    const PortSpec& in = dst.input(ch.dst_port).spec;
    os << "  k" << ch.src_kernel << " -> k" << ch.dst_kernel << " [label=\""
       << escape(out.name) << out.describe() << " -> " << escape(in.name)
       << in.describe() << "\"";
    if (in.replicated) os << ", style=dashed";
    os << "];\n";
  }

  for (const DepEdge& d : g.dependencies())
    os << "  k" << d.src << " -> k" << d.dst
       << " [style=dotted, color=gray, constraint=false];\n";

  os << "}\n";
}

std::string to_dot(const Graph& g) {
  std::ostringstream os;
  write_dot(g, os);
  return os.str();
}

}  // namespace bpp
