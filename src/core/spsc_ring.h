#pragma once
// Lock-free single-producer/single-consumer ring buffer.
//
// The host runtime's channel substrate: every graph channel has exactly one
// producer kernel and one consumer kernel, and each kernel is owned by
// exactly one worker thread, so SPSC is valid by construction. The ring
// replaces the seed's mutex-per-channel deque, making peek/pop (consumer
// side) and push/space-probe (producer side) wait-free.
//
// Memory layout and ordering (Lamport queue with cached indices, see
// DESIGN.md "Host runtime architecture"):
//  * `tail_` is written only by the producer (release), read by the
//    consumer (acquire); `head_` is the mirror image. The acquire/release
//    pair is what publishes the slot contents across threads.
//  * Each index lives on its own cache line, next to the *other* side's
//    cached copy of it, so the hot path of either thread touches a single
//    line and only refreshes the shared one when it would have to block
//    (empty for the consumer, full for the producer).
//  * Indices are monotonically increasing 64-bit counters masked into a
//    power-of-two slot array; `size == tail - head` never wraps in
//    practice (2^64 items).
//
// The consumer may hold the pointer returned by front()/front_mut() until
// it calls pop(): the producer never writes an occupied slot.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

namespace bpp {

/// Separation used to keep producer- and consumer-owned data off each
/// other's cache lines (64 bytes covers x86 and most ARM cores).
inline constexpr std::size_t kCacheLineSize = 64;

template <class T>
class SpscRing {
 public:
  /// A ring holding at most `capacity` items (>= 1). Slot storage is the
  /// next power of two, but `capacity` is the back-pressure limit.
  explicit SpscRing(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {
    std::size_t slots = 1;
    while (slots < capacity_) slots <<= 1;
    mask_ = slots - 1;
    buf_ = std::make_unique<T[]>(slots);
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  // ---- Producer side ----

  /// True when the ring is at capacity. Refreshes the cached head index
  /// whenever the cached view looks full, so a false return is definitive
  /// and a repeated call observes consumer pops (used by the blocked-
  /// producer re-check protocol in the runtime).
  [[nodiscard]] bool full() {
    const std::uint64_t t = tail_.load(std::memory_order_relaxed);
    if (t - head_cache_ < capacity_) return false;
    head_cache_ = head_.load(std::memory_order_acquire);
    return t - head_cache_ >= capacity_;
  }

  /// Producer: append an item. Fails (without effect) when full.
  bool try_push(T&& v) {
    const std::uint64_t t = tail_.load(std::memory_order_relaxed);
    if (t - head_cache_ >= capacity_) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (t - head_cache_ >= capacity_) return false;
    }
    buf_[t & mask_] = std::move(v);
    tail_.store(t + 1, std::memory_order_release);
    return true;
  }
  bool try_push(const T& v) {
    T copy = v;
    return try_push(std::move(copy));
  }

  // ---- Consumer side ----

  /// Head item, or nullptr when empty. The pointer stays valid until
  /// pop(); the producer cannot recycle an occupied slot.
  [[nodiscard]] const T* front() { return front_mut(); }
  [[nodiscard]] T* front_mut() {
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    if (h == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (h == tail_cache_) return nullptr;
    }
    return &buf_[h & mask_];
  }

  [[nodiscard]] bool empty() { return front() == nullptr; }

  /// Consumer: discard the head item (must exist). Clears the slot before
  /// publishing it so payload memory (tiles) is released promptly.
  void pop() {
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    buf_[h & mask_] = T();
    head_.store(h + 1, std::memory_order_release);
  }

  /// Racy size estimate (exact when called from either endpoint's thread
  /// while the other is quiescent). For stats and tests only.
  [[nodiscard]] std::size_t size_approx() const {
    const std::uint64_t t = tail_.load(std::memory_order_acquire);
    const std::uint64_t h = head_.load(std::memory_order_acquire);
    return static_cast<std::size_t>(t >= h ? t - h : 0);
  }

 private:
  std::size_t capacity_;
  std::size_t mask_;
  std::unique_ptr<T[]> buf_;
  /// Producer-owned line: write index plus its cached view of `head_`.
  alignas(kCacheLineSize) std::atomic<std::uint64_t> tail_{0};
  std::uint64_t head_cache_ = 0;
  /// Consumer-owned line: read index plus its cached view of `tail_`.
  alignas(kCacheLineSize) std::atomic<std::uint64_t> head_{0};
  std::uint64_t tail_cache_ = 0;
  char pad_end_[kCacheLineSize]{};  // keep tail_cache_ off neighboring objects
};

}  // namespace bpp
