#pragma once
// Kernel base class: the programmer-facing core of the block-parallel
// programming model (paper §II-B, Fig. 6 and Fig. 7).
//
// A kernel subclass declares its inputs, outputs, methods, and resource
// requirements in configure() — the C++ analogue of the paper's
// configureKernel(). Method bodies are ordinary member functions that use
// read_input()/write_output()/emit_token() while executing.
//
//   class Convolution : public Kernel {
//    public:
//     Convolution(std::string name, int w, int h);
//     void configure() override {
//       create_input("in", {w_, h_}, {1, 1}, {w_ / 2.0, h_ / 2.0});
//       create_output("out", {1, 1});
//       auto& run = register_method("run", {10 + 3 * w_ * h_, 0},
//                                   &Convolution::run_convolve);
//       method_input(run, "in");
//       method_output(run, "out");
//       ...
//     }
//   };

#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/error.h"
#include "core/exec_context.h"
#include "core/firing.h"
#include "core/method.h"
#include "core/port.h"
#include "core/stream_info.h"

namespace bpp {

/// How a kernel may be parallelized (paper §IV).
enum class ParKind {
  DataParallel,  ///< replicate + round-robin split/join (§IV-A)
  Serial,        ///< never replicated (e.g. histogram merge)
  Custom,        ///< parallelized by a kernel-specific routine (§IV-C, buffers)
};

/// Stream description a source kernel seeds into the data-flow analysis.
struct SourceStreamSpec {
  Size2 frame{0, 0};      ///< logical frame extent in pixels
  Size2 granularity{1, 1};  ///< tile size per emitted item
  double rate_hz = 0.0;   ///< frames per second (0 = untimed, e.g. constants)
  bool pixel_space = true;  ///< participates in inset/alignment analysis
  int frames = 0;         ///< finite run length for execution (0 = emit once)
};

/// One pending emission from a source kernel, with its release time.
struct SourceEmission {
  int port = 0;
  Item item;
  double release_seconds = 0.0;  ///< earliest wall-clock availability
  long cycles = 0;               ///< production cost charged to the source
};

class Kernel {
 public:
  virtual ~Kernel() = default;

  Kernel(const Kernel&) = default;
  Kernel& operator=(const Kernel&) = delete;

  /// Declare ports and methods. Called exactly once when the kernel is
  /// added to a graph. Implementations must be deterministic.
  virtual void configure() = 0;

  /// Deep copy used by the parallelization pass when replicating kernels.
  [[nodiscard]] virtual std::unique_ptr<Kernel> clone() const = 0;

  /// Reset private state before an execution run (paper's init()).
  virtual void init() {}

  [[nodiscard]] virtual ParKind parallel_kind() const { return ParKind::DataParallel; }

  /// True for kernels that generate data spontaneously (application inputs,
  /// constant sources). Sources are driven by source_poll, not by firings.
  [[nodiscard]] virtual bool is_source() const { return false; }

  /// Stream specification for output `port` of a source kernel.
  [[nodiscard]] virtual std::optional<SourceStreamSpec> source_spec(int port) const {
    (void)port;
    return std::nullopt;
  }

  /// Produce the next emission of a source kernel. Returns false when the
  /// source is exhausted. Engines call this only for source kernels.
  virtual bool source_poll(SourceEmission& out) {
    (void)out;
    return false;
  }

  /// True for kernels that break cycles in the data-flow analysis
  /// (feedback support, paper §III-D).
  [[nodiscard]] virtual bool is_feedback() const { return false; }

  /// Stream produced by a feedback kernel, declared statically so the
  /// data-flow analysis can seed loop-carried streams (§III-D).
  [[nodiscard]] virtual std::optional<SourceStreamSpec> feedback_spec() const {
    return std::nullopt;
  }

  /// Items a kernel emits unconditionally at start-up, before any input —
  /// how initialization kernels prime feedback loops (§III-D).
  [[nodiscard]] virtual std::vector<Emission> initial_emissions() const {
    return {};
  }

  /// How many produced-but-undelivered items a kernel may hold before the
  /// engines stop firing it (models its output buffering). Plain kernels
  /// get one iteration's worth of slack; buffers override this with their
  /// double-buffer capacity so they keep absorbing while downstream is
  /// back-pressured (otherwise differently-haloed fan-out paths deadlock).
  [[nodiscard]] virtual long pending_capacity() const { return 8; }

  /// Single-input infrastructure kernels whose output stream does not
  /// follow the generic windowed-iteration rule (buffers re-granulate,
  /// inset/pad kernels change the frame extent) override this so the
  /// data-flow analysis propagates correctly through them.
  [[nodiscard]] virtual std::optional<StreamInfo> custom_output_stream(
      int out_port, const StreamInfo& in) const {
    (void)out_port;
    (void)in;
    return std::nullopt;
  }

  /// Graphviz node shape used by dot export (box for computation kernels,
  /// parallelogram for buffers, invhouse for insets, diamond for
  /// split/join — matching the paper's figures).
  [[nodiscard]] virtual std::string dot_shape() const {
    return is_source() ? "oval" : "box";
  }

  /// Kernels whose consumption pattern depends on internal state (the
  /// round-robin and run-length join FSMs, §IV-A) override this to decide
  /// firing themselves. Return nullopt to use the standard rules. `head`
  /// is a borrowed view of the engine's channel heads — valid only for the
  /// duration of this call, so it must not be stored.
  [[nodiscard]] virtual std::optional<FireDecision> decide_custom(
      const std::vector<int>& connected, const HeadFn& head) const {
    (void)connected;
    (void)head;
    return std::nullopt;
  }

  /// Notification that the producer feeding input `input_idx` was
  /// replicated `factor` ways (used e.g. by histogram-merge to expect
  /// `factor` partial results per frame).
  virtual void on_upstream_parallelized(int input_idx, int factor) {
    (void)input_idx;
    (void)factor;
  }

  // ---- Introspection (used by the graph, compiler, and engines) ----

  [[nodiscard]] const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  [[nodiscard]] const std::vector<InputPort>& inputs() const { return inputs_; }
  [[nodiscard]] const std::vector<OutputPort>& outputs() const { return outputs_; }
  [[nodiscard]] const std::deque<MethodDef>& methods() const { return methods_; }

  [[nodiscard]] int input_index(const std::string& port_name) const;
  [[nodiscard]] int output_index(const std::string& port_name) const;
  [[nodiscard]] const InputPort& input(int i) const { return inputs_.at(static_cast<size_t>(i)); }
  [[nodiscard]] const OutputPort& output(int i) const { return outputs_.at(static_cast<size_t>(i)); }

  /// Mutable port specs, for compiler passes that retarget granularities.
  [[nodiscard]] PortSpec& input_spec(int i) { return inputs_.at(static_cast<size_t>(i)).spec; }
  [[nodiscard]] PortSpec& output_spec(int i) { return outputs_.at(static_cast<size_t>(i)).spec; }

  /// The data-triggered method fed by input `i`, or -1.
  [[nodiscard]] int data_method_of_input(int i) const;
  /// The token-triggered method for (input i, token class), or -1.
  [[nodiscard]] int token_method_of_input(int i, TokenClass cls) const;

  /// Total state memory across methods (words).
  [[nodiscard]] long state_memory() const;

  /// Runs configure() exactly once; called by Graph::add_kernel.
  void ensure_configured();
  [[nodiscard]] bool configured() const { return configured_; }

  /// Execute method `m` against context `ctx` (engine side).
  void invoke(int m, ExecContext& ctx);

 protected:
  explicit Kernel(std::string name) : name_(std::move(name)) {}

  // ---- Registration API (call from configure()) ----

  InputPort& create_input(const std::string& port_name, Size2 window,
                          Step2 step = {1, 1}, Offset2 offset = {});
  OutputPort& create_output(const std::string& port_name, Size2 window,
                            Step2 step = {0, 0});  // step defaults to window

  /// Mark an input as replicated under parallelization (Fig. 2 dashed edges).
  void set_replicated(const std::string& port_name, bool replicated = true);

  template <class K>
  MethodDef& register_method(const std::string& method_name, Resources res,
                             void (K::*fn)()) {
    return register_method_impl(method_name, res,
                                [fn](Kernel& k) { (static_cast<K&>(k).*fn)(); });
  }

  /// Bind input `port_name` as a trigger of `m`. With `cls` set the method
  /// fires on that control-token class instead of on data (Fig. 7).
  void method_input(MethodDef& m, const std::string& port_name,
                    std::optional<TokenClass> cls = std::nullopt);
  void method_output(MethodDef& m, const std::string& port_name);
  /// Declare that `m` may emit user token `cls` on `port_name` at most
  /// `max_per_frame` times per frame (§II-C). Emission beyond the bound is
  /// an ExecutionError — the static rate is a contract, not advice.
  void method_token_output(MethodDef& m, const std::string& port_name,
                           TokenClass cls, double max_per_frame);

  // ---- Runtime API (call from method bodies) ----

  /// The tile present on input `port_name` for this firing.
  [[nodiscard]] const Tile& read_input(const std::string& port_name) const;
  /// True if a data tile is bound to the input for this firing.
  [[nodiscard]] bool has_input(const std::string& port_name) const;
  /// Write a tile to output `port_name`; the tile must match the port window.
  void write_output(const std::string& port_name, Tile t);
  /// Like write_output but with an explicit transfer charge in words (for
  /// reuse-optimized links, Fig. 9).
  void write_output_charged(const std::string& port_name, Tile t,
                            long charge_words);
  /// Emit a control token on output `port_name`.
  void emit_token(const std::string& port_name, TokenClass cls,
                  std::int64_t payload = 0);
  /// Mutable access to a registered method (e.g. to re-derive resource
  /// numbers after a compiler pass reshapes the kernel).
  [[nodiscard]] MethodDef& method_mut(const std::string& method_name);
  /// Token class that triggered this firing (-1 for data-triggered).
  [[nodiscard]] TokenClass trigger_token() const;
  [[nodiscard]] std::int64_t trigger_payload() const;
  /// Report this firing's actual (input-dependent) cycle count; the
  /// method's declared cycles act as the real-time bound (dynamic-resource
  /// extension from the paper's conclusions).
  void report_cycles(long cycles);

 private:
  MethodDef& register_method_impl(const std::string& method_name, Resources res,
                                  MethodBody body);

  std::string name_;
  std::vector<InputPort> inputs_;
  std::vector<OutputPort> outputs_;
  std::deque<MethodDef> methods_;
  bool configured_ = false;
  ExecContext* ctx_ = nullptr;  // valid only during invoke()
};

}  // namespace bpp
