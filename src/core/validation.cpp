#include "core/validation.h"

#include <algorithm>
#include <sstream>

namespace bpp {

std::vector<std::string> validate(const Graph& g) {
  std::vector<std::string> issues;
  auto issue = [&](const std::string& s) { issues.push_back(s); };

  for (int k = 0; k < g.kernel_count(); ++k) {
    const Kernel& kn = g.kernel(k);

    if (!kn.configured()) issue(kn.name() + ": kernel was never configured");

    // Inputs: connected, and feeding at least one method.
    for (size_t i = 0; i < kn.inputs().size(); ++i) {
      const PortSpec& spec = kn.input(static_cast<int>(i)).spec;
      if (!g.in_channel(k, static_cast<int>(i)))
        issue(kn.name() + ": input '" + spec.name + "' is not connected");
      bool feeds = false;
      for (const MethodDef& m : kn.methods())
        if (std::find(m.inputs.begin(), m.inputs.end(), static_cast<int>(i)) !=
            m.inputs.end())
          feeds = true;
      if (!feeds && !kn.is_source())
        issue(kn.name() + ": input '" + spec.name + "' does not trigger any method");
    }

    // Outputs: connected somewhere.
    for (size_t o = 0; o < kn.outputs().size(); ++o) {
      const PortSpec& spec = kn.output(static_cast<int>(o)).spec;
      if (g.out_channels(k, static_cast<int>(o)).empty())
        issue(kn.name() + ": output '" + spec.name + "' is not connected");
    }

    if (kn.is_source()) {
      for (size_t o = 0; o < kn.outputs().size(); ++o)
        if (!kn.source_spec(static_cast<int>(o)))
          issue(kn.name() + ": source provides no stream spec for output '" +
                kn.output(static_cast<int>(o)).spec.name + "'");
      if (!kn.inputs().empty())
        issue(kn.name() + ": source kernels may not have inputs");
    } else if (kn.methods().empty()) {
      issue(kn.name() + ": kernel defines no methods");
    }

    // Every method body must exist and reference valid ports (checked at
    // registration); here we confirm data methods actually read something.
    for (const MethodDef& m : kn.methods())
      if (!kn.is_source() && m.inputs.empty())
        issue(kn.name() + ": method '" + m.name + "' has no triggering inputs");
  }

  try {
    (void)g.topo_order();
  } catch (const GraphError& e) {
    issue(e.what());
  }

  return issues;
}

void validate_or_throw(const Graph& g) {
  std::vector<std::string> issues = validate(g);
  if (issues.empty()) return;
  std::ostringstream os;
  os << "invalid application graph (" << issues.size() << " problem(s)):";
  for (const std::string& s : issues) os << "\n  - " << s;
  throw GraphError(os.str());
}

}  // namespace bpp
