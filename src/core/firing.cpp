#include "core/firing.h"

#include <algorithm>

#include "core/kernel.h"

namespace bpp {

namespace {

/// True when every port in `ports` is connected and has a head item
/// satisfying `pred`.
template <class Pred>
bool all_heads(const std::vector<int>& ports, const std::vector<int>& connected,
               const HeadFn& head, Pred pred) {
  if (ports.empty()) return false;
  for (int p : ports) {
    if (std::find(connected.begin(), connected.end(), p) == connected.end())
      return false;
    const Item* it = head(p);
    if (!it || !pred(*it)) return false;
  }
  return true;
}

}  // namespace

void decide_fire_into(const Kernel& k, const std::vector<int>& connected,
                      const HeadFn& head, FireDecision& out) {
  out.kind = FireDecision::Kind::None;
  out.method = -1;
  out.token = -1;
  out.payload = 0;
  out.pop_inputs.clear();
  out.forward_outputs.clear();

  if (auto custom = k.decide_custom(connected, head)) {
    out = *custom;
    return;
  }

  // 1. Method triggers, in registration order.
  const auto& methods = k.methods();
  for (size_t m = 0; m < methods.size(); ++m) {
    const MethodDef& def = methods[m];
    if (def.inputs.empty()) continue;
    bool ready;
    if (def.token_triggered()) {
      ready = all_heads(def.inputs, connected, head, [&](const Item& it) {
        return is_token(it) && as_token(it).cls == *def.trigger_token;
      });
    } else {
      ready = all_heads(def.inputs, connected, head,
                        [](const Item& it) { return is_data(it); });
    }
    if (ready) {
      out.kind = FireDecision::Kind::Method;
      out.method = static_cast<int>(m);
      out.pop_inputs = def.inputs;
      if (def.token_triggered()) {
        out.token = *def.trigger_token;
        out.payload = as_token(*head(def.inputs.front())).payload;
      }
      return;
    }
  }

  // 2. Automatic forwarding of unhandled tokens, grouped by the data method
  //    each input feeds (§II-C). Inputs feeding no data method form
  //    singleton groups whose tokens are dropped.
  auto try_group = [&](const std::vector<int>& group,
                       const std::vector<int>& outs) -> bool {
    const Item* first = nullptr;
    for (int p : group) {
      if (std::find(connected.begin(), connected.end(), p) == connected.end())
        return false;
      const Item* it = head(p);
      if (!it || !is_token(*it)) return false;
      if (!first) {
        first = it;
      } else if (as_token(*it).cls != as_token(*first).cls) {
        return false;
      }
    }
    if (!first) return false;
    const TokenClass cls = as_token(*first).cls;
    // A registered handler takes precedence; it simply was not ready yet
    // (e.g. waits on further inputs), so do not forward past it.
    for (int p : group)
      if (k.token_method_of_input(p, cls) >= 0) return false;
    out.kind = FireDecision::Kind::Forward;
    out.token = cls;
    out.payload = as_token(*first).payload;
    out.pop_inputs = group;
    out.forward_outputs = outs;
    return true;
  };

  std::vector<char> grouped(k.inputs().size(), 0);
  for (const MethodDef& def : methods) {
    if (def.token_triggered() || def.inputs.empty()) continue;
    for (int p : def.inputs) grouped[static_cast<size_t>(p)] = 1;
    if (try_group(def.inputs, def.outputs)) return;
  }
  for (size_t p = 0; p < k.inputs().size(); ++p) {
    if (grouped[p]) continue;
    if (try_group({static_cast<int>(p)}, {})) return;
  }
}

FireDecision decide_fire(const Kernel& k, const std::vector<int>& connected,
                         const HeadFn& head) {
  FireDecision d;
  decide_fire_into(k, connected, head, d);
  return d;
}

}  // namespace bpp
