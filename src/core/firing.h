#pragma once
// Firing rules shared by the simulator and the host runtime.
//
// Given the items at the head of each input FIFO of a kernel, decide what
// happens next (paper §II-B/§II-C):
//  * a data-triggered method fires when every one of its inputs has a data
//    tile at its head;
//  * a token-triggered method fires when every one of its inputs has the
//    registered token class at its head;
//  * a control token no method handles is forwarded, in order, to the
//    outputs of the data method fed by that input — and when several inputs
//    feed one method, the same token class must head all of them before one
//    copy is forwarded (the subtract-kernel rule).
//
// Kernels with data-dependent consumption (round-robin joins) override
// Kernel::decide_custom instead.

#include <cstdint>
#include <functional>
#include <vector>

#include "core/token.h"

namespace bpp {

class Kernel;

/// View of the head item of input port `port`; nullptr when empty.
using HeadFn = std::function<const Item*(int port)>;

struct FireDecision {
  enum class Kind {
    None,     ///< nothing can fire now
    Method,   ///< run method `method` on the popped inputs
    Forward,  ///< pop a token from each input and forward one copy
  };

  Kind kind = Kind::None;
  int method = -1;
  TokenClass token = -1;  ///< trigger/forwarded token class
  std::int64_t payload = 0;
  std::vector<int> pop_inputs;       ///< input ports to pop
  std::vector<int> forward_outputs;  ///< outputs receiving the forwarded token

  [[nodiscard]] bool fires() const { return kind != Kind::None; }
};

/// Compute the next action for `k` given its input heads. `connected`
/// lists the input-port indices that have a live channel; unconnected
/// inputs are ignored (they can never trigger).
[[nodiscard]] FireDecision decide_fire(const Kernel& k,
                                       const std::vector<int>& connected,
                                       const HeadFn& head);

}  // namespace bpp
