#pragma once
// Firing rules shared by the simulator and the host runtime.
//
// Given the items at the head of each input FIFO of a kernel, decide what
// happens next (paper §II-B/§II-C):
//  * a data-triggered method fires when every one of its inputs has a data
//    tile at its head;
//  * a token-triggered method fires when every one of its inputs has the
//    registered token class at its head;
//  * a control token no method handles is forwarded, in order, to the
//    outputs of the data method fed by that input — and when several inputs
//    feed one method, the same token class must head all of them before one
//    copy is forwarded (the subtract-kernel rule).
//
// Kernels with data-dependent consumption (round-robin joins) override
// Kernel::decide_custom instead.

#include <cstdint>
#include <type_traits>
#include <vector>

#include "core/token.h"

namespace bpp {

class Kernel;

/// Non-owning view of the head items of a kernel's input channels:
/// `head(port)` returns the item at the head of input `port`'s FIFO, or
/// nullptr when it is empty (or the port is unconnected).
///
/// This is a function_ref, not a std::function: decide_fire runs on every
/// scheduling step of both engines, and the erased callable it receives is
/// always a short-lived lambda over the engine's channel state (a lock-free
/// ring peek in the host runtime, a deque front in the simulator), so the
/// view must not allocate or own. The referenced callable only needs to
/// outlive the decide_fire/decide_custom call it is passed to.
class HeadFn {
 public:
  template <class F,
            class = std::enable_if_t<
                !std::is_same_v<std::remove_cv_t<std::remove_reference_t<F>>,
                                HeadFn> &&
                std::is_invocable_r_v<const Item*, const F&, int>>>
  HeadFn(const F& f) noexcept  // NOLINT(google-explicit-constructor)
      : obj_(&f), call_([](const void* o, int port) -> const Item* {
          return (*static_cast<const F*>(o))(port);
        }) {}

  const Item* operator()(int port) const { return call_(obj_, port); }

 private:
  const void* obj_;
  const Item* (*call_)(const void*, int);
};

struct FireDecision {
  enum class Kind {
    None,     ///< nothing can fire now
    Method,   ///< run method `method` on the popped inputs
    Forward,  ///< pop a token from each input and forward one copy
  };

  Kind kind = Kind::None;
  int method = -1;
  TokenClass token = -1;  ///< trigger/forwarded token class
  std::int64_t payload = 0;
  std::vector<int> pop_inputs;       ///< input ports to pop
  std::vector<int> forward_outputs;  ///< outputs receiving the forwarded token

  [[nodiscard]] bool fires() const { return kind != Kind::None; }
};

/// Compute the next action for `k` given its input heads. `connected`
/// lists the input-port indices that have a live channel; unconnected
/// inputs are ignored (they can never trigger).
[[nodiscard]] FireDecision decide_fire(const Kernel& k,
                                       const std::vector<int>& connected,
                                       const HeadFn& head);

/// Allocation-free variant for engine hot loops: overwrites `out`
/// (clearing, not shrinking, its vectors), so a decision object reused
/// across firings stops heap-allocating once its capacity warms up.
void decide_fire_into(const Kernel& k, const std::vector<int>& connected,
                      const HeadFn& head, FireDecision& out);

}  // namespace bpp
