#pragma once
// Geometry primitives for the block-parallel programming model (paper §II-A).
//
// Every kernel input/output is parameterized as
//     (width x height)[step_x, step_y] [offset_x, offset_y]
// over a fixed scan-line data order (left-to-right, top-to-bottom).
// These small value types carry that parameterization through the
// compiler analyses.

#include <cmath>
#include <compare>
#include <cstdint>
#include <ostream>
#include <string>

namespace bpp {

/// A 2-D extent in pixels (window sizes, frame sizes, iteration counts).
struct Size2 {
  int w = 0;
  int h = 0;

  friend constexpr bool operator==(const Size2&, const Size2&) = default;

  /// Total number of elements covered by this extent.
  [[nodiscard]] constexpr long area() const { return static_cast<long>(w) * h; }

  /// True when both dimensions are strictly positive.
  [[nodiscard]] constexpr bool positive() const { return w > 0 && h > 0; }
};

/// A 2-D step: how far an input/output window advances per iteration.
struct Step2 {
  int x = 1;
  int y = 1;

  friend constexpr bool operator==(const Step2&, const Step2&) = default;

  [[nodiscard]] constexpr bool positive() const { return x > 0 && y > 0; }
};

/// A 2-D (possibly fractional) offset from the upper-left corner of an
/// input window to the output sample it produces. Fractional offsets are
/// required for downsampling kernels (paper §II-A, footnote 2).
struct Offset2 {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Offset2&, const Offset2&) = default;

  friend Offset2 operator+(Offset2 a, Offset2 b) { return {a.x + b.x, a.y + b.y}; }
  friend Offset2 operator-(Offset2 a, Offset2 b) { return {a.x - b.x, a.y - b.y}; }
};

/// An axis-aligned rectangle in stream-pixel coordinates, used by the
/// alignment analysis (§III-C) to overlay the data extents of multiple
/// streams feeding one kernel (Fig. 8).
struct Rect {
  double x0 = 0.0;  ///< left edge (inclusive)
  double y0 = 0.0;  ///< top edge (inclusive)
  double x1 = 0.0;  ///< right edge (exclusive)
  double y1 = 0.0;  ///< bottom edge (exclusive)

  friend bool operator==(const Rect&, const Rect&) = default;

  [[nodiscard]] double width() const { return x1 - x0; }
  [[nodiscard]] double height() const { return y1 - y0; }
  [[nodiscard]] bool empty() const { return x1 <= x0 || y1 <= y0; }

  /// Intersection of two rectangles (used by the Trim alignment policy).
  [[nodiscard]] static Rect intersect(const Rect& a, const Rect& b) {
    return {std::max(a.x0, b.x0), std::max(a.y0, b.y0),
            std::min(a.x1, b.x1), std::min(a.y1, b.y1)};
  }

  /// Bounding box of two rectangles (used by the Pad alignment policy).
  [[nodiscard]] static Rect bounds(const Rect& a, const Rect& b) {
    return {std::min(a.x0, b.x0), std::min(a.y0, b.y0),
            std::max(a.x1, b.x1), std::max(a.y1, b.y1)};
  }
};

/// Per-side trim/pad amounts, in pixels.
struct Border {
  int left = 0;
  int top = 0;
  int right = 0;
  int bottom = 0;

  friend constexpr bool operator==(const Border&, const Border&) = default;

  [[nodiscard]] constexpr bool any() const {
    return left != 0 || top != 0 || right != 0 || bottom != 0;
  }
};

/// Number of iterations a window of size `win` stepping by `step` fits in a
/// frame of size `frame` (per dimension: floor((frame - win)/step) + 1).
/// Returns {0,0} when the window does not fit at all.
[[nodiscard]] constexpr Size2 iteration_count(Size2 frame, Size2 win, Step2 step) {
  if (frame.w < win.w || frame.h < win.h) return {0, 0};
  return {(frame.w - win.w) / step.x + 1, (frame.h - win.h) / step.y + 1};
}

/// Extent of unique pixels covered by `iters` placements of a window of
/// size `win` advancing by `step` (the inverse of iteration_count for
/// exact tilings).
[[nodiscard]] constexpr Size2 covered_extent(Size2 iters, Size2 win, Step2 step) {
  if (!iters.positive()) return {0, 0};
  return {(iters.w - 1) * step.x + win.w, (iters.h - 1) * step.y + win.h};
}

/// The halo of a windowed input: the data consumed around each output
/// sample that shrinks the output frame (size - step per dimension).
[[nodiscard]] constexpr Size2 halo(Size2 win, Step2 step) {
  return {win.w - step.x, win.h - step.y};
}

inline std::ostream& operator<<(std::ostream& os, Size2 s) {
  return os << '(' << s.w << 'x' << s.h << ')';
}
inline std::ostream& operator<<(std::ostream& os, Step2 s) {
  return os << '[' << s.x << ',' << s.y << ']';
}
inline std::ostream& operator<<(std::ostream& os, Offset2 o) {
  return os << '[' << o.x << ',' << o.y << ']';
}
inline std::ostream& operator<<(std::ostream& os, const Rect& r) {
  return os << '[' << r.x0 << ',' << r.y0 << " .. " << r.x1 << ',' << r.y1 << ')';
}

[[nodiscard]] std::string to_string(Size2 s);
[[nodiscard]] std::string to_string(Step2 s);
[[nodiscard]] std::string to_string(Offset2 o);

}  // namespace bpp
