#include "core/graph.h"

#include <algorithm>
#include <queue>

namespace bpp {

Kernel& Graph::add_kernel(std::unique_ptr<Kernel> k) {
  if (!k) throw GraphError("add_kernel: null kernel");
  if (find(k->name()) >= 0)
    throw GraphError("duplicate kernel name '" + k->name() + "'");
  k->ensure_configured();
  kernels_.push_back(std::move(k));
  return *kernels_.back();
}

ChannelId Graph::connect(const Kernel& src, const std::string& out,
                         const Kernel& dst, const std::string& in) {
  KernelId s = id_of(src);
  KernelId d = id_of(dst);
  int op = src.output_index(out);
  if (op < 0) throw GraphError(src.name() + ": no output port '" + out + "'");
  int ip = dst.input_index(in);
  if (ip < 0) throw GraphError(dst.name() + ": no input port '" + in + "'");
  return connect(s, op, d, ip);
}

ChannelId Graph::connect(KernelId src, int out_port, KernelId dst, int in_port) {
  if (src < 0 || src >= kernel_count() || dst < 0 || dst >= kernel_count())
    throw GraphError("connect: kernel id out of range");
  const Kernel& sk = kernel(src);
  const Kernel& dk = kernel(dst);
  if (out_port < 0 || out_port >= static_cast<int>(sk.outputs().size()))
    throw GraphError(sk.name() + ": output port index out of range");
  if (in_port < 0 || in_port >= static_cast<int>(dk.inputs().size()))
    throw GraphError(dk.name() + ": input port index out of range");
  if (in_channel(dst, in_port))
    throw GraphError(dk.name() + ": input '" + dk.input(in_port).spec.name +
                     "' is already connected");
  channels_.push_back(Channel{src, out_port, dst, in_port, true});
  return static_cast<ChannelId>(channels_.size() - 1);
}

void Graph::disconnect(ChannelId c) {
  channels_.at(static_cast<size_t>(c)).alive = false;
}

void Graph::add_dependency(const Kernel& src, const Kernel& dst) {
  add_dependency(id_of(src), id_of(dst));
}

void Graph::add_dependency(KernelId src, KernelId dst) {
  if (src < 0 || src >= kernel_count() || dst < 0 || dst >= kernel_count())
    throw GraphError("add_dependency: kernel id out of range");
  dep_edges_.push_back(DepEdge{src, dst});
}

KernelId Graph::id_of(const Kernel& k) const {
  for (size_t i = 0; i < kernels_.size(); ++i)
    if (kernels_[i].get() == &k) return static_cast<KernelId>(i);
  throw GraphError("kernel '" + k.name() + "' is not part of this graph");
}

KernelId Graph::find(const std::string& name) const {
  for (size_t i = 0; i < kernels_.size(); ++i)
    if (kernels_[i]->name() == name) return static_cast<KernelId>(i);
  return -1;
}

Kernel& Graph::by_name(const std::string& name) {
  KernelId id = find(name);
  if (id < 0) throw GraphError("no kernel named '" + name + "'");
  return kernel(id);
}

std::vector<ChannelId> Graph::out_channels(KernelId k, int port) const {
  std::vector<ChannelId> out;
  for (size_t c = 0; c < channels_.size(); ++c) {
    const Channel& ch = channels_[c];
    if (ch.alive && ch.src_kernel == k && ch.src_port == port)
      out.push_back(static_cast<ChannelId>(c));
  }
  return out;
}

std::vector<ChannelId> Graph::out_channels(KernelId k) const {
  std::vector<ChannelId> out;
  for (size_t c = 0; c < channels_.size(); ++c) {
    const Channel& ch = channels_[c];
    if (ch.alive && ch.src_kernel == k) out.push_back(static_cast<ChannelId>(c));
  }
  return out;
}

std::optional<ChannelId> Graph::in_channel(KernelId k, int port) const {
  for (size_t c = 0; c < channels_.size(); ++c) {
    const Channel& ch = channels_[c];
    if (ch.alive && ch.dst_kernel == k && ch.dst_port == port)
      return static_cast<ChannelId>(c);
  }
  return std::nullopt;
}

std::vector<ChannelId> Graph::in_channels(KernelId k) const {
  std::vector<ChannelId> out;
  for (size_t c = 0; c < channels_.size(); ++c) {
    const Channel& ch = channels_[c];
    if (ch.alive && ch.dst_kernel == k) out.push_back(static_cast<ChannelId>(c));
  }
  return out;
}

std::vector<KernelId> Graph::sources() const {
  std::vector<KernelId> out;
  for (int i = 0; i < kernel_count(); ++i)
    if (kernel(i).is_source()) out.push_back(i);
  return out;
}

std::vector<KernelId> Graph::sinks() const {
  std::vector<KernelId> out;
  for (int i = 0; i < kernel_count(); ++i)
    if (out_channels(i).empty() && !kernel(i).is_source()) out.push_back(i);
  return out;
}

std::vector<KernelId> Graph::topo_order() const {
  const int n = kernel_count();
  std::vector<int> indeg(static_cast<size_t>(n), 0);
  for (const Channel& ch : channels_) {
    if (!ch.alive) continue;
    if (kernel(ch.dst_kernel).is_feedback()) continue;  // break loops here
    ++indeg[static_cast<size_t>(ch.dst_kernel)];
  }
  std::queue<KernelId> ready;
  for (int i = 0; i < n; ++i)
    if (indeg[static_cast<size_t>(i)] == 0) ready.push(i);

  std::vector<KernelId> order;
  order.reserve(static_cast<size_t>(n));
  while (!ready.empty()) {
    KernelId k = ready.front();
    ready.pop();
    order.push_back(k);
    for (ChannelId c : out_channels(k)) {
      const Channel& ch = channel(c);
      if (kernel(ch.dst_kernel).is_feedback()) continue;
      if (--indeg[static_cast<size_t>(ch.dst_kernel)] == 0) ready.push(ch.dst_kernel);
    }
  }
  if (static_cast<int>(order.size()) != n)
    throw GraphError(
        "application graph contains a cycle without a feedback kernel "
        "(see paper §III-D)");
  return order;
}

Graph Graph::clone() const {
  Graph out;
  out.kernels_.reserve(kernels_.size());
  for (const auto& k : kernels_) {
    auto c = k->clone();
    if (!c || c->name() != k->name())
      throw GraphError(k->name() + ": clone() returned a mismatched kernel");
    out.kernels_.push_back(std::move(c));
  }
  out.channels_ = channels_;
  out.dep_edges_ = dep_edges_;
  return out;
}

std::string Graph::unique_name(const std::string& base) const {
  if (find(base) < 0) return base;
  for (int i = 1;; ++i) {
    std::string cand = base + "_" + std::to_string(i);
    if (find(cand) < 0) return cand;
  }
}

}  // namespace bpp
