#pragma once
// StreamInfo: what the data-flow analysis (paper §III-A) knows about the
// data moving over one channel — the frame extent, delivery granularity,
// rate, and the inset of the stream relative to the application input that
// generated it (used by the alignment analysis of §III-C).

#include <utility>
#include <vector>

#include "core/geometry.h"

namespace bpp {

struct StreamInfo {
  /// Logical frame extent in stream pixels (unique samples per frame).
  Size2 frame{0, 0};
  /// Tile shape delivered per channel item.
  Size2 item{1, 1};
  /// Advance between consecutive items (item overlap when < item size).
  Step2 item_step{1, 1};
  /// Data items per frame.
  long items_per_frame = 0;
  /// Arrangement of those items in scan order (grid.w per line); grid.h is
  /// the number of end-of-line tokens carried per frame.
  Size2 grid{0, 0};
  /// Frames per second; 0 for untimed parameter streams.
  double rate_hz = 0.0;
  /// Position of this stream's frame origin in origin-input pixel
  /// coordinates (grows through windowed-kernel halos).
  Offset2 inset{};
  /// Origin pixels per stream pixel (changes through re-sampling kernels;
  /// fractional offsets make this meaningful, §II-A footnote 2).
  Offset2 scale{1.0, 1.0};
  /// False for parameter/result streams (coefficients, histogram bins)
  /// that take no part in inset/alignment analysis.
  bool pixel_space = true;
  /// Kernel id of the application input this stream derives from, or -1.
  int origin = -1;
  /// Declared maximum rates of user control tokens carried by this stream
  /// (class, tokens per frame) — §II-C; lets receivers' handler methods be
  /// costed statically.
  std::vector<std::pair<int, double>> token_rates;

  [[nodiscard]] double token_rate(int cls) const {
    for (const auto& [c, r] : token_rates)
      if (c == cls) return r;
    return 0.0;
  }

  /// Extent of this stream in origin coordinates, for alignment overlays
  /// (Fig. 8).
  [[nodiscard]] Rect extent() const {
    return {inset.x, inset.y, inset.x + frame.w * scale.x,
            inset.y + frame.h * scale.y};
  }
};

}  // namespace bpp
