#pragma once
// Input/output port parameterization (paper §II-A).
//
// Each port is described as (width x height)[step_x, step_y] with, for
// inputs, an [offset_x, offset_y] from the upper-left of the input window
// to the output sample and a `replicated` flag. Replicated inputs are
// copied — not split — when the kernel is parallelized (e.g. convolution
// coefficients, histogram bin boundaries).

#include <string>

#include "core/geometry.h"

namespace bpp {

enum class PortDir { Input, Output };

struct PortSpec {
  std::string name;
  Size2 window{1, 1};  ///< data consumed/produced per iteration
  Step2 step{1, 1};    ///< window advance per iteration
  Offset2 offset{};    ///< input->output offset (inputs only)
  bool replicated = false;  ///< replicate instead of split when parallelizing

  /// Words moved through this port per iteration.
  [[nodiscard]] long words() const { return window.area(); }

  /// Halo contributed by this input (window - step per dimension).
  [[nodiscard]] Size2 halo() const { return bpp::halo(window, step); }

  [[nodiscard]] std::string describe() const {
    return to_string(window) + to_string(step);
  }
};

struct InputPort {
  PortSpec spec;
};

struct OutputPort {
  PortSpec spec;
};

}  // namespace bpp
