#include "core/geometry.h"

#include <sstream>

namespace bpp {

std::string to_string(Size2 s) {
  std::ostringstream os;
  os << s;
  return os.str();
}

std::string to_string(Step2 s) {
  std::ostringstream os;
  os << s;
  return os.str();
}

std::string to_string(Offset2 o) {
  std::ostringstream os;
  os << o;
  return os.str();
}

}  // namespace bpp
