#include "core/kernel.h"

#include <algorithm>

namespace bpp {

int Kernel::input_index(const std::string& port_name) const {
  for (size_t i = 0; i < inputs_.size(); ++i)
    if (inputs_[i].spec.name == port_name) return static_cast<int>(i);
  return -1;
}

int Kernel::output_index(const std::string& port_name) const {
  for (size_t i = 0; i < outputs_.size(); ++i)
    if (outputs_[i].spec.name == port_name) return static_cast<int>(i);
  return -1;
}

int Kernel::data_method_of_input(int i) const {
  for (size_t m = 0; m < methods_.size(); ++m) {
    const MethodDef& def = methods_[m];
    if (def.token_triggered()) continue;
    if (std::find(def.inputs.begin(), def.inputs.end(), i) != def.inputs.end())
      return static_cast<int>(m);
  }
  return -1;
}

int Kernel::token_method_of_input(int i, TokenClass cls) const {
  for (size_t m = 0; m < methods_.size(); ++m) {
    const MethodDef& def = methods_[m];
    if (!def.token_triggered() || *def.trigger_token != cls) continue;
    if (std::find(def.inputs.begin(), def.inputs.end(), i) != def.inputs.end())
      return static_cast<int>(m);
  }
  return -1;
}

long Kernel::state_memory() const {
  long total = 0;
  for (const MethodDef& m : methods_) total += m.res.memory_words;
  return total;
}

void Kernel::ensure_configured() {
  if (configured_) return;
  configure();
  configured_ = true;
}

void Kernel::invoke(int m, ExecContext& ctx) {
  if (m < 0 || m >= static_cast<int>(methods_.size()))
    throw ExecutionError(name_ + ": invoking unknown method index " + std::to_string(m));
  ctx_ = &ctx;
  try {
    methods_[static_cast<size_t>(m)].body(*this);
  } catch (...) {
    ctx_ = nullptr;
    throw;
  }
  ctx_ = nullptr;
}

InputPort& Kernel::create_input(const std::string& port_name, Size2 window,
                                Step2 step, Offset2 offset) {
  if (input_index(port_name) >= 0)
    throw GraphError(name_ + ": duplicate input port '" + port_name + "'");
  if (!window.positive() || !step.positive())
    throw GraphError(name_ + ": input '" + port_name + "' has non-positive window/step");
  inputs_.push_back({PortSpec{port_name, window, step, offset, false}});
  return inputs_.back();
}

OutputPort& Kernel::create_output(const std::string& port_name, Size2 window,
                                  Step2 step) {
  if (output_index(port_name) >= 0)
    throw GraphError(name_ + ": duplicate output port '" + port_name + "'");
  if (step.x == 0 && step.y == 0) step = {window.w, window.h};
  if (!window.positive() || !step.positive())
    throw GraphError(name_ + ": output '" + port_name + "' has non-positive window/step");
  outputs_.push_back({PortSpec{port_name, window, step, Offset2{}, false}});
  return outputs_.back();
}

void Kernel::set_replicated(const std::string& port_name, bool replicated) {
  int i = input_index(port_name);
  if (i < 0) throw GraphError(name_ + ": no input '" + port_name + "' to replicate");
  inputs_[static_cast<size_t>(i)].spec.replicated = replicated;
}

MethodDef& Kernel::register_method_impl(const std::string& method_name,
                                        Resources res, MethodBody body) {
  for (const MethodDef& m : methods_)
    if (m.name == method_name)
      throw GraphError(name_ + ": duplicate method '" + method_name + "'");
  methods_.push_back(
      MethodDef{method_name, res, {}, std::nullopt, {}, {}, std::move(body)});
  return methods_.back();
}

void Kernel::method_input(MethodDef& m, const std::string& port_name,
                          std::optional<TokenClass> cls) {
  int i = input_index(port_name);
  if (i < 0)
    throw GraphError(name_ + ": method '" + m.name + "' references unknown input '" +
                     port_name + "'");
  if (cls && !m.inputs.empty() && !m.token_triggered())
    throw GraphError(name_ + ": method '" + m.name +
                     "' mixes data- and token-triggered inputs");
  if (cls) m.trigger_token = *cls;
  if (!m.token_triggered()) {
    // An input may drive at most one data-triggered method (§II-B: methods
    // trigger on *disjoint* input sets).
    int existing = data_method_of_input(i);
    if (existing >= 0 && &methods_[static_cast<size_t>(existing)] != &m)
      throw GraphError(name_ + ": input '" + port_name +
                       "' already triggers data method '" +
                       methods_[static_cast<size_t>(existing)].name + "'");
  }
  if (std::find(m.inputs.begin(), m.inputs.end(), i) == m.inputs.end())
    m.inputs.push_back(i);
}

void Kernel::method_output(MethodDef& m, const std::string& port_name) {
  int o = output_index(port_name);
  if (o < 0)
    throw GraphError(name_ + ": method '" + m.name + "' references unknown output '" +
                     port_name + "'");
  if (std::find(m.outputs.begin(), m.outputs.end(), o) == m.outputs.end())
    m.outputs.push_back(o);
}

void Kernel::method_token_output(MethodDef& m, const std::string& port_name,
                                 TokenClass cls, double max_per_frame) {
  int o = output_index(port_name);
  if (o < 0)
    throw GraphError(name_ + ": method '" + m.name + "' references unknown output '" +
                     port_name + "'");
  if (cls < tok::kFirstUser)
    throw GraphError(name_ + ": token class " + std::to_string(cls) +
                     " is reserved for the framework");
  if (max_per_frame <= 0.0)
    throw GraphError(name_ + ": user tokens need a positive max rate (§II-C)");
  m.token_outputs.push_back(TokenEmission{o, cls, max_per_frame});
}

MethodDef& Kernel::method_mut(const std::string& method_name) {
  for (MethodDef& m : methods_)
    if (m.name == method_name) return m;
  throw GraphError(name_ + ": no method '" + method_name + "'");
}

const Tile& Kernel::read_input(const std::string& port_name) const {
  if (!ctx_) throw ExecutionError(name_ + ": read_input outside method execution");
  int i = input_index(port_name);
  if (i < 0) throw ExecutionError(name_ + ": read_input of unknown port '" + port_name + "'");
  const Item* it = ctx_->input(i);
  if (!it || !is_data(*it))
    throw ExecutionError(name_ + ": no data bound to input '" + port_name +
                         "' for this firing");
  return as_tile(*it);
}

bool Kernel::has_input(const std::string& port_name) const {
  if (!ctx_) return false;
  int i = input_index(port_name);
  if (i < 0) return false;
  const Item* it = ctx_->input(i);
  return it && is_data(*it);
}

void Kernel::write_output(const std::string& port_name, Tile t) {
  write_output_charged(port_name, std::move(t), -1);
}

void Kernel::write_output_charged(const std::string& port_name, Tile t,
                                  long charge_words) {
  if (!ctx_) throw ExecutionError(name_ + ": write_output outside method execution");
  int o = output_index(port_name);
  if (o < 0)
    throw ExecutionError(name_ + ": write_output to unknown port '" + port_name + "'");
  const PortSpec& spec = outputs_[static_cast<size_t>(o)].spec;
  if (t.size() != spec.window)
    throw ExecutionError(name_ + ": output '" + port_name + "' expects " +
                         to_string(spec.window) + " tile, got " + to_string(t.size()));
  ctx_->emit(o, std::move(t), charge_words);
}

void Kernel::emit_token(const std::string& port_name, TokenClass cls,
                        std::int64_t payload) {
  if (!ctx_) throw ExecutionError(name_ + ": emit_token outside method execution");
  int o = output_index(port_name);
  if (o < 0)
    throw ExecutionError(name_ + ": emit_token to unknown port '" + port_name + "'");
  if (cls >= tok::kFirstUser) {
    // User tokens must have been declared with a rate bound (§II-C).
    bool declared = false;
    for (const MethodDef& m : methods_)
      for (const TokenEmission& te : m.token_outputs)
        declared = declared || (te.port == o && te.cls == cls);
    if (!declared)
      throw ExecutionError(name_ + ": user token " + token_class_name(cls) +
                           " emitted on '" + port_name +
                           "' without a declared rate (§II-C)");
  }
  ctx_->emit(o, ControlToken{cls, payload});
}

void Kernel::report_cycles(long cycles) {
  if (!ctx_) throw ExecutionError(name_ + ": report_cycles outside method execution");
  if (cycles < 0) throw ExecutionError(name_ + ": negative cycle report");
  ctx_->report_dynamic_cycles(cycles);
}

TokenClass Kernel::trigger_token() const {
  if (!ctx_) throw ExecutionError(name_ + ": trigger_token outside method execution");
  return ctx_->trigger_token();
}

std::int64_t Kernel::trigger_payload() const {
  if (!ctx_) throw ExecutionError(name_ + ": trigger_payload outside method execution");
  return ctx_->trigger_payload();
}

}  // namespace bpp
