#pragma once
// Graphviz export of application graphs, mirroring the paper's figures:
// computation kernels as boxes, buffers as parallelograms, inset kernels as
// inverted houses, split/join as diamonds, replicated inputs as dashed
// edges, and data-dependency edges as dotted edges.

#include <ostream>
#include <string>

#include "core/graph.h"

namespace bpp {

void write_dot(const Graph& g, std::ostream& os);
[[nodiscard]] std::string to_dot(const Graph& g);

}  // namespace bpp
