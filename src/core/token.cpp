#include "core/token.h"

namespace bpp {

std::string token_class_name(TokenClass cls) {
  switch (cls) {
    case tok::kEndOfLine:
      return "EOL";
    case tok::kEndOfFrame:
      return "EOF";
    case tok::kEndOfStream:
      return "EOS";
    default:
      return "user" + std::to_string(cls);
  }
}

}  // namespace bpp
