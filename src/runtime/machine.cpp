#include "runtime/machine.h"

#include <algorithm>

namespace bpp::rt {

void Program::record_park(int /*core*/, double /*t0_seconds*/,
                          double /*t1_seconds*/) {}

void Program::on_worker_exception(int /*core*/, const char* /*what*/) {
  quiesce();
}

Machine::Machine(int cores) : epoch_(std::chrono::steady_clock::now()) {
  cores_.resize(static_cast<size_t>(std::max(cores, 1)));
  for (auto& c : cores_) c = std::make_unique<Core>();
  workers_.reserve(cores_.size());
  for (int c = 0; c < static_cast<int>(cores_.size()); ++c)
    workers_.emplace_back([this, c] { worker(c); });
}

Machine::~Machine() {
  stop_.store(true, std::memory_order_seq_cst);
  for (auto& c : cores_) wake(*c);
  for (std::thread& w : workers_) w.join();
}

void Machine::wake(Core& c) {
  c.epoch.fetch_add(1, std::memory_order_seq_cst);
  {
    std::lock_guard<std::mutex> lk(c.mu);
  }
  c.cv.notify_all();
}

void Machine::attach(Program* p, const std::vector<int>& cores_used) {
  for (int c : cores_used) {
    Core& core = *cores_.at(static_cast<size_t>(c));
    std::lock_guard<std::mutex> lk(core.roster_mu);
    core.roster.push_back(p);
  }
}

void Machine::detach(Program* p) {
  // The program must already be quiesced: its process() is a no-op and it
  // arms no new paced sources, so the queued nodes drain quickly.
  for (auto& c : cores_) {
    std::lock_guard<std::mutex> lk(c->roster_mu);
    c->roster.erase(std::remove(c->roster.begin(), c->roster.end(), p),
                    c->roster.end());
  }
  // Wait for every queued ready node of `p` to be popped and retired.
  // Rare (one detach per program lifetime) and short (no-op drains), so a
  // wait loop beats wiring a condvar through the hot pop path. Re-wake
  // each iteration: a push that was mid-flight when a worker last polled
  // leaves its node invisible to that pop, and with the program quiesced
  // nobody else will bump the epoch again. The sleep keeps the re-wakes
  // from becoming a thundering herd while a faulted kernel of `p` stalls
  // mid-process — other programs still own these cores.
  while (p->inflight_.load(std::memory_order_acquire) != 0) {
    for (auto& c : cores_) wake(*c);
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
}

void Machine::enqueue(ReadyNode* n, int core, int self_core) {
  n->program->inflight_.fetch_add(1, std::memory_order_acq_rel);
  Core& c = *cores_[static_cast<size_t>(core)];
  c.queue.push(n);
  if (core == self_core) return;  // we are awake and re-poll before parking
  c.epoch.fetch_add(1, std::memory_order_seq_cst);
  if (c.sleepers.load(std::memory_order_seq_cst) > 0) {
    {
      std::lock_guard<std::mutex> lk(c.mu);
    }
    c.cv.notify_all();
  }
}

void Machine::worker(int core) {
  Core& sync = *cores_[static_cast<size_t>(core)];

  // Poll every attached program for paced sources that came due, and
  // compute the earliest pending release for the park deadline. The
  // roster lock is uncontended outside attach/detach; taking it once per
  // loop iteration keeps detach() free to destroy programs the moment
  // their in-flight count drains.
  // Exception containment: no exception may unwind through the worker
  // loop — that would std::terminate the whole pool and every co-tenant
  // with it. Escapees are routed to the owning program, which fails and
  // quiesces itself; its remaining queued nodes drain as no-ops.
  auto run_guarded = [&](Program* p, auto&& fn) {
    try {
      fn();
    } catch (const std::exception& e) {
      p->on_worker_exception(core, e.what());
    } catch (...) {
      p->on_worker_exception(core, "unknown exception");
    }
  };

  auto fire_due = [&] {
    const double t = now();
    std::lock_guard<std::mutex> lk(sync.roster_mu);
    for (Program* p : sync.roster)
      if (!p->quiesced())
        run_guarded(p, [&] { p->fire_due_sources(core, t); });
  };
  auto earliest_release = [&]() -> double {
    double next = -1.0;
    std::lock_guard<std::mutex> lk(sync.roster_mu);
    for (Program* p : sync.roster) {
      if (p->quiesced()) continue;
      const double rel = p->next_release(core);
      if (rel >= 0.0 && (next < 0.0 || rel < next)) next = rel;
    }
    return next;
  };

  while (!stop_.load(std::memory_order_acquire)) {
    fire_due();
    if (ReadyNode* n = sync.queue.pop()) {
      Program* p = n->program;
      if (!p->quiesced())
        run_guarded(p, [&] { p->process(n->kernel, core); });
      p->inflight_.fetch_sub(1, std::memory_order_acq_rel);
      continue;
    }

    // Park: eventcount protocol. Load the epoch, re-check for work, then
    // sleep until a producer bumps the epoch (or a paced deadline).
    const unsigned e = sync.epoch.load(std::memory_order_seq_cst);
    if (ReadyNode* n = sync.queue.pop()) {
      Program* p = n->program;
      if (!p->quiesced())
        run_guarded(p, [&] { p->process(n->kernel, core); });
      p->inflight_.fetch_sub(1, std::memory_order_acq_rel);
      continue;
    }
    if (stop_.load(std::memory_order_acquire)) break;

    const double next_release = earliest_release();
    const double t_park = now();
    {
      std::unique_lock<std::mutex> lk(sync.mu);
      sync.sleepers.fetch_add(1, std::memory_order_seq_cst);
      const auto pred = [&] {
        return sync.epoch.load(std::memory_order_seq_cst) != e ||
               stop_.load(std::memory_order_acquire);
      };
      if (next_release >= 0.0) {
        const auto deadline =
            epoch_ +
            std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(next_release));
        sync.cv.wait_until(lk, deadline, pred);
      } else {
        sync.cv.wait(lk, pred);
      }
      sync.sleepers.fetch_sub(1, std::memory_order_seq_cst);
    }
    {
      const double t_wake = now();
      std::lock_guard<std::mutex> lk(sync.roster_mu);
      for (Program* p : sync.roster)
        if (!p->quiesced()) p->record_park(core, t_park, t_wake);
    }
  }
}

}  // namespace bpp::rt
