#pragma once
// The "machine" half of the host runtime: a pool of worker cores that
// multiplexes any number of running programs (pipeline instances).
//
// PR 1 built the scheduling substrate — per-core ready queues with
// eventcount parking — but welded it to one graph per run. This header
// splits that weld so the same worker pool can serve many tenants (the
// `bpd` daemon) or exactly one (run_threaded, unchanged API):
//
//   * Machine owns the worker threads, one per core, plus each core's
//     ready queue and parking lot. It knows nothing about graphs,
//     channels, or kernels.
//   * Program is the unit of multiplexing: a running pipeline instance.
//     It owns every per-graph structure (channels, pending emissions,
//     kernel state, per-core scratch) and exposes process(kernel, core)
//     for the workers to call.
//   * ReadyNode carries (program, kernel), so one core's queue can
//     interleave kernels of different programs; a kernel still runs only
//     on the one core its mapping assigned, preserving the SPSC channel
//     and worker-private-state invariants from PR 1.
//
// Attach/detach protocol: attach() registers the program on the cores it
// uses (for paced-source wakeups) before the program seeds its initial
// ready nodes. detach() requires the program to be quiesced first —
// process() must have become a no-op — then removes it from the timed
// rosters, wakes every core, and waits for in-flight ready nodes to
// drain; after detach() returns, no worker holds a reference to the
// program and it is safe to destroy.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "core/graph.h"
#include "core/spsc_ring.h"

namespace bpp::rt {

class Program;

/// Intrusive node of a per-core ready queue; one per (program, kernel).
/// A kernel is in at most one queue at a time (its program's ready bit
/// gates enqueueing), so the node is safe to reuse as soon as pop()
/// returns it.
struct ReadyNode {
  std::atomic<ReadyNode*> next{nullptr};
  Program* program = nullptr;
  KernelId kernel = -1;
};

/// Vyukov intrusive MPSC queue: any worker pushes ready kernels for a
/// core; only that core's worker pops. pop() may transiently report empty
/// while a push is mid-flight — the pusher always bumps the core's
/// eventcount afterwards, so the consumer re-checks after parking.
class ReadyQueue {
 public:
  ReadyQueue() : push_end_(&stub_), pop_end_(&stub_) {}

  void push(ReadyNode* n) {
    n->next.store(nullptr, std::memory_order_relaxed);
    ReadyNode* prev = push_end_.exchange(n, std::memory_order_acq_rel);
    prev->next.store(n, std::memory_order_release);
  }

  ReadyNode* pop() {
    ReadyNode* tail = pop_end_;
    ReadyNode* next = tail->next.load(std::memory_order_acquire);
    if (tail == &stub_) {
      if (!next) return nullptr;
      pop_end_ = next;
      tail = next;
      next = next->next.load(std::memory_order_acquire);
    }
    if (next) {
      pop_end_ = next;
      return tail;
    }
    if (tail != push_end_.load(std::memory_order_acquire))
      return nullptr;  // push in flight; the pusher's wake will retry us
    push(&stub_);
    next = tail->next.load(std::memory_order_acquire);
    if (next) {
      pop_end_ = next;
      return tail;
    }
    return nullptr;  // competing push in flight; same recovery
  }

 private:
  alignas(kCacheLineSize) std::atomic<ReadyNode*> push_end_;
  alignas(kCacheLineSize) ReadyNode* pop_end_;  // worker-private
  ReadyNode stub_;
};

/// A running pipeline instance, as the machine sees it. Implemented by
/// the runtime's GraphProgram; the machine only ever calls these from the
/// worker owning `core`, or (fire_due_sources/next_release) while holding
/// that core's roster lock.
class Program {
 public:
  virtual ~Program() = default;

  /// Run kernel `k` until it can make no more progress. Must return
  /// immediately once the program is quiesced.
  virtual void process(KernelId k, int core) = 0;

  /// Mark ready any of this core's paced sources whose release time (in
  /// machine seconds) has arrived. Cheap when none are armed.
  virtual void fire_due_sources(int core, double now_seconds) = 0;

  /// Earliest machine time one of this core's paced sources waits for;
  /// negative when none are armed.
  [[nodiscard]] virtual double next_release(int core) const = 0;

  /// The worker for `core` parked from t0 to t1 (machine seconds). Called
  /// once per park for every program attached to the core — with several
  /// tenants sharing a core, each tenant's trace sees the pool's idle
  /// spans. Default: ignore.
  virtual void record_park(int core, double t0_seconds, double t1_seconds);

  /// An exception escaped process() or fire_due_sources() on a worker.
  /// The pool contains it: the program is failed, never the machine — a
  /// throwing kernel must not take down co-tenants (DESIGN.md §8). The
  /// default quiesces the program; overrides should record `what` first.
  /// Called on the worker thread, possibly concurrently from several.
  virtual void on_worker_exception(int core, const char* what);

  /// Stop doing work: after this, process() must return without touching
  /// channels and fire_due_sources must not arm new kernels. Queued ready
  /// nodes drain as no-ops.
  void quiesce() { quiesced_.store(true, std::memory_order_release); }
  [[nodiscard]] bool quiesced() const {
    return quiesced_.load(std::memory_order_acquire);
  }

 private:
  friend class Machine;
  std::atomic<bool> quiesced_{false};
  /// Ready nodes of this program currently queued or being processed.
  /// Machine-maintained; detach() waits for it to reach zero.
  std::atomic<long> inflight_{0};
};

/// The shared worker-core pool. Workers run a ready set, not a scan: a
/// kernel is processed only when something changed for it (see
/// DESIGN.md §4.1); parking uses a per-core eventcount, so an idle
/// machine burns no CPU regardless of how many programs are attached.
class Machine {
 public:
  explicit Machine(int cores);
  ~Machine();  // stops and joins the workers

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  [[nodiscard]] int cores() const { return static_cast<int>(cores_.size()); }

  /// Seconds since the machine started — the common clock programs use
  /// for paced releases and trace timestamps.
  [[nodiscard]] double now() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         epoch_)
        .count();
  }
  [[nodiscard]] std::chrono::steady_clock::time_point epoch() const {
    return epoch_;
  }

  /// Register `p` on the cores listed in `cores_used` (indices into this
  /// machine's pool) so their workers poll it for due paced sources. Call
  /// before seeding the program's initial ready nodes.
  void attach(Program* p, const std::vector<int>& cores_used);

  /// Unregister a quiesced program and wait until no worker holds a
  /// reference to it (all its queued ready nodes drained). The program
  /// must have been quiesced first.
  void detach(Program* p);

  /// Queue (program, kernel) on `core` and wake its worker. `self_core`
  /// is the calling worker's own core (a push onto one's own queue needs
  /// no wakeup), or -1 when called from a non-worker thread. The caller
  /// must have issued a seq_cst fence after the writes this readiness
  /// reports (the PR 1 store/fence/load protocol).
  void enqueue(ReadyNode* n, int core, int self_core);

 private:
  /// Per-core parking lot + ready queue + roster of attached programs.
  /// The mutex/condvar exist only to sleep and wake the worker; the
  /// roster has its own lock (taken by the worker once per loop
  /// iteration, and by attach/detach).
  struct Core {
    ReadyQueue queue;
    alignas(kCacheLineSize) std::atomic<unsigned> epoch{0};
    std::atomic<int> sleepers{0};
    std::mutex mu;
    std::condition_variable cv;
    /// Programs with kernels on this core (guarded by roster_mu).
    mutable std::mutex roster_mu;
    std::vector<Program*> roster;
  };

  void worker(int core);
  void wake(Core& c);

  std::chrono::steady_clock::time_point epoch_;
  std::vector<std::unique_ptr<Core>> cores_;
  std::vector<std::thread> workers_;
  alignas(kCacheLineSize) std::atomic<bool> stop_{false};
};

}  // namespace bpp::rt
