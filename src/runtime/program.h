#pragma once
// The "program" half of the host runtime: one running pipeline instance.
//
// A GraphProgram owns every per-graph structure — SPSC channels, pending
// emissions, per-kernel ready bits, per-core scratch, the paced-source
// release cursors, fault injection, degradation wiring, and the obs
// recorder session — and schedules itself onto a shared rt::Machine.
// run_threaded() wraps exactly one GraphProgram on a transient machine;
// the bpd service (src/service) attaches many to a persistent pool, each
// with its mapping's virtual cores translated onto pool cores.
//
// Lifecycle:
//   GraphProgram prog(g, mapping, opt, machine);
//   prog.set_on_complete(...);   // worker-thread callback; notify only —
//                                // never call finish() from inside it
//   prog.start();                // attach + seed the initial ready set
//   ... wait (done(), firings() for watchdogs, poll_recorder()) ...
//   RuntimeResult r = prog.finish();   // quiesce + detach + merge

#include <functional>
#include <memory>

#include "compiler/multiplex.h"
#include "core/graph.h"
#include "runtime/runtime.h"

namespace bpp {

namespace rt {
class Machine;
}  // namespace rt

class GraphProgram {
 public:
  /// Prepare `g` to run on `machine`. `mapping.core_of` values are
  /// machine-core indices (a multi-tenant caller translates its compiled
  /// virtual cores onto pool cores first); every value must be in
  /// [0, machine.cores()). The graph must outlive the program and its
  /// kernels mutate as it runs.
  GraphProgram(Graph& g, const Mapping& mapping, const RuntimeOptions& opt,
               rt::Machine& machine);
  ~GraphProgram();

  GraphProgram(const GraphProgram&) = delete;
  GraphProgram& operator=(const GraphProgram&) = delete;

  /// `fn` runs on a worker thread the moment every sink has consumed
  /// end-of-stream — or the program fails (check done()/failed() to tell
  /// which; a late co-firing fault can fire it twice, so treat it as a
  /// wakeup, not an event). Use it to notify a waiter; calling finish()
  /// from inside it would self-deadlock (finish drains the very node the
  /// callback runs under). Set before start().
  void set_on_complete(std::function<void()> fn);

  /// Attach to the machine and seed the initial ready set; workers start
  /// executing immediately.
  void start();

  [[nodiscard]] bool done() const;
  [[nodiscard]] bool started() const;
  /// True once a kernel firing raised: the program quiesced itself and
  /// will make no further progress (the machine and co-tenant programs
  /// are unaffected). finish() reports the same via RuntimeResult.
  [[nodiscard]] bool failed() const;
  /// First failure message (empty while !failed()).
  [[nodiscard]] std::string error() const;

  /// Ask every source to retire at its next frame boundary — the same
  /// safe point frame-shedding uses — so in-flight frames complete but no
  /// new frame starts. Idempotent; call after start(). A drained program
  /// never reaches done() (sinks see no end-of-stream); poll
  /// sources_drained() plus a stable firings() count, then finish().
  void request_drain();
  /// True when every source has retired (drained at a frame boundary or
  /// naturally exhausted). Only meaningful after request_drain().
  [[nodiscard]] bool sources_drained() const;
  /// Total firings so far — the progress counter watchdogs compare.
  [[nodiscard]] long firings() const;
  /// Seconds since start() on the machine clock.
  [[nodiscard]] double elapsed_seconds() const;
  /// Frames shed so far (0 without a degradation controller).
  [[nodiscard]] long frames_shed() const;

  /// Drain the obs rings mid-run so sessions longer than the ring
  /// capacity keep every event. No-op without a recorder. Single
  /// consumer: call from one monitor thread only.
  void poll_recorder();

  /// Quiesce, detach from the machine, and merge the per-core tallies
  /// into a RuntimeResult (completed = done()). Idempotent; after the
  /// first call the program no longer executes.
  RuntimeResult finish();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace bpp
