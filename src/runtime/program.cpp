#include "runtime/program.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/error.h"
#include "core/firing.h"
#include "core/spsc_ring.h"
#include "fault/degradation.h"
#include "fault/injector.h"
#include "obs/recorder.h"
#include "runtime/machine.h"

namespace bpp {

namespace {

// The per-program execution state (see DESIGN.md §4.1 and §6):
//
//  * Channels are lock-free SPSC rings — each has exactly one producer
//    kernel and one consumer kernel, each kernel owned by one core.
//  * A kernel is enqueued on its core's ready queue at most once however
//    many channels feed it, guarded by a per-kernel ready bit.
//  * All flag protocols are the PR 1 store/fence/load pattern: the
//    announcing side writes its state (ring slot + index, or blocked
//    bit), issues a seq_cst fence, then reads the other side's state; the
//    reacting side does the mirror image. The two fences totally order
//    the exchanges, so at least one side always observes the other.
//
// The worker threads themselves, the ready queues, and the parking lots
// live in rt::Machine; this file only decides *what* each kernel does
// when its (program, kernel) node is popped.

struct RtChannel {
  explicit RtChannel(std::size_t capacity) : ring(capacity) {}

  SpscRing<Item> ring;
  KernelId producer_kernel = -1;
  KernelId consumer_kernel = -1;
  /// Peak occupancy observed at push time. Producer-owned plain int (only
  /// the producing worker writes it); read after the program finishes.
  int high_water = 0;
  /// Producer saw the ring full and parked; the consumer's next pop must
  /// re-arm (mark ready) the producer kernel. Padded: written by both
  /// sides, and must not share a line with the ring indices.
  alignas(kCacheLineSize) std::atomic<bool> producer_blocked{false};
};

struct alignas(kCacheLineSize) ReadyFlag {
  std::atomic<bool> ready{false};
};

}  // namespace

struct GraphProgram::Impl final : rt::Program {
  /// Per-core scratch, reused across process() calls so the hot loop
  /// stops heap-allocating once vector capacities warm up. Only the
  /// worker owning the core touches its entry.
  struct CoreState {
    ExecContext ctx;
    FireDecision decision;
    std::vector<Item> popped;
    /// timed[k] >= 0: release time (program seconds) paced source k waits
    /// for; entries only for this core's kernels.
    std::vector<double> timed;
    int timed_armed = 0;
    /// This program's event ring for this core, or null when tracing is
    /// off — the single branch every instrumented site pays when disabled.
    obs::EventRing* ring = nullptr;
    /// Core-local per-kernel firing counts, merged at finish() (keeps the
    /// hot loop off shared cache lines).
    std::vector<long> fired;
    /// Core-local count of perturbed firings, merged at finish().
    long faults = 0;
  };

  Impl(Graph& g, const Mapping& mapping, const RuntimeOptions& opt,
       rt::Machine& machine)
      : g_(g), opt_(opt), mapping_(mapping), machine_(machine) {
    const int n = g.kernel_count();
    const int mcores = machine.cores();
    for (int k = 0; k < n; ++k) {
      const int c = mapping.core_of.at(static_cast<size_t>(k));
      if (c < 0 || c >= mcores)
        throw ExecutionError(
            "GraphProgram: mapping core " + std::to_string(c) +
            " outside the machine's pool of " + std::to_string(mcores));
    }

    channels_.resize(static_cast<size_t>(g.channel_count()));
    for (int c = 0; c < g.channel_count(); ++c) {
      const Channel& ch = g.channel(c);
      if (!ch.alive) continue;  // dead channels get no runtime state
      auto rt = std::make_unique<RtChannel>(
          static_cast<std::size_t>(opt.channel_capacity));
      rt->producer_kernel = ch.src_kernel;
      rt->consumer_kernel = ch.dst_kernel;
      channels_[static_cast<size_t>(c)] = std::move(rt);
    }

    in_of_.resize(static_cast<size_t>(n));
    outs_of_.resize(static_cast<size_t>(n));
    connected_.resize(static_cast<size_t>(n));
    pending_.resize(static_cast<size_t>(n));
    eos_needed_.assign(static_cast<size_t>(n), 0);
    eos_seen_.assign(static_cast<size_t>(n), 0);
    is_sink_.assign(static_cast<size_t>(n), 0);
    src_next_.resize(static_cast<size_t>(n));
    sink_done_ = std::make_unique<std::atomic<bool>[]>(static_cast<size_t>(n));
    ready_ = std::make_unique<ReadyFlag[]>(static_cast<size_t>(n));
    nodes_ = std::make_unique<rt::ReadyNode[]>(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      sink_done_[static_cast<size_t>(i)] = false;
      nodes_[static_cast<size_t>(i)].kernel = i;
      nodes_[static_cast<size_t>(i)].program = this;
    }
    core_kernels_.resize(static_cast<size_t>(mcores));
    state_.resize(static_cast<size_t>(mcores));

    for (KernelId k = 0; k < n; ++k) {
      Kernel& kn = g.kernel(k);
      in_of_[static_cast<size_t>(k)].assign(kn.inputs().size(), -1);
      for (size_t i = 0; i < kn.inputs().size(); ++i) {
        auto c = g.in_channel(k, static_cast<int>(i));
        if (c) {
          in_of_[static_cast<size_t>(k)][i] = *c;
          connected_[static_cast<size_t>(k)].push_back(static_cast<int>(i));
          ++eos_needed_[static_cast<size_t>(k)];
        }
      }
      outs_of_[static_cast<size_t>(k)].resize(kn.outputs().size());
      for (size_t o = 0; o < kn.outputs().size(); ++o)
        outs_of_[static_cast<size_t>(k)][o] = g.out_channels(k, static_cast<int>(o));
      core_kernels_[static_cast<size_t>(mapping.core_of[static_cast<size_t>(k)])]
          .push_back(k);
      kn.init();
      for (Emission& e : kn.initial_emissions())
        pending_[static_cast<size_t>(k)].push_back(std::move(e));
      if (!kn.is_source() && g.out_channels(k).empty()) {
        is_sink_[static_cast<size_t>(k)] = 1;
        ++total_sinks_;
      }
    }

    kernel_fired_.assign(static_cast<size_t>(n), 0);
    src_at_frame_start_.assign(static_cast<size_t>(n), 1);
    src_frame_idx_.assign(static_cast<size_t>(n), 0);
    src_dropping_.assign(static_cast<size_t>(n), 0);
    src_stopped_.assign(static_cast<size_t>(n), 0);
    wedged_.assign(static_cast<size_t>(n), 0);
    for (KernelId k = 0; k < n; ++k)
      if (g.kernel(k).is_source()) ++total_sources_;

    cores_used_.clear();
    for (int c = 0; c < mcores; ++c)
      if (!core_kernels_[static_cast<size_t>(c)].empty())
        cores_used_.push_back(c);

    // Fault injection: copy + re-bind so the caller's injector is reusable
    // across runs of different graphs.
    if (opt.injector != nullptr) {
      inj_ = *opt.injector;
      inj_.bind(g, mapping.core_of);
      faults_ = inj_.active();
    }

    // Graceful degradation: sinks report completions, and the first
    // rate-driven finite source owns shed claims (a deterministic choice;
    // shedding with several independent rate-driven sources would need a
    // cross-source frame barrier this runtime does not model).
    ctrl_ = opt.degradation;
    if (ctrl_ != nullptr) {
      ctrl_->attach_sinks(total_sinks_);
      for (KernelId k = 0; k < n; ++k) {
        Kernel& kn = g.kernel(k);
        if (!kn.is_source()) continue;
        auto spec = kn.source_spec(0);
        if (spec && spec->rate_hz > 0.0 && spec->frames > 0) {
          shed_source_ = k;
          break;
        }
      }
    }
  }

  ~Impl() override = default;

  // ---- machine-facing interface -----------------------------------------

  void start() {
    if (obs::kCompiledIn && opt_.recorder) {
      rec_ = opt_.recorder;
      std::vector<std::string> names;
      names.reserve(static_cast<size_t>(g_.kernel_count()));
      for (KernelId k = 0; k < g_.kernel_count(); ++k)
        names.push_back(g_.kernel(k).name());
      rec_->begin_session(obs::TraceClock::kWall, 0.0, machine_.cores(),
                          std::move(names));
      for (int c : cores_used_)
        state_[static_cast<size_t>(c)].ring = rec_->ring(c);
    }
    for (int c : cores_used_) {
      CoreState& s = state_[static_cast<size_t>(c)];
      s.fired.assign(static_cast<size_t>(g_.kernel_count()), 0);
      s.timed.assign(static_cast<size_t>(g_.kernel_count()), -1.0);
    }

    t0_off_ = machine_.now();
    started_ = true;
    machine_.attach(this, cores_used_);
    // Everything starts ready: sources to emit, the rest to drain initial
    // emissions or discover they have nothing to do. Two phases, because
    // the machine's workers are already running: every ready bit must be
    // set before the first node is enqueued, so a worker that processes an
    // early kernel and pushes to a later one finds that consumer's bit
    // already true and skips mark_ready's enqueue. Interleaving bit-set
    // with enqueue would let that mark_ready enqueue a node the loop below
    // then enqueues again — a double-push that corrupts the intrusive
    // ready queue (nodes may only be queued once).
    for (KernelId k = 0; k < g_.kernel_count(); ++k)
      ready_[static_cast<size_t>(k)].ready.store(true,
                                                 std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    for (KernelId k = 0; k < g_.kernel_count(); ++k)
      machine_.enqueue(&nodes_[static_cast<size_t>(k)],
                       mapping_.core_of[static_cast<size_t>(k)],
                       /*self_core=*/-1);
  }

  void process(KernelId k, int core) override {
    ready_[static_cast<size_t>(k)].ready.store(false, std::memory_order_seq_cst);
    std::atomic_thread_fence(std::memory_order_seq_cst);

    CoreState& w = state_[static_cast<size_t>(core)];
    Kernel& kn = g_.kernel(k);
    if (kn.is_source()) {
      if (!drain(k, core, w) &&
          static_cast<long>(pending_[static_cast<size_t>(k)].size()) >=
              kn.pending_capacity())
        return;
      run_source(k, kn, core, w);
      return;
    }

    if (wedged_[static_cast<size_t>(k)]) return;  // kWedge: never fires again
    const auto& in_of = in_of_[static_cast<size_t>(k)];
    while (!quiesced()) {
      if (!drain(k, core, w) &&
          static_cast<long>(pending_[static_cast<size_t>(k)].size()) >=
              kn.pending_capacity())
        return;  // back-pressured; the consumer's pop re-arms us

      decide_fire_into(
          kn, connected_[static_cast<size_t>(k)],
          [&](int port) -> const Item* {
            const ChannelId c = in_of[static_cast<size_t>(port)];
            if (c < 0) return nullptr;
            return chan(c).ring.front();  // lock-free consumer-side peek
          },
          w.decision);
      const FireDecision& d = w.decision;
      if (!d.fires()) return;  // idle; the next push re-arms us

      const bool rec = obs::kCompiledIn && w.ring != nullptr;
      const double t_begin = rec ? elapsed() : 0.0;

      // Fault injection, keyed on the kernel's firing index — w.fired[k]
      // counts exactly that, and only this core fires k, so the key is
      // interleaving-independent (same seed -> same perturbed firings).
      fault::Perturbation pert;
      if (faults_) {
        pert = inj_.perturb(k, w.fired[static_cast<size_t>(k)]);
        if (!pert.identity()) {
          ++w.faults;
          if (rec) {
            obs::TraceEvent e;
            e.kind = obs::EventKind::kFaultInject;
            e.t0 = e.t1 = elapsed();
            e.kernel = k;
            e.core = core;
            e.aux0 = static_cast<float>(pert.time_scale);
            e.aux1 = static_cast<float>(pert.stall_seconds);
            e.aux2 = static_cast<float>(pert.delivery_delay_seconds);
            w.ring->emit(e);
          }
        }
        // Recovery fault kinds (DESIGN.md §8): a wedge halts this kernel
        // for good before it pops anything — inputs back up and the
        // program stops making progress (the supervisor's stall watchdog
        // is what notices). A throw aborts the firing; the machine's
        // worker backstop routes it to on_worker_exception, which fails
        // and quiesces this program only.
        if (pert.wedge) {
          wedged_[static_cast<size_t>(k)] = 1;
          return;
        }
        if (pert.throw_fault)
          throw fault::InjectedFault("injected fault: kernel '" + kn.name() +
                                     "' firing " +
                                     std::to_string(w.fired[static_cast<size_t>(k)]));
      }

      ExecContext& ctx = w.ctx;
      ctx.reset();
      w.popped.clear();
      w.popped.reserve(d.pop_inputs.size());
      for (int p : d.pop_inputs) {
        RtChannel& ch = chan(in_of[static_cast<size_t>(p)]);
        w.popped.push_back(std::move(*ch.ring.front_mut()));
        ch.ring.pop();
        if (rec) {
          obs::TraceEvent e;
          e.kind = obs::EventKind::kChannelPop;
          e.t0 = e.t1 = elapsed();
          e.core = core;
          e.channel = in_of[static_cast<size_t>(p)];
          e.aux0 = static_cast<float>(ch.ring.size_approx());
          w.ring->emit(e);
        }
        if (is_token(w.popped.back()) &&
            as_token(w.popped.back()).cls == tok::kEndOfStream)
          ++eos_seen_[static_cast<size_t>(k)];
      }
      std::atomic_thread_fence(std::memory_order_seq_cst);
      for (int p : d.pop_inputs)
        rearm_blocked_producer(chan(in_of[static_cast<size_t>(p)]), core);
      for (size_t i = 0; i < d.pop_inputs.size(); ++i)
        ctx.bind_input(d.pop_inputs[i], &w.popped[i]);

      const double t_read = rec || faults_ ? elapsed() : 0.0;
      if (pert.stall_seconds > 0.0) fault::spin_for(pert.stall_seconds);
      const double t_run = pert.stall_seconds > 0.0 ? elapsed() : t_read;
      if (d.kind == FireDecision::Kind::Method) {
        if (d.token >= 0) ctx.set_trigger_token(d.token, d.payload);
        kn.invoke(d.method, ctx);
      } else {
        for (int o : d.forward_outputs)
          ctx.emit(o, ControlToken{d.token, d.payload});
      }
      // Overrun/throttle: stretch the firing by spinning for the induced
      // extra time (wall clock cannot run a kernel faster, so time scales
      // below 1 are a no-op here; the simulator honors them). Delivery
      // delay spins between the firing and the publication of its outputs.
      if (pert.time_scale > 1.0)
        fault::spin_for((elapsed() - t_run) * (pert.time_scale - 1.0));
      if (pert.delivery_delay_seconds > 0.0)
        fault::spin_for(pert.delivery_delay_seconds);
      for (Emission& e : ctx.emissions())
        pending_[static_cast<size_t>(k)].push_back(std::move(e));
      firings_.fetch_add(1, std::memory_order_relaxed);
      ++w.fired[static_cast<size_t>(k)];
      if (rec) {
        obs::TraceEvent e;
        e.kind = obs::EventKind::kFiring;
        e.t0 = t_begin;
        e.t1 = elapsed();
        e.aux0 = static_cast<float>(e.t1 - t_read);    // run (invoke)
        e.aux1 = static_cast<float>(t_read - t_begin);  // read (pops)
        e.kernel = k;
        e.core = core;
        e.method = d.kind == FireDecision::Kind::Method ? d.method : -1;
        w.ring->emit(e);
      }

      // Frame tracking: a sink consuming an end-of-frame token closes the
      // frame whose index rides in the token payload. The degradation
      // controller gets the same completions as miss feedback.
      if ((rec || ctrl_ != nullptr) && is_sink_[static_cast<size_t>(k)]) {
        for (const Item& it : w.popped) {
          if (!is_token(it) || as_token(it).cls != tok::kEndOfFrame) continue;
          const double t_end = elapsed();
          if (rec) {
            obs::TraceEvent e;
            e.kind = obs::EventKind::kFrameEnd;
            e.t0 = e.t1 = t_end;
            e.kernel = k;
            e.core = core;
            e.method = as_token(it).payload;
            w.ring->emit(e);
          }
          if (ctrl_ != nullptr)
            ctrl_->on_frame_end(as_token(it).payload, t_end);
        }
      }

      // Sink completion: all connected inputs delivered end-of-stream.
      if (is_sink_[static_cast<size_t>(k)] &&
          eos_seen_[static_cast<size_t>(k)] >= eos_needed_[static_cast<size_t>(k)] &&
          !sink_done_[static_cast<size_t>(k)].exchange(true)) {
        if (finished_sinks_.fetch_add(1, std::memory_order_acq_rel) + 1 >=
                total_sinks_ &&
            total_sinks_ > 0)
          signal_done();
      }
    }
  }

  void fire_due_sources(int core, double now_machine) override {
    CoreState& w = state_[static_cast<size_t>(core)];
    if (w.timed_armed == 0) return;
    const double now = now_machine - t0_off_;
    for (KernelId k : core_kernels_[static_cast<size_t>(core)]) {
      double& rel = w.timed[static_cast<size_t>(k)];
      if (rel >= 0.0 && now + 1e-9 >= rel) {
        rel = -1.0;
        --w.timed_armed;
        mark_ready(k, core);  // our own queue; runs on the next pop
      }
    }
  }

  [[nodiscard]] double next_release(int core) const override {
    const CoreState& w = state_[static_cast<size_t>(core)];
    if (w.timed_armed == 0) return -1.0;
    double next = -1.0;
    for (KernelId k : core_kernels_[static_cast<size_t>(core)]) {
      const double rel = w.timed[static_cast<size_t>(k)];
      if (rel >= 0.0 && (next < 0.0 || rel < next)) next = rel;
    }
    return next < 0.0 ? -1.0 : next + t0_off_;
  }

  void record_park(int core, double t0_machine, double t1_machine) override {
    CoreState& w = state_[static_cast<size_t>(core)];
    if (!obs::kCompiledIn || !w.ring) return;
    obs::TraceEvent ev;
    ev.kind = obs::EventKind::kPark;
    ev.t0 = t0_machine - t0_off_;
    ev.t1 = t1_machine - t0_off_;
    ev.core = core;
    w.ring->emit(ev);
  }

  // ---- internals ---------------------------------------------------------

  [[nodiscard]] double elapsed() const { return machine_.now() - t0_off_; }

  RtChannel& chan(ChannelId c) { return *channels_[static_cast<size_t>(c)]; }

  /// Mark kernel `k` ready and wake its core. Callers must have issued a
  /// seq_cst fence after the channel writes this readiness reports.
  /// `self_core` is the calling worker's core: a push onto one's own queue
  /// needs no eventcount bump — the worker is awake and re-polls its queue
  /// before it can park.
  void mark_ready(KernelId k, int self_core) {
    if (ready_[static_cast<size_t>(k)].ready.exchange(
            true, std::memory_order_seq_cst))
      return;  // already queued (or about to re-run)
    machine_.enqueue(&nodes_[static_cast<size_t>(k)],
                     mapping_.core_of[static_cast<size_t>(k)], self_core);
  }

  /// True when every channel in `outs` has space. On the first full one,
  /// arms its producer_blocked flag so the consumer's next pop re-arms us,
  /// re-checking afterwards to close the race against a concurrent pop.
  bool has_space_or_arm(const std::vector<ChannelId>& outs) {
    for (ChannelId c : outs) {
      RtChannel& ch = chan(c);
      if (!ch.ring.full()) continue;
      ch.producer_blocked.store(true, std::memory_order_seq_cst);
      std::atomic_thread_fence(std::memory_order_seq_cst);
      if (!ch.ring.full()) continue;  // freed meanwhile; stale flag only
                                      // costs one spurious re-arm
      return false;
    }
    return true;
  }

  /// Push one item to every channel of a fan-out and mark the consumers
  /// ready. Callers guarantee space (has_space_or_arm) — only the owning
  /// worker pushes, so space cannot shrink in between.
  void push_all(const std::vector<ChannelId>& outs, Item item, int core,
                CoreState& w) {
    const size_t n = outs.size();
    for (size_t i = 0; i < n; ++i) {
      RtChannel& ch = chan(outs[i]);
      const bool ok = i + 1 == n ? ch.ring.try_push(std::move(item))
                                 : ch.ring.try_push(item);
      if (!ok)
        throw ExecutionError("runtime: push on full channel (scheduler bug)");
      const int occ = static_cast<int>(ch.ring.size_approx());
      if (occ > ch.high_water) ch.high_water = occ;
      if (obs::kCompiledIn && w.ring) {
        obs::TraceEvent e;
        e.kind = obs::EventKind::kChannelPush;
        e.t0 = e.t1 = elapsed();
        e.core = core;
        e.channel = outs[i];
        e.aux0 = static_cast<float>(occ);
        w.ring->emit(e);
      }
    }
    std::atomic_thread_fence(std::memory_order_seq_cst);
    for (ChannelId c : outs) mark_ready(chan(c).consumer_kernel, core);
  }

  /// Drain pending emissions of kernel k. Returns true if all were moved.
  /// With tracing on, a drain that moved items is recorded as a write span
  /// (the back-pressured write phase of Fig. 13's breakdown).
  bool drain(KernelId k, int core, CoreState& w) {
    auto& pending = pending_[static_cast<size_t>(k)];
    if (pending.empty()) return true;
    const bool rec = obs::kCompiledIn && w.ring != nullptr;
    const double t_begin = rec ? elapsed() : 0.0;
    bool moved = false;
    bool all = true;
    while (!pending.empty()) {
      Emission& e = pending.front();
      const auto& outs = outs_of_[static_cast<size_t>(k)][static_cast<size_t>(e.port)];
      if (!has_space_or_arm(outs)) {
        all = false;
        break;
      }
      push_all(outs, std::move(e.item), core, w);
      pending.pop_front();
      moved = true;
    }
    if (rec && moved) {
      obs::TraceEvent e;
      e.kind = obs::EventKind::kWrite;
      e.t0 = t_begin;
      e.t1 = elapsed();
      e.aux2 = static_cast<float>(e.t1 - e.t0);  // whole span is write time
      e.kernel = k;
      e.core = core;
      w.ring->emit(e);
    }
    return all;
  }

  /// After popping (and fencing), re-arm producers that parked on
  /// back-pressure of channel `ch`.
  void rearm_blocked_producer(RtChannel& ch, int self_core) {
    if (ch.producer_blocked.load(std::memory_order_seq_cst) &&
        ch.producer_blocked.exchange(false, std::memory_order_seq_cst))
      mark_ready(ch.producer_kernel, self_core);
  }

  void signal_done() {
    if (!done_.exchange(true, std::memory_order_acq_rel))
      if (on_complete_) on_complete_();
  }

  void update_max_lag(double lag) {
    double cur = max_lag_.load(std::memory_order_relaxed);
    while (lag > cur &&
           !max_lag_.compare_exchange_weak(cur, lag, std::memory_order_relaxed)) {
    }
  }

  /// Instant event helper for frame/shed boundaries on a source.
  void emit_frame_instant(obs::EventKind kind, KernelId k, int core,
                          CoreState& w, std::int32_t frame) {
    if (!obs::kCompiledIn || !w.ring) return;
    obs::TraceEvent e;
    e.kind = kind;
    e.t0 = e.t1 = elapsed();
    e.kernel = k;
    e.core = core;
    e.method = frame;
    w.ring->emit(e);
  }

  /// Source loop: drain the staged emission then poll for more. Exits when
  /// exhausted (never re-armed), back-pressured (producer_blocked armed),
  /// or — paced — not due yet (timed re-arm via CoreState::timed).
  void run_source(KernelId k, Kernel& kn, int core, CoreState& w) {
    if (src_stopped_[static_cast<size_t>(k)]) return;  // drained or exhausted
    auto& next = src_next_[static_cast<size_t>(k)];
    const bool sheddable = ctrl_ != nullptr && k == shed_source_;
    while (!quiesced()) {
      if (next.has_value()) {
        // Drain: retire at the next frame boundary — the same safe point
        // shedding uses — so the in-flight frame completes downstream but
        // no new frame starts. Checked before pacing: a source parked
        // until its next release stops the moment it is next looked at.
        if (src_at_frame_start_[static_cast<size_t>(k)] &&
            !src_dropping_[static_cast<size_t>(k)] && is_data(next->item) &&
            drain_.load(std::memory_order_acquire)) {
          mark_source_stopped(k);
          return;
        }
        // Inspect before the item is moved. Frame bookkeeping runs
        // unconditionally — the shed state machine needs it even with
        // tracing off.
        const bool frame_data = is_data(next->item);
        const bool frame_eof =
            !frame_data && as_token(next->item).cls == tok::kEndOfFrame;
        const bool frame_eos =
            !frame_data && as_token(next->item).cls == tok::kEndOfStream;

        // Pacing is honored whether or not the item will be dropped: the
        // camera does not pause while we shed.
        if (opt_.pace_inputs) {
          const double release = next->release_seconds * opt_.pace_slowdown;
          if (elapsed() + 1e-9 < release) {
            if (w.timed[static_cast<size_t>(k)] < 0.0) ++w.timed_armed;
            w.timed[static_cast<size_t>(k)] = release;  // due later
            return;
          }
        }

        // Frame boundary: claim an armed shed request and drop the whole
        // upcoming frame (never mid-frame, never end-of-stream).
        if (frame_data && src_at_frame_start_[static_cast<size_t>(k)] &&
            !src_dropping_[static_cast<size_t>(k)] && sheddable &&
            ctrl_->should_shed()) {
          src_dropping_[static_cast<size_t>(k)] = 1;
          emit_frame_instant(obs::EventKind::kFrameShed, k, core, w,
                             src_frame_idx_[static_cast<size_t>(k)]);
        }

        if (src_dropping_[static_cast<size_t>(k)] && !frame_eos) {
          // Dropping: consume without pushing.
          if (frame_data && src_at_frame_start_[static_cast<size_t>(k)])
            src_at_frame_start_[static_cast<size_t>(k)] = 0;
          next.reset();
          if (frame_eof) {
            const std::int32_t shed = src_frame_idx_[static_cast<size_t>(k)];
            ++src_frame_idx_[static_cast<size_t>(k)];
            src_at_frame_start_[static_cast<size_t>(k)] = 1;
            src_dropping_[static_cast<size_t>(k)] = 0;
            emit_frame_instant(obs::EventKind::kShedRecover, k, core, w, shed);
            ctrl_->on_shed_complete(shed);
          }
        } else {
          const auto& outs = outs_of_[static_cast<size_t>(k)]
                                     [static_cast<size_t>(next->port)];
          if (!has_space_or_arm(outs)) return;
          if (opt_.pace_inputs) {
            const double release = next->release_seconds * opt_.pace_slowdown;
            const double lag = elapsed() - release;
            const bool late = lag > opt_.lag_tolerance_seconds;
            if (late) {
              delayed_.fetch_add(1, std::memory_order_relaxed);
              update_max_lag(lag);
            }
            if (obs::kCompiledIn && w.ring) {
              obs::TraceEvent e;
              e.kind = obs::EventKind::kSourceRelease;
              e.t0 = e.t1 = elapsed();
              e.kernel = k;
              e.core = core;
              e.aux0 = static_cast<float>(lag > 0.0 ? lag : 0.0);
              e.aux1 = late ? 1.0f : 0.0f;
              w.ring->emit(e);
            }
          }
          push_all(outs, std::move(next->item), core, w);
          next.reset();
          if (frame_data && src_at_frame_start_[static_cast<size_t>(k)]) {
            src_at_frame_start_[static_cast<size_t>(k)] = 0;
            emit_frame_instant(obs::EventKind::kFrameStart, k, core, w,
                               src_frame_idx_[static_cast<size_t>(k)]);
          } else if (frame_eof) {
            ++src_frame_idx_[static_cast<size_t>(k)];
            src_at_frame_start_[static_cast<size_t>(k)] = 1;
          }
        }
      }
      SourceEmission e;
      if (!kn.source_poll(e)) {
        mark_source_stopped(k);  // exhausted for good
        return;
      }
      next = std::move(e);
    }
  }

  /// Count each source's retirement once (owning worker only writes the
  /// flag; the counter is read cross-thread by sources_drained()).
  void mark_source_stopped(KernelId k) {
    if (src_stopped_[static_cast<size_t>(k)]) return;
    src_stopped_[static_cast<size_t>(k)] = 1;
    sources_stopped_.fetch_add(1, std::memory_order_acq_rel);
  }

  /// Terminal failure: record the first message, quiesce, and notify the
  /// completion callback (it signals terminal transitions, not success —
  /// waiters check done()/failed()). Safe from any worker, any time.
  void fail(const char* what) {
    {
      std::lock_guard<std::mutex> lk(err_mu_);
      if (error_.empty()) error_ = what;
    }
    failed_.store(true, std::memory_order_release);
    quiesce();
    if (on_complete_) on_complete_();
  }

  void on_worker_exception(int /*core*/, const char* what) override {
    fail(what);
  }

  void request_drain() {
    if (drain_.exchange(true, std::memory_order_acq_rel)) return;
    if (!started_) return;
    // Wake every source so one parked until a future release re-checks
    // the drain flag now instead of at that release.
    std::atomic_thread_fence(std::memory_order_seq_cst);
    for (KernelId k = 0; k < g_.kernel_count(); ++k)
      if (g_.kernel(k).is_source()) mark_ready(k, /*self_core=*/-1);
  }

  RuntimeResult finish() {
    if (finished_) return result_;
    finished_ = true;
    const double wall = started_ ? elapsed() : 0.0;
    quiesce();
    if (started_) machine_.detach(this);

    RuntimeResult res;
    res.completed = done_.load(std::memory_order_acquire);
    res.failed = failed_.load(std::memory_order_acquire);
    {
      std::lock_guard<std::mutex> lk(err_mu_);
      res.error = error_;
    }
    res.wall_seconds = wall;
    res.total_firings = firings_.load();
    long faults_total = 0;
    for (int c : cores_used_) {
      const CoreState& w = state_[static_cast<size_t>(c)];
      for (size_t k = 0; k < w.fired.size(); ++k)
        kernel_fired_[k] += w.fired[k];
      faults_total += w.faults;
    }
    res.faults_injected = faults_total;
    if (ctrl_ != nullptr) res.frames_shed = ctrl_->frames_shed();
    res.delayed_releases = delayed_.load();
    res.max_release_lag_seconds = max_lag_.load();
    res.kernel_firings = kernel_fired_;
    res.channel_high_water.assign(channels_.size(), -1);
    for (size_t c = 0; c < channels_.size(); ++c)
      if (channels_[c]) res.channel_high_water[c] = channels_[c]->high_water;

    if (obs::kCompiledIn && rec_) {
      rec_->finish_session(res.wall_seconds);
      obs::MetricsRegistry& m = rec_->metrics();
      m.gauge("runtime.wall_seconds").set(res.wall_seconds);
      m.counter("runtime.total_firings").add(res.total_firings);
      m.counter("runtime.delayed_releases").add(res.delayed_releases);
      m.gauge("runtime.max_release_lag_seconds")
          .set(res.max_release_lag_seconds);
      if (faults_) m.counter("runtime.faults_injected").add(res.faults_injected);
      if (ctrl_ != nullptr)
        m.counter("runtime.frames_shed").add(res.frames_shed);
      if (opt_.pace_inputs) {
        m.gauge("runtime.lag_tolerance_seconds")
            .set(opt_.lag_tolerance_seconds);
        m.gauge("runtime.pace_slowdown").set(opt_.pace_slowdown);
      }
      for (size_t c = 0; c < channels_.size(); ++c)
        if (channels_[c])
          m.high_water("runtime.channel." + std::to_string(c) + ".occupancy")
              .update(static_cast<double>(channels_[c]->high_water));
      for (size_t k = 0; k < kernel_fired_.size(); ++k)
        if (kernel_fired_[k] > 0)
          m.counter("runtime.kernel." +
                    g_.kernel(static_cast<KernelId>(k)).name() + ".firings")
              .add(kernel_fired_[k]);
    }
    result_ = res;
    return res;
  }

  // ---- state -------------------------------------------------------------

  Graph& g_;
  RuntimeOptions opt_;
  Mapping mapping_;
  rt::Machine& machine_;
  std::function<void()> on_complete_;
  std::vector<std::unique_ptr<RtChannel>> channels_;  // null for dead channels
  std::vector<std::vector<ChannelId>> in_of_;
  std::vector<std::vector<std::vector<ChannelId>>> outs_of_;
  std::vector<std::vector<int>> connected_;
  std::vector<std::deque<Emission>> pending_;
  std::vector<std::vector<KernelId>> core_kernels_;
  std::vector<CoreState> state_;  ///< indexed by machine core
  std::vector<int> cores_used_;   ///< machine cores hosting our kernels
  std::vector<int> eos_needed_;
  std::vector<int> eos_seen_;
  std::vector<char> is_sink_;
  std::vector<std::optional<SourceEmission>> src_next_;
  /// Per-source frame cursors (only the owning worker touches its sources):
  /// whether the next data item opens a frame, and that frame's index.
  std::vector<char> src_at_frame_start_;
  std::vector<std::int32_t> src_frame_idx_;
  /// Per-source shed state: mid-drop of the current frame.
  std::vector<char> src_dropping_;
  /// Per-source retirement flag (drain/exhaustion; owner-worker written).
  std::vector<char> src_stopped_;
  /// Per-kernel kWedge latches (owner-worker written).
  std::vector<char> wedged_;
  int total_sources_ = 0;
  /// First failure message, set once under err_mu_.
  mutable std::mutex err_mu_;
  std::string error_;
  /// Fault injection (bound copy; see ctor) and degradation wiring.
  fault::Injector inj_;
  bool faults_ = false;
  fault::DegradationController* ctrl_ = nullptr;
  KernelId shed_source_ = -1;
  std::unique_ptr<std::atomic<bool>[]> sink_done_;
  std::unique_ptr<ReadyFlag[]> ready_;      // per-kernel, cache-line padded
  std::unique_ptr<rt::ReadyNode[]> nodes_;  // per-kernel ready-queue nodes
  double t0_off_ = 0.0;  ///< machine time at start()
  int total_sinks_ = 0;
  obs::Recorder* rec_ = nullptr;  // null = tracing off
  bool started_ = false;
  bool finished_ = false;
  RuntimeResult result_;
  std::vector<long> kernel_fired_;  // merged from CoreStates in finish()

  // Hot counters, each on its own line so workers do not false-share.
  alignas(kCacheLineSize) std::atomic<bool> done_{false};
  alignas(kCacheLineSize) std::atomic<bool> failed_{false};
  alignas(kCacheLineSize) std::atomic<bool> drain_{false};
  alignas(kCacheLineSize) std::atomic<int> sources_stopped_{0};
  alignas(kCacheLineSize) std::atomic<long> firings_{0};
  alignas(kCacheLineSize) std::atomic<int> finished_sinks_{0};
  alignas(kCacheLineSize) std::atomic<long> delayed_{0};
  alignas(kCacheLineSize) std::atomic<double> max_lag_{0.0};
};

GraphProgram::GraphProgram(Graph& g, const Mapping& mapping,
                           const RuntimeOptions& opt, rt::Machine& machine)
    : impl_(std::make_unique<Impl>(g, mapping, opt, machine)) {}

GraphProgram::~GraphProgram() {
  if (impl_ && impl_->started_ && !impl_->finished_) (void)impl_->finish();
}

void GraphProgram::set_on_complete(std::function<void()> fn) {
  impl_->on_complete_ = std::move(fn);
}

void GraphProgram::start() { impl_->start(); }

bool GraphProgram::done() const {
  return impl_->done_.load(std::memory_order_acquire);
}

bool GraphProgram::started() const { return impl_->started_; }

bool GraphProgram::failed() const {
  return impl_->failed_.load(std::memory_order_acquire);
}

std::string GraphProgram::error() const {
  std::lock_guard<std::mutex> lk(impl_->err_mu_);
  return impl_->error_;
}

void GraphProgram::request_drain() { impl_->request_drain(); }

bool GraphProgram::sources_drained() const {
  return impl_->sources_stopped_.load(std::memory_order_acquire) >=
         impl_->total_sources_;
}

long GraphProgram::firings() const {
  return impl_->firings_.load(std::memory_order_relaxed);
}

double GraphProgram::elapsed_seconds() const { return impl_->elapsed(); }

long GraphProgram::frames_shed() const {
  return impl_->ctrl_ != nullptr ? impl_->ctrl_->frames_shed() : 0;
}

void GraphProgram::poll_recorder() {
  if (obs::kCompiledIn && impl_->rec_ && impl_->started_ && !impl_->finished_)
    impl_->rec_->poll();
}

RuntimeResult GraphProgram::finish() { return impl_->finish(); }

}  // namespace bpp
