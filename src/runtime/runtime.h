#pragma once
// Multithreaded host runtime.
//
// Executes a (compiled or raw) application functionally on the host: one
// worker thread per mapped core, bounded FIFO channels with back-pressure,
// the same firing rules as the simulator. This is the "run it on a
// multicore laptop" substrate: it validates that the transformed graphs
// (buffered, parallelized, multiplexed) compute exactly what the original
// application computes, and it provides wall-clock throughput numbers for
// the runtime benchmark.
//
// Termination: sources emit a finite run ending in end-of-stream; the run
// finishes when every OutputKernel has seen it. A watchdog aborts stalled
// runs (which is itself a useful property to test, e.g. deliberately
// misaligned graphs).

#include <atomic>
#include <string>
#include <vector>

#include "compiler/multiplex.h"
#include "core/graph.h"

namespace bpp {

namespace obs {
class Recorder;
}  // namespace obs

namespace fault {
class DegradationController;
class Injector;
}  // namespace fault

struct RuntimeOptions {
  /// Items per channel queue. Larger than the simulator's model because
  /// host threads do not honor the modeled timing; this only provides
  /// back-pressure, not the paper's storage accounting.
  int channel_capacity = 1024;
  /// Abort if no global progress for this long.
  double watchdog_seconds = 30.0;
  /// Pace application inputs on their real wall-clock schedule instead of
  /// flood-filling: pixel i of a rate-R source is released at its modeled
  /// release time. Lets the host runtime demonstrate real-time behavior
  /// (and measure release lag) on an actual multicore machine.
  bool pace_inputs = false;
  /// With pace_inputs: scale factor on the schedule (2.0 = half speed).
  double pace_slowdown = 1.0;
  /// With pace_inputs: a release this much later than its deadline counts
  /// as delayed (and feeds max_release_lag_seconds). The default absorbs
  /// ordinary host-scheduler wakeup quanta; tests pin it to 0 to count
  /// every late release.
  double lag_tolerance_seconds = 2e-3;
  /// Observability sink (see obs/recorder.h). Null = tracing off; the
  /// hot-path cost of "off" is one branch per instrumented site. When set,
  /// workers record firing/write/park spans, channel push/pop occupancy,
  /// and paced source releases into per-core lock-free event rings on the
  /// wall clock, and the run populates the recorder's metrics registry.
  obs::Recorder* recorder = nullptr;
  /// Fault injection (see fault/injector.h). Null = no faults. The run
  /// copies and re-binds the injector against this graph/placement and
  /// perturbs firings deterministically — keyed on per-kernel firing
  /// indices, which are interleaving-independent because every kernel is
  /// owned by exactly one worker. Stalls and overruns are realized by
  /// busy-spinning (they occupy the core like a real overrun); delivery
  /// delay spins between a firing and the publication of its outputs.
  /// Faults never touch values, only time.
  const fault::Injector* injector = nullptr;
  /// Graceful degradation (see fault/degradation.h). Null = off. Sinks
  /// feed frame completions to the controller; when a completion misses
  /// its deadline the controller arms a shed request, and the first
  /// rate-driven source claims it at its next frame boundary, dropping
  /// that entire upcoming frame (data + end-of-line + end-of-frame, never
  /// end-of-stream, never mid-frame). Paced sources keep honoring release
  /// times while dropping — the camera does not pause.
  fault::DegradationController* degradation = nullptr;
};

struct RuntimeResult {
  bool completed = false;
  bool watchdog_fired = false;
  /// A kernel firing raised and the program failed itself (the worker
  /// pool survives; see machine.h). `error` holds the first message.
  bool failed = false;
  std::string error;
  double wall_seconds = 0.0;
  long total_firings = 0;
  /// Firings the fault injector perturbed (0 without an injector).
  long faults_injected = 0;
  /// Whole frames dropped at source frame boundaries (0 without a
  /// degradation controller).
  long frames_shed = 0;
  /// With pace_inputs: source releases that ran late, and the worst lag.
  long delayed_releases = 0;
  double max_release_lag_seconds = 0.0;
  /// Firings per kernel, indexed by KernelId (sums to total_firings).
  std::vector<long> kernel_firings;
  /// Peak queue occupancy per channel, indexed by ChannelId; -1 for dead
  /// channels (which get no runtime state).
  std::vector<long> channel_high_water;
  std::string diagnostics;
};

/// Run `g` to completion on `threads` = mapping cores. Kernels mutate;
/// read results out of the graph's OutputKernels afterwards. A kernel
/// exception (including an injected throw fault) fails the run and is
/// rethrown here as ExecutionError — it never takes down the process.
[[nodiscard]] RuntimeResult run_threaded(Graph& g, const Mapping& mapping,
                                         const RuntimeOptions& options = {});

/// Convenience: run with every kernel on one core (sequential semantics).
[[nodiscard]] RuntimeResult run_sequential(Graph& g,
                                           const RuntimeOptions& options = {});

}  // namespace bpp
