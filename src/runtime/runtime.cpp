#include "runtime/runtime.h"

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <numeric>
#include <thread>
#include <vector>

#include "core/error.h"
#include "core/firing.h"

namespace bpp {

namespace {

struct RtChannel {
  std::mutex mu;
  std::deque<Item> q;
  int consumer_core = -1;
  int producer_core = -1;
};

struct CoreSync {
  std::mutex mu;
  std::condition_variable cv;
};

class ThreadedRun {
 public:
  ThreadedRun(Graph& g, const Mapping& mapping, const RuntimeOptions& opt)
      : g_(g), opt_(opt), mapping_(mapping) {
    const int n = g.kernel_count();
    channels_.resize(static_cast<size_t>(g.channel_count()));
    for (auto& c : channels_) c = std::make_unique<RtChannel>();
    for (int c = 0; c < g.channel_count(); ++c) {
      const Channel& ch = g.channel(c);
      if (!ch.alive) continue;
      channels_[static_cast<size_t>(c)]->producer_core =
          mapping.core_of[static_cast<size_t>(ch.src_kernel)];
      channels_[static_cast<size_t>(c)]->consumer_core =
          mapping.core_of[static_cast<size_t>(ch.dst_kernel)];
    }

    in_of_.resize(static_cast<size_t>(n));
    outs_of_.resize(static_cast<size_t>(n));
    connected_.resize(static_cast<size_t>(n));
    pending_.resize(static_cast<size_t>(n));
    eos_needed_.assign(static_cast<size_t>(n), 0);
    eos_seen_.assign(static_cast<size_t>(n), 0);
    is_sink_.assign(static_cast<size_t>(n), 0);
    src_next_.resize(static_cast<size_t>(n));
    sink_done_ = std::make_unique<std::atomic<bool>[]>(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) sink_done_[static_cast<size_t>(i)] = false;
    core_kernels_.resize(static_cast<size_t>(mapping.cores));
    sync_.resize(static_cast<size_t>(mapping.cores));
    for (auto& s : sync_) s = std::make_unique<CoreSync>();

    for (KernelId k = 0; k < n; ++k) {
      Kernel& kn = g.kernel(k);
      in_of_[static_cast<size_t>(k)].assign(kn.inputs().size(), -1);
      for (size_t i = 0; i < kn.inputs().size(); ++i) {
        auto c = g.in_channel(k, static_cast<int>(i));
        if (c) {
          in_of_[static_cast<size_t>(k)][i] = *c;
          connected_[static_cast<size_t>(k)].push_back(static_cast<int>(i));
          ++eos_needed_[static_cast<size_t>(k)];
        }
      }
      outs_of_[static_cast<size_t>(k)].resize(kn.outputs().size());
      for (size_t o = 0; o < kn.outputs().size(); ++o)
        outs_of_[static_cast<size_t>(k)][o] = g.out_channels(k, static_cast<int>(o));
      core_kernels_[static_cast<size_t>(mapping.core_of[static_cast<size_t>(k)])]
          .push_back(k);
      kn.init();
      for (Emission& e : kn.initial_emissions())
        pending_[static_cast<size_t>(k)].push_back(std::move(e));
      if (!kn.is_source() && g.out_channels(k).empty()) {
        is_sink_[static_cast<size_t>(k)] = 1;
        ++total_sinks_;
      }
    }
  }

  [[nodiscard]] double elapsed() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0_)
        .count();
  }

  void update_max_lag(double lag) {
    double cur = max_lag_.load(std::memory_order_relaxed);
    while (lag > cur &&
           !max_lag_.compare_exchange_weak(cur, lag, std::memory_order_relaxed)) {
    }
  }

  RuntimeResult run() {
    t0_ = std::chrono::steady_clock::now();
    const auto t0 = t0_;
    std::vector<std::thread> workers;
    workers.reserve(static_cast<size_t>(mapping_.cores));
    for (int c = 0; c < mapping_.cores; ++c)
      if (!core_kernels_[static_cast<size_t>(c)].empty())
        workers.emplace_back([this, c] { worker(c); });

    // Watchdog / completion monitor.
    long last_firings = -1;
    auto last_change = std::chrono::steady_clock::now();
    RuntimeResult res;
    while (true) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      if (finished_sinks_.load(std::memory_order_relaxed) >= total_sinks_ &&
          total_sinks_ > 0) {
        res.completed = true;
        break;
      }
      const long f = firings_.load(std::memory_order_relaxed);
      if (f != last_firings) {
        last_firings = f;
        last_change = std::chrono::steady_clock::now();
      } else if (std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                               last_change)
                     .count() > opt_.watchdog_seconds) {
        res.watchdog_fired = true;
        res.diagnostics = "watchdog: no progress for " +
                          std::to_string(opt_.watchdog_seconds) + "s";
        break;
      }
    }
    stop_.store(true, std::memory_order_relaxed);
    for (auto& s : sync_) s->cv.notify_all();
    for (std::thread& w : workers) w.join();

    res.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    res.total_firings = firings_.load();
    res.delayed_releases = delayed_.load();
    res.max_release_lag_seconds = max_lag_.load();
    return res;
  }

 private:
  [[nodiscard]] bool has_space(const std::vector<ChannelId>& outs) {
    for (ChannelId c : outs) {
      RtChannel& ch = *channels_[static_cast<size_t>(c)];
      std::lock_guard<std::mutex> lk(ch.mu);
      if (static_cast<int>(ch.q.size()) >= opt_.channel_capacity) return false;
    }
    return true;
  }

  void push_all(const std::vector<ChannelId>& outs, const Item& item) {
    for (ChannelId c : outs) {
      RtChannel& ch = *channels_[static_cast<size_t>(c)];
      {
        std::lock_guard<std::mutex> lk(ch.mu);
        ch.q.push_back(item);
      }
      if (ch.consumer_core >= 0)
        sync_[static_cast<size_t>(ch.consumer_core)]->cv.notify_all();
    }
  }

  /// Drain pending emissions of kernel k. Returns true if all were moved.
  bool drain(KernelId k, bool& progressed) {
    auto& pending = pending_[static_cast<size_t>(k)];
    while (!pending.empty()) {
      const Emission& e = pending.front();
      const auto& outs = outs_of_[static_cast<size_t>(k)][static_cast<size_t>(e.port)];
      if (!has_space(outs)) return false;
      push_all(outs, e.item);
      pending.pop_front();
      progressed = true;
    }
    return true;
  }

  void worker(int core) {
    const auto& kernels = core_kernels_[static_cast<size_t>(core)];
    CoreSync& sync = *sync_[static_cast<size_t>(core)];
    ExecContext ctx;

    while (!stop_.load(std::memory_order_relaxed)) {
      bool progressed = false;
      for (KernelId k : kernels) {
        Kernel& kn = g_.kernel(k);
        if (!drain(k, progressed) &&
            static_cast<long>(pending_[static_cast<size_t>(k)].size()) >=
                kn.pending_capacity())
          continue;

        if (kn.is_source()) {
          // Default: flood-fill, channel back-pressure throttles the
          // source. With pace_inputs, each emission waits for its
          // wall-clock release time and late releases are recorded.
          SourceEmission e;
          auto& next = src_next_[static_cast<size_t>(k)];
          while (true) {
            if (next.has_value()) {
              if (opt_.pace_inputs) {
                const double release =
                    next->release_seconds * opt_.pace_slowdown;
                const double now = elapsed();
                if (now + 1e-9 < release) break;  // not due yet
                const auto& outs = outs_of_[static_cast<size_t>(k)]
                                           [static_cast<size_t>(next->port)];
                if (!has_space(outs)) break;
                const double lag = elapsed() - release;
                // Host schedulers wake in ~ms quanta; only count lag that
                // a real deadline monitor would (beyond 2 ms).
                if (lag > 2e-3) {
                  delayed_.fetch_add(1, std::memory_order_relaxed);
                  update_max_lag(lag);
                }
                push_all(outs, next->item);
                next.reset();
                progressed = true;
              } else {
                const auto& outs = outs_of_[static_cast<size_t>(k)]
                                           [static_cast<size_t>(next->port)];
                if (!has_space(outs)) break;
                push_all(outs, next->item);
                next.reset();
                progressed = true;
              }
            }
            if (!kn.source_poll(e)) break;
            next = std::move(e);
          }
          continue;
        }

        const FireDecision d = decide_fire(
            kn, connected_[static_cast<size_t>(k)], [&](int port) -> const Item* {
              const ChannelId c = in_of_[static_cast<size_t>(k)][static_cast<size_t>(port)];
              if (c < 0) return nullptr;
              RtChannel& ch = *channels_[static_cast<size_t>(c)];
              std::lock_guard<std::mutex> lk(ch.mu);
              // deque references stay valid across the producer's
              // push_back; only this thread pops.
              return ch.q.empty() ? nullptr : &ch.q.front();
            });
        if (!d.fires()) continue;

        ctx.reset();
        std::vector<Item> popped;
        popped.reserve(d.pop_inputs.size());
        for (int p : d.pop_inputs) {
          const ChannelId c = in_of_[static_cast<size_t>(k)][static_cast<size_t>(p)];
          RtChannel& ch = *channels_[static_cast<size_t>(c)];
          {
            std::lock_guard<std::mutex> lk(ch.mu);
            popped.push_back(std::move(ch.q.front()));
            ch.q.pop_front();
          }
          if (ch.producer_core >= 0)
            sync_[static_cast<size_t>(ch.producer_core)]->cv.notify_all();
          if (is_token(popped.back()) &&
              as_token(popped.back()).cls == tok::kEndOfStream)
            ++eos_seen_[static_cast<size_t>(k)];
        }
        for (size_t i = 0; i < d.pop_inputs.size(); ++i)
          ctx.bind_input(d.pop_inputs[i], &popped[i]);

        if (d.kind == FireDecision::Kind::Method) {
          if (d.token >= 0) ctx.set_trigger_token(d.token, d.payload);
          kn.invoke(d.method, ctx);
        } else {
          for (int o : d.forward_outputs)
            ctx.emit(o, ControlToken{d.token, d.payload});
        }
        for (Emission& e : ctx.emissions())
          pending_[static_cast<size_t>(k)].push_back(std::move(e));
        drain(k, progressed);
        progressed = true;
        firings_.fetch_add(1, std::memory_order_relaxed);

        // Sink completion: all connected inputs delivered end-of-stream.
        if (is_sink_[static_cast<size_t>(k)] &&
            eos_seen_[static_cast<size_t>(k)] >= eos_needed_[static_cast<size_t>(k)] &&
            !sink_done_[static_cast<size_t>(k)].exchange(true))
          finished_sinks_.fetch_add(1);
      }
      if (!progressed) {
        std::unique_lock<std::mutex> lk(sync.mu);
        // Paced sources need finer wakeups than the default tick.
        sync.cv.wait_for(lk, opt_.pace_inputs ? std::chrono::microseconds(200)
                                              : std::chrono::microseconds(1000));
      }
    }
  }

  Graph& g_;
  RuntimeOptions opt_;
  Mapping mapping_;
  std::vector<std::unique_ptr<RtChannel>> channels_;
  std::vector<std::unique_ptr<CoreSync>> sync_;
  std::vector<std::vector<ChannelId>> in_of_;
  std::vector<std::vector<std::vector<ChannelId>>> outs_of_;
  std::vector<std::vector<int>> connected_;
  std::vector<std::deque<Emission>> pending_;
  std::vector<std::vector<KernelId>> core_kernels_;
  std::vector<int> eos_needed_;
  std::vector<int> eos_seen_;
  std::vector<char> is_sink_;
  std::vector<std::optional<SourceEmission>> src_next_;
  std::unique_ptr<std::atomic<bool>[]> sink_done_;
  std::atomic<bool> stop_{false};
  std::atomic<long> firings_{0};
  std::atomic<long> delayed_{0};
  std::atomic<double> max_lag_{0.0};
  std::chrono::steady_clock::time_point t0_{};
  std::atomic<int> finished_sinks_{0};
  int total_sinks_ = 0;
};

}  // namespace

RuntimeResult run_threaded(Graph& g, const Mapping& mapping,
                           const RuntimeOptions& options) {
  if (static_cast<int>(mapping.core_of.size()) != g.kernel_count())
    throw ExecutionError("run_threaded: mapping does not cover the graph");
  return ThreadedRun(g, mapping, options).run();
}

RuntimeResult run_sequential(Graph& g, const RuntimeOptions& options) {
  Mapping m;
  m.core_of.assign(static_cast<size_t>(g.kernel_count()), 0);
  m.cores = 1;
  return run_threaded(g, m, options);
}

}  // namespace bpp
