#include "runtime/runtime.h"

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <vector>

#include "core/error.h"
#include "obs/recorder.h"
#include "runtime/machine.h"
#include "runtime/program.h"

namespace bpp {

// The scheduling machinery lives in two halves since the bpd service
// landed: rt::Machine (machine.{h,cpp}) owns the worker-core pool —
// ready queues, eventcount parking, the worker loop — and GraphProgram
// (program.{h,cpp}) owns one running pipeline instance. run_threaded()
// is the single-tenant composition: a transient machine sized to the
// mapping, one program, and this thread as the completion latch,
// watchdog, and trace collector.

RuntimeResult run_threaded(Graph& g, const Mapping& mapping,
                           const RuntimeOptions& options) {
  if (static_cast<int>(mapping.core_of.size()) != g.kernel_count())
    throw ExecutionError("run_threaded: mapping does not cover the graph");

  rt::Machine machine(mapping.cores);
  GraphProgram prog(g, mapping, options, machine);

  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  prog.set_on_complete([&] {
    {
      std::lock_guard<std::mutex> lk(mu);
      done = true;
    }
    cv.notify_all();
  });
  prog.start();

  // Completion latch + watchdog. The worker finishing the last sink
  // signals cv; otherwise we only wake once per watchdog window to
  // compare the firing counter — no polling loop. With a recorder
  // attached, this thread doubles as the trace collector: wake every few
  // ms to drain the per-core rings (SPSC, single consumer) so runs longer
  // than the ring capacity keep every event instead of shedding the
  // newest.
  bool watchdog_fired = false;
  std::string diagnostics;
  {
    long last_firings = prog.firings();
    auto last_change = std::chrono::steady_clock::now();
    const auto window =
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(options.watchdog_seconds));
    const bool polling = obs::kCompiledIn && options.recorder != nullptr;
    std::unique_lock<std::mutex> lk(mu);
    while (!done) {
      const auto deadline = last_change + window;
      auto wake = deadline;
      if (polling) {
        const auto poll_at =
            std::chrono::steady_clock::now() + std::chrono::milliseconds(2);
        if (poll_at < wake) wake = poll_at;
      }
      if (cv.wait_until(lk, wake, [&] { return done; })) break;
      if (polling) prog.poll_recorder();
      if (wake < deadline) continue;  // poll tick, not the watchdog
      const long f = prog.firings();
      if (f != last_firings) {
        last_firings = f;
        last_change = std::chrono::steady_clock::now();
      } else {
        watchdog_fired = true;
        diagnostics = "watchdog: no progress for " +
                      std::to_string(options.watchdog_seconds) + "s";
        break;
      }
    }
  }

  RuntimeResult res = prog.finish();
  res.watchdog_fired = watchdog_fired;
  if (!diagnostics.empty()) res.diagnostics = diagnostics;
  // Single-tenant composition: a contained kernel fault becomes a thrown
  // error here (the multi-tenant daemon instead restarts/quarantines the
  // tenant; the machine survived either way).
  if (res.failed) throw ExecutionError("kernel fault: " + res.error);
  return res;
}

RuntimeResult run_sequential(Graph& g, const RuntimeOptions& options) {
  Mapping m;
  m.cores = 1;
  m.core_of.assign(static_cast<size_t>(g.kernel_count()), 0);
  return run_threaded(g, m, options);
}

}  // namespace bpp
