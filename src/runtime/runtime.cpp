#include "runtime/runtime.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "core/error.h"
#include "core/firing.h"
#include "core/spsc_ring.h"
#include "fault/degradation.h"
#include "fault/injector.h"
#include "obs/recorder.h"

namespace bpp {

namespace {

// The scheduling layer (see DESIGN.md "Host runtime architecture"):
//
//  * Channels are lock-free SPSC rings — each has exactly one producer
//    kernel and one consumer kernel, each kernel owned by one worker.
//  * Workers run a ready set, not a scan: a kernel is processed only when
//    something changed for it. A push marks the consumer kernel ready; a
//    pop from a full ring re-arms a producer that declared itself blocked.
//  * The ready set is a per-core Vyukov MPSC queue of intrusive nodes
//    (one per kernel) guarded by a per-kernel ready bit, so a kernel is
//    enqueued at most once however many channels feed it.
//  * Workers park on a per-core eventcount (epoch + mutex/condvar used
//    only for sleeping); producers bump the epoch after publishing work,
//    which closes the check-then-sleep race without periodic timeouts.
//
// All flag protocols here are the same store/fence/load pattern: the
// announcing side writes its state (ring slot + index, or blocked bit),
// issues a seq_cst fence, then reads the other side's state; the reacting
// side writes its state, issues a seq_cst fence, then reads the announcing
// side's. The two fences totally order the exchanges, so at least one side
// always observes the other — a lost-wakeup needs both to read stale data.

struct RtChannel {
  explicit RtChannel(std::size_t capacity) : ring(capacity) {}

  SpscRing<Item> ring;
  KernelId producer_kernel = -1;
  KernelId consumer_kernel = -1;
  /// Peak occupancy observed at push time. Producer-owned plain int (only
  /// the producing worker writes it); read after workers join.
  int high_water = 0;
  /// Producer saw the ring full and parked; the consumer's next pop must
  /// re-arm (mark ready) the producer kernel. Padded: written by both
  /// sides, and must not share a line with the ring indices.
  alignas(kCacheLineSize) std::atomic<bool> producer_blocked{false};
};

/// Intrusive node of the per-core ready queue; one per kernel. A kernel is
/// in at most one queue at a time (its ready bit gates enqueueing), so the
/// node is safe to reuse as soon as pop() returns it.
struct ReadyNode {
  std::atomic<ReadyNode*> next{nullptr};
  KernelId kernel = -1;
};

/// Vyukov intrusive MPSC queue: any worker pushes ready kernels for a
/// core; only that core's worker pops. pop() may transiently report empty
/// while a push is mid-flight — the pusher always bumps the core's
/// eventcount afterwards, so the consumer re-checks after parking.
class ReadyQueue {
 public:
  ReadyQueue() : push_end_(&stub_), pop_end_(&stub_) {}

  void push(ReadyNode* n) {
    n->next.store(nullptr, std::memory_order_relaxed);
    ReadyNode* prev = push_end_.exchange(n, std::memory_order_acq_rel);
    prev->next.store(n, std::memory_order_release);
  }

  ReadyNode* pop() {
    ReadyNode* tail = pop_end_;
    ReadyNode* next = tail->next.load(std::memory_order_acquire);
    if (tail == &stub_) {
      if (!next) return nullptr;
      pop_end_ = next;
      tail = next;
      next = next->next.load(std::memory_order_acquire);
    }
    if (next) {
      pop_end_ = next;
      return tail;
    }
    if (tail != push_end_.load(std::memory_order_acquire))
      return nullptr;  // push in flight; the pusher's wake will retry us
    push(&stub_);
    next = tail->next.load(std::memory_order_acquire);
    if (next) {
      pop_end_ = next;
      return tail;
    }
    return nullptr;  // competing push in flight; same recovery
  }

 private:
  alignas(kCacheLineSize) std::atomic<ReadyNode*> push_end_;
  alignas(kCacheLineSize) ReadyNode* pop_end_;  // worker-private
  ReadyNode stub_;
};

/// Per-core parking lot: an eventcount. The mutex/condvar exist only to
/// sleep and wake workers — no data is protected by them.
struct CoreSync {
  ReadyQueue queue;
  alignas(kCacheLineSize) std::atomic<unsigned> epoch{0};
  std::atomic<int> sleepers{0};
  std::mutex mu;
  std::condition_variable cv;
};

struct alignas(kCacheLineSize) ReadyFlag {
  std::atomic<bool> ready{false};
};

class ThreadedRun {
 public:
  ThreadedRun(Graph& g, const Mapping& mapping, const RuntimeOptions& opt)
      : g_(g), opt_(opt), mapping_(mapping) {
    const int n = g.kernel_count();
    channels_.resize(static_cast<size_t>(g.channel_count()));
    for (int c = 0; c < g.channel_count(); ++c) {
      const Channel& ch = g.channel(c);
      if (!ch.alive) continue;  // dead channels get no runtime state
      auto rt = std::make_unique<RtChannel>(
          static_cast<std::size_t>(opt.channel_capacity));
      rt->producer_kernel = ch.src_kernel;
      rt->consumer_kernel = ch.dst_kernel;
      channels_[static_cast<size_t>(c)] = std::move(rt);
    }

    in_of_.resize(static_cast<size_t>(n));
    outs_of_.resize(static_cast<size_t>(n));
    connected_.resize(static_cast<size_t>(n));
    pending_.resize(static_cast<size_t>(n));
    eos_needed_.assign(static_cast<size_t>(n), 0);
    eos_seen_.assign(static_cast<size_t>(n), 0);
    is_sink_.assign(static_cast<size_t>(n), 0);
    src_next_.resize(static_cast<size_t>(n));
    sink_done_ = std::make_unique<std::atomic<bool>[]>(static_cast<size_t>(n));
    ready_ = std::make_unique<ReadyFlag[]>(static_cast<size_t>(n));
    nodes_ = std::make_unique<ReadyNode[]>(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      sink_done_[static_cast<size_t>(i)] = false;
      nodes_[static_cast<size_t>(i)].kernel = i;
    }
    core_kernels_.resize(static_cast<size_t>(mapping.cores));
    sync_.resize(static_cast<size_t>(mapping.cores));
    for (auto& s : sync_) s = std::make_unique<CoreSync>();

    for (KernelId k = 0; k < n; ++k) {
      Kernel& kn = g.kernel(k);
      in_of_[static_cast<size_t>(k)].assign(kn.inputs().size(), -1);
      for (size_t i = 0; i < kn.inputs().size(); ++i) {
        auto c = g.in_channel(k, static_cast<int>(i));
        if (c) {
          in_of_[static_cast<size_t>(k)][i] = *c;
          connected_[static_cast<size_t>(k)].push_back(static_cast<int>(i));
          ++eos_needed_[static_cast<size_t>(k)];
        }
      }
      outs_of_[static_cast<size_t>(k)].resize(kn.outputs().size());
      for (size_t o = 0; o < kn.outputs().size(); ++o)
        outs_of_[static_cast<size_t>(k)][o] = g.out_channels(k, static_cast<int>(o));
      core_kernels_[static_cast<size_t>(mapping.core_of[static_cast<size_t>(k)])]
          .push_back(k);
      kn.init();
      for (Emission& e : kn.initial_emissions())
        pending_[static_cast<size_t>(k)].push_back(std::move(e));
      if (!kn.is_source() && g.out_channels(k).empty()) {
        is_sink_[static_cast<size_t>(k)] = 1;
        ++total_sinks_;
      }
    }

    kernel_fired_.assign(static_cast<size_t>(n), 0);
    src_at_frame_start_.assign(static_cast<size_t>(n), 1);
    src_frame_idx_.assign(static_cast<size_t>(n), 0);
    src_dropping_.assign(static_cast<size_t>(n), 0);

    // Fault injection: copy + re-bind so the caller's injector is reusable
    // across runs of different graphs.
    if (opt.injector != nullptr) {
      inj_ = *opt.injector;
      inj_.bind(g, mapping.core_of);
      faults_ = inj_.active();
    }

    // Graceful degradation: sinks report completions, and the first
    // rate-driven finite source owns shed claims (a deterministic choice;
    // shedding with several independent rate-driven sources would need a
    // cross-source frame barrier this runtime does not model).
    ctrl_ = opt.degradation;
    if (ctrl_ != nullptr) {
      ctrl_->attach_sinks(total_sinks_);
      for (KernelId k = 0; k < n; ++k) {
        Kernel& kn = g.kernel(k);
        if (!kn.is_source()) continue;
        auto spec = kn.source_spec(0);
        if (spec && spec->rate_hz > 0.0 && spec->frames > 0) {
          shed_source_ = k;
          break;
        }
      }
    }
    if (obs::kCompiledIn && opt.recorder) {
      rec_ = opt.recorder;
      std::vector<std::string> names;
      names.reserve(static_cast<size_t>(n));
      for (KernelId k = 0; k < n; ++k) names.push_back(g.kernel(k).name());
      rec_->begin_session(obs::TraceClock::kWall, 0.0, mapping.cores,
                          std::move(names));
    }

    // Everything starts ready: sources to emit, the rest to drain initial
    // emissions or discover they have nothing to do. Runs before workers
    // exist, so plain pushes are fine.
    for (KernelId k = 0; k < n; ++k) {
      ready_[static_cast<size_t>(k)].ready.store(true, std::memory_order_relaxed);
      sync_[static_cast<size_t>(
               mapping_.core_of[static_cast<size_t>(k)])]
          ->queue.push(&nodes_[static_cast<size_t>(k)]);
    }
  }

  [[nodiscard]] double elapsed() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0_)
        .count();
  }

  void update_max_lag(double lag) {
    double cur = max_lag_.load(std::memory_order_relaxed);
    while (lag > cur &&
           !max_lag_.compare_exchange_weak(cur, lag, std::memory_order_relaxed)) {
    }
  }

  RuntimeResult run() {
    t0_ = std::chrono::steady_clock::now();
    const auto t0 = t0_;
    std::vector<std::thread> workers;
    workers.reserve(static_cast<size_t>(mapping_.cores));
    for (int c = 0; c < mapping_.cores; ++c)
      if (!core_kernels_[static_cast<size_t>(c)].empty())
        workers.emplace_back([this, c] { worker(c); });

    // Completion latch + watchdog. The worker finishing the last sink
    // signals done_cv_; otherwise we only wake once per watchdog window to
    // compare the firing counter — no polling loop.
    RuntimeResult res;
    {
      long last_firings = firings_.load(std::memory_order_relaxed);
      auto last_change = std::chrono::steady_clock::now();
      const auto window = std::chrono::duration_cast<
          std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(opt_.watchdog_seconds));
      // With a recorder attached, this thread doubles as the trace
      // collector: wake every few ms to drain the per-core rings (SPSC,
      // single consumer) so runs longer than the ring capacity keep every
      // event instead of shedding the newest.
      const bool polling = obs::kCompiledIn && rec_ != nullptr;
      std::unique_lock<std::mutex> lk(done_mu_);
      while (!done_) {
        const auto deadline = last_change + window;
        auto wake = deadline;
        if (polling) {
          const auto poll_at =
              std::chrono::steady_clock::now() + std::chrono::milliseconds(2);
          if (poll_at < wake) wake = poll_at;
        }
        if (done_cv_.wait_until(lk, wake, [&] { return done_; })) break;
        if (polling) rec_->poll();
        if (wake < deadline) continue;  // poll tick, not the watchdog
        const long f = firings_.load(std::memory_order_relaxed);
        if (f != last_firings) {
          last_firings = f;
          last_change = std::chrono::steady_clock::now();
        } else {
          res.watchdog_fired = true;
          res.diagnostics = "watchdog: no progress for " +
                            std::to_string(opt_.watchdog_seconds) + "s";
          break;
        }
      }
      res.completed = done_;
    }

    stop_.store(true, std::memory_order_seq_cst);
    for (auto& s : sync_) {
      s->epoch.fetch_add(1, std::memory_order_seq_cst);
      {
        std::lock_guard<std::mutex> lk(s->mu);
      }
      s->cv.notify_all();
    }
    for (std::thread& w : workers) w.join();

    res.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    res.total_firings = firings_.load();
    res.faults_injected = faults_total_;  // merged by workers on exit
    if (ctrl_ != nullptr) res.frames_shed = ctrl_->frames_shed();
    res.delayed_releases = delayed_.load();
    res.max_release_lag_seconds = max_lag_.load();
    res.kernel_firings = kernel_fired_;  // merged by workers on exit
    res.channel_high_water.assign(channels_.size(), -1);
    for (size_t c = 0; c < channels_.size(); ++c)
      if (channels_[c])
        res.channel_high_water[c] = channels_[c]->high_water;

    if (obs::kCompiledIn && rec_) {
      rec_->finish_session(res.wall_seconds);
      obs::MetricsRegistry& m = rec_->metrics();
      m.gauge("runtime.wall_seconds").set(res.wall_seconds);
      m.counter("runtime.total_firings").add(res.total_firings);
      m.counter("runtime.delayed_releases").add(res.delayed_releases);
      m.gauge("runtime.max_release_lag_seconds")
          .set(res.max_release_lag_seconds);
      if (faults_) m.counter("runtime.faults_injected").add(res.faults_injected);
      if (ctrl_ != nullptr)
        m.counter("runtime.frames_shed").add(res.frames_shed);
      if (opt_.pace_inputs) {
        m.gauge("runtime.lag_tolerance_seconds")
            .set(opt_.lag_tolerance_seconds);
        m.gauge("runtime.pace_slowdown").set(opt_.pace_slowdown);
      }
      for (size_t c = 0; c < channels_.size(); ++c)
        if (channels_[c])
          m.high_water("runtime.channel." + std::to_string(c) +
                       ".occupancy")
              .update(static_cast<double>(channels_[c]->high_water));
      for (size_t k = 0; k < kernel_fired_.size(); ++k)
        if (kernel_fired_[k] > 0)
          m.counter("runtime.kernel." + g_.kernel(static_cast<KernelId>(k)).name() +
                    ".firings")
              .add(kernel_fired_[k]);
    }
    return res;
  }

 private:
  /// Per-worker scratch, reused across process() calls so the hot loop
  /// stops heap-allocating once vector capacities warm up.
  struct Worker {
    int core = -1;
    ExecContext ctx;
    FireDecision decision;
    std::vector<Item> popped;
    /// timed[k] >= 0: release time (seconds since t0) paced source k waits
    /// for; entries only for this worker's kernels.
    std::vector<double> timed;
    int timed_armed = 0;
    /// This core's event ring, or null when tracing is off — the single
    /// branch every instrumented site pays when disabled.
    obs::EventRing* ring = nullptr;
    /// Worker-local per-kernel firing counts, merged into kernel_fired_ at
    /// exit (keeps the hot loop off shared cache lines).
    std::vector<long> fired;
    /// Worker-local count of perturbed firings, merged at exit.
    long faults = 0;
  };

  RtChannel& chan(ChannelId c) { return *channels_[static_cast<size_t>(c)]; }

  /// Mark kernel `k` ready and wake its core. Callers must have issued a
  /// seq_cst fence after the channel writes this readiness reports.
  /// `self_core` is the calling worker's core: a push onto one's own queue
  /// needs no eventcount bump — the worker is awake and re-polls its queue
  /// before it can park.
  void mark_ready(KernelId k, int self_core) {
    if (ready_[static_cast<size_t>(k)].ready.exchange(
            true, std::memory_order_seq_cst))
      return;  // already queued (or about to re-run)
    const int core = mapping_.core_of[static_cast<size_t>(k)];
    CoreSync& s = *sync_[static_cast<size_t>(core)];
    s.queue.push(&nodes_[static_cast<size_t>(k)]);
    if (core == self_core) return;
    s.epoch.fetch_add(1, std::memory_order_seq_cst);
    if (s.sleepers.load(std::memory_order_seq_cst) > 0) {
      {
        std::lock_guard<std::mutex> lk(s.mu);
      }
      s.cv.notify_all();
    }
  }

  /// True when every channel in `outs` has space. On the first full one,
  /// arms its producer_blocked flag so the consumer's next pop re-arms us,
  /// re-checking afterwards to close the race against a concurrent pop.
  bool has_space_or_arm(const std::vector<ChannelId>& outs) {
    for (ChannelId c : outs) {
      RtChannel& ch = chan(c);
      if (!ch.ring.full()) continue;
      ch.producer_blocked.store(true, std::memory_order_seq_cst);
      std::atomic_thread_fence(std::memory_order_seq_cst);
      if (!ch.ring.full()) continue;  // freed meanwhile; stale flag only
                                      // costs one spurious re-arm
      return false;
    }
    return true;
  }

  /// Push one item to every channel of a fan-out and mark the consumers
  /// ready. Callers guarantee space (has_space_or_arm) — only the owning
  /// worker pushes, so space cannot shrink in between.
  void push_all(const std::vector<ChannelId>& outs, Item item, Worker& w) {
    const size_t n = outs.size();
    for (size_t i = 0; i < n; ++i) {
      RtChannel& ch = chan(outs[i]);
      const bool ok = i + 1 == n ? ch.ring.try_push(std::move(item))
                                 : ch.ring.try_push(item);
      if (!ok)
        throw ExecutionError("runtime: push on full channel (scheduler bug)");
      const int occ = static_cast<int>(ch.ring.size_approx());
      if (occ > ch.high_water) ch.high_water = occ;
      if (obs::kCompiledIn && w.ring) {
        obs::TraceEvent e;
        e.kind = obs::EventKind::kChannelPush;
        e.t0 = e.t1 = elapsed();
        e.core = w.core;
        e.channel = outs[i];
        e.aux0 = static_cast<float>(occ);
        w.ring->emit(e);
      }
    }
    std::atomic_thread_fence(std::memory_order_seq_cst);
    for (ChannelId c : outs) mark_ready(chan(c).consumer_kernel, w.core);
  }

  /// Drain pending emissions of kernel k. Returns true if all were moved.
  /// With tracing on, a drain that moved items is recorded as a write span
  /// (the back-pressured write phase of Fig. 13's breakdown).
  bool drain(KernelId k, Worker& w) {
    auto& pending = pending_[static_cast<size_t>(k)];
    if (pending.empty()) return true;
    const bool rec = obs::kCompiledIn && w.ring != nullptr;
    const double t_begin = rec ? elapsed() : 0.0;
    bool moved = false;
    bool all = true;
    while (!pending.empty()) {
      Emission& e = pending.front();
      const auto& outs = outs_of_[static_cast<size_t>(k)][static_cast<size_t>(e.port)];
      if (!has_space_or_arm(outs)) {
        all = false;
        break;
      }
      push_all(outs, std::move(e.item), w);
      pending.pop_front();
      moved = true;
    }
    if (rec && moved) {
      obs::TraceEvent e;
      e.kind = obs::EventKind::kWrite;
      e.t0 = t_begin;
      e.t1 = elapsed();
      e.aux2 = static_cast<float>(e.t1 - e.t0);  // whole span is write time
      e.kernel = k;
      e.core = w.core;
      w.ring->emit(e);
    }
    return all;
  }

  /// After popping (and fencing), re-arm producers that parked on
  /// back-pressure of channel `ch`.
  void rearm_blocked_producer(RtChannel& ch, int self_core) {
    if (ch.producer_blocked.load(std::memory_order_seq_cst) &&
        ch.producer_blocked.exchange(false, std::memory_order_seq_cst))
      mark_ready(ch.producer_kernel, self_core);
  }

  void signal_done() {
    {
      std::lock_guard<std::mutex> lk(done_mu_);
      done_ = true;
    }
    done_cv_.notify_all();
  }

  /// Source loop: drain the staged emission then poll for more. Exits when
  /// exhausted (never re-armed), back-pressured (producer_blocked armed),
  /// or — paced — not due yet (timed re-arm via `timed`).
  /// Instant event helper for frame/shed boundaries on a source.
  void emit_frame_instant(obs::EventKind kind, KernelId k, Worker& w,
                          std::int32_t frame) {
    if (!obs::kCompiledIn || !w.ring) return;
    obs::TraceEvent e;
    e.kind = kind;
    e.t0 = e.t1 = elapsed();
    e.kernel = k;
    e.core = w.core;
    e.method = frame;
    w.ring->emit(e);
  }

  void run_source(KernelId k, Kernel& kn, Worker& w) {
    auto& next = src_next_[static_cast<size_t>(k)];
    const bool sheddable = ctrl_ != nullptr && k == shed_source_;
    while (true) {
      if (next.has_value()) {
        // Inspect before the item is moved. Frame bookkeeping runs
        // unconditionally — the shed state machine needs it even with
        // tracing off.
        const bool frame_data = is_data(next->item);
        const bool frame_eof =
            !frame_data && as_token(next->item).cls == tok::kEndOfFrame;
        const bool frame_eos =
            !frame_data && as_token(next->item).cls == tok::kEndOfStream;

        // Pacing is honored whether or not the item will be dropped: the
        // camera does not pause while we shed.
        if (opt_.pace_inputs) {
          const double release = next->release_seconds * opt_.pace_slowdown;
          if (elapsed() + 1e-9 < release) {
            if (w.timed[static_cast<size_t>(k)] < 0.0) ++w.timed_armed;
            w.timed[static_cast<size_t>(k)] = release;  // due later
            return;
          }
        }

        // Frame boundary: claim an armed shed request and drop the whole
        // upcoming frame (never mid-frame, never end-of-stream).
        if (frame_data && src_at_frame_start_[static_cast<size_t>(k)] &&
            !src_dropping_[static_cast<size_t>(k)] && sheddable &&
            ctrl_->should_shed()) {
          src_dropping_[static_cast<size_t>(k)] = 1;
          emit_frame_instant(obs::EventKind::kFrameShed, k, w,
                             src_frame_idx_[static_cast<size_t>(k)]);
        }

        if (src_dropping_[static_cast<size_t>(k)] && !frame_eos) {
          // Dropping: consume without pushing.
          if (frame_data && src_at_frame_start_[static_cast<size_t>(k)])
            src_at_frame_start_[static_cast<size_t>(k)] = 0;
          next.reset();
          if (frame_eof) {
            const std::int32_t shed = src_frame_idx_[static_cast<size_t>(k)];
            ++src_frame_idx_[static_cast<size_t>(k)];
            src_at_frame_start_[static_cast<size_t>(k)] = 1;
            src_dropping_[static_cast<size_t>(k)] = 0;
            emit_frame_instant(obs::EventKind::kShedRecover, k, w, shed);
            ctrl_->on_shed_complete(shed);
          }
        } else {
          const auto& outs = outs_of_[static_cast<size_t>(k)]
                                     [static_cast<size_t>(next->port)];
          if (!has_space_or_arm(outs)) return;
          if (opt_.pace_inputs) {
            const double release = next->release_seconds * opt_.pace_slowdown;
            const double lag = elapsed() - release;
            const bool late = lag > opt_.lag_tolerance_seconds;
            if (late) {
              delayed_.fetch_add(1, std::memory_order_relaxed);
              update_max_lag(lag);
            }
            if (obs::kCompiledIn && w.ring) {
              obs::TraceEvent e;
              e.kind = obs::EventKind::kSourceRelease;
              e.t0 = e.t1 = elapsed();
              e.kernel = k;
              e.core = w.core;
              e.aux0 = static_cast<float>(lag > 0.0 ? lag : 0.0);
              e.aux1 = late ? 1.0f : 0.0f;
              w.ring->emit(e);
            }
          }
          push_all(outs, std::move(next->item), w);
          next.reset();
          if (frame_data && src_at_frame_start_[static_cast<size_t>(k)]) {
            src_at_frame_start_[static_cast<size_t>(k)] = 0;
            emit_frame_instant(obs::EventKind::kFrameStart, k, w,
                               src_frame_idx_[static_cast<size_t>(k)]);
          } else if (frame_eof) {
            ++src_frame_idx_[static_cast<size_t>(k)];
            src_at_frame_start_[static_cast<size_t>(k)] = 1;
          }
        }
      }
      SourceEmission e;
      if (!kn.source_poll(e)) return;  // exhausted for good
      next = std::move(e);
    }
  }

  /// Run kernel `k` until it can make no more progress. Clears the ready
  /// bit first (fenced), so any push/pop arriving after our channel reads
  /// re-queues the kernel instead of being lost.
  void process(KernelId k, Worker& w) {
    ready_[static_cast<size_t>(k)].ready.store(false, std::memory_order_seq_cst);
    std::atomic_thread_fence(std::memory_order_seq_cst);

    Kernel& kn = g_.kernel(k);
    if (kn.is_source()) {
      if (!drain(k, w) &&
          static_cast<long>(pending_[static_cast<size_t>(k)].size()) >=
              kn.pending_capacity())
        return;
      run_source(k, kn, w);
      return;
    }

    const auto& in_of = in_of_[static_cast<size_t>(k)];
    while (true) {
      if (!drain(k, w) &&
          static_cast<long>(pending_[static_cast<size_t>(k)].size()) >=
              kn.pending_capacity())
        return;  // back-pressured; the consumer's pop re-arms us

      decide_fire_into(
          kn, connected_[static_cast<size_t>(k)],
          [&](int port) -> const Item* {
            const ChannelId c = in_of[static_cast<size_t>(port)];
            if (c < 0) return nullptr;
            return chan(c).ring.front();  // lock-free consumer-side peek
          },
          w.decision);
      const FireDecision& d = w.decision;
      if (!d.fires()) return;  // idle; the next push re-arms us

      const bool rec = obs::kCompiledIn && w.ring != nullptr;
      const double t_begin = rec ? elapsed() : 0.0;

      // Fault injection, keyed on the kernel's firing index — w.fired[k]
      // counts exactly that, and only this worker fires k, so the key is
      // interleaving-independent (same seed -> same perturbed firings).
      fault::Perturbation pert;
      if (faults_) {
        pert = inj_.perturb(k, w.fired[static_cast<size_t>(k)]);
        if (!pert.identity()) {
          ++w.faults;
          if (rec) {
            obs::TraceEvent e;
            e.kind = obs::EventKind::kFaultInject;
            e.t0 = e.t1 = elapsed();
            e.kernel = k;
            e.core = w.core;
            e.aux0 = static_cast<float>(pert.time_scale);
            e.aux1 = static_cast<float>(pert.stall_seconds);
            e.aux2 = static_cast<float>(pert.delivery_delay_seconds);
            w.ring->emit(e);
          }
        }
      }

      ExecContext& ctx = w.ctx;
      ctx.reset();
      w.popped.clear();
      w.popped.reserve(d.pop_inputs.size());
      for (int p : d.pop_inputs) {
        RtChannel& ch = chan(in_of[static_cast<size_t>(p)]);
        w.popped.push_back(std::move(*ch.ring.front_mut()));
        ch.ring.pop();
        if (rec) {
          obs::TraceEvent e;
          e.kind = obs::EventKind::kChannelPop;
          e.t0 = e.t1 = elapsed();
          e.core = w.core;
          e.channel = in_of[static_cast<size_t>(p)];
          e.aux0 = static_cast<float>(ch.ring.size_approx());
          w.ring->emit(e);
        }
        if (is_token(w.popped.back()) &&
            as_token(w.popped.back()).cls == tok::kEndOfStream)
          ++eos_seen_[static_cast<size_t>(k)];
      }
      std::atomic_thread_fence(std::memory_order_seq_cst);
      for (int p : d.pop_inputs)
        rearm_blocked_producer(chan(in_of[static_cast<size_t>(p)]), w.core);
      for (size_t i = 0; i < d.pop_inputs.size(); ++i)
        ctx.bind_input(d.pop_inputs[i], &w.popped[i]);

      const double t_read = rec || faults_ ? elapsed() : 0.0;
      if (pert.stall_seconds > 0.0) fault::spin_for(pert.stall_seconds);
      const double t_run = pert.stall_seconds > 0.0 ? elapsed() : t_read;
      if (d.kind == FireDecision::Kind::Method) {
        if (d.token >= 0) ctx.set_trigger_token(d.token, d.payload);
        kn.invoke(d.method, ctx);
      } else {
        for (int o : d.forward_outputs)
          ctx.emit(o, ControlToken{d.token, d.payload});
      }
      // Overrun/throttle: stretch the firing by spinning for the induced
      // extra time (wall clock cannot run a kernel faster, so time scales
      // below 1 are a no-op here; the simulator honors them). Delivery
      // delay spins between the firing and the publication of its outputs.
      if (pert.time_scale > 1.0)
        fault::spin_for((elapsed() - t_run) * (pert.time_scale - 1.0));
      if (pert.delivery_delay_seconds > 0.0)
        fault::spin_for(pert.delivery_delay_seconds);
      for (Emission& e : ctx.emissions())
        pending_[static_cast<size_t>(k)].push_back(std::move(e));
      firings_.fetch_add(1, std::memory_order_relaxed);
      ++w.fired[static_cast<size_t>(k)];
      if (rec) {
        obs::TraceEvent e;
        e.kind = obs::EventKind::kFiring;
        e.t0 = t_begin;
        e.t1 = elapsed();
        e.aux0 = static_cast<float>(e.t1 - t_read);   // run (invoke)
        e.aux1 = static_cast<float>(t_read - t_begin);  // read (pops)
        e.kernel = k;
        e.core = w.core;
        e.method = d.kind == FireDecision::Kind::Method ? d.method : -1;
        w.ring->emit(e);
      }

      // Frame tracking: a sink consuming an end-of-frame token closes the
      // frame whose index rides in the token payload. The degradation
      // controller gets the same completions as miss feedback.
      if ((rec || ctrl_ != nullptr) && is_sink_[static_cast<size_t>(k)]) {
        for (const Item& it : w.popped) {
          if (!is_token(it) || as_token(it).cls != tok::kEndOfFrame) continue;
          const double t_end = elapsed();
          if (rec) {
            obs::TraceEvent e;
            e.kind = obs::EventKind::kFrameEnd;
            e.t0 = e.t1 = t_end;
            e.kernel = k;
            e.core = w.core;
            e.method = as_token(it).payload;
            w.ring->emit(e);
          }
          if (ctrl_ != nullptr)
            ctrl_->on_frame_end(as_token(it).payload, t_end);
        }
      }

      // Sink completion: all connected inputs delivered end-of-stream.
      if (is_sink_[static_cast<size_t>(k)] &&
          eos_seen_[static_cast<size_t>(k)] >= eos_needed_[static_cast<size_t>(k)] &&
          !sink_done_[static_cast<size_t>(k)].exchange(true)) {
        if (finished_sinks_.fetch_add(1, std::memory_order_acq_rel) + 1 >=
                total_sinks_ &&
            total_sinks_ > 0)
          signal_done();
      }
    }
  }

  void worker(int core) {
    CoreSync& sync = *sync_[static_cast<size_t>(core)];
    const auto& kernels = core_kernels_[static_cast<size_t>(core)];
    Worker w;
    w.core = core;
    w.fired.assign(static_cast<size_t>(g_.kernel_count()), 0);
    if (obs::kCompiledIn && rec_) w.ring = rec_->ring(core);
    // Paced sources blocked on wall-clock time, worker-private:
    // timed[k] >= 0 is the release (seconds since t0) kernel k waits for.
    w.timed.assign(static_cast<size_t>(g_.kernel_count()), -1.0);

    auto fire_due_sources = [&] {
      if (w.timed_armed == 0) return;
      const double now = elapsed();
      for (KernelId k : kernels) {
        double& rel = w.timed[static_cast<size_t>(k)];
        if (rel >= 0.0 && now + 1e-9 >= rel) {
          rel = -1.0;
          --w.timed_armed;
          mark_ready(k, core);  // our own queue; runs on the next pop
        }
      }
    };

    while (!stop_.load(std::memory_order_acquire)) {
      fire_due_sources();
      if (ReadyNode* n = sync.queue.pop()) {
        process(n->kernel, w);
        continue;
      }

      // Park: eventcount protocol. Load the epoch, re-check for work, then
      // sleep until a producer bumps the epoch (or a paced deadline).
      const unsigned e = sync.epoch.load(std::memory_order_seq_cst);
      if (ReadyNode* n = sync.queue.pop()) {
        process(n->kernel, w);
        continue;
      }
      if (stop_.load(std::memory_order_acquire)) break;

      double next_release = -1.0;
      for (KernelId k : kernels) {
        const double rel = w.timed[static_cast<size_t>(k)];
        if (rel >= 0.0 && (next_release < 0.0 || rel < next_release))
          next_release = rel;
      }

      const double t_park = obs::kCompiledIn && w.ring ? elapsed() : 0.0;
      {
        std::unique_lock<std::mutex> lk(sync.mu);
        sync.sleepers.fetch_add(1, std::memory_order_seq_cst);
        const auto pred = [&] {
          return sync.epoch.load(std::memory_order_seq_cst) != e ||
                 stop_.load(std::memory_order_acquire);
        };
        if (next_release >= 0.0) {
          const auto deadline =
              t0_ + std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(next_release));
          sync.cv.wait_until(lk, deadline, pred);
        } else {
          sync.cv.wait(lk, pred);
        }
        sync.sleepers.fetch_sub(1, std::memory_order_seq_cst);
      }
      if (obs::kCompiledIn && w.ring) {
        obs::TraceEvent ev;
        ev.kind = obs::EventKind::kPark;
        ev.t0 = t_park;
        ev.t1 = elapsed();
        ev.core = core;
        w.ring->emit(ev);
      }
    }

    // Merge worker-local firing counts into the shared tally.
    std::lock_guard<std::mutex> lk(merge_mu_);
    for (size_t k = 0; k < w.fired.size(); ++k)
      kernel_fired_[k] += w.fired[k];
    faults_total_ += w.faults;
  }

  Graph& g_;
  RuntimeOptions opt_;
  Mapping mapping_;
  std::vector<std::unique_ptr<RtChannel>> channels_;  // null for dead channels
  std::vector<std::unique_ptr<CoreSync>> sync_;
  std::vector<std::vector<ChannelId>> in_of_;
  std::vector<std::vector<std::vector<ChannelId>>> outs_of_;
  std::vector<std::vector<int>> connected_;
  std::vector<std::deque<Emission>> pending_;
  std::vector<std::vector<KernelId>> core_kernels_;
  std::vector<int> eos_needed_;
  std::vector<int> eos_seen_;
  std::vector<char> is_sink_;
  std::vector<std::optional<SourceEmission>> src_next_;
  /// Per-source frame cursors (only the owning worker touches its sources):
  /// whether the next data item opens a frame, and that frame's index.
  std::vector<char> src_at_frame_start_;
  std::vector<std::int32_t> src_frame_idx_;
  /// Per-source shed state: mid-drop of the current frame.
  std::vector<char> src_dropping_;
  /// Fault injection (bound copy; see ctor) and degradation wiring.
  fault::Injector inj_;
  bool faults_ = false;
  fault::DegradationController* ctrl_ = nullptr;
  KernelId shed_source_ = -1;
  std::unique_ptr<std::atomic<bool>[]> sink_done_;
  std::unique_ptr<ReadyFlag[]> ready_;  // per-kernel, cache-line padded
  std::unique_ptr<ReadyNode[]> nodes_;  // per-kernel ready-queue nodes
  std::chrono::steady_clock::time_point t0_{};
  int total_sinks_ = 0;
  obs::Recorder* rec_ = nullptr;  // null = tracing off

  std::mutex done_mu_;
  std::condition_variable done_cv_;
  bool done_ = false;  // guarded by done_mu_

  std::mutex merge_mu_;
  std::vector<long> kernel_fired_;  // guarded by merge_mu_ until join
  long faults_total_ = 0;           // guarded by merge_mu_ until join

  // Hot counters, each on its own line so workers do not false-share.
  alignas(kCacheLineSize) std::atomic<bool> stop_{false};
  alignas(kCacheLineSize) std::atomic<long> firings_{0};
  alignas(kCacheLineSize) std::atomic<int> finished_sinks_{0};
  alignas(kCacheLineSize) std::atomic<long> delayed_{0};
  alignas(kCacheLineSize) std::atomic<double> max_lag_{0.0};
};

}  // namespace

RuntimeResult run_threaded(Graph& g, const Mapping& mapping,
                           const RuntimeOptions& options) {
  if (static_cast<int>(mapping.core_of.size()) != g.kernel_count())
    throw ExecutionError("run_threaded: mapping does not cover the graph");
  return ThreadedRun(g, mapping, options).run();
}

RuntimeResult run_sequential(Graph& g, const RuntimeOptions& options) {
  Mapping m;
  m.cores = 1;
  m.core_of.assign(static_cast<size_t>(g.kernel_count()), 0);
  return run_threaded(g, m, options);
}

}  // namespace bpp
