#pragma once
// Observability event model (DESIGN.md "Observability").
//
// Both execution engines emit the same fixed-size TraceEvent records: the
// timing simulator stamps them with modeled seconds and cycle breakdowns,
// the host runtime with wall-clock seconds measured around the same
// phases. A drained, time-sorted collection of events plus its metadata is
// a Trace — the machine-readable timeline behind the paper's Fig. 13
// per-core utilization breakdown, exportable as Chrome trace-event JSON
// (loadable in Perfetto / chrome://tracing).
//
// Compile-out gate: building with -DBPP_OBS_ENABLED=0 turns every engine
// instrumentation site into dead code (the `obs::kCompiledIn &&` operand
// folds to false); with it on, the disabled-at-runtime cost is a single
// branch on a null recorder/ring pointer.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#ifndef BPP_OBS_ENABLED
#define BPP_OBS_ENABLED 1
#endif

namespace bpp::obs {

/// False when observability is compiled out (-DBPP_OBS_ENABLED=0); engine
/// record sites are `if (obs::kCompiledIn && ring) ...` so the whole site
/// constant-folds away in that build.
inline constexpr bool kCompiledIn = BPP_OBS_ENABLED != 0;

/// Which clock the event timestamps live on.
enum class TraceClock : std::uint8_t {
  kModeled,  ///< simulator seconds; aux fields carry cycles
  kWall,     ///< host steady-clock seconds since run start; aux in seconds
};

enum class EventKind : std::uint8_t {
  /// Span: one kernel firing (input pop + method/forward). aux0/1/2 are the
  /// run/read/write components — cycles on the modeled clock, seconds on
  /// the wall clock (wall firings carry their write cost in separate
  /// kWrite spans, so aux2 is 0 there).
  kFiring = 0,
  /// Span: draining back-pressured pending emissions to channels (the
  /// write phase when it happens outside a firing). aux2 = write cost.
  kWrite,
  /// Span: a worker parked idle on its eventcount (wall clock only).
  /// t0 = park, t1 = wakeup; kernel is -1.
  kPark,
  /// Instant: an application input released one item. aux0 = release lag in
  /// seconds (0 when on time), aux1 = 1 when the lag exceeded the engine's
  /// configured tolerance (a counted deadline miss).
  kSourceRelease,
  /// Instant: an item was pushed to / popped from channel `channel`;
  /// aux0 = occupancy just after the operation.
  kChannelPush,
  kChannelPop,
  /// Instant: an application input released the first pixel of a frame.
  /// `kernel` is the source, `method` carries the frame index (the field is
  /// otherwise unused for instants).
  kFrameStart,
  /// Instant: a sink kernel finished consuming a frame's end-of-frame
  /// token. `kernel` is the sink, `method` carries the frame index.
  kFrameEnd,
  /// Instant: the fault injector perturbed this firing. `kernel` is the
  /// perturbed kernel, aux0 = time scale, aux1 = stall seconds,
  /// aux2 = delivery delay seconds.
  kFaultInject,
  /// Instant: a source started dropping a whole frame (graceful
  /// degradation). `kernel` is the source, `method` the shed frame index.
  kFrameShed,
  /// Instant: the shed finished — the frame's end-of-frame token was
  /// dropped and the source is back at a frame boundary. `kernel` is the
  /// source, `method` the shed frame index.
  kShedRecover,
};

[[nodiscard]] const char* event_kind_name(EventKind k);

/// One fixed-size, trivially-copyable record; spans use [t0, t1], instants
/// carry t0 == t1. Meaning of aux0..2 depends on `kind` (see EventKind).
struct TraceEvent {
  double t0 = 0.0;
  double t1 = 0.0;
  float aux0 = 0.0f;
  float aux1 = 0.0f;
  float aux2 = 0.0f;
  std::int32_t kernel = -1;
  std::int32_t core = -1;
  std::int32_t method = -1;
  std::int32_t channel = -1;
  EventKind kind = EventKind::kFiring;
};

/// A drained, time-sorted event collection plus the metadata needed to
/// interpret and export it.
struct Trace {
  TraceClock clock = TraceClock::kWall;
  /// Cycles per second of the modeled machine (converts the cycle-valued
  /// aux fields to seconds); 0 on the wall clock.
  double cycles_per_second = 0.0;
  int cores = 0;
  double duration_seconds = 0.0;
  std::vector<std::string> kernel_names;
  std::vector<TraceEvent> events;  ///< sorted by t0 (stable)
  /// Events lost to ring overflow (the rings keep the oldest events).
  std::uint64_t dropped_events = 0;

  [[nodiscard]] const std::string& kernel_name(std::int32_t k) const;
};

/// Write `t` as Chrome trace-event JSON ({"traceEvents": [...]}), loadable
/// in Perfetto or chrome://tracing. Firing/write/park events become "X"
/// complete events on one track per core (sources on an extra track),
/// releases become instants, channel occupancies become "C" counters.
void write_chrome_trace(const Trace& t, std::ostream& os);

}  // namespace bpp::obs
