#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>

namespace bpp::obs {

void Histogram::observe(double v) {
  if (v < 0.0) v = 0.0;
  int idx = 0;
  if (v >= kBase) {
    idx = static_cast<int>(std::floor(std::log2(v / kBase))) + 1;
    if (idx < 0) idx = 0;
    if (idx >= kBuckets) idx = kBuckets - 1;
  }
  buckets_[static_cast<std::size_t>(idx)].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double s = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(s, s + v, std::memory_order_relaxed)) {
  }
  double m = max_.load(std::memory_order_relaxed);
  while (v > m &&
         !max_.compare_exchange_weak(m, v, std::memory_order_relaxed)) {
  }
  double lo = min_.load(std::memory_order_relaxed);
  while ((lo == kNoMin || v < lo) &&
         !min_.compare_exchange_weak(lo, v, std::memory_order_relaxed)) {
  }
}

double Histogram::bucket_upper(int i) {
  return i <= 0 ? kBase : kBase * std::ldexp(1.0, i);
}

double Histogram::quantile(double q) const {
  const std::int64_t n = count();
  if (n <= 0) return 0.0;
  // The comparison form rejects NaN too (NaN fails both <= and >=, so a
  // NaN q would otherwise reach the ceil() cast below — undefined).
  if (!(q >= 0.0)) q = 0.0;
  if (q >= 1.0) return max();
  if (q <= 0.0) return min();
  // 1-based rank of the requested quantile over n observations.
  const std::int64_t rank =
      std::max<std::int64_t>(1, static_cast<std::int64_t>(std::ceil(q * n)));
  std::int64_t cum = 0;
  for (int i = 0; i < kBuckets; ++i) {
    const std::int64_t b = bucket(i);
    if (b == 0) continue;
    if (cum + b >= rank) {
      const double lo = i == 0 ? 0.0 : bucket_upper(i - 1);
      const double hi = bucket_upper(i);
      const double frac =
          static_cast<double>(rank - cum) / static_cast<double>(b);
      return std::clamp(lo + (hi - lo) * frac, min(), max());
    }
    cum += b;
  }
  return max();
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& p = counters_[name];
  if (!p) p = std::make_unique<Counter>();
  return *p;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& p = gauges_[name];
  if (!p) p = std::make_unique<Gauge>();
  return *p;
}

HighWater& MetricsRegistry::high_water(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& p = high_water_[name];
  if (!p) p = std::make_unique<HighWater>();
  return *p;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& p = histograms_[name];
  if (!p) p = std::make_unique<Histogram>();
  return *p;
}

namespace {

void write_json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}

void write_histogram_buckets(std::ostream& os, const Histogram& h,
                             bool json) {
  bool first = true;
  for (int i = 0; i < Histogram::kBuckets; ++i) {
    const std::int64_t n = h.bucket(i);
    if (n == 0) continue;
    if (json) {
      if (!first) os << ',';
      os << "{\"le\":" << Histogram::bucket_upper(i) << ",\"count\":" << n
         << '}';
    } else {
      os << " le " << Histogram::bucket_upper(i) << ": " << n << ';';
    }
    first = false;
  }
}

// Dumps must not inherit the caller's stream formatting (a report may have
// left the stream in fixed/low-precision mode); pin round-trippable float
// output for the duration of the write.
class ScopedFloatFormat {
 public:
  explicit ScopedFloatFormat(std::ostream& os)
      : os_(os), flags_(os.flags()), precision_(os.precision()) {
    os_.unsetf(std::ios::floatfield);
    os_ << std::setprecision(12);
  }
  ~ScopedFloatFormat() {
    os_.flags(flags_);
    os_.precision(precision_);
  }

 private:
  std::ostream& os_;
  std::ios::fmtflags flags_;
  std::streamsize precision_;
};

}  // namespace

void MetricsRegistry::write_text(std::ostream& os) const {
  const ScopedFloatFormat fmt(os);
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& [name, c] : counters_)
    os << name << " counter " << c->value() << '\n';
  for (const auto& [name, g] : gauges_)
    os << name << " gauge " << g->value() << '\n';
  for (const auto& [name, h] : high_water_)
    os << name << " high_water " << h->value() << '\n';
  for (const auto& [name, h] : histograms_) {
    os << name << " histogram count " << h->count() << " sum " << h->sum()
       << " min " << h->min() << " p50 " << h->quantile(0.50) << " p95 "
       << h->quantile(0.95) << " max " << h->max() << " buckets";
    write_histogram_buckets(os, *h, /*json=*/false);
    os << '\n';
  }
}

void MetricsRegistry::write_json(std::ostream& os) const {
  const ScopedFloatFormat fmt(os);
  std::lock_guard<std::mutex> lk(mu_);
  os << '{';
  os << "\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) os << ',';
    first = false;
    write_json_string(os, name);
    os << ':' << c->value();
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) os << ',';
    first = false;
    write_json_string(os, name);
    os << ':' << g->value();
  }
  os << "},\"high_water\":{";
  first = true;
  for (const auto& [name, h] : high_water_) {
    if (!first) os << ',';
    first = false;
    write_json_string(os, name);
    os << ':' << h->value();
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) os << ',';
    first = false;
    write_json_string(os, name);
    os << ":{\"count\":" << h->count() << ",\"sum\":" << h->sum()
       << ",\"min\":" << h->min() << ",\"p50\":" << h->quantile(0.50)
       << ",\"p95\":" << h->quantile(0.95) << ",\"max\":" << h->max()
       << ",\"buckets\":[";
    write_histogram_buckets(os, *h, /*json=*/true);
    os << "]}";
  }
  os << "}}\n";
}

}  // namespace bpp::obs
