#include "obs/deadline.h"

#include <algorithm>

namespace bpp::obs {

namespace {
/// Simulated schedules hit their deadlines exactly; keep float fuzz from
/// flipping an on-time frame to missed.
constexpr double kEps = 1e-9;
}  // namespace

DeadlineMonitor::DeadlineMonitor(DeadlineOptions opt, MetricsRegistry* metrics,
                                 MissCallback on_miss)
    : opt_(opt), metrics_(metrics), on_miss_(std::move(on_miss)) {
  if (metrics_ && opt_.rate_hz > 0.0)
    metrics_->gauge("deadline.period_seconds").set(period_seconds());
}

const FrameVerdict& DeadlineMonitor::observe_frame(std::int64_t frame,
                                                   double end_seconds) {
  if (!anchored_) {
    anchored_ = true;
    anchor_frame_ = frame;
    anchor_seconds_ = end_seconds;
  }
  FrameVerdict v;
  v.frame = frame;
  v.completed_seconds = end_seconds;
  const double scheduled =
      anchor_seconds_ +
      static_cast<double>(frame - anchor_frame_) * period_seconds();
  v.deadline_seconds = scheduled + opt_.slack_seconds;
  v.lateness_seconds = end_seconds - scheduled;
  v.missed = opt_.rate_hz > 0.0 &&
             end_seconds > v.deadline_seconds + kEps;
  if (v.missed) ++misses_;
  max_lateness_ = std::max(max_lateness_, v.lateness_seconds);

  if (metrics_) {
    metrics_->counter("deadline.frames").add(1);
    if (v.missed) metrics_->counter("deadline.misses").add(1);
    metrics_->high_water("deadline.max_lateness_seconds")
        .update(v.lateness_seconds);
    metrics_->histogram("deadline.lateness_seconds")
        .observe(std::max(0.0, v.lateness_seconds));
  }
  verdicts_.push_back(v);
  if (v.missed && on_miss_) on_miss_(verdicts_.back());
  return verdicts_.back();
}

void DeadlineMonitor::observe(const FrameReport& report) {
  for (const FrameRecord& f : report.frames)
    observe_frame(f.frame, f.end_seconds);
}

}  // namespace bpp::obs
