#include "obs/critical_path.h"

#include <algorithm>
#include <iomanip>
#include <ostream>

namespace bpp::obs {

namespace {

constexpr double kEps = 1e-12;

/// One candidate span on a chain: a firing or back-pressure write.
struct Span {
  double t0 = 0.0;
  double t1 = 0.0;
};

/// Per-kernel spans sorted by end time, for "latest span ending before t"
/// queries.
struct SpanIndex {
  std::vector<std::vector<Span>> of;  // indexed by kernel

  /// Index of the last span of `k` with t1 <= t + eps, or -1.
  [[nodiscard]] int last_ending_before(std::int32_t k, double t) const {
    const auto& v = of[static_cast<std::size_t>(k)];
    auto it = std::upper_bound(
        v.begin(), v.end(), t + kEps,
        [](double val, const Span& s) { return val < s.t1; });
    if (it == v.begin()) return -1;
    return static_cast<int>(std::distance(v.begin(), it)) - 1;
  }
};

}  // namespace

std::vector<PathContribution> CriticalPathReport::ranked() const {
  std::vector<PathContribution> out;
  for (const PathContribution& c : kernels)
    if (c.spans > 0 || c.total_seconds() > 0.0) out.push_back(c);
  std::sort(out.begin(), out.end(),
            [](const PathContribution& a, const PathContribution& b) {
              return a.total_seconds() > b.total_seconds();
            });
  return out;
}

CriticalPathReport analyze_critical_path(const Trace& t,
                                         const FrameReport& frames,
                                         const Graph& g) {
  CriticalPathReport r;
  const int n = g.kernel_count();
  r.kernels.resize(static_cast<std::size_t>(n));
  for (int k = 0; k < n; ++k)
    r.kernels[static_cast<std::size_t>(k)].kernel = k;
  if (frames.empty()) return r;

  // Upstream producers per kernel, from the live channels.
  std::vector<std::vector<std::int32_t>> ups(static_cast<std::size_t>(n));
  for (ChannelId c = 0; c < g.channel_count(); ++c) {
    const Channel& ch = g.channel(c);
    if (!ch.alive) continue;
    auto& u = ups[static_cast<std::size_t>(ch.dst_kernel)];
    if (std::find(u.begin(), u.end(), ch.src_kernel) == u.end())
      u.push_back(ch.src_kernel);
  }

  SpanIndex idx;
  idx.of.resize(static_cast<std::size_t>(n));
  std::size_t total_spans = 0;
  for (const TraceEvent& e : t.events) {
    if (e.kind != EventKind::kFiring && e.kind != EventKind::kWrite) continue;
    if (e.kernel < 0 || e.kernel >= n) continue;
    idx.of[static_cast<std::size_t>(e.kernel)].push_back(Span{e.t0, e.t1});
    ++total_spans;
  }
  for (auto& v : idx.of)
    std::sort(v.begin(), v.end(),
              [](const Span& a, const Span& b) { return a.t1 < b.t1; });

  for (const FrameRecord& f : frames.frames) {
    if (f.end_kernel < 0 || f.end_kernel >= n) continue;
    // Seed: the sink span that completed the frame (ends at f.end).
    std::int32_t k = f.end_kernel;
    int si = idx.last_ending_before(k, f.end_seconds);
    if (si < 0) continue;
    ++r.frames_analyzed;
    r.latency_seconds += f.latency_seconds();

    std::size_t steps = 0;
    while (steps++ <= total_spans) {
      const Span cur = idx.of[static_cast<std::size_t>(k)][
          static_cast<std::size_t>(si)];
      PathContribution& pc = r.kernels[static_cast<std::size_t>(k)];
      // Clamp to the frame window; spans preceding the frame's release are
      // pipeline work for earlier frames.
      const double b0 = std::max(cur.t0, f.start_seconds);
      const double b1 = std::max(cur.t1, f.start_seconds);
      pc.busy_seconds += b1 - b0;
      ++pc.spans;
      if (cur.t0 <= f.start_seconds + kEps) break;

      // Critical predecessor: latest span ending before we started, from
      // this kernel (it was busy) or an upstream producer (we starved).
      // On a tie the same kernel wins — back-to-back firings mean the
      // kernel itself is saturated.
      std::int32_t best_k = -1;
      int best_i = -1;
      double best_t1 = -1.0;
      const int own = idx.last_ending_before(k, cur.t0);
      if (own >= 0) {
        // Guard against selecting the current span itself (or a tied later
        // one) when spans are zero-length: stay strictly earlier in the
        // per-kernel order so same-kernel walks always terminate.
        int i = std::min(own, si - 1);
        if (i >= 0) {
          best_k = k;
          best_i = i;
          best_t1 = idx.of[static_cast<std::size_t>(k)][
              static_cast<std::size_t>(i)].t1;
        }
      }
      for (const std::int32_t u : ups[static_cast<std::size_t>(k)]) {
        const int ui = idx.last_ending_before(u, cur.t0);
        if (ui < 0) continue;
        const double t1 = idx.of[static_cast<std::size_t>(u)][
            static_cast<std::size_t>(ui)].t1;
        if (t1 > best_t1 + kEps) {
          best_k = u;
          best_i = ui;
          best_t1 = t1;
        }
      }
      if (best_k < 0 || best_t1 <= f.start_seconds + kEps) {
        // Chain ends: whatever ran before the frame started. The gap back
        // to the release is wait in front of the current kernel.
        pc.wait_seconds += std::max(0.0, cur.t0 - f.start_seconds);
        break;
      }
      pc.wait_seconds += std::max(0.0, cur.t0 - best_t1);
      k = best_k;
      si = best_i;
    }
  }

  double best = 0.0;
  for (const PathContribution& c : r.kernels)
    if (c.total_seconds() > best) {
      best = c.total_seconds();
      r.bottleneck = c.kernel;
    }
  return r;
}

void write_critical_path(const CriticalPathReport& r, const Trace& t,
                         std::ostream& os) {
  const auto fmt = os.flags();
  const auto prec = os.precision();
  os << "critical path over " << r.frames_analyzed << " frame(s)";
  if (r.frames_analyzed == 0) {
    os << ": no tracked frames\n";
    os.flags(fmt);
    os.precision(prec);
    return;
  }
  os << " (" << std::fixed << std::setprecision(3)
     << r.latency_seconds * 1e3 << " ms of latency attributed):\n";
  os << std::setprecision(1);
  const double total = r.latency_seconds > 0.0 ? r.latency_seconds : 1.0;
  for (const PathContribution& c : r.ranked()) {
    os << "  " << std::left << std::setw(28)
       << t.kernel_name(c.kernel) << std::right << " busy "
       << std::setw(5) << 100.0 * c.busy_seconds / total << "% wait "
       << std::setw(5) << 100.0 * c.wait_seconds / total << "%  ("
       << c.spans << " spans)\n";
  }
  if (r.bottleneck >= 0)
    os << "  bottleneck: " << t.kernel_name(r.bottleneck) << '\n';
  os.flags(fmt);
  os.precision(prec);
}

}  // namespace bpp::obs
