#include "obs/frames.h"

#include <algorithm>
#include <map>

namespace bpp::obs {

SeriesSummary summarize(std::vector<double> values) {
  SeriesSummary s;
  s.count = static_cast<long>(values.size());
  if (values.empty()) return s;
  std::sort(values.begin(), values.end());
  double sum = 0.0;
  for (const double v : values) sum += v;
  s.mean = sum / static_cast<double>(values.size());
  s.max = values.back();
  // Nearest-rank with linear interpolation (the exact small-series analog
  // of Histogram::quantile).
  const auto at = [&](double q) {
    const double pos = q * static_cast<double>(values.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, values.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return values[lo] + (values[hi] - values[lo]) * frac;
  };
  s.p50 = at(0.50);
  s.p95 = at(0.95);
  return s;
}

FrameReport analyze_frames(const Trace& t) {
  struct Partial {
    bool has_start = false, has_end = false;
    double start = 0.0, end = 0.0;
    std::int32_t start_kernel = -1, end_kernel = -1;
  };
  // Frame indices are small and dense in practice, but a run cut short or
  // a feedback seed (payload -1) must not blow up a vector index.
  std::map<std::int64_t, Partial> partial;

  for (const TraceEvent& e : t.events) {
    if (e.kind != EventKind::kFrameStart && e.kind != EventKind::kFrameEnd)
      continue;
    if (e.method < 0) continue;  // feedback seeds carry no real frame index
    Partial& p = partial[e.method];
    if (e.kind == EventKind::kFrameStart) {
      if (!p.has_start || e.t0 < p.start) {
        p.start = e.t0;
        p.start_kernel = e.kernel;
      }
      p.has_start = true;
    } else {
      if (!p.has_end || e.t1 > p.end) {
        p.end = e.t1;
        p.end_kernel = e.kernel;
      }
      p.has_end = true;
    }
  }

  FrameReport r;
  for (const auto& [idx, p] : partial) {
    if (!p.has_start || !p.has_end) {
      ++r.incomplete;
      continue;
    }
    FrameRecord f;
    f.frame = idx;
    f.start_seconds = p.start;
    f.end_seconds = p.end;
    f.start_kernel = p.start_kernel;
    f.end_kernel = p.end_kernel;
    r.frames.push_back(f);
  }
  // std::map iterates in index order already; keep the invariant explicit.
  std::sort(r.frames.begin(), r.frames.end(),
            [](const FrameRecord& a, const FrameRecord& b) {
              return a.frame < b.frame;
            });

  std::vector<double> latencies, periods;
  latencies.reserve(r.frames.size());
  for (std::size_t i = 0; i < r.frames.size(); ++i) {
    latencies.push_back(r.frames[i].latency_seconds());
    if (i > 0) {
      // Shed or incomplete frames leave gaps in the index sequence; a
      // raw completion delta across a gap would read as one giant period,
      // so normalize by the index distance actually spanned.
      const double gap =
          static_cast<double>(r.frames[i].frame - r.frames[i - 1].frame);
      periods.push_back(
          (r.frames[i].end_seconds - r.frames[i - 1].end_seconds) /
          (gap > 0.0 ? gap : 1.0));
    }
  }
  r.latency = summarize(std::move(latencies));
  r.period = summarize(std::move(periods));
  return r;
}

}  // namespace bpp::obs
