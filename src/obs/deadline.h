#pragma once
// Deadline monitor: classify tracked frames against the graph's declared
// rate.
//
// The compiler's rate analysis (§III-A, §III-E) statically promises that
// the application keeps up with the input frame rate; this is the runtime
// check of that promise. Given the declared rate R, frame N's completion
// deadline is anchored at the first observed completion — pipelining means
// end-to-end latency legitimately exceeds one period, but in the steady
// state completions must arrive one period 1/R apart (§IV-D):
//
//   deadline(N) = end(first) + (N - first) / R + slack
//
// A feasible graph holds the schedule exactly; an over-rated one drifts
// later every frame and accumulates misses. `slack` absorbs host-scheduler
// jitter on wall-clock traces (simulated traces can run with slack 0).
//
// Misses feed counters/gauges in a MetricsRegistry and optionally invoke a
// user callback — the hook a graceful-degradation policy would attach to.
// The monitor is plain analysis code and always links; what -DBPP_OBS=OFF
// compiles out are the engines' frame-boundary instrumentation sites, so
// in that build the monitor never sees a frame to classify.

#include <cstdint>
#include <functional>
#include <vector>

#include "obs/frames.h"
#include "obs/metrics.h"

namespace bpp::obs {

/// Verdict for one frame.
struct FrameVerdict {
  std::int64_t frame = -1;
  double completed_seconds = 0.0;
  double deadline_seconds = 0.0;  ///< includes slack
  /// completed - (anchored schedule), before slack; negative = early.
  double lateness_seconds = 0.0;
  bool missed = false;
};

struct DeadlineOptions {
  /// Declared frame rate the schedule is derived from (frames/second).
  double rate_hz = 0.0;
  /// Grace added to every deadline (absorbs wall-clock scheduler jitter).
  double slack_seconds = 0.0;
};

class DeadlineMonitor {
 public:
  using MissCallback = std::function<void(const FrameVerdict&)>;

  /// `metrics` (optional) receives deadline.frames / deadline.misses
  /// counters, a deadline.max_lateness_seconds high-water mark, and a
  /// deadline.lateness_seconds histogram. `on_miss` (optional) runs
  /// synchronously for every missed frame.
  explicit DeadlineMonitor(DeadlineOptions opt,
                           MetricsRegistry* metrics = nullptr,
                           MissCallback on_miss = {});

  /// Feed one completed frame (monotonically increasing indices expected;
  /// the first observation anchors the schedule). Returns its verdict.
  const FrameVerdict& observe_frame(std::int64_t frame, double end_seconds);

  /// Feed a whole post-run frame report.
  void observe(const FrameReport& report);

  [[nodiscard]] long frames() const {
    return static_cast<long>(verdicts_.size());
  }
  [[nodiscard]] long misses() const { return misses_; }
  [[nodiscard]] double max_lateness_seconds() const { return max_lateness_; }
  [[nodiscard]] double period_seconds() const {
    return opt_.rate_hz > 0.0 ? 1.0 / opt_.rate_hz : 0.0;
  }
  [[nodiscard]] const std::vector<FrameVerdict>& verdicts() const {
    return verdicts_;
  }

 private:
  DeadlineOptions opt_;
  MetricsRegistry* metrics_ = nullptr;
  MissCallback on_miss_;
  bool anchored_ = false;
  std::int64_t anchor_frame_ = 0;
  double anchor_seconds_ = 0.0;
  long misses_ = 0;
  double max_lateness_ = 0.0;
  std::vector<FrameVerdict> verdicts_;
};

}  // namespace bpp::obs
