#pragma once
// Analysis passes over a Trace.
//
// The headline pass reproduces the paper's Fig. 13 measurement: per-core
// utilization decomposed into run / read / write / other / idle. On the
// modeled clock (simulator traces) the components come from the cycle
// counts each firing span carries; on the wall clock (host-runtime traces)
// they come from the phase timings measured inside each firing. "Other" is
// span time not attributed to a component (context switches in the model,
// scheduling overhead on the host); "idle" is the remainder of the run.

#include <iosfwd>
#include <vector>

#include "obs/trace.h"

namespace bpp::obs {

struct CoreBreakdown {
  double run_seconds = 0.0;
  double read_seconds = 0.0;
  double write_seconds = 0.0;
  double other_seconds = 0.0;
  double idle_seconds = 0.0;
  long firings = 0;

  [[nodiscard]] double busy_seconds() const {
    return run_seconds + read_seconds + write_seconds + other_seconds;
  }
};

struct UtilizationReport {
  TraceClock clock = TraceClock::kWall;
  double duration_seconds = 0.0;
  std::vector<CoreBreakdown> cores;  ///< indexed by core id
  /// Real-time health, from source-release events.
  long releases = 0;
  long delayed_releases = 0;  ///< lag beyond the engine's tolerance
  double max_release_lag_seconds = 0.0;

  /// Mean busy fraction over cores that fired at least once.
  [[nodiscard]] double avg_utilization() const;
};

/// Fold a trace's spans into the per-core breakdown.
[[nodiscard]] UtilizationReport analyze_utilization(const Trace& t);

}  // namespace bpp::obs
