#pragma once
// Metrics registry: named counters, gauges, high-water marks, and
// log-scale histograms, with text and JSON dumps.
//
// Instruments are created on first lookup and never destroyed while the
// registry lives, so engines may cache the returned references across a
// run. Lookup takes a mutex (do it once, outside hot loops); updates on
// the instruments themselves are lock-free atomics, safe from any thread.

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace bpp::obs {

/// Monotonic 64-bit event count.
class Counter {
 public:
  void add(std::int64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Last-write-wins double value.
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> v_{0.0};
};

/// Running maximum (e.g. channel occupancy high-water marks).
class HighWater {
 public:
  void update(double v) {
    double cur = v_.load(std::memory_order_relaxed);
    while (v > cur &&
           !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> v_{0.0};
};

/// Log2-bucketed histogram of non-negative doubles (e.g. release lags in
/// seconds). Bucket i holds values in [2^i, 2^(i+1)) * kBase seconds;
/// values below kBase land in bucket 0, values past the top in the last.
class Histogram {
 public:
  static constexpr int kBuckets = 48;
  static constexpr double kBase = 1e-9;  ///< resolution floor (1 ns)

  void observe(double v);
  [[nodiscard]] std::int64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double max() const {
    return max_.load(std::memory_order_relaxed);
  }
  /// Smallest observed value (0 until the first observation).
  [[nodiscard]] double min() const {
    const double m = min_.load(std::memory_order_relaxed);
    return m == kNoMin ? 0.0 : m;
  }
  [[nodiscard]] std::int64_t bucket(int i) const {
    return buckets_[static_cast<std::size_t>(i)].load(
        std::memory_order_relaxed);
  }
  /// Inclusive upper edge of bucket `i` in the observed unit.
  [[nodiscard]] static double bucket_upper(int i);
  /// Approximate quantile (q in [0, 1]) reconstructed from the log2
  /// buckets: linear interpolation inside the covering bucket, clamped to
  /// the exact observed extremes — quantile(0) is the observed minimum,
  /// quantile(1) the observed maximum, and an empty histogram yields 0 for
  /// every q. NaN q is treated as 0. Resolution between the extremes is
  /// the bucket width (a factor of 2), plenty for latency summaries.
  [[nodiscard]] double quantile(double q) const;

 private:
  static constexpr double kNoMin = -1.0;  ///< sentinel: nothing observed

  std::atomic<std::int64_t> buckets_[kBuckets]{};
  std::atomic<std::int64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> max_{0.0};
  std::atomic<double> min_{kNoMin};
};

class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  HighWater& high_water(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// One instrument per line, sorted by name:
  ///   name kind value [histogram detail]
  void write_text(std::ostream& os) const;
  /// {"counters":{...},"gauges":{...},"high_water":{...},"histograms":{...}}
  void write_json(std::ostream& os) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<HighWater>> high_water_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace bpp::obs
