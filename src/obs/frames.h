#pragma once
// Per-frame latency tracking over a Trace.
//
// Both engines emit frame-boundary instants: a kFrameStart when an
// application input releases the first pixel of frame N, a kFrameEnd when
// a sink kernel finishes consuming frame N's end-of-frame token. Pairing
// them yields the two real-time criteria of the paper's evaluation
// (§IV-D) — end-to-end latency per frame and the steady-state completion
// period — exactly the latency-vs-throughput tension Benoit et al. frame
// for pipelined image processing. With several sources or sinks, a frame
// starts at the earliest source release and ends at the latest sink
// completion carrying that frame index.

#include <cstdint>
#include <vector>

#include "obs/trace.h"

namespace bpp::obs {

/// One tracked frame: both boundaries observed.
struct FrameRecord {
  std::int64_t frame = -1;         ///< frame index (input order)
  double start_seconds = 0.0;      ///< earliest source release of the frame
  double end_seconds = 0.0;        ///< latest sink completion of the frame
  std::int32_t start_kernel = -1;  ///< source that released the start
  std::int32_t end_kernel = -1;    ///< sink that completed the end

  [[nodiscard]] double latency_seconds() const {
    return end_seconds - start_seconds;
  }
};

/// Exact order statistics of a small series (frame latencies or periods).
struct SeriesSummary {
  long count = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double max = 0.0;
};

[[nodiscard]] SeriesSummary summarize(std::vector<double> values);

struct FrameReport {
  /// Complete frames (both boundaries seen), sorted by frame index.
  std::vector<FrameRecord> frames;
  /// Frame indices with only one boundary (dropped events, or a run cut
  /// short) — excluded from the series below.
  long incomplete = 0;
  SeriesSummary latency;  ///< end-to-end seconds per frame
  SeriesSummary period;   ///< deltas between consecutive completions

  [[nodiscard]] bool empty() const { return frames.empty(); }
};

/// Pair the trace's frame-boundary events into per-frame records and
/// derive the latency/period series.
[[nodiscard]] FrameReport analyze_frames(const Trace& t);

}  // namespace bpp::obs
