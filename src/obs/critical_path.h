#pragma once
// Trace-driven bottleneck attribution.
//
// For each tracked frame, walk backwards from the sink firing that
// completed it: a span's critical predecessor is the latest span (a prior
// firing of the same kernel — the kernel was busy — or a firing/write of
// an upstream producer — the kernel was starved) that finished before it
// started. Busy time on the chain is attributed to the span's kernel;
// gaps between a span and its predecessor are attributed as wait in front
// of the waiting kernel (scheduling or back-pressure). Summed over
// frames, the kernel with the largest share of the chain is the one that
// bounds the frame latency — "which kernel broke your deadline".
//
// The walk needs the channel topology (who produces for whom), which the
// trace does not carry; pass the executed Graph alongside it.

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "core/graph.h"
#include "obs/frames.h"
#include "obs/trace.h"

namespace bpp::obs {

/// Per-kernel share of the critical chains, summed over analyzed frames.
struct PathContribution {
  std::int32_t kernel = -1;
  double busy_seconds = 0.0;  ///< firing/write spans on the chain
  double wait_seconds = 0.0;  ///< gaps while this kernel waited to start
  long spans = 0;

  [[nodiscard]] double total_seconds() const {
    return busy_seconds + wait_seconds;
  }
};

struct CriticalPathReport {
  /// Indexed by kernel id; kernels never on a chain have zero entries.
  std::vector<PathContribution> kernels;
  long frames_analyzed = 0;
  double latency_seconds = 0.0;  ///< summed latency of analyzed frames
  /// Kernel with the largest busy+wait share, -1 if nothing was analyzed.
  std::int32_t bottleneck = -1;

  /// Contributions sorted by descending share (non-zero only).
  [[nodiscard]] std::vector<PathContribution> ranked() const;
};

/// Attribute each tracked frame's latency along its critical chain.
[[nodiscard]] CriticalPathReport analyze_critical_path(
    const Trace& t, const FrameReport& frames, const Graph& g);

/// Human-readable table (kernel, busy %, wait %, spans) plus the named
/// bottleneck; percentages are of the summed frame latency.
void write_critical_path(const CriticalPathReport& r, const Trace& t,
                         std::ostream& os);

}  // namespace bpp::obs
