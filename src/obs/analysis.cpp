#include "obs/analysis.h"

#include <algorithm>

namespace bpp::obs {

double UtilizationReport::avg_utilization() const {
  if (duration_seconds <= 0.0) return 0.0;
  double sum = 0.0;
  int n = 0;
  for (const CoreBreakdown& c : cores) {
    if (c.firings == 0) continue;
    sum += c.busy_seconds() / duration_seconds;
    ++n;
  }
  return n > 0 ? sum / n : 0.0;
}

UtilizationReport analyze_utilization(const Trace& t) {
  UtilizationReport r;
  r.clock = t.clock;
  r.duration_seconds = t.duration_seconds;
  r.cores.resize(static_cast<std::size_t>(std::max(t.cores, 0)));

  // On the modeled clock aux fields are cycles; convert via the machine
  // clock. Wall-clock aux fields are already seconds.
  const double to_seconds = t.clock == TraceClock::kModeled &&
                                    t.cycles_per_second > 0.0
                                ? 1.0 / t.cycles_per_second
                                : 1.0;

  for (const TraceEvent& e : t.events) {
    switch (e.kind) {
      case EventKind::kFiring:
      case EventKind::kWrite: {
        if (e.core < 0 ||
            static_cast<std::size_t>(e.core) >= r.cores.size())
          break;
        CoreBreakdown& c = r.cores[static_cast<std::size_t>(e.core)];
        const double span = e.t1 - e.t0;
        const double run = e.aux0 * to_seconds;
        const double read = e.aux1 * to_seconds;
        const double write = e.aux2 * to_seconds;
        c.run_seconds += run;
        c.read_seconds += read;
        c.write_seconds += write;
        c.other_seconds += std::max(0.0, span - run - read - write);
        if (e.kind == EventKind::kFiring) ++c.firings;
        break;
      }
      case EventKind::kSourceRelease:
        ++r.releases;
        if (e.aux1 > 0.0f) ++r.delayed_releases;
        r.max_release_lag_seconds =
            std::max(r.max_release_lag_seconds,
                     static_cast<double>(e.aux0));
        break;
      default:
        break;  // park and channel events do not contribute busy time
    }
  }
  for (CoreBreakdown& c : r.cores)
    c.idle_seconds = std::max(0.0, r.duration_seconds - c.busy_seconds());
  return r;
}

}  // namespace bpp::obs
