#include "obs/recorder.h"

#include <algorithm>

#include "obs/frames.h"

namespace bpp::obs {

void Recorder::begin_session(TraceClock clock, double cycles_per_second,
                             int cores,
                             std::vector<std::string> kernel_names) {
  trace_ = Trace{};
  trace_.clock = clock;
  trace_.cycles_per_second = cycles_per_second;
  trace_.cores = cores;
  trace_.kernel_names = std::move(kernel_names);
  rings_.clear();
  rings_.reserve(static_cast<std::size_t>(cores));
  for (int c = 0; c < cores; ++c)
    rings_.push_back(std::make_unique<EventRing>(opt_.ring_capacity));
}

const Trace& Recorder::finish_session(double duration_seconds) {
  trace_.duration_seconds = duration_seconds;
  for (auto& r : rings_) {
    r->drain_into(trace_.events);
    trace_.dropped_events += r->dropped();
  }
  std::stable_sort(trace_.events.begin(), trace_.events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.t0 < b.t0;
                   });

  // Standard derived metrics, identical for both engines.
  Counter& firings = metrics_.counter("trace.firings");
  Counter& releases = metrics_.counter("trace.releases");
  Counter& delayed = metrics_.counter("trace.delayed_releases");
  Histogram& lag = metrics_.histogram("trace.release_lag_seconds");
  Histogram& firing_s = metrics_.histogram("trace.firing_seconds");
  for (const TraceEvent& e : trace_.events) {
    switch (e.kind) {
      case EventKind::kFiring:
        firings.add(1);
        firing_s.observe(e.t1 - e.t0);
        break;
      case EventKind::kSourceRelease:
        releases.add(1);
        if (e.aux1 > 0.0f) delayed.add(1);
        lag.observe(static_cast<double>(e.aux0));
        break;
      default:
        break;
    }
  }
  metrics_.counter("trace.dropped_events")
      .add(static_cast<std::int64_t>(trace_.dropped_events));
  metrics_.gauge("trace.duration_seconds").set(duration_seconds);

  // Frame tracking: pair the frame-boundary instants and feed the latency
  // and completion-period histograms (whose log2 buckets back the p50/p95
  // summaries in the metric dumps).
  const FrameReport frames = analyze_frames(trace_);
  if (!frames.frames.empty() || frames.incomplete > 0) {
    metrics_.counter("trace.frames")
        .add(static_cast<std::int64_t>(frames.frames.size()));
    metrics_.counter("trace.incomplete_frames").add(frames.incomplete);
    Histogram& latency = metrics_.histogram("trace.frame_latency_seconds");
    Histogram& period = metrics_.histogram("trace.frame_period_seconds");
    for (std::size_t i = 0; i < frames.frames.size(); ++i) {
      latency.observe(frames.frames[i].latency_seconds());
      if (i > 0)
        period.observe(frames.frames[i].end_seconds -
                       frames.frames[i - 1].end_seconds);
    }
  }
  return trace_;
}

}  // namespace bpp::obs
