#pragma once
// Recorder: the handle an engine run records into.
//
// Lifecycle (one session per engine run):
//   Recorder rec;                      // caller owns, outlives the run
//   opts.recorder = &rec;              // hand to run_threaded()/simulate()
//   ... engine calls begin_session(), workers emit into ring(core) ...
//   ... engine calls finish_session(duration) after workers joined ...
//   rec.trace();                       // unified, time-sorted Trace
//   rec.metrics();                     // registry (engine + derived)
//
// The per-core rings are SPSC: the worker owning a core is the only
// producer, the collector (finish_session) the only consumer. A Recorder
// can be reused; begin_session resets the previous session's trace.

#include <memory>
#include <string>
#include <vector>

#include "obs/event_ring.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace bpp::obs {

struct RecorderOptions {
  /// Events buffered per core ring; overflow drops the newest events and
  /// counts them in Trace::dropped_events.
  std::size_t ring_capacity = 1 << 16;
};

class Recorder {
 public:
  explicit Recorder(RecorderOptions opt = {}) : opt_(opt) {}

  /// Engine side, before workers start: allocate one ring per core and
  /// stamp the trace metadata. `cycles_per_second` is 0 on the wall clock.
  void begin_session(TraceClock clock, double cycles_per_second, int cores,
                     std::vector<std::string> kernel_names);

  /// Ring for `core`'s worker (valid between begin and finish). Engines
  /// treat a null Recorder* as tracing-off; this is never null after
  /// begin_session for an in-range core.
  [[nodiscard]] EventRing* ring(int core) {
    return rings_[static_cast<std::size_t>(core)].get();
  }

  /// Collector side, callable while workers are still emitting (the rings
  /// are SPSC with this thread as the single consumer): move everything
  /// buffered so far into the trace. Engines poll periodically so sessions
  /// longer than the ring capacity do not shed events.
  void poll() {
    for (auto& r : rings_) r->drain_into(trace_.events);
  }

  /// Engine side, after workers joined: drain every ring into the trace,
  /// sort by start time, record the run duration, and derive standard
  /// metrics (firing/release counters, release-lag histogram, drop count).
  const Trace& finish_session(double duration_seconds);

  [[nodiscard]] const Trace& trace() const { return trace_; }
  [[nodiscard]] MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] const MetricsRegistry& metrics() const { return metrics_; }

 private:
  RecorderOptions opt_;
  std::vector<std::unique_ptr<EventRing>> rings_;
  Trace trace_;
  MetricsRegistry metrics_;
};

}  // namespace bpp::obs
