#include "obs/trace.h"

#include <cstdio>
#include <ostream>

namespace bpp::obs {

namespace {

const std::string kUnknown = "?";

/// JSON string escaping for kernel names (quotes, backslashes, control
/// characters; everything else passes through).
void write_escaped(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

/// Chrome's `ts`/`dur` are microseconds.
[[nodiscard]] double us(double seconds) { return seconds * 1e6; }

}  // namespace

const char* event_kind_name(EventKind k) {
  switch (k) {
    case EventKind::kFiring: return "firing";
    case EventKind::kWrite: return "write";
    case EventKind::kPark: return "park";
    case EventKind::kSourceRelease: return "release";
    case EventKind::kChannelPush: return "push";
    case EventKind::kChannelPop: return "pop";
    case EventKind::kFrameStart: return "frame_start";
    case EventKind::kFrameEnd: return "frame_end";
    case EventKind::kFaultInject: return "fault";
    case EventKind::kFrameShed: return "shed";
    case EventKind::kShedRecover: return "recover";
  }
  return "?";
}

const std::string& Trace::kernel_name(std::int32_t k) const {
  if (k < 0 || static_cast<std::size_t>(k) >= kernel_names.size())
    return kUnknown;
  return kernel_names[static_cast<std::size_t>(k)];
}

void write_chrome_trace(const Trace& t, std::ostream& os) {
  os << "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"clock\":\""
     << (t.clock == TraceClock::kModeled ? "modeled" : "wall")
     << "\",\"dropped_events\":" << t.dropped_events
     << ",\"duration_seconds\":" << t.duration_seconds
     << "},\"traceEvents\":[\n";

  bool first = true;
  auto sep = [&] {
    if (!first) os << ",\n";
    first = false;
  };

  // Track names: one per core, plus a "sources" track for events emitted
  // off-core (simulator input releases have core -1).
  os << "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"process_name\","
        "\"args\":{\"name\":\"bpp\"}}";
  first = false;
  for (int c = 0; c < t.cores; ++c) {
    sep();
    os << "{\"ph\":\"M\",\"pid\":0,\"tid\":" << c
       << ",\"name\":\"thread_name\",\"args\":{\"name\":\"core " << c
       << "\"}}";
  }
  sep();
  os << "{\"ph\":\"M\",\"pid\":0,\"tid\":" << t.cores
     << ",\"name\":\"thread_name\",\"args\":{\"name\":\"sources\"}}";

  for (const TraceEvent& e : t.events) {
    const int tid = e.core >= 0 ? e.core : t.cores;
    sep();
    switch (e.kind) {
      case EventKind::kFiring:
      case EventKind::kWrite: {
        os << "{\"ph\":\"X\",\"pid\":0,\"tid\":" << tid << ",\"ts\":"
           << us(e.t0) << ",\"dur\":" << us(e.t1 - e.t0) << ",\"cat\":\""
           << event_kind_name(e.kind) << "\",\"name\":";
        std::string name = t.kernel_name(e.kernel);
        if (e.kind == EventKind::kWrite) name += " (write)";
        write_escaped(os, name);
        os << ",\"args\":{\"kernel\":" << e.kernel << ",\"method\":"
           << e.method << ",\"run\":" << e.aux0 << ",\"read\":" << e.aux1
           << ",\"write\":" << e.aux2 << "}}";
        break;
      }
      case EventKind::kPark:
        os << "{\"ph\":\"X\",\"pid\":0,\"tid\":" << tid << ",\"ts\":"
           << us(e.t0) << ",\"dur\":" << us(e.t1 - e.t0)
           << ",\"cat\":\"park\",\"name\":\"park\",\"args\":{}}";
        break;
      case EventKind::kSourceRelease:
        os << "{\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":" << tid
           << ",\"ts\":" << us(e.t0) << ",\"cat\":\"release\",\"name\":";
        write_escaped(os, "release " + t.kernel_name(e.kernel));
        os << ",\"args\":{\"lag_seconds\":" << e.aux0
           << ",\"delayed\":" << (e.aux1 > 0.0f ? 1 : 0) << "}}";
        break;
      case EventKind::kChannelPush:
      case EventKind::kChannelPop:
        os << "{\"ph\":\"C\",\"pid\":0,\"tid\":" << tid << ",\"ts\":"
           << us(e.t0) << ",\"name\":\"chan " << e.channel
           << "\",\"args\":{\"occupancy\":" << e.aux0 << "}}";
        break;
      case EventKind::kFrameStart:
      case EventKind::kFrameEnd:
        os << "{\"ph\":\"i\",\"s\":\"g\",\"pid\":0,\"tid\":" << tid
           << ",\"ts\":" << us(e.t0) << ",\"cat\":\""
           << event_kind_name(e.kind) << "\",\"name\":";
        write_escaped(os, std::string(event_kind_name(e.kind)) + " " +
                              std::to_string(e.method));
        os << ",\"args\":{\"frame\":" << e.method
           << ",\"kernel\":" << e.kernel << "}}";
        break;
      case EventKind::kFaultInject:
        os << "{\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":" << tid
           << ",\"ts\":" << us(e.t0) << ",\"cat\":\"fault\",\"name\":";
        write_escaped(os, "fault " + t.kernel_name(e.kernel));
        os << ",\"args\":{\"kernel\":" << e.kernel
           << ",\"time_scale\":" << e.aux0
           << ",\"stall_seconds\":" << e.aux1
           << ",\"delivery_delay_seconds\":" << e.aux2 << "}}";
        break;
      case EventKind::kFrameShed:
      case EventKind::kShedRecover:
        os << "{\"ph\":\"i\",\"s\":\"g\",\"pid\":0,\"tid\":" << tid
           << ",\"ts\":" << us(e.t0) << ",\"cat\":\""
           << event_kind_name(e.kind) << "\",\"name\":";
        write_escaped(os, std::string(event_kind_name(e.kind)) + " frame " +
                              std::to_string(e.method));
        os << ",\"args\":{\"frame\":" << e.method
           << ",\"kernel\":" << e.kernel << "}}";
        break;
    }
  }
  os << "\n]}\n";
}

}  // namespace bpp::obs
