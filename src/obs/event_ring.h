#pragma once
// Per-thread lock-free trace-event ring.
//
// The same Lamport SPSC design as the runtime's channels (core/spsc_ring.h)
// carrying fixed-size TraceEvent records: the owning worker thread is the
// single producer, the collector draining after (or concurrently with) the
// run is the single consumer. A full ring never blocks the producer —
// emit() drops the event and counts it, so tracing shears accuracy under
// overload instead of perturbing the schedule it is observing. The oldest
// events are the ones kept (first-N semantics, which is also what the
// simulator's trace_limit adapter needs).

#include <atomic>
#include <cstdint>
#include <vector>

#include "core/spsc_ring.h"
#include "obs/trace.h"

namespace bpp::obs {

class EventRing {
 public:
  explicit EventRing(std::size_t capacity) : ring_(capacity) {}

  /// Producer: record one event; drops (and counts) when full.
  void emit(const TraceEvent& e) {
    if (!ring_.try_push(e))
      dropped_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Consumer: append everything currently in the ring to `out`.
  void drain_into(std::vector<TraceEvent>& out) {
    while (const TraceEvent* e = ring_.front()) {
      out.push_back(*e);
      ring_.pop();
    }
  }

  [[nodiscard]] std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t capacity() const { return ring_.capacity(); }

 private:
  SpscRing<TraceEvent> ring_;
  std::atomic<std::uint64_t> dropped_{0};
};

}  // namespace bpp::obs
