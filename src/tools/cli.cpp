#include "tools/cli.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace bpp::cli {

const char* usage_text() {
  return
      "usage: bpc <app>|@file.bpg [options]\n"
      "apps (or @file to load a bpp-graph text file):\n"
      "  fig1 | bayer | histogram | parallel-buffer | multi-conv |\n"
      "  pipeline | sobel | downsample | separable | motion | feedback |\n"
      "  radio | analytics\n"
      "options:\n"
      "  --frame WxH        input frame extent (default 48x36)\n"
      "  --rate HZ          input frame rate (default 180)\n"
      "  --frames N         frames per run (default 2)\n"
      "  --bins N           histogram bins (default 32)\n"
      "  --policy P         alignment: trim | pad | mirror (default trim)\n"
      "  --reuse            Fig. 9 reuse-optimized striping\n"
      "  --no-multiplex     keep the 1:1 kernel-to-core mapping\n"
      "  --machine C,M      PE clock_hz and mem_words (default 20e6,512)\n"
      "  --save FILE        write the source graph as bpp-graph text\n"
      "  --dot FILE         write the compiled graph as Graphviz\n"
      "  --simulate         verify real time on the timing simulator\n"
      "  --firings N        with --simulate: print the first N firings\n"
      "  --kernels          with --simulate: busiest kernels by cycles\n"
      "  --run              execute functionally on host threads\n"
      "  --isa NAME         kernel backend for --run: scalar | sse2 | avx2 |\n"
      "                     neon | native (default: native, i.e. the best\n"
      "                     ISA this CPU supports; BPP_ISA env overrides)\n"
      "  --pace             with --run: release inputs on the wall-clock\n"
      "                     schedule instead of as fast as possible\n"
      "  --slowdown X       with --pace: stretch the release schedule by X\n"
      "  --faults FILE      load a JSON fault plan and inject deterministic\n"
      "                     timing faults (jitter, overruns, stalls, core\n"
      "                     throttling, delivery delay) into the execution;\n"
      "                     implies --simulate when neither --simulate nor\n"
      "                     --run is given\n"
      "  --fault-seed N     override the fault plan's seed (replay knob)\n"
      "  --shed             with --run: shed whole frames at source frame\n"
      "                     boundaries when sinks miss their deadlines\n"
      "  --degradation FILE write the degradation report: frames on-time /\n"
      "                     late / shed plus per-kernel overrun attribution\n"
      "                     ('-' = stdout; *.json = JSON, otherwise text)\n"
      "  --trace FILE       write a Chrome trace-event JSON timeline\n"
      "                     (simulated run if --simulate, else host run;\n"
      "                     implies --simulate when neither is given)\n"
      "  --metrics FILE     write the metrics registry ('-' = stdout;\n"
      "                     *.json = JSON, otherwise text)\n"
      "  --analyze FILE     write the real-time analysis report ('-' =\n"
      "                     stdout): per-frame latency, deadline verdicts,\n"
      "                     critical-path attribution, predicted-vs-\n"
      "                     measured firing rates; needs --simulate/--run\n"
      "  --deadline-slack S per-frame deadline slack in seconds for\n"
      "                     --analyze and --shed (default 0)\n";
}

bool parse(int argc, const char* const* argv, Args& a) {
  if (argc < 2) return false;
  a.app = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (flag == "--frame") {
      const char* v = value();
      if (!v || std::sscanf(v, "%dx%d", &a.frame.w, &a.frame.h) != 2)
        return false;
    } else if (flag == "--rate") {
      const char* v = value();
      if (!v) return false;
      a.rate = std::atof(v);
    } else if (flag == "--frames") {
      const char* v = value();
      if (!v) return false;
      a.frames = std::atoi(v);
    } else if (flag == "--bins") {
      const char* v = value();
      if (!v) return false;
      a.bins = std::atoi(v);
    } else if (flag == "--policy") {
      const char* v = value();
      if (!v) return false;
      if (!std::strcmp(v, "trim")) a.policy = AlignPolicy::Trim;
      else if (!std::strcmp(v, "pad")) a.policy = AlignPolicy::Pad;
      else if (!std::strcmp(v, "mirror")) a.policy = AlignPolicy::MirrorPad;
      else return false;
    } else if (flag == "--reuse") {
      a.reuse = true;
    } else if (flag == "--no-multiplex") {
      a.multiplex = false;
    } else if (flag == "--machine") {
      const char* v = value();
      double clock = 0;
      long mem = 0;
      if (!v || std::sscanf(v, "%lf,%ld", &clock, &mem) != 2) return false;
      a.machine.clock_hz = clock;
      a.machine.mem_words = mem;
    } else if (flag == "--save") {
      const char* v = value();
      if (!v) return false;
      a.save_path = v;
    } else if (flag == "--dot") {
      const char* v = value();
      if (!v) return false;
      a.dot_path = v;
    } else if (flag == "--simulate") {
      a.do_sim = true;
    } else if (flag == "--firings") {
      const char* v = value();
      if (!v) return false;
      a.firings = std::atol(v);
      a.firings_set = true;
    } else if (flag == "--pace") {
      a.pace = true;
    } else if (flag == "--slowdown") {
      const char* v = value();
      if (!v) return false;
      a.pace_slowdown = std::atof(v);
    } else if (flag == "--deadline-slack") {
      const char* v = value();
      if (!v) return false;
      a.deadline_slack = std::atof(v);
      a.deadline_slack_set = true;
    } else if (flag == "--faults") {
      const char* v = value();
      if (!v) return false;
      a.faults_path = v;
    } else if (flag == "--fault-seed") {
      const char* v = value();
      if (!v) return false;
      char* end = nullptr;
      a.fault_seed = std::strtoull(v, &end, 10);
      if (!end || *end != '\0') return false;
      a.fault_seed_set = true;
    } else if (flag == "--shed") {
      a.shed = true;
    } else if (flag == "--degradation") {
      const char* v = value();
      if (!v) return false;
      a.degradation_path = v;
    } else if (flag == "--analyze") {
      const char* v = value();
      if (!v) return false;
      a.analyze_path = v;
    } else if (flag == "--trace") {
      const char* v = value();
      if (!v) return false;
      a.trace_path = v;
    } else if (flag == "--metrics") {
      const char* v = value();
      if (!v) return false;
      a.metrics_path = v;
    } else if (flag == "--isa") {
      const char* v = value();
      if (!v) return false;
      a.isa = v;
    } else if (flag == "--kernels") {
      a.show_kernels = true;
    } else if (flag == "--run") {
      a.do_run = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
  }
  return true;
}

void apply_implications(Args& a) {
  if ((!a.trace_path.empty() || !a.metrics_path.empty() ||
       !a.faults_path.empty() || !a.degradation_path.empty()) &&
      !a.do_sim && !a.do_run)
    a.do_sim = true;
}

const char* contradiction(const Args& a) {
  if (!a.analyze_path.empty() && !a.do_sim && !a.do_run)
    return "--analyze needs an execution to observe; add --simulate or --run";
  if (a.firings_set && a.firings == 0 && !a.trace_path.empty())
    return "--firings 0 contradicts --trace: nothing would be recorded";
  if (a.firings_set && a.firings > 0 && !a.do_sim)
    return "--firings applies to the simulator; add --simulate";
  if (a.pace && !a.do_run)
    return "--pace applies to the host runtime; add --run";
  if (a.pace_slowdown != 1.0 && !a.pace)
    return "--slowdown requires --pace";
  if (a.fault_seed_set && a.faults_path.empty())
    return "--fault-seed requires --faults";
  if (a.shed && !a.do_run)
    return "--shed applies to the host runtime; add --run";
  if (a.deadline_slack_set && a.analyze_path.empty() && !a.shed)
    return "--deadline-slack requires --analyze or --shed";
  return nullptr;
}

}  // namespace bpp::cli
