#include "tools/cli.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace bpp::cli {

const char* usage_text() {
  return
      "usage: bpc <app>|@file.bpg [options]\n"
      "apps (or @file to load a bpp-graph text file):\n"
      "  fig1 | bayer | histogram | parallel-buffer | multi-conv |\n"
      "  pipeline | sobel | downsample | separable | motion | feedback |\n"
      "  radio | analytics\n"
      "options:\n"
      "  --frame WxH        input frame extent (default 48x36)\n"
      "  --rate HZ          input frame rate (default 180)\n"
      "  --frames N         frames per run (default 2)\n"
      "  --bins N           histogram bins (default 32)\n"
      "  --policy P         alignment: trim | pad | mirror (default trim)\n"
      "  --reuse            Fig. 9 reuse-optimized striping\n"
      "  --no-multiplex     keep the 1:1 kernel-to-core mapping\n"
      "  --machine C,M      PE clock_hz and mem_words (default 20e6,512)\n"
      "  --save FILE        write the source graph as bpp-graph text\n"
      "  --dot FILE         write the compiled graph as Graphviz\n"
      "  --simulate         verify real time on the timing simulator\n"
      "  --predict          predict utilization, steady period, and the\n"
      "                     real-time verdict analytically, without running\n"
      "                     anything; with --simulate/--run also prints a\n"
      "                     predicted-vs-simulated-vs-measured table\n"
      "  --predict-check T  with --predict --simulate: exit nonzero when the\n"
      "                     predicted steady period deviates from the\n"
      "                     simulated one by more than relative tolerance T\n"
      "  --predict-costs F  calibrate the prediction from a Google-benchmark\n"
      "                     JSON cost table (BENCH_kernels.json); implies\n"
      "                     --predict\n"
      "  --firings N        with --simulate: print the first N firings\n"
      "  --kernels          with --simulate: busiest kernels by cycles\n"
      "  --run              execute functionally on host threads\n"
      "  --isa NAME         kernel backend for --run: scalar | sse2 | avx2 |\n"
      "                     neon | native (default: native, i.e. the best\n"
      "                     ISA this CPU supports; BPP_ISA env overrides)\n"
      "  --pace             with --run: release inputs on the wall-clock\n"
      "                     schedule instead of as fast as possible\n"
      "  --slowdown X       with --pace: stretch the release schedule by X\n"
      "  --faults FILE      load a JSON fault plan and inject deterministic\n"
      "                     timing faults (jitter, overruns, stalls, core\n"
      "                     throttling, delivery delay) into the execution;\n"
      "                     implies --simulate when neither --simulate nor\n"
      "                     --run is given\n"
      "  --fault-seed N     override the fault plan's seed (replay knob)\n"
      "  --shed             with --run: shed whole frames at source frame\n"
      "                     boundaries when sinks miss their deadlines\n"
      "  --degradation FILE write the degradation report: frames on-time /\n"
      "                     late / shed plus per-kernel overrun attribution\n"
      "                     ('-' = stdout; *.json = JSON, otherwise text)\n"
      "  --trace FILE       write a Chrome trace-event JSON timeline\n"
      "                     (simulated run if --simulate, else host run;\n"
      "                     implies --simulate when neither is given)\n"
      "  --metrics FILE     write the metrics registry ('-' = stdout;\n"
      "                     *.json = JSON, otherwise text)\n"
      "  --analyze FILE     write the real-time analysis report ('-' =\n"
      "                     stdout): per-frame latency, deadline verdicts,\n"
      "                     critical-path attribution, predicted-vs-\n"
      "                     measured firing rates; needs --simulate/--run\n"
      "  --deadline-slack S per-frame deadline slack in seconds for\n"
      "                     --analyze and --shed (default 0)\n";
}

bool parse(int argc, const char* const* argv, Args& a) {
  if (argc < 2) return false;
  a.app = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (flag == "--frame") {
      const char* v = value();
      if (!v || std::sscanf(v, "%dx%d", &a.frame.w, &a.frame.h) != 2)
        return false;
    } else if (flag == "--rate") {
      const char* v = value();
      if (!v) return false;
      a.rate = std::atof(v);
    } else if (flag == "--frames") {
      const char* v = value();
      if (!v) return false;
      a.frames = std::atoi(v);
    } else if (flag == "--bins") {
      const char* v = value();
      if (!v) return false;
      a.bins = std::atoi(v);
    } else if (flag == "--policy") {
      const char* v = value();
      if (!v) return false;
      if (!std::strcmp(v, "trim")) a.policy = AlignPolicy::Trim;
      else if (!std::strcmp(v, "pad")) a.policy = AlignPolicy::Pad;
      else if (!std::strcmp(v, "mirror")) a.policy = AlignPolicy::MirrorPad;
      else return false;
    } else if (flag == "--reuse") {
      a.reuse = true;
    } else if (flag == "--no-multiplex") {
      a.multiplex = false;
    } else if (flag == "--machine") {
      const char* v = value();
      double clock = 0;
      long mem = 0;
      if (!v || std::sscanf(v, "%lf,%ld", &clock, &mem) != 2) return false;
      a.machine.clock_hz = clock;
      a.machine.mem_words = mem;
    } else if (flag == "--save") {
      const char* v = value();
      if (!v) return false;
      a.save_path = v;
    } else if (flag == "--dot") {
      const char* v = value();
      if (!v) return false;
      a.dot_path = v;
    } else if (flag == "--simulate") {
      a.do_sim = true;
    } else if (flag == "--predict") {
      a.do_predict = true;
    } else if (flag == "--predict-check") {
      const char* v = value();
      if (!v) return false;
      a.predict_check = std::atof(v);
      a.predict_check_set = true;
    } else if (flag == "--predict-costs") {
      const char* v = value();
      if (!v) return false;
      a.predict_costs_path = v;
    } else if (flag == "--firings") {
      const char* v = value();
      if (!v) return false;
      a.firings = std::atol(v);
      a.firings_set = true;
    } else if (flag == "--pace") {
      a.pace = true;
    } else if (flag == "--slowdown") {
      const char* v = value();
      if (!v) return false;
      a.pace_slowdown = std::atof(v);
    } else if (flag == "--deadline-slack") {
      const char* v = value();
      if (!v) return false;
      a.deadline_slack = std::atof(v);
      a.deadline_slack_set = true;
    } else if (flag == "--faults") {
      const char* v = value();
      if (!v) return false;
      a.faults_path = v;
    } else if (flag == "--fault-seed") {
      const char* v = value();
      if (!v) return false;
      char* end = nullptr;
      a.fault_seed = std::strtoull(v, &end, 10);
      if (!end || *end != '\0') return false;
      a.fault_seed_set = true;
    } else if (flag == "--shed") {
      a.shed = true;
    } else if (flag == "--degradation") {
      const char* v = value();
      if (!v) return false;
      a.degradation_path = v;
    } else if (flag == "--analyze") {
      const char* v = value();
      if (!v) return false;
      a.analyze_path = v;
    } else if (flag == "--trace") {
      const char* v = value();
      if (!v) return false;
      a.trace_path = v;
    } else if (flag == "--metrics") {
      const char* v = value();
      if (!v) return false;
      a.metrics_path = v;
    } else if (flag == "--isa") {
      const char* v = value();
      if (!v) return false;
      a.isa = v;
    } else if (flag == "--kernels") {
      a.show_kernels = true;
    } else if (flag == "--run") {
      a.do_run = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
  }
  return true;
}

void apply_implications(Args& a) {
  if ((!a.trace_path.empty() || !a.metrics_path.empty() ||
       !a.faults_path.empty() || !a.degradation_path.empty()) &&
      !a.do_sim && !a.do_run)
    a.do_sim = true;
  if (!a.predict_costs_path.empty()) a.do_predict = true;
}

const char* contradiction(const Args& a) {
  if (!a.analyze_path.empty() && !a.do_sim && !a.do_run)
    return "--analyze needs an execution to observe; add --simulate or --run";
  if (a.firings_set && a.firings == 0 && !a.trace_path.empty())
    return "--firings 0 contradicts --trace: nothing would be recorded";
  if (a.firings_set && a.firings > 0 && !a.do_sim)
    return "--firings applies to the simulator; add --simulate";
  if (a.pace && !a.do_run)
    return "--pace applies to the host runtime; add --run";
  if (a.pace_slowdown != 1.0 && !a.pace)
    return "--slowdown requires --pace";
  if (a.fault_seed_set && a.faults_path.empty())
    return "--fault-seed requires --faults";
  if (a.predict_check_set && !a.do_predict)
    return "--predict-check requires --predict";
  if (a.predict_check_set && !a.do_sim)
    return "--predict-check compares against the simulator; add --simulate";
  if (a.predict_check_set && a.predict_check <= 0.0)
    return "--predict-check tolerance must be positive";
  if (a.shed && !a.do_run)
    return "--shed applies to the host runtime; add --run";
  if (a.deadline_slack_set && a.analyze_path.empty() && !a.shed)
    return "--deadline-slack requires --analyze or --shed";
  return nullptr;
}

const char* bpd_usage_text() {
  return
      "usage: bpd [options]\n"
      "the multi-tenant pipeline service: admits JSON tenant submissions\n"
      "onto a shared worker-core pool, runs them to completion, and dumps\n"
      "a per-tenant status report\n"
      "options:\n"
      "  --cores N            worker pool width (default 4)\n"
      "  --submit FILE        submit one JSON tenant spec (repeatable)\n"
      "  --spool DIR          scan DIR for *.json submissions (file-drop\n"
      "                       protocol; each file is submitted once)\n"
      "  --spool-rounds N     rescan the spool N times (default 1)\n"
      "  --spool-interval S   seconds between spool scans (default 0.2)\n"
      "  --max-tenants N      reject submissions past N tenants (default 64)\n"
      "  --no-admission       admit every submission (disables the analytic\n"
      "                       LoadMap admission test and tenant limits)\n"
      "  --core-budget X      per-core admit budget in PE units (default 0.9)\n"
      "  --degrade-budget X   per-core ceiling for degraded (frame-shedding)\n"
      "                       admission (default 1.25; must be >= core budget)\n"
      "  --evict-misses N     evict a tenant after N runtime deadline misses\n"
      "                       (default 3; 0 = never evict)\n"
      "  --no-pace            run tenants unpaced (batch mode; disables\n"
      "                       deadline monitoring and eviction)\n"
      "  --machine C,M        compile-target PE clock_hz and mem_words\n"
      "                       (default 20e6,512)\n"
      "  --timeout S          wait this long for tenants to finish\n"
      "                       (default 120)\n"
      "  --max-restarts N     restart a failing tenant N times (exponential\n"
      "                       backoff) before quarantining it (default 3)\n"
      "  --restart-backoff S  first restart delay in seconds; doubles per\n"
      "                       consecutive failure (default 0.05)\n"
      "  --stall-factor X     declare a tenant stalled after X frame periods\n"
      "                       without progress (default 8)\n"
      "  --stall-grace S      minimum stall window in seconds (default 1)\n"
      "  --journal FILE       append-only admission journal (JSONL, written\n"
      "                       atomically); enables --recover after a crash\n"
      "  --recover            replay the --journal first: restore terminal\n"
      "                       tenants, re-admit previously running ones\n"
      "  --drain-timeout S    on SIGTERM/SIGINT, drain tenants at frame\n"
      "                       boundaries for up to S seconds (default 10)\n"
      "  --status FILE        write the status report ('-' = stdout)\n"
      "  --status-json FILE   write the status report as JSON\n"
      "  --isa NAME           kernel backend: scalar | sse2 | avx2 | neon |\n"
      "                       native\n";
}

bool parse_bpd(int argc, const char* const* argv, BpdArgs& a) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (flag == "--cores") {
      const char* v = value();
      if (!v) return false;
      a.cores = std::atoi(v);
    } else if (flag == "--max-tenants") {
      const char* v = value();
      if (!v) return false;
      a.max_tenants = std::atoi(v);
      a.max_tenants_set = true;
    } else if (flag == "--no-admission") {
      a.admission = false;
    } else if (flag == "--core-budget") {
      const char* v = value();
      if (!v) return false;
      a.core_budget = std::atof(v);
      a.core_budget_set = true;
    } else if (flag == "--degrade-budget") {
      const char* v = value();
      if (!v) return false;
      a.degrade_budget = std::atof(v);
      a.degrade_budget_set = true;
    } else if (flag == "--evict-misses") {
      const char* v = value();
      if (!v) return false;
      a.evict_misses = std::atol(v);
      a.evict_misses_set = true;
    } else if (flag == "--no-pace") {
      a.pace = false;
    } else if (flag == "--submit") {
      const char* v = value();
      if (!v) return false;
      a.submit_files.emplace_back(v);
    } else if (flag == "--spool") {
      const char* v = value();
      if (!v) return false;
      a.spool_dir = v;
    } else if (flag == "--spool-rounds") {
      const char* v = value();
      if (!v) return false;
      a.spool_rounds = std::atoi(v);
      a.spool_rounds_set = true;
    } else if (flag == "--spool-interval") {
      const char* v = value();
      if (!v) return false;
      a.spool_interval_seconds = std::atof(v);
      a.spool_interval_set = true;
    } else if (flag == "--machine") {
      const char* v = value();
      double clock = 0;
      long mem = 0;
      if (!v || std::sscanf(v, "%lf,%ld", &clock, &mem) != 2) return false;
      a.machine.clock_hz = clock;
      a.machine.mem_words = mem;
    } else if (flag == "--timeout") {
      const char* v = value();
      if (!v) return false;
      a.timeout_seconds = std::atof(v);
    } else if (flag == "--max-restarts") {
      const char* v = value();
      if (!v) return false;
      a.max_restarts = std::atoi(v);
      a.max_restarts_set = true;
    } else if (flag == "--restart-backoff") {
      const char* v = value();
      if (!v) return false;
      a.restart_backoff_seconds = std::atof(v);
      a.restart_backoff_set = true;
    } else if (flag == "--stall-factor") {
      const char* v = value();
      if (!v) return false;
      a.stall_factor = std::atof(v);
      a.stall_factor_set = true;
    } else if (flag == "--stall-grace") {
      const char* v = value();
      if (!v) return false;
      a.stall_grace_seconds = std::atof(v);
      a.stall_grace_set = true;
    } else if (flag == "--journal") {
      const char* v = value();
      if (!v) return false;
      a.journal_path = v;
    } else if (flag == "--recover") {
      a.recover = true;
    } else if (flag == "--drain-timeout") {
      const char* v = value();
      if (!v) return false;
      a.drain_timeout_seconds = std::atof(v);
      a.drain_timeout_set = true;
    } else if (flag == "--status") {
      const char* v = value();
      if (!v) return false;
      a.status_path = v;
    } else if (flag == "--status-json") {
      const char* v = value();
      if (!v) return false;
      a.status_json_path = v;
    } else if (flag == "--isa") {
      const char* v = value();
      if (!v) return false;
      a.isa = v;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
  }
  return true;
}

const char* bpd_contradiction(const BpdArgs& a) {
  if (a.cores < 1) return "--cores must be at least 1";
  if (a.submit_files.empty() && a.spool_dir.empty() && !a.recover)
    return "nothing to serve; add --submit FILE, --spool DIR, or --recover";
  if (a.max_tenants_set && !a.admission)
    return "--max-tenants is an admission limit; it contradicts "
           "--no-admission";
  if (a.max_tenants_set && a.max_tenants < 1)
    return "--max-tenants must be at least 1";
  if (a.core_budget_set && !a.admission)
    return "--core-budget configures admission; it contradicts "
           "--no-admission";
  if (a.degrade_budget_set && !a.admission)
    return "--degrade-budget configures admission; it contradicts "
           "--no-admission";
  if (a.core_budget <= 0.0) return "--core-budget must be positive";
  if (a.degrade_budget < a.core_budget)
    return "--degrade-budget below --core-budget: degraded admission would "
           "be stricter than plain admission";
  if (a.evict_misses_set && a.evict_misses < 0)
    return "--evict-misses must be >= 0";
  if (a.evict_misses_set && !a.pace)
    return "--evict-misses needs paced tenants to observe deadlines; it "
           "contradicts --no-pace";
  if (a.spool_rounds_set && a.spool_dir.empty())
    return "--spool-rounds requires --spool";
  if (a.spool_interval_set && a.spool_dir.empty())
    return "--spool-interval requires --spool";
  if (a.spool_rounds_set && a.spool_rounds < 1)
    return "--spool-rounds must be at least 1";
  if (a.spool_interval_set && a.spool_interval_seconds < 0.0)
    return "--spool-interval must be >= 0";
  if (a.timeout_seconds <= 0.0) return "--timeout must be positive";
  if (a.recover && a.journal_path.empty())
    return "--recover replays the admission journal; it requires --journal";
  if (a.max_restarts_set && a.max_restarts < 0)
    return "--max-restarts must be >= 0";
  if (a.restart_backoff_set && a.restart_backoff_seconds < 0.0)
    return "--restart-backoff must be >= 0";
  if (a.stall_factor_set && a.stall_factor <= 0.0)
    return "--stall-factor must be positive";
  if (a.stall_grace_set && a.stall_grace_seconds < 0.0)
    return "--stall-grace must be >= 0";
  if (a.drain_timeout_set && a.drain_timeout_seconds <= 0.0)
    return "--drain-timeout must be positive";
  return nullptr;
}

}  // namespace bpp::cli
