#pragma once
// bpc's command-line surface, split out of the driver so the flag parser
// and the contradictory-flag rejection are unit-testable (tests/test_errors
// fires every branch). The driver (bpc_main.cpp) owns everything that
// actually executes: building apps, compiling, running engines.

#include <string>
#include <vector>

#include "compiler/machine.h"
#include "compiler/pipeline.h"
#include "core/geometry.h"

namespace bpp::cli {

struct Args {
  std::string app;
  Size2 frame{48, 36};
  double rate = 180.0;
  int frames = 2;
  int bins = 32;
  AlignPolicy policy = AlignPolicy::Trim;
  bool reuse = false;
  bool multiplex = true;
  bool do_sim = false;
  bool do_run = false;
  bool do_predict = false;        ///< --predict: analytic performance model
  double predict_check = 0.0;     ///< --predict-check TOL (relative)
  bool predict_check_set = false;
  std::string predict_costs_path; ///< --predict-costs FILE (bench JSON)
  bool show_kernels = false;
  long firings = 0;
  bool firings_set = false;  ///< --firings given explicitly
  bool pace = false;
  double pace_slowdown = 1.0;
  double deadline_slack = 0.0;
  bool deadline_slack_set = false;
  std::string faults_path;      ///< --faults FILE (JSON fault plan)
  std::uint64_t fault_seed = 0;  ///< --fault-seed N
  bool fault_seed_set = false;
  bool shed = false;  ///< --shed: frame shedding on deadline misses
  std::string degradation_path;  ///< --degradation FILE
  std::string isa;  ///< --isa scalar|sse2|avx2|neon|native ("" = default)
  std::string trace_path;
  std::string metrics_path;
  std::string analyze_path;
  std::string dot_path;
  std::string save_path;
  MachineSpec machine;
};

/// The full usage text (one string; the driver prints it on bad flags).
[[nodiscard]] const char* usage_text();

/// Parse argv into `a`. Returns false on unknown flags, missing values,
/// or malformed operands (the driver then prints usage and exits 2).
[[nodiscard]] bool parse(int argc, const char* const* argv, Args& a);

/// Outputs that observe an execution default to the simulator when
/// neither --simulate nor --run was requested (--trace, --metrics,
/// --faults, --degradation). Call before contradiction().
void apply_implications(Args& a);

/// Flag combinations that cannot mean what the user intended. Returns a
/// message for the first contradiction found, or nullptr when consistent.
/// Called after apply_implications().
[[nodiscard]] const char* contradiction(const Args& a);

/// bpd — the multi-tenant pipeline service daemon (src/service).
struct BpdArgs {
  int cores = 4;
  int max_tenants = 64;
  bool max_tenants_set = false;
  bool admission = true;       ///< --no-admission clears
  double core_budget = 0.9;
  bool core_budget_set = false;
  double degrade_budget = 1.25;
  bool degrade_budget_set = false;
  long evict_misses = 3;
  bool evict_misses_set = false;
  bool pace = true;            ///< --no-pace clears
  std::vector<std::string> submit_files;  ///< --submit FILE (repeatable)
  std::string spool_dir;                  ///< --spool DIR
  int spool_rounds = 1;
  bool spool_rounds_set = false;
  double spool_interval_seconds = 0.2;
  bool spool_interval_set = false;
  std::string status_path;       ///< --status FILE ('-' = stdout)
  std::string status_json_path;  ///< --status-json FILE
  double timeout_seconds = 120.0;
  std::string journal_path;      ///< --journal FILE (admission WAL)
  bool recover = false;          ///< --recover: replay the journal first
  int max_restarts = 3;          ///< --max-restarts N
  bool max_restarts_set = false;
  double restart_backoff_seconds = 0.05;  ///< --restart-backoff S
  bool restart_backoff_set = false;
  double stall_factor = 8.0;     ///< --stall-factor X (periods of silence)
  bool stall_factor_set = false;
  double stall_grace_seconds = 1.0;  ///< --stall-grace S
  bool stall_grace_set = false;
  double drain_timeout_seconds = 10.0;  ///< --drain-timeout S (on SIGTERM)
  bool drain_timeout_set = false;
  std::string isa;
  MachineSpec machine;
};

[[nodiscard]] const char* bpd_usage_text();

/// Parse argv into `a`. Returns false on unknown flags or malformed
/// values (the driver prints usage and exits 2).
[[nodiscard]] bool parse_bpd(int argc, const char* const* argv, BpdArgs& a);

/// Contradictory bpd flag combinations (e.g. --max-tenants with
/// --no-admission). Same contract as contradiction().
[[nodiscard]] const char* bpd_contradiction(const BpdArgs& a);

}  // namespace bpp::cli
