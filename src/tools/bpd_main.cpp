// bpd — the block-parallel pipeline service daemon.
//
// Admits JSON tenant submissions (files via --submit, or a --spool
// directory scanned in sorted order — the file-drop protocol) onto a
// shared worker-core pool, schedules every admitted pipeline instance
// concurrently via the runtime's machine/program split, and writes a
// per-tenant status report: admission verdicts, frame counts, deadline
// misses, shed frames, latency percentiles, minimum slack, and pool
// utilization.
//
//   bpd --cores 4 --submit cam0.json --submit cam1.json --status -
//   bpd --cores 8 --spool /tmp/bpd --spool-rounds 10 --status-json s.json
//
// Exit status: 0 when every admitted tenant completed without deadline
// misses; 3 when an admitted tenant missed deadlines, was evicted, or
// never finished; 1 on operational errors; 2 on bad flags.

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>

#include "core/error.h"
#include "kernels/simd/simd.h"
#include "service/daemon.h"
#include "tools/cli.h"

using namespace bpp;

namespace {

void write_report(const std::string& path, const char* what,
                  const std::string& text) {
  if (path == "-") {
    std::fputs(text.c_str(), stdout);
    return;
  }
  std::ofstream f(path);
  if (!f) throw Error(std::string("cannot open ") + what + " file '" + path + "'");
  f << text;
  if (!f)
    throw Error(std::string("failed writing ") + what + " file '" + path + "'");
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  cli::BpdArgs a;
  if (!cli::parse_bpd(argc, argv, a)) {
    std::fputs(cli::bpd_usage_text(), stdout);
    return 2;
  }
  if (const char* err = cli::bpd_contradiction(a)) {
    std::fprintf(stderr, "bpd: %s\n", err);
    return 2;
  }

  if (!a.isa.empty()) {
    const auto isa = simd::isa_from_name(a.isa);
    if (!isa || !simd::supported(*isa)) {
      std::fprintf(stderr, "bpd: unsupported ISA '%s'\n", a.isa.c_str());
      return 2;
    }
    simd::set_isa(*isa);
  }

  try {
    service::DaemonOptions opt;
    opt.cores = a.cores;
    opt.max_tenants = a.admission ? a.max_tenants : 0;
    opt.admission.enabled = a.admission;
    opt.admission.core_budget = a.core_budget;
    opt.admission.degrade_budget = a.degrade_budget;
    opt.evict_misses = a.pace ? a.evict_misses : 0;
    opt.pace = a.pace;
    opt.machine = a.machine;
    service::Daemon daemon(opt);
    std::printf("bpd: pool of %d cores (backend %s)\n", daemon.cores(),
                simd::ops().name);

    for (const std::string& f : a.submit_files) {
      const int id = daemon.submit_file(f);
      const service::TenantStatus s = daemon.tenant(id);
      std::printf("bpd: submit %s -> tenant %d '%s' %s (%s)\n", f.c_str(), id,
                  s.name.c_str(), service::state_name(s.state),
                  s.reason.c_str());
    }
    if (!a.spool_dir.empty()) {
      for (int round = 0; round < a.spool_rounds; ++round) {
        if (round > 0)
          std::this_thread::sleep_for(
              std::chrono::duration<double>(a.spool_interval_seconds));
        const int n = daemon.scan_spool(a.spool_dir);
        if (n > 0) std::printf("bpd: spool round %d: %d new\n", round, n);
      }
    }

    if (!daemon.wait_idle(a.timeout_seconds))
      std::fprintf(stderr, "bpd: timeout after %.1fs with tenants running\n",
                   a.timeout_seconds);

    if (!a.status_path.empty()) {
      std::ostringstream os;
      daemon.write_status(os);
      write_report(a.status_path, "status", os.str());
    }
    if (!a.status_json_path.empty())
      write_report(a.status_json_path, "status JSON", daemon.status_json());
    if (a.status_path.empty() && a.status_json_path.empty())
      daemon.write_status(std::cout);

    // Service-level objective for scripting: every admitted tenant
    // completed, zero deadline misses.
    int violations = 0;
    for (const service::TenantStatus& s : daemon.tenants()) {
      if (s.admission == service::Verdict::kRejected ||
          s.state == service::TenantState::kFailed)
        continue;  // never promised service
      if (s.state != service::TenantState::kCompleted || s.deadline_misses > 0)
        ++violations;
    }
    return violations > 0 ? 3 : 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "bpd: %s\n", e.what());
    return 1;
  }
}
