// bpd — the block-parallel pipeline service daemon.
//
// Admits JSON tenant submissions (files via --submit, or a --spool
// directory scanned in sorted order — the file-drop protocol) onto a
// shared worker-core pool, schedules every admitted pipeline instance
// concurrently via the runtime's machine/program split, supervises the
// tenants (crash containment, restart-with-backoff, quarantine — see
// DESIGN.md §8), and writes a per-tenant status report: admission
// verdicts, frame counts, deadline misses, shed frames, restarts,
// latency percentiles, minimum slack, and pool utilization.
//
//   bpd --cores 4 --submit cam0.json --submit cam1.json --status -
//   bpd --cores 8 --spool /tmp/bpd --spool-rounds 10 --status-json s.json
//   bpd --journal /tmp/bpd.journal --recover --status -
//
// With --journal every admission decision is logged durably; after a
// crash (or SIGKILL) `bpd --recover --journal FILE` restores the roster:
// terminal tenants (completed, quarantined, ...) reappear frozen,
// previously running ones are re-admitted and re-run.
//
// SIGTERM/SIGINT trigger a graceful drain: admission stops, every tenant
// retires its sources at the next frame boundary, and the daemon exits
// once the pool is idle (or --drain-timeout expires).
//
// Exit status: 0 when every admitted tenant completed (or drained)
// without deadline misses; 3 when an admitted tenant missed deadlines,
// was evicted, or was quarantined; 4 on timeout (tenants still running);
// 1 on operational errors; 2 on bad flags.

#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>

#include "core/error.h"
#include "kernels/simd/simd.h"
#include "service/daemon.h"
#include "tools/cli.h"

using namespace bpp;

namespace {

volatile std::sig_atomic_t g_signal = 0;

void on_signal(int sig) { g_signal = sig; }

void write_report(const std::string& path, const char* what,
                  const std::string& text) {
  if (path == "-") {
    std::fputs(text.c_str(), stdout);
    return;
  }
  std::ofstream f(path);
  if (!f) throw Error(std::string("cannot open ") + what + " file '" + path + "'");
  f << text;
  if (!f)
    throw Error(std::string("failed writing ") + what + " file '" + path + "'");
  std::printf("wrote %s\n", path.c_str());
}

void print_spool_diagnostics(service::Daemon& daemon) {
  for (const std::string& d : daemon.spool_diagnostics())
    std::fprintf(stderr, "bpd: %s\n", d.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  cli::BpdArgs a;
  if (!cli::parse_bpd(argc, argv, a)) {
    std::fputs(cli::bpd_usage_text(), stdout);
    return 2;
  }
  if (const char* err = cli::bpd_contradiction(a)) {
    std::fprintf(stderr, "bpd: %s\n", err);
    return 2;
  }

  if (!a.isa.empty()) {
    const auto isa = simd::isa_from_name(a.isa);
    if (!isa || !simd::supported(*isa)) {
      std::fprintf(stderr, "bpd: unsupported ISA '%s'\n", a.isa.c_str());
      return 2;
    }
    simd::set_isa(*isa);
  }

  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);

  try {
    service::DaemonOptions opt;
    opt.cores = a.cores;
    opt.max_tenants = a.admission ? a.max_tenants : 0;
    opt.admission.enabled = a.admission;
    opt.admission.core_budget = a.core_budget;
    opt.admission.degrade_budget = a.degrade_budget;
    opt.evict_misses = a.pace ? a.evict_misses : 0;
    opt.pace = a.pace;
    opt.machine = a.machine;
    opt.max_restarts = a.max_restarts;
    opt.restart_backoff_seconds = a.restart_backoff_seconds;
    opt.stall_factor = a.stall_factor;
    opt.stall_grace_seconds = a.stall_grace_seconds;
    opt.journal_path = a.journal_path;
    service::Daemon daemon(opt);
    std::printf("bpd: pool of %d cores (backend %s)\n", daemon.cores(),
                simd::ops().name);

    if (a.recover) {
      const int resumed = daemon.recover(a.journal_path);
      std::printf("bpd: recovered %zu tenants from '%s' (%d resumed)\n",
                  daemon.tenants().size(), a.journal_path.c_str(), resumed);
    }

    for (const std::string& f : a.submit_files) {
      const int id = daemon.submit_file(f);
      const service::TenantStatus s = daemon.tenant(id);
      std::printf("bpd: submit %s -> tenant %d '%s' %s (%s)\n", f.c_str(), id,
                  s.name.c_str(), service::state_name(s.state),
                  s.reason.c_str());
    }
    if (!a.spool_dir.empty() && g_signal == 0) {
      for (int round = 0; round < a.spool_rounds && g_signal == 0; ++round) {
        if (round > 0)
          std::this_thread::sleep_for(
              std::chrono::duration<double>(a.spool_interval_seconds));
        const int n = daemon.scan_spool(a.spool_dir);
        print_spool_diagnostics(daemon);
        if (n > 0) std::printf("bpd: spool round %d: %d new\n", round, n);
      }
    }

    // Wait for the pool to go idle in short slices so a SIGTERM/SIGINT is
    // honored promptly with a graceful drain.
    bool timed_out = false;
    bool drained_clean = true;
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration<double>(a.timeout_seconds);
    for (;;) {
      if (g_signal != 0) {
        std::fprintf(stderr,
                     "bpd: signal %d: draining tenants (timeout %.1fs)\n",
                     static_cast<int>(g_signal), a.drain_timeout_seconds);
        drained_clean = daemon.drain(a.drain_timeout_seconds);
        if (!drained_clean)
          std::fprintf(stderr, "bpd: drain timeout exceeded\n");
        break;
      }
      if (daemon.wait_idle(0.05)) break;
      if (std::chrono::steady_clock::now() >= deadline) {
        std::fprintf(stderr, "bpd: timeout after %.1fs with tenants running\n",
                     a.timeout_seconds);
        timed_out = true;
        break;
      }
    }

    if (!a.status_path.empty()) {
      std::ostringstream os;
      daemon.write_status(os);
      write_report(a.status_path, "status", os.str());
    }
    if (!a.status_json_path.empty())
      write_report(a.status_json_path, "status JSON", daemon.status_json());
    if (a.status_path.empty() && a.status_json_path.empty())
      daemon.write_status(std::cout);

    if (timed_out || !drained_clean) return 4;

    // Service-level objective for scripting: every admitted tenant
    // completed (or was gracefully drained), zero deadline misses.
    int violations = 0;
    for (const service::TenantStatus& s : daemon.tenants()) {
      if (s.admission == service::Verdict::kRejected ||
          s.state == service::TenantState::kFailed)
        continue;  // never promised service
      const bool ok = s.state == service::TenantState::kCompleted ||
                      s.state == service::TenantState::kDrained;
      if (!ok || s.deadline_misses > 0) ++violations;
    }
    return violations > 0 ? 3 : 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "bpd: %s\n", e.what());
    return 1;
  }
}
