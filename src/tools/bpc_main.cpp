// bpc — the block-parallel compiler driver.
//
// Builds one of the bundled applications, compiles it for a machine,
// prints the transformation report, and optionally verifies it on the
// timing simulator, executes it on host threads, exports the compiled
// graph as Graphviz, or dumps a firing trace. Flag parsing and the
// contradictory-flag rejection live in tools/cli.{h,cpp}.
//
//   bpc fig1 --frame 96x72 --rate 130 --simulate
//   bpc bayer --rate 450 --run
//   bpc fig1 --policy pad --dot app.dot
//   bpc histogram --machine 10e6,256 --simulate --firings 40
//   bpc pipeline --trace out.json --metrics -
//   bpc sobel --faults plan.json --fault-seed 7 --analyze -
//   bpc sobel --run --pace --shed --faults plan.json --degradation -

#include <cstdio>
#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <sstream>
#include <vector>
#include <fstream>
#include <iostream>
#include <string>

#include "apps/pipelines.h"
#include "serialize/serialize.h"
#include "compiler/pipeline.h"
#include "compiler/report.h"
#include "core/dot_export.h"
#include "fault/degradation.h"
#include "fault/injector.h"
#include "fault/plan.h"
#include "kernels/kernels.h"
#include "kernels/simd/simd.h"
#include "obs/analysis.h"
#include "obs/critical_path.h"
#include "obs/deadline.h"
#include "obs/frames.h"
#include "obs/recorder.h"
#include "predict/predict.h"
#include "predict/report.h"
#include "runtime/runtime.h"
#include "sim/simulator.h"
#include "tools/cli.h"

using namespace bpp;

namespace {

Graph build(const cli::Args& a) {
  if (!a.app.empty() && a.app[0] == '@') {
    std::ifstream f(a.app.substr(1));
    if (!f) throw GraphError("cannot open '" + a.app.substr(1) + "'");
    return read_graph_text(f);
  }
  if (a.app == "fig1") return apps::figure1_app(a.frame, a.rate, a.frames, a.bins);
  if (a.app == "bayer") return apps::bayer_app(a.frame, a.rate, a.frames);
  if (a.app == "histogram")
    return apps::histogram_app(a.frame, a.rate, a.frames, a.bins);
  if (a.app == "parallel-buffer")
    return apps::parallel_buffer_app(a.frame, a.rate, a.frames);
  if (a.app == "multi-conv")
    return apps::multi_convolution_app(a.frame, a.rate, a.frames);
  if (a.app == "pipeline") return apps::pipeline_app(a.frame, a.rate, a.frames);
  if (a.app == "sobel") return apps::sobel_app(a.frame, a.rate, a.frames, 100.0);
  if (a.app == "downsample")
    return apps::downsample_app(a.frame, a.rate, a.frames);
  if (a.app == "separable")
    return apps::separable_blur_app(a.frame, a.rate, a.frames);
  if (a.app == "motion") return apps::motion_app(a.frame, a.rate, a.frames);
  if (a.app == "feedback")
    return apps::feedback_app(a.frame, a.rate, a.frames, 0.3);
  if (a.app == "radio") return apps::radio_app(a.frame.w, a.rate, a.frames);
  if (a.app == "analytics")
    return apps::analytics_app(a.frame, a.rate, a.frames);
  throw GraphError("unknown application '" + a.app + "'");
}

// Write `emit(os)` to `path` ("-" = stdout), throwing bpp::Error on open or
// write failure so main's catch turns it into a non-zero exit.
template <typename Emit>
void write_output_file(const std::string& path, const char* what, Emit emit) {
  if (path == "-") {
    emit(std::cout);
    std::cout.flush();
    if (!std::cout)
      throw Error(std::string("failed writing ") + what + " to stdout");
    return;
  }
  std::ofstream f(path);
  if (!f)
    throw Error(std::string("cannot open ") + what + " file '" + path + "'");
  emit(f);
  f.flush();
  if (!f)
    throw Error(std::string("failed writing ") + what + " file '" + path +
                "'");
  std::printf("wrote %s\n", path.c_str());
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// The fastest rate the data-flow analysis assigned — the input frame rate
// for every bundled pipeline — stretched by the paced slowdown when the
// host run followed a slower schedule.
double declared_rate(const CompiledApp& app, double slowdown) {
  double rate = 0.0;
  for (const KernelAnalysis& ka : app.analysis.kernel)
    rate = std::max(rate, ka.rate_hz);
  if (slowdown > 0.0) rate /= slowdown;
  return rate;
}

// Build the degradation report for an execution. `ctrl` non-null on the
// host-run shedding path (live shed/miss accounting); otherwise verdicts
// are derived by replaying the anchored deadline schedule over the
// recorded trace (the simulator path — nothing sheds there, faulted
// frames can only come in late). `rec` may be null (run without
// observability): the report then has no critical-path attribution.
fault::DegradationReport make_degradation_report(
    const cli::Args& a, const CompiledApp& app, obs::Recorder* rec,
    double slowdown, const fault::DegradationController* ctrl) {
  const obs::Trace* trace = rec ? &rec->trace() : nullptr;
  obs::FrameReport frames;
  obs::CriticalPathReport cp;
  const obs::CriticalPathReport* cpp = nullptr;
  if (trace) {
    frames = obs::analyze_frames(*trace);
    cp = obs::analyze_critical_path(*trace, frames, app.graph);
    cpp = &cp;
  }
  if (ctrl) return fault::build_degradation_report(*ctrl, cpp, trace);
  const double rate = declared_rate(app, slowdown);
  obs::DeadlineMonitor mon({rate, a.deadline_slack});
  mon.observe(frames);
  return fault::build_degradation_report(mon.verdicts(), {}, rate,
                                         a.deadline_slack, cpp, trace);
}

// --degradation FILE: text, or JSON when the path ends in .json.
void write_degradation_output(const cli::Args& a,
                              const fault::DegradationReport& deg) {
  if (a.degradation_path.empty()) return;
  write_output_file(a.degradation_path, "degradation report",
                    [&](std::ostream& os) {
                      if (ends_with(a.degradation_path, ".json"))
                        os << fault::write_degradation_json(deg);
                      else
                        fault::write_degradation(deg, os);
                    });
}

// The real-time analysis report (--analyze): frame latency/period series,
// deadline verdicts against the graph's declared rate, critical-path
// attribution, the predicted-vs-measured firing-rate table, and — when the
// run had faults or shedding — the degradation section. Feeds the deadline
// monitor before the metrics dump so its counters appear there.
// `slowdown` > 1 stretches the declared rate to the schedule the paced
// host run actually followed (1 for the simulator).
void write_analysis(const cli::Args& a, const CompiledApp& app,
                    obs::Recorder& rec, double slowdown = 1.0,
                    const fault::DegradationReport* deg = nullptr) {
  if (a.analyze_path.empty()) return;
  if (!obs::kCompiledIn)
    throw Error(
        "--analyze requires the observability layer; rebuild with "
        "-DBPP_OBS=ON");
  const obs::Trace& trace = rec.trace();
  const obs::FrameReport frames = obs::analyze_frames(trace);

  const double rate = declared_rate(app, slowdown);
  obs::DeadlineOptions dopt;
  dopt.rate_hz = rate;
  dopt.slack_seconds = a.deadline_slack;
  obs::DeadlineMonitor mon(dopt, &rec.metrics());
  mon.observe(frames);

  const obs::CriticalPathReport cp =
      obs::analyze_critical_path(trace, frames, app.graph);
  const RateValidation rates = validate_rates(app, trace);

  write_output_file(a.analyze_path, "analysis", [&](std::ostream& os) {
    os << "frames tracked: " << frames.frames.size() << " complete, "
       << frames.incomplete << " incomplete\n";
    auto series = [&os](const char* what, const obs::SeriesSummary& s) {
      char buf[160];
      std::snprintf(buf, sizeof buf,
                    "  %s: mean %.3f ms  p50 %.3f ms  p95 %.3f ms  max "
                    "%.3f ms  (%ld samples)\n",
                    what, s.mean * 1e3, s.p50 * 1e3, s.p95 * 1e3, s.max * 1e3,
                    s.count);
      os << buf;
    };
    if (!frames.empty()) {
      series("latency", frames.latency);
      series("period ", frames.period);
    }
    char line[200];
    std::snprintf(line, sizeof line,
                  "deadlines: rate %.1f Hz, slack %.3f ms -> %ld frames, "
                  "%ld missed",
                  rate, a.deadline_slack * 1e3, mon.frames(), mon.misses());
    os << line;
    if (mon.misses() > 0) {
      std::snprintf(line, sizeof line, ", max lateness %.3f ms",
                    mon.max_lateness_seconds() * 1e3);
      os << line;
    }
    os << '\n';
    obs::write_critical_path(cp, trace, os);
    write_rate_validation(rates, os);
    if (deg) fault::write_degradation(*deg, os);
  });
}

// --predict-costs FILE: a Google-benchmark JSON dump (the kernel
// microbench suite's schema, e.g. BENCH_kernels.json) keyed "family/isa".
// Calibrates against the active kernel backend's ISA.
predict::CostTable load_cost_table(const std::string& path, double clock_hz) {
  std::ifstream f(path);
  if (!f) throw Error("cannot open cost table '" + path + "'");
  std::ostringstream text;
  text << f.rdbuf();
  return predict::parse_bench_costs(text.str(), simd::ops().name, clock_hz);
}

// Dump the recorder's trace and/or metrics as requested by --trace and
// --metrics. Called for whichever execution (sim or host run) owns the
// observability output.
void write_obs_outputs(const cli::Args& a, obs::Recorder& rec) {
  if (!a.trace_path.empty())
    write_output_file(a.trace_path, "trace", [&](std::ostream& os) {
      obs::write_chrome_trace(rec.trace(), os);
    });
  if (!a.metrics_path.empty())
    write_output_file(a.metrics_path, "metrics", [&](std::ostream& os) {
      if (ends_with(a.metrics_path, ".json"))
        rec.metrics().write_json(os);
      else
        rec.metrics().write_text(os);
    });
}

}  // namespace

int main(int argc, char** argv) {
  cli::Args a;
  if (!cli::parse(argc, argv, a)) {
    std::fputs(cli::usage_text(), stdout);
    return 2;
  }
  cli::apply_implications(a);
  if (const char* err = cli::contradiction(a)) {
    std::fprintf(stderr, "bpc: %s\n", err);
    return 2;
  }

  if (!a.isa.empty()) {
    const auto isa = simd::isa_from_name(a.isa);
    if (!isa) {
      std::fprintf(stderr, "bpc: unknown ISA '%s' (scalar|sse2|avx2|neon|native)\n",
                   a.isa.c_str());
      return 2;
    }
    if (!simd::supported(*isa)) {
      std::fprintf(stderr, "bpc: ISA '%s' is not supported on this CPU\n",
                   a.isa.c_str());
      return 2;
    }
    simd::set_isa(*isa);
  }
  std::printf("kernel backend: %s\n", simd::ops().name);

  try {
    CompileOptions opt;
    opt.machine = a.machine;
    opt.align_policy = a.policy;
    opt.reuse_opt = a.reuse;
    opt.multiplex = a.multiplex;
    Graph source = build(a);
    if (!a.save_path.empty()) {
      std::ofstream f(a.save_path);
      write_graph_text(source, f);
      std::printf("wrote %s\n", a.save_path.c_str());
    }
    CompiledApp app = compile(std::move(source), opt);
    write_report(app, std::cout);

    std::optional<predict::Prediction> pred;
    if (a.do_predict) {
      predict::PredictOptions popt;
      if (!a.predict_costs_path.empty()) {
        popt.costs = load_cost_table(a.predict_costs_path, a.machine.clock_hz);
        std::printf("cost table: %zu kernel families (%s)\n",
                    popt.costs.size(), simd::ops().name);
      }
      pred = predict::predict(app, popt);
      predict::write_prediction(*pred, std::cout);
    }
    // Execution-measured counterparts for the comparison table; NaN marks
    // a quantity the requested executions cannot supply.
    constexpr double kAbsent = std::numeric_limits<double>::quiet_NaN();
    double sim_period = kAbsent, sim_util = kAbsent, run_period = kAbsent;

    fault::FaultPlan plan;
    std::optional<fault::Injector> inj;
    if (!a.faults_path.empty()) {
      plan = fault::load_plan(a.faults_path);
      inj.emplace(plan, a.fault_seed_set ? a.fault_seed : plan.seed);
      write_fault_binding(plan, app.graph, std::cout);
    }

    if (!a.dot_path.empty()) {
      std::ofstream f(a.dot_path);
      write_dot(app.graph, f);
      std::printf("wrote %s\n", a.dot_path.c_str());
    }

    // When both executions run, the simulated one owns the observability
    // outputs — except the degradation report, which the shedding host run
    // owns (the simulator cannot shed).
    const bool sim_owns_degradation = !(a.do_run && a.shed);

    if (a.do_sim) {
      Graph g = app.graph.clone();
      obs::Recorder rec;
      SimOptions sopt;
      sopt.machine = opt.machine;
      sopt.trace_limit = a.firings;
      sopt.recorder = &rec;
      sopt.injector = inj ? &*inj : nullptr;
      const SimResult r = simulate(g, app.mapping, sopt);
      std::string extra;
      if (r.resource_exception_count > 0)
        extra = " resource-exceptions=" + std::to_string(r.resource_exception_count);
      if (r.faults_injected > 0)
        extra += " faults=" + std::to_string(r.faults_injected);
      std::printf(
          "simulate: completed=%s real-time=%s max-lag=%.2fus "
          "avg-util=%.1f%% firings=%ld%s\n",
          r.completed ? "yes" : "no", r.realtime_met ? "MET" : "VIOLATED",
          r.max_input_lag_seconds * 1e6,
          100.0 * r.avg_utilization(opt.machine), r.total_firings,
          extra.c_str());
      if (pred) {
        sim_period = r.steady_frame_period();
        sim_util = r.avg_utilization(opt.machine);
      }
      if (obs::kCompiledIn)
        write_utilization(obs::analyze_utilization(rec.trace()), std::cout);
      if (a.show_kernels) {
        std::vector<std::pair<double, KernelId>> busiest;
        for (KernelId k = 0; k < g.kernel_count(); ++k)
          busiest.emplace_back(-r.kernel_activity[static_cast<size_t>(k)].second,
                               k);
        std::sort(busiest.begin(), busiest.end());
        std::printf("busiest kernels (cycles, firings):\n");
        for (size_t i = 0; i < std::min<size_t>(10, busiest.size()); ++i) {
          const KernelId k = busiest[i].second;
          if (r.kernel_activity[static_cast<size_t>(k)].second <= 0) break;
          std::printf("  %-28s %12.0f %10ld\n", g.kernel(k).name().c_str(),
                      r.kernel_activity[static_cast<size_t>(k)].second,
                      r.kernel_activity[static_cast<size_t>(k)].first);
        }
      }
      for (const FiringRecord& f : r.trace)
        std::printf("  t=%9.3fus core %2d  %-24s %s (%.2fus)\n",
                    f.start_seconds * 1e6, f.core,
                    g.kernel(f.kernel).name().c_str(),
                    f.method >= 0
                        ? g.kernel(f.kernel).methods()[static_cast<size_t>(f.method)].name.c_str()
                        : "(forward)",
                    f.duration_seconds * 1e6);
      fault::DegradationReport deg;
      bool have_deg = false;
      if (obs::kCompiledIn && sim_owns_degradation &&
          (inj || !a.degradation_path.empty())) {
        deg = make_degradation_report(a, app, &rec, 1.0, nullptr);
        have_deg = true;
      }
      write_analysis(a, app, rec, 1.0, have_deg ? &deg : nullptr);
      write_obs_outputs(a, rec);
      if (have_deg) write_degradation_output(a, deg);
    }

    if (a.do_run) {
      obs::Recorder rec;
      // The simulated run owns --trace/--metrics/--analyze when both are
      // requested.
      const bool observe =
          !a.do_sim && (!a.trace_path.empty() || !a.metrics_path.empty() ||
                        !a.analyze_path.empty() || !a.degradation_path.empty());
      // The comparison table's measured column needs the host run's frame
      // cadence, which only the recorder sees.
      const bool observe_for_predict =
          pred.has_value() && obs::kCompiledIn && !observe;
      const double slowdown = a.pace ? a.pace_slowdown : 1.0;
      RuntimeOptions ropt;
      ropt.pace_inputs = a.pace;
      ropt.pace_slowdown = a.pace_slowdown;
      if (observe || observe_for_predict) ropt.recorder = &rec;
      ropt.injector = inj ? &*inj : nullptr;
      std::optional<fault::DegradationController> ctrl;
      if (a.shed) {
        fault::DegradationPolicy pol;
        pol.shed = true;
        pol.rate_hz = declared_rate(app, slowdown);
        pol.slack_seconds = a.deadline_slack;
        // No metrics registry here: the analysis monitor feeds the
        // deadline counters when --analyze runs, and the runtime itself
        // records runtime.frames_shed.
        ctrl.emplace(pol);
        ropt.degradation = &*ctrl;
      }
      const RuntimeResult r = run_threaded(app.graph, app.mapping, ropt);
      std::string extra;
      if (r.faults_injected > 0)
        extra = " faults=" + std::to_string(r.faults_injected);
      if (a.shed) extra += " shed=" + std::to_string(r.frames_shed);
      std::printf("run: completed=%s wall=%.1fms firings=%ld%s\n",
                  r.completed ? "yes" : "no", r.wall_seconds * 1e3,
                  r.total_firings, extra.c_str());
      if (pred && (observe || observe_for_predict)) {
        const obs::FrameReport frames = obs::analyze_frames(rec.trace());
        if (frames.period.count > 0) run_period = frames.period.mean;
      }
      fault::DegradationReport deg;
      bool have_deg = false;
      if (ctrl) {
        deg = make_degradation_report(a, app, observe ? &rec : nullptr,
                                      slowdown, &*ctrl);
        have_deg = true;
      } else if (observe && !a.do_sim &&
                 (inj || !a.degradation_path.empty())) {
        deg = make_degradation_report(a, app, &rec, slowdown, nullptr);
        have_deg = true;
      }
      if (observe) {
        if (obs::kCompiledIn)
          write_utilization(obs::analyze_utilization(rec.trace()), std::cout);
        write_analysis(a, app, rec, slowdown, have_deg ? &deg : nullptr);
        write_obs_outputs(a, rec);
      }
      if (have_deg) write_degradation_output(a, deg);
    }

    if (pred && (!std::isnan(sim_period) || !std::isnan(run_period))) {
      std::vector<ComparisonRow> rows;
      rows.push_back({"steady period (us)", pred->steady_period_seconds * 1e6,
                      sim_period * 1e6, run_period * 1e6, 2});
      rows.push_back({"avg core utilization (%)",
                      100.0 * pred->avg_utilization, 100.0 * sim_util,
                      kAbsent, 1});
      write_comparison(rows, std::cout);
    }
    if (a.predict_check_set) {
      if (std::isnan(sim_period) || sim_period <= 0.0)
        throw Error("--predict-check: the simulated run produced no steady "
                    "frame period to compare against");
      const double rel =
          std::fabs(sim_period - pred->steady_period_seconds) / sim_period;
      std::printf("prediction check: |sim - predicted| / sim = %.4g "
                  "(tolerance %g)\n", rel, a.predict_check);
      if (rel > a.predict_check) {
        std::fprintf(stderr,
                     "bpc: prediction check FAILED: predicted %.6g us vs "
                     "simulated %.6g us deviates %.3g > %.3g\n",
                     pred->steady_period_seconds * 1e6, sim_period * 1e6, rel,
                     a.predict_check);
        return 1;
      }
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "bpc: %s\n", e.what());
    return 1;
  }
  return 0;
}
