// bpc — the block-parallel compiler driver.
//
// Builds one of the bundled applications, compiles it for a machine,
// prints the transformation report, and optionally verifies it on the
// timing simulator, executes it on host threads, exports the compiled
// graph as Graphviz, or dumps a firing trace.
//
//   bpc fig1 --frame 96x72 --rate 130 --simulate
//   bpc bayer --rate 450 --run
//   bpc fig1 --policy pad --dot app.dot
//   bpc histogram --machine 10e6,256 --simulate --firings 40
//   bpc pipeline --trace out.json --metrics -

#include <cstdio>
#include <algorithm>
#include <cstring>
#include <vector>
#include <fstream>
#include <iostream>
#include <string>

#include "apps/pipelines.h"
#include "serialize/serialize.h"
#include "compiler/pipeline.h"
#include "compiler/report.h"
#include "core/dot_export.h"
#include "kernels/kernels.h"
#include "obs/analysis.h"
#include "obs/critical_path.h"
#include "obs/deadline.h"
#include "obs/frames.h"
#include "obs/recorder.h"
#include "runtime/runtime.h"
#include "sim/simulator.h"

using namespace bpp;

namespace {

struct Args {
  std::string app;
  Size2 frame{48, 36};
  double rate = 180.0;
  int frames = 2;
  int bins = 32;
  AlignPolicy policy = AlignPolicy::Trim;
  bool reuse = false;
  bool multiplex = true;
  bool do_sim = false;
  bool do_run = false;
  bool show_kernels = false;
  long firings = 0;
  bool firings_set = false;  ///< --firings given explicitly
  bool pace = false;
  double pace_slowdown = 1.0;
  double deadline_slack = 0.0;
  bool deadline_slack_set = false;
  std::string trace_path;
  std::string metrics_path;
  std::string analyze_path;
  std::string dot_path;
  std::string save_path;
  MachineSpec machine;
};

void usage() {
  std::printf(
      "usage: bpc <app>|@file.bpg [options]\n"
      "apps (or @file to load a bpp-graph text file):\n"
      "  fig1 | bayer | histogram | parallel-buffer | multi-conv |\n"
      "  pipeline | sobel | downsample | separable | motion | feedback |\n"
      "  radio | analytics\n"
      "options:\n"
      "  --frame WxH        input frame extent (default 48x36)\n"
      "  --rate HZ          input frame rate (default 180)\n"
      "  --frames N         frames per run (default 2)\n"
      "  --bins N           histogram bins (default 32)\n"
      "  --policy P         alignment: trim | pad | mirror (default trim)\n"
      "  --reuse            Fig. 9 reuse-optimized striping\n"
      "  --no-multiplex     keep the 1:1 kernel-to-core mapping\n"
      "  --machine C,M      PE clock_hz and mem_words (default 20e6,512)\n"
      "  --save FILE        write the source graph as bpp-graph text\n"
      "  --dot FILE         write the compiled graph as Graphviz\n"
      "  --simulate         verify real time on the timing simulator\n"
      "  --firings N        with --simulate: print the first N firings\n"
      "  --kernels          with --simulate: busiest kernels by cycles\n"
      "  --run              execute functionally on host threads\n"
      "  --pace             with --run: release inputs on the wall-clock\n"
      "                     schedule instead of as fast as possible\n"
      "  --slowdown X       with --pace: stretch the release schedule by X\n"
      "  --trace FILE       write a Chrome trace-event JSON timeline\n"
      "                     (simulated run if --simulate, else host run;\n"
      "                     implies --simulate when neither is given)\n"
      "  --metrics FILE     write the metrics registry ('-' = stdout;\n"
      "                     *.json = JSON, otherwise text)\n"
      "  --analyze FILE     write the real-time analysis report ('-' =\n"
      "                     stdout): per-frame latency, deadline verdicts,\n"
      "                     critical-path attribution, predicted-vs-\n"
      "                     measured firing rates; needs --simulate/--run\n"
      "  --deadline-slack S with --analyze: per-frame deadline slack in\n"
      "                     seconds (default 0)\n");
}

bool parse(int argc, char** argv, Args& a) {
  if (argc < 2) return false;
  a.app = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (flag == "--frame") {
      const char* v = value();
      if (!v || std::sscanf(v, "%dx%d", &a.frame.w, &a.frame.h) != 2) return false;
    } else if (flag == "--rate") {
      const char* v = value();
      if (!v) return false;
      a.rate = std::atof(v);
    } else if (flag == "--frames") {
      const char* v = value();
      if (!v) return false;
      a.frames = std::atoi(v);
    } else if (flag == "--bins") {
      const char* v = value();
      if (!v) return false;
      a.bins = std::atoi(v);
    } else if (flag == "--policy") {
      const char* v = value();
      if (!v) return false;
      if (!std::strcmp(v, "trim")) a.policy = AlignPolicy::Trim;
      else if (!std::strcmp(v, "pad")) a.policy = AlignPolicy::Pad;
      else if (!std::strcmp(v, "mirror")) a.policy = AlignPolicy::MirrorPad;
      else return false;
    } else if (flag == "--reuse") {
      a.reuse = true;
    } else if (flag == "--no-multiplex") {
      a.multiplex = false;
    } else if (flag == "--machine") {
      const char* v = value();
      double clock = 0;
      long mem = 0;
      if (!v || std::sscanf(v, "%lf,%ld", &clock, &mem) != 2) return false;
      a.machine.clock_hz = clock;
      a.machine.mem_words = mem;
    } else if (flag == "--save") {
      const char* v = value();
      if (!v) return false;
      a.save_path = v;
    } else if (flag == "--dot") {
      const char* v = value();
      if (!v) return false;
      a.dot_path = v;
    } else if (flag == "--simulate") {
      a.do_sim = true;
    } else if (flag == "--firings") {
      const char* v = value();
      if (!v) return false;
      a.firings = std::atol(v);
      a.firings_set = true;
    } else if (flag == "--pace") {
      a.pace = true;
    } else if (flag == "--slowdown") {
      const char* v = value();
      if (!v) return false;
      a.pace_slowdown = std::atof(v);
    } else if (flag == "--deadline-slack") {
      const char* v = value();
      if (!v) return false;
      a.deadline_slack = std::atof(v);
      a.deadline_slack_set = true;
    } else if (flag == "--analyze") {
      const char* v = value();
      if (!v) return false;
      a.analyze_path = v;
    } else if (flag == "--trace") {
      const char* v = value();
      if (!v) return false;
      a.trace_path = v;
    } else if (flag == "--metrics") {
      const char* v = value();
      if (!v) return false;
      a.metrics_path = v;
    } else if (flag == "--kernels") {
      a.show_kernels = true;
    } else if (flag == "--run") {
      a.do_run = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
  }
  return true;
}

Graph build(const Args& a) {
  if (!a.app.empty() && a.app[0] == '@') {
    std::ifstream f(a.app.substr(1));
    if (!f) throw GraphError("cannot open '" + a.app.substr(1) + "'");
    return read_graph_text(f);
  }
  if (a.app == "fig1") return apps::figure1_app(a.frame, a.rate, a.frames, a.bins);
  if (a.app == "bayer") return apps::bayer_app(a.frame, a.rate, a.frames);
  if (a.app == "histogram")
    return apps::histogram_app(a.frame, a.rate, a.frames, a.bins);
  if (a.app == "parallel-buffer")
    return apps::parallel_buffer_app(a.frame, a.rate, a.frames);
  if (a.app == "multi-conv")
    return apps::multi_convolution_app(a.frame, a.rate, a.frames);
  if (a.app == "pipeline") return apps::pipeline_app(a.frame, a.rate, a.frames);
  if (a.app == "sobel") return apps::sobel_app(a.frame, a.rate, a.frames, 100.0);
  if (a.app == "downsample")
    return apps::downsample_app(a.frame, a.rate, a.frames);
  if (a.app == "separable")
    return apps::separable_blur_app(a.frame, a.rate, a.frames);
  if (a.app == "motion") return apps::motion_app(a.frame, a.rate, a.frames);
  if (a.app == "feedback")
    return apps::feedback_app(a.frame, a.rate, a.frames, 0.3);
  if (a.app == "radio") return apps::radio_app(a.frame.w, a.rate, a.frames);
  if (a.app == "analytics")
    return apps::analytics_app(a.frame, a.rate, a.frames);
  throw GraphError("unknown application '" + a.app + "'");
}

// Write `emit(os)` to `path` ("-" = stdout), throwing bpp::Error on open or
// write failure so main's catch turns it into a non-zero exit.
template <typename Emit>
void write_output_file(const std::string& path, const char* what, Emit emit) {
  if (path == "-") {
    emit(std::cout);
    std::cout.flush();
    if (!std::cout)
      throw Error(std::string("failed writing ") + what + " to stdout");
    return;
  }
  std::ofstream f(path);
  if (!f)
    throw Error(std::string("cannot open ") + what + " file '" + path + "'");
  emit(f);
  f.flush();
  if (!f)
    throw Error(std::string("failed writing ") + what + " file '" + path +
                "'");
  std::printf("wrote %s\n", path.c_str());
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// Flag combinations that cannot mean what the user intended. Returns a
// message for the first contradiction found, or nullptr when consistent.
// Called after --trace/--metrics have implied --simulate.
const char* contradiction(const Args& a) {
  if (!a.analyze_path.empty() && !a.do_sim && !a.do_run)
    return "--analyze needs an execution to observe; add --simulate or --run";
  if (a.firings_set && a.firings == 0 && !a.trace_path.empty())
    return "--firings 0 contradicts --trace: nothing would be recorded";
  if (a.firings_set && a.firings > 0 && !a.do_sim)
    return "--firings applies to the simulator; add --simulate";
  if (a.pace && !a.do_run)
    return "--pace applies to the host runtime; add --run";
  if (a.pace_slowdown != 1.0 && !a.pace)
    return "--slowdown requires --pace";
  if (a.deadline_slack_set && a.analyze_path.empty())
    return "--deadline-slack requires --analyze";
  return nullptr;
}

// The real-time analysis report (--analyze): frame latency/period series,
// deadline verdicts against the graph's declared rate, critical-path
// attribution, and the predicted-vs-measured firing-rate table. Feeds the
// deadline monitor before the metrics dump so its counters appear there.
// `slowdown` > 1 stretches the declared rate to the schedule the paced
// host run actually followed (1 for the simulator).
void write_analysis(const Args& a, const CompiledApp& app, obs::Recorder& rec,
                    double slowdown = 1.0) {
  if (a.analyze_path.empty()) return;
  if (!obs::kCompiledIn)
    throw Error(
        "--analyze requires the observability layer; rebuild with "
        "-DBPP_OBS=ON");
  const obs::Trace& trace = rec.trace();
  const obs::FrameReport frames = obs::analyze_frames(trace);

  // Declared rate: the fastest rate the data-flow analysis assigned — the
  // input frame rate for every bundled pipeline.
  double rate = 0.0;
  for (const KernelAnalysis& ka : app.analysis.kernel)
    rate = std::max(rate, ka.rate_hz);
  if (slowdown > 0.0) rate /= slowdown;
  obs::DeadlineOptions dopt;
  dopt.rate_hz = rate;
  dopt.slack_seconds = a.deadline_slack;
  obs::DeadlineMonitor mon(dopt, &rec.metrics());
  mon.observe(frames);

  const obs::CriticalPathReport cp =
      obs::analyze_critical_path(trace, frames, app.graph);
  const RateValidation rates = validate_rates(app, trace);

  write_output_file(a.analyze_path, "analysis", [&](std::ostream& os) {
    os << "frames tracked: " << frames.frames.size() << " complete, "
       << frames.incomplete << " incomplete\n";
    auto series = [&os](const char* what, const obs::SeriesSummary& s) {
      char buf[160];
      std::snprintf(buf, sizeof buf,
                    "  %s: mean %.3f ms  p50 %.3f ms  p95 %.3f ms  max "
                    "%.3f ms  (%ld samples)\n",
                    what, s.mean * 1e3, s.p50 * 1e3, s.p95 * 1e3, s.max * 1e3,
                    s.count);
      os << buf;
    };
    if (!frames.empty()) {
      series("latency", frames.latency);
      series("period ", frames.period);
    }
    char line[200];
    std::snprintf(line, sizeof line,
                  "deadlines: rate %.1f Hz, slack %.3f ms -> %ld frames, "
                  "%ld missed",
                  rate, a.deadline_slack * 1e3, mon.frames(), mon.misses());
    os << line;
    if (mon.misses() > 0) {
      std::snprintf(line, sizeof line, ", max lateness %.3f ms",
                    mon.max_lateness_seconds() * 1e3);
      os << line;
    }
    os << '\n';
    obs::write_critical_path(cp, trace, os);
    write_rate_validation(rates, os);
  });
}

// Dump the recorder's trace and/or metrics as requested by --trace and
// --metrics. Called for whichever execution (sim or host run) owns the
// observability output.
void write_obs_outputs(const Args& a, obs::Recorder& rec) {
  if (!a.trace_path.empty())
    write_output_file(a.trace_path, "trace", [&](std::ostream& os) {
      obs::write_chrome_trace(rec.trace(), os);
    });
  if (!a.metrics_path.empty())
    write_output_file(a.metrics_path, "metrics", [&](std::ostream& os) {
      if (ends_with(a.metrics_path, ".json"))
        rec.metrics().write_json(os);
      else
        rec.metrics().write_text(os);
    });
}

}  // namespace

int main(int argc, char** argv) {
  Args a;
  if (!parse(argc, argv, a)) {
    usage();
    return 2;
  }
  // --trace/--metrics need an execution to observe; default to the
  // simulator when neither --simulate nor --run was requested.
  if ((!a.trace_path.empty() || !a.metrics_path.empty()) && !a.do_sim &&
      !a.do_run)
    a.do_sim = true;
  if (const char* err = contradiction(a)) {
    std::fprintf(stderr, "bpc: %s\n", err);
    return 2;
  }

  try {
    CompileOptions opt;
    opt.machine = a.machine;
    opt.align_policy = a.policy;
    opt.reuse_opt = a.reuse;
    opt.multiplex = a.multiplex;
    Graph source = build(a);
    if (!a.save_path.empty()) {
      std::ofstream f(a.save_path);
      write_graph_text(source, f);
      std::printf("wrote %s\n", a.save_path.c_str());
    }
    CompiledApp app = compile(std::move(source), opt);
    write_report(app, std::cout);

    if (!a.dot_path.empty()) {
      std::ofstream f(a.dot_path);
      write_dot(app.graph, f);
      std::printf("wrote %s\n", a.dot_path.c_str());
    }

    if (a.do_sim) {
      Graph g = app.graph.clone();
      obs::Recorder rec;
      SimOptions sopt;
      sopt.machine = opt.machine;
      sopt.trace_limit = a.firings;
      sopt.recorder = &rec;
      const SimResult r = simulate(g, app.mapping, sopt);
      std::string extra;
      if (r.resource_exception_count > 0)
        extra = " resource-exceptions=" + std::to_string(r.resource_exception_count);
      std::printf(
          "simulate: completed=%s real-time=%s max-lag=%.2fus "
          "avg-util=%.1f%% firings=%ld%s\n",
          r.completed ? "yes" : "no", r.realtime_met ? "MET" : "VIOLATED",
          r.max_input_lag_seconds * 1e6,
          100.0 * r.avg_utilization(opt.machine), r.total_firings,
          extra.c_str());
      if (obs::kCompiledIn)
        write_utilization(obs::analyze_utilization(rec.trace()), std::cout);
      if (a.show_kernels) {
        std::vector<std::pair<double, KernelId>> busiest;
        for (KernelId k = 0; k < g.kernel_count(); ++k)
          busiest.emplace_back(-r.kernel_activity[static_cast<size_t>(k)].second,
                               k);
        std::sort(busiest.begin(), busiest.end());
        std::printf("busiest kernels (cycles, firings):\n");
        for (size_t i = 0; i < std::min<size_t>(10, busiest.size()); ++i) {
          const KernelId k = busiest[i].second;
          if (r.kernel_activity[static_cast<size_t>(k)].second <= 0) break;
          std::printf("  %-28s %12.0f %10ld\n", g.kernel(k).name().c_str(),
                      r.kernel_activity[static_cast<size_t>(k)].second,
                      r.kernel_activity[static_cast<size_t>(k)].first);
        }
      }
      for (const FiringRecord& f : r.trace)
        std::printf("  t=%9.3fus core %2d  %-24s %s (%.2fus)\n",
                    f.start_seconds * 1e6, f.core,
                    g.kernel(f.kernel).name().c_str(),
                    f.method >= 0
                        ? g.kernel(f.kernel).methods()[static_cast<size_t>(f.method)].name.c_str()
                        : "(forward)",
                    f.duration_seconds * 1e6);
      write_analysis(a, app, rec);
      write_obs_outputs(a, rec);
    }

    if (a.do_run) {
      obs::Recorder rec;
      // The simulated run owns --trace/--metrics/--analyze when both are
      // requested.
      const bool observe =
          !a.do_sim && (!a.trace_path.empty() || !a.metrics_path.empty() ||
                        !a.analyze_path.empty());
      RuntimeOptions ropt;
      ropt.pace_inputs = a.pace;
      ropt.pace_slowdown = a.pace_slowdown;
      if (observe) ropt.recorder = &rec;
      const RuntimeResult r = run_threaded(app.graph, app.mapping, ropt);
      std::printf("run: completed=%s wall=%.1fms firings=%ld\n",
                  r.completed ? "yes" : "no", r.wall_seconds * 1e3,
                  r.total_firings);
      if (observe) {
        if (obs::kCompiledIn)
          write_utilization(obs::analyze_utilization(rec.trace()), std::cout);
        write_analysis(a, app, rec, a.pace ? a.pace_slowdown : 1.0);
        write_obs_outputs(a, rec);
      }
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "bpc: %s\n", e.what());
    return 1;
  }
  return 0;
}
