// bpp_fuzz — seeded end-to-end fuzz harness (the CI fuzz matrix entry
// point). One invocation = one seed: build a random kernel chain, compile
// it, then
//
//   1. simulate it twice and require bit-identical traces and degradation
//      reports (replay determinism — with --faulted this exercises the
//      fault injector's counter-based hashing),
//   2. execute it on host threads (fault-injected when --faulted) and
//      require bit-exact output against the composed scalar reference —
//      faults perturb timing only, never values.
//
// On failure it prints the exact repro command and exits 1; --trace FILE
// saves the host run's Chrome trace so CI can upload it as an artifact.
//
//   bpp_fuzz --seed 3
//   bpp_fuzz --seed 3 --faulted --trace fuzz-3.json
//   bpp_fuzz --seed 3 --isa avx2   # pin the kernel backend (A/B vs scalar)
//   bpp_fuzz --seed 3 --predict    # + differential prediction check:
//                                  # predicted steady period must track an
//                                  # unfaulted simulation within 0.5%
//   bpp_fuzz --seed 3 --recovery   # supervision/journal scenario instead:
//                                  # a crashing tenant (kThrow or kWedge by
//                                  # seed) must quarantine without touching
//                                  # its co-tenant, a drained tenant must
//                                  # resume via journal recovery

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "apps/pipelines.h"
#include "compiler/pipeline.h"
#include "fault/degradation.h"
#include "fault/injector.h"
#include "fault/plan.h"
#include "kernels/kernels.h"
#include "kernels/simd/simd.h"
#include "obs/deadline.h"
#include "obs/frames.h"
#include "obs/recorder.h"
#include "predict/predict.h"
#include "ref/reference.h"
#include "runtime/runtime.h"
#include "service/daemon.h"
#include "service/journal.h"
#include "sim/simulator.h"

using namespace bpp;

namespace {

std::uint64_t splitmix(std::uint64_t& s) {
  s += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = s;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// One randomly chosen stage (mirrors tests/test_random_pipelines.cpp: how
// it extends the graph and how it transforms the reference frame).
struct Stage {
  enum Kind { Conv3, Median3, Sobel, Scale, Threshold, Down2 } kind;

  [[nodiscard]] int shrink() const {
    switch (kind) {
      case Conv3:
      case Median3:
      case Sobel:
        return 2;
      default:
        return 0;
    }
  }

  Kernel* append(Graph& g, int idx) const {
    const std::string n = "stage" + std::to_string(idx);
    switch (kind) {
      case Conv3: {
        auto& k = g.add<ConvolutionKernel>(n, 3, 3);
        g.connect(g.add<ConstSource>(n + "_c", apps::blur_coeff3x3()), "out", k,
                  "coeff");
        return &k;
      }
      case Median3:
        return &g.add<MedianKernel>(n, 3, 3);
      case Sobel:
        return &g.add<SobelKernel>(n);
      case Scale:
        return &g.add_kernel(make_scale(n, 0.5, 8.0));
      case Threshold:
        return &g.add_kernel(make_threshold(n, 96.0));
      case Down2:
        return &g.add<DownsampleKernel>(n, 2);
    }
    return nullptr;
  }

  [[nodiscard]] Tile reference(const Tile& in) const {
    switch (kind) {
      case Conv3:
        return ref::convolve(in, apps::blur_coeff3x3());
      case Median3:
        return ref::median(in, 3, 3);
      case Sobel:
        return ref::sobel(in);
      case Scale: {
        Tile out(in.size());
        for (int y = 0; y < in.height(); ++y)
          for (int x = 0; x < in.width(); ++x)
            out.at(x, y) = 0.5 * in.at(x, y) + 8.0;
        return out;
      }
      case Threshold: {
        Tile out(in.size());
        for (int y = 0; y < in.height(); ++y)
          for (int x = 0; x < in.width(); ++x)
            out.at(x, y) = in.at(x, y) > 96.0 ? 1.0 : 0.0;
        return out;
      }
      case Down2:
        return ref::downsample(in, 2);
    }
    return in;
  }
};

std::vector<Stage> random_stages(std::uint64_t& rng, Size2& frame_left) {
  std::vector<Stage> stages;
  const int n = 1 + static_cast<int>(splitmix(rng) % 4);
  for (int i = 0; i < n; ++i) {
    const auto kind = static_cast<Stage::Kind>(splitmix(rng) % 6);
    Stage s{kind};
    Size2 next = {frame_left.w - s.shrink(), frame_left.h - s.shrink()};
    if (kind == Stage::Down2) next = {frame_left.w / 2, frame_left.h / 2};
    if (next.w < 8 || next.h < 8) break;
    if (kind == Stage::Down2 && (frame_left.w % 2 || frame_left.h % 2))
      continue;
    stages.push_back(s);
    frame_left = next;
  }
  if (stages.empty()) stages.push_back(Stage{Stage::Scale});
  return stages;
}

// An aggressive-but-bounded plan: every fault class is on, so any
// value-corrupting or determinism-breaking path in the injector or the
// engines gets hammered by the CI matrix.
fault::FaultPlan fuzz_plan(std::uint64_t seed) {
  fault::FaultPlan plan;
  plan.seed = seed;
  fault::KernelRule kr;
  kr.match = "*";
  kr.jitter = 0.3;
  kr.overrun_prob = 0.1;
  kr.overrun_factor = 4.0;
  kr.stall_prob = 0.02;
  kr.stall_seconds = 1e-4;
  plan.kernels.push_back(kr);
  fault::CoreRule cr;
  cr.core = 1;
  cr.throttle = 1.5;
  plan.cores.push_back(cr);
  fault::DeliveryRule dr;
  dr.match = "stage*";
  dr.prob = 0.05;
  dr.delay_seconds = 5e-5;
  plan.delivery.push_back(dr);
  return plan;
}

struct SimFingerprint {
  std::string trace_json;
  std::string degradation_json;
  long firings = 0;
  long faults = 0;
};

SimFingerprint simulate_once(const CompiledApp& app,
                             const fault::Injector* inj, double rate) {
  Graph g = app.graph.clone();
  obs::Recorder rec;
  SimOptions sopt;
  sopt.recorder = &rec;
  sopt.injector = inj;
  const SimResult r = simulate(g, app.mapping, sopt);
  SimFingerprint fp;
  fp.firings = r.total_firings;
  fp.faults = r.faults_injected;
  std::ostringstream ts;
  obs::write_chrome_trace(rec.trace(), ts);
  fp.trace_json = ts.str();
  const obs::FrameReport frames = obs::analyze_frames(rec.trace());
  obs::DeadlineMonitor mon({rate, 0.0});
  mon.observe(frames);
  fp.degradation_json = fault::write_degradation_json(
      fault::build_degradation_report(mon.verdicts(), {}, rate, 0.0));
  return fp;
}

int usage() {
  std::fprintf(stderr,
               "usage: bpp_fuzz --seed N [--faulted] [--predict] [--recovery] "
               "[--isa NAME] [--trace FILE]\n");
  return 2;
}

/// --recovery: a seeded supervision/journal scenario against the real
/// daemon. Three tenants: one short clean pipeline, one that fails
/// deterministically (kThrow or kWedge chosen by the seed) and must burn
/// its restart budget into quarantine without disturbing the clean
/// tenant, and one long runner that gets drained mid-stream and must
/// resume to completion in a second daemon recovered from the journal.
int run_recovery(std::uint64_t seed, const std::string& repro) {
  namespace fs = std::filesystem;
  auto fail = [&](const std::string& why) {
    std::fprintf(stderr, "FAIL seed=%llu: %s\n  %s\n",
                 static_cast<unsigned long long>(seed), why.c_str(),
                 repro.c_str());
    return 1;
  };

  const bool wedge = (seed & 1) != 0;
  const int max_restarts = 1 + static_cast<int>(seed % 3);
  const std::string journal_path =
      (fs::temp_directory_path() /
       ("bpp-fuzz-recovery-" + std::to_string(seed) + ".journal"))
          .string();
  std::error_code ec;
  fs::remove(journal_path, ec);

  service::DaemonOptions opt;
  opt.cores = 4;
  opt.max_restarts = max_restarts;
  opt.restart_backoff_seconds = 0.01;
  opt.stall_factor = 8.0;
  opt.stall_grace_seconds = 0.3;
  opt.journal_path = journal_path;
  opt.evict_misses = 0;  // this scenario tests supervision, not eviction

  service::TenantSpec clean;
  clean.name = "clean";
  clean.app = (seed >> 1) % 2 == 0 ? "fig1" : "sobel";
  clean.frame = {32, 24};
  clean.rate_hz = 20.0;
  clean.frames = 4;
  clean.slack_seconds = 0.05;

  service::TenantSpec faulty;
  faulty.name = "faulty";
  faulty.app = "fig1";
  faulty.frame = {32, 24};
  faulty.rate_hz = 50.0;
  faulty.frames = 5;
  faulty.slack_seconds = 0.05;
  {
    fault::FaultPlan plan;
    plan.seed = seed;
    fault::KernelRule kr;
    kr.match = "merge*";
    if (wedge)
      kr.wedge_prob = 1.0;
    else
      kr.throw_prob = 1.0;
    plan.kernels.push_back(kr);
    faulty.fault_plan_json = fault::write_plan(plan);
  }

  service::TenantSpec longrun;
  longrun.name = "longrun";
  longrun.app = "fig1";
  longrun.frame = {32, 24};
  longrun.rate_hz = 100.0;
  longrun.frames = 400;  // ~4s paced; drained long before completion
  // Generous slack: this scenario asserts supervision mechanics, not
  // tight real-time margins, and CI machines are noisy.
  longrun.slack_seconds = 0.25;

  int clean_id = -1, faulty_id = -1, longrun_id = -1;
  {
    service::Daemon daemon(opt);
    clean_id = daemon.submit(clean);
    faulty_id = daemon.submit(faulty);
    longrun_id = daemon.submit(longrun);
    for (int id : {clean_id, faulty_id, longrun_id})
      if (daemon.tenant(id).state != service::TenantState::kRunning)
        return fail("tenant " + std::to_string(id) + " not admitted: " +
                    daemon.tenant(id).reason);

    // Wait for the faulty tenant to quarantine and the clean one to
    // complete; the long runner keeps going.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    for (;;) {
      const auto fs_ = daemon.tenant(faulty_id).state;
      const auto cs = daemon.tenant(clean_id).state;
      if (fs_ == service::TenantState::kQuarantined &&
          cs == service::TenantState::kCompleted)
        break;
      if (std::chrono::steady_clock::now() > deadline)
        return fail(std::string("timeout waiting for quarantine: faulty=") +
                    service::state_name(fs_) + " clean=" +
                    service::state_name(cs));
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }

    const service::TenantStatus fst = daemon.tenant(faulty_id);
    if (fst.restarts != max_restarts)
      return fail("faulty tenant restarts=" + std::to_string(fst.restarts) +
                  ", want " + std::to_string(max_restarts));
    const service::TenantStatus cst = daemon.tenant(clean_id);
    if (cst.deadline_misses != 0)
      return fail("clean co-tenant missed " +
                  std::to_string(cst.deadline_misses) + " deadlines");
    if (cst.faults_injected != 0)
      return fail("clean co-tenant saw injected faults");

    if (daemon.tenant(longrun_id).state != service::TenantState::kRunning)
      return fail("long runner finished before the drain; raise frames");
    if (!daemon.drain(10.0)) return fail("drain timed out");
    const service::TenantStatus lst = daemon.tenant(longrun_id);
    if (lst.state != service::TenantState::kDrained)
      return fail(std::string("long runner state after drain: ") +
                  service::state_name(lst.state));
    if (lst.deadline_misses != 0)
      return fail("long runner missed deadlines before the drain");
    std::printf(
        "recovery: phase 1 ok (%s fault, %d restarts, drained at frame "
        "%ld)\n",
        wedge ? "wedge" : "throw", fst.restarts, lst.frames_completed);
  }

  // Round-trip the journal itself.
  const std::vector<service::JournalEntry> entries =
      service::replay_journal(journal_path);
  if (entries.size() != 3)
    return fail("journal replay: " + std::to_string(entries.size()) +
                " entries, want 3");
  if (entries[static_cast<size_t>(faulty_id)].state != "quarantined" ||
      entries[static_cast<size_t>(faulty_id)].restarts != max_restarts)
    return fail("journal lost the quarantine decision");
  const service::JournalEntry& le =
      entries[static_cast<size_t>(longrun_id)];
  if (le.state != "drained" || !le.resumable() || !le.has_spec)
    return fail("journal: long runner not resumable (state " + le.state +
                ")");

  // Recover into a fresh daemon: terminal states frozen, the drained
  // tenant re-admitted and run to completion.
  service::DaemonOptions opt2 = opt;
  opt2.journal_path.clear();
  service::Daemon daemon2(opt2);
  const int resumed = daemon2.recover(journal_path);
  if (resumed != 1)
    return fail("recover resumed " + std::to_string(resumed) + ", want 1");
  if (daemon2.tenant(faulty_id).state != service::TenantState::kQuarantined)
    return fail("quarantine did not survive recovery");
  if (daemon2.tenant(faulty_id).restarts != max_restarts)
    return fail("restart count did not survive recovery");
  if (daemon2.tenant(clean_id).state != service::TenantState::kCompleted)
    return fail("completed co-tenant did not survive recovery");
  if (!daemon2.wait_idle(30.0))
    return fail("resumed long runner did not finish");
  const service::TenantStatus lst2 = daemon2.tenant(longrun_id);
  if (lst2.state != service::TenantState::kCompleted)
    return fail(std::string("resumed long runner state: ") +
                service::state_name(lst2.state));
  if (lst2.frames_completed != longrun.frames)
    return fail("resumed long runner completed " +
                std::to_string(lst2.frames_completed) + "/" +
                std::to_string(longrun.frames) + " frames");

  fs::remove(journal_path, ec);
  std::printf("OK seed=%llu (recovery, %s fault)\n",
              static_cast<unsigned long long>(seed),
              wedge ? "wedge" : "throw");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = 0;
  bool seed_set = false;
  bool faulted = false;
  bool predict_mode = false;
  bool recovery_mode = false;
  std::string isa_arg;
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--seed" && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
      seed_set = true;
    } else if (flag == "--faulted") {
      faulted = true;
    } else if (flag == "--predict") {
      predict_mode = true;
    } else if (flag == "--recovery") {
      recovery_mode = true;
    } else if (flag == "--isa" && i + 1 < argc) {
      isa_arg = argv[++i];
    } else if (flag == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
    } else {
      return usage();
    }
  }
  if (!seed_set) return usage();

  if (!isa_arg.empty()) {
    const auto isa = simd::isa_from_name(isa_arg);
    if (!isa || !simd::supported(*isa)) {
      std::fprintf(stderr, "bpp_fuzz: unknown or unsupported ISA '%s'\n",
                   isa_arg.c_str());
      return 2;
    }
    simd::set_isa(*isa);
  }

  const std::string repro =
      std::string("repro: bpp_fuzz --seed ") + std::to_string(seed) +
      (faulted ? " --faulted" : "") + (predict_mode ? " --predict" : "") +
      (recovery_mode ? " --recovery" : "") +
      (isa_arg.empty() ? "" : " --isa " + isa_arg);
  std::printf("kernel backend: %s\n", simd::ops().name);

  if (recovery_mode) {
    try {
      return run_recovery(seed, repro);
    } catch (const Error& e) {
      std::fprintf(stderr, "FAIL seed=%llu: exception: %s\n  %s\n",
                   static_cast<unsigned long long>(seed), e.what(),
                   repro.c_str());
      return 1;
    }
  }
  auto fail = [&](const std::string& why) {
    std::fprintf(stderr, "FAIL seed=%llu: %s\n  %s\n",
                 static_cast<unsigned long long>(seed), why.c_str(),
                 repro.c_str());
    return 1;
  };

  try {
    std::uint64_t rng = 0xF0221ULL ^ (seed << 17);
    const Size2 frame{static_cast<int>(20 + splitmix(rng) % 16),
                      static_cast<int>(18 + splitmix(rng) % 10)};
    const double rate = 50.0 + static_cast<double>(splitmix(rng) % 300);
    const int nframes = 2;
    Size2 left = frame;
    const std::vector<Stage> stages = random_stages(rng, left);

    Graph g;
    Kernel* prev = &g.add<InputKernel>("input", frame, rate, nframes);
    for (size_t i = 0; i < stages.size(); ++i) {
      Kernel* k = stages[i].append(g, static_cast<int>(i));
      g.connect(*prev, "out", *k, "in");
      prev = k;
    }
    auto& out = g.add<OutputKernel>("result");
    g.connect(*prev, "out", out, "in");

    CompileOptions opt;
    if (splitmix(rng) & 1) opt.machine.clock_hz /= 2;
    CompiledApp app = compile(std::move(g), opt);
    std::printf("seed=%llu frame=%dx%d stages=%zu faulted=%d\n",
                static_cast<unsigned long long>(seed), frame.w, frame.h,
                stages.size(), faulted ? 1 : 0);

    // Differential prediction check: the analytic steady period must
    // track an unfaulted simulation of the same seed (faults perturb the
    // timeline by design, so the faulted runs are not comparable).
    if (predict_mode) {
      const predict::Prediction pred = predict::predict(app);
      Graph pg = app.graph.clone();
      SimOptions psopt;
      psopt.machine = app.options.machine;
      const SimResult pr = simulate(pg, app.mapping, psopt);
      if (!pr.completed) return fail("predict-mode simulation incomplete");
      const double sim = pr.steady_frame_period();
      if (sim <= 0.0) return fail("predict-mode: no steady frame period");
      const double rel = std::fabs(sim - pred.steady_period_seconds) / sim;
      std::printf("predict: exact=%d period=%.6gs sim=%.6gs rel=%.3g\n",
                  pred.exact ? 1 : 0, pred.steady_period_seconds, sim, rel);
      if (rel > 0.005)
        return fail("predicted period deviates " + std::to_string(rel) +
                    " (> 0.005) from the simulator");
    }

    const fault::FaultPlan plan = fuzz_plan(seed);
    fault::Injector inj(plan, seed);
    const fault::Injector* injp = faulted ? &inj : nullptr;

    // 1. Replay determinism on the simulator.
    const SimFingerprint fa = simulate_once(app, injp, rate);
    const SimFingerprint fb = simulate_once(app, injp, rate);
    if (fa.trace_json != fb.trace_json)
      return fail("simulator trace differs between identical runs");
    if (fa.degradation_json != fb.degradation_json)
      return fail("degradation report differs between identical runs");
    std::printf("sim: firings=%ld faults=%ld trace=%zu bytes, replay ok\n",
                fa.firings, fa.faults, fa.trace_json.size());

    // 2. Host run vs the composed scalar reference.
    obs::Recorder rec;
    RuntimeOptions ropt;
    ropt.recorder = obs::kCompiledIn ? &rec : nullptr;
    ropt.injector = injp;
    const RuntimeResult r = run_threaded(app.graph, app.mapping, ropt);
    if (!trace_path.empty() && obs::kCompiledIn) {
      std::ofstream f(trace_path);
      obs::write_chrome_trace(rec.trace(), f);
      std::printf("wrote %s\n", trace_path.c_str());
    }
    if (!r.completed) return fail("host run did not complete");

    const auto& res =
        dynamic_cast<const OutputKernel&>(app.graph.by_name("result"));
    if (res.frames().size() != static_cast<size_t>(nframes))
      return fail("expected " + std::to_string(nframes) + " frames, got " +
                  std::to_string(res.frames().size()));
    for (int f = 0; f < nframes; ++f) {
      Tile want = ref::make_frame(frame, f, default_pixel_fn());
      for (const Stage& s : stages) want = s.reference(want);
      const Tile& got = res.frames()[static_cast<size_t>(f)];
      if (got.size() != want.size())
        return fail("frame " + std::to_string(f) + " size mismatch");
      for (int y = 0; y < want.height(); ++y)
        for (int x = 0; x < want.width(); ++x)
          if (std::fabs(got.at(x, y) - want.at(x, y)) > 1e-9)
            return fail("frame " + std::to_string(f) + " differs at (" +
                        std::to_string(x) + "," + std::to_string(y) +
                        "): got " + std::to_string(got.at(x, y)) +
                        " want " + std::to_string(want.at(x, y)));
    }
    std::printf("run: firings=%ld faults=%ld, %d frames bit-exact\n",
                r.total_firings, r.faults_injected, nframes);
  } catch (const Error& e) {
    return fail(std::string("exception: ") + e.what());
  }
  std::printf("OK seed=%llu%s\n", static_cast<unsigned long long>(seed),
              faulted ? " (faulted)" : "");
  return 0;
}
