#pragma once
// Human-readable summaries of compiled applications, in the vocabulary of
// the paper's figures (replication factors, buffer annotations, mapping
// group counts, estimated utilizations).

#include <ostream>
#include <string>

#include "compiler/pipeline.h"
#include "obs/analysis.h"

namespace bpp {

/// Kernel inventory of a compiled app: counts by role.
struct GraphCensus {
  int total = 0;
  int sources = 0;
  int computation = 0;
  int buffers = 0;
  int splits_joins = 0;  ///< split, join, replicate FSMs
  int insets = 0;
};

[[nodiscard]] GraphCensus census(const Graph& g);

void write_report(const CompiledApp& app, std::ostream& os);
[[nodiscard]] std::string report_string(const CompiledApp& app);

/// Measured per-core utilization section (the paper's Fig. 13 breakdown):
/// one line per core with the run / read / write / other / idle split as a
/// percentage of the run, plus the real-time release summary. Works for
/// both clock domains — modeled time from the simulator, wall-clock time
/// from the host runtime (see obs::analyze_utilization).
void write_utilization(const obs::UtilizationReport& u, std::ostream& os);
[[nodiscard]] std::string utilization_string(const obs::UtilizationReport& u);

}  // namespace bpp
