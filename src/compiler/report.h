#pragma once
// Human-readable summaries of compiled applications, in the vocabulary of
// the paper's figures (replication factors, buffer annotations, mapping
// group counts, estimated utilizations).

#include <ostream>
#include <string>
#include <vector>

#include "compiler/pipeline.h"
#include "obs/analysis.h"

namespace bpp {

namespace fault {
struct FaultPlan;
}  // namespace fault

/// Column-aligned text table: the one formatter behind the rate-validation
/// and performance-prediction reports (and anything else that prints
/// columns), so column layout is declared once instead of via scattered
/// setw() calls. Widths adapt to the longest cell per column.
class TextTable {
 public:
  enum class Align { Left, Right };

  /// Declare the next column. Call before the first row().
  void column(std::string header, Align align = Align::Right);
  /// Append a row; missing trailing cells render empty, extra cells throw.
  void row(std::vector<std::string> cells);
  /// Fixed-point cell helper.
  [[nodiscard]] static std::string num(double v, int precision);

  void write(std::ostream& os, const std::string& indent = "  ") const;

 private:
  struct Col {
    std::string header;
    Align align = Align::Right;
  };
  std::vector<Col> cols_;
  std::vector<std::vector<std::string>> rows_;
};

/// One row of a predicted vs simulated vs host-measured comparison table
/// (the bpc --predict cross-check). NaN marks an absent measurement and
/// renders as "-".
struct ComparisonRow {
  std::string quantity;  ///< label, unit included (e.g. "steady period (us)")
  double predicted = 0.0;
  double simulated = 0.0;
  double measured = 0.0;
  int precision = 3;
};

void write_comparison(const std::vector<ComparisonRow>& rows,
                      std::ostream& os);
[[nodiscard]] std::string comparison_string(
    const std::vector<ComparisonRow>& rows);

/// Kernel inventory of a compiled app: counts by role.
struct GraphCensus {
  int total = 0;
  int sources = 0;
  int computation = 0;
  int buffers = 0;
  int splits_joins = 0;  ///< split, join, replicate FSMs
  int insets = 0;
};

[[nodiscard]] GraphCensus census(const Graph& g);

void write_report(const CompiledApp& app, std::ostream& os);
[[nodiscard]] std::string report_string(const CompiledApp& app);

/// Measured per-core utilization section (the paper's Fig. 13 breakdown):
/// one line per core with the run / read / write / other / idle split as a
/// percentage of the run, plus the real-time release summary. Works for
/// both clock domains — modeled time from the simulator, wall-clock time
/// from the host runtime (see obs::analyze_utilization).
void write_utilization(const obs::UtilizationReport& u, std::ostream& os);
[[nodiscard]] std::string utilization_string(const obs::UtilizationReport& u);

/// One row of the predicted-vs-measured firing-rate table: the compiler's
/// steady-state estimate (LoadMap firings_per_second, i.e. the data-flow
/// analysis' firings_per_frame * rate_hz) against the rate observed in a
/// recorded trace.
struct RateRow {
  KernelId kernel = -1;
  std::string name;
  double predicted_hz = 0.0;
  double measured_hz = 0.0;
  long firings = 0;      ///< firings used for the measurement
  bool measured = false; ///< enough steady-state firings to compute a rate

  /// |measured - predicted| / predicted, or 0 when either side is missing.
  [[nodiscard]] double relative_error() const {
    if (!measured || predicted_hz <= 0.0) return 0.0;
    const double d = measured_hz - predicted_hz;
    return (d < 0.0 ? -d : d) / predicted_hz;
  }
};

struct RateValidation {
  std::vector<RateRow> rows;

  /// True when every measurable row with a prediction is within `tol`
  /// relative error (e.g. 0.01 for 1%).
  [[nodiscard]] bool all_within(double tol) const {
    for (const RateRow& r : rows)
      if (r.measured && r.predicted_hz > 0.0 && r.relative_error() > tol)
        return false;
    return true;
  }
};

/// Compare compiled rate predictions against firing spans in `trace`.
/// Sources are skipped (they release rather than fire); each kernel's final
/// firing — the end-of-stream tail, which has no successor at the steady
/// period — is dropped, and the rate is (n-1) firings over the span of the
/// remaining start times.
[[nodiscard]] RateValidation validate_rates(const CompiledApp& app,
                                            const obs::Trace& trace);

void write_rate_validation(const RateValidation& v, std::ostream& os);
[[nodiscard]] std::string rate_validation_string(const RateValidation& v);

/// Which fault-plan rules bind to which kernels: for every kernel the first
/// matching timing and delivery rule (first match wins — the same resolution
/// fault::Injector::bind uses), plus the core-throttle table and a warning
/// for rules whose glob matched nothing. Printed by `bpc --faults` so a
/// plan's globs can be sanity-checked against the compiled (renamed,
/// replicated, multiplexed) kernel set rather than the source one.
void write_fault_binding(const fault::FaultPlan& plan, const Graph& g,
                         std::ostream& os);
[[nodiscard]] std::string fault_binding_string(const fault::FaultPlan& plan,
                                               const Graph& g);

}  // namespace bpp
