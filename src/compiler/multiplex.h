#pragma once
// Kernel-to-processor mapping and greedy time-multiplexing (paper §V).
//
// A 1:1 mapping gives every kernel its own core; with all the
// low-utilization buffers and split/join FSMs the transformations insert,
// that wastes most of each core (Fig. 12(a)). The greedy algorithm merges
// neighboring kernels onto one core while their combined CPU and memory
// utilization fits (Fig. 12(b)), except the initial input buffers, which
// must stay dedicated or they may block the input.

#include <set>
#include <string>
#include <vector>

#include "compiler/loads.h"
#include "compiler/machine.h"
#include "core/graph.h"

namespace bpp {

struct Mapping {
  std::vector<int> core_of;  ///< kernel id -> core id
  int cores = 0;

  [[nodiscard]] std::vector<std::vector<KernelId>> groups() const;
};

/// Every kernel on its own core (Fig. 12(a)).
[[nodiscard]] Mapping map_one_to_one(const Graph& g);

/// Kernels that may never be time-multiplexed: sources (they model the
/// off-chip stream) and the initial input buffers (directly downstream of
/// an application input, possibly through split FSMs).
[[nodiscard]] std::set<KernelId> multiplex_pinned(const Graph& g);

/// Greedy neighbor merging (Fig. 12(b)).
[[nodiscard]] Mapping map_greedy(const Graph& g, const LoadMap& loads,
                                 const MachineSpec& m);

/// Compiler-estimated average core utilization under a mapping (sources
/// excluded — they model the sensor, not a PE).
[[nodiscard]] double estimated_utilization(const Graph& g, const LoadMap& loads,
                                           const MachineSpec& m,
                                           const Mapping& map);

}  // namespace bpp
