#include "compiler/multiplex.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "kernels/buffer.h"

namespace bpp {

std::vector<std::vector<KernelId>> Mapping::groups() const {
  std::vector<std::vector<KernelId>> out(static_cast<size_t>(cores));
  for (KernelId k = 0; k < static_cast<int>(core_of.size()); ++k)
    if (core_of[static_cast<size_t>(k)] >= 0)
      out[static_cast<size_t>(core_of[static_cast<size_t>(k)])].push_back(k);
  return out;
}

Mapping map_one_to_one(const Graph& g) {
  Mapping m;
  m.core_of.resize(static_cast<size_t>(g.kernel_count()));
  std::iota(m.core_of.begin(), m.core_of.end(), 0);
  m.cores = g.kernel_count();
  return m;
}

std::set<KernelId> multiplex_pinned(const Graph& g) {
  std::set<KernelId> pinned;
  // Sources model the external stream.
  for (KernelId k : g.sources()) pinned.insert(k);
  // Initial input buffers: walk from each timed application input through
  // routing FSMs to the first buffers.
  std::vector<KernelId> frontier;
  for (KernelId k : g.sources()) {
    auto spec = g.kernel(k).source_spec(0);
    if (spec && spec->rate_hz > 0.0) frontier.push_back(k);
  }
  std::set<KernelId> visited;
  while (!frontier.empty()) {
    const KernelId k = frontier.back();
    frontier.pop_back();
    if (!visited.insert(k).second) continue;
    for (ChannelId c : g.out_channels(k)) {
      const KernelId d = g.channel(c).dst_kernel;
      const Kernel& dk = g.kernel(d);
      if (dynamic_cast<const BufferKernel*>(&dk)) {
        pinned.insert(d);  // first buffer on this path: pin, stop walking
      } else if (dk.dot_shape() == "diamond") {
        frontier.push_back(d);  // split/replicate FSM: look through it
      }
    }
  }
  return pinned;
}

namespace {

struct Group {
  double util = 0.0;
  long mem = 0;
  bool pinned = false;
};

int find_root(std::vector<int>& parent, int x) {
  while (parent[static_cast<size_t>(x)] != x) {
    parent[static_cast<size_t>(x)] = parent[static_cast<size_t>(parent[static_cast<size_t>(x)])];
    x = parent[static_cast<size_t>(x)];
  }
  return x;
}

}  // namespace

Mapping map_greedy(const Graph& g, const LoadMap& loads, const MachineSpec& m) {
  const int n = g.kernel_count();
  const std::set<KernelId> pinned = multiplex_pinned(g);

  std::vector<int> parent(static_cast<size_t>(n));
  std::iota(parent.begin(), parent.end(), 0);
  std::vector<Group> group(static_cast<size_t>(n));
  for (KernelId k = 0; k < n; ++k) {
    group[static_cast<size_t>(k)].util = loads.of(k).utilization(m);
    group[static_cast<size_t>(k)].mem = loads.of(k).memory_words;
    group[static_cast<size_t>(k)].pinned = pinned.count(k) > 0;
  }

  // Greedily merge the cheapest mergeable neighboring pair until none fits.
  while (true) {
    double best = std::numeric_limits<double>::infinity();
    int best_a = -1, best_b = -1;
    for (const Channel& ch : g.channels()) {
      if (!ch.alive) continue;
      const int a = find_root(parent, ch.src_kernel);
      const int b = find_root(parent, ch.dst_kernel);
      if (a == b) continue;
      const Group& ga = group[static_cast<size_t>(a)];
      const Group& gb = group[static_cast<size_t>(b)];
      if (ga.pinned || gb.pinned) continue;
      if (ga.util + gb.util > m.target_utilization) continue;
      if (ga.mem + gb.mem > m.mem_words) continue;
      if (ga.util + gb.util < best) {
        best = ga.util + gb.util;
        best_a = a;
        best_b = b;
      }
    }
    if (best_a < 0) break;
    parent[static_cast<size_t>(best_b)] = best_a;
    group[static_cast<size_t>(best_a)].util += group[static_cast<size_t>(best_b)].util;
    group[static_cast<size_t>(best_a)].mem += group[static_cast<size_t>(best_b)].mem;
  }

  Mapping out;
  out.core_of.assign(static_cast<size_t>(n), -1);
  std::vector<int> core_id(static_cast<size_t>(n), -1);
  int next = 0;
  for (KernelId k = 0; k < n; ++k) {
    const int r = find_root(parent, k);
    if (core_id[static_cast<size_t>(r)] < 0) core_id[static_cast<size_t>(r)] = next++;
    out.core_of[static_cast<size_t>(k)] = core_id[static_cast<size_t>(r)];
  }
  out.cores = next;
  return out;
}

double estimated_utilization(const Graph& g, const LoadMap& loads,
                             const MachineSpec& m, const Mapping& map) {
  std::vector<double> per_core(static_cast<size_t>(map.cores), 0.0);
  std::vector<bool> counts(static_cast<size_t>(map.cores), false);
  for (KernelId k = 0; k < g.kernel_count(); ++k) {
    const int c = map.core_of[static_cast<size_t>(k)];
    if (c < 0) continue;
    per_core[static_cast<size_t>(c)] += loads.of(k).utilization(m);
    if (!g.kernel(k).is_source()) counts[static_cast<size_t>(c)] = true;
  }
  double sum = 0.0;
  int n = 0;
  for (size_t c = 0; c < per_core.size(); ++c) {
    if (!counts[c]) continue;  // source-only cores model the sensor
    sum += per_core[c];
    ++n;
  }
  return n > 0 ? sum / n : 0.0;
}

}  // namespace bpp
