#pragma once
// Automatic parallelization (paper §IV).
//
// From the kernel resource parameterization, the rates from the data-flow
// analysis, and the per-PE resources, compute the replication factor each
// kernel needs to meet the real-time input rate, then transform the graph:
//  * data-parallel kernels are replicated behind round-robin split/join
//    FSMs (§IV-A);
//  * data-dependency edges cap a kernel's parallelism at its edge-source's
//    (§IV-B) — equal-parallelism dependent neighbors are lane-connected,
//    which is how dependency-edged pipelines replicate as whole pipelines;
//  * replicated inputs are fed through replicate kernels instead of splits;
//  * buffers (ParKind::Custom) are column-split with halo replication
//    (§IV-C, see buffer_split.h);
//  * consumers downstream of a replicated producer are notified via
//    on_upstream_parallelized (how histogram-merge learns how many partial
//    histograms form one frame).

#include <map>
#include <string>
#include <vector>

#include "compiler/buffer_split.h"
#include "compiler/dataflow.h"
#include "compiler/loads.h"
#include "compiler/machine.h"
#include "core/graph.h"

namespace bpp {

struct ParallelizationResult {
  /// Original kernel name -> replication factor (only entries > 1).
  std::map<std::string, int> factors;
  std::vector<BufferSplitResult> buffer_splits;
  int splits_inserted = 0;
  int joins_inserted = 0;
  int replicates_inserted = 0;
  int lane_connections = 0;
  /// Kernels parallelized by the reuse-optimized striping of Fig. 9 (the
  /// extension the paper describes but did not implement): each replica
  /// owns a column stripe fed by its own reuse-linked buffer slice, with a
  /// decoupling output FIFO per replica.
  int reuse_striped = 0;
  std::vector<std::string> warnings;
};

struct ParallelizeOptions {
  MachineSpec machine;
  /// Enable the Fig. 9 reuse-optimized buffering transformation.
  bool reuse_opt = false;
};

/// Replication factor demanded by a load on the given machine.
[[nodiscard]] int required_parallelism(const LoadModel& load, const MachineSpec& m);

/// Transform `g` in place. `df` must be a strict analysis of `g` (post
/// buffering); it is extended for the channels this pass creates. `loads`
/// is updated for replicas and inserted infrastructure kernels.
ParallelizationResult parallelize(Graph& g, DataflowResult& df, LoadMap& loads,
                                  const MachineSpec& m);
ParallelizationResult parallelize(Graph& g, DataflowResult& df, LoadMap& loads,
                                  const ParallelizeOptions& options);

}  // namespace bpp
