#pragma once
// Automatic buffering (paper §III-B).
//
// The only implicit channel buffering in the model is the one-iteration
// buffer in each kernel input and output. Wherever a producer's emission
// granularity differs from the consumer's declared window/step, this pass
// splices in a parameterized BufferKernel sized from the data-flow
// analysis (double-buffering the larger of input/output).

#include <string>
#include <vector>

#include "compiler/dataflow.h"
#include "core/graph.h"

namespace bpp {

struct BufferInsertion {
  std::string name;        ///< inserted buffer kernel
  std::string producer;
  std::string consumer;
  std::string annotation;  ///< paper-style "[20x10]"
  long storage_words = 0;
};

/// Insert buffers on every granularity-mismatched channel. `df` must be a
/// fresh strict analysis of `g`; re-analyze after this pass.
std::vector<BufferInsertion> insert_buffers(Graph& g, const DataflowResult& df);

}  // namespace bpp
