#pragma once
// Data-flow analysis (paper §III-A).
//
// Propagates the application inputs' sizes and rates through the graph and
// computes, per kernel, the iteration size and rate (how many times each
// kernel executes per input frame) and, per channel, the StreamInfo —
// including the inset of each stream from the application input that
// generated it, which drives the trimming/padding analysis (§III-C).
//
// The traversal is a work-list (as §III-D prescribes for feedback support);
// feedback kernels seed their loop-carried output from feedback_spec().
//
// Two strictness levels: Strict throws on kernels whose inputs disagree in
// iteration count or inset (unalignable data, Fig. 8); Lenient records
// those kernels in `misaligned` and stops propagation there, which is what
// the alignment pass iterates on.

#include <string>
#include <vector>

#include "core/graph.h"
#include "core/stream_info.h"

namespace bpp {

/// Per-kernel result of the analysis.
struct KernelAnalysis {
  bool resolved = false;     ///< inputs known and consistent
  Size2 iterations{0, 0};    ///< data-method executions per frame (2-D grid)
  double rate_hz = 0.0;      ///< frame rate seen by this kernel
  long cycles_per_frame = 0; ///< all methods, weighted by firing counts
  long read_words_per_frame = 0;
  long write_words_per_frame = 0;
  long firings_per_frame = 0;
  long memory_words = 0;     ///< state + implicit one-iteration port buffers
};

/// A kernel whose (pixel-space) inputs disagree — different iteration
/// counts or insets — and the offending method.
struct Misalignment {
  KernelId kernel = -1;
  int method = -1;
  /// Streams feeding the method's pixel-space inputs, for the overlay.
  std::vector<int> input_ports;
  std::vector<StreamInfo> inputs;
};

struct DataflowResult {
  std::vector<StreamInfo> channel;   ///< indexed by ChannelId
  std::vector<KernelAnalysis> kernel;  ///< indexed by KernelId
  std::vector<Misalignment> misaligned;

  [[nodiscard]] bool complete() const { return misaligned.empty(); }
};

enum class Strictness { Strict, Lenient };

/// Run the analysis. Strict mode throws AnalysisError on misalignment or on
/// structurally impossible streams (window larger than frame, mismatched
/// rates). Applies to graphs before parallelization (split/join kernels
/// have data-dependent routing the stream calculus does not model).
[[nodiscard]] DataflowResult analyze(const Graph& g,
                                     Strictness strict = Strictness::Strict);

}  // namespace bpp
