#include "compiler/buffer_split.h"

#include "kernels/buffer.h"
#include "kernels/split_join.h"

namespace bpp {

std::vector<int> slice_boundaries(int it_w, int slices) {
  std::vector<int> w(static_cast<size_t>(slices) + 1, 0);
  for (int i = 0; i <= slices; ++i)
    w[static_cast<size_t>(i)] =
        static_cast<int>(static_cast<long>(it_w) * i / slices);
  return w;
}

BufferSplitResult split_buffer(Graph& g, DataflowResult& df, LoadMap& loads,
                               KernelId k, int slices) {
  auto* buf = dynamic_cast<BufferKernel*>(&g.kernel(k));
  if (!buf) throw AnalysisError(g.kernel(k).name() + ": not a buffer kernel");
  if (buf->in_granularity() != Size2{1, 1})
    throw AnalysisError(buf->name() +
                        ": column splitting requires pixel-granularity input");

  const Size2 frame = buf->frame();
  const Size2 win = buf->out_window();
  const Step2 step = buf->out_step();
  const Size2 iters = iteration_count(frame, win, step);
  slices = std::min(slices, iters.w);
  if (slices < 2)
    throw AnalysisError(buf->name() + ": nothing to split (slices <= 1)");

  BufferSplitResult res;
  res.original = buf->name();
  res.slices = slices;
  res.overlap_columns = win.w - step.x;

  const std::vector<int> w = slice_boundaries(iters.w, slices);
  std::vector<std::pair<int, int>> ranges;  // input pixel columns per slice
  std::vector<int> runs;                    // window columns per slice
  for (int i = 0; i < slices; ++i) {
    const int a = w[static_cast<size_t>(i)] * step.x;
    const int b = (w[static_cast<size_t>(i) + 1] - 1) * step.x + win.w;
    ranges.emplace_back(a, b);
    runs.push_back(w[static_cast<size_t>(i) + 1] - w[static_cast<size_t>(i)]);
  }
  res.input_ranges = ranges;

  // Remember the original wiring.
  const ChannelId first_new_channel = g.channel_count();
  const ChannelId in_c = *g.in_channel(k, buf->input_index("in"));
  const Channel in_ch = g.channel(in_c);
  const std::vector<ChannelId> out_cs = g.out_channels(k, buf->output_index("out"));
  const double rate = df.channel[static_cast<size_t>(in_c)].rate_hz;

  // Slice kernels: reuse the original as slice 0, clone-construct the rest.
  std::vector<KernelId> slice_ids;
  const std::string base = buf->name();
  buf->set_name(base + "_0");
  buf->reshape({ranges[0].second - ranges[0].first, frame.h});
  slice_ids.push_back(k);
  for (int i = 1; i < slices; ++i) {
    auto s = std::make_unique<BufferKernel>(
        base + "_" + std::to_string(i), Size2{1, 1}, win, step,
        Size2{ranges[static_cast<size_t>(i)].second -
                  ranges[static_cast<size_t>(i)].first,
              frame.h});
    slice_ids.push_back(g.id_of(g.add_kernel(std::move(s))));
  }
  for (KernelId sid : slice_ids)
    res.slice_annotations.push_back(
        static_cast<BufferKernel&>(g.kernel(sid)).size_annotation());

  // Split FSM in front (Fig. 10): overlapping column ranges, 1x1 items.
  auto split = std::make_unique<SplitKernel>(g.unique_name(base + "_split"),
                                             ranges, frame.w, Size2{1, 1},
                                             Step2{1, 1});
  const KernelId split_id = g.id_of(g.add_kernel(std::move(split)));
  g.disconnect(in_c);
  g.connect(in_ch.src_kernel, in_ch.src_port, split_id, 0);
  for (int i = 0; i < slices; ++i)
    g.connect(split_id, i, slice_ids[static_cast<size_t>(i)],
              g.kernel(slice_ids[static_cast<size_t>(i)]).input_index("in"));

  // Run-length join behind, restoring scan order window-by-window.
  auto join = std::make_unique<JoinKernel>(g.unique_name(base + "_join"), runs,
                                           win, step);
  const KernelId join_id = g.id_of(g.add_kernel(std::move(join)));
  for (int i = 0; i < slices; ++i)
    g.connect(slice_ids[static_cast<size_t>(i)],
              g.kernel(slice_ids[static_cast<size_t>(i)]).output_index("out"),
              join_id, i);
  for (ChannelId c : out_cs) {
    const Channel ch = g.channel(c);
    g.disconnect(c);
    g.connect(join_id, 0, ch.dst_kernel, ch.dst_port);
  }

  // Load bookkeeping.
  const double pixel_ps = static_cast<double>(frame.area()) * rate;
  double total_in = 0.0;
  for (const auto& [a, b] : ranges) total_in += b - a;
  for (int i = 0; i < slices; ++i) {
    const auto& [a, b] = ranges[static_cast<size_t>(i)];
    auto& sb = static_cast<BufferKernel&>(g.kernel(slice_ids[static_cast<size_t>(i)]));
    LoadModel l;
    const double in_items_ps = static_cast<double>(b - a) * frame.h * rate;
    const double out_items_ps =
        static_cast<double>(runs[static_cast<size_t>(i)]) * iters.h * rate;
    l.firings_per_second = in_items_ps;
    l.cycles_per_second = in_items_ps * 6.0;
    l.read_words_per_second = in_items_ps;
    l.write_words_per_second = out_items_ps * win.area() + iters.h * rate;
    l.memory_words = sb.storage_words() + 16;
    loads.set(slice_ids[static_cast<size_t>(i)], l);
  }
  // Split reads every pixel once and writes overlap columns twice.
  loads.set(split_id,
            forwarding_load(pixel_ps, 1, total_in / frame.w));
  loads.set(join_id, forwarding_load(static_cast<double>(iters.area()) * rate,
                                     win.area()));

  // Stream info for the new channels: conservative copies so later passes
  // can still look up item shapes.
  df.channel.resize(static_cast<size_t>(g.channel_count()));
  for (ChannelId c = first_new_channel; c < g.channel_count(); ++c) {
    const Channel& ch = g.channel(c);
    if (!ch.alive) continue;
    StreamInfo s;
    const Kernel& src = g.kernel(ch.src_kernel);
    const PortSpec& op = src.output(ch.src_port).spec;
    s.item = op.window;
    s.item_step = op.step;
    s.rate_hz = rate;
    s.frame = frame;
    s.items_per_frame = 0;  // routed subsets: not a whole-frame stream
    if (ch.src_kernel == join_id) {
      // The join restores the original buffered stream.
      s = df.channel[static_cast<size_t>(out_cs.front())];
    }
    df.channel[static_cast<size_t>(c)] = s;
  }

  return res;
}

}  // namespace bpp
