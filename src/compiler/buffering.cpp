#include "compiler/buffering.h"

#include "compiler/alignment.h"
#include "kernels/buffer.h"

namespace bpp {

std::vector<BufferInsertion> insert_buffers(Graph& g, const DataflowResult& df) {
  std::vector<BufferInsertion> out;

  const int original_channels = g.channel_count();
  for (ChannelId c = 0; c < original_channels; ++c) {
    const Channel& ch = g.channel(c);
    if (!ch.alive) continue;
    const StreamInfo& s = df.channel[static_cast<size_t>(c)];
    const Kernel& dst = g.kernel(ch.dst_kernel);
    const PortSpec& want = dst.input(ch.dst_port).spec;

    const Step2 item_as_step{s.item.w, s.item.h};
    if (s.item == want.window && s.item_step == want.step) continue;  // matches

    if (s.item_step != item_as_step)
      throw AnalysisError(g.kernel(ch.src_kernel).name() + " -> " + dst.name() +
                          ": producer emits overlapping items; cannot re-buffer");

    auto buf = std::make_unique<BufferKernel>(
        g.unique_name("buffer_" + dst.name() + "_" + want.name), s.item,
        want.window, want.step, s.frame);
    BufferInsertion ins;
    ins.name = buf->name();
    ins.producer = g.kernel(ch.src_kernel).name();
    ins.consumer = dst.name();
    ins.annotation = buf->size_annotation();
    ins.storage_words = buf->storage_words();
    splice_into_channel(g, c, std::move(buf));
    out.push_back(std::move(ins));
  }
  return out;
}

}  // namespace bpp
