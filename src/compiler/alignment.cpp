#include "compiler/alignment.h"

#include <cmath>
#include <limits>

#include "kernels/inset.h"
#include "kernels/mirror_pad.h"

namespace bpp {

namespace {

constexpr double kTol = 1e-6;

long to_count(double v, const std::string& what) {
  const double r = std::round(v);
  if (std::abs(v - r) > kTol)
    throw AnalysisError("alignment: " + what + " is not an integral number of "
                        "samples (" + std::to_string(v) + "); streams have "
                        "incompatible sampling grids");
  return static_cast<long>(r);
}

/// Output-sample lattice of one misaligned input: first sample position in
/// origin coordinates, inter-sample pitch, and sample counts.
struct Lattice {
  Offset2 first;
  Offset2 pitch;
  Size2 count;
};

Lattice lattice_of(const Kernel& kn, int port, const StreamInfo& s) {
  const PortSpec& spec = kn.input(port).spec;
  Lattice l;
  l.first = {s.inset.x + spec.offset.x * s.scale.x,
             s.inset.y + spec.offset.y * s.scale.y};
  l.pitch = {spec.step.x * s.scale.x, spec.step.y * s.scale.y};
  l.count = iteration_count(s.frame, spec.window, spec.step);
  return l;
}

}  // namespace

KernelId splice_into_channel(Graph& g, ChannelId c, std::unique_ptr<Kernel> k,
                             const std::string& in_port,
                             const std::string& out_port) {
  const Channel ch = g.channel(c);
  Kernel& inserted = g.add_kernel(std::move(k));
  const KernelId id = g.id_of(inserted);
  g.disconnect(c);
  g.connect(ch.src_kernel, ch.src_port, id, inserted.input_index(in_port));
  g.connect(id, inserted.output_index(out_port), ch.dst_kernel, ch.dst_port);
  return id;
}

std::vector<AlignmentEdit> align(Graph& g, AlignPolicy policy) {
  std::vector<AlignmentEdit> edits;

  for (int round = 0; round < 64; ++round) {
    DataflowResult df = analyze(g, Strictness::Lenient);
    if (df.misaligned.empty()) return edits;
    const Misalignment& mis = df.misaligned.front();
    const Kernel& kn = g.kernel(mis.kernel);

    // Overlay the output-sample lattices of the misaligned inputs (Fig. 8).
    std::vector<Lattice> lats;
    lats.reserve(mis.input_ports.size());
    for (size_t i = 0; i < mis.input_ports.size(); ++i)
      lats.push_back(lattice_of(kn, mis.input_ports[i], mis.inputs[i]));

    const Offset2 pitch = lats.front().pitch;
    for (const Lattice& l : lats)
      if (std::abs(l.pitch.x - pitch.x) > kTol || std::abs(l.pitch.y - pitch.y) > kTol)
        throw AnalysisError(kn.name() +
                            ": inputs sample the origin at different pitches; "
                            "trimming/padding cannot align them");
    for (const Lattice& l : lats) {
      if (std::abs((l.first.x - lats.front().first.x) / pitch.x -
                   std::round((l.first.x - lats.front().first.x) / pitch.x)) > kTol ||
          std::abs((l.first.y - lats.front().first.y) / pitch.y -
                   std::round((l.first.y - lats.front().first.y) / pitch.y)) > kTol)
        throw AnalysisError(kn.name() + ": input lattices are phase-shifted by a "
                            "fractional sample; cannot align");
    }

    if (policy == AlignPolicy::Trim) {
      // Target = intersection of the sample lattices.
      double x0 = -std::numeric_limits<double>::infinity(), y0 = x0;
      double x1 = std::numeric_limits<double>::infinity(), y1 = x1;
      for (const Lattice& l : lats) {
        x0 = std::max(x0, l.first.x);
        y0 = std::max(y0, l.first.y);
        x1 = std::min(x1, l.first.x + l.count.w * pitch.x);
        y1 = std::min(y1, l.first.y + l.count.h * pitch.y);
      }
      if (x1 <= x0 || y1 <= y0)
        throw AnalysisError(kn.name() + ": input extents do not overlap");

      for (size_t i = 0; i < mis.input_ports.size(); ++i) {
        const Lattice& l = lats[i];
        const StreamInfo& s = mis.inputs[i];
        const int port = mis.input_ports[i];
        const PortSpec& spec = kn.input(port).spec;
        const long lead_x = to_count((x0 - l.first.x) / pitch.x, "left trim");
        const long lead_y = to_count((y0 - l.first.y) / pitch.y, "top trim");
        const long keep_w = to_count((x1 - x0) / pitch.x, "kept width");
        const long keep_h = to_count((y1 - y0) / pitch.y, "kept height");
        // Trim in stream pixels: drop lead iterations' worth on the
        // left/top and whatever the kept iterations do not reach on the
        // right/bottom.
        Border b;
        b.left = static_cast<int>(lead_x) * spec.step.x;
        b.top = static_cast<int>(lead_y) * spec.step.y;
        const Size2 need = covered_extent(
            {static_cast<int>(keep_w), static_cast<int>(keep_h)}, spec.window,
            spec.step);
        b.right = s.frame.w - b.left - need.w;
        b.bottom = s.frame.h - b.top - need.h;
        if (!b.any()) continue;
        if (s.item != Size2{1, 1})
          throw AnalysisError(kn.name() + ": cannot trim a stream delivered in " +
                              to_string(s.item) + " tiles (trim before buffering)");
        auto c = g.in_channel(mis.kernel, port);
        auto inset = std::make_unique<InsetKernel>(
            g.unique_name("inset_" + kn.name() + "_" + spec.name), b, s.frame);
        const std::string iname = inset->name();
        splice_into_channel(g, *c, std::move(inset));
        edits.push_back(AlignmentEdit{kn.name(), iname, b, false});
      }
    } else {
      // Pad: target = union; grow the less-covering streams by zero-padding
      // the data input of the windowed kernel that shrank them (§III-C:
      // "pad evenly around the input to the convolution filter").
      double x0 = std::numeric_limits<double>::infinity(), y0 = x0;
      double x1 = -std::numeric_limits<double>::infinity(), y1 = x1;
      for (const Lattice& l : lats) {
        x0 = std::min(x0, l.first.x);
        y0 = std::min(y0, l.first.y);
        x1 = std::max(x1, l.first.x + l.count.w * pitch.x);
        y1 = std::max(y1, l.first.y + l.count.h * pitch.y);
      }

      for (size_t i = 0; i < mis.input_ports.size(); ++i) {
        const Lattice& l = lats[i];
        const int port = mis.input_ports[i];
        Border grow;
        grow.left = static_cast<int>(to_count((l.first.x - x0) / pitch.x, "pad"));
        grow.top = static_cast<int>(to_count((l.first.y - y0) / pitch.y, "pad"));
        grow.right = static_cast<int>(
            to_count((x1 - (l.first.x + l.count.w * pitch.x)) / pitch.x, "pad"));
        grow.bottom = static_cast<int>(
            to_count((y1 - (l.first.y + l.count.h * pitch.y)) / pitch.y, "pad"));
        if (!grow.any()) continue;

        // Walk upstream to the windowed kernel that introduced the inset.
        ChannelId c = *g.in_channel(mis.kernel, port);
        for (int depth = 0; depth < 32; ++depth) {
          const Channel& ch = g.channel(c);
          const Kernel& prod = g.kernel(ch.src_kernel);
          // Find the producing data method's pixel input with a halo.
          int halo_input = -1;
          for (const MethodDef& m : prod.methods()) {
            if (m.token_triggered()) continue;
            for (int pi : m.inputs) {
              const PortSpec& ps = prod.input(pi).spec;
              if (!ps.replicated && (ps.window.w > ps.step.x || ps.window.h > ps.step.y))
                halo_input = pi;
            }
          }
          if (halo_input >= 0) {
            auto up = g.in_channel(ch.src_kernel, halo_input);
            DataflowResult cur = analyze(g, Strictness::Lenient);
            const StreamInfo& us = cur.channel[static_cast<size_t>(*up)];
            if (us.item != Size2{1, 1})
              throw AnalysisError(prod.name() +
                                  ": cannot pad a non-pixel-granularity input");
            // Pad in the producer's input pixels: one padded input pixel
            // extends the output lattice by one sample per step.
            Border b{grow.left * prod.input(halo_input).spec.step.x,
                     grow.top * prod.input(halo_input).spec.step.y,
                     grow.right * prod.input(halo_input).spec.step.x,
                     grow.bottom * prod.input(halo_input).spec.step.y};
            std::unique_ptr<Kernel> pad;
            if (policy == AlignPolicy::MirrorPad)
              pad = std::make_unique<MirrorPadKernel>(
                  g.unique_name("mirrorpad_" + prod.name()), b, us.frame);
            else
              pad = std::make_unique<PadKernel>(
                  g.unique_name("pad_" + prod.name()), b, us.frame);
            const std::string pname = pad->name();
            splice_into_channel(g, *up, std::move(pad));
            edits.push_back(AlignmentEdit{kn.name(), pname, b, true});
            break;
          }
          // Pass-through producer: keep walking if it has exactly one input.
          if (prod.inputs().size() == 1 && g.in_channel(ch.src_kernel, 0)) {
            c = *g.in_channel(ch.src_kernel, 0);
            continue;
          }
          throw AnalysisError(kn.name() + ": found no windowed producer to pad "
                              "upstream of input '" +
                              kn.input(port).spec.name + "'");
        }
      }
    }
  }
  throw AnalysisError("alignment did not converge after 64 rounds");
}

}  // namespace bpp
