#pragma once
// Per-kernel load model: the compiler's estimate of the steady-state
// resource demand of each kernel, used to size parallelization (§IV) and
// to pack kernels onto cores during multiplexing (§V).
//
// The LoadMap starts from the data-flow analysis of the source graph and
// is kept up to date by the transformation passes: replicas carry 1/P of
// the original data load, and inserted infrastructure kernels (buffers,
// splits, joins, replicates, insets) get analytically computed entries.

#include <vector>

#include "compiler/dataflow.h"
#include "compiler/machine.h"
#include "core/graph.h"

namespace bpp {

struct LoadModel {
  double cycles_per_second = 0.0;      ///< method execution
  double read_words_per_second = 0.0;  ///< input access volume
  double write_words_per_second = 0.0; ///< output access volume
  double firings_per_second = 0.0;     ///< method activations
  long memory_words = 0;               ///< resident state + port buffers

  /// Fraction of one PE this kernel consumes, including I/O access time
  /// and per-activation context-switch overhead — the quantity Fig. 13
  /// decomposes into run/read/write.
  [[nodiscard]] double utilization(const MachineSpec& m) const {
    return (cycles_per_second + read_words_per_second * m.read_cost +
            write_words_per_second * m.write_cost +
            firings_per_second * m.context_switch) /
           m.clock_hz;
  }

  [[nodiscard]] double compute_utilization(const MachineSpec& m) const {
    return cycles_per_second / m.clock_hz;
  }

  /// Scaled copy: a replica handling 1/p of the data stream.
  [[nodiscard]] LoadModel divided(int p) const {
    LoadModel out = *this;
    out.cycles_per_second /= p;
    out.read_words_per_second /= p;
    out.write_words_per_second /= p;
    out.firings_per_second /= p;
    return out;
  }
};

class LoadMap {
 public:
  LoadMap() = default;

  /// Seed from a data-flow analysis of (a prefix of) the graph.
  LoadMap(const Graph& g, const DataflowResult& df) {
    loads_.resize(static_cast<size_t>(g.kernel_count()));
    for (KernelId k = 0; k < g.kernel_count(); ++k) {
      const KernelAnalysis& a = df.kernel[static_cast<size_t>(k)];
      LoadModel& l = loads_[static_cast<size_t>(k)];
      l.cycles_per_second = a.cycles_per_frame * a.rate_hz;
      l.read_words_per_second = a.read_words_per_frame * a.rate_hz;
      l.write_words_per_second = a.write_words_per_frame * a.rate_hz;
      l.firings_per_second = a.firings_per_frame * a.rate_hz;
      l.memory_words = a.memory_words;
    }
  }

  [[nodiscard]] const LoadModel& of(KernelId k) const {
    return loads_.at(static_cast<size_t>(k));
  }
  [[nodiscard]] LoadModel& of(KernelId k) { return loads_.at(static_cast<size_t>(k)); }

  /// Register a load for a newly added kernel (extends the table).
  void set(KernelId k, const LoadModel& l) {
    if (k >= static_cast<int>(loads_.size()))
      loads_.resize(static_cast<size_t>(k) + 1);
    loads_[static_cast<size_t>(k)] = l;
  }

  [[nodiscard]] int size() const { return static_cast<int>(loads_.size()); }

 private:
  std::vector<LoadModel> loads_;
};

/// Analytical load of a kernel that forwards `items_ps` items of
/// `item_words` words each (splits, joins, replicates, insets), with
/// `copies` output copies per item (replicates and overlapping splits).
[[nodiscard]] inline LoadModel forwarding_load(double items_ps, long item_words,
                                               double copies = 1.0,
                                               long memory = 64) {
  LoadModel l;
  l.firings_per_second = items_ps;
  l.cycles_per_second = items_ps * 8.0;  // FSM step; data moves via streamed I/O
  l.read_words_per_second = items_ps * item_words;
  l.write_words_per_second = items_ps * item_words * copies;
  l.memory_words = memory;
  return l;
}

}  // namespace bpp
