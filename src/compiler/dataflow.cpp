#include "compiler/dataflow.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "core/error.h"

namespace bpp {

namespace {

constexpr double kInsetTolerance = 1e-9;

StreamInfo stream_from_spec(const SourceStreamSpec& spec, KernelId origin) {
  StreamInfo s;
  s.frame = spec.frame;
  s.item = spec.granularity;
  s.item_step = {spec.granularity.w, spec.granularity.h};
  s.grid = {spec.frame.w / spec.granularity.w, spec.frame.h / spec.granularity.h};
  s.items_per_frame = s.grid.area();
  s.rate_hz = spec.rate_hz;
  s.pixel_space = spec.pixel_space;
  s.origin = spec.pixel_space ? origin : -1;
  return s;
}

class Analyzer {
 public:
  Analyzer(const Graph& g, Strictness strict) : g_(g), strict_(strict) {
    res_.channel.resize(static_cast<size_t>(g.channel_count()));
    known_.assign(static_cast<size_t>(g.channel_count()), false);
    res_.kernel.resize(static_cast<size_t>(g.kernel_count()));
  }

  DataflowResult run() {
    seed();
    bool changed = true;
    std::vector<bool> done(static_cast<size_t>(g_.kernel_count()), false);
    while (changed) {
      changed = false;
      for (KernelId k = 0; k < g_.kernel_count(); ++k) {
        if (done[static_cast<size_t>(k)] || g_.kernel(k).is_source()) continue;
        if (!inputs_known(k)) continue;
        process(k);
        done[static_cast<size_t>(k)] = true;
        changed = true;
      }
    }
    if (strict_ == Strictness::Strict) {
      if (!res_.misaligned.empty()) {
        const Misalignment& m = res_.misaligned.front();
        throw AnalysisError(g_.kernel(m.kernel).name() +
                            ": unaligned inputs to method '" +
                            g_.kernel(m.kernel).methods()[static_cast<size_t>(m.method)].name +
                            "' (run the alignment pass, paper §III-C)");
      }
      for (int c = 0; c < g_.channel_count(); ++c)
        if (g_.channel(c).alive && !known_[static_cast<size_t>(c)])
          throw AnalysisError("data-flow analysis could not resolve channel into " +
                              g_.kernel(g_.channel(c).dst_kernel).name());
    }
    return std::move(res_);
  }

 private:
  void seed() {
    for (KernelId k = 0; k < g_.kernel_count(); ++k) {
      const Kernel& kn = g_.kernel(k);
      if (kn.is_source()) {
        for (size_t o = 0; o < kn.outputs().size(); ++o) {
          auto spec = kn.source_spec(static_cast<int>(o));
          if (!spec)
            throw AnalysisError(kn.name() + ": source without stream spec");
          assign_output(k, static_cast<int>(o), stream_from_spec(*spec, k));
        }
        KernelAnalysis& a = res_.kernel[static_cast<size_t>(k)];
        a.resolved = true;
        a.rate_hz = kn.source_spec(0) ? kn.source_spec(0)->rate_hz : 0.0;
      } else if (kn.is_feedback()) {
        auto spec = kn.feedback_spec();
        if (!spec)
          throw AnalysisError(kn.name() +
                              ": feedback kernel must declare feedback_spec() "
                              "(paper §III-D)");
        assign_output(k, 0, stream_from_spec(*spec, k));
      }
    }
  }

  bool inputs_known(KernelId k) const {
    for (ChannelId c : g_.in_channels(k))
      if (!known_[static_cast<size_t>(c)]) return false;
    return true;
  }

  void assign_output(KernelId k, int port, const StreamInfo& s) {
    for (ChannelId c : g_.out_channels(k, port)) {
      res_.channel[static_cast<size_t>(c)] = s;
      known_[static_cast<size_t>(c)] = true;
    }
  }

  [[nodiscard]] const StreamInfo* input_stream(KernelId k, int port) const {
    auto c = g_.in_channel(k, port);
    if (!c || !known_[static_cast<size_t>(*c)]) return nullptr;
    return &res_.channel[static_cast<size_t>(*c)];
  }

  void process(KernelId k) {
    const Kernel& kn = g_.kernel(k);
    KernelAnalysis a;
    a.resolved = true;
    bool any_misaligned = false;

    for (size_t mi = 0; mi < kn.methods().size(); ++mi) {
      const MethodDef& m = kn.methods()[mi];
      if (m.inputs.empty()) continue;
      if (m.token_triggered())
        process_token_method(k, static_cast<int>(mi), a);
      else if (!process_data_method(k, static_cast<int>(mi), a))
        any_misaligned = true;
    }

    a.memory_words = kn.state_memory();
    for (const InputPort& p : kn.inputs()) a.memory_words += p.spec.words();
    for (const OutputPort& p : kn.outputs()) a.memory_words += p.spec.words();

    if (any_misaligned) a.resolved = false;
    if (kn.is_feedback()) {
      a.rate_hz = kn.feedback_spec()->rate_hz;
      check_loop_frame(k, kn);
    }
    res_.kernel[static_cast<size_t>(k)] = a;
  }

  /// A feedback kernel re-emits its declared frame, so whatever arrives on
  /// the loop-carried input must have exactly that extent. A mismatch —
  /// typically an alignment trim inserted inside the loop — would make the
  /// kernel wait forever for pixels that never come (or mis-frame extras),
  /// deadlocking execution. Reject it here, in both strictness modes.
  void check_loop_frame(KernelId k, const Kernel& kn) const {
    const auto spec = kn.feedback_spec();
    if (!spec) return;
    for (size_t p = 0; p < kn.inputs().size(); ++p) {
      const StreamInfo* s = input_stream(k, static_cast<int>(p));
      if (s == nullptr || !s->pixel_space) continue;
      if (!(s->frame == spec->frame))
        throw AnalysisError(
            kn.name() + ": loop-carried input is " + to_string(s->frame) +
            " but the declared feedback frame is " + to_string(spec->frame) +
            "; a trimmed or resampled loop cannot converge (paper §III-D)");
    }
  }

  /// Returns false when the method's pixel inputs are misaligned.
  bool process_data_method(KernelId k, int mi, KernelAnalysis& a) {
    const Kernel& kn = g_.kernel(k);
    const MethodDef& m = kn.methods()[static_cast<size_t>(mi)];

    // Iteration counts per input, and the aligned output position of the
    // pixel-space inputs.
    Size2 iters{0, 0};
    double rate = 0.0;
    const StreamInfo* pixel_ref = nullptr;
    int pixel_ref_port = -1;
    bool misaligned = false;
    std::vector<int> pixel_ports;
    std::vector<StreamInfo> pixel_infos;
    // pixel_ref points into pixel_infos; reserve up front so later
    // push_backs cannot reallocate underneath it.
    pixel_infos.reserve(m.inputs.size());

    for (int i : m.inputs) {
      const StreamInfo* s = input_stream(k, i);
      if (!s) throw AnalysisError(kn.name() + ": unresolved input stream");
      const PortSpec& spec = kn.input(i).spec;
      const Size2 it = iteration_count(s->frame, spec.window, spec.step);
      if (!it.positive())
        throw AnalysisError(kn.name() + ": input '" + spec.name + "' window " +
                            to_string(spec.window) + " does not fit frame " +
                            to_string(s->frame));
      if (s->rate_hz > 0.0) {
        if (rate > 0.0 && std::abs(rate - s->rate_hz) > 1e-9)
          throw AnalysisError(kn.name() + ": inputs of method '" + m.name +
                              "' arrive at different rates");
        rate = s->rate_hz;
      }
      if (s->pixel_space) {
        pixel_ports.push_back(i);
        pixel_infos.push_back(*s);
        if (!pixel_ref) {
          pixel_ref = &pixel_infos.back();
          pixel_ref_port = i;
          iters = it;
        } else {
          const PortSpec& rspec = kn.input(pixel_ref_port).spec;
          const StreamInfo& r = pixel_infos.front();
          const Offset2 pos_r{r.inset.x + rspec.offset.x * r.scale.x,
                              r.inset.y + rspec.offset.y * r.scale.y};
          const Offset2 pos_i{s->inset.x + spec.offset.x * s->scale.x,
                              s->inset.y + spec.offset.y * s->scale.y};
          if (it != iters || std::abs(pos_r.x - pos_i.x) > kInsetTolerance ||
              std::abs(pos_r.y - pos_i.y) > kInsetTolerance ||
              std::abs(r.scale.x - s->scale.x) > kInsetTolerance ||
              std::abs(r.scale.y - s->scale.y) > kInsetTolerance)
            misaligned = true;
        }
      } else if (!pixel_ref && !iters.positive()) {
        iters = it;  // parameter-only methods iterate over items
      }
    }

    if (misaligned) {
      Misalignment mis;
      mis.kernel = k;
      mis.method = mi;
      mis.input_ports = pixel_ports;
      mis.inputs = pixel_infos;
      res_.misaligned.push_back(std::move(mis));
      return false;
    }

    // Resource accounting: firings scale with the iteration grid; rate-0
    // parameter streams (coefficients) contribute nothing per frame.
    const long count = rate > 0.0 ? iters.area() : 0;
    a.cycles_per_frame += m.res.cycles * count;
    a.firings_per_frame += count;
    for (int i : m.inputs)
      a.read_words_per_frame += count * kn.input(i).spec.words();
    if (iters.area() > static_cast<long>(a.iterations.area())) a.iterations = iters;
    if (rate > a.rate_hz) a.rate_hz = rate;

    // Output streams.
    const StreamInfo* first_in = input_stream(k, m.inputs.front());
    for (int o : m.outputs) {
      const PortSpec& ospec = kn.output(o).spec;
      StreamInfo out;
      if (auto custom = kn.custom_output_stream(o, *first_in)) {
        out = *custom;
      } else {
        out.item = ospec.window;
        out.item_step = ospec.step;
        out.grid = iters;
        out.items_per_frame = iters.area();
        out.frame = covered_extent(iters, ospec.window, ospec.step);
        out.rate_hz = rate;
        if (pixel_ref) {
          const PortSpec& rspec = kn.input(pixel_ref_port).spec;
          out.pixel_space = true;
          out.origin = pixel_ref->origin;
          out.inset = {pixel_ref->inset.x + rspec.offset.x * pixel_ref->scale.x,
                       pixel_ref->inset.y + rspec.offset.y * pixel_ref->scale.y};
          // Consecutive output items are ospec.step apart in the output
          // stream and rspec.step input pixels apart at the source, so the
          // origin-units-per-pixel scale changes by their ratio.
          out.scale = {pixel_ref->scale.x * rspec.step.x / ospec.step.x,
                       pixel_ref->scale.y * rspec.step.y / ospec.step.y};
        } else {
          out.pixel_space = false;
          out.origin = -1;
        }
      }
      out.rate_hz = rate;
      // User tokens this kernel does not handle are forwarded in order
      // (§II-C), so their declared rates continue downstream.
      if (first_in)
        for (const auto& [cls, r] : first_in->token_rates)
          if (cls >= tok::kFirstUser &&
              kn.token_method_of_input(m.inputs.front(), cls) < 0)
            out.token_rates.emplace_back(cls, r);
      // Declared user-token emissions ride this stream (§II-C): record
      // their rates for downstream handler costing and charge the words.
      for (const TokenEmission& te : m.token_outputs)
        if (te.port == o) {
          out.token_rates.emplace_back(te.cls, te.max_per_frame);
          a.write_words_per_frame += static_cast<long>(te.max_per_frame);
        }
      a.write_words_per_frame +=
          out.items_per_frame * out.item.area() + out.grid.h + 1;
      assign_output(k, o, out);
    }
    return true;
  }

  void process_token_method(KernelId k, int mi, KernelAnalysis& a) {
    const Kernel& kn = g_.kernel(k);
    const MethodDef& m = kn.methods()[static_cast<size_t>(mi)];
    const StreamInfo* in = input_stream(k, m.inputs.front());
    if (!in) throw AnalysisError(kn.name() + ": unresolved token input stream");

    long count = 0;
    switch (*m.trigger_token) {
      case tok::kEndOfFrame:
        count = 1;
        break;
      case tok::kEndOfLine:
        count = in->grid.h;
        break;
      case tok::kEndOfStream:
        count = 0;  // once per run: amortized to zero per frame
        break;
      default:
        // User tokens fire at the emitter's declared maximum rate (§II-C),
        // "so the compiler can account for the resources consumed
        // handling them".
        count = static_cast<long>(
            std::ceil(in->token_rate(*m.trigger_token)));
        break;
    }
    const long charged = in->rate_hz > 0.0 ? count : 0;
    a.cycles_per_frame += m.res.cycles * charged;
    a.firings_per_frame += charged;
    a.read_words_per_frame += charged;  // the token itself

    for (int o : m.outputs) {
      // A port also written by a data-triggered method keeps that stream;
      // the token method merely forwards frame boundaries on it (buffers,
      // inset kernels). Only token-exclusive ports (histogram finishCount)
      // carry a token-paced stream.
      bool data_written = false;
      for (const MethodDef& other : kn.methods())
        if (!other.token_triggered() &&
            std::find(other.outputs.begin(), other.outputs.end(), o) !=
                other.outputs.end())
          data_written = true;
      a.write_words_per_frame += charged * kn.output(o).spec.words() + charged;
      if (data_written) continue;

      const PortSpec& ospec = kn.output(o).spec;
      StreamInfo out;
      out.item = ospec.window;
      out.item_step = ospec.step;
      out.grid = {1, static_cast<int>(std::max<long>(count, 1))};
      out.items_per_frame = std::max<long>(count, 1);
      out.frame = {ospec.window.w,
                   ospec.window.h * static_cast<int>(out.items_per_frame)};
      out.rate_hz = in->rate_hz;
      out.pixel_space = false;
      out.origin = -1;
      assign_output(k, o, out);
    }
  }

  const Graph& g_;
  Strictness strict_;
  DataflowResult res_;
  std::vector<bool> known_;
};

}  // namespace

DataflowResult analyze(const Graph& g, Strictness strict) {
  return Analyzer(g, strict).run();
}

}  // namespace bpp
