#include "compiler/report.h"

#include <iomanip>
#include <sstream>

#include "kernels/buffer.h"

namespace bpp {

GraphCensus census(const Graph& g) {
  GraphCensus c;
  c.total = g.kernel_count();
  for (KernelId k = 0; k < g.kernel_count(); ++k) {
    const Kernel& kn = g.kernel(k);
    if (kn.is_source()) {
      ++c.sources;
    } else if (kn.dot_shape() == "parallelogram") {
      ++c.buffers;
    } else if (kn.dot_shape() == "diamond") {
      ++c.splits_joins;
    } else if (kn.dot_shape() == "invhouse") {
      ++c.insets;
    } else {
      ++c.computation;
    }
  }
  return c;
}

void write_report(const CompiledApp& app, std::ostream& os) {
  const auto fmt = os.flags();
  const auto prec = os.precision();
  const GraphCensus c = census(app.graph);
  os << "compiled application: " << c.total << " kernels ("
     << c.computation << " computation, " << c.buffers << " buffer, "
     << c.splits_joins << " split/join/replicate, " << c.insets << " inset, "
     << c.sources << " source)\n";

  if (!app.alignment_edits.empty()) {
    os << "alignment edits:\n";
    for (const AlignmentEdit& e : app.alignment_edits)
      os << "  " << (e.padded ? "pad " : "trim ") << e.inserted << " at "
         << e.at_kernel << " [" << e.border.left << ',' << e.border.top << ','
         << e.border.right << ',' << e.border.bottom << "]\n";
  }

  if (!app.buffers.empty()) {
    os << "buffers inserted:\n";
    for (const BufferInsertion& b : app.buffers)
      os << "  " << b.name << ' ' << b.annotation << " between " << b.producer
         << " and " << b.consumer << " (" << b.storage_words << " words)\n";
  }

  if (!app.parallelization.factors.empty()) {
    os << "replication factors:\n";
    for (const auto& [name, p] : app.parallelization.factors)
      os << "  " << name << " x" << p << '\n';
  }
  for (const BufferSplitResult& s : app.parallelization.buffer_splits) {
    os << "buffer split: " << s.original << " -> " << s.slices << " slices";
    for (const std::string& a : s.slice_annotations) os << ' ' << a;
    os << " (overlap " << s.overlap_columns << " col)\n";
  }

  const double u1 = estimated_utilization(app.graph, app.loads,
                                          app.options.machine, app.one_to_one);
  const double ug = estimated_utilization(app.graph, app.loads,
                                          app.options.machine, app.mapping);
  os << std::fixed << std::setprecision(1);
  os << "mapping: " << app.one_to_one.cores << " cores 1:1 (est. util "
     << 100 * u1 << "%) -> " << app.mapping.cores << " cores mapped (est. util "
     << 100 * ug << "%)\n";
  os.flags(fmt);
  os.precision(prec);
}

std::string report_string(const CompiledApp& app) {
  std::ostringstream os;
  write_report(app, os);
  return os.str();
}

void write_utilization(const obs::UtilizationReport& u, std::ostream& os) {
  const auto fmt = os.flags();
  const auto prec = os.precision();
  os << std::fixed << std::setprecision(1);
  os << "per-core utilization ("
     << (u.clock == obs::TraceClock::kModeled ? "modeled" : "wall clock")
     << ", " << u.duration_seconds * 1e3 << " ms):\n";
  const double d = u.duration_seconds;
  auto pct = [&](double s) { return d > 0.0 ? 100.0 * s / d : 0.0; };
  for (std::size_t c = 0; c < u.cores.size(); ++c) {
    const obs::CoreBreakdown& b = u.cores[c];
    os << "  core " << c << ": " << pct(b.busy_seconds()) << "% busy"
       << " (run " << pct(b.run_seconds) << "% read " << pct(b.read_seconds)
       << "% write " << pct(b.write_seconds) << "% other "
       << pct(b.other_seconds) << "% idle " << pct(b.idle_seconds)
       << "%), " << b.firings << " firings\n";
  }
  os << "  avg utilization " << 100.0 * u.avg_utilization()
     << "% over firing cores";
  if (u.releases > 0)
    os << "; releases " << u.releases << " (" << u.delayed_releases
       << " delayed, max lag " << u.max_release_lag_seconds * 1e6 << " us)";
  os << '\n';
  os.flags(fmt);
  os.precision(prec);
}

std::string utilization_string(const obs::UtilizationReport& u) {
  std::ostringstream os;
  write_utilization(u, os);
  return os.str();
}

}  // namespace bpp
