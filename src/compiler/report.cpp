#include "compiler/report.h"

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <iomanip>
#include <map>
#include <sstream>
#include <vector>

#include "fault/plan.h"
#include "kernels/buffer.h"

namespace bpp {

void TextTable::column(std::string header, Align align) {
  if (!rows_.empty())
    throw Error("TextTable: declare columns before adding rows");
  cols_.push_back(Col{std::move(header), align});
}

void TextTable::row(std::vector<std::string> cells) {
  if (cells.size() > cols_.size())
    throw Error("TextTable: row has more cells than declared columns");
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

void TextTable::write(std::ostream& os, const std::string& indent) const {
  std::vector<size_t> width(cols_.size(), 0);
  for (size_t c = 0; c < cols_.size(); ++c) width[c] = cols_[c].header.size();
  for (const auto& r : rows_)
    for (size_t c = 0; c < r.size(); ++c)
      width[c] = std::max(width[c], r[c].size());
  auto emit = [&](const std::string& cell, size_t c, bool last) {
    const size_t pad = width[c] - cell.size();
    if (cols_[c].align == Align::Right) os << std::string(pad, ' ');
    os << cell;
    if (!last) {
      if (cols_[c].align == Align::Left) os << std::string(pad, ' ');
      os << "  ";
    }
  };
  os << indent;
  for (size_t c = 0; c < cols_.size(); ++c)
    emit(cols_[c].header, c, c + 1 == cols_.size());
  os << '\n';
  for (const auto& r : rows_) {
    os << indent;
    const size_t n = r.size();
    for (size_t c = 0; c < n; ++c) emit(r[c], c, c + 1 == n);
    os << '\n';
  }
}

void write_comparison(const std::vector<ComparisonRow>& rows,
                      std::ostream& os) {
  os << "predicted vs simulated vs measured:\n";
  TextTable t;
  t.column("quantity", TextTable::Align::Left);
  t.column("predicted");
  t.column("simulated");
  t.column("measured");
  auto cell = [](double v, int precision) {
    return std::isnan(v) ? std::string("-") : TextTable::num(v, precision);
  };
  for (const ComparisonRow& r : rows)
    t.row({r.quantity, cell(r.predicted, r.precision),
           cell(r.simulated, r.precision), cell(r.measured, r.precision)});
  t.write(os);
}

std::string comparison_string(const std::vector<ComparisonRow>& rows) {
  std::ostringstream os;
  write_comparison(rows, os);
  return os.str();
}

GraphCensus census(const Graph& g) {
  GraphCensus c;
  c.total = g.kernel_count();
  for (KernelId k = 0; k < g.kernel_count(); ++k) {
    const Kernel& kn = g.kernel(k);
    if (kn.is_source()) {
      ++c.sources;
    } else if (kn.dot_shape() == "parallelogram") {
      ++c.buffers;
    } else if (kn.dot_shape() == "diamond") {
      ++c.splits_joins;
    } else if (kn.dot_shape() == "invhouse") {
      ++c.insets;
    } else {
      ++c.computation;
    }
  }
  return c;
}

void write_report(const CompiledApp& app, std::ostream& os) {
  const auto fmt = os.flags();
  const auto prec = os.precision();
  const GraphCensus c = census(app.graph);
  os << "compiled application: " << c.total << " kernels ("
     << c.computation << " computation, " << c.buffers << " buffer, "
     << c.splits_joins << " split/join/replicate, " << c.insets << " inset, "
     << c.sources << " source)\n";

  if (!app.alignment_edits.empty()) {
    os << "alignment edits:\n";
    for (const AlignmentEdit& e : app.alignment_edits)
      os << "  " << (e.padded ? "pad " : "trim ") << e.inserted << " at "
         << e.at_kernel << " [" << e.border.left << ',' << e.border.top << ','
         << e.border.right << ',' << e.border.bottom << "]\n";
  }

  if (!app.buffers.empty()) {
    os << "buffers inserted:\n";
    for (const BufferInsertion& b : app.buffers)
      os << "  " << b.name << ' ' << b.annotation << " between " << b.producer
         << " and " << b.consumer << " (" << b.storage_words << " words)\n";
  }

  if (!app.parallelization.factors.empty()) {
    os << "replication factors:\n";
    for (const auto& [name, p] : app.parallelization.factors)
      os << "  " << name << " x" << p << '\n';
  }
  for (const BufferSplitResult& s : app.parallelization.buffer_splits) {
    os << "buffer split: " << s.original << " -> " << s.slices << " slices";
    for (const std::string& a : s.slice_annotations) os << ' ' << a;
    os << " (overlap " << s.overlap_columns << " col)\n";
  }

  const double u1 = estimated_utilization(app.graph, app.loads,
                                          app.options.machine, app.one_to_one);
  const double ug = estimated_utilization(app.graph, app.loads,
                                          app.options.machine, app.mapping);
  os << std::fixed << std::setprecision(1);
  os << "mapping: " << app.one_to_one.cores << " cores 1:1 (est. util "
     << 100 * u1 << "%) -> " << app.mapping.cores << " cores mapped (est. util "
     << 100 * ug << "%)\n";
  os.flags(fmt);
  os.precision(prec);
}

std::string report_string(const CompiledApp& app) {
  std::ostringstream os;
  write_report(app, os);
  return os.str();
}

void write_utilization(const obs::UtilizationReport& u, std::ostream& os) {
  const auto fmt = os.flags();
  const auto prec = os.precision();
  os << std::fixed << std::setprecision(1);
  os << "per-core utilization ("
     << (u.clock == obs::TraceClock::kModeled ? "modeled" : "wall clock")
     << ", " << u.duration_seconds * 1e3 << " ms):\n";
  const double d = u.duration_seconds;
  auto pct = [&](double s) { return d > 0.0 ? 100.0 * s / d : 0.0; };
  for (std::size_t c = 0; c < u.cores.size(); ++c) {
    const obs::CoreBreakdown& b = u.cores[c];
    os << "  core " << c << ": " << pct(b.busy_seconds()) << "% busy"
       << " (run " << pct(b.run_seconds) << "% read " << pct(b.read_seconds)
       << "% write " << pct(b.write_seconds) << "% other "
       << pct(b.other_seconds) << "% idle " << pct(b.idle_seconds)
       << "%), " << b.firings << " firings\n";
  }
  os << "  avg utilization " << 100.0 * u.avg_utilization()
     << "% over firing cores";
  if (u.releases > 0)
    os << "; releases " << u.releases << " (" << u.delayed_releases
       << " delayed, max lag " << u.max_release_lag_seconds * 1e6 << " us)";
  os << '\n';
  os.flags(fmt);
  os.precision(prec);
}

std::string utilization_string(const obs::UtilizationReport& u) {
  std::ostringstream os;
  write_utilization(u, os);
  return os.str();
}

RateValidation validate_rates(const CompiledApp& app,
                              const obs::Trace& trace) {
  RateValidation v;
  const int n = app.graph.kernel_count();

  // Preferred measurement window: an integer number of frame periods,
  // bounded by frame-start instants. Firing patterns are periodic per
  // frame in the steady state, so counting method activations over
  // [start(1), start(last)) divides out intra-frame burstiness exactly —
  // the naive first-to-last-firing span is biased by the idle tail at the
  // end of each frame. Frame 0 is skipped as pipeline fill.
  std::map<std::int64_t, double> frame_start;
  for (const obs::TraceEvent& e : trace.events) {
    if (e.kind != obs::EventKind::kFrameStart || e.method < 0) continue;
    auto [it, fresh] = frame_start.emplace(e.method, e.t0);
    if (!fresh && e.t0 < it->second) it->second = e.t0;
  }
  double w0 = 0.0, w1 = 0.0;
  const bool windowed = frame_start.size() >= 3;
  if (windowed) {
    w0 = std::next(frame_start.begin())->second;
    w1 = frame_start.rbegin()->second;
  }

  // Per-kernel method-activation counts (token forwards, method -1, are
  // scheduling noise the data-flow analysis does not count as firings):
  // inside the window, plus first/last/penultimate start times for the
  // span fallback when fewer than three frames were tracked.
  std::vector<long> in_window(static_cast<size_t>(n), 0);
  std::vector<long> count(static_cast<size_t>(n), 0);
  std::vector<double> first(static_cast<size_t>(n), 0.0);
  std::vector<double> last(static_cast<size_t>(n), 0.0);
  std::vector<double> prev(static_cast<size_t>(n), 0.0);
  for (const obs::TraceEvent& e : trace.events) {
    if (e.kind != obs::EventKind::kFiring) continue;
    if (e.kernel < 0 || e.kernel >= n || e.method < 0) continue;
    const auto k = static_cast<size_t>(e.kernel);
    if (count[k] == 0) first[k] = e.t0;
    prev[k] = last[k];
    last[k] = e.t0;
    ++count[k];
    if (windowed && e.t0 >= w0 && e.t0 < w1) ++in_window[k];
  }

  for (KernelId k = 0; k < n; ++k) {
    const Kernel& kn = app.graph.kernel(k);
    if (kn.is_source()) continue;
    const auto ks = static_cast<size_t>(k);
    if (count[ks] == 0) continue;
    RateRow row;
    row.kernel = k;
    row.name = kn.name();
    if (k < app.loads.size())
      row.predicted_hz = app.loads.of(k).firings_per_second;
    if (windowed && w1 > w0 && in_window[ks] > 0) {
      row.firings = in_window[ks];
      row.measured = true;
      row.measured_hz = static_cast<double>(in_window[ks]) / (w1 - w0);
    } else {
      // Fallback: steady-state span of the firing start times, dropping
      // the final firing (the end-of-stream tail).
      row.firings = count[ks] - 1;
      if (row.firings >= 2 && prev[ks] > first[ks]) {
        row.measured = true;
        row.measured_hz =
            static_cast<double>(row.firings - 1) / (prev[ks] - first[ks]);
      }
    }
    v.rows.push_back(std::move(row));
  }
  return v;
}

void write_rate_validation(const RateValidation& v, std::ostream& os) {
  os << "firing rates, predicted vs measured:\n";
  TextTable t;
  t.column("kernel", TextTable::Align::Left);
  t.column("predicted Hz");
  t.column("measured Hz");
  t.column("error");
  t.column("firings");
  bool any_off = false;
  for (const RateRow& r : v.rows) {
    std::string measured = "n/a";
    std::string error;
    if (r.measured) {
      measured = TextTable::num(r.measured_hz, 1);
      if (r.predicted_hz > 0.0) {
        error = TextTable::num(100.0 * r.relative_error(), 2) + "%";
        if (r.relative_error() > 0.01) any_off = true;
      }
    }
    t.row({r.name, TextTable::num(r.predicted_hz, 1), std::move(measured),
           std::move(error), std::to_string(r.firings)});
  }
  t.write(os);
  os << (any_off ? "  WARNING: at least one kernel deviates >1% from the "
                   "compiled rate\n"
                 : "  all measured kernels within 1% of compiled rates\n");
}

std::string rate_validation_string(const RateValidation& v) {
  std::ostringstream os;
  write_rate_validation(v, os);
  return os.str();
}

void write_fault_binding(const fault::FaultPlan& plan, const Graph& g,
                         std::ostream& os) {
  os << "fault plan: seed " << plan.seed << ", " << plan.kernels.size()
     << " kernel rule(s), " << plan.cores.size() << " core rule(s), "
     << plan.delivery.size() << " delivery rule(s)\n";
  std::vector<bool> kernel_hit(plan.kernels.size(), false);
  std::vector<bool> delivery_hit(plan.delivery.size(), false);
  for (KernelId k = 0; k < g.kernel_count(); ++k) {
    const std::string& name = g.kernel(k).name();
    int krule = -1;
    for (size_t i = 0; i < plan.kernels.size(); ++i)
      if (fault::glob_match(plan.kernels[i].match, name)) {
        krule = static_cast<int>(i);
        kernel_hit[i] = true;
        break;
      }
    int drule = -1;
    for (size_t i = 0; i < plan.delivery.size(); ++i)
      if (fault::glob_match(plan.delivery[i].match, name)) {
        drule = static_cast<int>(i);
        delivery_hit[i] = true;
        break;
      }
    if (krule < 0 && drule < 0) continue;
    os << "  " << std::left << std::setw(28) << name << std::right;
    if (krule >= 0) {
      const fault::KernelRule& r = plan.kernels[static_cast<size_t>(krule)];
      os << " timing '" << r.match << "'";
      char buf[120];
      if (r.jitter > 0.0) {
        std::snprintf(buf, sizeof buf, " jitter %.0f%%", r.jitter * 100.0);
        os << buf;
      }
      if (r.overrun_prob > 0.0) {
        std::snprintf(buf, sizeof buf, " overrun %.0f%%x%.1f",
                      r.overrun_prob * 100.0, r.overrun_factor);
        os << buf;
      }
      if (r.stall_prob > 0.0) {
        std::snprintf(buf, sizeof buf, " stall %.0f%%@%.0fus",
                      r.stall_prob * 100.0, r.stall_seconds * 1e6);
        os << buf;
      }
    }
    if (drule >= 0) {
      const fault::DeliveryRule& r = plan.delivery[static_cast<size_t>(drule)];
      char buf[120];
      std::snprintf(buf, sizeof buf, " delivery '%s' %.0f%%@%.0fus",
                    r.match.c_str(), r.prob * 100.0, r.delay_seconds * 1e6);
      os << buf;
    }
    os << '\n';
  }
  for (const fault::CoreRule& r : plan.cores)
    os << "  core " << r.core << " throttled " << r.throttle << "x\n";
  for (size_t i = 0; i < plan.kernels.size(); ++i)
    if (!kernel_hit[i])
      os << "  WARNING: kernel rule '" << plan.kernels[i].match
         << "' matches no kernel\n";
  for (size_t i = 0; i < plan.delivery.size(); ++i)
    if (!delivery_hit[i])
      os << "  WARNING: delivery rule '" << plan.delivery[i].match
         << "' matches no kernel\n";
}

std::string fault_binding_string(const fault::FaultPlan& plan,
                                 const Graph& g) {
  std::ostringstream os;
  write_fault_binding(plan, g, os);
  return os.str();
}

}  // namespace bpp
