#pragma once
// Trimming and padding (paper §III-C, Fig. 8).
//
// When differently-haloed streams meet at a multi-input kernel the
// compiler overlays their extents in origin coordinates and makes them
// consistent:
//  * Trim: intersect the extents and insert InsetKernels that discard the
//    excess of the larger streams (Fig. 3's inverted house).
//  * Pad: take the union and zero-pad the *input of the windowed kernel*
//    that produced the more-inset stream, growing its output (the paper's
//    "pad evenly around the input to the convolution filter").
// The pad-vs-trim choice affects the result and so belongs to the
// programmer; the sizing and insertion are automatic.

#include <string>
#include <vector>

#include "compiler/dataflow.h"
#include "core/graph.h"

namespace bpp {

enum class AlignPolicy {
  Trim,       ///< discard the excess of the larger streams (Fig. 3)
  Pad,        ///< zero-pad the shrinking filter's input
  MirrorPad,  ///< mirror-pad the shrinking filter's input (§III-C)
};

struct AlignmentEdit {
  std::string at_kernel;       ///< kernel whose inputs were misaligned
  std::string inserted;        ///< name of the inset/pad kernel added
  Border border;
  bool padded = false;
};

/// Repeatedly analyzes the graph (leniently) and fixes the first
/// misalignment until none remain. Returns the edits made.
std::vector<AlignmentEdit> align(Graph& g, AlignPolicy policy = AlignPolicy::Trim);

/// Splice a single-input/single-output kernel into channel `c`.
/// Returns the id of the inserted kernel.
KernelId splice_into_channel(Graph& g, ChannelId c, std::unique_ptr<Kernel> k,
                             const std::string& in_port = "in",
                             const std::string& out_port = "out");

}  // namespace bpp
