#pragma once
// Buffer column-splitting (paper §IV-C, Fig. 10).
//
// Buffers are rarely CPU-bound but are limited by per-PE storage, so they
// are parallelized by splitting column-wise rather than round-robin (which
// would reorder the data). Output window-columns are divided among B
// slices; each slice's input column range extends past its window range by
// the window halo, so the overlapping columns are replicated to both
// neighbors by a ColumnRanges split FSM. A RunLength join restores scan
// order.

#include <string>
#include <vector>

#include "compiler/dataflow.h"
#include "compiler/loads.h"
#include "core/graph.h"

namespace bpp {

struct BufferSplitResult {
  std::string original;
  int slices = 1;
  std::vector<std::string> slice_annotations;  ///< "[26x6]", "[25x6]", ...
  std::vector<std::pair<int, int>> input_ranges;  ///< per-slice input columns
  int overlap_columns = 0;  ///< columns replicated between adjacent slices
};

/// Compute the per-slice window-column boundaries for it_w output columns
/// over B slices (balanced, in order).
[[nodiscard]] std::vector<int> slice_boundaries(int it_w, int slices);

/// Split buffer kernel `k` (which must be a BufferKernel with 1x1 input
/// granularity) into `slices` column slices. Rewires the graph, updates
/// the load map, and returns a description of the split.
BufferSplitResult split_buffer(Graph& g, DataflowResult& df, LoadMap& loads,
                               KernelId k, int slices);

}  // namespace bpp
