#pragma once
// The compiler driver: validate -> align (§III-C) -> analyze (§III-A) ->
// buffer (§III-B) -> parallelize (§IV) -> map/multiplex (§V).
//
// compile() consumes an application graph and produces everything the
// execution engines need: the transformed graph, the kernel-to-core
// mapping, and the analysis/load bookkeeping, plus a record of every edit
// for reports and tests.

#include <string>
#include <vector>

#include "compiler/alignment.h"
#include "compiler/buffering.h"
#include "compiler/dataflow.h"
#include "compiler/loads.h"
#include "compiler/machine.h"
#include "compiler/multiplex.h"
#include "compiler/parallelize.h"
#include "core/graph.h"

namespace bpp {

struct CompileOptions {
  MachineSpec machine;
  AlignPolicy align_policy = AlignPolicy::Trim;
  /// Greedy time-multiplexing (§V); with false, the 1:1 mapping is used.
  bool multiplex = true;
  /// Skip parallelization (analysis/buffering only) — for functional runs
  /// of the untransformed application.
  bool parallelize = true;
  /// Fig. 9 extension: parallelize windowed kernels by reuse-linked buffer
  /// stripes instead of round-robin window distribution.
  bool reuse_opt = false;
};

struct CompiledApp {
  Graph graph;
  DataflowResult analysis;  ///< strict post-buffering analysis (extended)
  LoadMap loads;
  std::vector<AlignmentEdit> alignment_edits;
  std::vector<BufferInsertion> buffers;
  ParallelizationResult parallelization;
  Mapping one_to_one;  ///< Fig. 12(a)
  Mapping mapping;     ///< the chosen mapping (greedy unless disabled)
  CompileOptions options;
};

[[nodiscard]] CompiledApp compile(Graph g, CompileOptions options = {});

}  // namespace bpp
