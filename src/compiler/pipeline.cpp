#include "compiler/pipeline.h"

#include "core/validation.h"

namespace bpp {

CompiledApp compile(Graph g, CompileOptions options) {
  validate_or_throw(g);

  CompiledApp app;
  app.options = options;

  // §III-C: make multi-input kernels consistent before anything else.
  app.alignment_edits = align(g, options.align_policy);

  // §III-A then §III-B: analyze, buffer, re-analyze with buffers in place.
  DataflowResult df = analyze(g, Strictness::Strict);
  app.buffers = insert_buffers(g, df);
  df = analyze(g, Strictness::Strict);

  LoadMap loads(g, df);

  // §IV: meet the input rate.
  if (options.parallelize)
    app.parallelization = parallelize(
        g, df, loads, ParallelizeOptions{options.machine, options.reuse_opt});

  validate_or_throw(g);

  // §V: kernel-to-core mapping.
  app.one_to_one = map_one_to_one(g);
  app.mapping = options.multiplex ? map_greedy(g, loads, options.machine)
                                  : app.one_to_one;

  app.graph = std::move(g);
  app.analysis = std::move(df);
  app.loads = std::move(loads);
  return app;
}

}  // namespace bpp
