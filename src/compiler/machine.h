#pragma once
// Machine model: the target many-core processor (paper §IV).
//
// The compiler sizes parallelization from the resources one processing
// element (PE) provides — compute cycles per second and data memory — and
// the timing model charges per-word costs for kernel input/output access
// (the read/write components of Fig. 13) plus a context-switch overhead
// when several kernels time-multiplex one core (§V).

#include <cmath>

namespace bpp {

struct MachineSpec {
  double clock_hz = 20e6;   ///< PE compute throughput, cycles/second
  long mem_words = 512;     ///< PE-local data memory, words
  double read_cost = 0.2;   ///< cycles per word streamed from an input
  double write_cost = 0.2;  ///< cycles per word streamed to an output
  double context_switch = 2.0;  ///< cycles per method activation
  /// Headroom when sizing parallelism: a kernel is replicated until its
  /// per-instance utilization drops below this bound.
  double target_utilization = 0.9;

  /// Seconds per cycle.
  [[nodiscard]] double cycle_seconds() const { return 1.0 / clock_hz; }
};

/// Pre-tuned machine configurations used by the benchmark suite.
namespace machines {

/// The default embedded many-core PE used for the Fig. 11-13 experiments.
[[nodiscard]] inline MachineSpec embedded() { return MachineSpec{}; }

/// A memory-poor PE that forces buffer column-splitting (§IV-C).
[[nodiscard]] inline MachineSpec small_memory() {
  MachineSpec m;
  m.mem_words = 160;
  return m;
}

/// A generous PE on which nothing needs parallelizing (functional runs).
[[nodiscard]] inline MachineSpec roomy() {
  MachineSpec m;
  m.clock_hz = 1e9;
  m.mem_words = 1L << 22;
  return m;
}

}  // namespace machines

}  // namespace bpp
