#include "compiler/parallelize.h"

#include <algorithm>
#include <cmath>

#include "compiler/buffer_split.h"
#include "kernels/buffer.h"
#include "kernels/split_join.h"

namespace bpp {

int required_parallelism(const LoadModel& load, const MachineSpec& m) {
  const double u = load.utilization(m);
  if (u <= 0.0) return 1;
  return std::max(1, static_cast<int>(std::ceil(u / m.target_utilization)));
}

namespace {

struct ReplicaSet {
  std::vector<KernelId> reps;
  int factor = 1;
  /// Lazily created round-robin join per original output port.
  std::map<int, KernelId> joins;
  /// Non-empty when reuse-striped (Fig. 9): output items per replica per
  /// line; joins become run-length collectors fed by the per-replica FIFOs.
  std::vector<int> stripe_runs;
  std::vector<KernelId> stripe_fifos;
};

class Parallelizer {
 public:
  Parallelizer(Graph& g, DataflowResult& df, LoadMap& loads,
               const ParallelizeOptions& opt)
      : g_(g), df_(df), loads_(loads), m_(opt.machine), opt_(opt) {}

  ParallelizationResult run() {
    decide_factors();
    const std::vector<KernelId> order = g_.topo_order();
    for (KernelId k : order) {
      if (g_.kernel(k).is_source()) continue;
      const int p = factor_[static_cast<size_t>(k)];
      if (p > 1 && g_.kernel(k).parallel_kind() == ParKind::Custom) {
        // The buffer's producer may itself have been replicated: route
        // through its join before splitting the buffer's input stream.
        fix_inputs(k);
        res_.buffer_splits.push_back(split_buffer(g_, df_, loads_, k, p));
        res_.factors[res_.buffer_splits.back().original] = p;
      } else if (p > 1) {
        replicate(k, p);
        // factors recorded under the original (pre-rename) name.
      } else {
        fix_inputs(k);
      }
    }
    return std::move(res_);
  }

 private:
  // ---- Phase 1: replication factors ----

  void decide_factors() {
    const int n = g_.kernel_count();
    factor_.assign(static_cast<size_t>(n), 1);
    for (KernelId k = 0; k < n; ++k) {
      const Kernel& kn = g_.kernel(k);
      if (kn.is_source()) continue;
      if (kn.parallel_kind() == ParKind::Serial) {
        // A serial kernel that alone exceeds one PE makes the real-time
        // rate unattainable — surface it rather than discover a stall in
        // simulation.
        const double u = loads_.of(k).utilization(m_);
        if (u > 1.0)
          res_.warnings.push_back(
              kn.name() + ": serial kernel needs " +
              std::to_string(u) +
              "x one PE; the input rate is infeasible on this machine");
        continue;
      }
      int p = required_parallelism(loads_.of(k), m_);
      if (kn.parallel_kind() == ParKind::Custom) {
        // Buffers: storage pressure also forces splitting (§IV-C).
        const long words = loads_.of(k).memory_words;
        const int by_mem =
            static_cast<int>((words + m_.mem_words - 1) / m_.mem_words);
        p = std::max(p, by_mem);
      }
      factor_[static_cast<size_t>(k)] = p;
    }
    // Data-dependency edges cap the sink at the source (§IV-B). Iterate to
    // a fixpoint so dependency chains (pipelines) propagate.
    const std::vector<int> demand = factor_;
    bool changed = true;
    int guard = 0;
    while (changed && guard++ < n + 2) {
      changed = false;
      for (const DepEdge& e : g_.dependencies()) {
        const int cap = factor_[static_cast<size_t>(e.src)];
        if (factor_[static_cast<size_t>(e.dst)] > cap) {
          factor_[static_cast<size_t>(e.dst)] = cap;
          changed = true;
        }
      }
    }
    for (KernelId k = 0; k < n; ++k)
      if (factor_[static_cast<size_t>(k)] < demand[static_cast<size_t>(k)])
        res_.warnings.push_back(
            g_.kernel(k).name() + ": dependency edge caps parallelism at " +
            std::to_string(factor_[static_cast<size_t>(k)]) + " but " +
            std::to_string(demand[static_cast<size_t>(k)]) +
            " instances are needed; the rate may be infeasible");
  }

  [[nodiscard]] bool has_dep_edge(KernelId src, KernelId dst) const {
    for (const DepEdge& e : g_.dependencies())
      if (e.src == src && e.dst == dst) return true;
    return false;
  }

  // ---- Phase 2 helpers ----

  void copy_stream(ChannelId from, ChannelId to) {
    df_.channel.resize(static_cast<size_t>(g_.channel_count()));
    df_.channel[static_cast<size_t>(to)] = df_.channel[static_cast<size_t>(from)];
  }

  /// Single-stream producer endpoint for an original channel: the producer
  /// itself, or the lazy join over its replicas.
  [[nodiscard]] std::pair<KernelId, int> producer_proxy(ChannelId c) {
    const Channel& ch = g_.channel(c);
    auto it = sets_.find(ch.src_kernel);
    if (it == sets_.end()) return {ch.src_kernel, ch.src_port};
    ReplicaSet& rs = it->second;
    auto jit = rs.joins.find(ch.src_port);
    if (jit == rs.joins.end()) {
      const StreamInfo& s = df_.channel[static_cast<size_t>(c)];
      std::unique_ptr<JoinKernel> join;
      if (!rs.stripe_runs.empty()) {
        // Fig. 9 striping: collect each replica's column run per line.
        join = std::make_unique<JoinKernel>(
            g_.unique_name(base_name(ch.src_kernel) + "_join"), rs.stripe_runs,
            s.item, s.item_step);
      } else {
        join = std::make_unique<JoinKernel>(
            g_.unique_name(base_name(ch.src_kernel) + "_join"), rs.factor,
            s.item, s.item_step);
      }
      const KernelId jid = g_.id_of(g_.add_kernel(std::move(join)));
      for (int j = 0; j < rs.factor; ++j) {
        const KernelId feed = rs.stripe_fifos.empty()
                                  ? rs.reps[static_cast<size_t>(j)]
                                  : rs.stripe_fifos[static_cast<size_t>(j)];
        const int feed_port = rs.stripe_fifos.empty() ? ch.src_port : 0;
        copy_stream(c, g_.connect(feed, feed_port, jid, j));
      }
      loads_.set(jid, forwarding_load(items_ps(c), item_words(c)));
      ++res_.joins_inserted;
      rs.joins[ch.src_port] = jid;
      jit = rs.joins.find(ch.src_port);
    }
    return {jit->second, 0};
  }

  [[nodiscard]] std::string base_name(KernelId k) const {
    std::string n = g_.kernel(k).name();
    const size_t us = n.rfind("_0");
    if (us != std::string::npos && us == n.size() - 2) n = n.substr(0, us);
    return n;
  }

  [[nodiscard]] double items_ps(ChannelId c) const {
    const StreamInfo& s = df_.channel[static_cast<size_t>(c)];
    return static_cast<double>(s.items_per_frame) * s.rate_hz;
  }
  [[nodiscard]] long item_words(ChannelId c) const {
    return df_.channel[static_cast<size_t>(c)].item.area();
  }

  /// Rewire input `port` of a non-replicated kernel whose producer may
  /// have been replicated.
  void fix_inputs(KernelId k) {
    Kernel& kn = g_.kernel(k);
    for (size_t i = 0; i < kn.inputs().size(); ++i) {
      auto c = g_.in_channel(k, static_cast<int>(i));
      if (!c) continue;
      const Channel ch = g_.channel(*c);
      auto it = sets_.find(ch.src_kernel);
      if (it == sets_.end()) continue;
      auto [src, sport] = producer_proxy(*c);
      g_.disconnect(*c);
      copy_stream(*c, g_.connect(src, sport, k, static_cast<int>(i)));
      kn.on_upstream_parallelized(static_cast<int>(i), it->second.factor);
    }
  }

  /// Buffer feeding input `i` of `k` that qualifies for Fig. 9 striping,
  /// or -1: single data input, 1x1-granularity buffer with k as its only
  /// consumer, and a single 1x1 output on k.
  [[nodiscard]] KernelId stripe_buffer_of(KernelId k) const {
    if (!opt_.reuse_opt) return -1;
    const Kernel& kn = g_.kernel(k);
    if (kn.outputs().size() != 1 ||
        kn.output(0).spec.window != Size2{1, 1})
      return -1;
    int data_input = -1;
    for (size_t i = 0; i < kn.inputs().size(); ++i) {
      if (kn.input(static_cast<int>(i)).spec.replicated) continue;
      if (data_input >= 0) return -1;  // more than one data input
      data_input = static_cast<int>(i);
    }
    if (data_input < 0) return -1;
    auto c = g_.in_channel(k, data_input);
    if (!c) return -1;
    const Channel& ch = g_.channel(*c);
    if (sets_.count(ch.src_kernel)) return -1;  // producer already replicated
    const auto* buf = dynamic_cast<const BufferKernel*>(&g_.kernel(ch.src_kernel));
    if (!buf || buf->in_granularity() != Size2{1, 1}) return -1;
    if (g_.out_channels(ch.src_kernel).size() != 1) return -1;
    return ch.src_kernel;
  }

  /// Fig. 9(c): split the feeding buffer into reuse-linked column-stripe
  /// slices, one per replica, with decoupling output FIFOs before the
  /// run-length join.
  void stripe(KernelId k, int p, KernelId buf_id) {
    Kernel& orig = g_.kernel(k);
    const std::string base = orig.name();
    auto& buf = static_cast<BufferKernel&>(g_.kernel(buf_id));
    const Size2 frame = buf.frame();
    const Size2 win = buf.out_window();
    const Step2 step = buf.out_step();
    const Size2 iters = iteration_count(frame, win, step);
    p = std::min(p, iters.w);
    res_.factors[base] = p;
    ++res_.reuse_striped;

    ReplicaSet rs;
    rs.factor = p;
    orig.set_name(base + "_0");
    rs.reps.push_back(k);
    const LoadModel per_rep = loads_.of(k).divided(p);
    loads_.of(k) = per_rep;
    for (int j = 1; j < p; ++j) {
      auto clone = orig.clone();
      clone->set_name(base + "_" + std::to_string(j));
      clone->init();
      const KernelId id = g_.id_of(g_.add_kernel(std::move(clone)));
      rs.reps.push_back(id);
      loads_.set(id, per_rep);
    }

    // Stripe geometry (same arithmetic as §IV-C buffer splitting).
    const std::vector<int> w = slice_boundaries(iters.w, p);
    std::vector<std::pair<int, int>> ranges;
    for (int i = 0; i < p; ++i) {
      rs.stripe_runs.push_back(w[static_cast<size_t>(i) + 1] -
                               w[static_cast<size_t>(i)]);
      ranges.emplace_back(w[static_cast<size_t>(i)] * step.x,
                          (w[static_cast<size_t>(i) + 1] - 1) * step.x + win.w);
    }

    // Buffer slices, the original as slice 0, each a reuse link.
    const ChannelId buf_in = *g_.in_channel(buf_id, 0);
    const Channel buf_in_ch = g_.channel(buf_in);
    const ChannelId buf_out = g_.out_channels(buf_id).front();
    const double rate = df_.channel[static_cast<size_t>(buf_in)].rate_hz;
    const std::string buf_base = buf.name();
    std::vector<KernelId> slices;
    buf.set_name(buf_base + "_0");
    buf.reshape({ranges[0].second - ranges[0].first, frame.h});
    buf.set_reuse_link(true);
    slices.push_back(buf_id);
    for (int i = 1; i < p; ++i) {
      auto s = std::make_unique<BufferKernel>(
          buf_base + "_" + std::to_string(i), Size2{1, 1}, win, step,
          Size2{ranges[static_cast<size_t>(i)].second -
                    ranges[static_cast<size_t>(i)].first,
                frame.h});
      s->set_reuse_link(true);
      slices.push_back(g_.id_of(g_.add_kernel(std::move(s))));
    }

    // Column-range split in front (overlap columns replicated, Fig. 10).
    auto split = std::make_unique<SplitKernel>(
        g_.unique_name(buf_base + "_split"), ranges, frame.w, Size2{1, 1},
        Step2{1, 1});
    const KernelId split_id = g_.id_of(g_.add_kernel(std::move(split)));
    g_.disconnect(buf_in);
    g_.disconnect(buf_out);
    copy_stream(buf_in, g_.connect(buf_in_ch.src_kernel, buf_in_ch.src_port,
                                   split_id, 0));
    ++res_.splits_inserted;

    const int data_in = [&] {
      for (size_t i = 0; i < orig.inputs().size(); ++i)
        if (!orig.input(static_cast<int>(i)).spec.replicated)
          return static_cast<int>(i);
      return 0;
    }();

    double total_cols = 0;
    for (const auto& [a, b] : ranges) total_cols += b - a;
    const double pixel_ps = static_cast<double>(frame.area()) * rate;
    loads_.set(split_id, forwarding_load(pixel_ps, 1, total_cols / frame.w));

    for (int i = 0; i < p; ++i) {
      copy_stream(buf_in, g_.connect(split_id, i, slices[static_cast<size_t>(i)],
                                     0));
      copy_stream(buf_out,
                  g_.connect(slices[static_cast<size_t>(i)], 0,
                             rs.reps[static_cast<size_t>(i)], data_in));
      // Decoupling output FIFO (Fig. 9(c): "sufficient output buffering").
      auto fifo = std::make_unique<BufferKernel>(
          g_.unique_name(base + "_obuf_" + std::to_string(i)), Size2{1, 1},
          Size2{1, 1}, Step2{1, 1},
          Size2{rs.stripe_runs[static_cast<size_t>(i)], iters.h});
      const KernelId fid = g_.id_of(g_.add_kernel(std::move(fifo)));
      rs.stripe_fifos.push_back(fid);
      const ChannelId oc =
          g_.connect(rs.reps[static_cast<size_t>(i)], 0, fid, 0);
      df_.channel.resize(static_cast<size_t>(g_.channel_count()));
      StreamInfo os;
      os.item = {1, 1};
      os.frame = {rs.stripe_runs[static_cast<size_t>(i)], iters.h};
      os.items_per_frame =
          static_cast<long>(rs.stripe_runs[static_cast<size_t>(i)]) * iters.h;
      os.rate_hz = rate;
      df_.channel[static_cast<size_t>(oc)] = os;

      // Slice loads: reuse links transfer fresh columns only.
      auto& sb = static_cast<BufferKernel&>(g_.kernel(slices[static_cast<size_t>(i)]));
      const auto& [a, b] = ranges[static_cast<size_t>(i)];
      LoadModel l;
      const double in_items = static_cast<double>(b - a) * frame.h * rate;
      const double out_items =
          static_cast<double>(rs.stripe_runs[static_cast<size_t>(i)]) * iters.h *
          rate;
      l.firings_per_second = in_items;
      l.cycles_per_second = in_items * 6.0;
      l.read_words_per_second = in_items;
      l.write_words_per_second =
          out_items * win.h * step.x + iters.h * rate * win.area();
      l.memory_words = sb.storage_words() + 16;
      loads_.set(slices[static_cast<size_t>(i)], l);
      loads_.set(fid, forwarding_load(out_items, 1));
    }

    // Remaining (replicated parameter) inputs of k: standard replication.
    for (size_t i = 0; i < orig.inputs().size(); ++i) {
      if (static_cast<int>(i) == data_in) continue;
      auto c = g_.in_channel(k, static_cast<int>(i));
      if (!c) continue;
      const Channel ch = g_.channel(*c);
      const StreamInfo s = df_.channel[static_cast<size_t>(*c)];
      auto [src, sport] = producer_proxy(*c);
      g_.disconnect(*c);
      auto rep = std::make_unique<ReplicateKernel>(
          g_.unique_name(base + "_" + orig.input(static_cast<int>(i)).spec.name +
                         "_rep"),
          p, s.item, s.item_step);
      const KernelId rid = g_.id_of(g_.add_kernel(std::move(rep)));
      loads_.set(rid, forwarding_load(items_ps(*c), item_words(*c),
                                      static_cast<double>(p)));
      ++res_.replicates_inserted;
      copy_stream(*c, g_.connect(src, sport, rid, 0));
      for (int j = 0; j < p; ++j)
        copy_stream(*c, g_.connect(rid, j, rs.reps[static_cast<size_t>(j)],
                                   static_cast<int>(i)));
      (void)ch;
    }

    sets_.emplace(k, std::move(rs));
  }

  void replicate(KernelId k, int p) {
    const KernelId stripe_buf = stripe_buffer_of(k);
    if (stripe_buf >= 0) {
      stripe(k, p, stripe_buf);
      return;
    }

    Kernel& orig = g_.kernel(k);
    const std::string base = orig.name();
    res_.factors[base] = p;

    // Build the replica set: the original becomes instance 0.
    ReplicaSet rs;
    rs.factor = p;
    orig.set_name(base + "_0");
    rs.reps.push_back(k);
    const LoadModel per_rep = loads_.of(k).divided(p);
    loads_.of(k) = per_rep;
    for (int j = 1; j < p; ++j) {
      auto clone = orig.clone();
      clone->set_name(base + "_" + std::to_string(j));
      clone->init();
      const KernelId id = g_.id_of(g_.add_kernel(std::move(clone)));
      rs.reps.push_back(id);
      loads_.set(id, per_rep);
    }

    // Inputs: lane-connect dependency-edged equal-parallelism producers;
    // replicate parameter inputs; round-robin split everything else.
    for (size_t i = 0; i < orig.inputs().size(); ++i) {
      const ChannelId c = *g_.in_channel(k, static_cast<int>(i));
      const Channel ch = g_.channel(c);
      const PortSpec ispec = orig.input(static_cast<int>(i)).spec;
      const StreamInfo s = df_.channel[static_cast<size_t>(c)];

      auto pit = sets_.find(ch.src_kernel);
      const bool lane = !ispec.replicated && pit != sets_.end() &&
                        pit->second.factor == p &&
                        has_dep_edge(ch.src_kernel, k);
      g_.disconnect(c);
      if (lane) {
        for (int j = 0; j < p; ++j)
          copy_stream(c, g_.connect(pit->second.reps[static_cast<size_t>(j)],
                                    ch.src_port, rs.reps[static_cast<size_t>(j)],
                                    static_cast<int>(i)));
        ++res_.lane_connections;
        continue;
      }

      auto [src, sport] = producer_proxy(c);
      KernelId dist;
      if (ispec.replicated) {
        auto rep = std::make_unique<ReplicateKernel>(
            g_.unique_name(base + "_" + ispec.name + "_rep"), p, s.item,
            s.item_step);
        dist = g_.id_of(g_.add_kernel(std::move(rep)));
        loads_.set(dist, forwarding_load(items_ps(c), item_words(c), p));
        ++res_.replicates_inserted;
      } else {
        auto split = std::make_unique<SplitKernel>(
            g_.unique_name(base + "_" + ispec.name + "_split"), p, s.item,
            s.item_step);
        dist = g_.id_of(g_.add_kernel(std::move(split)));
        loads_.set(dist, forwarding_load(items_ps(c), item_words(c)));
        ++res_.splits_inserted;
      }
      copy_stream(c, g_.connect(src, sport, dist, 0));
      for (int j = 0; j < p; ++j)
        copy_stream(c, g_.connect(dist, j, rs.reps[static_cast<size_t>(j)],
                                  static_cast<int>(i)));
    }

    sets_.emplace(k, std::move(rs));
  }

  Graph& g_;
  DataflowResult& df_;
  LoadMap& loads_;
  MachineSpec m_;
  ParallelizeOptions opt_;
  std::vector<int> factor_;
  std::map<KernelId, ReplicaSet> sets_;
  ParallelizationResult res_;
};

}  // namespace

ParallelizationResult parallelize(Graph& g, DataflowResult& df, LoadMap& loads,
                                  const MachineSpec& m) {
  return parallelize(g, df, loads, ParallelizeOptions{m, false});
}

ParallelizationResult parallelize(Graph& g, DataflowResult& df, LoadMap& loads,
                                  const ParallelizeOptions& options) {
  return Parallelizer(g, df, loads, options).run();
}

}  // namespace bpp
