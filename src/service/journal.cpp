#include "service/journal.h"

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "core/error.h"
#include "serialize/json.h"

namespace bpp::service {

void Journal::record_submission(int id, const TenantSpec* spec,
                                const std::string& name,
                                const std::string& verdict,
                                const std::string& state,
                                const std::string& reason, int restarts) {
  if (!enabled()) return;
  json::Object o;
  o["event"] = "submit";
  o["id"] = id;
  o["name"] = name;
  if (spec != nullptr)
    o["spec"] = json::parse(write_submission(*spec));
  o["verdict"] = verdict;
  o["state"] = state;
  o["reason"] = reason;
  o["restarts"] = restarts;
  append_line(json::write(json::Value(std::move(o))));
}

void Journal::record_restart(int id, int attempt, const std::string& reason) {
  if (!enabled()) return;
  json::Object o;
  o["event"] = "restart";
  o["id"] = id;
  o["attempt"] = attempt;
  o["reason"] = reason;
  append_line(json::write(json::Value(std::move(o))));
}

void Journal::record_state(int id, const std::string& state,
                           const std::string& reason, int restarts) {
  if (!enabled()) return;
  json::Object o;
  o["event"] = "state";
  o["id"] = id;
  o["state"] = state;
  o["reason"] = reason;
  o["restarts"] = restarts;
  append_line(json::write(json::Value(std::move(o))));
}

void Journal::append_line(const std::string& line) {
  lines_.push_back(line);
  // Atomic durability: rewrite the whole (small) journal into a sibling
  // .tmp and rename it over the real path. Readers never see a torn file.
  const std::string tmp = path_ + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out)
      throw Error("journal: cannot write '" + tmp + "'");
    for (const std::string& l : lines_) out << l << '\n';
    out.flush();
    if (!out) throw Error("journal: write to '" + tmp + "' failed");
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path_, ec);
  if (ec)
    throw Error("journal: cannot rename '" + tmp + "' over '" + path_ +
                "': " + ec.message());
}

std::vector<JournalEntry> replay_journal(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("journal: cannot open '" + path + "'");

  std::map<int, JournalEntry> by_id;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    json::Value v;
    try {
      v = json::parse(line);
    } catch (const Error& e) {
      throw Error("journal: '" + path + "' line " + std::to_string(lineno) +
                  ": " + e.what());
    }
    const std::string event = v.string_or("event", "");
    const int id = static_cast<int>(v.number_or("id", -1.0));
    if (id < 0)
      throw Error("journal: '" + path + "' line " + std::to_string(lineno) +
                  ": missing id");
    JournalEntry& e = by_id[id];
    e.id = id;
    if (event == "submit") {
      e.name = v.string_or("name", "");
      e.verdict = v.string_or("verdict", "rejected");
      e.state = v.string_or("state", "failed");
      e.reason = v.string_or("reason", "");
      e.restarts = static_cast<int>(v.number_or("restarts", 0.0));
      if (const json::Value* spec = v.find("spec")) {
        e.spec = parse_submission(json::write(*spec));
        e.has_spec = true;
      }
    } else if (event == "restart") {
      e.restarts = static_cast<int>(v.number_or("attempt", 0.0));
      e.reason = v.string_or("reason", e.reason);
    } else if (event == "state") {
      e.state = v.string_or("state", e.state);
      e.reason = v.string_or("reason", e.reason);
      e.restarts = static_cast<int>(v.number_or("restarts", e.restarts));
    } else {
      throw Error("journal: '" + path + "' line " + std::to_string(lineno) +
                  ": unknown event \"" + event + "\"");
    }
  }

  std::vector<JournalEntry> out;
  out.reserve(by_id.size());
  for (auto& [id, e] : by_id) out.push_back(std::move(e));
  return out;
}

}  // namespace bpp::service
