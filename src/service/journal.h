#pragma once
// Durable admission journal for the bpd daemon (DESIGN.md §8).
//
// An append-only write-ahead log of everything the daemon decided about
// its tenants: submissions (with the full spec), admission verdicts,
// restart attempts, and terminal states. On disk it is JSONL — one
// sorted-key JSON object per line:
//
//   {"event":"submit","id":0,"name":"cam0","reason":"...","restarts":0,
//    "spec":{...},"state":"running","verdict":"admitted"}
//   {"event":"restart","attempt":1,"id":0,"reason":"kernel fault: ..."}
//   {"event":"state","id":0,"reason":"...","restarts":1,"state":"completed"}
//
// Durability discipline: the journal is small (one line per event, tens
// of tenants), so every record rewrites the whole file to `<path>.tmp`
// and renames it over `<path>` — the same atomic write-to-tmp-then-rename
// contract spool writers follow. A reader (or a crashed daemon's
// `bpd --recover`) therefore always sees a complete, parseable snapshot;
// there is no torn-tail state to repair.
//
// Recovery semantics (replay_journal): an entry's last recorded state
// decides its fate. Terminal states — completed, evicted, quarantined,
// rejected, failed — are restored as frozen roster entries (quarantine
// decisions survive a daemon restart). Everything else — running, or
// drained by a graceful shutdown — is resumable: `--recover` re-submits
// the stored spec through normal admission. A SIGKILLed daemon leaves its
// running tenants journaled as "running", so crash recovery and
// graceful-drain recovery converge on the same replay rule.

#include <string>
#include <vector>

#include "service/protocol.h"

namespace bpp::service {

/// The write side. A default-constructed Journal is disabled: every
/// record_* call is a no-op, so callers need no "is journaling on"
/// branches. Not thread-safe; the daemon serializes calls under its lock.
class Journal {
 public:
  Journal() = default;
  explicit Journal(std::string path) : path_(std::move(path)) {}

  [[nodiscard]] bool enabled() const { return !path_.empty(); }
  [[nodiscard]] const std::string& path() const { return path_; }

  /// One submission: its id, spec (null for submissions that never parsed
  /// — they are restorable but not resumable), admission verdict, initial
  /// state, and reason. Flushes.
  void record_submission(int id, const TenantSpec* spec,
                         const std::string& name, const std::string& verdict,
                         const std::string& state, const std::string& reason,
                         int restarts);
  /// Restart attempt `attempt` (1-based) of tenant `id`. Flushes.
  void record_restart(int id, int attempt, const std::string& reason);
  /// A state transition (normally terminal, or "drained"). Flushes.
  void record_state(int id, const std::string& state,
                    const std::string& reason, int restarts);

 private:
  void append_line(const std::string& line);  // rewrite .tmp + rename

  std::string path_;
  std::vector<std::string> lines_;
};

/// One tenant reconstructed from the journal.
struct JournalEntry {
  int id = -1;
  std::string name;
  TenantSpec spec;
  bool has_spec = false;  ///< false for submissions that never parsed
  std::string verdict;    ///< "admitted" / "degraded" / "rejected"
  std::string state;      ///< last recorded state name
  std::string reason;
  int restarts = 0;

  /// Resumable tenants are re-admitted by `bpd --recover`; the rest are
  /// restored as frozen terminal roster entries.
  [[nodiscard]] bool resumable() const {
    return state == "running" || state == "drained" || state == "pending";
  }
};

/// Replay a journal file into per-tenant entries (ordered by id). Throws
/// bpp::Error if the file is unreadable or a line is malformed — the
/// atomic-rename write discipline means a valid journal never has a torn
/// line, so damage here is real and worth surfacing.
[[nodiscard]] std::vector<JournalEntry> replay_journal(
    const std::string& path);

}  // namespace bpp::service
