#include "service/admission.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

#include "predict/predict.h"

namespace bpp::service {

const char* verdict_name(Verdict v) {
  switch (v) {
    case Verdict::kAdmitted: return "admitted";
    case Verdict::kDegraded: return "degraded";
    case Verdict::kRejected: return "rejected";
  }
  return "?";
}

std::vector<double> vcore_utilization(const Graph& g, const LoadMap& loads,
                                      const Mapping& mapping,
                                      const MachineSpec& m) {
  std::vector<double> util(static_cast<size_t>(mapping.cores), 0.0);
  for (KernelId k = 0; k < g.kernel_count(); ++k) {
    if (g.kernel(k).is_source()) continue;
    util[static_cast<size_t>(mapping.core_of.at(static_cast<size_t>(k)))] +=
        loads.of(k).utilization(m);
  }
  return util;
}

PredictionCrossCheck cross_check_prediction(
    const CompiledApp& app, const std::vector<double>& vcore_util,
    double tolerance) {
  const predict::Prediction pred = predict::predict(app);
  PredictionCrossCheck x;
  x.exact = pred.exact;
  x.predicted_period_seconds = pred.steady_period_seconds;
  x.meets_realtime = pred.meets_realtime;
  for (const predict::CorePrediction& c : pred.cores) {
    const double ledger = static_cast<size_t>(c.core) < vcore_util.size()
                              ? vcore_util[static_cast<size_t>(c.core)]
                              : 0.0;
    x.max_abs_deviation =
        std::max(x.max_abs_deviation, std::fabs(c.utilization - ledger));
  }
  x.consistent = x.max_abs_deviation <= tolerance;
  return x;
}

namespace {

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f", v);
  return buf;
}

}  // namespace

AdmissionController::AdmissionController(int pool_cores, AdmissionPolicy policy)
    : policy_(policy) {
  load_.assign(static_cast<size_t>(std::max(pool_cores, 1)), 0.0);
}

double AdmissionController::total_load() const {
  return std::accumulate(load_.begin(), load_.end(), 0.0);
}

Placement AdmissionController::admit(const std::vector<double>& vcore_util) {
  Placement p;
  p.demand = std::accumulate(vcore_util.begin(), vcore_util.end(), 0.0);

  // Fast rejection that does not depend on current occupancy: demand no
  // pool state could satisfy. Keeps the CI oversubscriber deterministic.
  if (policy_.enabled) {
    const double pool_degrade =
        static_cast<double>(load_.size()) * policy_.degrade_budget;
    if (p.demand > pool_degrade) {
      p.verdict = Verdict::kRejected;
      p.reason = "demand " + fmt(p.demand) + " PE exceeds pool limit " +
                 fmt(pool_degrade) + " PE (" + std::to_string(load_.size()) +
                 " cores x " + fmt(policy_.degrade_budget) + " degrade budget)";
      return p;
    }
    const double widest =
        vcore_util.empty()
            ? 0.0
            : *std::max_element(vcore_util.begin(), vcore_util.end());
    if (widest > policy_.degrade_budget) {
      p.verdict = Verdict::kRejected;
      p.reason = "virtual core demands " + fmt(widest) +
                 " PE, more than one pool core's degrade budget " +
                 fmt(policy_.degrade_budget);
      return p;
    }
  }

  // Greedy worst-fit: heaviest virtual cores first, each onto the
  // least-loaded pool core. Deterministic: ties broken by index.
  std::vector<size_t> order(vcore_util.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return vcore_util[a] > vcore_util[b];
  });
  std::vector<double> trial = load_;
  p.pool_core_of_vcore.assign(vcore_util.size(), 0);
  for (size_t v : order) {
    size_t best = 0;
    for (size_t c = 1; c < trial.size(); ++c)
      if (trial[c] < trial[best]) best = c;
    trial[best] += vcore_util[v];
    p.pool_core_of_vcore[v] = static_cast<int>(best);
  }
  p.peak_load = trial.empty()
                    ? 0.0
                    : *std::max_element(trial.begin(), trial.end());

  if (!policy_.enabled || p.peak_load <= policy_.core_budget) {
    p.verdict = Verdict::kAdmitted;
    p.reason = policy_.enabled
                   ? "peak core load " + fmt(p.peak_load) + " within budget " +
                         fmt(policy_.core_budget)
                   : "admission disabled";
  } else if (p.peak_load <= policy_.degrade_budget) {
    p.verdict = Verdict::kDegraded;
    p.reason = "peak core load " + fmt(p.peak_load) + " over budget " +
               fmt(policy_.core_budget) + ", within degrade budget " +
               fmt(policy_.degrade_budget) + " -> frame shedding";
  } else {
    p.verdict = Verdict::kRejected;
    p.reason = "peak core load " + fmt(p.peak_load) +
               " would exceed degrade budget " + fmt(policy_.degrade_budget);
    p.pool_core_of_vcore.clear();
    return p;
  }
  load_ = trial;  // commit
  return p;
}

void AdmissionController::release(const Placement& p,
                                  const std::vector<double>& vcore_util) {
  if (p.pool_core_of_vcore.size() != vcore_util.size()) return;  // rejected
  for (size_t v = 0; v < vcore_util.size(); ++v) {
    double& l = load_[static_cast<size_t>(p.pool_core_of_vcore[v])];
    l -= vcore_util[v];
    if (l < 0.0) l = 0.0;  // guard accumulated rounding
  }
}

}  // namespace bpp::service
