#pragma once
// The bpd daemon core: a multi-tenant pipeline service.
//
// One Daemon owns one rt::Machine (the shared worker-core pool) and any
// number of tenants — submitted pipeline instances, each compiled with
// the block-parallel compiler, priced with its LoadMap, admitted (or
// degraded, or rejected) by the AdmissionController, and run as its own
// GraphProgram multiplexed onto the pool. Every tenant gets private
// observability: its own obs::Recorder (trace rings + metrics) and its
// own fault::DegradationController, which doubles as the runtime deadline
// monitor — its verdicts are the per-frame slack the status report dumps,
// and its miss counter drives eviction.
//
// A monitor thread polls running tenants every millisecond: it drains
// their trace rings, finalizes completed programs (releasing pool
// capacity), and evicts persistent deadline missers — a tenant whose
// misses reach evict_misses is quiesced, detached, and its capacity
// returned, protecting the remaining tenants' schedules. Tenants admitted
// in degraded mode shed frames instead (the DegradationController claims
// whole input frames at the source), and are only evicted if they *still*
// accumulate misses past the threshold.
//
// The monitor doubles as the per-tenant supervisor (DESIGN.md §8): a
// tenant whose program failed (a kernel firing raised — contained by the
// machine's worker backstop, so co-tenants never notice) or whose firing
// counter stops advancing for a stall window is torn down, its capacity
// released, and restarted with exponential backoff; after max_restarts
// failed restarts it lands in kQuarantined for good. All decisions are
// journaled (service/journal.h) when DaemonOptions::journal_path is set,
// and recover() replays such a journal after a crash: terminal states are
// restored verbatim (quarantine survives restarts), previously running or
// drained tenants are re-admitted. drain() is the graceful-shutdown path:
// admission stops, every source retires at its next frame boundary, and
// tenants conclude as kDrained (resumable on recover).
//
// Thread model: submit()/status()/wait_idle() may be called from any
// thread (one internal lock); tenant finalization happens on the monitor
// thread; kernel execution on the machine's workers. The destructor
// evicts anything still running, so a Daemon can be torn down at any
// point.

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "compiler/machine.h"
#include "service/admission.h"
#include "service/protocol.h"

namespace bpp::service {

struct DaemonOptions {
  int cores = 4;          ///< worker pool width
  int max_tenants = 64;   ///< lifetime submission cap (0 = unlimited)
  AdmissionPolicy admission;
  /// Runtime deadline misses after which a tenant is evicted (0 = never).
  long evict_misses = 3;
  /// Pace tenant sources on their declared release schedules (the
  /// real-time service mode; off = run-to-completion batch mode).
  bool pace = true;
  /// Compile target for tenant graphs; also prices admission.
  MachineSpec machine;
  /// Restart budget: a failing tenant is restarted this many times (with
  /// exponential backoff) before being quarantined. 0 = quarantine on the
  /// first failure.
  int max_restarts = 3;
  /// First restart delay; doubles per consecutive failure.
  double restart_backoff_seconds = 0.05;
  /// Stall watchdog: a tenant whose firing counter does not advance for
  /// max(stall_grace_seconds, stall_factor / rate_hz) is declared stalled
  /// and treated like a failure (restart, then quarantine).
  double stall_factor = 8.0;
  double stall_grace_seconds = 1.0;
  /// Admission journal path ("" = journaling off). See service/journal.h.
  std::string journal_path;
};

/// Tenant lifecycle, as reported in status:
///   pending -> running -> completed        (all sinks saw end-of-stream)
///                      -> drained          (graceful shutdown; resumable)
///                      -> evicted          (persistent deadline misser)
///                      -> quarantined      (restart budget exhausted)
///   rejected                               (admission said no)
///   failed                                 (submission did not build)
/// A running tenant that fails (kernel exception or stall) is restarted
/// in place — it stays kRunning through the backoff — and only becomes
/// kQuarantined once max_restarts restarts have also failed.
enum class TenantState {
  kPending,
  kRunning,
  kCompleted,
  kDrained,
  kEvicted,
  kQuarantined,
  kRejected,
  kFailed,
};

[[nodiscard]] const char* state_name(TenantState s);
/// Inverse of state_name (used by journal replay). Throws on unknown.
[[nodiscard]] TenantState state_from_name(const std::string& name);

/// Point-in-time snapshot of one tenant (copyable, lock-free to read).
struct TenantStatus {
  int id = -1;
  std::string name;
  std::string app;  ///< bundled app name or "(graph)"
  TenantState state = TenantState::kPending;
  Verdict admission = Verdict::kRejected;
  std::string reason;  ///< admission/eviction/failure justification
  double demand = 0.0;      ///< PE units requested
  double peak_load = 0.0;   ///< pool peak after its placement
  double rate_hz = 0.0;     ///< declared completion rate (post-slowdown)
  int restarts = 0;         ///< supervisor restarts performed
  long frames_completed = 0;
  long deadline_misses = 0;
  long frames_shed = 0;
  long firings = 0;
  long faults_injected = 0;
  double wall_seconds = 0.0;
  /// Frame latency/slack statistics (seconds); valid when frames > 0.
  double latency_p50 = 0.0;
  double latency_p95 = 0.0;
  double min_slack = 0.0;  ///< min(deadline - completion) over frames
  /// Compositional-predictor cross-check of the admission ledger
  /// (admission.h): the predictor's standalone steady period and whether
  /// its per-virtual-core pricing agreed with the LoadMap's. Zero period
  /// when the tenant never compiled.
  double predicted_period_seconds = 0.0;
  double predictor_deviation = 0.0;  ///< worst per-vcore gap, PE units
  bool predictor_consistent = true;
};

/// Pool-level counters for the status header.
struct PoolStatus {
  int cores = 0;
  double load = 0.0;      ///< committed PE units
  double capacity = 0.0;  ///< cores x core_budget
  int running = 0;
  int completed = 0;
  int drained = 0;
  int evicted = 0;
  int quarantined = 0;
  int rejected = 0;
  int failed = 0;
};

class Daemon {
 public:
  explicit Daemon(DaemonOptions opt);
  ~Daemon();  // evicts running tenants, stops the monitor and the pool

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Compile, admit, and (unless rejected) start a tenant. Returns its id.
  /// Build/compile failures are recorded as state=failed, not thrown.
  int submit(const TenantSpec& spec);

  /// Read, parse, and submit one submission file. Parse errors are
  /// recorded as a failed tenant named after the file.
  int submit_file(const std::string& path);

  /// Scan a spool directory for *.json submissions (sorted filename
  /// order), submitting each file once per daemon lifetime. Returns the
  /// number of new submissions.
  int scan_spool(const std::string& dir);

  /// Block until no tenant is running (or the timeout elapses).
  bool wait_idle(double timeout_seconds);

  /// Graceful shutdown: stop admission (further submissions are rejected),
  /// ask every running tenant to retire its sources at the next frame
  /// boundary, and wait for the pool to go idle. Tenants conclude as
  /// kDrained (journaled as resumable). Returns false if the timeout
  /// elapsed — stragglers are then force-stopped mid-frame (still
  /// kDrained, with the timeout in their reason).
  bool drain(double timeout_seconds);

  /// Replay a journal written by a previous daemon (service/journal.h):
  /// terminal tenants are restored as frozen roster entries (quarantine
  /// decisions preserved), resumable ones re-submitted through normal
  /// admission. Call before new submissions; this daemon's own journal is
  /// rewritten with the restored roster. Returns the number re-admitted.
  int recover(const std::string& journal_path);

  /// Per-file spool diagnostics accumulated since the last call (iterator
  /// errors, unreadable or malformed files moved to spool/bad/). Clears.
  [[nodiscard]] std::vector<std::string> spool_diagnostics();

  [[nodiscard]] TenantStatus tenant(int id) const;
  [[nodiscard]] std::vector<TenantStatus> tenants() const;
  [[nodiscard]] PoolStatus pool() const;
  [[nodiscard]] int cores() const;

  /// Human-readable status report: one pool header line plus one line per
  /// tenant (the format the CI smoke job greps).
  void write_status(std::ostream& os) const;
  /// The same report as sorted-key JSON.
  [[nodiscard]] std::string status_json() const;

 private:
  struct Tenant;
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace bpp::service
