#include "service/protocol.h"

#include <cstdio>
#include <set>

#include "core/error.h"
#include "fault/plan.h"
#include "serialize/json.h"

namespace bpp::service {

namespace {

Size2 parse_frame(const std::string& s) {
  int w = 0, h = 0;
  char extra = 0;
  if (std::sscanf(s.c_str(), "%dx%d%c", &w, &h, &extra) != 2 || w <= 0 ||
      h <= 0)
    throw Error("submission: bad \"frame\" '" + s + "' (expected WxH)");
  return {w, h};
}

}  // namespace

TenantSpec parse_submission(const std::string& json_text) {
  const json::Value doc = json::parse(json_text);
  if (!doc.is_object()) throw Error("submission: top level must be an object");

  static const std::set<std::string> known = {
      "name",        "app",           "graph",          "frame",
      "rate_hz",     "frames",        "bins",           "slack_seconds",
      "pace_slowdown", "allow_degraded", "faults",      "fault_seed"};
  for (const auto& [key, _] : doc.as_object())
    if (known.find(key) == known.end())
      throw Error("submission: unknown key \"" + key + "\"");

  TenantSpec s;
  s.name = doc.string_or("name", "");
  if (s.name.empty()) throw Error("submission: \"name\" is required");
  s.app = doc.string_or("app", "");
  s.graph_text = doc.string_or("graph", "");
  if (s.app.empty() == s.graph_text.empty())
    throw Error("submission '" + s.name +
                "': exactly one of \"app\" / \"graph\" is required");
  if (const json::Value* f = doc.find("frame"))
    s.frame = parse_frame(f->as_string());
  s.rate_hz = doc.number_or("rate_hz", s.rate_hz);
  s.frames = static_cast<int>(doc.number_or("frames", s.frames));
  s.bins = static_cast<int>(doc.number_or("bins", s.bins));
  s.slack_seconds = doc.number_or("slack_seconds", s.slack_seconds);
  s.pace_slowdown = doc.number_or("pace_slowdown", s.pace_slowdown);
  if (const json::Value* v = doc.find("allow_degraded"))
    s.allow_degraded = v->as_bool();
  if (const json::Value* v = doc.find("faults")) {
    s.fault_plan_json = json::write(*v);
    (void)fault::parse_plan(s.fault_plan_json);  // validate at submit time
  }
  if (const json::Value* v = doc.find("fault_seed")) {
    s.fault_seed = static_cast<std::uint64_t>(v->as_number());
    s.fault_seed_set = true;
  }

  if (s.rate_hz <= 0.0)
    throw Error("submission '" + s.name + "': rate_hz must be positive");
  if (s.frames <= 0)
    throw Error("submission '" + s.name + "': frames must be positive");
  if (s.bins <= 0)
    throw Error("submission '" + s.name + "': bins must be positive");
  if (s.slack_seconds < 0.0)
    throw Error("submission '" + s.name + "': slack_seconds must be >= 0");
  if (s.pace_slowdown <= 0.0)
    throw Error("submission '" + s.name + "': pace_slowdown must be positive");
  return s;
}

std::string write_submission(const TenantSpec& spec) {
  json::Object o;
  o["name"] = spec.name;
  if (!spec.app.empty()) o["app"] = spec.app;
  if (!spec.graph_text.empty()) o["graph"] = spec.graph_text;
  o["frame"] = std::to_string(spec.frame.w) + "x" + std::to_string(spec.frame.h);
  o["rate_hz"] = spec.rate_hz;
  o["frames"] = spec.frames;
  o["bins"] = spec.bins;
  o["slack_seconds"] = spec.slack_seconds;
  o["pace_slowdown"] = spec.pace_slowdown;
  o["allow_degraded"] = spec.allow_degraded;
  if (!spec.fault_plan_json.empty())
    o["faults"] = json::parse(spec.fault_plan_json);
  if (spec.fault_seed_set)
    o["fault_seed"] = static_cast<double>(spec.fault_seed);
  return json::write(json::Value(std::move(o)));
}

}  // namespace bpp::service
