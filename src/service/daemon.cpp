#include "service/daemon.h"

#include <algorithm>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <optional>
#include <set>
#include <sstream>
#include <thread>

#include "apps/pipelines.h"
#include "compiler/pipeline.h"
#include "core/error.h"
#include "fault/degradation.h"
#include "fault/injector.h"
#include "fault/plan.h"
#include "obs/frames.h"
#include "obs/recorder.h"
#include "runtime/machine.h"
#include "runtime/program.h"
#include "runtime/runtime.h"
#include "serialize/json.h"
#include "serialize/serialize.h"
#include "service/protocol.h"

namespace bpp::service {

const char* state_name(TenantState s) {
  switch (s) {
    case TenantState::kPending: return "pending";
    case TenantState::kRunning: return "running";
    case TenantState::kCompleted: return "completed";
    case TenantState::kEvicted: return "evicted";
    case TenantState::kRejected: return "rejected";
    case TenantState::kFailed: return "failed";
  }
  return "?";
}

namespace {

/// The fastest rate the data-flow analysis assigned — the input frame
/// rate — stretched by the paced slowdown the tenant runs under.
double declared_rate(const CompiledApp& app, double slowdown) {
  double rate = 0.0;
  for (const KernelAnalysis& ka : app.analysis.kernel)
    rate = std::max(rate, ka.rate_hz);
  return slowdown > 0.0 ? rate / slowdown : rate;
}

}  // namespace

/// Everything one submission owns. Destruction order matters: `program`
/// is declared last so it detaches from the machine (and stops touching
/// the graph, recorder, injector, and controller) before they go away.
struct Daemon::Tenant {
  int id = -1;
  TenantSpec spec;
  std::string app_label;
  TenantState state = TenantState::kPending;
  Placement placement;
  std::vector<double> vcore_util;
  PredictionCrossCheck xcheck;
  std::string reason;
  double rate_hz = 0.0;  ///< deadline-schedule rate (post-slowdown)
  bool evicting = false;

  std::optional<CompiledApp> app;  ///< graph lives in here
  std::optional<fault::Injector> injector;
  std::unique_ptr<obs::Recorder> recorder;
  std::unique_ptr<fault::DegradationController> ctrl;
  Mapping pool_mapping;
  std::unique_ptr<GraphProgram> program;

  /// Stats frozen at finalize; live snapshots are built on demand.
  TenantStatus final_status;
  bool finalized = false;
};

struct Daemon::Impl {
  explicit Impl(DaemonOptions o)
      : opt(o),
        machine(o.cores),
        admission(o.cores, o.admission) {
    monitor = std::thread([this] { monitor_loop(); });
  }

  ~Impl() {
    {
      std::lock_guard<std::mutex> lk(mu);
      stop = true;
    }
    monitor.join();
    // Finalize anything still running on this thread (eviction at
    // teardown); Tenant destruction then detaches programs while the
    // machine is still alive (member order: machine outlives tenants).
    for (auto& t : tenants)
      if (t->state == TenantState::kRunning) {
        t->reason = "daemon shutdown";
        finalize(*t, TenantState::kEvicted);
      }
  }

  // ---- submission --------------------------------------------------------

  int submit(const TenantSpec& spec) {
    std::lock_guard<std::mutex> lk(mu);
    auto t = std::make_unique<Tenant>();
    t->id = static_cast<int>(tenants.size());
    t->spec = spec;
    t->app_label = spec.app.empty() ? "(graph)" : spec.app;
    const int id = t->id;

    if (opt.max_tenants > 0 &&
        static_cast<int>(tenants.size()) >= opt.max_tenants) {
      t->state = TenantState::kRejected;
      t->reason = "tenant limit " + std::to_string(opt.max_tenants) + " reached";
      tenants.push_back(std::move(t));
      return id;
    }

    try {
      start_tenant(*t);
    } catch (const Error& e) {
      t->state = TenantState::kFailed;
      t->reason = e.what();
      t->program.reset();
    }
    if (t->state == TenantState::kRunning) ++running;
    tenants.push_back(std::move(t));
    return id;
  }

  /// Compile, admit, start. Throws bpp::Error on build/compile failure.
  void start_tenant(Tenant& t) {
    const TenantSpec& spec = t.spec;
    Graph source = spec.app.empty()
                       ? graph_from_text(spec.graph_text)
                       : apps::named_app(spec.app, spec.frame, spec.rate_hz,
                                         spec.frames, spec.bins);
    CompileOptions copt;
    copt.machine = opt.machine;
    t.app.emplace(compile(std::move(source), copt));
    CompiledApp& app = *t.app;

    t.vcore_util =
        vcore_utilization(app.graph, app.loads, app.mapping, opt.machine);
    t.xcheck = cross_check_prediction(app, t.vcore_util);
    t.placement = admission.admit(t.vcore_util);
    t.reason = t.placement.reason;
    if (!t.xcheck.consistent) {
      char warn[128];
      std::snprintf(warn, sizeof warn,
                    "; WARNING: predictor deviates %.3f PE from the "
                    "admission ledger",
                    t.xcheck.max_abs_deviation);
      t.reason += warn;
    }
    if (t.placement.verdict == Verdict::kDegraded && !spec.allow_degraded) {
      // The submitter refused degraded service; undo the commit.
      admission.release(t.placement, t.vcore_util);
      t.placement.verdict = Verdict::kRejected;
      t.placement.pool_core_of_vcore.clear();
      t.reason += "; tenant disallows degraded admission";
    }
    if (t.placement.verdict == Verdict::kRejected) {
      t.state = TenantState::kRejected;
      return;
    }

    t.rate_hz = declared_rate(app, opt.pace ? spec.pace_slowdown : 1.0);
    fault::DegradationPolicy pol;
    pol.shed = t.placement.verdict == Verdict::kDegraded;
    pol.rate_hz = t.rate_hz;
    pol.slack_seconds = spec.slack_seconds;
    t.recorder = std::make_unique<obs::Recorder>();
    t.ctrl = std::make_unique<fault::DegradationController>(
        pol, &t.recorder->metrics());

    if (!spec.fault_plan_json.empty()) {
      const fault::FaultPlan plan = fault::parse_plan(spec.fault_plan_json);
      t.injector.emplace(plan,
                         spec.fault_seed_set ? spec.fault_seed : plan.seed);
    }

    // Translate the compiled mapping's virtual cores onto pool cores.
    t.pool_mapping.cores = machine.cores();
    t.pool_mapping.core_of.resize(app.mapping.core_of.size());
    for (size_t k = 0; k < app.mapping.core_of.size(); ++k)
      t.pool_mapping.core_of[k] =
          t.placement.pool_core_of_vcore[static_cast<size_t>(
              app.mapping.core_of[k])];

    RuntimeOptions ropt;
    ropt.pace_inputs = opt.pace;
    ropt.pace_slowdown = spec.pace_slowdown;
    ropt.recorder = t.recorder.get();
    ropt.injector = t.injector ? &*t.injector : nullptr;
    ropt.degradation = t.ctrl.get();
    t.program = std::make_unique<GraphProgram>(app.graph, t.pool_mapping, ropt,
                                               machine);
    t.program->start();
    t.state = TenantState::kRunning;
  }

  // ---- monitor -----------------------------------------------------------

  void monitor_loop() {
    for (;;) {
      {
        std::unique_lock<std::mutex> lk(mu);
        if (stop) return;
        bool changed = false;
        for (auto& t : tenants) {
          if (t->state != TenantState::kRunning) continue;
          t->program->poll_recorder();
          if (t->program->done()) {
            finalize(*t, TenantState::kCompleted);
            changed = true;
          } else if (should_evict(*t)) {
            t->reason = "evicted: " + std::to_string(t->ctrl->misses()) +
                        " deadline misses (limit " +
                        std::to_string(evict_limit(*t)) + ")";
            finalize(*t, TenantState::kEvicted);
            changed = true;
          }
        }
        if (changed) cv.notify_all();
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  [[nodiscard]] long evict_limit(const Tenant& t) const {
    // Degraded tenants shed as their first line of defense; eviction only
    // fires if misses keep accumulating well past the admitted threshold.
    const long base = opt.evict_misses;
    return t.placement.verdict == Verdict::kDegraded ? base * 4 : base;
  }

  [[nodiscard]] bool should_evict(const Tenant& t) const {
    if (opt.evict_misses <= 0 || !t.ctrl) return false;
    return t.ctrl->misses() >= evict_limit(t);
  }

  /// Stop a running tenant's program, return its capacity, and freeze its
  /// statistics. Called with `mu` held (monitor thread or teardown).
  void finalize(Tenant& t, TenantState end_state) {
    const RuntimeResult r = t.program->finish();
    admission.release(t.placement, t.vcore_util);
    t.state = end_state;
    --running;

    TenantStatus& s = t.final_status;
    s = snapshot_common(t);
    s.firings = r.total_firings;
    s.faults_injected = r.faults_injected;
    s.frames_shed = r.frames_shed;
    s.wall_seconds = r.wall_seconds;
    if (t.ctrl) {
      s.frames_completed = t.ctrl->frames_completed();
      s.deadline_misses = t.ctrl->misses();
      double min_slack = 0.0;
      bool first = true;
      for (const obs::FrameVerdict& v : t.ctrl->verdicts()) {
        const double slack = v.deadline_seconds - v.completed_seconds;
        if (first || slack < min_slack) min_slack = slack;
        first = false;
      }
      s.min_slack = first ? 0.0 : min_slack;
    }
    if (obs::kCompiledIn && t.recorder) {
      const obs::FrameReport fr = obs::analyze_frames(t.recorder->trace());
      s.latency_p50 = fr.latency.p50;
      s.latency_p95 = fr.latency.p95;
      if (s.frames_completed == 0)
        s.frames_completed = static_cast<long>(fr.frames.size());
    }
    t.finalized = true;
  }

  // ---- status ------------------------------------------------------------

  [[nodiscard]] TenantStatus snapshot_common(const Tenant& t) const {
    TenantStatus s;
    s.id = t.id;
    s.name = t.spec.name;
    s.app = t.app_label;
    s.state = t.state;
    s.admission = t.placement.verdict;
    s.reason = t.reason;
    s.demand = t.placement.demand;
    s.peak_load = t.placement.peak_load;
    s.rate_hz = t.rate_hz;
    s.predicted_period_seconds = t.xcheck.predicted_period_seconds;
    s.predictor_deviation = t.xcheck.max_abs_deviation;
    s.predictor_consistent = t.xcheck.consistent;
    return s;
  }

  [[nodiscard]] TenantStatus snapshot(const Tenant& t) const {
    if (t.finalized) return t.final_status;
    TenantStatus s = snapshot_common(t);
    if (t.state == TenantState::kRunning) {
      s.firings = t.program->firings();
      s.wall_seconds = t.program->elapsed_seconds();
      s.frames_shed = t.program->frames_shed();
      if (t.ctrl) {
        s.frames_completed = t.ctrl->frames_completed();
        s.deadline_misses = t.ctrl->misses();
      }
    }
    return s;
  }

  [[nodiscard]] PoolStatus pool_status() const {
    PoolStatus p;
    p.cores = machine.cores();
    p.load = admission.total_load();
    p.capacity = admission.capacity();
    for (const auto& t : tenants) switch (t->state) {
        case TenantState::kRunning: ++p.running; break;
        case TenantState::kCompleted: ++p.completed; break;
        case TenantState::kEvicted: ++p.evicted; break;
        case TenantState::kRejected: ++p.rejected; break;
        case TenantState::kFailed: ++p.failed; break;
        case TenantState::kPending: break;
      }
    return p;
  }

  DaemonOptions opt;
  rt::Machine machine;  ///< declared before tenants: outlives every program
  AdmissionController admission;
  mutable std::mutex mu;
  std::condition_variable cv;  ///< signaled when a tenant leaves kRunning
  std::vector<std::unique_ptr<Tenant>> tenants;
  std::set<std::string> spooled;  ///< spool files already submitted
  int running = 0;
  bool stop = false;
  std::thread monitor;
};

Daemon::Daemon(DaemonOptions opt) : impl_(std::make_unique<Impl>(opt)) {}
Daemon::~Daemon() = default;

int Daemon::submit(const TenantSpec& spec) { return impl_->submit(spec); }

int Daemon::submit_file(const std::string& path) {
  std::ifstream f(path);
  std::ostringstream text;
  text << f.rdbuf();
  TenantSpec spec;
  try {
    if (!f) throw Error("cannot read submission file '" + path + "'");
    spec = parse_submission(text.str());
  } catch (const Error& e) {
    spec = TenantSpec{};
    spec.name = std::filesystem::path(path).filename().string();
    spec.app = "(invalid)";
    // Route through submit() so the failure is recorded as a tenant.
    std::lock_guard<std::mutex> lk(impl_->mu);
    auto t = std::make_unique<Tenant>();
    t->id = static_cast<int>(impl_->tenants.size());
    t->spec = spec;
    t->app_label = spec.app;
    t->state = TenantState::kFailed;
    t->reason = e.what();
    impl_->tenants.push_back(std::move(t));
    return impl_->tenants.back()->id;
  }
  return impl_->submit(spec);
}

int Daemon::scan_spool(const std::string& dir) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    if (entry.path().extension() != ".json") continue;
    files.push_back(entry.path().string());
  }
  if (ec) throw Error("cannot scan spool directory '" + dir + "'");
  std::sort(files.begin(), files.end());
  int submitted = 0;
  for (const std::string& f : files) {
    {
      std::lock_guard<std::mutex> lk(impl_->mu);
      if (!impl_->spooled.insert(f).second) continue;
    }
    submit_file(f);
    ++submitted;
  }
  return submitted;
}

bool Daemon::wait_idle(double timeout_seconds) {
  std::unique_lock<std::mutex> lk(impl_->mu);
  return impl_->cv.wait_for(
      lk, std::chrono::duration<double>(timeout_seconds),
      [&] { return impl_->running == 0; });
}

TenantStatus Daemon::tenant(int id) const {
  std::lock_guard<std::mutex> lk(impl_->mu);
  return impl_->snapshot(*impl_->tenants.at(static_cast<size_t>(id)));
}

std::vector<TenantStatus> Daemon::tenants() const {
  std::lock_guard<std::mutex> lk(impl_->mu);
  std::vector<TenantStatus> out;
  out.reserve(impl_->tenants.size());
  for (const auto& t : impl_->tenants) out.push_back(impl_->snapshot(*t));
  return out;
}

PoolStatus Daemon::pool() const {
  std::lock_guard<std::mutex> lk(impl_->mu);
  return impl_->pool_status();
}

int Daemon::cores() const { return impl_->machine.cores(); }

void Daemon::write_status(std::ostream& os) const {
  const PoolStatus p = pool();
  const std::vector<TenantStatus> ts = tenants();
  char line[512];
  std::snprintf(line, sizeof line,
                "bpd: pool %d cores, load %.2f/%.2f PE (%.0f%%), tenants: %d "
                "running, %d completed, %d evicted, %d rejected, %d failed\n",
                p.cores, p.load, p.capacity,
                p.capacity > 0.0 ? 100.0 * p.load / p.capacity : 0.0,
                p.running, p.completed, p.evicted, p.rejected, p.failed);
  os << line;
  for (const TenantStatus& s : ts) {
    std::snprintf(line, sizeof line, "tenant %d '%s' app=%s: state=%s admission=%s",
                  s.id, s.name.c_str(), s.app.c_str(), state_name(s.state),
                  verdict_name(s.admission));
    os << line;
    if (s.state == TenantState::kRejected || s.state == TenantState::kFailed) {
      os << " reason=\"" << s.reason << "\"\n";
      continue;
    }
    std::snprintf(line, sizeof line,
                  " demand=%.2f rate=%.1fHz frames=%ld missed=%ld shed=%ld "
                  "firings=%ld",
                  s.demand, s.rate_hz, s.frames_completed, s.deadline_misses,
                  s.frames_shed, s.firings);
    os << line;
    if (s.predicted_period_seconds > 0.0) {
      std::snprintf(line, sizeof line, " predicted_period=%.2fms%s",
                    s.predicted_period_seconds * 1e3,
                    s.predictor_consistent ? "" : " predictor=INCONSISTENT");
      os << line;
    }
    if (s.frames_completed > 0) {
      std::snprintf(line, sizeof line,
                    " latency_p50=%.2fms latency_p95=%.2fms min_slack=%.2fms",
                    s.latency_p50 * 1e3, s.latency_p95 * 1e3,
                    s.min_slack * 1e3);
      os << line;
    }
    if (s.state == TenantState::kEvicted)
      os << " reason=\"" << s.reason << "\"";
    os << '\n';
  }
}

std::string Daemon::status_json() const {
  const PoolStatus p = pool();
  const std::vector<TenantStatus> ts = tenants();
  json::Object pool_o;
  pool_o["cores"] = p.cores;
  pool_o["load_pe"] = p.load;
  pool_o["capacity_pe"] = p.capacity;
  pool_o["running"] = p.running;
  pool_o["completed"] = p.completed;
  pool_o["evicted"] = p.evicted;
  pool_o["rejected"] = p.rejected;
  pool_o["failed"] = p.failed;
  json::Array arr;
  for (const TenantStatus& s : ts) {
    json::Object o;
    o["id"] = s.id;
    o["name"] = s.name;
    o["app"] = s.app;
    o["state"] = state_name(s.state);
    o["admission"] = verdict_name(s.admission);
    o["reason"] = s.reason;
    o["demand_pe"] = s.demand;
    o["rate_hz"] = s.rate_hz;
    o["frames_completed"] = s.frames_completed;
    o["deadline_misses"] = s.deadline_misses;
    o["frames_shed"] = s.frames_shed;
    o["firings"] = s.firings;
    o["faults_injected"] = s.faults_injected;
    o["wall_seconds"] = s.wall_seconds;
    o["latency_p50_seconds"] = s.latency_p50;
    o["latency_p95_seconds"] = s.latency_p95;
    o["min_slack_seconds"] = s.min_slack;
    o["predicted_period_seconds"] = s.predicted_period_seconds;
    o["predictor_deviation_pe"] = s.predictor_deviation;
    o["predictor_consistent"] = s.predictor_consistent;
    arr.push_back(json::Value(std::move(o)));
  }
  json::Object root;
  root["pool"] = json::Value(std::move(pool_o));
  root["tenants"] = json::Value(std::move(arr));
  return json::write(json::Value(std::move(root)));
}

}  // namespace bpp::service
