#include "service/daemon.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <optional>
#include <set>
#include <sstream>
#include <thread>

#include "apps/pipelines.h"
#include "compiler/pipeline.h"
#include "core/error.h"
#include "fault/degradation.h"
#include "fault/injector.h"
#include "fault/plan.h"
#include "obs/frames.h"
#include "obs/recorder.h"
#include "runtime/machine.h"
#include "runtime/program.h"
#include "runtime/runtime.h"
#include "serialize/json.h"
#include "serialize/serialize.h"
#include "service/journal.h"
#include "service/protocol.h"

namespace bpp::service {

const char* state_name(TenantState s) {
  switch (s) {
    case TenantState::kPending: return "pending";
    case TenantState::kRunning: return "running";
    case TenantState::kCompleted: return "completed";
    case TenantState::kDrained: return "drained";
    case TenantState::kEvicted: return "evicted";
    case TenantState::kQuarantined: return "quarantined";
    case TenantState::kRejected: return "rejected";
    case TenantState::kFailed: return "failed";
  }
  return "?";
}

TenantState state_from_name(const std::string& name) {
  for (TenantState s :
       {TenantState::kPending, TenantState::kRunning, TenantState::kCompleted,
        TenantState::kDrained, TenantState::kEvicted,
        TenantState::kQuarantined, TenantState::kRejected,
        TenantState::kFailed})
    if (name == state_name(s)) return s;
  throw Error("unknown tenant state \"" + name + "\"");
}

namespace {

/// The fastest rate the data-flow analysis assigned — the input frame
/// rate — stretched by the paced slowdown the tenant runs under.
double declared_rate(const CompiledApp& app, double slowdown) {
  double rate = 0.0;
  for (const KernelAnalysis& ka : app.analysis.kernel)
    rate = std::max(rate, ka.rate_hz);
  return slowdown > 0.0 ? rate / slowdown : rate;
}

Verdict verdict_from_name(const std::string& name) {
  if (name == "admitted") return Verdict::kAdmitted;
  if (name == "degraded") return Verdict::kDegraded;
  return Verdict::kRejected;
}

}  // namespace

/// Everything one submission owns. Destruction order matters: `program`
/// is declared last so it detaches from the machine (and stops touching
/// the graph, recorder, injector, and controller) before they go away.
struct Daemon::Tenant {
  int id = -1;
  TenantSpec spec;
  std::string app_label;
  TenantState state = TenantState::kPending;
  Placement placement;
  std::vector<double> vcore_util;
  PredictionCrossCheck xcheck;
  std::string reason;
  double rate_hz = 0.0;  ///< deadline-schedule rate (post-slowdown)
  bool evicting = false;

  // ---- supervisor state (monitor thread, under the daemon lock) ----
  int restarts = 0;             ///< restart attempts performed so far
  double backoff_until = -1.0;  ///< machine time to retry at; <0 = none
  std::string last_error;       ///< most recent failure message
  long last_firings = 0;        ///< progress watchdog cursor ...
  double last_progress = 0.0;   ///< ... and when it last advanced
  bool drain_requested = false;
  long drain_firings = -1;        ///< drain-completion stability cursor
  double drain_stable_since = 0.0;
  /// Stats accumulated across failed attempts; the live attempt's counts
  /// are added on top at conclude() / in snapshots.
  long acc_firings = 0;
  long acc_faults = 0;
  long acc_shed = 0;
  long acc_frames = 0;
  long acc_misses = 0;
  double acc_wall = 0.0;

  std::optional<CompiledApp> app;  ///< graph lives in here
  std::optional<fault::Injector> injector;
  std::unique_ptr<obs::Recorder> recorder;
  std::unique_ptr<fault::DegradationController> ctrl;
  Mapping pool_mapping;
  std::unique_ptr<GraphProgram> program;

  /// Stats frozen at finalize; live snapshots are built on demand.
  TenantStatus final_status;
  bool finalized = false;
};

struct Daemon::Impl {
  explicit Impl(DaemonOptions o)
      : opt(o),
        machine(o.cores),
        admission(o.cores, o.admission),
        journal(o.journal_path) {  // empty path = journaling disabled
    monitor = std::thread([this] { monitor_loop(); });
  }

  ~Impl() {
    {
      std::lock_guard<std::mutex> lk(mu);
      stop = true;
    }
    monitor.join();
    // Stop anything still running on this thread; Tenant destruction then
    // detaches programs while the machine is still alive (member order:
    // machine outlives tenants). Teardown stops are journaled as drained
    // — the daemon going away is not the tenant's fault, so a recover()
    // resumes them (same rule as a crash, where the journal still says
    // "running").
    for (auto& t : tenants)
      if (t->state == TenantState::kRunning) {
        t->reason = "daemon shutdown";
        conclude(*t, TenantState::kDrained);
      }
  }

  // ---- submission --------------------------------------------------------

  int submit(const TenantSpec& spec) {
    std::lock_guard<std::mutex> lk(mu);
    auto t = std::make_unique<Tenant>();
    t->id = static_cast<int>(tenants.size());
    t->spec = spec;
    t->app_label = spec.app.empty() ? "(graph)" : spec.app;
    const int id = t->id;

    if (draining) {
      t->state = TenantState::kRejected;
      t->reason = "daemon draining; admission stopped";
    } else if (opt.max_tenants > 0 &&
               static_cast<int>(tenants.size()) >= opt.max_tenants) {
      t->state = TenantState::kRejected;
      t->reason = "tenant limit " + std::to_string(opt.max_tenants) + " reached";
    } else {
      try {
        start_tenant(*t);
      } catch (const Error& e) {
        t->state = TenantState::kFailed;
        t->reason = e.what();
        t->program.reset();
      }
    }
    if (t->state == TenantState::kRunning) ++running;
    journal.record_submission(t->id, &t->spec, t->spec.name,
                              verdict_name(t->placement.verdict),
                              state_name(t->state), t->reason, t->restarts);
    tenants.push_back(std::move(t));
    return id;
  }

  /// Compile, admit, start. Throws bpp::Error on build/compile failure.
  void start_tenant(Tenant& t) {
    const TenantSpec& spec = t.spec;
    Graph source = spec.app.empty()
                       ? graph_from_text(spec.graph_text)
                       : apps::named_app(spec.app, spec.frame, spec.rate_hz,
                                         spec.frames, spec.bins);
    CompileOptions copt;
    copt.machine = opt.machine;
    t.app.emplace(compile(std::move(source), copt));
    CompiledApp& app = *t.app;

    t.vcore_util =
        vcore_utilization(app.graph, app.loads, app.mapping, opt.machine);
    t.xcheck = cross_check_prediction(app, t.vcore_util);
    t.placement = admission.admit(t.vcore_util);
    t.reason = t.placement.reason;
    if (!t.xcheck.consistent) {
      char warn[128];
      std::snprintf(warn, sizeof warn,
                    "; WARNING: predictor deviates %.3f PE from the "
                    "admission ledger",
                    t.xcheck.max_abs_deviation);
      t.reason += warn;
    }
    if (t.placement.verdict == Verdict::kDegraded && !spec.allow_degraded) {
      // The submitter refused degraded service; undo the commit.
      admission.release(t.placement, t.vcore_util);
      t.placement.verdict = Verdict::kRejected;
      t.placement.pool_core_of_vcore.clear();
      t.reason += "; tenant disallows degraded admission";
    }
    if (t.placement.verdict == Verdict::kRejected) {
      t.state = TenantState::kRejected;
      return;
    }

    t.rate_hz = declared_rate(app, opt.pace ? spec.pace_slowdown : 1.0);
    fault::DegradationPolicy pol;
    pol.shed = t.placement.verdict == Verdict::kDegraded;
    pol.rate_hz = t.rate_hz;
    pol.slack_seconds = spec.slack_seconds;
    t.recorder = std::make_unique<obs::Recorder>();
    t.ctrl = std::make_unique<fault::DegradationController>(
        pol, &t.recorder->metrics());

    if (!spec.fault_plan_json.empty()) {
      const fault::FaultPlan plan = fault::parse_plan(spec.fault_plan_json);
      // Offset the seed per attempt: a tenant that failed on a
      // probabilistic fault gets a different draw after restart (a
      // deterministic throw_prob=1.0 plan still fails every attempt and
      // exhausts the budget, which is what its tests want).
      const std::uint64_t base =
          spec.fault_seed_set ? spec.fault_seed : plan.seed;
      t.injector.emplace(plan, base + static_cast<std::uint64_t>(t.restarts));
    }

    // Translate the compiled mapping's virtual cores onto pool cores.
    t.pool_mapping.cores = machine.cores();
    t.pool_mapping.core_of.resize(app.mapping.core_of.size());
    for (size_t k = 0; k < app.mapping.core_of.size(); ++k)
      t.pool_mapping.core_of[k] =
          t.placement.pool_core_of_vcore[static_cast<size_t>(
              app.mapping.core_of[k])];

    RuntimeOptions ropt;
    ropt.pace_inputs = opt.pace;
    ropt.pace_slowdown = spec.pace_slowdown;
    ropt.recorder = t.recorder.get();
    ropt.injector = t.injector ? &*t.injector : nullptr;
    ropt.degradation = t.ctrl.get();
    t.program = std::make_unique<GraphProgram>(app.graph, t.pool_mapping, ropt,
                                               machine);
    t.program->start();
    t.state = TenantState::kRunning;
    t.last_firings = 0;
    t.last_progress = machine.now();
  }

  // ---- monitor -----------------------------------------------------------

  void monitor_loop() {
    for (;;) {
      {
        std::unique_lock<std::mutex> lk(mu);
        if (stop) return;
        bool changed = false;
        const double now = machine.now();
        for (auto& t : tenants) {
          if (t->state != TenantState::kRunning) continue;

          // Restart backoff: the tenant holds no program (and no pool
          // capacity) while waiting for its retry time.
          if (t->backoff_until >= 0.0) {
            if (now >= t->backoff_until) {
              t->backoff_until = -1.0;
              attempt_restart(*t);
              if (t->state != TenantState::kRunning) changed = true;
            }
            continue;
          }

          t->program->poll_recorder();
          if (t->program->failed()) {
            handle_failure(*t, "kernel fault: " + t->program->error());
            changed = true;
          } else if (t->program->done()) {
            conclude(*t, TenantState::kCompleted);
            changed = true;
          } else if (t->drain_requested) {
            // Draining: wait for every source to retire at its frame
            // boundary, then for in-flight firings to settle.
            if (t->program->sources_drained()) {
              const long f = t->program->firings();
              if (f != t->drain_firings) {
                t->drain_firings = f;
                t->drain_stable_since = now;
              } else if (now - t->drain_stable_since >= 0.05) {
                t->reason = "drained at frame boundary (daemon shutdown)";
                conclude(*t, TenantState::kDrained);
                changed = true;
              }
            }
          } else if (should_evict(*t)) {
            t->reason = "evicted: " + std::to_string(t->ctrl->misses()) +
                        " deadline misses (limit " +
                        std::to_string(evict_limit(*t)) + ")";
            conclude(*t, TenantState::kEvicted);
            changed = true;
          } else if (stalled(*t, now)) {
            char why[96];
            std::snprintf(why, sizeof why,
                          "stalled: no progress for %.2fs (window %.2fs)",
                          now - t->last_progress, stall_window(*t));
            handle_failure(*t, why);
            changed = true;
          }
        }
        if (changed) cv.notify_all();
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  // ---- supervisor --------------------------------------------------------

  [[nodiscard]] double stall_window(const Tenant& t) const {
    const double period = t.rate_hz > 0.0 ? 1.0 / t.rate_hz : 0.0;
    return std::max(opt.stall_grace_seconds, opt.stall_factor * period);
  }

  /// Progress watchdog: true when the firing counter has not advanced for
  /// a full stall window. Updates the progress cursor as a side effect.
  [[nodiscard]] bool stalled(Tenant& t, double now) const {
    const long f = t.program->firings();
    if (f != t.last_firings) {
      t.last_firings = f;
      t.last_progress = now;
      return false;
    }
    return now - t.last_progress >= stall_window(t);
  }

  /// Tear down the live attempt, return its pool capacity, and fold its
  /// statistics into the across-attempt accumulators. The tenant keeps
  /// its spec/placement metadata so a restart can recompile from scratch.
  void stop_attempt(Tenant& t) {
    const RuntimeResult r = t.program->finish();
    admission.release(t.placement, t.vcore_util);
    t.acc_firings += r.total_firings;
    t.acc_faults += r.faults_injected;
    t.acc_shed += r.frames_shed;
    t.acc_wall += r.wall_seconds;
    if (t.ctrl) {
      t.acc_frames += t.ctrl->frames_completed();
      t.acc_misses += t.ctrl->misses();
    }
    t.program.reset();
    t.ctrl.reset();
    t.recorder.reset();
    t.injector.reset();
    t.app.reset();
  }

  /// An attempt failed (kernel exception, stall, or a restart that never
  /// produced a program). Restart with exponential backoff until the
  /// budget is spent, then quarantine.
  void handle_failure(Tenant& t, const std::string& why) {
    if (t.program) stop_attempt(t);
    t.last_error = why;
    if (draining || t.drain_requested) {
      // No restarts during shutdown; record the failure and move on.
      t.reason = "failed during drain: " + why;
      conclude(t, TenantState::kEvicted);
      return;
    }
    if (t.restarts >= opt.max_restarts) {
      t.reason = "quarantined after " + std::to_string(t.restarts + 1) +
                 " failed attempts (restart budget " +
                 std::to_string(opt.max_restarts) + "); last: " + why;
      conclude(t, TenantState::kQuarantined);
      return;
    }
    ++t.restarts;
    const double backoff =
        opt.restart_backoff_seconds * std::ldexp(1.0, t.restarts - 1);
    t.backoff_until = machine.now() + backoff;
    char note[160];
    std::snprintf(note, sizeof note, "restarting (attempt %d/%d) in %.0fms",
                  t.restarts, opt.max_restarts, backoff * 1e3);
    t.reason = std::string(note) + " after: " + why;
    journal.record_restart(t.id, t.restarts, why);
  }

  /// Backoff expired: recompile and re-admit. A failure here (compile
  /// error or re-admission refusal) consumes the attempt like any other.
  void attempt_restart(Tenant& t) {
    try {
      start_tenant(t);
    } catch (const Error& e) {
      t.state = TenantState::kRunning;  // stay supervised
      t.program.reset();
      handle_failure(t, std::string("restart failed: ") + e.what());
      return;
    }
    if (t.state == TenantState::kRejected) {
      // The pool filled up while we were away; that will not improve by
      // retrying, so quarantine immediately.
      t.state = TenantState::kRunning;
      t.reason = "quarantined: re-admission rejected: " + t.reason;
      conclude(t, TenantState::kQuarantined);
    }
  }

  [[nodiscard]] long evict_limit(const Tenant& t) const {
    // Degraded tenants shed as their first line of defense; eviction only
    // fires if misses keep accumulating well past the admitted threshold.
    const long base = opt.evict_misses;
    return t.placement.verdict == Verdict::kDegraded ? base * 4 : base;
  }

  [[nodiscard]] bool should_evict(const Tenant& t) const {
    if (opt.evict_misses <= 0 || !t.ctrl) return false;
    return t.ctrl->misses() >= evict_limit(t);
  }

  /// Move a tenant to a terminal (or drained) state: stop any live
  /// attempt, freeze its statistics, and journal the transition. Called
  /// with `mu` held (monitor thread or teardown).
  void conclude(Tenant& t, TenantState end_state) {
    double min_slack = 0.0;
    bool have_slack = false;
    double lat_p50 = 0.0, lat_p95 = 0.0;
    long frames_from_trace = 0;
    if (t.program) {
      if (t.ctrl) {
        for (const obs::FrameVerdict& v : t.ctrl->verdicts()) {
          const double slack = v.deadline_seconds - v.completed_seconds;
          if (!have_slack || slack < min_slack) min_slack = slack;
          have_slack = true;
        }
      }
      if (obs::kCompiledIn && t.recorder) {
        const obs::FrameReport fr = obs::analyze_frames(t.recorder->trace());
        lat_p50 = fr.latency.p50;
        lat_p95 = fr.latency.p95;
        frames_from_trace = static_cast<long>(fr.frames.size());
      }
      stop_attempt(t);  // folds the live attempt into the accumulators
    }
    t.state = end_state;
    t.backoff_until = -1.0;
    --running;

    TenantStatus& s = t.final_status;
    s = snapshot_common(t);
    s.firings = t.acc_firings;
    s.faults_injected = t.acc_faults;
    s.frames_shed = t.acc_shed;
    s.wall_seconds = t.acc_wall;
    s.frames_completed =
        t.acc_frames > 0 ? t.acc_frames : frames_from_trace;
    s.deadline_misses = t.acc_misses;
    s.min_slack = have_slack ? min_slack : 0.0;
    s.latency_p50 = lat_p50;
    s.latency_p95 = lat_p95;
    t.finalized = true;
    journal.record_state(t.id, state_name(end_state), t.reason, t.restarts);
  }

  // ---- status ------------------------------------------------------------

  [[nodiscard]] TenantStatus snapshot_common(const Tenant& t) const {
    TenantStatus s;
    s.id = t.id;
    s.name = t.spec.name;
    s.app = t.app_label;
    s.state = t.state;
    s.admission = t.placement.verdict;
    s.reason = t.reason;
    s.demand = t.placement.demand;
    s.peak_load = t.placement.peak_load;
    s.rate_hz = t.rate_hz;
    s.restarts = t.restarts;
    s.predicted_period_seconds = t.xcheck.predicted_period_seconds;
    s.predictor_deviation = t.xcheck.max_abs_deviation;
    s.predictor_consistent = t.xcheck.consistent;
    return s;
  }

  [[nodiscard]] TenantStatus snapshot(const Tenant& t) const {
    if (t.finalized) return t.final_status;
    TenantStatus s = snapshot_common(t);
    // Prior (failed) attempts' counts, plus the live attempt's if one is
    // running (a tenant in restart backoff has no program).
    s.firings = t.acc_firings;
    s.faults_injected = t.acc_faults;
    s.frames_shed = t.acc_shed;
    s.frames_completed = t.acc_frames;
    s.deadline_misses = t.acc_misses;
    s.wall_seconds = t.acc_wall;
    if (t.state == TenantState::kRunning && t.program) {
      s.firings += t.program->firings();
      s.wall_seconds += t.program->elapsed_seconds();
      s.frames_shed += t.program->frames_shed();
      if (t.ctrl) {
        s.frames_completed += t.ctrl->frames_completed();
        s.deadline_misses += t.ctrl->misses();
      }
    }
    return s;
  }

  [[nodiscard]] PoolStatus pool_status() const {
    PoolStatus p;
    p.cores = machine.cores();
    p.load = admission.total_load();
    p.capacity = admission.capacity();
    for (const auto& t : tenants) switch (t->state) {
        case TenantState::kRunning: ++p.running; break;
        case TenantState::kCompleted: ++p.completed; break;
        case TenantState::kDrained: ++p.drained; break;
        case TenantState::kEvicted: ++p.evicted; break;
        case TenantState::kQuarantined: ++p.quarantined; break;
        case TenantState::kRejected: ++p.rejected; break;
        case TenantState::kFailed: ++p.failed; break;
        case TenantState::kPending: break;
      }
    return p;
  }

  /// Record a submission that never parsed/built as a failed roster entry
  /// (so status and the journal still account for it). Returns its id.
  int record_failed(const std::string& name, const std::string& reason) {
    std::lock_guard<std::mutex> lk(mu);
    auto t = std::make_unique<Tenant>();
    t->id = static_cast<int>(tenants.size());
    t->spec.name = name;
    t->app_label = "(invalid)";
    t->state = TenantState::kFailed;
    t->reason = reason;
    const int id = t->id;
    journal.record_submission(id, nullptr, name, "rejected", "failed", reason,
                              0);
    tenants.push_back(std::move(t));
    return id;
  }

  DaemonOptions opt;
  rt::Machine machine;  ///< declared before tenants: outlives every program
  AdmissionController admission;
  mutable std::mutex mu;
  std::condition_variable cv;  ///< signaled when a tenant leaves kRunning
  std::vector<std::unique_ptr<Tenant>> tenants;
  std::set<std::string> spooled;  ///< spool files already submitted
  std::vector<std::string> spool_diag;  ///< per-file spool diagnostics
  Journal journal;
  int running = 0;
  bool stop = false;
  bool draining = false;  ///< admission closed (drain() was called)
  std::thread monitor;
};

Daemon::Daemon(DaemonOptions opt) : impl_(std::make_unique<Impl>(opt)) {}
Daemon::~Daemon() = default;

int Daemon::submit(const TenantSpec& spec) { return impl_->submit(spec); }

int Daemon::submit_file(const std::string& path) {
  std::ifstream f(path);
  std::ostringstream text;
  text << f.rdbuf();
  TenantSpec spec;
  try {
    if (!f) throw Error("cannot read submission file '" + path + "'");
    spec = parse_submission(text.str());
  } catch (const Error& e) {
    return impl_->record_failed(
        std::filesystem::path(path).filename().string(), e.what());
  }
  return impl_->submit(spec);
}

int Daemon::scan_spool(const std::string& dir) {
  namespace fs = std::filesystem;

  // Enumerate with per-entry error checks: a file that vanishes or turns
  // unreadable mid-scan produces a diagnostic, not a failed scan. Only
  // `*.json` is picked up — a writer's in-flight `foo.json.tmp` (the
  // atomic write-to-tmp-then-rename discipline, protocol.h) is skipped
  // until its rename lands.
  std::error_code ec;
  fs::directory_iterator it(dir, ec);
  if (ec)
    throw Error("cannot scan spool directory '" + dir + "': " + ec.message());
  std::vector<std::string> files;
  for (const fs::directory_iterator end; it != end;) {
    const fs::path p = it->path();
    std::error_code fec;
    const bool regular = it->is_regular_file(fec);
    if (fec) {
      std::lock_guard<std::mutex> lk(impl_->mu);
      impl_->spool_diag.push_back("spool: cannot stat '" + p.string() +
                                  "': " + fec.message());
    } else if (regular && p.extension() == ".json") {
      files.push_back(p.string());
    }
    it.increment(fec);
    if (fec) {
      std::lock_guard<std::mutex> lk(impl_->mu);
      impl_->spool_diag.push_back("spool: scan of '" + dir +
                                  "' aborted: " + fec.message());
      break;
    }
  }
  std::sort(files.begin(), files.end());

  int submitted = 0;
  for (const std::string& f : files) {
    {
      std::lock_guard<std::mutex> lk(impl_->mu);
      if (impl_->spooled.count(f) != 0) continue;
    }

    // A torn read here means we raced a non-atomic writer; retry briefly
    // before declaring the file malformed for good.
    std::string err;
    TenantSpec spec;
    bool parsed = false;
    for (int attempt = 0; attempt < 3 && !parsed; ++attempt) {
      if (attempt > 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(10 << attempt));
      std::ifstream in(f);
      std::ostringstream text;
      text << in.rdbuf();
      if (!in) {
        err = "cannot read file";
        continue;
      }
      try {
        spec = parse_submission(text.str());
        parsed = true;
      } catch (const Error& e) {
        err = e.what();
      }
    }
    {
      std::lock_guard<std::mutex> lk(impl_->mu);
      impl_->spooled.insert(f);
    }
    if (parsed) {
      impl_->submit(spec);
      ++submitted;
      continue;
    }

    // Persistently malformed: quarantine the file under spool/bad/ with a
    // sibling .reason note so it stops being rescanned and the operator
    // can see why, and record it as a failed tenant.
    const fs::path src(f);
    const std::string fname = src.filename().string();
    std::error_code mec;
    if (!fs::exists(src, mec)) {
      std::lock_guard<std::mutex> lk(impl_->mu);
      impl_->spool_diag.push_back("spool: '" + f +
                                  "' vanished during scan; skipped");
      continue;
    }
    const fs::path baddir = src.parent_path() / "bad";
    fs::create_directories(baddir, mec);
    const fs::path dst = baddir / fname;
    if (!mec) fs::rename(src, dst, mec);
    std::string note;
    if (mec) {
      note = "spool: malformed '" + f + "' (" + err +
             "); could not move to bad/: " + mec.message();
    } else {
      std::ofstream reason(dst.string() + ".reason", std::ios::trunc);
      reason << err << '\n';
      note = "spool: malformed '" + f + "' moved to '" + dst.string() +
             "': " + err;
    }
    {
      std::lock_guard<std::mutex> lk(impl_->mu);
      impl_->spool_diag.push_back(note);
    }
    impl_->record_failed(fname, "malformed spool file: " + err);
  }
  return submitted;
}

bool Daemon::drain(double timeout_seconds) {
  {
    std::lock_guard<std::mutex> lk(impl_->mu);
    impl_->draining = true;  // submit() now rejects everything
    for (auto& t : impl_->tenants) {
      if (t->state != TenantState::kRunning) continue;
      if (t->program) {
        t->drain_requested = true;
        t->drain_firings = -1;
        t->drain_stable_since = 0.0;
        t->program->request_drain();
      } else {
        // Restart backoff: there is nothing running to retire.
        t->reason = "drained during restart backoff";
        impl_->conclude(*t, TenantState::kDrained);
      }
    }
    impl_->cv.notify_all();
  }
  const bool idle = wait_idle(timeout_seconds);
  if (!idle) {
    std::lock_guard<std::mutex> lk(impl_->mu);
    for (auto& t : impl_->tenants)
      if (t->state == TenantState::kRunning) {
        t->reason = "drain timeout exceeded; stopped mid-frame";
        impl_->conclude(*t, TenantState::kDrained);
      }
    impl_->cv.notify_all();
  }
  return idle;
}

int Daemon::recover(const std::string& journal_path) {
  const std::vector<JournalEntry> entries = replay_journal(journal_path);
  int resumed = 0;
  for (const JournalEntry& e : entries) {
    if (e.resumable() && e.has_spec) {
      submit(e.spec);  // normal admission; journaled like any submission
      ++resumed;
      continue;
    }
    // Terminal (or spec-less) entries are restored as frozen roster
    // entries: quarantine and eviction decisions survive the restart.
    std::lock_guard<std::mutex> lk(impl_->mu);
    auto t = std::make_unique<Tenant>();
    t->id = static_cast<int>(impl_->tenants.size());
    if (e.has_spec) {
      t->spec = e.spec;
      t->app_label = e.spec.app.empty() ? "(graph)" : e.spec.app;
    } else {
      t->spec.name = e.name;
      t->app_label = "(recovered)";
    }
    if (e.resumable()) {
      // Resumable per the journal, but the spec never made it to disk —
      // nothing to restart from.
      t->state = TenantState::kFailed;
      t->reason = "recover: spec unavailable; cannot resume (was " + e.state +
                  ")";
    } else {
      t->state = state_from_name(e.state);
      t->reason = e.reason;
    }
    t->restarts = e.restarts;
    t->placement.verdict = verdict_from_name(e.verdict);
    t->final_status = impl_->snapshot_common(*t);
    t->finalized = true;
    impl_->journal.record_submission(
        t->id, e.has_spec ? &t->spec : nullptr, t->spec.name, e.verdict,
        state_name(t->state), t->reason, t->restarts);
    impl_->tenants.push_back(std::move(t));
  }
  return resumed;
}

std::vector<std::string> Daemon::spool_diagnostics() {
  std::lock_guard<std::mutex> lk(impl_->mu);
  std::vector<std::string> out;
  out.swap(impl_->spool_diag);
  return out;
}

bool Daemon::wait_idle(double timeout_seconds) {
  std::unique_lock<std::mutex> lk(impl_->mu);
  return impl_->cv.wait_for(
      lk, std::chrono::duration<double>(timeout_seconds),
      [&] { return impl_->running == 0; });
}

TenantStatus Daemon::tenant(int id) const {
  std::lock_guard<std::mutex> lk(impl_->mu);
  return impl_->snapshot(*impl_->tenants.at(static_cast<size_t>(id)));
}

std::vector<TenantStatus> Daemon::tenants() const {
  std::lock_guard<std::mutex> lk(impl_->mu);
  std::vector<TenantStatus> out;
  out.reserve(impl_->tenants.size());
  for (const auto& t : impl_->tenants) out.push_back(impl_->snapshot(*t));
  return out;
}

PoolStatus Daemon::pool() const {
  std::lock_guard<std::mutex> lk(impl_->mu);
  return impl_->pool_status();
}

int Daemon::cores() const { return impl_->machine.cores(); }

void Daemon::write_status(std::ostream& os) const {
  const PoolStatus p = pool();
  const std::vector<TenantStatus> ts = tenants();
  char line[512];
  std::snprintf(line, sizeof line,
                "bpd: pool %d cores, load %.2f/%.2f PE (%.0f%%), tenants: %d "
                "running, %d completed, %d drained, %d evicted, %d "
                "quarantined, %d rejected, %d failed\n",
                p.cores, p.load, p.capacity,
                p.capacity > 0.0 ? 100.0 * p.load / p.capacity : 0.0,
                p.running, p.completed, p.drained, p.evicted, p.quarantined,
                p.rejected, p.failed);
  os << line;
  for (const TenantStatus& s : ts) {
    std::snprintf(line, sizeof line, "tenant %d '%s' app=%s: state=%s admission=%s",
                  s.id, s.name.c_str(), s.app.c_str(), state_name(s.state),
                  verdict_name(s.admission));
    os << line;
    if (s.state == TenantState::kRejected || s.state == TenantState::kFailed) {
      os << " reason=\"" << s.reason << "\"\n";
      continue;
    }
    std::snprintf(line, sizeof line,
                  " demand=%.2f rate=%.1fHz frames=%ld missed=%ld shed=%ld "
                  "firings=%ld",
                  s.demand, s.rate_hz, s.frames_completed, s.deadline_misses,
                  s.frames_shed, s.firings);
    os << line;
    if (s.restarts > 0) {
      std::snprintf(line, sizeof line, " restarts=%d", s.restarts);
      os << line;
    }
    if (s.predicted_period_seconds > 0.0) {
      std::snprintf(line, sizeof line, " predicted_period=%.2fms%s",
                    s.predicted_period_seconds * 1e3,
                    s.predictor_consistent ? "" : " predictor=INCONSISTENT");
      os << line;
    }
    if (s.frames_completed > 0) {
      std::snprintf(line, sizeof line,
                    " latency_p50=%.2fms latency_p95=%.2fms min_slack=%.2fms",
                    s.latency_p50 * 1e3, s.latency_p95 * 1e3,
                    s.min_slack * 1e3);
      os << line;
    }
    if (s.state == TenantState::kEvicted ||
        s.state == TenantState::kQuarantined ||
        s.state == TenantState::kDrained)
      os << " reason=\"" << s.reason << "\"";
    os << '\n';
  }
}

std::string Daemon::status_json() const {
  const PoolStatus p = pool();
  const std::vector<TenantStatus> ts = tenants();
  json::Object pool_o;
  pool_o["cores"] = p.cores;
  pool_o["load_pe"] = p.load;
  pool_o["capacity_pe"] = p.capacity;
  pool_o["running"] = p.running;
  pool_o["completed"] = p.completed;
  pool_o["drained"] = p.drained;
  pool_o["evicted"] = p.evicted;
  pool_o["quarantined"] = p.quarantined;
  pool_o["rejected"] = p.rejected;
  pool_o["failed"] = p.failed;
  json::Array arr;
  for (const TenantStatus& s : ts) {
    json::Object o;
    o["id"] = s.id;
    o["name"] = s.name;
    o["app"] = s.app;
    o["state"] = state_name(s.state);
    o["admission"] = verdict_name(s.admission);
    o["reason"] = s.reason;
    o["demand_pe"] = s.demand;
    o["rate_hz"] = s.rate_hz;
    o["restarts"] = s.restarts;
    o["frames_completed"] = s.frames_completed;
    o["deadline_misses"] = s.deadline_misses;
    o["frames_shed"] = s.frames_shed;
    o["firings"] = s.firings;
    o["faults_injected"] = s.faults_injected;
    o["wall_seconds"] = s.wall_seconds;
    o["latency_p50_seconds"] = s.latency_p50;
    o["latency_p95_seconds"] = s.latency_p95;
    o["min_slack_seconds"] = s.min_slack;
    o["predicted_period_seconds"] = s.predicted_period_seconds;
    o["predictor_deviation_pe"] = s.predictor_deviation;
    o["predictor_consistent"] = s.predictor_consistent;
    arr.push_back(json::Value(std::move(o)));
  }
  json::Object root;
  root["pool"] = json::Value(std::move(pool_o));
  root["tenants"] = json::Value(std::move(arr));
  return json::write(json::Value(std::move(root)));
}

}  // namespace bpp::service
