#pragma once
// Analytical admission control for the multi-tenant pipeline service.
//
// The compiler already prices every kernel (LoadMap, §III-A/§V): a
// kernel's utilization is the fraction of one model PE it consumes, and a
// compiled mapping groups kernels onto virtual cores each sized to stay
// under the machine's target_utilization. Admission reuses exactly that
// model instead of measuring: a tenant's demand is its per-virtual-core
// utilization vector, and the pool is `cores` PEs of budgeted capacity.
// This is the bi-criteria throughput/latency trade of Benoit et al. made
// operational — admit while the analytic schedule still closes, degrade
// (frame-shed) in a bounded band past that, reject beyond it.
//
// Placement is greedy worst-fit: virtual cores sorted by descending
// demand, each onto the currently least-loaded pool core. The verdict is
// decided by the peak pool-core load after placement:
//
//   peak <= core_budget      -> kAdmitted  (analytic schedule closes)
//   peak <= degrade_budget   -> kDegraded  (admit with frame shedding)
//   otherwise                -> kRejected
//
// A tenant whose *total* demand exceeds the whole pool's degrade budget is
// rejected even on an empty pool, which makes the oversubscriber in the
// CI smoke test deterministic regardless of submission order.

#include <string>
#include <vector>

#include "compiler/loads.h"
#include "compiler/machine.h"
#include "compiler/multiplex.h"
#include "compiler/pipeline.h"
#include "core/graph.h"

namespace bpp::service {

struct AdmissionPolicy {
  /// Pool-core load (in model-PE units) up to which a tenant is admitted
  /// outright. Mirrors MachineSpec::target_utilization.
  double core_budget = 0.9;
  /// Load up to which a tenant is admitted in degraded (frame-shedding)
  /// mode instead of being rejected.
  double degrade_budget = 1.25;
  /// Master switch (--no-admission): everything is admitted, placement
  /// still balances but nothing is rejected or degraded.
  bool enabled = true;
};

enum class Verdict { kAdmitted, kDegraded, kRejected };

[[nodiscard]] const char* verdict_name(Verdict v);

/// One admission decision: the verdict, the virtual-core -> pool-core
/// placement that produced it, and the loads that justify it.
struct Placement {
  Verdict verdict = Verdict::kRejected;
  /// pool core hosting each virtual core; empty when rejected.
  std::vector<int> pool_core_of_vcore;
  /// Highest pool-core load (PE units) after placing this tenant.
  double peak_load = 0.0;
  /// The tenant's total demand in PE units (sum of virtual-core loads).
  double demand = 0.0;
  std::string reason;  ///< human-readable justification
};

/// Per-virtual-core utilization of a compiled mapping: the sum of its
/// kernels' LoadModel utilizations. Sources are excluded — they model the
/// sensor, not a PE (the host runtime parks them between paced releases)
/// — matching the compiler's estimated_utilization convention.
[[nodiscard]] std::vector<double> vcore_utilization(const Graph& g,
                                                    const LoadMap& loads,
                                                    const Mapping& mapping,
                                                    const MachineSpec& m);

/// Differential cross-check of the LoadMap admission ledger against the
/// compositional predictor (src/predict). Both price the same compiled
/// app by independent routes — the ledger sums LoadModel utilizations per
/// virtual core, the predictor composes per-frame demand (including the
/// token forwards the LoadMap omits) through the same mapping — so their
/// per-virtual-core vectors must agree to within a small margin. A large
/// deviation means one of the two models is wrong for this graph; the
/// daemon records it in the tenant's reason rather than trusting either
/// side blindly.
struct PredictionCrossCheck {
  bool exact = false;  ///< predictor ran in its exact composition tier
  double predicted_period_seconds = 0.0;  ///< standalone steady period
  bool meets_realtime = false;  ///< predictor verdict on the tenant's own
                                ///< compiled mapping (1 vcore = 1 PE)
  double max_abs_deviation = 0.0;  ///< worst per-vcore |predictor-ledger|, PE
  bool consistent = false;         ///< deviation within tolerance
};

[[nodiscard]] PredictionCrossCheck cross_check_prediction(
    const CompiledApp& app, const std::vector<double>& vcore_util,
    double tolerance = 0.05);

/// The pool's capacity ledger. Not thread-safe; the daemon serializes
/// calls under its own lock.
class AdmissionController {
 public:
  AdmissionController(int pool_cores, AdmissionPolicy policy);

  /// Decide and (unless rejected) commit a tenant's demand onto the pool.
  [[nodiscard]] Placement admit(const std::vector<double>& vcore_util);

  /// Return a previously committed tenant's demand to the pool (tenant
  /// finished or was evicted).
  void release(const Placement& p, const std::vector<double>& vcore_util);

  [[nodiscard]] const AdmissionPolicy& policy() const { return policy_; }
  [[nodiscard]] int cores() const { return static_cast<int>(load_.size()); }
  /// Committed load of one pool core, in PE units.
  [[nodiscard]] double core_load(int core) const {
    return load_.at(static_cast<size_t>(core));
  }
  /// Total committed load across the pool, in PE units.
  [[nodiscard]] double total_load() const;
  /// Pool capacity in PE units at the admit budget.
  [[nodiscard]] double capacity() const {
    return static_cast<double>(load_.size()) * policy_.core_budget;
  }

 private:
  AdmissionPolicy policy_;
  std::vector<double> load_;  ///< committed PE-units per pool core
};

}  // namespace bpp::service
