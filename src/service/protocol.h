#pragma once
// bpd wire protocol: tenant submissions and status reports.
//
// A submission is one JSON object (written/read with src/serialize's
// sorted-key json::Value, so round-trips are deterministic):
//
//   {
//     "name": "cam0",               // required, unique per daemon
//     "app": "fig1",                // bundled app name ...
//     "graph": "bpp-graph 1\n...",  // ... or inline bpp-graph text
//     "frame": "64x48",             // WxH (radio: W = samples)
//     "rate_hz": 150.0,
//     "frames": 30,
//     "bins": 32,
//     "slack_seconds": 0.005,       // deadline grace per frame
//     "pace_slowdown": 1.0,         // stretch of the release schedule
//     "allow_degraded": true,       // accept frame-shedding admission
//     "faults": { ... },            // inline fault plan (src/fault/plan.h)
//     "fault_seed": 7               // overrides the plan's default seed
//   }
//
// Exactly one of "app" / "graph" must be present; everything else has the
// defaults below. Submissions arrive either as files passed to
// `bpd --submit` or dropped into a spool directory (`bpd --spool DIR`),
// which the daemon scans in sorted filename order — the file-drop
// equivalent of a local-socket submit, chosen so the protocol needs no
// platform socket code and stays trivially scriptable in CI.

#include <string>

#include "core/geometry.h"

namespace bpp::service {

struct TenantSpec {
  std::string name;
  std::string app;         ///< bundled app name (empty when graph_text set)
  std::string graph_text;  ///< inline bpp-graph source
  Size2 frame{48, 36};
  double rate_hz = 180.0;
  int frames = 8;
  int bins = 32;
  double slack_seconds = 0.005;
  double pace_slowdown = 1.0;
  bool allow_degraded = true;
  std::string fault_plan_json;  ///< inline plan, "" = none
  std::uint64_t fault_seed = 0;
  bool fault_seed_set = false;
};

/// Parse one submission object. Throws bpp::Error on malformed JSON,
/// missing/duplicate graph source, unknown keys, or out-of-range values.
[[nodiscard]] TenantSpec parse_submission(const std::string& json_text);

/// Serialize a spec back to JSON (sorted keys; parse(write(s)) == s).
[[nodiscard]] std::string write_submission(const TenantSpec& spec);

}  // namespace bpp::service
