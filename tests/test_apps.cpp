// Benchmark application builders: every Fig. 13 program compiles, runs,
// and matches its golden reference end to end.

#include <gtest/gtest.h>

#include "apps/pipelines.h"
#include "compiler/pipeline.h"
#include "kernels/kernels.h"
#include "ref/reference.h"
#include "runtime/runtime.h"
#include "sim/simulator.h"

namespace bpp {
namespace {

const OutputKernel& result_of(const Graph& g) {
  return dynamic_cast<const OutputKernel&>(g.by_name("result"));
}

TEST(Apps, BayerMatchesReference) {
  const Size2 frame{16, 12};
  CompiledApp app = compile(apps::bayer_app(frame, 100.0, 2));
  ASSERT_TRUE(run_sequential(app.graph).completed);
  const auto& out = result_of(app.graph);
  ASSERT_EQ(out.frames().size(), 2u);
  for (int f = 0; f < 2; ++f) {
    const Tile mosaic = ref::make_frame(frame, f, default_pixel_fn());
    const Tile want = ref::bayer_demosaic(mosaic);
    ASSERT_EQ(out.frames()[static_cast<size_t>(f)].size(), want.size());
    for (int y = 0; y < want.height(); ++y)
      for (int x = 0; x < want.width(); ++x)
        EXPECT_NEAR(out.frames()[static_cast<size_t>(f)].at(x, y),
                    want.at(x, y), 1e-9)
            << f << ' ' << x << ' ' << y;
  }
}

TEST(Apps, HistogramMatchesReference) {
  const Size2 frame{20, 16};
  const int bins = 16;
  CompiledApp app = compile(apps::histogram_app(frame, 200.0, 2, bins));
  ASSERT_TRUE(run_sequential(app.graph).completed);
  const auto& out = result_of(app.graph);
  ASSERT_EQ(out.tiles().size(), 2u);
  std::vector<double> uppers(static_cast<size_t>(bins));
  for (int i = 0; i < bins; ++i)
    uppers[static_cast<size_t>(i)] = 256.0 * (i + 1) / bins;
  for (int f = 0; f < 2; ++f) {
    const Tile img = ref::make_frame(frame, f, default_pixel_fn());
    const auto want = ref::histogram(img, uppers);
    for (int i = 0; i < bins; ++i)
      EXPECT_EQ(static_cast<long>(out.tiles()[static_cast<size_t>(f)].at(i, 0)),
                want[static_cast<size_t>(i)]);
  }
}

TEST(Apps, MultiConvolutionMatchesReference) {
  const Size2 frame{24, 20};
  CompiledApp app = compile(apps::multi_convolution_app(frame, 60.0, 1));
  ASSERT_TRUE(run_sequential(app.graph).completed);
  const auto& out = result_of(app.graph);
  ASSERT_EQ(out.frames().size(), 1u);

  const Tile img = ref::make_frame(frame, 0, default_pixel_fn());
  const Tile s1 = ref::convolve(img, apps::blur_coeff3x3());
  const Tile s2 = ref::convolve(s1, apps::blur_coeff3x3());
  const Tile want = ref::convolve(s2, apps::blur_coeff5x5());
  ASSERT_EQ(out.frames()[0].size(), want.size());
  for (int y = 0; y < want.height(); ++y)
    for (int x = 0; x < want.width(); ++x)
      EXPECT_NEAR(out.frames()[0].at(x, y), want.at(x, y), 1e-9);
}

TEST(Apps, SobelThresholdMatchesReference) {
  const Size2 frame{18, 14};
  const double level = 60.0;
  CompiledApp app = compile(apps::sobel_app(frame, 60.0, 1, level));
  ASSERT_TRUE(run_sequential(app.graph).completed);
  const auto& out = result_of(app.graph);
  ASSERT_EQ(out.frames().size(), 1u);

  const Tile img = ref::make_frame(frame, 0, default_pixel_fn());
  const Tile grad = ref::sobel(img);
  for (int y = 0; y < grad.height(); ++y)
    for (int x = 0; x < grad.width(); ++x)
      EXPECT_DOUBLE_EQ(out.frames()[0].at(x, y),
                       grad.at(x, y) > level ? 1.0 : 0.0);
}

TEST(Apps, DownsampleConvMatchesReference) {
  const Size2 frame{20, 16};
  CompiledApp app = compile(apps::downsample_app(frame, 60.0, 1));
  ASSERT_TRUE(run_sequential(app.graph).completed);
  const auto& out = result_of(app.graph);
  ASSERT_EQ(out.frames().size(), 1u);

  const Tile img = ref::make_frame(frame, 0, default_pixel_fn());
  const Tile want =
      ref::convolve(ref::downsample(img, 2), apps::blur_coeff3x3());
  ASSERT_EQ(out.frames()[0].size(), want.size());
  for (int y = 0; y < want.height(); ++y)
    for (int x = 0; x < want.width(); ++x)
      EXPECT_NEAR(out.frames()[0].at(x, y), want.at(x, y), 1e-9);
}

TEST(Apps, ParallelBufferMatchesReference) {
  const Size2 frame{40, 20};
  CompiledApp app = compile(apps::parallel_buffer_app(frame, 40.0, 1));
  // Storage pressure must have split the 9x9 buffer on this machine.
  ASSERT_FALSE(app.parallelization.buffer_splits.empty());
  ASSERT_TRUE(run_sequential(app.graph).completed);

  const Tile img = ref::make_frame(frame, 0, default_pixel_fn());
  const Tile want = ref::convolve(img, Tile(Size2{9, 9}, 1.0 / 81.0));
  const auto& out = result_of(app.graph);
  ASSERT_EQ(out.frames().size(), 1u);
  ASSERT_EQ(out.frames()[0].size(), want.size());
  for (int y = 0; y < want.height(); ++y)
    for (int x = 0; x < want.width(); ++x)
      EXPECT_NEAR(out.frames()[0].at(x, y), want.at(x, y), 1e-9);
}

struct TagCase {
  const char* tag;
};

class Fig11Configs : public ::testing::TestWithParam<TagCase> {};

TEST_P(Fig11Configs, CompileRunMatchReference) {
  const std::string tag = GetParam().tag;
  for (const auto& cfg : apps::fig11_configs()) {
    if (tag != cfg.tag) continue;
    const int bins = 64;
    CompiledApp app = compile(apps::figure1_app(cfg.frame, cfg.rate_hz, 1, bins));
    ASSERT_TRUE(run_sequential(app.graph).completed);
    const Tile img = ref::make_frame(cfg.frame, 0, default_pixel_fn());
    const auto want = ref::figure1_histogram(img, apps::blur_coeff5x5(),
                                             apps::diff_bins(bins));
    const auto& out = result_of(app.graph);
    ASSERT_EQ(out.tiles().size(), 1u);
    for (int i = 0; i < bins; ++i)
      EXPECT_EQ(static_cast<long>(out.tiles()[0].at(i, 0)),
                want[static_cast<size_t>(i)])
          << tag << " bin " << i;
    return;
  }
  FAIL() << "unknown tag " << tag;
}

INSTANTIATE_TEST_SUITE_P(AllFour, Fig11Configs,
                         ::testing::Values(TagCase{"SS"}, TagCase{"BS"},
                                           TagCase{"SF"}, TagCase{"BF"}));

TEST(Apps, Fig11ShapesFollowThePaper) {
  // Fig. 11's qualitative claims: faster rates replicate the computation
  // kernels more; bigger inputs split the buffers.
  std::map<std::string, CompiledApp> apps_by_tag;
  for (const auto& cfg : apps::fig11_configs())
    apps_by_tag.emplace(cfg.tag,
                        compile(apps::figure1_app(cfg.frame, cfg.rate_hz, 1, 64)));

  auto factor = [&](const char* tag, const char* kernel) {
    const auto& f = apps_by_tag.at(tag).parallelization.factors;
    auto it = f.find(kernel);
    return it == f.end() ? 1 : it->second;
  };

  EXPECT_GT(factor("SF", "conv5x5"), factor("SS", "conv5x5"));
  EXPECT_GT(factor("BF", "conv5x5"), factor("BS", "conv5x5"));
  EXPECT_GE(factor("SF", "median3x3"), factor("SS", "median3x3"));
  EXPECT_GT(factor("SF", "histogram"), 1);
  EXPECT_GT(factor("BF", "histogram"), 1);

  EXPECT_FALSE(apps_by_tag.at("BS").parallelization.buffer_splits.empty());
  EXPECT_FALSE(apps_by_tag.at("BF").parallelization.buffer_splits.empty());
}


TEST(Apps, SeparableBlurEqualsFull2D) {
  // (5x1) then (1x5) binomial convolution equals the full 5x5 filter —
  // non-square windows through buffering, alignment, and parallelization.
  const Size2 frame{24, 20};
  CompiledApp app = compile(apps::separable_blur_app(frame, 150.0, 1));
  ASSERT_TRUE(run_sequential(app.graph).completed);
  const auto& out = result_of(app.graph);
  ASSERT_EQ(out.frames().size(), 1u);

  const Tile img = ref::make_frame(frame, 0, default_pixel_fn());
  const Tile want = ref::convolve(img, apps::blur_coeff5x5());
  ASSERT_EQ(out.frames()[0].size(), want.size());
  for (int y = 0; y < want.height(); ++y)
    for (int x = 0; x < want.width(); ++x)
      EXPECT_NEAR(out.frames()[0].at(x, y), want.at(x, y), 1e-9);
}

TEST(Apps, SeparableBlurBuffersAreOneDimensional) {
  CompiledApp app = compile(apps::separable_blur_app({24, 20}, 150.0, 1));
  // The horizontal stage needs no row buffering (5x1 window -> [Wx2]);
  // the vertical stage needs 2x5 rows.
  bool horiz = false, vert = false;
  for (const auto& b : app.buffers) {
    if (b.consumer.rfind("blurH", 0) == 0) {
      EXPECT_EQ(b.annotation, "[24x2]");
      horiz = true;
    }
    if (b.consumer.rfind("blurV", 0) == 0) {
      EXPECT_EQ(b.annotation, "[20x10]");
      vert = true;
    }
  }
  EXPECT_TRUE(horiz);
  EXPECT_TRUE(vert);
}


TEST(Apps, AnalyticsFlagshipMatchesComposedReference) {
  // The full composition: temporal IIR -> separable blur -> {edge branch
  // (sobel, threshold, dilate), histogram branch (serial merge)}.
  const Size2 frame{24, 20};
  const int frames = 3, bins = 16;
  const double alpha = 0.4, level = 120.0;
  CompiledApp app = compile(apps::analytics_app(frame, 100.0, frames, alpha,
                                                level, bins));
  ASSERT_TRUE(run_sequential(app.graph).completed);

  const auto& edges = dynamic_cast<const OutputKernel&>(app.graph.by_name("edges"));
  const auto& stats = dynamic_cast<const OutputKernel&>(app.graph.by_name("stats"));
  ASSERT_EQ(edges.frames().size(), static_cast<size_t>(frames));
  ASSERT_EQ(stats.tiles().size(), static_cast<size_t>(frames));

  std::vector<double> uppers(static_cast<size_t>(bins));
  for (int i = 0; i < bins; ++i)
    uppers[static_cast<size_t>(i)] = 256.0 * (i + 1) / bins;

  Tile prev(frame);
  for (int f = 0; f < frames; ++f) {
    const Tile x = ref::make_frame(frame, f, default_pixel_fn());
    Tile y(frame);
    for (int j = 0; j < frame.h; ++j)
      for (int i = 0; i < frame.w; ++i)
        y.at(i, j) = alpha * x.at(i, j) + (1 - alpha) * prev.at(i, j);
    prev = y;

    const Tile blurred = ref::convolve(y, apps::blur_coeff5x5());
    // Edge branch.
    Tile grad = ref::sobel(blurred);
    for (int j = 0; j < grad.height(); ++j)
      for (int i = 0; i < grad.width(); ++i)
        grad.at(i, j) = grad.at(i, j) > level ? 1.0 : 0.0;
    const Tile cleaned = ref::dilate(grad, 3, 3);
    ASSERT_EQ(edges.frames()[static_cast<size_t>(f)].size(), cleaned.size());
    for (int j = 0; j < cleaned.height(); ++j)
      for (int i = 0; i < cleaned.width(); ++i)
        ASSERT_DOUBLE_EQ(edges.frames()[static_cast<size_t>(f)].at(i, j),
                         cleaned.at(i, j))
            << "frame " << f;
    // Statistics branch.
    const auto want = ref::histogram(blurred, uppers);
    for (int i = 0; i < bins; ++i)
      EXPECT_EQ(static_cast<long>(stats.tiles()[static_cast<size_t>(f)].at(i, 0)),
                want[static_cast<size_t>(i)])
          << "frame " << f << " bin " << i;
  }
}

TEST(Apps, AnalyticsParallelizesAndMeetsRealTime) {
  CompiledApp app = compile(apps::analytics_app({48, 36}, 320.0, 2));
  // The separable blur stages and sobel should replicate at this rate.
  EXPECT_FALSE(app.parallelization.factors.empty());
  SimOptions opt;
  opt.machine = app.options.machine;
  Graph g = app.graph.clone();
  const SimResult r = simulate(g, app.mapping, opt);
  EXPECT_TRUE(r.completed) << r.diagnostics;
  EXPECT_TRUE(r.realtime_met) << r.max_input_lag_seconds;
}

}  // namespace
}  // namespace bpp
