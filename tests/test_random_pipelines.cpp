// Randomized end-to-end property tests: seeded random kernel chains (and
// two-branch difference graphs) are compiled — buffering, alignment,
// parallelization, multiplexing — executed, and compared bit-exactly
// against the composed scalar reference. This is the broadest invariant
// in the system: every transformation is semantics-preserving.

#include <gtest/gtest.h>

#include <cstdint>

#include "apps/pipelines.h"
#include "compiler/pipeline.h"
#include "kernels/kernels.h"
#include "ref/reference.h"
#include "runtime/runtime.h"

namespace bpp {
namespace {

std::uint64_t splitmix(std::uint64_t& s) {
  s += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = s;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// One randomly chosen stage: how it extends the graph and how it
/// transforms the reference frame.
struct Stage {
  enum Kind { Conv3, Conv5, Median3, Sobel, Scale, Threshold, Down2 } kind;

  /// Pixels consumed from each side (to keep the frame large enough).
  [[nodiscard]] int shrink() const {
    switch (kind) {
      case Conv3:
      case Median3:
      case Sobel:
        return 2;
      case Conv5:
        return 4;
      default:
        return 0;
    }
  }

  Kernel* append(Graph& g, int idx) const {
    const std::string n = "stage" + std::to_string(idx);
    switch (kind) {
      case Conv3: {
        auto& k = g.add<ConvolutionKernel>(n, 3, 3);
        g.connect(g.add<ConstSource>(n + "_c", apps::blur_coeff3x3()), "out", k,
                  "coeff");
        return &k;
      }
      case Conv5: {
        auto& k = g.add<ConvolutionKernel>(n, 5, 5);
        g.connect(g.add<ConstSource>(n + "_c", apps::blur_coeff5x5()), "out", k,
                  "coeff");
        return &k;
      }
      case Median3:
        return &g.add<MedianKernel>(n, 3, 3);
      case Sobel:
        return &g.add<SobelKernel>(n);
      case Scale:
        return &g.add_kernel(make_scale(n, 0.5, 8.0));
      case Threshold:
        return &g.add_kernel(make_threshold(n, 96.0));
      case Down2:
        return &g.add<DownsampleKernel>(n, 2);
    }
    return nullptr;
  }

  [[nodiscard]] Tile reference(const Tile& in) const {
    switch (kind) {
      case Conv3:
        return ref::convolve(in, apps::blur_coeff3x3());
      case Conv5:
        return ref::convolve(in, apps::blur_coeff5x5());
      case Median3:
        return ref::median(in, 3, 3);
      case Sobel:
        return ref::sobel(in);
      case Scale: {
        Tile out(in.size());
        for (int y = 0; y < in.height(); ++y)
          for (int x = 0; x < in.width(); ++x)
            out.at(x, y) = 0.5 * in.at(x, y) + 8.0;
        return out;
      }
      case Threshold: {
        Tile out(in.size());
        for (int y = 0; y < in.height(); ++y)
          for (int x = 0; x < in.width(); ++x)
            out.at(x, y) = in.at(x, y) > 96.0 ? 1.0 : 0.0;
        return out;
      }
      case Down2:
        return ref::downsample(in, 2);
    }
    return in;
  }
};

std::vector<Stage> random_stages(std::uint64_t& rng, int max_stages,
                                 Size2& frame_left) {
  std::vector<Stage> stages;
  const int n = 1 + static_cast<int>(splitmix(rng) % max_stages);
  for (int i = 0; i < n; ++i) {
    const auto kind = static_cast<Stage::Kind>(splitmix(rng) % 7);
    Stage s{kind};
    Size2 next = {frame_left.w - s.shrink(), frame_left.h - s.shrink()};
    if (kind == Stage::Down2) next = {frame_left.w / 2, frame_left.h / 2};
    if (next.w < 8 || next.h < 8) break;  // keep enough room downstream
    if (kind == Stage::Down2 && (frame_left.w % 2 || frame_left.h % 2))
      continue;  // exact tilings only
    stages.push_back(s);
    frame_left = next;
  }
  if (stages.empty()) stages.push_back(Stage{Stage::Scale});
  return stages;
}

class RandomChain : public ::testing::TestWithParam<int> {};

TEST_P(RandomChain, CompiledChainMatchesComposedReference) {
  std::uint64_t rng = 0xC0FFEE ^ (static_cast<std::uint64_t>(GetParam()) << 20);
  const Size2 frame{static_cast<int>(20 + splitmix(rng) % 16),
                    static_cast<int>(18 + splitmix(rng) % 10)};
  const double rate = 50.0 + static_cast<double>(splitmix(rng) % 300);
  Size2 left = frame;
  const std::vector<Stage> stages = random_stages(rng, 4, left);

  Graph g;
  Kernel* prev = &g.add<InputKernel>("input", frame, rate, 1);
  for (size_t i = 0; i < stages.size(); ++i) {
    Kernel* k = stages[i].append(g, static_cast<int>(i));
    g.connect(*prev, "out", *k, "in");
    prev = k;
  }
  auto& out = g.add<OutputKernel>("result");
  g.connect(*prev, "out", out, "in");

  CompileOptions opt;
  if (splitmix(rng) & 1) opt.machine.clock_hz /= 2;  // vary the pressure
  opt.reuse_opt = (splitmix(rng) & 2) != 0;
  CompiledApp app = compile(std::move(g), opt);
  ASSERT_TRUE(run_sequential(app.graph).completed)
      << stages.size() << " stages, frame " << to_string(frame);

  Tile want = ref::make_frame(frame, 0, default_pixel_fn());
  for (const Stage& s : stages) want = s.reference(want);

  const auto& res = dynamic_cast<const OutputKernel&>(app.graph.by_name("result"));
  ASSERT_EQ(res.frames().size(), 1u) << "stages=" << stages.size();
  ASSERT_EQ(res.frames()[0].size(), want.size());
  for (int y = 0; y < want.height(); ++y)
    for (int x = 0; x < want.width(); ++x)
      ASSERT_NEAR(res.frames()[0].at(x, y), want.at(x, y), 1e-9)
          << "seed " << GetParam() << " at (" << x << ',' << y << ')';
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomChain, ::testing::Range(0, 24));

class RandomDiff : public ::testing::TestWithParam<int> {};

TEST_P(RandomDiff, TwoBranchDifferenceAlignsAndMatches) {
  // input -> (windowed A, windowed B) -> subtract -> histogram-less sink.
  // The branches have random halos, so the alignment pass must trim.
  std::uint64_t rng = 0xBEEF ^ (static_cast<std::uint64_t>(GetParam()) << 18);
  const Size2 frame{static_cast<int>(22 + splitmix(rng) % 12),
                    static_cast<int>(20 + splitmix(rng) % 8)};

  auto windowed = [&](Graph& g, const std::string& name,
                      std::uint64_t pick) -> Kernel* {
    switch (pick % 4) {
      case 0: {
        auto& k = g.add<ConvolutionKernel>(name, 3, 3);
        g.connect(g.add<ConstSource>(name + "_c", apps::blur_coeff3x3()), "out",
                  k, "coeff");
        return &k;
      }
      case 1: {
        auto& k = g.add<ConvolutionKernel>(name, 5, 5);
        g.connect(g.add<ConstSource>(name + "_c", apps::blur_coeff5x5()), "out",
                  k, "coeff");
        return &k;
      }
      case 2:
        return &g.add<MedianKernel>(name, 3, 3);
      default:
        return &g.add<SobelKernel>(name);
    }
  };
  auto reference = [&](const Tile& in, std::uint64_t pick) {
    switch (pick % 4) {
      case 0:
        return ref::convolve(in, apps::blur_coeff3x3());
      case 1:
        return ref::convolve(in, apps::blur_coeff5x5());
      case 2:
        return ref::median(in, 3, 3);
      default:
        return ref::sobel(in);
    }
  };
  auto inset_of = [](std::uint64_t pick) { return pick % 4 == 1 ? 2 : 1; };

  const std::uint64_t pa = splitmix(rng);
  const std::uint64_t pb = splitmix(rng);

  Graph g;
  auto& in = g.add<InputKernel>("input", frame, 60.0, 1);
  Kernel* a = windowed(g, "branchA", pa);
  Kernel* b = windowed(g, "branchB", pb);
  Kernel& sub = g.add_kernel(make_subtract("diff"));
  auto& out = g.add<OutputKernel>("result");
  g.connect(in, "out", *a, "in");
  g.connect(in, "out", *b, "in");
  g.connect(*a, "out", sub, "in0");
  g.connect(*b, "out", sub, "in1");
  g.connect(sub, "out", out, "in");

  CompiledApp app = compile(std::move(g));
  ASSERT_TRUE(run_sequential(app.graph).completed);

  // Composed reference with trim alignment.
  const Tile img = ref::make_frame(frame, 0, default_pixel_fn());
  Tile ra = reference(img, pa);
  Tile rb = reference(img, pb);
  const int ia = inset_of(pa), ib = inset_of(pb);
  const int common = std::max(ia, ib);
  ra = ref::crop(ra, {common - ia, common - ia, common - ia, common - ia});
  rb = ref::crop(rb, {common - ib, common - ib, common - ib, common - ib});
  const Tile want = ref::subtract(ra, rb);

  const auto& res = dynamic_cast<const OutputKernel&>(app.graph.by_name("result"));
  ASSERT_EQ(res.frames().size(), 1u);
  ASSERT_EQ(res.frames()[0].size(), want.size());
  for (int y = 0; y < want.height(); ++y)
    for (int x = 0; x < want.width(); ++x)
      ASSERT_NEAR(res.frames()[0].at(x, y), want.at(x, y), 1e-9)
          << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDiff, ::testing::Range(0, 16));

}  // namespace
}  // namespace bpp
