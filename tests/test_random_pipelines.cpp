// Randomized end-to-end property tests: seeded random kernel chains (and
// two-branch difference graphs) are compiled — buffering, alignment,
// parallelization, multiplexing — executed, and compared bit-exactly
// against the composed scalar reference. This is the broadest invariant
// in the system: every transformation is semantics-preserving.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>

#include "apps/pipelines.h"
#include "compiler/pipeline.h"
#include "fault/degradation.h"
#include "fault/injector.h"
#include "fault/plan.h"
#include "kernels/feedback.h"
#include "kernels/kernels.h"
#include "ref/reference.h"
#include "runtime/runtime.h"

namespace bpp {
namespace {

std::uint64_t splitmix(std::uint64_t& s) {
  s += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = s;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// One randomly chosen stage: how it extends the graph and how it
/// transforms the reference frame.
struct Stage {
  enum Kind { Conv3, Conv5, Median3, Sobel, Scale, Threshold, Down2 } kind;

  /// Pixels consumed from each side (to keep the frame large enough).
  [[nodiscard]] int shrink() const {
    switch (kind) {
      case Conv3:
      case Median3:
      case Sobel:
        return 2;
      case Conv5:
        return 4;
      default:
        return 0;
    }
  }

  Kernel* append(Graph& g, int idx) const {
    const std::string n = "stage" + std::to_string(idx);
    switch (kind) {
      case Conv3: {
        auto& k = g.add<ConvolutionKernel>(n, 3, 3);
        g.connect(g.add<ConstSource>(n + "_c", apps::blur_coeff3x3()), "out", k,
                  "coeff");
        return &k;
      }
      case Conv5: {
        auto& k = g.add<ConvolutionKernel>(n, 5, 5);
        g.connect(g.add<ConstSource>(n + "_c", apps::blur_coeff5x5()), "out", k,
                  "coeff");
        return &k;
      }
      case Median3:
        return &g.add<MedianKernel>(n, 3, 3);
      case Sobel:
        return &g.add<SobelKernel>(n);
      case Scale:
        return &g.add_kernel(make_scale(n, 0.5, 8.0));
      case Threshold:
        return &g.add_kernel(make_threshold(n, 96.0));
      case Down2:
        return &g.add<DownsampleKernel>(n, 2);
    }
    return nullptr;
  }

  [[nodiscard]] Tile reference(const Tile& in) const {
    switch (kind) {
      case Conv3:
        return ref::convolve(in, apps::blur_coeff3x3());
      case Conv5:
        return ref::convolve(in, apps::blur_coeff5x5());
      case Median3:
        return ref::median(in, 3, 3);
      case Sobel:
        return ref::sobel(in);
      case Scale: {
        Tile out(in.size());
        for (int y = 0; y < in.height(); ++y)
          for (int x = 0; x < in.width(); ++x)
            out.at(x, y) = 0.5 * in.at(x, y) + 8.0;
        return out;
      }
      case Threshold: {
        Tile out(in.size());
        for (int y = 0; y < in.height(); ++y)
          for (int x = 0; x < in.width(); ++x)
            out.at(x, y) = in.at(x, y) > 96.0 ? 1.0 : 0.0;
        return out;
      }
      case Down2:
        return ref::downsample(in, 2);
    }
    return in;
  }
};

std::vector<Stage> random_stages(std::uint64_t& rng, int max_stages,
                                 Size2& frame_left) {
  std::vector<Stage> stages;
  const int n = 1 + static_cast<int>(splitmix(rng) % max_stages);
  for (int i = 0; i < n; ++i) {
    const auto kind = static_cast<Stage::Kind>(splitmix(rng) % 7);
    Stage s{kind};
    Size2 next = {frame_left.w - s.shrink(), frame_left.h - s.shrink()};
    if (kind == Stage::Down2) next = {frame_left.w / 2, frame_left.h / 2};
    if (next.w < 8 || next.h < 8) break;  // keep enough room downstream
    if (kind == Stage::Down2 && (frame_left.w % 2 || frame_left.h % 2))
      continue;  // exact tilings only
    stages.push_back(s);
    frame_left = next;
  }
  if (stages.empty()) stages.push_back(Stage{Stage::Scale});
  return stages;
}

class RandomChain : public ::testing::TestWithParam<int> {};

TEST_P(RandomChain, CompiledChainMatchesComposedReference) {
  std::uint64_t rng = 0xC0FFEE ^ (static_cast<std::uint64_t>(GetParam()) << 20);
  const Size2 frame{static_cast<int>(20 + splitmix(rng) % 16),
                    static_cast<int>(18 + splitmix(rng) % 10)};
  const double rate = 50.0 + static_cast<double>(splitmix(rng) % 300);
  Size2 left = frame;
  const std::vector<Stage> stages = random_stages(rng, 4, left);

  Graph g;
  Kernel* prev = &g.add<InputKernel>("input", frame, rate, 1);
  for (size_t i = 0; i < stages.size(); ++i) {
    Kernel* k = stages[i].append(g, static_cast<int>(i));
    g.connect(*prev, "out", *k, "in");
    prev = k;
  }
  auto& out = g.add<OutputKernel>("result");
  g.connect(*prev, "out", out, "in");

  CompileOptions opt;
  if (splitmix(rng) & 1) opt.machine.clock_hz /= 2;  // vary the pressure
  opt.reuse_opt = (splitmix(rng) & 2) != 0;
  CompiledApp app = compile(std::move(g), opt);
  ASSERT_TRUE(run_sequential(app.graph).completed)
      << stages.size() << " stages, frame " << to_string(frame);

  Tile want = ref::make_frame(frame, 0, default_pixel_fn());
  for (const Stage& s : stages) want = s.reference(want);

  const auto& res = dynamic_cast<const OutputKernel&>(app.graph.by_name("result"));
  ASSERT_EQ(res.frames().size(), 1u) << "stages=" << stages.size();
  ASSERT_EQ(res.frames()[0].size(), want.size());
  for (int y = 0; y < want.height(); ++y)
    for (int x = 0; x < want.width(); ++x)
      ASSERT_NEAR(res.frames()[0].at(x, y), want.at(x, y), 1e-9)
          << "seed " << GetParam() << " at (" << x << ',' << y << ')';
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomChain, ::testing::Range(0, 24));

class RandomDiff : public ::testing::TestWithParam<int> {};

TEST_P(RandomDiff, TwoBranchDifferenceAlignsAndMatches) {
  // input -> (windowed A, windowed B) -> subtract -> histogram-less sink.
  // The branches have random halos, so the alignment pass must trim.
  std::uint64_t rng = 0xBEEF ^ (static_cast<std::uint64_t>(GetParam()) << 18);
  const Size2 frame{static_cast<int>(22 + splitmix(rng) % 12),
                    static_cast<int>(20 + splitmix(rng) % 8)};

  auto windowed = [&](Graph& g, const std::string& name,
                      std::uint64_t pick) -> Kernel* {
    switch (pick % 4) {
      case 0: {
        auto& k = g.add<ConvolutionKernel>(name, 3, 3);
        g.connect(g.add<ConstSource>(name + "_c", apps::blur_coeff3x3()), "out",
                  k, "coeff");
        return &k;
      }
      case 1: {
        auto& k = g.add<ConvolutionKernel>(name, 5, 5);
        g.connect(g.add<ConstSource>(name + "_c", apps::blur_coeff5x5()), "out",
                  k, "coeff");
        return &k;
      }
      case 2:
        return &g.add<MedianKernel>(name, 3, 3);
      default:
        return &g.add<SobelKernel>(name);
    }
  };
  auto reference = [&](const Tile& in, std::uint64_t pick) {
    switch (pick % 4) {
      case 0:
        return ref::convolve(in, apps::blur_coeff3x3());
      case 1:
        return ref::convolve(in, apps::blur_coeff5x5());
      case 2:
        return ref::median(in, 3, 3);
      default:
        return ref::sobel(in);
    }
  };
  auto inset_of = [](std::uint64_t pick) { return pick % 4 == 1 ? 2 : 1; };

  const std::uint64_t pa = splitmix(rng);
  const std::uint64_t pb = splitmix(rng);

  Graph g;
  auto& in = g.add<InputKernel>("input", frame, 60.0, 1);
  Kernel* a = windowed(g, "branchA", pa);
  Kernel* b = windowed(g, "branchB", pb);
  Kernel& sub = g.add_kernel(make_subtract("diff"));
  auto& out = g.add<OutputKernel>("result");
  g.connect(in, "out", *a, "in");
  g.connect(in, "out", *b, "in");
  g.connect(*a, "out", sub, "in0");
  g.connect(*b, "out", sub, "in1");
  g.connect(sub, "out", out, "in");

  CompiledApp app = compile(std::move(g));
  ASSERT_TRUE(run_sequential(app.graph).completed);

  // Composed reference with trim alignment.
  const Tile img = ref::make_frame(frame, 0, default_pixel_fn());
  Tile ra = reference(img, pa);
  Tile rb = reference(img, pb);
  const int ia = inset_of(pa), ib = inset_of(pb);
  const int common = std::max(ia, ib);
  ra = ref::crop(ra, {common - ia, common - ia, common - ia, common - ia});
  rb = ref::crop(rb, {common - ib, common - ib, common - ib, common - ib});
  const Tile want = ref::subtract(ra, rb);

  const auto& res = dynamic_cast<const OutputKernel&>(app.graph.by_name("result"));
  ASSERT_EQ(res.frames().size(), 1u);
  ASSERT_EQ(res.frames()[0].size(), want.size());
  for (int y = 0; y < want.height(); ++y)
    for (int x = 0; x < want.width(); ++x)
      ASSERT_NEAR(res.frames()[0].at(x, y), want.at(x, y), 1e-9)
          << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDiff, ::testing::Range(0, 16));

// ---------------------------------------------------------------------------
// Split/join in the middle of a random chain: a random prefix fans out
// into two windowed branches, the join subtracts them (after the
// alignment pass trims halos), and a random suffix continues downstream.

class RandomFanOut : public ::testing::TestWithParam<int> {};

TEST_P(RandomFanOut, MidChainSplitJoinMatchesReference) {
  std::uint64_t rng = 0xFA17 ^ (static_cast<std::uint64_t>(GetParam()) << 16);
  const Size2 frame{static_cast<int>(26 + splitmix(rng) % 8),
                    static_cast<int>(24 + splitmix(rng) % 6)};

  auto windowed = [&](Graph& g, const std::string& name,
                      std::uint64_t pick) -> Kernel* {
    switch (pick % 4) {
      case 0: {
        auto& k = g.add<ConvolutionKernel>(name, 3, 3);
        g.connect(g.add<ConstSource>(name + "_c", apps::blur_coeff3x3()), "out",
                  k, "coeff");
        return &k;
      }
      case 1: {
        auto& k = g.add<ConvolutionKernel>(name, 5, 5);
        g.connect(g.add<ConstSource>(name + "_c", apps::blur_coeff5x5()), "out",
                  k, "coeff");
        return &k;
      }
      case 2:
        return &g.add<MedianKernel>(name, 3, 3);
      default:
        return &g.add<SobelKernel>(name);
    }
  };
  auto branch_ref = [&](const Tile& in, std::uint64_t pick) {
    switch (pick % 4) {
      case 0:
        return ref::convolve(in, apps::blur_coeff3x3());
      case 1:
        return ref::convolve(in, apps::blur_coeff5x5());
      case 2:
        return ref::median(in, 3, 3);
      default:
        return ref::sobel(in);
    }
  };
  auto inset_of = [](std::uint64_t pick) { return pick % 4 == 1 ? 2 : 1; };

  Size2 left = frame;
  const std::vector<Stage> prefix = random_stages(rng, 2, left);
  const std::uint64_t pa = splitmix(rng);
  const std::uint64_t pb = splitmix(rng);
  const int ia = inset_of(pa), ib = inset_of(pb);
  const int common = std::max(ia, ib);
  Size2 joined = {left.w - 2 * common, left.h - 2 * common};
  if (joined.w < 8 || joined.h < 8) GTEST_SKIP() << "prefix ate the frame";
  const std::vector<Stage> suffix = random_stages(rng, 2, joined);

  Graph g;
  Kernel* prev = &g.add<InputKernel>("input", frame, 60.0, 1);
  for (size_t i = 0; i < prefix.size(); ++i) {
    Kernel* k = prefix[i].append(g, static_cast<int>(i));
    g.connect(*prev, "out", *k, "in");
    prev = k;
  }
  Kernel* a = windowed(g, "branchA", pa);
  Kernel* b = windowed(g, "branchB", pb);
  Kernel& join = g.add_kernel(make_subtract("join"));
  g.connect(*prev, "out", *a, "in");
  g.connect(*prev, "out", *b, "in");
  g.connect(*a, "out", join, "in0");
  g.connect(*b, "out", join, "in1");
  prev = &join;
  for (size_t i = 0; i < suffix.size(); ++i) {
    Kernel* k = suffix[i].append(g, 100 + static_cast<int>(i));
    g.connect(*prev, "out", *k, "in");
    prev = k;
  }
  auto& out = g.add<OutputKernel>("result");
  g.connect(*prev, "out", out, "in");

  CompiledApp app = compile(std::move(g));
  ASSERT_TRUE(run_sequential(app.graph).completed);

  Tile img = ref::make_frame(frame, 0, default_pixel_fn());
  for (const Stage& s : prefix) img = s.reference(img);
  Tile ra = branch_ref(img, pa);
  Tile rb = branch_ref(img, pb);
  ra = ref::crop(ra, {common - ia, common - ia, common - ia, common - ia});
  rb = ref::crop(rb, {common - ib, common - ib, common - ib, common - ib});
  Tile want = ref::subtract(ra, rb);
  for (const Stage& s : suffix) want = s.reference(want);

  const auto& res = dynamic_cast<const OutputKernel&>(app.graph.by_name("result"));
  ASSERT_EQ(res.frames().size(), 1u);
  ASSERT_EQ(res.frames()[0].size(), want.size());
  for (int y = 0; y < want.height(); ++y)
    for (int x = 0; x < want.width(); ++x)
      ASSERT_NEAR(res.frames()[0].at(x, y), want.at(x, y), 1e-9)
          << "seed " << GetParam() << " at (" << x << ',' << y << ')';
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomFanOut, ::testing::Range(0, 12));

// ---------------------------------------------------------------------------
// A feedback stage feeding a random suffix: the IIR recurrence
// y_t = alpha x_t + (1-alpha) y_{t-1} makes every frame depend on its
// predecessors, so loop priming, convergence, and per-frame ordering all
// have to hold for the composed reference to match. The loop sits right
// after the source (windowed stages inside a loop shrink its frame, which
// the compiler now rejects — see AnalysisErrors.TrimmedLoopInputRejected);
// the random stages consume the loop's output downstream.

class RandomFeedback : public ::testing::TestWithParam<int> {};

TEST_P(RandomFeedback, RecurrenceIntoChainMatchesReference) {
  std::uint64_t rng = 0xFEEDB ^ (static_cast<std::uint64_t>(GetParam()) << 19);
  const Size2 frame{static_cast<int>(20 + splitmix(rng) % 12),
                    static_cast<int>(18 + splitmix(rng) % 8)};
  const double rate = 40.0 + static_cast<double>(splitmix(rng) % 100);
  const int frames = 3;
  const double alpha = (splitmix(rng) & 1) ? 0.25 : 0.5;
  Size2 left = frame;
  const std::vector<Stage> stages = random_stages(rng, 3, left);

  Graph g;
  auto& input = g.add<InputKernel>("input", frame, rate, frames);
  auto& mix = g.add<TemporalMixKernel>("mix", alpha);
  auto& init = g.add<InitialValueKernel>("loopInit", frame, rate, 0.0);
  g.connect(input, "out", mix, "x");
  g.connect(init, "out", mix, "prev");
  g.connect(mix, "out", init, "in");
  Kernel* prev = &mix;
  for (size_t i = 0; i < stages.size(); ++i) {
    Kernel* k = stages[i].append(g, static_cast<int>(i));
    g.connect(*prev, "out", *k, "in");
    prev = k;
  }
  auto& out = g.add<OutputKernel>("result");
  g.connect(*prev, "out", out, "in");

  CompiledApp app = compile(std::move(g));
  ASSERT_TRUE(run_sequential(app.graph).completed);

  const auto& res = dynamic_cast<const OutputKernel&>(app.graph.by_name("result"));
  ASSERT_EQ(res.frames().size(), static_cast<size_t>(frames));
  Tile prev_y(frame);  // y_{-1} = 0 (the loop's initial value)
  for (int f = 0; f < frames; ++f) {
    const Tile x = ref::make_frame(frame, f, default_pixel_fn());
    Tile y(frame);
    for (int j = 0; j < frame.h; ++j)
      for (int i = 0; i < frame.w; ++i)
        y.at(i, j) = alpha * x.at(i, j) + (1 - alpha) * prev_y.at(i, j);
    Tile want = y;
    for (const Stage& s : stages) want = s.reference(want);
    ASSERT_EQ(res.frames()[static_cast<size_t>(f)].size(), want.size());
    for (int j = 0; j < want.height(); ++j)
      for (int i = 0; i < want.width(); ++i)
        ASSERT_NEAR(res.frames()[static_cast<size_t>(f)].at(i, j),
                    want.at(i, j), 1e-9)
            << "seed " << GetParam() << " frame " << f;
    prev_y = y;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomFeedback, ::testing::Range(0, 8));

// ---------------------------------------------------------------------------
// Fault-injected random chains: jitter, overruns, stalls, slow cores and
// delivery delays reorder and retime everything, but values never change.

class FaultedRandomChain : public ::testing::TestWithParam<int> {};

TEST_P(FaultedRandomChain, TimingFaultsNeverChangeValues) {
  std::uint64_t rng = 0xFA0173 ^ (static_cast<std::uint64_t>(GetParam()) << 21);
  const Size2 frame{static_cast<int>(20 + splitmix(rng) % 16),
                    static_cast<int>(18 + splitmix(rng) % 10)};
  const double rate = 50.0 + static_cast<double>(splitmix(rng) % 300);
  const int frames = 2;
  Size2 left = frame;
  const std::vector<Stage> stages = random_stages(rng, 4, left);

  Graph g;
  Kernel* prev = &g.add<InputKernel>("input", frame, rate, frames);
  for (size_t i = 0; i < stages.size(); ++i) {
    Kernel* k = stages[i].append(g, static_cast<int>(i));
    g.connect(*prev, "out", *k, "in");
    prev = k;
  }
  auto& out = g.add<OutputKernel>("result");
  g.connect(*prev, "out", out, "in");
  CompiledApp app = compile(std::move(g));

  fault::FaultPlan p = fault::parse_plan(
      "{\"kernels\": [{\"jitter\": 0.3, \"overrun_prob\": 0.15, "
      "\"overrun_factor\": 4.0, \"stall_prob\": 0.03, "
      "\"stall_seconds\": 8e-5}], "
      "\"cores\": [{\"core\": 1, \"throttle\": 1.5}], "
      "\"delivery\": [{\"match\": \"stage*\", \"prob\": 0.08, "
      "\"delay_seconds\": 4e-5}]}");
  fault::Injector inj(p, static_cast<std::uint64_t>(GetParam()));
  RuntimeOptions ropt;
  ropt.injector = &inj;
  const RuntimeResult r = run_threaded(app.graph, app.mapping, ropt);
  ASSERT_TRUE(r.completed) << r.diagnostics;
  EXPECT_GT(r.faults_injected, 0) << "plan matched nothing";

  const auto& res = dynamic_cast<const OutputKernel&>(app.graph.by_name("result"));
  ASSERT_EQ(res.frames().size(), static_cast<size_t>(frames));
  for (int f = 0; f < frames; ++f) {
    Tile want = ref::make_frame(frame, f, default_pixel_fn());
    for (const Stage& s : stages) want = s.reference(want);
    ASSERT_EQ(res.frames()[static_cast<size_t>(f)].size(), want.size());
    for (int y = 0; y < want.height(); ++y)
      for (int x = 0; x < want.width(); ++x)
        ASSERT_NEAR(res.frames()[static_cast<size_t>(f)].at(x, y),
                    want.at(x, y), 1e-9)
            << "seed " << GetParam() << " frame " << f << " at (" << x << ','
            << y << ')';
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultedRandomChain, ::testing::Range(0, 8));

// ---------------------------------------------------------------------------
// Shedding random chains: under an impossible deadline the source drops
// whole frames at frame boundaries — survivors stay bit-exact and in
// source order, and the shed/completed accounting covers every frame.

class ShedRandomChain : public ::testing::TestWithParam<int> {};

TEST_P(ShedRandomChain, ShedsWholeFramesOnlyAndSurvivorsStayExact) {
  std::uint64_t rng = 0x5EDD ^ (static_cast<std::uint64_t>(GetParam()) << 17);
  const Size2 frame{static_cast<int>(14 + splitmix(rng) % 8),
                    static_cast<int>(12 + splitmix(rng) % 6)};
  const double rate = 200.0;  // 5 ms per frame, paced
  const int frames = 5;
  Size2 left = frame;
  const std::vector<Stage> stages = random_stages(rng, 3, left);

  Graph g;
  Kernel* prev = &g.add<InputKernel>("input", frame, rate, frames);
  for (size_t i = 0; i < stages.size(); ++i) {
    Kernel* k = stages[i].append(g, static_cast<int>(i));
    g.connect(*prev, "out", *k, "in");
    prev = k;
  }
  auto& out = g.add<OutputKernel>("result");
  g.connect(*prev, "out", out, "in");
  CompiledApp app = compile(std::move(g));

  fault::DegradationPolicy pol;
  pol.shed = true;
  pol.rate_hz = 1e6;  // 1 us deadline: every post-anchor frame misses
  pol.max_pending_sheds = 1;
  pol.cooldown_frames = 1;
  fault::DegradationController ctrl(pol);
  RuntimeOptions ropt;
  ropt.pace_inputs = true;
  ropt.degradation = &ctrl;
  const RuntimeResult r = run_threaded(app.graph, app.mapping, ropt);
  ASSERT_TRUE(r.completed) << r.diagnostics;
  EXPECT_GE(r.frames_shed, 1) << "overloaded run never shed";
  EXPECT_EQ(r.frames_shed, ctrl.frames_shed());

  const std::vector<std::int64_t> shed = ctrl.shed_frames();
  const auto& res = dynamic_cast<const OutputKernel&>(app.graph.by_name("result"));
  ASSERT_EQ(res.frames().size(), static_cast<size_t>(frames) - shed.size());
  size_t out_idx = 0;
  for (int f = 0; f < frames; ++f) {
    if (std::find(shed.begin(), shed.end(), f) != shed.end()) continue;
    Tile want = ref::make_frame(frame, f, default_pixel_fn());
    for (const Stage& s : stages) want = s.reference(want);
    ASSERT_EQ(res.frames()[out_idx].size(), want.size());
    for (int y = 0; y < want.height(); ++y)
      for (int x = 0; x < want.width(); ++x)
        ASSERT_NEAR(res.frames()[out_idx].at(x, y), want.at(x, y), 1e-9)
            << "seed " << GetParam() << " source frame " << f;
    ++out_idx;
  }
  EXPECT_EQ(ctrl.frames_completed() + ctrl.frames_shed(), frames);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShedRandomChain, ::testing::Range(0, 4));

}  // namespace
}  // namespace bpp
