#pragma once
// Shared helpers for the test suite: tiny configurable kernels, manual
// engine drivers, and graph-building shorthands.

#include <functional>
#include <string>
#include <vector>

#include "core/graph.h"
#include "core/kernel.h"

namespace bpp::testutil {

/// A 1x1 pass-through kernel with configurable cycle cost.
class PassKernel final : public Kernel {
 public:
  explicit PassKernel(std::string name, long cycles = 5)
      : Kernel(std::move(name)), cycles_(cycles) {}

  void configure() override {
    create_input("in", {1, 1}, {1, 1}, {0.0, 0.0});
    create_output("out", {1, 1});
    auto& m = register_method("pass", Resources{cycles_, 2}, &PassKernel::pass);
    method_input(m, "in");
    method_output(m, "out");
  }
  [[nodiscard]] std::unique_ptr<Kernel> clone() const override {
    return std::make_unique<PassKernel>(*this);
  }

 private:
  void pass() { write_output("out", read_input("in")); }
  long cycles_;
};

/// Emits a fixed list of items on one output, then stops (no EOS unless
/// included in the list). Untimed (release 0) unless a rate is given.
class ScriptedSource final : public Kernel {
 public:
  ScriptedSource(std::string name, std::vector<Item> items, Size2 frame = {1, 1},
                 double rate = 0.0)
      : Kernel(std::move(name)), items_(std::move(items)), frame_(frame),
        rate_(rate) {}

  void configure() override { create_output("out", {1, 1}); }
  [[nodiscard]] std::unique_ptr<Kernel> clone() const override {
    return std::make_unique<ScriptedSource>(*this);
  }
  void init() override { next_ = 0; }

  [[nodiscard]] bool is_source() const override { return true; }
  [[nodiscard]] std::optional<SourceStreamSpec> source_spec(int port) const override {
    if (port != 0) return std::nullopt;
    SourceStreamSpec s;
    s.frame = frame_;
    s.granularity = {1, 1};
    s.rate_hz = rate_;
    s.frames = 1;
    return s;
  }
  bool source_poll(SourceEmission& out) override {
    if (next_ >= items_.size()) return false;
    out.port = 0;
    out.item = items_[next_++];
    out.release_seconds = 0.0;
    out.cycles = 1;
    return true;
  }

 private:
  std::vector<Item> items_;
  Size2 frame_;
  double rate_;
  size_t next_ = 0;
};

/// Collects every item (data and tokens) arriving on its single input.
class ItemSink final : public Kernel {
 public:
  explicit ItemSink(std::string name, Size2 item = {1, 1})
      : Kernel(std::move(name)), item_(item) {}

  void configure() override {
    create_input("in", item_, {item_.w, item_.h}, {0.0, 0.0});
    auto& d = register_method("take", Resources{2, 2}, &ItemSink::take);
    method_input(d, "in");
    auto& eol = register_method("eol", Resources{1, 0}, &ItemSink::tok_eol);
    method_input(eol, "in", tok::kEndOfLine);
    auto& eof = register_method("eof", Resources{1, 0}, &ItemSink::tok_eof);
    method_input(eof, "in", tok::kEndOfFrame);
    auto& eos = register_method("eos", Resources{1, 0}, &ItemSink::tok_eos);
    method_input(eos, "in", tok::kEndOfStream);
  }
  [[nodiscard]] std::unique_ptr<Kernel> clone() const override {
    return std::make_unique<ItemSink>(*this);
  }
  void init() override { log.clear(); }

  /// Arrival log: data items record their first value; tokens record
  /// -(1000 + class).
  std::vector<double> log;
  [[nodiscard]] long data_count() const {
    long n = 0;
    for (double v : log)
      if (v > -1000.0) ++n;
    return n;
  }
  [[nodiscard]] long token_count(TokenClass cls) const {
    long n = 0;
    for (double v : log)
      if (v == -(1000.0 + cls)) ++n;
    return n;
  }

 private:
  void take() { log.push_back(read_input("in").at(0, 0)); }
  void tok_eol() { log.push_back(-(1000.0 + tok::kEndOfLine)); }
  void tok_eof() { log.push_back(-(1000.0 + tok::kEndOfFrame)); }
  void tok_eos() { log.push_back(-(1000.0 + tok::kEndOfStream)); }

  Size2 item_;
};

/// 1x1 data item shorthand.
[[nodiscard]] inline Item px(double v) {
  Tile t(1, 1);
  t.at(0, 0) = v;
  return t;
}
[[nodiscard]] inline Item token(TokenClass cls, std::int64_t payload = 0) {
  return ControlToken{cls, payload};
}

/// Scripted scan-line stream for a WxH frame: pixels row by row with EOL
/// after each row, EOF after the frame, and optionally EOS at the end.
[[nodiscard]] std::vector<Item> inline scanline_items(
    Size2 frame, const std::function<double(int, int)>& f, bool eos = true) {
  std::vector<Item> items;
  for (int y = 0; y < frame.h; ++y) {
    for (int x = 0; x < frame.w; ++x) items.push_back(px(f(x, y)));
    items.push_back(token(tok::kEndOfLine, y));
  }
  items.push_back(token(tok::kEndOfFrame, 0));
  if (eos) items.push_back(token(tok::kEndOfStream, 1));
  return items;
}

}  // namespace bpp::testutil
