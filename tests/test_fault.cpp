// Fault-injection engine and graceful degradation: plan (de)serialization,
// the deterministic counter-based injector, replay determinism on the
// timing simulator, bit-exactness of faulted host runs, the shed/recovery
// state machine on hand-built overload scenarios, DegradationReport
// accounting, and the histogram/frame-series edge cases the degradation
// analysis leans on.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "apps/pipelines.h"
#include "compiler/pipeline.h"
#include "compiler/report.h"
#include "fault/degradation.h"
#include "fault/injector.h"
#include "fault/plan.h"
#include "kernels/kernels.h"
#include "obs/frames.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "ref/reference.h"
#include "runtime/runtime.h"
#include "serialize/json.h"
#include "sim/simulator.h"

namespace bpp {
namespace {

// ---------------------------------------------------------------------------
// JSON module (serialize/json.h) — the plan's substrate.

TEST(Json, ParsesScalarsArraysObjects) {
  const json::Value v =
      json::parse("{\"a\": [1, 2.5, true, null, \"x\\n\"], \"b\": {}}");
  ASSERT_TRUE(v.is_object());
  const json::Value* a = v.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->as_array().size(), 5u);
  EXPECT_DOUBLE_EQ(a->as_array()[0].as_number(), 1.0);
  EXPECT_DOUBLE_EQ(a->as_array()[1].as_number(), 2.5);
  EXPECT_TRUE(a->as_array()[2].as_bool());
  EXPECT_TRUE(a->as_array()[3].is_null());
  EXPECT_EQ(a->as_array()[4].as_string(), "x\n");
}

TEST(Json, WriteIsDeterministicAndRoundTrips) {
  json::Object o;
  o["zeta"] = 1;
  o["alpha"] = json::Array{1, 2, 3};
  o["mid"] = "hi";
  const std::string s = json::write(json::Value(std::move(o)));
  // Keys are sorted, so the encoding is reproducible byte for byte.
  EXPECT_LT(s.find("alpha"), s.find("mid"));
  EXPECT_LT(s.find("mid"), s.find("zeta"));
  const json::Value back = json::parse(s);
  EXPECT_EQ(json::write(back), s);
}

TEST(Json, ParseErrorsCarryLineAndColumn) {
  try {
    (void)json::parse("{\n  \"a\": 1,\n  !\n}");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
  }
  EXPECT_THROW((void)json::parse("{\"a\": 1} trailing"), Error);
  EXPECT_THROW((void)json::parse("[1, 2"), Error);
}

// ---------------------------------------------------------------------------
// Plan: globs and round-trip.

TEST(FaultPlan, GlobMatch) {
  EXPECT_TRUE(fault::glob_match("*", ""));
  EXPECT_TRUE(fault::glob_match("*", "anything"));
  EXPECT_TRUE(fault::glob_match("conv*", "conv3x3"));
  EXPECT_FALSE(fault::glob_match("conv*", "deconv"));
  EXPECT_TRUE(fault::glob_match("*conv*", "deconv3"));
  EXPECT_TRUE(fault::glob_match("a?c", "abc"));
  EXPECT_FALSE(fault::glob_match("a?c", "ac"));
  EXPECT_TRUE(fault::glob_match("a*b*c", "a_x_b_y_c"));
  EXPECT_FALSE(fault::glob_match("a*b*c", "a_x_c_y_b"));
  EXPECT_FALSE(fault::glob_match("", "x"));
  EXPECT_TRUE(fault::glob_match("", ""));
}

TEST(FaultPlan, ParseWriteRoundTrip) {
  fault::FaultPlan p;
  p.seed = 99;
  fault::KernelRule kr;
  kr.match = "conv*";
  kr.jitter = 0.25;
  kr.overrun_prob = 0.05;
  kr.overrun_factor = 8.0;
  kr.stall_prob = 0.01;
  kr.stall_seconds = 2e-4;
  p.kernels.push_back(kr);
  p.cores.push_back({1, 2.0});
  fault::DeliveryRule dr;
  dr.match = "*";
  dr.prob = 0.02;
  dr.delay_seconds = 5e-5;
  p.delivery.push_back(dr);

  const fault::FaultPlan q = fault::parse_plan(fault::write_plan(p));
  EXPECT_EQ(q.seed, p.seed);
  ASSERT_EQ(q.kernels.size(), 1u);
  EXPECT_EQ(q.kernels[0].match, "conv*");
  EXPECT_DOUBLE_EQ(q.kernels[0].jitter, 0.25);
  EXPECT_DOUBLE_EQ(q.kernels[0].overrun_factor, 8.0);
  EXPECT_DOUBLE_EQ(q.kernels[0].stall_seconds, 2e-4);
  ASSERT_EQ(q.cores.size(), 1u);
  EXPECT_EQ(q.cores[0].core, 1);
  EXPECT_DOUBLE_EQ(q.cores[0].throttle, 2.0);
  ASSERT_EQ(q.delivery.size(), 1u);
  EXPECT_DOUBLE_EQ(q.delivery[0].delay_seconds, 5e-5);
  // Write is canonical: a second round trip is byte-identical.
  EXPECT_EQ(fault::write_plan(q), fault::write_plan(p));
}

TEST(FaultPlan, EmptyPlanIsEmpty) {
  EXPECT_TRUE(fault::parse_plan("{}").empty());
  EXPECT_FALSE(fault::parse_plan("{\"cores\": [{\"core\": 0}]}").empty());
}

// ---------------------------------------------------------------------------
// Injector determinism.

Graph two_kernel_graph() {
  Graph g = apps::sobel_app({12, 10}, 100.0, 1, 100.0);
  return g;
}

TEST(Injector, SameSeedSamePerturbations) {
  fault::FaultPlan p = fault::parse_plan(
      "{\"kernels\": [{\"jitter\": 0.3, \"overrun_prob\": 0.2, "
      "\"overrun_factor\": 4.0, \"stall_prob\": 0.1, "
      "\"stall_seconds\": 1e-4}], "
      "\"delivery\": [{\"prob\": 0.2, \"delay_seconds\": 1e-5}]}");
  Graph g = two_kernel_graph();
  fault::Injector a(p, 7), b(p, 7), c(p, 8);
  a.bind(g, {});
  b.bind(g, {});
  c.bind(g, {});
  ASSERT_TRUE(a.active());
  bool any_differs_across_seeds = false;
  for (int k = 0; k < g.kernel_count(); ++k)
    for (std::int64_t f = 0; f < 64; ++f) {
      const fault::Perturbation pa = a.perturb(k, f);
      const fault::Perturbation pb = b.perturb(k, f);
      EXPECT_EQ(pa.time_scale, pb.time_scale);
      EXPECT_EQ(pa.stall_seconds, pb.stall_seconds);
      EXPECT_EQ(pa.delivery_delay_seconds, pb.delivery_delay_seconds);
      const fault::Perturbation pc = c.perturb(k, f);
      if (pa.time_scale != pc.time_scale ||
          pa.stall_seconds != pc.stall_seconds)
        any_differs_across_seeds = true;
    }
  EXPECT_TRUE(any_differs_across_seeds);
}

TEST(Injector, RulesBindByGlobAndFirstMatchWins) {
  fault::FaultPlan p = fault::parse_plan(
      "{\"kernels\": ["
      "{\"match\": \"sobel*\", \"overrun_prob\": 1.0, "
      "\"overrun_factor\": 3.0},"
      "{\"match\": \"*\", \"overrun_prob\": 0.0}]}");
  Graph g = two_kernel_graph();
  fault::Injector inj(p, 1);
  inj.bind(g, {});
  const int sobel = g.find("sobel");
  const int input = g.find("input");
  ASSERT_GE(sobel, 0);
  ASSERT_GE(input, 0);
  // Every sobel firing overruns (prob 1); input matches the catch-all
  // rule with no faults at all.
  for (std::int64_t f = 0; f < 16; ++f) {
    EXPECT_DOUBLE_EQ(inj.perturb(sobel, f).time_scale, 3.0);
    EXPECT_TRUE(inj.perturb(input, f).identity());
  }
}

TEST(Injector, CoreThrottleMultiplies) {
  fault::FaultPlan p =
      fault::parse_plan("{\"cores\": [{\"core\": 1, \"throttle\": 2.0}]}");
  Graph g = two_kernel_graph();
  std::vector<int> core_of(static_cast<size_t>(g.kernel_count()), 0);
  core_of[0] = 1;  // place kernel 0 on the throttled core
  fault::Injector inj(p, 3);
  inj.bind(g, core_of);
  EXPECT_DOUBLE_EQ(inj.perturb(0, 0).time_scale, 2.0);
  EXPECT_TRUE(inj.perturb(1, 0).identity());
}

TEST(Injector, UnboundOrEmptyPlanInactive) {
  fault::Injector none;
  EXPECT_FALSE(none.active());
  fault::Injector empty(fault::FaultPlan{}, 5);
  Graph g = two_kernel_graph();
  empty.bind(g, {});
  EXPECT_TRUE(empty.bound());
  EXPECT_FALSE(empty.active());
}

TEST(Injector, FaultBindingReportNamesRulesAndDeadGlobs) {
  fault::FaultPlan p = fault::parse_plan(
      "{\"kernels\": [{\"match\": \"sobel*\", \"jitter\": 0.2}, "
      "{\"match\": \"nosuch*\", \"stall_prob\": 0.5, "
      "\"stall_seconds\": 1e-3}]}");
  Graph g = two_kernel_graph();
  const std::string s = fault_binding_string(p, g);
  EXPECT_NE(s.find("sobel"), std::string::npos) << s;
  EXPECT_NE(s.find("WARNING: kernel rule 'nosuch*' matches no kernel"),
            std::string::npos)
      << s;
}

// ---------------------------------------------------------------------------
// Simulator: identical (plan, seed) => identical trace; faults add time.

struct SimRun {
  std::string trace_json;
  double span = 0.0;
  long faults = 0;
};

SimRun simulate_app(const CompiledApp& app, const fault::Injector* inj) {
  Graph g = app.graph.clone();
  obs::Recorder rec;
  SimOptions sopt;
  sopt.recorder = &rec;
  sopt.injector = inj;
  const SimResult r = simulate(g, app.mapping, sopt);
  EXPECT_TRUE(r.completed);
  SimRun out;
  out.span = r.sim_seconds;
  out.faults = r.faults_injected;
  std::ostringstream os;
  obs::write_chrome_trace(rec.trace(), os);
  out.trace_json = os.str();
  return out;
}

TEST(SimFaults, SameSeedIdenticalTraceDifferentSeedNot) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "observability compiled out";
  CompiledApp app = compile(apps::pipeline_app({16, 12}, 100.0, 2));
  fault::FaultPlan p = fault::parse_plan(
      "{\"seed\": 7, \"kernels\": [{\"jitter\": 0.4, "
      "\"overrun_prob\": 0.15, \"overrun_factor\": 6.0, "
      "\"stall_prob\": 0.05, \"stall_seconds\": 1e-4}], "
      "\"delivery\": [{\"prob\": 0.1, \"delay_seconds\": 2e-5}]}");
  fault::Injector i7(p, 7), i7b(p, 7), i8(p, 8);
  const SimRun a = simulate_app(app, &i7);
  const SimRun b = simulate_app(app, &i7b);
  const SimRun c = simulate_app(app, &i8);
  EXPECT_GT(a.faults, 0);
  EXPECT_EQ(a.trace_json, b.trace_json);
  EXPECT_EQ(a.faults, b.faults);
  EXPECT_NE(a.trace_json, c.trace_json);
}

TEST(SimFaults, OverrunsExtendTheMakespan) {
  CompiledApp app = compile(apps::sobel_app({16, 12}, 100.0, 1, 100.0));
  fault::FaultPlan p = fault::parse_plan(
      "{\"kernels\": [{\"overrun_prob\": 1.0, \"overrun_factor\": 5.0}]}");
  fault::Injector inj(p, 3);
  const SimRun plain = simulate_app(app, nullptr);
  const SimRun faulted = simulate_app(app, &inj);
  EXPECT_GT(faulted.span, plain.span);
  EXPECT_GT(faulted.faults, 0);
  EXPECT_EQ(plain.faults, 0);
}

// ---------------------------------------------------------------------------
// Host runtime: faults never change values.

TEST(RuntimeFaults, FaultedRunStaysBitExact) {
  const Size2 frame{12, 10};
  const int frames = 2;
  CompiledApp app = compile(apps::sobel_app(frame, 200.0, frames, 100.0));
  fault::FaultPlan p = fault::parse_plan(
      "{\"kernels\": [{\"jitter\": 0.3, \"overrun_prob\": 0.2, "
      "\"overrun_factor\": 3.0, \"stall_prob\": 0.05, "
      "\"stall_seconds\": 5e-5}], "
      "\"cores\": [{\"core\": 0, \"throttle\": 1.5}], "
      "\"delivery\": [{\"prob\": 0.1, \"delay_seconds\": 2e-5}]}");
  fault::Injector inj(p, 11);
  RuntimeOptions ropt;
  ropt.injector = &inj;
  const RuntimeResult r = run_threaded(app.graph, app.mapping, ropt);
  ASSERT_TRUE(r.completed) << r.diagnostics;
  EXPECT_GT(r.faults_injected, 0);

  const auto& res =
      dynamic_cast<const OutputKernel&>(app.graph.by_name("result"));
  ASSERT_EQ(res.frames().size(), static_cast<size_t>(frames));
  for (int f = 0; f < frames; ++f) {
    const Tile sob = ref::sobel(ref::make_frame(frame, f, default_pixel_fn()));
    for (int y = 0; y < sob.height(); ++y)
      for (int x = 0; x < sob.width(); ++x) {
        const double want = sob.at(x, y) > 100.0 ? 1.0 : 0.0;
        ASSERT_EQ(res.frames()[static_cast<size_t>(f)].at(x, y), want)
            << "frame " << f << " at (" << x << ',' << y << ')';
      }
  }
}

// ---------------------------------------------------------------------------
// Shed/recovery state machine on hand-built overload scenarios.

TEST(Degradation, AnchorAndOnTimeFramesNeverArm) {
  fault::DegradationPolicy pol;
  pol.shed = true;
  pol.rate_hz = 100.0;  // 10 ms period
  fault::DegradationController c(pol);
  c.attach_sinks(1);
  auto r0 = c.on_frame_end(0, 1.0);  // anchors the schedule
  EXPECT_TRUE(r0.completed);
  EXPECT_FALSE(r0.missed);
  auto r1 = c.on_frame_end(1, 1.005);  // deadline 1.010
  EXPECT_FALSE(r1.missed);
  EXPECT_FALSE(r1.shed_requested);
  EXPECT_FALSE(c.should_shed());
  EXPECT_EQ(c.frames_completed(), 2);
  EXPECT_EQ(c.misses(), 0);
}

TEST(Degradation, MissArmsOnceAndCooldownSuppresses) {
  fault::DegradationPolicy pol;
  pol.shed = true;
  pol.rate_hz = 100.0;
  pol.max_pending_sheds = 1;
  pol.cooldown_frames = 2;
  fault::DegradationController c(pol);
  c.attach_sinks(1);
  (void)c.on_frame_end(0, 1.0);
  auto miss = c.on_frame_end(1, 1.5);  // deadline 1.01 -> way late
  EXPECT_TRUE(miss.missed);
  EXPECT_TRUE(miss.shed_requested);
  // A second miss cannot arm past the bound.
  auto miss2 = c.on_frame_end(2, 2.0);
  EXPECT_TRUE(miss2.missed);
  EXPECT_FALSE(miss2.shed_requested);
  EXPECT_EQ(c.pending_sheds(), 1);

  EXPECT_TRUE(c.should_shed());    // source claims
  EXPECT_FALSE(c.should_shed());   // only once
  c.on_shed_complete(3);
  EXPECT_EQ(c.frames_shed(), 1);
  EXPECT_EQ(c.shed_frames(), (std::vector<std::int64_t>{3}));

  // Cooldown: the next two completions miss but do not arm.
  EXPECT_FALSE(c.on_frame_end(4, 3.0).shed_requested);
  EXPECT_FALSE(c.on_frame_end(5, 3.5).shed_requested);
  // Cooldown over: a miss arms again.
  EXPECT_TRUE(c.on_frame_end(6, 4.0).shed_requested);
}

TEST(Degradation, ObserveOnlyPolicyNeverSheds) {
  fault::DegradationPolicy pol;
  pol.shed = false;  // observe misses, never degrade
  pol.rate_hz = 1000.0;
  fault::DegradationController c(pol);
  (void)c.on_frame_end(0, 1.0);
  auto miss = c.on_frame_end(1, 9.0);
  EXPECT_TRUE(miss.missed);
  EXPECT_FALSE(miss.shed_requested);
  EXPECT_FALSE(c.should_shed());
  EXPECT_GE(c.misses(), 1);
}

TEST(Degradation, MultiSinkFrameCompletesOnLastSink) {
  fault::DegradationPolicy pol;
  pol.shed = true;
  pol.rate_hz = 100.0;
  fault::DegradationController c(pol);
  c.attach_sinks(2);
  EXPECT_FALSE(c.on_frame_end(0, 1.0).completed);  // first sink: partial
  EXPECT_TRUE(c.on_frame_end(0, 1.001).completed);  // second sink closes it
  EXPECT_EQ(c.frames_completed(), 1);
}

TEST(Degradation, AnchoredScheduleHandlesShedGaps) {
  // Frames 0,1,3 complete (2 was shed): frame 3's deadline comes from the
  // anchored schedule, not from the previous completion, so the gap does
  // not shift deadlines.
  fault::DegradationPolicy pol;
  pol.shed = true;
  pol.rate_hz = 100.0;
  fault::DegradationController c(pol);
  (void)c.on_frame_end(0, 1.0);
  (void)c.on_frame_end(1, 1.010);
  auto v = c.on_frame_end(3, 1.030);  // deadline 1.0 + 3 * 0.010
  EXPECT_FALSE(v.missed);
  auto late = c.on_frame_end(4, 1.045);  // deadline 1.040
  EXPECT_TRUE(late.missed);
}

TEST(Degradation, ReportAccountingAndJson) {
  std::vector<obs::FrameVerdict> verdicts(4);
  for (int i = 0; i < 4; ++i) {
    verdicts[static_cast<size_t>(i)].frame = i;
    verdicts[static_cast<size_t>(i)].missed = i >= 2;
    verdicts[static_cast<size_t>(i)].lateness_seconds = i >= 2 ? 0.004 * i : 0;
  }
  const fault::DegradationReport r = fault::build_degradation_report(
      verdicts, {5, 2}, 50.0, 0.001);
  EXPECT_EQ(r.frames_on_time, 2);
  EXPECT_EQ(r.frames_late, 2);
  EXPECT_EQ(r.frames_shed, 2);
  EXPECT_EQ(r.shed_frames, (std::vector<std::int64_t>{2, 5}));  // sorted
  EXPECT_DOUBLE_EQ(r.max_lateness_seconds, 0.012);

  std::ostringstream os;
  fault::write_degradation(r, os);
  EXPECT_NE(os.str().find("2 on-time, 2 late, 2 shed (6 frames offered"),
            std::string::npos)
      << os.str();

  const json::Value doc = json::parse(fault::write_degradation_json(r));
  EXPECT_DOUBLE_EQ(doc.find("frames_shed")->as_number(), 2.0);
  EXPECT_DOUBLE_EQ(doc.find("frames_late")->as_number(), 2.0);
  ASSERT_EQ(doc.find("shed_frames")->as_array().size(), 2u);
  EXPECT_DOUBLE_EQ(doc.find("shed_frames")->as_array()[1].as_number(), 5.0);
}

TEST(Degradation, ControllerReportMatchesCounters) {
  fault::DegradationPolicy pol;
  pol.shed = true;
  pol.rate_hz = 100.0;
  fault::DegradationController c(pol);
  (void)c.on_frame_end(0, 1.0);
  (void)c.on_frame_end(1, 1.25);
  ASSERT_TRUE(c.should_shed());
  c.on_shed_complete(2);
  const fault::DegradationReport r = fault::build_degradation_report(c);
  EXPECT_EQ(r.frames_on_time, 1);
  EXPECT_EQ(r.frames_late, 1);
  EXPECT_EQ(r.frames_shed, 1);
  EXPECT_DOUBLE_EQ(r.rate_hz, 100.0);
}

// ---------------------------------------------------------------------------
// End-to-end: an overloaded paced run sheds whole frames, surviving frames
// stay bit-exact, and the report accounts for every frame offered.

TEST(Degradation, OverloadedPacedRunShedsWholeFrames) {
  const Size2 frame{10, 8};
  const int frames = 6;
  const double rate = 200.0;  // 5 ms per frame, paced
  CompiledApp app = compile(apps::sobel_app(frame, rate, frames, 100.0));

  fault::DegradationPolicy pol;
  pol.shed = true;
  pol.rate_hz = 1e6;  // 1 us period: every post-anchor frame misses
  pol.max_pending_sheds = 1;
  pol.cooldown_frames = 1;
  fault::DegradationController ctrl(pol);

  RuntimeOptions ropt;
  ropt.pace_inputs = true;
  ropt.degradation = &ctrl;
  const RuntimeResult r = run_threaded(app.graph, app.mapping, ropt);
  ASSERT_TRUE(r.completed) << r.diagnostics;

  EXPECT_GE(r.frames_shed, 1) << "overloaded run never shed";
  EXPECT_EQ(r.frames_shed, ctrl.frames_shed());

  // Whole frames only: survivors = offered - shed, in source order and
  // bit-exact (the shed never cut a frame mid-stream).
  const std::vector<std::int64_t> shed = ctrl.shed_frames();
  const auto& res =
      dynamic_cast<const OutputKernel&>(app.graph.by_name("result"));
  ASSERT_EQ(res.frames().size(),
            static_cast<size_t>(frames) - shed.size());
  size_t out_idx = 0;
  for (int f = 0; f < frames; ++f) {
    if (std::find(shed.begin(), shed.end(), f) != shed.end()) continue;
    const Tile sob = ref::sobel(ref::make_frame(frame, f, default_pixel_fn()));
    for (int y = 0; y < sob.height(); ++y)
      for (int x = 0; x < sob.width(); ++x) {
        const double want = sob.at(x, y) > 100.0 ? 1.0 : 0.0;
        ASSERT_EQ(res.frames()[out_idx].at(x, y), want)
            << "source frame " << f << " at (" << x << ',' << y << ')';
      }
    ++out_idx;
  }

  // Accounting: completed + shed covers every frame the source offered.
  EXPECT_EQ(ctrl.frames_completed() + ctrl.frames_shed(), frames);
  const fault::DegradationReport rep = fault::build_degradation_report(ctrl);
  EXPECT_EQ(rep.frames_on_time + rep.frames_late + rep.frames_shed, frames);
}

// ---------------------------------------------------------------------------
// Histogram quantile edge cases.

TEST(Histogram, EmptyQuantilesAreZero) {
  obs::Histogram h;
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 0.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
}

TEST(Histogram, SingleObservationEveryQuantileIsTheValue) {
  obs::Histogram h;
  h.observe(3e-3);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 3e-3);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 3e-3);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 3e-3);
}

TEST(Histogram, ExtremesAreExactAndNanIsZero) {
  obs::Histogram h;
  h.observe(1e-6);
  h.observe(4e-4);
  h.observe(1e-3);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1e-6);   // exact observed min
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 1e-3);   // exact observed max
  EXPECT_DOUBLE_EQ(h.quantile(-0.5), 1e-6);  // clamped below
  EXPECT_DOUBLE_EQ(h.quantile(1.5), 1e-3);   // clamped above
  EXPECT_DOUBLE_EQ(h.quantile(std::numeric_limits<double>::quiet_NaN()),
                   1e-6);  // NaN -> q=0
  const double p50 = h.quantile(0.5);
  EXPECT_GE(p50, 1e-6);
  EXPECT_LE(p50, 1e-3);
}

TEST(Histogram, MinSurvivesTextAndJsonDumps) {
  obs::MetricsRegistry reg;
  reg.histogram("lat").observe(2e-6);
  reg.histogram("lat").observe(8e-6);
  std::ostringstream txt, js;
  reg.write_text(txt);
  reg.write_json(js);
  EXPECT_NE(txt.str().find("min"), std::string::npos) << txt.str();
  EXPECT_NE(js.str().find("\"min\""), std::string::npos) << js.str();
}

// ---------------------------------------------------------------------------
// Frame series pairing: truncated traces and shed gaps.

obs::TraceEvent boundary(obs::EventKind kind, double t, std::int32_t kernel,
                         std::int64_t frame) {
  obs::TraceEvent e;
  e.t0 = e.t1 = t;
  e.kernel = kernel;
  e.method = static_cast<std::int32_t>(frame);
  e.kind = kind;
  return e;
}

TEST(FrameSeries, TraceEndingMidFrameCountsIncomplete) {
  obs::Trace t;
  t.kernel_names = {"src", "sink"};
  t.events.push_back(boundary(obs::EventKind::kFrameStart, 0.00, 0, 0));
  t.events.push_back(boundary(obs::EventKind::kFrameEnd, 0.02, 1, 0));
  t.events.push_back(boundary(obs::EventKind::kFrameStart, 0.03, 0, 1));
  // run cut short: frame 1 never completes
  const obs::FrameReport r = obs::analyze_frames(t);
  ASSERT_EQ(r.frames.size(), 1u);
  EXPECT_EQ(r.frames[0].frame, 0);
  EXPECT_EQ(r.incomplete, 1);
}

TEST(FrameSeries, EndWithoutStartAlsoIncomplete) {
  obs::Trace t;
  t.kernel_names = {"src", "sink"};
  t.events.push_back(boundary(obs::EventKind::kFrameEnd, 0.02, 1, 7));
  const obs::FrameReport r = obs::analyze_frames(t);
  EXPECT_TRUE(r.frames.empty());
  EXPECT_EQ(r.incomplete, 1);
}

TEST(FrameSeries, PeriodNormalizedAcrossShedGaps) {
  // Frames 0, 1, 3 complete 10 ms apart per index (frame 2 was shed).
  // The period series must divide the 0.02 s delta by the index gap of 2,
  // not report a spurious 2x period.
  obs::Trace t;
  t.kernel_names = {"src", "sink"};
  for (std::int64_t f : {0, 1, 3}) {
    const double base = 0.010 * static_cast<double>(f);
    t.events.push_back(
        boundary(obs::EventKind::kFrameStart, base, 0, f));
    t.events.push_back(
        boundary(obs::EventKind::kFrameEnd, base + 0.005, 1, f));
  }
  const obs::FrameReport r = obs::analyze_frames(t);
  ASSERT_EQ(r.frames.size(), 3u);
  EXPECT_EQ(r.period.count, 2);
  EXPECT_NEAR(r.period.mean, 0.010, 1e-12);
  EXPECT_NEAR(r.period.max, 0.010, 1e-12);
}

}  // namespace
}  // namespace bpp
