// Observability subsystem: event-ring overflow semantics, recorder
// sessions, Chrome trace-event JSON well-formedness, metrics registry
// dumps, and the Fig. 13 utilization analysis on hand-built timelines.

#include <gtest/gtest.h>

#include <cctype>
#include <cstddef>
#include <sstream>
#include <string>
#include <vector>

#include "apps/pipelines.h"
#include "compiler/pipeline.h"
#include "compiler/report.h"
#include "obs/analysis.h"
#include "obs/critical_path.h"
#include "obs/deadline.h"
#include "obs/event_ring.h"
#include "obs/frames.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/trace.h"
#include "sim/simulator.h"

namespace bpp {
namespace {

using obs::EventKind;
using obs::EventRing;
using obs::Recorder;
using obs::Trace;
using obs::TraceClock;
using obs::TraceEvent;

// --- A minimal recursive-descent JSON parser, just enough to check that
// --- our exports are well-formed and to pull a few values back out.

class JsonParser {
 public:
  explicit JsonParser(std::string s) : s_(std::move(s)) {}

  // Validates the whole input is exactly one JSON value (+ whitespace).
  bool valid() {
    pos_ = 0;
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

  // Counts occurrences of `"key":` at any depth (string-aware, so keys
  // inside string values do not count).
  int count_keys(const std::string& key) {
    const std::string want = '"' + key + '"';
    int n = 0;
    pos_ = 0;
    while (pos_ < s_.size()) {
      if (s_[pos_] == '"') {
        const std::size_t start = pos_;
        if (!string_lit()) return -1;
        const std::string token = s_.substr(start, pos_ - start);
        skip_ws();
        if (pos_ < s_.size() && s_[pos_] == ':' && token == want) ++n;
      } else {
        ++pos_;
      }
    }
    return n;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }
  bool literal(const char* lit) {
    const std::size_t n = std::string(lit).size();
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }
  bool string_lit() {
    if (pos_ >= s_.size() || s_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= s_.size() ||
                !std::isxdigit(static_cast<unsigned char>(s_[pos_])))
              return false;
          }
        } else if (std::string("\"\\/bfnrt").find(e) == std::string::npos) {
          return false;
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // raw control characters must be escaped
      }
      ++pos_;
    }
    return false;
  }
  bool number() {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-'))
      ++pos_;
    return pos_ > start;
  }
  bool value() {
    skip_ws();
    if (pos_ >= s_.size()) return false;
    const char c = s_[pos_];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string_lit();
    if (c == 't') return literal("true");
    if (c == 'f') return literal("false");
    if (c == 'n') return literal("null");
    return number();
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!string_lit()) return false;
      skip_ws();
      if (pos_ >= s_.size() || s_[pos_] != ':') return false;
      ++pos_;
      if (!value()) return false;
      skip_ws();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      if (!value()) return false;
      skip_ws();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  const std::string s_;
  std::size_t pos_ = 0;
};

TraceEvent firing(double t0, double t1, int core, int kernel, float run = 0,
                  float read = 0, float write = 0) {
  TraceEvent e;
  e.t0 = t0;
  e.t1 = t1;
  e.core = core;
  e.kernel = kernel;
  e.aux0 = run;
  e.aux1 = read;
  e.aux2 = write;
  e.kind = EventKind::kFiring;
  return e;
}

// --- EventRing -----------------------------------------------------------

TEST(EventRing, KeepsOldestAndCountsDrops) {
  EventRing ring(8);
  const std::size_t cap = ring.capacity();
  for (int i = 0; i < static_cast<int>(cap) + 5; ++i)
    ring.emit(firing(i, i + 1, 0, i));
  EXPECT_EQ(ring.dropped(), 5u);

  std::vector<TraceEvent> out;
  ring.drain_into(out);
  ASSERT_EQ(out.size(), cap);
  for (std::size_t i = 0; i < out.size(); ++i)
    EXPECT_EQ(out[i].kernel, static_cast<int>(i));  // first-N kept
}

TEST(EventRing, WrapsAroundAfterDrain) {
  EventRing ring(4);
  const std::size_t cap = ring.capacity();
  std::vector<TraceEvent> out;
  // Several full fill/drain rounds exercise index wraparound.
  for (int round = 0; round < 5; ++round) {
    for (std::size_t i = 0; i < cap; ++i)
      ring.emit(firing(round, round + 1, 0, static_cast<int>(i)));
    out.clear();
    ring.drain_into(out);
    ASSERT_EQ(out.size(), cap) << "round " << round;
    for (std::size_t i = 0; i < cap; ++i)
      EXPECT_EQ(out[i].kernel, static_cast<int>(i));
  }
  EXPECT_EQ(ring.dropped(), 0u);
}

// --- Recorder ------------------------------------------------------------

TEST(Recorder, MergesRingsSortedAndDerivesMetrics) {
  Recorder rec(obs::RecorderOptions{/*ring_capacity=*/16});
  rec.begin_session(TraceClock::kWall, 0.0, 2, {"a", "b"});
  // Emit out of order across the two rings; the collector must sort by t0.
  rec.ring(0)->emit(firing(0.030, 0.031, 0, 0));
  rec.ring(1)->emit(firing(0.010, 0.012, 1, 1));
  rec.ring(0)->emit(firing(0.050, 0.051, 0, 0));
  TraceEvent rel;
  rel.t0 = rel.t1 = 0.020;
  rel.kind = EventKind::kSourceRelease;
  rel.aux0 = 0.004f;  // lag
  rel.aux1 = 1.0f;    // delayed
  rec.ring(0)->emit(rel);

  const Trace& t = rec.finish_session(0.060);
  ASSERT_EQ(t.events.size(), 4u);
  for (std::size_t i = 1; i < t.events.size(); ++i)
    EXPECT_LE(t.events[i - 1].t0, t.events[i].t0);
  EXPECT_EQ(t.cores, 2);
  EXPECT_EQ(t.clock, TraceClock::kWall);
  EXPECT_DOUBLE_EQ(t.duration_seconds, 0.060);
  EXPECT_EQ(t.kernel_name(0), "a");
  EXPECT_EQ(t.kernel_name(1), "b");

  EXPECT_EQ(rec.metrics().counter("trace.firings").value(), 3);
  EXPECT_EQ(rec.metrics().counter("trace.releases").value(), 1);
  EXPECT_EQ(rec.metrics().counter("trace.delayed_releases").value(), 1);
  EXPECT_EQ(rec.metrics().counter("trace.dropped_events").value(), 0);
}

TEST(Recorder, AccumulatesRingOverflowIntoTrace) {
  Recorder rec(obs::RecorderOptions{/*ring_capacity=*/4});
  rec.begin_session(TraceClock::kWall, 0.0, 1, {"k"});
  const std::size_t cap = rec.ring(0)->capacity();
  for (std::size_t i = 0; i < cap + 7; ++i)
    rec.ring(0)->emit(firing(static_cast<double>(i), i + 0.5, 0, 0));
  const Trace& t = rec.finish_session(100.0);
  EXPECT_EQ(t.events.size(), cap);
  EXPECT_EQ(t.dropped_events, 7u);
}

TEST(Recorder, BeginSessionResetsPreviousSession) {
  Recorder rec;
  rec.begin_session(TraceClock::kWall, 0.0, 1, {"k"});
  rec.ring(0)->emit(firing(1.0, 2.0, 0, 0));
  (void)rec.finish_session(3.0);
  ASSERT_EQ(rec.trace().events.size(), 1u);

  rec.begin_session(TraceClock::kModeled, 1e6, 1, {"k"});
  const Trace& t = rec.finish_session(0.5);
  EXPECT_TRUE(t.events.empty());
  EXPECT_EQ(t.clock, TraceClock::kModeled);
}

// --- Chrome trace-event export -------------------------------------------

TEST(ChromeTrace, ExportIsParseableJson) {
  Recorder rec;
  // Names with JSON-hostile characters must be escaped on export.
  rec.begin_session(TraceClock::kModeled, 1e6, 2,
                    {"plain", "quo\"te\\back\nline"});
  rec.ring(0)->emit(firing(0.0, 1e-3, 0, 0, 600, 100, 200));
  TraceEvent w;
  w.t0 = 2e-3;
  w.t1 = 3e-3;
  w.core = 1;
  w.kernel = 1;
  w.aux2 = 500;
  w.kind = EventKind::kWrite;
  rec.ring(1)->emit(w);
  TraceEvent rel;
  rel.t0 = rel.t1 = 1.5e-3;
  rel.kind = EventKind::kSourceRelease;
  rec.ring(0)->emit(rel);
  TraceEvent push;
  push.t0 = push.t1 = 1.6e-3;
  push.channel = 3;
  push.aux0 = 2;
  push.kind = EventKind::kChannelPush;
  rec.ring(0)->emit(push);
  const Trace& t = rec.finish_session(4e-3);

  std::ostringstream os;
  obs::write_chrome_trace(t, os);
  const std::string json = os.str();

  JsonParser p(json);
  EXPECT_TRUE(p.valid()) << json;
  EXPECT_EQ(p.count_keys("traceEvents"), 1);
  // One "X" per firing/write span (plus park spans, none here).
  EXPECT_GE(p.count_keys("dur"), 2);
  // The hostile name must appear escaped, never raw.
  EXPECT_EQ(json.find("quo\"te"), std::string::npos);
  EXPECT_NE(json.find("quo\\\"te\\\\back\\nline"), std::string::npos);
}

TEST(ChromeTrace, EmptyTraceStillParses) {
  Trace t;
  std::ostringstream os;
  obs::write_chrome_trace(t, os);
  JsonParser p(os.str());
  EXPECT_TRUE(p.valid()) << os.str();
}

// --- Metrics registry ----------------------------------------------------

TEST(Metrics, InstrumentsAndDumps) {
  obs::MetricsRegistry reg;
  reg.counter("a.count").add(3);
  reg.counter("a.count").add(2);
  reg.gauge("b.level").set(0.25);
  reg.high_water("c.peak").update(7);
  reg.high_water("c.peak").update(4);  // lower value must not win
  reg.histogram("d.lat").observe(3e-6);
  reg.histogram("d.lat").observe(5e-6);
  reg.histogram("d.lat").observe(0.0);

  EXPECT_EQ(reg.counter("a.count").value(), 5);
  EXPECT_DOUBLE_EQ(reg.gauge("b.level").value(), 0.25);
  EXPECT_DOUBLE_EQ(reg.high_water("c.peak").value(), 7.0);
  EXPECT_EQ(reg.histogram("d.lat").count(), 3);
  EXPECT_DOUBLE_EQ(reg.histogram("d.lat").max(), 5e-6);

  std::ostringstream text;
  reg.write_text(text);
  EXPECT_NE(text.str().find("a.count counter 5"), std::string::npos);
  EXPECT_NE(text.str().find("c.peak high_water 7"), std::string::npos);

  std::ostringstream json;
  reg.write_json(json);
  JsonParser p(json.str());
  EXPECT_TRUE(p.valid()) << json.str();
  EXPECT_EQ(p.count_keys("counters"), 1);
  EXPECT_EQ(p.count_keys("histograms"), 1);
  EXPECT_EQ(p.count_keys("a.count"), 1);
}

TEST(Metrics, HistogramBucketsAreCumulativeUpperBounds) {
  obs::Histogram h;
  h.observe(1.5e-9);  // just above base -> bucket 1 (le 2e-9)
  h.observe(3e-9);    // bucket 2 (le 4e-9)
  long total = 0;
  for (int i = 0; i < obs::Histogram::kBuckets; ++i) {
    const auto n = h.bucket(i);
    total += n;
    if (n > 0) EXPECT_GT(obs::Histogram::bucket_upper(i), 0.0);
  }
  EXPECT_EQ(total, h.count());
  EXPECT_LT(obs::Histogram::bucket_upper(0),
            obs::Histogram::bucket_upper(1));
}

// --- Utilization analysis ------------------------------------------------

TEST(Analysis, ModeledTwoCoreBreakdown) {
  Trace t;
  t.clock = TraceClock::kModeled;
  t.cycles_per_second = 1e6;
  t.cores = 2;
  t.duration_seconds = 0.002;
  t.kernel_names = {"k0", "k1"};
  // Core 0: one firing spanning 1000 cycles = 1 ms, split 600 run /
  // 100 read / 200 write, leaving 100 cycles unattributed ("other").
  t.events.push_back(firing(0.0, 0.001, 0, 0, 600, 100, 200));
  // Core 1: a back-pressure drain worth 500 write cycles.
  TraceEvent w;
  w.t0 = 0.0;
  w.t1 = 0.0005;
  w.core = 1;
  w.kernel = 1;
  w.aux2 = 500;
  w.kind = EventKind::kWrite;
  t.events.push_back(w);

  const obs::UtilizationReport u = obs::analyze_utilization(t);
  ASSERT_EQ(u.cores.size(), 2u);
  EXPECT_EQ(u.clock, TraceClock::kModeled);
  EXPECT_DOUBLE_EQ(u.duration_seconds, 0.002);

  const obs::CoreBreakdown& c0 = u.cores[0];
  EXPECT_NEAR(c0.run_seconds, 600e-6, 1e-12);
  EXPECT_NEAR(c0.read_seconds, 100e-6, 1e-12);
  EXPECT_NEAR(c0.write_seconds, 200e-6, 1e-12);
  EXPECT_NEAR(c0.other_seconds, 100e-6, 1e-9);
  EXPECT_NEAR(c0.idle_seconds, 0.001, 1e-9);
  EXPECT_EQ(c0.firings, 1);

  const obs::CoreBreakdown& c1 = u.cores[1];
  EXPECT_NEAR(c1.write_seconds, 500e-6, 1e-12);
  EXPECT_EQ(c1.firings, 0);  // kWrite spans are not firings
  EXPECT_NEAR(c1.idle_seconds, 0.0015, 1e-9);

  // Only core 0 fired, so the average covers core 0 alone: 1 ms / 2 ms.
  EXPECT_NEAR(u.avg_utilization(), 0.5, 1e-9);
}

TEST(Analysis, WallClockReleasesAndLag) {
  Trace t;
  t.clock = TraceClock::kWall;
  t.cores = 1;
  t.duration_seconds = 0.010;
  t.kernel_names = {"src"};
  for (int i = 0; i < 3; ++i) {
    TraceEvent rel;
    rel.t0 = rel.t1 = i * 1e-3;
    rel.kind = EventKind::kSourceRelease;
    rel.aux0 = (i == 2) ? 0.004f : 0.0f;
    rel.aux1 = (i == 2) ? 1.0f : 0.0f;
    t.events.push_back(rel);
  }
  const obs::UtilizationReport u = obs::analyze_utilization(t);
  EXPECT_EQ(u.releases, 3);
  EXPECT_EQ(u.delayed_releases, 1);
  EXPECT_NEAR(u.max_release_lag_seconds, 0.004, 1e-6);
  // No firings anywhere: the average must not divide by zero.
  EXPECT_DOUBLE_EQ(u.avg_utilization(), 0.0);
}

TEST(Analysis, ReportSectionRendersBreakdown) {
  Trace t;
  t.clock = TraceClock::kModeled;
  t.cycles_per_second = 1e6;
  t.cores = 1;
  t.duration_seconds = 0.001;
  t.kernel_names = {"k"};
  t.events.push_back(firing(0.0, 0.0005, 0, 0, 300, 100, 100));
  const std::string s =
      utilization_string(obs::analyze_utilization(t));
  EXPECT_NE(s.find("per-core utilization (modeled"), std::string::npos);
  EXPECT_NE(s.find("core 0:"), std::string::npos);
  EXPECT_NE(s.find("run "), std::string::npos);
  EXPECT_NE(s.find("idle "), std::string::npos);
}

// --- End-to-end against the simulator ------------------------------------

TEST(ObsEndToEnd, SimulatorTraceMatchesCycleAccounting) {
  CompiledApp app = compile(apps::histogram_app({16, 12}, 80.0, 1, 8));
  Graph g = app.graph.clone();
  Recorder rec;
  SimOptions opt;
  opt.recorder = &rec;
  const SimResult r = simulate(g, app.mapping, opt);
  ASSERT_TRUE(r.completed) << r.diagnostics;

  const Trace& t = rec.trace();
  EXPECT_EQ(t.clock, TraceClock::kModeled);
  EXPECT_EQ(t.cores, app.mapping.cores);
  EXPECT_EQ(t.kernel_names.size(),
            static_cast<std::size_t>(g.kernel_count()));
  EXPECT_EQ(t.dropped_events, 0u);

  long firings = 0;
  std::vector<double> run_cycles(static_cast<std::size_t>(t.cores), 0.0);
  std::vector<bool> fired(static_cast<std::size_t>(g.kernel_count()), false);
  for (const TraceEvent& e : t.events) {
    if (e.kind != EventKind::kFiring) continue;
    ++firings;
    ASSERT_GE(e.core, 0);
    ASSERT_LT(e.core, t.cores);
    run_cycles[static_cast<std::size_t>(e.core)] += e.aux0;
    fired[static_cast<std::size_t>(e.kernel)] = true;
  }
  EXPECT_EQ(firings, r.total_firings);

  // Every kernel the simulator says fired has a span in the trace.
  for (std::size_t k = 0; k < fired.size(); ++k)
    EXPECT_EQ(fired[k], r.kernel_activity[k].first > 0) << "kernel " << k;

  // Per-core run cycles match CoreStats (aux fields are floats; allow
  // accumulated rounding).
  for (int c = 0; c < t.cores; ++c)
    EXPECT_NEAR(run_cycles[static_cast<std::size_t>(c)],
                r.cores[static_cast<std::size_t>(c)].run_cycles,
                1e-3 * (1.0 + r.cores[static_cast<std::size_t>(c)].run_cycles))
        << "core " << c;

  // The whole export round-trips as JSON with a span per firing.
  std::ostringstream os;
  obs::write_chrome_trace(t, os);
  JsonParser p(os.str());
  EXPECT_TRUE(p.valid());
}

// --- Frame tracking ------------------------------------------------------

TraceEvent frame_mark(EventKind kind, double t, int kernel, int frame) {
  TraceEvent e;
  e.kind = kind;
  e.t0 = e.t1 = t;
  e.kernel = kernel;
  e.method = frame;
  return e;
}

TEST(Frames, SummarizeComputesOrderStatistics) {
  const obs::SeriesSummary s = obs::summarize({4.0, 1.0, 3.0, 2.0});
  EXPECT_EQ(s.count, 4);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.p50, 2.5);  // interpolated between 2 and 3
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_GT(s.p95, s.p50);
  EXPECT_LE(s.p95, s.max);
}

TEST(Frames, PairsBoundariesOnHandBuiltTrace) {
  Trace t;
  // Frame 0: two sources released (earliest wins), two sinks completed
  // (latest wins). Frame 1 is a plain pair. Frame 2 never completes, and
  // a negative index (a feedback seed) is ignored entirely.
  t.events.push_back(frame_mark(EventKind::kFrameStart, 0.002, 0, 0));
  t.events.push_back(frame_mark(EventKind::kFrameStart, 0.001, 1, 0));
  t.events.push_back(frame_mark(EventKind::kFrameEnd, 0.010, 5, 0));
  t.events.push_back(frame_mark(EventKind::kFrameEnd, 0.011, 6, 0));
  t.events.push_back(frame_mark(EventKind::kFrameStart, 0.006, 0, 1));
  t.events.push_back(frame_mark(EventKind::kFrameEnd, 0.016, 5, 1));
  t.events.push_back(frame_mark(EventKind::kFrameStart, 0.012, 0, 2));
  t.events.push_back(frame_mark(EventKind::kFrameEnd, 0.020, 5, -1));

  const obs::FrameReport r = obs::analyze_frames(t);
  ASSERT_EQ(r.frames.size(), 2u);
  EXPECT_EQ(r.incomplete, 1);
  EXPECT_EQ(r.frames[0].frame, 0);
  EXPECT_DOUBLE_EQ(r.frames[0].start_seconds, 0.001);
  EXPECT_DOUBLE_EQ(r.frames[0].end_seconds, 0.011);
  EXPECT_EQ(r.frames[0].start_kernel, 1);
  EXPECT_EQ(r.frames[0].end_kernel, 6);
  EXPECT_DOUBLE_EQ(r.frames[0].latency_seconds(), 0.010);
  EXPECT_DOUBLE_EQ(r.frames[1].latency_seconds(), 0.010);
  EXPECT_EQ(r.latency.count, 2);
  EXPECT_DOUBLE_EQ(r.latency.mean, 0.010);
  // One completion delta: 0.016 - 0.011.
  EXPECT_EQ(r.period.count, 1);
  EXPECT_DOUBLE_EQ(r.period.mean, 0.005);
}

TEST(Frames, RecorderDerivesFrameMetrics) {
  Recorder rec;
  rec.begin_session(TraceClock::kWall, 0.0, 1, {"src", "snk"});
  rec.ring(0)->emit(frame_mark(EventKind::kFrameStart, 0.000, 0, 0));
  rec.ring(0)->emit(frame_mark(EventKind::kFrameEnd, 0.004, 1, 0));
  rec.ring(0)->emit(frame_mark(EventKind::kFrameStart, 0.010, 0, 1));
  rec.ring(0)->emit(frame_mark(EventKind::kFrameEnd, 0.014, 1, 1));
  rec.ring(0)->emit(frame_mark(EventKind::kFrameStart, 0.020, 0, 2));
  rec.finish_session(0.025);

  EXPECT_EQ(rec.metrics().counter("trace.frames").value(), 2);
  EXPECT_EQ(rec.metrics().counter("trace.incomplete_frames").value(), 1);
  EXPECT_EQ(
      rec.metrics().histogram("trace.frame_latency_seconds").count(), 2);
  EXPECT_EQ(rec.metrics().histogram("trace.frame_period_seconds").count(), 1);

  // Frame instants survive the Chrome export as parseable JSON.
  std::ostringstream os;
  obs::write_chrome_trace(rec.trace(), os);
  JsonParser p(os.str());
  EXPECT_TRUE(p.valid());
  EXPECT_EQ(p.count_keys("frame"), 5);
}

// --- Deadline monitor ----------------------------------------------------

TEST(Deadline, OnScheduleFramesAllMeet) {
  obs::MetricsRegistry m;
  obs::DeadlineMonitor mon({/*rate_hz=*/100.0, /*slack_seconds=*/0.0}, &m);
  // Completions exactly one 10 ms period apart; latency of the pipeline
  // fill (the 50 ms anchor) is irrelevant by design.
  mon.observe_frame(0, 0.050);
  mon.observe_frame(1, 0.060);
  mon.observe_frame(2, 0.070);
  EXPECT_EQ(mon.frames(), 3);
  EXPECT_EQ(mon.misses(), 0);
  EXPECT_EQ(m.counter("deadline.frames").value(), 3);
  EXPECT_EQ(m.counter("deadline.misses").value(), 0);
}

TEST(Deadline, DriftAccumulatesMissesAndInvokesCallback) {
  obs::MetricsRegistry m;
  std::vector<std::int64_t> missed;
  obs::DeadlineMonitor mon(
      {/*rate_hz=*/100.0, /*slack_seconds=*/0.0}, &m,
      [&](const obs::FrameVerdict& v) { missed.push_back(v.frame); });
  mon.observe_frame(0, 0.050);  // anchor
  mon.observe_frame(1, 0.062);  // 2 ms late
  mon.observe_frame(2, 0.074);  // 4 ms late
  EXPECT_EQ(mon.misses(), 2);
  EXPECT_EQ(missed, (std::vector<std::int64_t>{1, 2}));
  EXPECT_NEAR(mon.max_lateness_seconds(), 0.004, 1e-9);
  EXPECT_EQ(m.counter("deadline.misses").value(), 2);
  EXPECT_NEAR(m.high_water("deadline.max_lateness_seconds").value(), 0.004,
              1e-9);
  ASSERT_EQ(mon.verdicts().size(), 3u);
  EXPECT_FALSE(mon.verdicts()[0].missed);
  EXPECT_TRUE(mon.verdicts()[1].missed);
  EXPECT_NEAR(mon.verdicts()[2].lateness_seconds, 0.004, 1e-9);
}

TEST(Deadline, SlackAbsorbsJitter) {
  obs::DeadlineMonitor mon({/*rate_hz=*/100.0, /*slack_seconds=*/0.005});
  mon.observe_frame(0, 0.050);
  mon.observe_frame(1, 0.064);  // 4 ms late < 5 ms slack
  EXPECT_EQ(mon.misses(), 0);
}

TEST(Deadline, WholeReportObservation) {
  obs::FrameReport r;
  r.frames.push_back({0, 0.000, 0.020, 0, 1});
  r.frames.push_back({1, 0.010, 0.045, 0, 1});  // 15 ms late at 100 Hz
  obs::DeadlineMonitor mon({/*rate_hz=*/100.0, /*slack_seconds=*/0.0});
  mon.observe(r);
  EXPECT_EQ(mon.frames(), 2);
  EXPECT_EQ(mon.misses(), 1);
}

// --- Critical path + rate validation (simulated end to end) --------------

TEST(CriticalPath, AttributesSimulatedFrameLatency) {
  CompiledApp app = compile(apps::pipeline_app({16, 12}, 120.0, 3));
  Graph g = app.graph.clone();
  Recorder rec;
  SimOptions opt;
  opt.recorder = &rec;
  ASSERT_TRUE(simulate(g, app.mapping, opt).completed);

  const obs::FrameReport frames = obs::analyze_frames(rec.trace());
  ASSERT_EQ(frames.frames.size(), 3u);
  EXPECT_EQ(frames.incomplete, 0);

  const obs::CriticalPathReport cp =
      obs::analyze_critical_path(rec.trace(), frames, app.graph);
  EXPECT_EQ(cp.frames_analyzed, 3);
  double total_latency = 0.0;
  for (const auto& f : frames.frames) total_latency += f.latency_seconds();
  EXPECT_NEAR(cp.latency_seconds, total_latency, 1e-9);

  ASSERT_GE(cp.bottleneck, 0);
  ASSERT_LT(cp.bottleneck, app.graph.kernel_count());
  double attributed = 0.0;
  for (const auto& c : cp.kernels) {
    EXPECT_GE(c.busy_seconds, -1e-12);
    EXPECT_GE(c.wait_seconds, -1e-12);
    attributed += c.total_seconds();
  }
  // The walk explains the latency it claims to: attribution is positive
  // and never exceeds the summed frame latency (busy is clamped to each
  // frame's window).
  EXPECT_GT(attributed, 0.0);
  EXPECT_LE(attributed, total_latency * 1.001 + 1e-9);

  std::ostringstream os;
  obs::write_critical_path(cp, rec.trace(), os);
  EXPECT_NE(os.str().find("bottleneck:"), std::string::npos);
}

TEST(RateValidation, SimulatedRatesMatchCompiledLoads) {
  // The acceptance bar: on the edge-detect pipeline every measurable
  // kernel's observed firing rate is within 1% of the compiler's
  // firings_per_frame * rate_hz prediction.
  CompiledApp app = compile(apps::sobel_app({48, 36}, 180.0, 5, 100.0));
  Graph g = app.graph.clone();
  Recorder rec;
  SimOptions opt;
  opt.recorder = &rec;
  ASSERT_TRUE(simulate(g, app.mapping, opt).completed);

  const RateValidation v = validate_rates(app, rec.trace());
  ASSERT_FALSE(v.rows.empty());
  for (const RateRow& r : v.rows) {
    EXPECT_TRUE(r.measured) << r.name;
    EXPECT_GT(r.predicted_hz, 0.0) << r.name;
  }
  EXPECT_TRUE(v.all_within(0.01));

  const std::string s = rate_validation_string(v);
  EXPECT_NE(s.find("within 1%"), std::string::npos) << s;
}

// --- Histogram quantiles --------------------------------------------------

TEST(Metrics, HistogramQuantilesFromBuckets) {
  obs::MetricsRegistry m;
  obs::Histogram& h = m.histogram("lat");
  for (int i = 0; i < 99; ++i) h.observe(1e-3);
  h.observe(0.5);  // one outlier dominates the max
  EXPECT_DOUBLE_EQ(h.max(), 0.5);
  // p50 lands in the bucket covering 1e-3 (log2 buckets: within 2x).
  EXPECT_GE(h.quantile(0.50), 0.5e-3);
  EXPECT_LE(h.quantile(0.50), 2.1e-3);
  EXPECT_LE(h.quantile(0.95), 2.1e-3);  // 95th still inside the mass
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 0.5);  // clamped to the observed max
  EXPECT_LE(h.quantile(0.0), h.quantile(0.5));

  // Both dump formats carry the derived summaries.
  std::ostringstream text;
  m.write_text(text);
  EXPECT_NE(text.str().find("p50"), std::string::npos);
  EXPECT_NE(text.str().find("p95"), std::string::npos);
  std::ostringstream json;
  m.write_json(json);
  JsonParser p(json.str());
  EXPECT_TRUE(p.valid());
  EXPECT_EQ(p.count_keys("p50"), 1);
  EXPECT_EQ(p.count_keys("p95"), 1);
}

}  // namespace
}  // namespace bpp
