// Coverage for the reporting/census helpers, DOT export of compiled
// graphs, upsampling, engine determinism, and machine-model presets.

#include <gtest/gtest.h>

#include "apps/pipelines.h"
#include "compiler/pipeline.h"
#include "compiler/report.h"
#include "core/dot_export.h"
#include "kernels/kernels.h"
#include "ref/reference.h"
#include "runtime/runtime.h"
#include "sim/simulator.h"
#include "test_util.h"

namespace bpp {
namespace {

TEST(Report, CensusClassifiesKernels) {
  CompiledApp app = compile(apps::figure1_app({48, 36}, 180.0, 1, 64));
  const GraphCensus c = census(app.graph);
  EXPECT_EQ(c.total, app.graph.kernel_count());
  EXPECT_EQ(c.sources, 3);
  EXPECT_GE(c.buffers, 3);       // median buffer + conv slices
  EXPECT_GE(c.splits_joins, 4);  // RR splits/joins + column split pair
  EXPECT_EQ(c.insets, 1);
  EXPECT_EQ(c.total,
            c.sources + c.computation + c.buffers + c.splits_joins + c.insets);
}

TEST(Report, StringContainsEveryTransformation) {
  CompiledApp app = compile(apps::figure1_app({96, 72}, 130.0, 1, 64));
  const std::string r = report_string(app);
  EXPECT_NE(r.find("alignment edits"), std::string::npos);
  EXPECT_NE(r.find("buffers inserted"), std::string::npos);
  EXPECT_NE(r.find("replication factors"), std::string::npos);
  EXPECT_NE(r.find("buffer split"), std::string::npos);
  EXPECT_NE(r.find("mapping:"), std::string::npos);
  EXPECT_NE(r.find("[96x10]"), std::string::npos);  // paper-style annotation
}

TEST(DotExport, CompiledGraphShowsShapes) {
  CompiledApp app = compile(apps::figure1_app({48, 36}, 180.0, 1, 64));
  const std::string dot = to_dot(app.graph);
  EXPECT_NE(dot.find("shape=parallelogram"), std::string::npos);  // buffers
  EXPECT_NE(dot.find("shape=diamond"), std::string::npos);        // split/join
  EXPECT_NE(dot.find("shape=invhouse"), std::string::npos);       // inset
}

TEST(Upsample, MatchesReference) {
  const Size2 frame{6, 4};
  Graph g;
  auto& in = g.add<InputKernel>("input", frame, 50.0, 1);
  auto& up = g.add<UpsampleKernel>("up2", 2);
  auto& out = g.add<OutputKernel>("result", Size2{2, 2});
  g.connect(in, "out", up, "in");
  g.connect(up, "out", out, "in");
  ASSERT_TRUE(run_sequential(g).completed);

  const Tile img = ref::make_frame(frame, 0, default_pixel_fn());
  const Tile want = ref::upsample(img, 2);
  ASSERT_EQ(out.frames().size(), 1u);
  ASSERT_EQ(out.frames()[0].size(), want.size());
  for (int y = 0; y < want.height(); ++y)
    for (int x = 0; x < want.width(); ++x)
      EXPECT_DOUBLE_EQ(out.frames()[0].at(x, y), want.at(x, y));
}

TEST(Upsample, ScaleShrinksInAnalysis) {
  Graph g;
  auto& in = g.add<InputKernel>("input", Size2{6, 4}, 50.0, 1);
  auto& up = g.add<UpsampleKernel>("up2", 2);
  auto& out = g.add<OutputKernel>("result", Size2{2, 2});
  g.connect(in, "out", up, "in");
  g.connect(up, "out", out, "in");
  const DataflowResult df = analyze(g);
  const StreamInfo& s =
      df.channel[static_cast<size_t>(*g.in_channel(g.find("result"), 0))];
  EXPECT_EQ(s.frame, (Size2{12, 8}));
  EXPECT_EQ(s.scale, (Offset2{0.5, 0.5}));
}

TEST(Simulator, DeterministicAcrossRuns) {
  // Two simulations of the same compiled app give byte-identical timing.
  CompiledApp app = compile(apps::figure1_app({32, 24}, 200.0, 2, 16));
  SimOptions opt;
  opt.machine = app.options.machine;
  Graph g1 = app.graph.clone();
  Graph g2 = app.graph.clone();
  const SimResult a = simulate(g1, app.mapping, opt);
  const SimResult b = simulate(g2, app.mapping, opt);
  EXPECT_EQ(a.total_firings, b.total_firings);
  EXPECT_DOUBLE_EQ(a.sim_seconds, b.sim_seconds);
  ASSERT_EQ(a.cores.size(), b.cores.size());
  for (size_t c = 0; c < a.cores.size(); ++c) {
    EXPECT_DOUBLE_EQ(a.cores[c].run_cycles, b.cores[c].run_cycles);
    EXPECT_DOUBLE_EQ(a.cores[c].read_cycles, b.cores[c].read_cycles);
    EXPECT_DOUBLE_EQ(a.cores[c].write_cycles, b.cores[c].write_cycles);
  }
}

TEST(Machines, PresetsAreSane) {
  EXPECT_GT(machines::embedded().clock_hz, 0.0);
  EXPECT_LT(machines::small_memory().mem_words, machines::embedded().mem_words);
  EXPECT_GT(machines::roomy().clock_hz, machines::embedded().clock_hz);
  EXPECT_DOUBLE_EQ(machines::embedded().cycle_seconds(),
                   1.0 / machines::embedded().clock_hz);
}

TEST(Multiplex, PinningSurvivesReuseStriping) {
  CompileOptions opt;
  opt.reuse_opt = true;
  opt.machine.mem_words = 4096;
  CompiledApp app = compile(apps::figure1_app({48, 36}, 420.0, 1, 64), opt);
  const auto pinned = multiplex_pinned(app.graph);
  // The reuse-linked slice buffers sit right behind the input's column
  // split: they are initial input buffers and must be pinned.
  int pinned_buffers = 0;
  for (KernelId k : pinned)
    if (dynamic_cast<const BufferKernel*>(&app.graph.kernel(k))) ++pinned_buffers;
  EXPECT_GE(pinned_buffers, 2);
}

TEST(LoadModel, DividedScalesRates) {
  LoadModel l;
  l.cycles_per_second = 100.0;
  l.read_words_per_second = 40.0;
  l.write_words_per_second = 20.0;
  l.firings_per_second = 10.0;
  l.memory_words = 512;
  const LoadModel d = l.divided(4);
  EXPECT_DOUBLE_EQ(d.cycles_per_second, 25.0);
  EXPECT_DOUBLE_EQ(d.read_words_per_second, 10.0);
  EXPECT_EQ(d.memory_words, 512);  // state is per-replica, not divided

  MachineSpec m;
  m.clock_hz = 1000.0;
  m.read_cost = 1.0;
  m.write_cost = 1.0;
  m.context_switch = 0.0;
  EXPECT_DOUBLE_EQ(l.utilization(m), (100.0 + 40.0 + 20.0) / 1000.0);
  EXPECT_DOUBLE_EQ(l.compute_utilization(m), 0.1);
}

}  // namespace
}  // namespace bpp
