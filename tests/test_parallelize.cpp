// Parallelization pass (paper §IV): replication sizing, split/join
// insertion, dependency-edge caps, replicated inputs, lane-connected
// pipelines, and functional equivalence of the transformed graphs.

#include <gtest/gtest.h>

#include "apps/pipelines.h"
#include "compiler/pipeline.h"
#include "core/validation.h"
#include "kernels/kernels.h"
#include "ref/reference.h"
#include "runtime/runtime.h"

namespace bpp {
namespace {

TEST(RequiredParallelism, FirstOrderFormula) {
  MachineSpec m;
  m.clock_hz = 10e6;
  m.target_utilization = 0.9;
  LoadModel l;
  l.cycles_per_second = 4.5e6;  // util 0.45
  EXPECT_EQ(required_parallelism(l, m), 1);
  l.cycles_per_second = 9.1e6;  // util 0.91 > 0.9
  EXPECT_EQ(required_parallelism(l, m), 2);
  l.cycles_per_second = 36e6;  // util 3.6 -> exactly 4
  EXPECT_EQ(required_parallelism(l, m), 4);
  l.cycles_per_second = 0.0;
  EXPECT_EQ(required_parallelism(l, m), 1);
  // I/O access time counts too.
  l.read_words_per_second = 50e6;  // x m.read_cost (0.2) = 10e6 cycles
  EXPECT_EQ(required_parallelism(LoadModel{0, 50e6, 0, 0, 0}, m), 2);
}

CompiledApp compiled_fig1(const char* tag) {
  for (const auto& c : apps::fig11_configs())
    if (std::string(c.tag) == tag)
      return compile(apps::figure1_app(c.frame, c.rate_hz, 1, 64));
  throw std::runtime_error("unknown tag");
}

TEST(Parallelize, SmallSlowReplicatesFiltersTwice) {
  const CompiledApp app = compiled_fig1("SS");
  const auto& f = app.parallelization.factors;
  ASSERT_TRUE(f.count("conv5x5"));
  EXPECT_EQ(f.at("conv5x5"), 2);
  ASSERT_TRUE(f.count("median3x3"));
  EXPECT_EQ(f.at("median3x3"), 2);
  EXPECT_FALSE(f.count("histogram"));  // one instance suffices when slow
  EXPECT_FALSE(f.count("subtract"));
}

TEST(Parallelize, FastRatesAddHistogramParallelism) {
  const CompiledApp app = compiled_fig1("SF");
  const auto& f = app.parallelization.factors;
  EXPECT_GE(f.at("conv5x5"), 4);
  EXPECT_GE(f.at("median3x3"), 3);
  ASSERT_TRUE(f.count("histogram"));
  EXPECT_EQ(f.at("histogram"), 2);
}

TEST(Parallelize, DependencyEdgeKeepsMergeSerial) {
  // Fig. 1(b): the dependency edge from the input bounds the merge kernel
  // to one instance per frame no matter the rate.
  const CompiledApp app = compiled_fig1("BF");
  EXPECT_FALSE(app.parallelization.factors.count("merge"));
  EXPECT_GE(app.parallelization.factors.at("histogram"), 2);
  // The merge kernel was told how many partial histograms to expect.
  const auto& merge = dynamic_cast<const HistogramMergeKernel&>(
      app.graph.by_name("merge"));
  EXPECT_EQ(merge.expected(), app.parallelization.factors.at("histogram"));
}

TEST(Parallelize, ReplicatedInputsGetReplicateKernels) {
  const CompiledApp app = compiled_fig1("SF");
  // The coefficient source must feed every conv replica through a
  // replicate kernel, not a split (Fig. 4 "Replicate").
  EXPECT_GE(app.parallelization.replicates_inserted, 2);  // coeff + bins
  int found = 0;
  for (int k = 0; k < app.graph.kernel_count(); ++k)
    if (dynamic_cast<const ReplicateKernel*>(&app.graph.kernel(k))) ++found;
  EXPECT_EQ(found, app.parallelization.replicates_inserted);
}

TEST(Parallelize, ReplicaNamingFollowsPaper) {
  const CompiledApp app = compiled_fig1("SS");
  // Fig. 4: "5x5 Conv_0", "5x5 Conv_1", ...
  EXPECT_GE(app.graph.find("conv5x5_0"), 0);
  EXPECT_GE(app.graph.find("conv5x5_1"), 0);
  EXPECT_EQ(app.graph.find("conv5x5"), -1);
  EXPECT_GE(app.graph.find("median3x3_0"), 0);
}

TEST(Parallelize, TransformedGraphValidates) {
  for (const char* tag : {"SS", "BS", "SF", "BF"}) {
    const CompiledApp app = compiled_fig1(tag);
    EXPECT_TRUE(validate(app.graph).empty()) << tag;
  }
}

TEST(Parallelize, PipelineLaneConnections) {
  // §IV-B: a dependency-edged pipeline of equal-cost stages replicates as
  // whole pipelines — stage1_j connects straight to stage2_j.
  MachineSpec m;  // defaults; stage cycles chosen to demand ~3x
  const Size2 frame{48, 36};
  const double rate = 150.0;
  CompileOptions opt;
  opt.machine = m;
  CompiledApp app =
      compile(apps::pipeline_app(frame, rate, 1, /*stage_cycles=*/300), opt);

  ASSERT_TRUE(app.parallelization.factors.count("stage1"));
  const int p = app.parallelization.factors.at("stage1");
  EXPECT_GT(p, 1);
  EXPECT_EQ(app.parallelization.factors.at("stage2"), p);
  EXPECT_EQ(app.parallelization.lane_connections, 1);

  // Lane check: stage1_j's only consumer is stage2_j.
  for (int j = 0; j < p; ++j) {
    const KernelId s1 = app.graph.find("stage1_" + std::to_string(j));
    ASSERT_GE(s1, 0);
    const auto outs = app.graph.out_channels(s1);
    ASSERT_EQ(outs.size(), 1u);
    EXPECT_EQ(app.graph.kernel(app.graph.channel(outs[0]).dst_kernel).name(),
              "stage2_" + std::to_string(j));
  }
}

TEST(Parallelize, PipelineLanesComputeCorrectly) {
  CompileOptions opt;
  CompiledApp app = compile(apps::pipeline_app({24, 18}, 150.0, 2, 300), opt);
  ASSERT_TRUE(run_sequential(app.graph).completed);
  const auto& out = dynamic_cast<const OutputKernel&>(app.graph.by_name("result"));
  ASSERT_EQ(out.frames().size(), 2u);
  for (size_t f = 0; f < 2; ++f) {
    const Tile img = ref::make_frame({24, 18}, static_cast<int>(f),
                                     default_pixel_fn());
    for (int y = 0; y < 18; ++y)
      for (int x = 0; x < 24; ++x) {
        const double s1 = 0.5 * img.at(x, y) + 1.0;
        const double want = s1 > 64.0 ? s1 : 0.0;
        EXPECT_DOUBLE_EQ(out.frames()[f].at(x, y), want);
      }
  }
}

TEST(Parallelize, SerialKernelsNeverReplicate) {
  // Even at absurd rates, Serial kernels stay single.
  MachineSpec slow;
  slow.clock_hz = 1e5;  // drastically underpowered
  CompileOptions opt;
  opt.machine = slow;
  Graph g = apps::histogram_app({16, 12}, 100.0, 1);
  CompiledApp app = compile(std::move(g), opt);
  EXPECT_FALSE(app.parallelization.factors.count("merge"));
  EXPECT_EQ(app.graph.find("merge"), app.graph.find("merge"));  // still one
}

TEST(Parallelize, DisabledLeavesGraphUntouched) {
  CompileOptions opt;
  opt.parallelize = false;
  CompiledApp app = compile(apps::figure1_app({48, 36}, 420.0, 1, 64), opt);
  EXPECT_TRUE(app.parallelization.factors.empty());
  EXPECT_EQ(app.parallelization.splits_inserted, 0);
  EXPECT_GE(app.graph.find("conv5x5"), 0);  // not renamed
}

TEST(Parallelize, RoomyMachineNeedsNoParallelism) {
  CompileOptions opt;
  opt.machine = machines::roomy();
  CompiledApp app = compile(apps::figure1_app({48, 36}, 420.0, 1, 64), opt);
  EXPECT_TRUE(app.parallelization.factors.empty());
}

TEST(Parallelize, SplitJoinCountsAreConsistent) {
  const CompiledApp app = compiled_fig1("SF");
  int splits = 0, joins = 0;
  for (int k = 0; k < app.graph.kernel_count(); ++k) {
    if (dynamic_cast<const SplitKernel*>(&app.graph.kernel(k))) ++splits;
    if (dynamic_cast<const JoinKernel*>(&app.graph.kernel(k))) ++joins;
  }
  // Buffer splits add one split+join pair each beyond the recorded RR ones.
  const int buffer_pairs =
      static_cast<int>(app.parallelization.buffer_splits.size());
  EXPECT_EQ(splits, app.parallelization.splits_inserted + buffer_pairs);
  EXPECT_EQ(joins, app.parallelization.joins_inserted + buffer_pairs);
}


TEST(Parallelize, SplitBufferBehindReplicatedProducer) {
  // Regression: a storage-split buffer whose producer was itself
  // replicated must route through the producer's join (found by the
  // analytics app at 96x72 @ 150 Hz: blurH x2 feeding a 920-word buffer).
  CompiledApp app = compile(apps::analytics_app({96, 72}, 150.0, 1));
  EXPECT_TRUE(validate(app.graph).empty());
  ASSERT_TRUE(app.parallelization.factors.count("blurH"));
  ASSERT_FALSE(app.parallelization.buffer_splits.empty());
  ASSERT_TRUE(run_sequential(app.graph).completed);
  // Functional spot check: edge frames exist and are the right size.
  const auto& edges = dynamic_cast<const OutputKernel&>(app.graph.by_name("edges"));
  ASSERT_EQ(edges.frames().size(), 1u);
  EXPECT_EQ(edges.frames()[0].size(), (Size2{88, 64}));
}

}  // namespace
}  // namespace bpp
