// Supervision, crash containment, and durable recovery (DESIGN.md §8):
// the kThrow/kWedge fault kinds end to end — plan parsing, deterministic
// injection, machine-level exception containment (a throwing firing
// fails its program, never the shared pool or a co-program), the
// daemon's restart-with-backoff and quarantine policy, graceful drain at
// frame boundaries, the durable admission journal, and spool hygiene
// (partial-write races, malformed files quarantined to spool/bad/).

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "apps/pipelines.h"
#include "compiler/pipeline.h"
#include "core/error.h"
#include "fault/injector.h"
#include "fault/plan.h"
#include "kernels/kernels.h"
#include "runtime/machine.h"
#include "runtime/program.h"
#include "runtime/runtime.h"
#include "service/daemon.h"
#include "service/journal.h"
#include "service/protocol.h"
#include "test_util.h"

namespace bpp {
namespace {

using service::Daemon;
using service::DaemonOptions;
using service::TenantSpec;
using service::TenantState;
using service::Verdict;

// ---- fault plan: the recovery fault kinds ------------------------------

TEST(SupervisionPlan, ThrowAndWedgeRoundTrip) {
  const fault::FaultPlan p = fault::parse_plan(
      R"({"seed":9,"kernels":[{"match":"merge*","throw_prob":0.25,
          "wedge_prob":0.5}]})");
  ASSERT_EQ(p.kernels.size(), 1u);
  EXPECT_DOUBLE_EQ(p.kernels[0].throw_prob, 0.25);
  EXPECT_DOUBLE_EQ(p.kernels[0].wedge_prob, 0.5);

  const fault::FaultPlan back = fault::parse_plan(fault::write_plan(p));
  EXPECT_DOUBLE_EQ(back.kernels[0].throw_prob, 0.25);
  EXPECT_DOUBLE_EQ(back.kernels[0].wedge_prob, 0.5);
}

TEST(SupervisionPlan, ProbabilitiesRangeChecked) {
  EXPECT_THROW(
      fault::parse_plan(R"({"kernels":[{"match":"*","throw_prob":1.5}]})"),
      Error);
  EXPECT_THROW(
      fault::parse_plan(R"({"kernels":[{"match":"*","wedge_prob":-0.1}]})"),
      Error);
}

TEST(SupervisionPlan, InjectorDrawsAreDeterministicAndScoped) {
  CompiledApp app = compile(apps::figure1_app({24, 18}, 100.0, 2, 8));
  const int merge_id = app.graph.id_of(app.graph.by_name("merge"));

  fault::FaultPlan plan;
  plan.seed = 3;
  fault::KernelRule kr;
  kr.match = "merge*";
  kr.throw_prob = 1.0;
  kr.wedge_prob = 1.0;
  plan.kernels.push_back(kr);

  fault::Injector inj(plan, 3);
  inj.bind(app.graph, app.mapping.core_of);
  for (int f = 0; f < 4; ++f) {
    const fault::Perturbation a = inj.perturb(merge_id, f);
    const fault::Perturbation b = inj.perturb(merge_id, f);
    EXPECT_TRUE(a.throw_fault);  // prob 1.0: every firing draws it
    EXPECT_TRUE(a.wedge);
    EXPECT_EQ(a.throw_fault, b.throw_fault);  // pure function of inputs
    EXPECT_EQ(a.wedge, b.wedge);
  }
  // The rule is scoped to merge*: every other kernel is untouched.
  for (int k = 0; k < app.graph.kernel_count(); ++k) {
    if (k == merge_id) continue;
    const fault::Perturbation p = inj.perturb(k, 0);
    EXPECT_FALSE(p.throw_fault) << app.graph.kernel(k).name();
    EXPECT_FALSE(p.wedge) << app.graph.kernel(k).name();
  }
}

// ---- machine-level containment -----------------------------------------

fault::FaultPlan merge_plan(double throw_prob, double wedge_prob) {
  fault::FaultPlan plan;
  plan.seed = 1;
  fault::KernelRule kr;
  kr.match = "merge*";
  kr.throw_prob = throw_prob;
  kr.wedge_prob = wedge_prob;
  plan.kernels.push_back(kr);
  return plan;
}

std::vector<long> result_bins(const Graph& g, int bins) {
  const auto& out = dynamic_cast<const OutputKernel&>(g.by_name("result"));
  std::vector<long> total(static_cast<size_t>(bins), 0);
  for (const Tile& t : out.tiles())
    for (int i = 0; i < bins; ++i)
      total[static_cast<size_t>(i)] += static_cast<long>(t.at(i, 0));
  return total;
}

Mapping onto_pool(const Mapping& m, int pool_cores) {
  Mapping out;
  out.cores = pool_cores;
  out.core_of.resize(m.core_of.size());
  for (size_t i = 0; i < m.core_of.size(); ++i)
    out.core_of[i] = m.core_of[i] % pool_cores;
  return out;
}

TEST(Containment, ThrowFailsProgramNotPoolOrCoProgram) {
  rt::Machine machine(3);

  CompiledApp faulty = compile(apps::figure1_app({24, 18}, 200.0, 2, 8));
  CompiledApp clean = compile(apps::histogram_app({24, 18}, 100.0, 2, 8));
  Graph clean_seq = clean.graph.clone();
  ASSERT_TRUE(run_sequential(clean_seq).completed);

  const fault::FaultPlan plan = merge_plan(1.0, 0.0);
  const fault::Injector inj(plan, 1);
  Graph gf = faulty.graph.clone();
  RuntimeOptions fopt;
  fopt.injector = &inj;
  GraphProgram pf(gf, onto_pool(faulty.mapping, 3), fopt, machine);

  Graph gc = clean.graph.clone();
  GraphProgram pc(gc, onto_pool(clean.mapping, 3), RuntimeOptions{}, machine);

  pf.start();
  pc.start();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while ((!pf.failed() || !pc.done()) &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));

  // The throwing firing failed only its own program...
  ASSERT_TRUE(pf.failed());
  EXPECT_NE(pf.error().find("injected fault"), std::string::npos)
      << pf.error();
  const RuntimeResult rf = pf.finish();
  EXPECT_TRUE(rf.failed);
  EXPECT_FALSE(rf.completed);

  // ...while the co-program on the same workers completed bit-exact.
  ASSERT_TRUE(pc.done());
  EXPECT_TRUE(pc.finish().completed);
  EXPECT_EQ(result_bins(gc, 8), result_bins(clean_seq, 8));

  // And the pool is reusable: a fresh program runs to completion.
  Graph again = clean.graph.clone();
  GraphProgram pa(again, onto_pool(clean.mapping, 3), RuntimeOptions{},
                  machine);
  pa.start();
  while (!pa.done() && std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ASSERT_TRUE(pa.done());
  EXPECT_TRUE(pa.finish().completed);
}

TEST(Containment, RunThreadedRethrowsInjectedFault) {
  // The single-tenant composition surfaces a kernel fault as an
  // ExecutionError (the daemon supervises instead of rethrowing).
  CompiledApp app = compile(apps::figure1_app({24, 18}, 200.0, 2, 8));
  const fault::FaultPlan plan = merge_plan(1.0, 0.0);
  const fault::Injector inj(plan, 1);
  RuntimeOptions opt;
  opt.injector = &inj;
  try {
    (void)run_threaded(app.graph, app.mapping, opt);
    FAIL() << "expected ExecutionError";
  } catch (const ExecutionError& e) {
    EXPECT_NE(std::string(e.what()).find("injected fault"),
              std::string::npos)
        << e.what();
  }
}

TEST(Containment, WedgeHaltsTheKernelWithoutFailing) {
  CompiledApp app = compile(apps::figure1_app({24, 18}, 200.0, 3, 8));
  const fault::FaultPlan plan = merge_plan(0.0, 1.0);
  const fault::Injector inj(plan, 1);
  rt::Machine machine(2);
  Graph g = app.graph.clone();
  RuntimeOptions opt;
  opt.injector = &inj;
  GraphProgram p(g, onto_pool(app.mapping, 2), opt, machine);
  p.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  // Wedged mid-graph: never done, but not failed either — detecting the
  // silence is the supervisor's stall watchdog's job.
  EXPECT_FALSE(p.done());
  EXPECT_FALSE(p.failed());
  const RuntimeResult r = p.finish();
  EXPECT_FALSE(r.completed);
}

TEST(Containment, DrainRetiresSourcesAtFrameBoundaries) {
  CompiledApp app = compile(apps::figure1_app({24, 18}, 200.0, 100, 8));
  rt::Machine machine(2);
  Graph g = app.graph.clone();
  RuntimeOptions opt;
  opt.pace_inputs = true;
  GraphProgram p(g, onto_pool(app.mapping, 2), opt, machine);
  p.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_FALSE(p.sources_drained());
  p.request_drain();

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (!p.sources_drained() &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ASSERT_TRUE(p.sources_drained());
  // Let in-flight firings settle, then tear down.
  long last = -1;
  for (;;) {
    const long f = p.firings();
    if (f == last) break;
    last = f;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  const RuntimeResult r = p.finish();
  EXPECT_FALSE(r.completed);  // 100 frames were never produced
  EXPECT_GT(r.total_firings, 0);
  // Only whole frames made it out: the sink saw complete frames or
  // nothing, never a torn one.
  const auto& out = dynamic_cast<const OutputKernel&>(g.by_name("result"));
  EXPECT_LT(out.tiles().size(), 100u);
}

// ---- daemon supervision ------------------------------------------------

TenantSpec tenant(const std::string& name, const std::string& app,
                  int frames = 5, double rate = 50.0) {
  TenantSpec t;
  t.name = name;
  t.app = app;
  t.frame = {32, 24};
  t.rate_hz = rate;
  t.frames = frames;
  t.slack_seconds = 0.05;
  return t;
}

DaemonOptions fast_supervision(int max_restarts) {
  DaemonOptions opt;
  opt.cores = 4;
  opt.max_restarts = max_restarts;
  opt.restart_backoff_seconds = 0.01;
  opt.stall_grace_seconds = 0.3;
  return opt;
}

TEST(Supervision, ThrowingTenantQuarantinedCoTenantZeroMiss) {
  Daemon d(fast_supervision(2));
  TenantSpec faulty = tenant("faulty", "fig1");
  faulty.fault_plan_json =
      R"({"kernels":[{"match":"merge*","throw_prob":1.0}]})";
  const int fid = d.submit(faulty);
  const int cid = d.submit(tenant("clean", "sobel"));
  ASSERT_TRUE(d.wait_idle(60.0));

  const service::TenantStatus fs = d.tenant(fid);
  EXPECT_EQ(fs.state, TenantState::kQuarantined) << fs.reason;
  EXPECT_EQ(fs.restarts, 2);
  EXPECT_NE(fs.reason.find("quarantined after 3 failed attempts"),
            std::string::npos)
      << fs.reason;
  EXPECT_NE(fs.reason.find("injected fault"), std::string::npos) << fs.reason;

  const service::TenantStatus cs = d.tenant(cid);
  EXPECT_EQ(cs.state, TenantState::kCompleted) << cs.reason;
  EXPECT_EQ(cs.deadline_misses, 0);
  EXPECT_EQ(cs.faults_injected, 0);
  EXPECT_EQ(cs.frames_completed, 5);

  EXPECT_EQ(d.pool().quarantined, 1);
  EXPECT_EQ(d.pool().completed, 1);
  EXPECT_NEAR(d.pool().load, 0.0, 1e-9);  // quarantine released capacity
}

TEST(Supervision, WedgedTenantStallsIntoQuarantine) {
  Daemon d(fast_supervision(1));
  TenantSpec faulty = tenant("wedged", "fig1");
  faulty.fault_plan_json =
      R"({"kernels":[{"match":"merge*","wedge_prob":1.0}]})";
  const int id = d.submit(faulty);
  ASSERT_TRUE(d.wait_idle(60.0));

  const service::TenantStatus s = d.tenant(id);
  EXPECT_EQ(s.state, TenantState::kQuarantined) << s.reason;
  EXPECT_EQ(s.restarts, 1);
  EXPECT_NE(s.reason.find("stalled"), std::string::npos) << s.reason;
  EXPECT_NEAR(d.pool().load, 0.0, 1e-9);
}

TEST(Supervision, RestartRecoversFromTransientFault) {
  // Find a seed where attempt 0 draws a throw but attempt 1 (the daemon
  // re-seeds each attempt with base + restarts) stays clean — then the
  // supervisor's single restart must carry the tenant to completion.
  CompiledApp app = compile(apps::figure1_app({32, 24}, 50.0, 3, 32));
  const int merge_id = app.graph.id_of(app.graph.by_name("merge"));
  const fault::FaultPlan plan = merge_plan(0.02, 0.0);

  std::uint64_t seed = 0;
  bool found = false;
  for (std::uint64_t s = 0; s < 5000 && !found; ++s) {
    fault::Injector first(plan, s);
    first.bind(app.graph, app.mapping.core_of);
    bool throws_early = false;
    for (int f = 0; f < 3; ++f)
      throws_early = throws_early || first.perturb(merge_id, f).throw_fault;
    if (!throws_early) continue;
    fault::Injector second(plan, s + 1);
    second.bind(app.graph, app.mapping.core_of);
    bool clean = true;
    for (int f = 0; f < 64; ++f)
      clean = clean && !second.perturb(merge_id, f).throw_fault;
    found = clean;
    if (found) seed = s;
  }
  ASSERT_TRUE(found) << "no transient seed in scan range";

  Daemon d(fast_supervision(3));
  TenantSpec t = tenant("transient", "fig1", 3);
  t.fault_plan_json = fault::write_plan(plan);
  t.fault_seed = seed;
  t.fault_seed_set = true;
  const int id = d.submit(t);
  ASSERT_TRUE(d.wait_idle(60.0));

  const service::TenantStatus s = d.tenant(id);
  EXPECT_EQ(s.state, TenantState::kCompleted) << s.reason;
  EXPECT_EQ(s.restarts, 1);
  // Stats accumulate across attempts: 3 frames from the clean attempt
  // plus whatever attempt 0 finished before the throw.
  EXPECT_GE(s.frames_completed, 3);
  EXPECT_NEAR(d.pool().load, 0.0, 1e-9);
}

TEST(Supervision, DrainUnderLoadStopsAdmissionAndRetiresTenants) {
  DaemonOptions opt = fast_supervision(3);
  Daemon d(opt);
  const int id = d.submit(tenant("longrun", "fig1", 200, 100.0));
  ASSERT_EQ(d.tenant(id).state, TenantState::kRunning);
  std::this_thread::sleep_for(std::chrono::milliseconds(200));

  ASSERT_TRUE(d.drain(15.0));
  const service::TenantStatus s = d.tenant(id);
  EXPECT_EQ(s.state, TenantState::kDrained) << s.reason;
  EXPECT_GT(s.frames_completed, 0);
  EXPECT_LT(s.frames_completed, 200);
  EXPECT_EQ(s.deadline_misses, 0);
  EXPECT_NEAR(d.pool().load, 0.0, 1e-9);

  // Admission is closed for good once draining.
  const int late = d.submit(tenant("late", "sobel"));
  EXPECT_EQ(d.tenant(late).state, TenantState::kRejected);
  EXPECT_NE(d.tenant(late).reason.find("draining"), std::string::npos);
}

// ---- journal -----------------------------------------------------------

TEST(Journal, RecordsReplayAndStayAtomic) {
  const std::string path = testing::TempDir() + "bpp_journal_test.jsonl";
  std::remove(path.c_str());
  {
    service::Journal j(path);
    const TenantSpec spec = tenant("cam0", "fig1");
    j.record_submission(0, &spec, "cam0", "admitted", "running", "ok", 0);
    j.record_submission(1, nullptr, "broken", "rejected", "failed",
                        "did not parse", 0);
    j.record_restart(0, 1, "kernel fault");
    j.record_state(0, "quarantined", "budget exhausted", 3);
  }
  // The atomic rewrite never leaves its temporary behind.
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));

  const std::vector<service::JournalEntry> es =
      service::replay_journal(path);
  ASSERT_EQ(es.size(), 2u);
  EXPECT_EQ(es[0].name, "cam0");
  EXPECT_TRUE(es[0].has_spec);
  EXPECT_EQ(es[0].spec.app, "fig1");
  EXPECT_EQ(es[0].state, "quarantined");
  EXPECT_EQ(es[0].restarts, 3);
  EXPECT_FALSE(es[0].resumable());
  EXPECT_EQ(es[1].name, "broken");
  EXPECT_FALSE(es[1].has_spec);
  EXPECT_EQ(es[1].state, "failed");
  std::remove(path.c_str());
}

TEST(Journal, MalformedLineIsARealError) {
  const std::string path = testing::TempDir() + "bpp_journal_torn.jsonl";
  {
    std::ofstream f(path);
    f << R"({"event":"submit","id":0,"name":"a","state":"running"})" << "\n";
    f << R"({"event":"submit","id)";  // torn tail
  }
  EXPECT_THROW(service::replay_journal(path), Error);
  std::remove(path.c_str());
}

TEST(Journal, RecoverRestoresRosterAndResumesRunning) {
  const std::string path = testing::TempDir() + "bpp_journal_recover.jsonl";
  std::remove(path.c_str());
  {
    // A daemon that quarantines one tenant and is destroyed while another
    // still runs — the shutdown journals the survivor as drained
    // (resumable), mirroring what a SIGKILL leaves as "running".
    DaemonOptions opt = fast_supervision(1);
    opt.journal_path = path;
    Daemon d(opt);
    TenantSpec faulty = tenant("faulty", "fig1");
    faulty.fault_plan_json =
        R"({"kernels":[{"match":"merge*","throw_prob":1.0}]})";
    (void)d.submit(faulty);
    (void)d.submit(tenant("survivor", "sobel", 300, 100.0));
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (d.tenant(0).state != TenantState::kQuarantined &&
           std::chrono::steady_clock::now() < deadline)
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    ASSERT_EQ(d.tenant(0).state, TenantState::kQuarantined);
    ASSERT_EQ(d.tenant(1).state, TenantState::kRunning);
  }

  DaemonOptions opt2 = fast_supervision(1);
  Daemon d2(opt2);
  EXPECT_EQ(d2.recover(path), 1);  // only the survivor resumes
  EXPECT_EQ(d2.tenant(0).state, TenantState::kQuarantined);
  EXPECT_EQ(d2.tenant(0).restarts, 1);  // decision survives the restart
  ASSERT_TRUE(d2.wait_idle(60.0));
  EXPECT_EQ(d2.tenant(1).state, TenantState::kCompleted)
      << d2.tenant(1).reason;
  std::remove(path.c_str());
}

// ---- spool hygiene -----------------------------------------------------

TEST(Spool, SkipsTmpFilesAndQuarantinesMalformedOnes) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::path(testing::TempDir()) / "bpp_spool_test";
  fs::remove_all(dir);
  fs::create_directories(dir);

  {  // A valid submission, dropped atomically (tmp then rename).
    std::ofstream f(dir / "good.json.tmp");
    f << service::write_submission(tenant("good", "sobel"));
  }
  fs::rename(dir / "good.json.tmp", dir / "good.json");
  {  // A writer still in flight: must be ignored entirely.
    std::ofstream f(dir / "inflight.json.tmp");
    f << R"({"name":"inflight",)";
  }
  {  // A torn non-atomic write: persistent parse failure.
    std::ofstream f(dir / "torn.json");
    f << R"({"name":"torn","app":"sob)";
  }

  DaemonOptions opt = fast_supervision(3);
  Daemon d(opt);
  EXPECT_EQ(d.scan_spool(dir.string()), 1);  // only good.json
  ASSERT_TRUE(d.wait_idle(60.0));
  EXPECT_EQ(d.pool().completed, 1);
  EXPECT_EQ(d.pool().failed, 1);  // torn.json recorded as a failed tenant

  // The malformed file moved to bad/ with a reason note...
  EXPECT_FALSE(fs::exists(dir / "torn.json"));
  EXPECT_TRUE(fs::exists(dir / "bad" / "torn.json"));
  EXPECT_TRUE(fs::exists(dir / "bad" / "torn.json.reason"));
  // ...the in-flight temporary was not touched...
  EXPECT_TRUE(fs::exists(dir / "inflight.json.tmp"));
  // ...and the scan reported what it did.
  const std::vector<std::string> diag = d.spool_diagnostics();
  ASSERT_FALSE(diag.empty());
  EXPECT_NE(diag[0].find("torn.json"), std::string::npos) << diag[0];
  EXPECT_TRUE(d.spool_diagnostics().empty());  // drained on read

  // A rescan finds nothing new: good.json already submitted, bad/ is out
  // of the scan set.
  EXPECT_EQ(d.scan_spool(dir.string()), 0);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace bpp
