// Firing rules (paper §II-B/§II-C): data triggers, token triggers, and
// automatic in-order forwarding of unhandled control tokens — including
// the multi-input pairing rule of the subtract kernel.

#include <gtest/gtest.h>

#include "core/firing.h"
#include "kernels/elementwise.h"
#include "kernels/histogram.h"
#include "test_util.h"

namespace bpp {
namespace {

using testutil::px;
using testutil::token;

/// Fixed head items per port for driving decide_fire directly. Passed to
/// decide_fire as-is: HeadFn is a non-owning view, so the callable must
/// outlive the call (a lambda returned from a helper would dangle).
struct Heads {
  std::vector<const Item*> items;
  const Item* operator()(int p) const {
    return p < static_cast<int>(items.size()) ? items[static_cast<size_t>(p)]
                                              : nullptr;
  }
};

TEST(Firing, DataMethodFiresWhenAllInputsHaveData) {
  auto sub = make_subtract("sub");
  sub->ensure_configured();
  Item a = px(1), b = px(2);
  Heads h{{&a, &b}};
  const FireDecision d = decide_fire(*sub, {0, 1}, h);
  ASSERT_EQ(d.kind, FireDecision::Kind::Method);
  EXPECT_EQ(sub->methods()[static_cast<size_t>(d.method)].name, "run");
  EXPECT_EQ(d.pop_inputs, (std::vector<int>{0, 1}));
}

TEST(Firing, DataMethodWaitsForSecondInput) {
  auto sub = make_subtract("sub");
  sub->ensure_configured();
  Item a = px(1);
  Heads h{{&a, nullptr}};
  EXPECT_FALSE(decide_fire(*sub, {0, 1}, h).fires());
}

TEST(Firing, TokenForwardRequiresSameClassOnBothInputs) {
  auto sub = make_subtract("sub");
  sub->ensure_configured();
  Item eol = token(tok::kEndOfLine);
  Item eof = token(tok::kEndOfFrame);

  {  // EOL on in0 only: wait.
    Heads h{{&eol, nullptr}};
    EXPECT_FALSE(decide_fire(*sub, {0, 1}, h).fires());
  }
  {  // EOL vs EOF: wait (mismatched classes never merge).
    Heads h{{&eol, &eof}};
    EXPECT_FALSE(decide_fire(*sub, {0, 1}, h).fires());
  }
  {  // EOL on both: forward one copy to the method's outputs.
    Item eol2 = token(tok::kEndOfLine);
    Heads h{{&eol, &eol2}};
    const FireDecision d = decide_fire(*sub, {0, 1}, h);
    ASSERT_EQ(d.kind, FireDecision::Kind::Forward);
    EXPECT_EQ(d.token, tok::kEndOfLine);
    EXPECT_EQ(d.pop_inputs, (std::vector<int>{0, 1}));
    EXPECT_EQ(d.forward_outputs, (std::vector<int>{0}));
  }
}

TEST(Firing, TokenAndDataMixWaitsForPair) {
  // in0 head is a token, in1 head is data: neither the method nor the
  // forward can act; the streams are momentarily skewed.
  auto sub = make_subtract("sub");
  sub->ensure_configured();
  Item eol = token(tok::kEndOfLine);
  Item d0 = px(3);
  Heads h{{&eol, &d0}};
  EXPECT_FALSE(decide_fire(*sub, {0, 1}, h).fires());
}

TEST(Firing, RegisteredTokenMethodFiresInsteadOfForwarding) {
  HistogramKernel hist("hist", 8);
  hist.ensure_configured();
  Item eof = token(tok::kEndOfFrame, 4);
  Heads h{{&eof, nullptr}};
  // bins unconnected: default ranges, tokens are processed immediately.
  const FireDecision d = decide_fire(hist, {0}, h);
  ASSERT_EQ(d.kind, FireDecision::Kind::Method);
  EXPECT_EQ(hist.methods()[static_cast<size_t>(d.method)].name, "finishCount");
  EXPECT_EQ(d.token, tok::kEndOfFrame);
  EXPECT_EQ(d.payload, 4);
}

TEST(Firing, UnhandledTokenOnOutputlessMethodIsDropped) {
  // Histogram count() has no outputs; an EOL is consumed with no forward.
  HistogramKernel hist("hist", 8);
  hist.ensure_configured();
  Item eol = token(tok::kEndOfLine);
  Heads h{{&eol, nullptr}};
  const FireDecision d = decide_fire(hist, {0}, h);
  ASSERT_EQ(d.kind, FireDecision::Kind::Forward);
  EXPECT_TRUE(d.forward_outputs.empty());
  EXPECT_EQ(d.pop_inputs, (std::vector<int>{0}));
}

TEST(Firing, TokensHeldWhileBinRangesPending) {
  // With the bins input connected but not yet delivered, even frame
  // tokens wait: finishing a count with default ranges would be wrong.
  HistogramKernel hist("hist", 8);
  hist.ensure_configured();
  Item eof = token(tok::kEndOfFrame);
  Heads h{{&eof, nullptr}};
  EXPECT_FALSE(decide_fire(hist, {0, 1}, h).fires());
}

TEST(Firing, HistogramHoldsDataUntilBinsConfigured) {
  HistogramKernel hist("hist", 8);
  hist.ensure_configured();
  Item d0 = px(10);
  {  // data present, bins pending: wait.
    Heads h{{&d0, nullptr}};
    EXPECT_FALSE(decide_fire(hist, {0, 1}, h).fires());
  }
  {  // bins present: configureBins wins.
    Item bins = Tile(Size2{8, 1}, 1.0);
    Heads h{{&d0, &bins}};
    const FireDecision d = decide_fire(hist, {0, 1}, h);
    ASSERT_EQ(d.kind, FireDecision::Kind::Method);
    EXPECT_EQ(hist.methods()[static_cast<size_t>(d.method)].name,
              "configureBins");
  }
  {  // without a connected bins input the default ranges apply immediately.
    Heads h{{&d0, nullptr}};
    const FireDecision d = decide_fire(hist, {0}, h);
    ASSERT_EQ(d.kind, FireDecision::Kind::Method);
    EXPECT_EQ(hist.methods()[static_cast<size_t>(d.method)].name, "count");
  }
}

TEST(Firing, MethodPriorityFollowsRegistrationOrder) {
  HistogramKernel hist("hist", 8);
  hist.ensure_configured();
  // Both the bins tile and data available: configureBins is registered
  // first and must win so counting uses the new ranges.
  Item d0 = px(1);
  Item bins = Tile(Size2{8, 1}, 2.0);
  Heads h{{&d0, &bins}};
  const FireDecision d = decide_fire(hist, {0, 1}, h);
  ASSERT_EQ(d.kind, FireDecision::Kind::Method);
  EXPECT_EQ(hist.methods()[static_cast<size_t>(d.method)].name, "configureBins");
}

TEST(Firing, EmptyHeadsNoDecision) {
  auto sub = make_subtract("sub");
  sub->ensure_configured();
  Heads h{{nullptr, nullptr}};
  EXPECT_FALSE(decide_fire(*sub, {0, 1}, h).fires());
}

TEST(Firing, ForwardPayloadPreserved) {
  auto sc = make_scale("s", 2.0, 0.0);
  sc->ensure_configured();
  Item eof = token(tok::kEndOfFrame, 17);
  Heads h{{&eof}};
  const FireDecision d = decide_fire(*sc, {0}, h);
  ASSERT_EQ(d.kind, FireDecision::Kind::Forward);
  EXPECT_EQ(d.payload, 17);
}

}  // namespace
}  // namespace bpp
