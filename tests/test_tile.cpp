// Tile: the dense 2-D data unit moved over channels.

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>

#include "core/tile.h"

namespace bpp {
namespace {

TEST(Tile, ConstructionAndAccess) {
  Tile t(4, 3);
  EXPECT_EQ(t.size(), (Size2{4, 3}));
  EXPECT_EQ(t.words(), 12);
  EXPECT_FALSE(t.empty());
  for (int y = 0; y < 3; ++y)
    for (int x = 0; x < 4; ++x) EXPECT_EQ(t.at(x, y), 0.0);
  t.at(2, 1) = 7.5;
  EXPECT_EQ(t.at(2, 1), 7.5);
  EXPECT_EQ(std::as_const(t).at(2, 1), 7.5);
}

TEST(Tile, FillConstructor) {
  Tile t(Size2{2, 2}, 3.25);
  for (int y = 0; y < 2; ++y)
    for (int x = 0; x < 2; ++x) EXPECT_EQ(t.at(x, y), 3.25);
}

TEST(Tile, DefaultIsEmpty) {
  Tile t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.words(), 0);
}

TEST(Tile, RowMajorLayout) {
  Tile t(3, 2);
  t.at(0, 0) = 1;
  t.at(1, 0) = 2;
  t.at(2, 0) = 3;
  t.at(0, 1) = 4;
  EXPECT_EQ(t.to_vector(), (std::vector<double>{1, 2, 3, 4, 0, 0}));
  EXPECT_EQ(t.stride(), 3);
  EXPECT_EQ(t.row_ptr(1), t.data() + 3);
  EXPECT_EQ(t.row_ptr(1)[0], 4.0);
}

TEST(Tile, AlignedAndPadded) {
  // The SIMD backend's storage contract: data() is kAlignBytes-aligned and
  // every row may be over-read by one vector width — the last row's
  // overhang lands in kPadDoubles of zeroed slack (ASan would flag this
  // loop if the pad were missing).
  for (const Size2 s : {Size2{1, 1}, Size2{3, 2}, Size2{7, 5}, Size2{64, 3}}) {
    Tile t(s, 1.5);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(t.data()) % Tile::kAlignBytes,
              0u);
    const double* past = t.row_ptr(s.h - 1) + s.w;
    double sum = 0.0;
    for (int i = 0; i < Tile::kPadDoubles; ++i) sum += past[i];
    EXPECT_EQ(sum, 0.0);
  }
}

TEST(Tile, CopyPreservesContentsAndPad) {
  Tile t(3, 3);
  t.at(2, 2) = 4.25;
  const Tile c = t;       // copy ctor
  Tile d;
  d = c;                  // copy assign
  EXPECT_EQ(d, t);
  const double* past = d.row_ptr(2) + 3;
  for (int i = 0; i < Tile::kPadDoubles; ++i) EXPECT_EQ(past[i], 0.0);
  Tile m = std::move(d);  // move leaves source empty
  EXPECT_EQ(m, t);
  EXPECT_TRUE(d.empty());  // NOLINT(bugprone-use-after-move)
}

TEST(Tile, Equality) {
  Tile a(2, 2), b(2, 2);
  EXPECT_EQ(a, b);
  b.at(1, 1) = 1.0;
  EXPECT_FALSE(a == b);
  Tile c(2, 3);
  EXPECT_FALSE(a == c);
}

TEST(Tile, Crop) {
  Tile t(5, 4);
  for (int y = 0; y < 4; ++y)
    for (int x = 0; x < 5; ++x) t.at(x, y) = x + 10 * y;
  const Tile c = t.crop(1, 2, {3, 2});
  ASSERT_EQ(c.size(), (Size2{3, 2}));
  EXPECT_EQ(c.at(0, 0), 21.0);
  EXPECT_EQ(c.at(2, 1), 33.0);
}

TEST(Tile, CropFull) {
  Tile t(3, 3);
  t.at(1, 1) = 5;
  EXPECT_EQ(t.crop(0, 0, {3, 3}), t);
}

TEST(Tile, ZeroPadding) {
  Tile t(2, 2);
  t.at(0, 0) = 1;
  t.at(1, 0) = 2;
  t.at(0, 1) = 3;
  t.at(1, 1) = 4;
  const Tile p = t.padded({1, 1, 1, 1});
  ASSERT_EQ(p.size(), (Size2{4, 4}));
  EXPECT_EQ(p.at(0, 0), 0.0);
  EXPECT_EQ(p.at(3, 3), 0.0);
  EXPECT_EQ(p.at(1, 1), 1.0);
  EXPECT_EQ(p.at(2, 2), 4.0);
}

TEST(Tile, AsymmetricPadding) {
  Tile t(2, 1);
  t.at(0, 0) = 9;
  const Tile p = t.padded({2, 0, 1, 3});
  ASSERT_EQ(p.size(), (Size2{5, 4}));
  EXPECT_EQ(p.at(2, 0), 9.0);
  EXPECT_EQ(p.at(0, 0), 0.0);
  EXPECT_EQ(p.at(4, 3), 0.0);
}

TEST(Tile, MirrorPadding) {
  Tile t(3, 1);
  t.at(0, 0) = 1;
  t.at(1, 0) = 2;
  t.at(2, 0) = 3;
  const Tile p = t.padded({2, 0, 2, 0}, /*mirror=*/true);
  ASSERT_EQ(p.size(), (Size2{7, 1}));
  // Reflection about the edges: 3 2 | 1 2 3 | 2 1
  EXPECT_EQ(p.at(0, 0), 3.0);
  EXPECT_EQ(p.at(1, 0), 2.0);
  EXPECT_EQ(p.at(2, 0), 1.0);
  EXPECT_EQ(p.at(4, 0), 3.0);
  EXPECT_EQ(p.at(5, 0), 2.0);
  EXPECT_EQ(p.at(6, 0), 1.0);
}

TEST(Tile, MirrorPaddingSinglePixel) {
  Tile t(1, 1);
  t.at(0, 0) = 6;
  const Tile p = t.padded({1, 1, 1, 1}, /*mirror=*/true);
  for (int y = 0; y < 3; ++y)
    for (int x = 0; x < 3; ++x) EXPECT_EQ(p.at(x, y), 6.0);
}

}  // namespace
}  // namespace bpp
