// Buffer column-splitting (paper §IV-C, Fig. 10): slice geometry, halo
// replication, scan-order restoration, and storage bounds.

#include <gtest/gtest.h>

#include "apps/pipelines.h"
#include "compiler/buffer_split.h"
#include "compiler/pipeline.h"
#include "core/validation.h"
#include "kernels/kernels.h"
#include "ref/reference.h"
#include "runtime/runtime.h"

namespace bpp {
namespace {

TEST(SliceBoundaries, BalancedPartitions) {
  EXPECT_EQ(slice_boundaries(10, 2), (std::vector<int>{0, 5, 10}));
  EXPECT_EQ(slice_boundaries(10, 3), (std::vector<int>{0, 3, 6, 10}));
  EXPECT_EQ(slice_boundaries(7, 7), (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
  EXPECT_EQ(slice_boundaries(5, 1), (std::vector<int>{0, 5}));
}

TEST(BufferSplit, PaperFigure4SliceArithmetic) {
  // Fig. 4 big-input 3x3 buffers: a 49-wide stream has 47 window columns;
  // with floor boundaries the slices are [0,23) and [23,47), needing input
  // columns [0,25) and [23,49): annotations [25x6] and [26x6] with a
  // 2-column replicated overlap (the paper's [26x6]/[25x6] pair, mirrored
  // by its rounding direction).
  Graph g;
  auto& src = g.add<InputKernel>("input", Size2{49, 12}, 10.0, 1);
  auto& buf = g.add<BufferKernel>("buf", Size2{1, 1}, Size2{3, 3}, Step2{1, 1},
                                  Size2{49, 12});
  auto& sink = g.add<OutputKernel>("sink", Size2{3, 3});
  g.connect(src, "out", buf, "in");
  g.connect(buf, "out", sink, "in");

  DataflowResult df = analyze(g);
  LoadMap loads(g, df);
  const BufferSplitResult res = split_buffer(g, df, loads, g.find("buf"), 2);

  EXPECT_EQ(res.slices, 2);
  EXPECT_EQ(res.overlap_columns, 2);
  ASSERT_EQ(res.slice_annotations.size(), 2u);
  EXPECT_EQ(res.slice_annotations[0], "[25x6]");
  EXPECT_EQ(res.slice_annotations[1], "[26x6]");
  EXPECT_EQ(res.input_ranges[0], (std::pair<int, int>{0, 25}));
  EXPECT_EQ(res.input_ranges[1], (std::pair<int, int>{23, 49}));
  EXPECT_TRUE(validate(g).empty());
}

TEST(BufferSplit, FiveByFiveOverlapIsFourColumns) {
  Graph g;
  auto& src = g.add<InputKernel>("input", Size2{38, 12}, 10.0, 1);
  auto& buf = g.add<BufferKernel>("buf", Size2{1, 1}, Size2{5, 5}, Step2{1, 1},
                                  Size2{38, 12});
  auto& sink = g.add<OutputKernel>("sink", Size2{5, 5});
  g.connect(src, "out", buf, "in");
  g.connect(buf, "out", sink, "in");
  DataflowResult df = analyze(g);
  LoadMap loads(g, df);
  const BufferSplitResult res = split_buffer(g, df, loads, g.find("buf"), 2);
  EXPECT_EQ(res.overlap_columns, 4);
  // it_w = 34, slices [0,17) and [17,34): inputs [0,21) and [17,38).
  EXPECT_EQ(res.slice_annotations[0], "[21x10]");
  EXPECT_EQ(res.slice_annotations[1], "[21x10]");
}

TEST(BufferSplit, FunctionalEquivalenceAcrossSliceCounts) {
  // The split buffer must emit exactly the same window stream.
  const Size2 frame{25, 10};
  for (int slices = 2; slices <= 4; ++slices) {
    Graph g;
    auto& src = g.add<InputKernel>("input", frame, 10.0, 2);
    auto& buf = g.add<BufferKernel>("buf", Size2{1, 1}, Size2{3, 3},
                                    Step2{1, 1}, frame);
    auto& sink = g.add<OutputKernel>("sink", Size2{3, 3});
    g.connect(src, "out", buf, "in");
    g.connect(buf, "out", sink, "in");
    DataflowResult df = analyze(g);
    LoadMap loads(g, df);
    (void)split_buffer(g, df, loads, g.find("buf"), slices);
    ASSERT_TRUE(validate(g).empty());
    ASSERT_TRUE(run_sequential(g).completed);

    const Size2 it = iteration_count(frame, {3, 3}, {1, 1});
    const auto& out = dynamic_cast<const OutputKernel&>(g.by_name("sink"));
    ASSERT_EQ(out.tiles().size(), static_cast<size_t>(2 * it.area()))
        << slices << " slices";
    // Spot-check scan order: first values advance by window origin.
    for (int wx = 0; wx < it.w; ++wx)
      EXPECT_DOUBLE_EQ(out.tiles()[static_cast<size_t>(wx)].at(0, 0),
                       default_pixel_fn()(0, wx, 0))
          << slices << " slices, window " << wx;
  }
}

TEST(BufferSplit, SliceStorageFitsMemoryBound) {
  // Compile the parallel-buffer benchmark on the default machine: the 9x9
  // buffer (W x 18 words) must be split until each slice fits mem_words.
  CompileOptions opt;
  CompiledApp app = compile(apps::parallel_buffer_app({64, 24}, 40.0, 1), opt);
  ASSERT_FALSE(app.parallelization.buffer_splits.empty());
  const BufferSplitResult& s = app.parallelization.buffer_splits.front();
  EXPECT_GE(s.slices, 2);
  for (const auto& [a, b] : s.input_ranges)
    EXPECT_LE((b - a) * 18L, opt.machine.mem_words);
  EXPECT_EQ(s.overlap_columns, 8);
}

TEST(BufferSplit, RejectsCoarseGranularity) {
  Graph g;
  auto& src = g.add<InputKernel>("input", Size2{8, 8}, 10.0, 1);
  auto& buf = g.add<BufferKernel>("buf", Size2{2, 2}, Size2{4, 4}, Step2{2, 2},
                                  Size2{8, 8});
  auto& sink = g.add<OutputKernel>("sink", Size2{4, 4});
  g.connect(src, "out", buf, "in");
  g.connect(buf, "out", sink, "in");
  DataflowResult df = analyze(g);
  LoadMap loads(g, df);
  EXPECT_THROW((void)split_buffer(g, df, loads, g.find("buf"), 2), AnalysisError);
}

TEST(BufferSplit, SingleSliceRejected) {
  Graph g;
  auto& src = g.add<InputKernel>("input", Size2{8, 8}, 10.0, 1);
  auto& buf = g.add<BufferKernel>("buf", Size2{1, 1}, Size2{3, 3}, Step2{1, 1},
                                  Size2{8, 8});
  auto& sink = g.add<OutputKernel>("sink", Size2{3, 3});
  g.connect(src, "out", buf, "in");
  g.connect(buf, "out", sink, "in");
  DataflowResult df = analyze(g);
  LoadMap loads(g, df);
  EXPECT_THROW((void)split_buffer(g, df, loads, g.find("buf"), 1), AnalysisError);
}

}  // namespace
}  // namespace bpp
