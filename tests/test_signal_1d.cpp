// One-dimensional signal handling (paper §II-A): FIR filtering with
// decimation as (taps x 1) windows over height-1 frames, through the full
// compiler and engines.

#include <gtest/gtest.h>

#include <cmath>

#include "apps/pipelines.h"
#include "compiler/pipeline.h"
#include "kernels/kernels.h"
#include "ref/reference.h"
#include "runtime/runtime.h"
#include "sim/simulator.h"

namespace bpp {
namespace {

/// Scalar FIR with decimation (newest-last tap order, valid mode).
std::vector<double> ref_fir(const std::vector<double>& x,
                            const std::vector<double>& taps, int decimate) {
  const int t = static_cast<int>(taps.size());
  std::vector<double> y;
  for (int o = 0; o + t <= static_cast<int>(x.size()); o += decimate) {
    double acc = 0.0;
    for (int i = 0; i < t; ++i)
      acc += x[static_cast<size_t>(o + i)] * taps[static_cast<size_t>(t - 1 - i)];
    y.push_back(acc);
  }
  return y;
}

std::vector<double> block_signal(int samples, int block) {
  std::vector<double> x(static_cast<size_t>(samples));
  for (int i = 0; i < samples; ++i)
    x[static_cast<size_t>(i)] = default_pixel_fn()(block, i, 0);
  return x;
}

struct FirCase {
  int samples;
  int taps;
  int decimate;
};

class FirSweep : public ::testing::TestWithParam<FirCase> {};

TEST_P(FirSweep, MatchesScalarReference) {
  const auto& c = GetParam();
  Graph g;
  auto& in = g.add<InputKernel>("input", Size2{c.samples, 1}, 100.0, 2);
  auto& fir = g.add<FirDecimateKernel>("fir", moving_average_taps(c.taps),
                                       c.decimate);
  auto& out = g.add<OutputKernel>("result");
  g.connect(in, "out", fir, "in");
  g.connect(fir, "out", out, "in");

  CompileOptions opt;
  opt.machine = machines::roomy();
  CompiledApp app = compile(std::move(g), opt);
  ASSERT_TRUE(run_sequential(app.graph).completed);

  const auto& res = dynamic_cast<const OutputKernel&>(app.graph.by_name("result"));
  ASSERT_EQ(res.frames().size(), 2u);
  for (int b = 0; b < 2; ++b) {
    const auto want =
        ref_fir(block_signal(c.samples, b), moving_average_taps(c.taps), c.decimate);
    const Tile& got = res.frames()[static_cast<size_t>(b)];
    ASSERT_EQ(got.size(), (Size2{static_cast<int>(want.size()), 1}));
    for (size_t i = 0; i < want.size(); ++i)
      EXPECT_NEAR(got.at(static_cast<int>(i), 0), want[i], 1e-9) << "block " << b;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, FirSweep,
                         ::testing::Values(FirCase{64, 8, 1}, FirCase{64, 8, 4},
                                           FirCase{128, 16, 4},
                                           FirCase{96, 5, 3},
                                           FirCase{40, 40, 1},
                                           FirCase{64, 1, 2}));

TEST(Signal1D, BufferIsOneDimensional) {
  // A 1-D FIR needs a [Nx2] buffer: two double-buffered rows of height 1.
  Graph g;
  auto& in = g.add<InputKernel>("input", Size2{64, 1}, 100.0, 1);
  auto& fir = g.add<FirDecimateKernel>("fir", moving_average_taps(8), 1);
  auto& out = g.add<OutputKernel>("result");
  g.connect(in, "out", fir, "in");
  g.connect(fir, "out", out, "in");
  CompiledApp app = compile(std::move(g));
  ASSERT_EQ(app.buffers.size(), 1u);
  EXPECT_EQ(app.buffers[0].annotation, "[64x2]");
}

TEST(Signal1D, DecimationScaleAndFractionalInset) {
  Graph g;
  auto& in = g.add<InputKernel>("input", Size2{64, 1}, 100.0, 1);
  auto& fir = g.add<FirDecimateKernel>("fir", moving_average_taps(16), 4);
  auto& out = g.add<OutputKernel>("result");
  g.connect(in, "out", fir, "in");
  g.connect(fir, "out", out, "in");
  const DataflowResult df = analyze(g);
  const StreamInfo& s =
      df.channel[static_cast<size_t>(*g.in_channel(g.find("result"), 0))];
  EXPECT_EQ(s.frame, (Size2{13, 1}));  // (64-16)/4 + 1
  EXPECT_EQ(s.scale, (Offset2{4.0, 1.0}));
  EXPECT_DOUBLE_EQ(s.inset.x, 7.5);  // (16-1)/2 in input samples
}

TEST(Signal1D, RadioChainRunsAndLowpasses) {
  const int samples = 256;
  CompiledApp app = compile(apps::radio_app(samples, 200.0, 2));
  ASSERT_TRUE(run_sequential(app.graph).completed);
  const auto& res = dynamic_cast<const OutputKernel&>(app.graph.by_name("result"));
  ASSERT_EQ(res.frames().size(), 2u);

  // Scalar reference of the whole chain.
  for (int b = 0; b < 2; ++b) {
    auto x = block_signal(samples, b);
    auto y = ref_fir(x, lowpass_taps(16, 0.1), 4);
    for (double& v : y) v = std::abs(v);
    const auto want = ref_fir(y, moving_average_taps(8), 1);
    const Tile& got = res.frames()[static_cast<size_t>(b)];
    ASSERT_EQ(got.size(), (Size2{static_cast<int>(want.size()), 1}));
    for (size_t i = 0; i < want.size(); ++i)
      EXPECT_NEAR(got.at(static_cast<int>(i), 0), want[i], 1e-9);
  }
}

TEST(Signal1D, RadioChainParallelizesUnderLoad) {
  // Push the rate until the lowpass FIR replicates; the result must not
  // change and the simulator must still meet real time.
  CompiledApp app = compile(apps::radio_app(256, 7000.0, 2));
  ASSERT_TRUE(app.parallelization.factors.count("lowpass"))
      << "expected the FIR to replicate at this rate";
  Graph run = app.graph.clone();
  SimOptions opt;
  opt.machine = app.options.machine;
  const SimResult r = simulate(run, app.mapping, opt);
  EXPECT_TRUE(r.completed) << r.diagnostics;
  EXPECT_TRUE(r.realtime_met) << r.max_input_lag_seconds;

  ASSERT_TRUE(run_sequential(app.graph).completed);
  const auto& res = dynamic_cast<const OutputKernel&>(app.graph.by_name("result"));
  auto x = block_signal(256, 0);
  auto y = ref_fir(x, lowpass_taps(16, 0.1), 4);
  for (double& v : y) v = std::abs(v);
  const auto want = ref_fir(y, moving_average_taps(8), 1);
  for (size_t i = 0; i < want.size(); ++i)
    EXPECT_NEAR(res.frames()[0].at(static_cast<int>(i), 0), want[i], 1e-9);
}

TEST(Signal1D, LowpassTapsHaveUnityDCGain) {
  for (int n : {8, 16, 31}) {
    double sum = 0.0;
    for (double t : lowpass_taps(n, 0.15)) sum += t;
    EXPECT_NEAR(sum, 1.0, 1e-12) << n;
  }
}

TEST(Signal1D, FirValidation) {
  EXPECT_THROW(FirDecimateKernel("f", {}, 1), GraphError);
  EXPECT_THROW(FirDecimateKernel("f", {1.0}, 0), GraphError);
}

}  // namespace
}  // namespace bpp
