// Graph serialization: bpp-graph text round-trips of source applications,
// format validation, and compile-equivalence of the reloaded graph.

#include <gtest/gtest.h>

#include "apps/pipelines.h"
#include "compiler/pipeline.h"
#include "kernels/kernels.h"
#include "ref/reference.h"
#include "runtime/runtime.h"
#include "serialize/serialize.h"

namespace bpp {
namespace {

void expect_equivalent(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.kernel_count(), b.kernel_count());
  for (int k = 0; k < a.kernel_count(); ++k) {
    EXPECT_EQ(a.kernel(k).name(), b.kernel(k).name());
    EXPECT_EQ(a.kernel(k).inputs().size(), b.kernel(k).inputs().size());
    EXPECT_EQ(a.kernel(k).outputs().size(), b.kernel(k).outputs().size());
  }
  // Same live channel set (as endpoint name pairs).
  auto edges = [](const Graph& g) {
    std::set<std::string> out;
    for (int c = 0; c < g.channel_count(); ++c) {
      const Channel& ch = g.channel(c);
      if (!ch.alive) continue;
      out.insert(g.kernel(ch.src_kernel).name() + ":" +
                 std::to_string(ch.src_port) + ">" +
                 g.kernel(ch.dst_kernel).name() + ":" +
                 std::to_string(ch.dst_port));
    }
    return out;
  };
  EXPECT_EQ(edges(a), edges(b));
  EXPECT_EQ(a.dependencies().size(), b.dependencies().size());
}

TEST(Serialize, Figure1RoundTrip) {
  const Graph g = apps::figure1_app({32, 24}, 120.0, 2, 16);
  const std::string text = graph_to_text(g);
  EXPECT_NE(text.find("bpp-graph 1"), std::string::npos);
  EXPECT_NE(text.find("kernel median3x3 Median"), std::string::npos);
  EXPECT_NE(text.find("dependency input -> merge"), std::string::npos);

  const Graph h = graph_from_text(text);
  expect_equivalent(g, h);
  // Text of the reloaded graph is identical (canonical form).
  EXPECT_EQ(graph_to_text(h), text);
}

TEST(Serialize, AllSerializableAppsRoundTrip) {
  std::vector<Graph> graphs;
  graphs.push_back(apps::figure1_app({24, 18}, 60.0, 1, 8));
  graphs.push_back(apps::bayer_app({16, 12}, 60.0, 1));
  graphs.push_back(apps::histogram_app({16, 12}, 60.0, 1, 8));
  graphs.push_back(apps::multi_convolution_app({24, 20}, 60.0, 1));
  graphs.push_back(apps::sobel_app({16, 12}, 60.0, 1, 50.0));
  graphs.push_back(apps::downsample_app({16, 12}, 60.0, 1));
  graphs.push_back(apps::separable_blur_app({24, 20}, 60.0, 1));
  graphs.push_back(apps::radio_app(64, 100.0, 1));
  for (const Graph& g : graphs) {
    const std::string text = graph_to_text(g);
    const Graph h = graph_from_text(text);
    expect_equivalent(g, h);
  }
}

TEST(Serialize, ReloadedGraphComputesIdentically) {
  const Size2 frame{24, 18};
  const int bins = 16;
  Graph original = apps::figure1_app(frame, 120.0, 1, bins);
  Graph reloaded = graph_from_text(graph_to_text(original));

  CompiledApp a = compile(std::move(original));
  CompiledApp b = compile(std::move(reloaded));
  ASSERT_TRUE(run_sequential(a.graph).completed);
  ASSERT_TRUE(run_sequential(b.graph).completed);

  const auto& ra = dynamic_cast<const OutputKernel&>(a.graph.by_name("result"));
  const auto& rb = dynamic_cast<const OutputKernel&>(b.graph.by_name("result"));
  ASSERT_EQ(ra.tiles().size(), rb.tiles().size());
  for (size_t i = 0; i < ra.tiles().size(); ++i)
    EXPECT_EQ(ra.tiles()[i], rb.tiles()[i]);
}

TEST(Serialize, TilePayloadPreservedExactly) {
  Graph g;
  Tile payload(3, 2);
  for (int i = 0; i < 6; ++i) payload.data()[i] = 0.1 * i - 0.25;
  auto& src = g.add<ConstSource>("weights", payload);
  auto& sink = g.add<OutputKernel>("sink", Size2{3, 2});
  g.connect(src, "out", sink, "in");

  const Graph h = graph_from_text(graph_to_text(g));
  const auto& src2 = dynamic_cast<const ConstSource&>(h.by_name("weights"));
  EXPECT_EQ(src2.payload(), payload);
}

TEST(Serialize, AdHocLambdasAreRejected) {
  Graph g;
  auto& in = g.add<InputKernel>("input", Size2{4, 4}, 10.0, 1);
  Kernel& k = g.add_kernel(std::make_unique<UnaryOpKernel>(
      "mystery", [](double v) { return v * v; }, 6));
  auto& out = g.add<OutputKernel>("sink");
  g.connect(in, "out", k, "in");
  g.connect(k, "out", out, "in");
  EXPECT_THROW((void)graph_to_text(g), GraphError);
}

TEST(Serialize, CompiledInfrastructureIsRejected) {
  CompiledApp app = compile(apps::figure1_app({48, 36}, 180.0, 1, 16));
  EXPECT_THROW((void)graph_to_text(app.graph), GraphError);
}

TEST(Serialize, ParserDiagnostics) {
  EXPECT_THROW((void)graph_from_text(""), GraphError);
  EXPECT_THROW((void)graph_from_text("not-a-header\n"), GraphError);
  EXPECT_THROW((void)graph_from_text("bpp-graph 2\n"), GraphError);
  EXPECT_THROW((void)graph_from_text("bpp-graph 1\nkernel x Bogus\n"), GraphError);
  EXPECT_THROW((void)graph_from_text("bpp-graph 1\nkernel x Convolution w=3\n"),
               GraphError);  // missing h
  EXPECT_THROW(
      (void)graph_from_text("bpp-graph 1\nchannel a.out -> b.in\n"),
      GraphError);  // unknown kernels
  EXPECT_THROW((void)graph_from_text("bpp-graph 1\nfrobnicate\n"), GraphError);
}

TEST(Serialize, CommentsAndBlankLinesIgnored) {
  const std::string text =
      "bpp-graph 1\n"
      "# a comment\n"
      "\n"
      "kernel input Input frame=8x6 rate=10 frames=1  # trailing comment\n"
      "kernel sink Output item=1x1\n"
      "channel input.out -> sink.in\n";
  const Graph g = graph_from_text(text);
  EXPECT_EQ(g.kernel_count(), 2);
  ASSERT_TRUE(run_sequential(const_cast<Graph&>(g)).completed);
}

TEST(Serialize, HandWrittenPipelineRuns) {
  // The use case: author an application as text, load, compile, run.
  const std::string text =
      "bpp-graph 1\n"
      "kernel cam Input frame=16x12 rate=100 frames=2\n"
      "kernel blur Convolution w=3 h=3\n"
      "kernel weights Const tile=3x3:0.0625,0.125,0.0625,0.125,0.25,0.125,"
      "0.0625,0.125,0.0625\n"
      "kernel edges Sobel\n"
      "kernel mask Unary op=threshold p0=40\n"
      "kernel result Output item=1x1\n"
      "channel cam.out -> blur.in\n"
      "channel weights.out -> blur.coeff\n"
      "channel blur.out -> edges.in\n"
      "channel edges.out -> mask.in\n"
      "channel mask.out -> result.in\n";
  CompiledApp app = compile(graph_from_text(text));
  ASSERT_TRUE(run_sequential(app.graph).completed);
  const auto& out = dynamic_cast<const OutputKernel&>(app.graph.by_name("result"));
  EXPECT_EQ(out.frames().size(), 2u);
  // Cross-check one frame against the scalar reference chain.
  const Tile img = ref::make_frame({16, 12}, 0, default_pixel_fn());
  const Tile want = ref::sobel(ref::convolve(img, apps::blur_coeff3x3()));
  for (int y = 0; y < want.height(); ++y)
    for (int x = 0; x < want.width(); ++x)
      EXPECT_DOUBLE_EQ(out.frames()[0].at(x, y),
                       want.at(x, y) > 40.0 ? 1.0 : 0.0);
}

}  // namespace
}  // namespace bpp
