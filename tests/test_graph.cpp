// Application graph (paper §II): channels, dependency edges, topological
// order, validation, cloning, and DOT export.

#include <gtest/gtest.h>

#include "apps/pipelines.h"
#include "core/dot_export.h"
#include "core/validation.h"
#include "kernels/kernels.h"
#include "test_util.h"

namespace bpp {
namespace {

using testutil::ItemSink;
using testutil::PassKernel;
using testutil::ScriptedSource;

TEST(Graph, ConnectByNameAndLookup) {
  Graph g;
  auto& src = g.add<ScriptedSource>("src", std::vector<Item>{});
  auto& p = g.add<PassKernel>("p");
  auto& sink = g.add<ItemSink>("sink");
  const ChannelId c0 = g.connect(src, "out", p, "in");
  const ChannelId c1 = g.connect(p, "out", sink, "in");

  EXPECT_EQ(g.kernel_count(), 3);
  EXPECT_EQ(g.find("p"), g.id_of(p));
  EXPECT_EQ(g.find("nope"), -1);
  EXPECT_EQ(&g.by_name("sink"), &sink);
  EXPECT_THROW((void)g.by_name("nope"), GraphError);
  EXPECT_EQ(g.channel(c0).dst_kernel, g.id_of(p));
  EXPECT_EQ(*g.in_channel(g.id_of(p), 0), c0);
  EXPECT_EQ(g.out_channels(g.id_of(p), 0), (std::vector<ChannelId>{c1}));
}

TEST(Graph, DuplicateNameRejected) {
  Graph g;
  g.add<PassKernel>("same");
  EXPECT_THROW(g.add<PassKernel>("same"), GraphError);
}

TEST(Graph, InputAcceptsOnlyOneChannel) {
  Graph g;
  auto& a = g.add<ScriptedSource>("a", std::vector<Item>{});
  auto& b = g.add<ScriptedSource>("b", std::vector<Item>{});
  auto& p = g.add<PassKernel>("p");
  g.connect(a, "out", p, "in");
  EXPECT_THROW(g.connect(b, "out", p, "in"), GraphError);
}

TEST(Graph, OutputFanOutAllowed) {
  Graph g;
  auto& src = g.add<ScriptedSource>("src", std::vector<Item>{});
  auto& p1 = g.add<PassKernel>("p1");
  auto& p2 = g.add<PassKernel>("p2");
  g.connect(src, "out", p1, "in");
  g.connect(src, "out", p2, "in");
  EXPECT_EQ(g.out_channels(g.id_of(src), 0).size(), 2u);
}

TEST(Graph, UnknownPortRejected) {
  Graph g;
  auto& src = g.add<ScriptedSource>("src", std::vector<Item>{});
  auto& p = g.add<PassKernel>("p");
  EXPECT_THROW(g.connect(src, "bogus", p, "in"), GraphError);
  EXPECT_THROW(g.connect(src, "out", p, "bogus"), GraphError);
}

TEST(Graph, DisconnectTombstones) {
  Graph g;
  auto& src = g.add<ScriptedSource>("src", std::vector<Item>{});
  auto& p = g.add<PassKernel>("p");
  const ChannelId c = g.connect(src, "out", p, "in");
  g.disconnect(c);
  EXPECT_FALSE(g.channel(c).alive);
  EXPECT_FALSE(g.in_channel(g.id_of(p), 0).has_value());
  // The port is free again.
  EXPECT_NO_THROW(g.connect(src, "out", p, "in"));
}

TEST(Graph, TopoOrderRespectsChannels) {
  Graph g;
  auto& src = g.add<ScriptedSource>("src", std::vector<Item>{});
  auto& a = g.add<PassKernel>("a");
  auto& b = g.add<PassKernel>("b");
  auto& sink = g.add<ItemSink>("sink");
  g.connect(src, "out", a, "in");
  g.connect(a, "out", b, "in");
  g.connect(b, "out", sink, "in");
  const auto order = g.topo_order();
  auto pos = [&](const Kernel& k) {
    return std::find(order.begin(), order.end(), g.id_of(k)) - order.begin();
  };
  EXPECT_LT(pos(src), pos(a));
  EXPECT_LT(pos(a), pos(b));
  EXPECT_LT(pos(b), pos(sink));
}

TEST(Graph, PlainCycleRejected) {
  Graph g;
  auto& a = g.add<PassKernel>("a");
  auto& b = g.add<PassKernel>("b");
  g.connect(a, "out", b, "in");
  g.connect(b, "out", a, "in");
  EXPECT_THROW((void)g.topo_order(), GraphError);
}

TEST(Graph, FeedbackKernelBreaksCycle) {
  Graph g = apps::feedback_app({4, 3}, 10.0, 1, 0.5);
  EXPECT_NO_THROW((void)g.topo_order());
  EXPECT_TRUE(validate(g).empty()) << validate(g).front();
}

TEST(Graph, DependencyEdges) {
  Graph g;
  auto& a = g.add<PassKernel>("a");
  auto& b = g.add<PassKernel>("b");
  g.add_dependency(a, b);
  ASSERT_EQ(g.dependencies().size(), 1u);
  EXPECT_EQ(g.dependencies()[0].src, g.id_of(a));
  EXPECT_EQ(g.dependencies()[0].dst, g.id_of(b));
}

TEST(Graph, SourcesAndSinks) {
  Graph g = apps::figure1_app({16, 12}, 10.0, 1, 8);
  const auto sources = g.sources();
  EXPECT_EQ(sources.size(), 3u);  // input, coeff, bins
  const auto sinks = g.sinks();
  ASSERT_EQ(sinks.size(), 1u);
  EXPECT_EQ(g.kernel(sinks[0]).name(), "result");
}

TEST(Graph, UniqueName) {
  Graph g;
  g.add<PassKernel>("p");
  EXPECT_EQ(g.unique_name("q"), "q");
  EXPECT_EQ(g.unique_name("p"), "p_1");
  g.add<PassKernel>("p_1");
  EXPECT_EQ(g.unique_name("p"), "p_2");
}

TEST(Graph, CloneIsDeepAndEquivalent) {
  Graph g = apps::figure1_app({16, 12}, 10.0, 1, 8);
  Graph c = g.clone();
  EXPECT_EQ(c.kernel_count(), g.kernel_count());
  EXPECT_EQ(c.channel_count(), g.channel_count());
  EXPECT_EQ(c.dependencies().size(), g.dependencies().size());
  for (int k = 0; k < g.kernel_count(); ++k) {
    EXPECT_EQ(c.kernel(k).name(), g.kernel(k).name());
    EXPECT_NE(&c.kernel(k), &g.kernel(k));
  }
  EXPECT_TRUE(validate(c).empty());
}

TEST(Validation, ReportsUnconnectedPorts) {
  Graph g;
  g.add<PassKernel>("floating");
  const auto issues = validate(g);
  ASSERT_EQ(issues.size(), 2u);  // input and output unconnected
  EXPECT_NE(issues[0].find("floating"), std::string::npos);
  EXPECT_THROW(validate_or_throw(g), GraphError);
}

TEST(Validation, AcceptsAllBenchmarkApps) {
  EXPECT_TRUE(validate(apps::figure1_app({16, 12}, 10, 1)).empty());
  EXPECT_TRUE(validate(apps::bayer_app({16, 12}, 10, 1)).empty());
  EXPECT_TRUE(validate(apps::histogram_app({16, 12}, 10, 1)).empty());
  EXPECT_TRUE(validate(apps::parallel_buffer_app({32, 24}, 10, 1)).empty());
  EXPECT_TRUE(validate(apps::multi_convolution_app({32, 24}, 10, 1)).empty());
  EXPECT_TRUE(validate(apps::pipeline_app({16, 12}, 10, 1)).empty());
  EXPECT_TRUE(validate(apps::sobel_app({16, 12}, 10, 1, 50.0)).empty());
  EXPECT_TRUE(validate(apps::downsample_app({16, 12}, 10, 1)).empty());
  EXPECT_TRUE(validate(apps::feedback_app({16, 12}, 10, 1, 0.5)).empty());
}

TEST(DotExport, ContainsShapesAndEdges) {
  Graph g = apps::figure1_app({16, 12}, 10.0, 1, 8);
  const std::string dot = to_dot(g);
  EXPECT_NE(dot.find("digraph application"), std::string::npos);
  EXPECT_NE(dot.find("median3x3"), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);   // replicated coeff
  EXPECT_NE(dot.find("style=dotted"), std::string::npos);   // dependency edge
  EXPECT_NE(dot.find("shape=oval"), std::string::npos);     // sources
}

TEST(DotExport, BufferShapesAfterCompilation) {
  Graph g = apps::figure1_app({16, 12}, 10.0, 1, 8);
  // Buffers are only present after compilation; here just check raw export
  // works on every app without buffers too.
  EXPECT_FALSE(to_dot(g).empty());
}

}  // namespace
}  // namespace bpp
